GO ?= go

.PHONY: build test check lint bench bench-snapshot

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: static analysis plus the race detector over every
# package with parallel execution — the Monte-Carlo loops sharing solver
# state and the parallel FEA pipeline (pool, assembly, CG kernels, caches).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/mc ./internal/pdn ./internal/par ./internal/fem \
	    ./internal/solver ./internal/sparse ./internal/core ./internal/spice \
	    ./internal/telemetry ./internal/trace ./internal/monitor ./internal/cliobs \
	    ./internal/steady ./internal/serve

# lint runs staticcheck if it is on PATH (CI installs a pinned version;
# locally it is optional) on top of go vet.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi

# bench runs the paper-figure benchmarks with the fixed snapshot protocol
# (see scripts/bench_snapshot.sh and BENCH_1.json / BENCH_2.json). The large
# GridSolve tiers (nx200/nx400, ~20–80 ms/op) only run via bench-snapshot,
# which measures them at a reduced -benchtime.
bench:
	$(GO) test -run '^$$' \
	    -bench 'BenchmarkFig10GridCDF|BenchmarkTable2GridTTF|BenchmarkSparseCholeskyFactor|BenchmarkFig1StressProfile|BenchmarkFig6Patterns|BenchmarkFig7ArraySize|BenchmarkFEAWorkers|BenchmarkStressCacheWarm' \
	    -benchmem -benchtime=100x -count=1 .
	$(GO) test -run '^$$' \
	    -bench 'BenchmarkGridSolve/^nx(10|20|40|80)$$' \
	    -benchmem -benchtime=100x -count=1 .

bench-snapshot:
	sh scripts/bench_snapshot.sh BENCH_snapshot.json
