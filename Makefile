GO ?= go

.PHONY: build test check bench bench-snapshot

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: static analysis plus the race detector over the two
# packages whose parallel Monte-Carlo loops share solver state.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/mc ./internal/pdn

# bench runs the paper-figure benchmarks with the fixed snapshot protocol
# (see scripts/bench_snapshot.sh and BENCH_1.json).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFig10GridCDF|BenchmarkTable2GridTTF|BenchmarkGridSolve' \
	    -benchmem -benchtime=100x -count=1 .

bench-snapshot:
	sh scripts/bench_snapshot.sh BENCH_snapshot.json
