// Cross-package determinism matrix: one table test asserting that every
// parallel execution path in the pipeline — the Monte-Carlo engine at both
// hierarchy levels and the FEA assembly/CG kernels — returns results
// bit-identical to the serial path from the same seed, for a spread of
// worker counts. The per-package tests pin individual kernels; this test
// pins the composed pipeline, so a future scheduling-dependent reduction
// anywhere in the stack fails loudly.
package emvia_test

import (
	"math"
	"strconv"
	"testing"

	"emvia/internal/cudd"
	"emvia/internal/fem"
	"emvia/internal/mc"
	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/spice"
	"emvia/internal/stat"
	"emvia/internal/viaarray"
)

// mcWorkerCounts is the worker matrix for the Monte-Carlo engine; it spans
// fewer-than, equal-to, and more-than the trial-batch sweet spots, including
// worker counts that exceed GOMAXPROCS on small machines.
var mcWorkerCounts = []int{1, 2, 4, 8}

// femWorkerCounts is the worker matrix for the FEA assembly/CG kernels,
// deliberately including odd counts that split rows unevenly.
var femWorkerCounts = []int{1, 3, 7}

// requireSameResult asserts exact (bit-level) equality of two mc.Results.
func requireSameResult(t *testing.T, label string, got, want *mc.Result) {
	t.Helper()
	if len(got.TTF) != len(want.TTF) {
		t.Fatalf("%s: %d trials, want %d", label, len(got.TTF), len(want.TTF))
	}
	for i := range want.TTF {
		if got.TTF[i] != want.TTF[i] && !(math.IsInf(got.TTF[i], 1) && math.IsInf(want.TTF[i], 1)) {
			t.Fatalf("%s: trial %d TTF %g, want %g (not bit-identical)", label, i, got.TTF[i], want.TTF[i])
		}
		if len(got.Events[i]) != len(want.Events[i]) {
			t.Fatalf("%s: trial %d has %d events, want %d", label, i, len(got.Events[i]), len(want.Events[i]))
		}
		for j := range want.Events[i] {
			if got.Events[i][j] != want.Events[i][j] {
				t.Fatalf("%s: trial %d event %d at t=%g, want %g (not bit-identical)",
					label, i, j, got.Events[i][j], want.Events[i][j])
			}
			if got.EventComps[i][j] != want.EventComps[i][j] {
				t.Fatalf("%s: trial %d event %d failed component %d, want %d",
					label, i, j, got.EventComps[i][j], want.EventComps[i][j])
			}
		}
	}
}

// TestDeterminismMatrixViaArrayMC pins level 1 of Algorithm 1: serial mc.Run
// over a via-array system is the reference, and mc.RunParallel must match it
// bit for bit at every worker count.
func TestDeterminismMatrixViaArrayMC(t *testing.T) {
	cfg := ablationConfig(4, 16)
	opt := mc.Options{Trials: 40, Seed: 42, RunToCompletion: true}

	sys, err := viaarray.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mc.Run(sys, opt)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}

	for _, w := range mcWorkerCounts {
		popt := opt
		popt.Workers = w
		res, err := mc.RunParallel(func() (mc.System, error) { return viaarray.New(cfg) }, popt)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		requireSameResult(t, "viaarray Workers="+strconv.Itoa(w), res, ref)
	}
}

// TestDeterminismMatrixGridMC pins level 2 of Algorithm 1: the power-grid
// Monte Carlo (SPICE re-solves inside every trial) must be bit-identical
// between the serial engine and every parallel worker count.
func TestDeterminismMatrixGridMC(t *testing.T) {
	if testing.Short() {
		t.Skip("grid Monte Carlo is slow under -short")
	}
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 6, 6
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	const refViaAmps = 0.065
	if err := g.Tune(0.05, refViaAmps); err != nil {
		t.Fatal(err)
	}
	mk := func(medYears float64) viaarray.TTFModel {
		return viaarray.TTFModel{
			Dist:       stat.LogNormal{Mu: math.Log(phys.YearsToSeconds(medYears)), Sigma: 0.35},
			RefCurrent: refViaAmps,
			FailK:      16,
		}
	}
	cfg := pdn.TTFConfig{
		Grid: g,
		Models: map[cudd.Pattern]viaarray.TTFModel{
			cudd.Plus:   mk(6),
			cudd.TShape: mk(7),
			cudd.LShape: mk(8),
		},
		Criterion:  pdn.IRDrop,
		IRDropFrac: 0.10,
	}
	opt := mc.Options{Trials: 12, Seed: 7}

	sys, err := pdn.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mc.Run(sys, opt)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}

	for _, w := range mcWorkerCounts {
		popt := opt
		popt.Workers = w
		res, err := mc.RunParallel(func() (mc.System, error) { return pdn.NewSystem(cfg) }, popt)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		requireSameResult(t, "grid Workers="+strconv.Itoa(w), res, ref)
	}
}

// TestDeterminismMatrixGridMCSparse repeats the grid matrix on the sparse
// Cholesky backend with the production worker topology: one master system is
// compiled and factored, every parallel worker runs on a Clone of it (the
// AnalyzeTTF fast path), and the result must still match the serial engine
// bit for bit at every worker count.
func TestDeterminismMatrixGridMCSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("grid Monte Carlo is slow under -short")
	}
	spice.SetDefaultSolver(spice.SolverSparse)
	defer spice.SetDefaultSolver(spice.SolverDefault)

	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 6, 6
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	const refViaAmps = 0.065
	if err := g.Tune(0.05, refViaAmps); err != nil {
		t.Fatal(err)
	}
	mk := func(medYears float64) viaarray.TTFModel {
		return viaarray.TTFModel{
			Dist:       stat.LogNormal{Mu: math.Log(phys.YearsToSeconds(medYears)), Sigma: 0.35},
			RefCurrent: refViaAmps,
			FailK:      16,
		}
	}
	cfg := pdn.TTFConfig{
		Grid: g,
		Models: map[cudd.Pattern]viaarray.TTFModel{
			cudd.Plus:   mk(6),
			cudd.TShape: mk(7),
			cudd.LShape: mk(8),
		},
		Criterion:  pdn.IRDrop,
		IRDropFrac: 0.10,
	}
	opt := mc.Options{Trials: 12, Seed: 7, Solver: "sparse"}

	sys, err := pdn.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mc.Run(sys, opt)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}

	for _, w := range mcWorkerCounts {
		master, err := pdn.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		popt := opt
		popt.Workers = w
		res, err := mc.RunParallel(func() (mc.System, error) { return master.Clone(), nil }, popt)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		requireSameResult(t, "grid sparse Workers="+strconv.Itoa(w), res, ref)
	}
}

// TestDeterminismMatrixFEA pins the FEA characterization path end to end
// (meshing, parallel assembly, CG, stress recovery): the peak-stress map of
// a 2×2 Plus array must be bit-identical for every worker count.
func TestDeterminismMatrixFEA(t *testing.T) {
	a := benchAnalyzer()
	p := a.Base
	p.ArrayN = 2
	p.Pattern = cudd.Plus

	var ref *cudd.Result
	for _, w := range femWorkerCounts {
		res, err := cudd.Characterize(p, fem.SolveOptions{Workers: w})
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for r := range ref.PeakSigmaT {
			for c := range ref.PeakSigmaT[r] {
				if res.PeakSigmaT[r][c] != ref.PeakSigmaT[r][c] {
					t.Fatalf("Workers=%d via (%d,%d) peak %g, Workers=%d %g (not bit-identical)",
						w, r, c, res.PeakSigmaT[r][c], femWorkerCounts[0], ref.PeakSigmaT[r][c])
				}
			}
		}
	}
}

// TestDeterminismMatrixGridMCScreened pins the -engine=both path: the
// steady-state screen prunes the grid Monte Carlo to the mortal via subset,
// and the pruned run must be bit-identical between the serial engine and
// every parallel worker count — with zero mortal-set misses at each. The
// per-component substream seeding is what makes this hold: pruning changes
// which candidates sample, never what a surviving candidate draws.
func TestDeterminismMatrixGridMCScreened(t *testing.T) {
	if testing.Short() {
		t.Skip("grid Monte Carlo is slow under -short")
	}
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 6, 6
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	const refViaAmps = 0.065
	if err := g.Tune(0.05, refViaAmps); err != nil {
		t.Fatal(err)
	}
	mk := func(medYears float64) viaarray.TTFModel {
		return viaarray.TTFModel{
			Dist:       stat.LogNormal{Mu: math.Log(phys.YearsToSeconds(medYears)), Sigma: 0.35},
			RefCurrent: refViaAmps,
			FailK:      16,
		}
	}
	cfg := pdn.TTFConfig{
		Grid: g,
		Models: map[cudd.Pattern]viaarray.TTFModel{
			cudd.Plus:   mk(6),
			cudd.TShape: mk(7),
			cudd.LShape: mk(8),
		},
		Criterion:  pdn.IRDrop,
		IRDropFrac: 0.10,
	}
	screen, err := pdn.ScreenGrid(g, pdn.ScreenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if screen.MortalVias == 0 {
		t.Fatal("screen classified no via mortal; the pruned engine has nothing to run")
	}
	opt := mc.Options{Trials: 12, Seed: 7, Engine: mc.EngineBoth, Candidates: screen.CandidateMask()}

	sys, err := pdn.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mc.Run(sys, opt)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if misses := ref.MaskMisses(screen.ViaMortal); len(misses) != 0 {
		t.Fatalf("serial screened run failed components outside the mortal set: %v", misses)
	}

	for _, w := range mcWorkerCounts {
		master, err := pdn.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		popt := opt
		popt.Workers = w
		res, err := mc.RunParallel(func() (mc.System, error) { return master.Clone(), nil }, popt)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		requireSameResult(t, "grid screened Workers="+strconv.Itoa(w), res, ref)
		if misses := res.MaskMisses(screen.ViaMortal); len(misses) != 0 {
			t.Fatalf("Workers=%d: failures outside the mortal set: %v", w, misses)
		}
	}
}
