// Package cliobs bundles the observability wiring the emgrid/emsweep/
// paperfigs binaries share: the telemetry flags (-metrics, -metrics-json,
// -progress), the structured-trace flags (-trace, -trace-chrome,
// -trace-nosamples), the live HTTP monitor (-http), and the run-provenance
// manifest written alongside every trace or metrics artifact.
package cliobs

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"

	"emvia/internal/core"
	"emvia/internal/mc"
	"emvia/internal/monitor"
	"emvia/internal/spice"
	"emvia/internal/telemetry"
	"emvia/internal/trace"
)

// Config is the combined observability flag surface.
type Config struct {
	Telemetry telemetry.CLIConfig
	Trace     trace.CLIConfig
	// HTTPAddr serves /status, /debug/vars and /debug/pprof when non-empty.
	HTTPAddr string
	// Solver selects the process-wide linear-solver backend
	// (auto|dense|sparse|cg); empty keeps the built-in auto policy.
	Solver string
	// SolverWorkers bounds the supernodal factorization worker pool;
	// 0 = one worker per CPU, 1 = serial. Results are identical either way.
	SolverWorkers int
	// Engine selects the analysis engine (mc|steady|both); Setup validates
	// it and records the resolved value in the run manifest. Commands
	// resolve their own copy with mc.ParseEngine.
	Engine string
}

// RegisterFlags declares every observability flag on fs.
func (c *Config) RegisterFlags(fs *flag.FlagSet) {
	fs.BoolVar(&c.Telemetry.Metrics, "metrics", false, "print a telemetry report to stderr on exit")
	fs.StringVar(&c.Telemetry.MetricsJSON, "metrics-json", "", `write a JSON telemetry report to this file on exit ("-" = stdout)`)
	fs.BoolVar(&c.Telemetry.Progress, "progress", false, "print periodic progress lines to stderr during long Monte-Carlo runs")
	c.Trace.RegisterFlags(fs)
	fs.StringVar(&c.HTTPAddr, "http", "", "serve the live monitor (/status, /debug/vars, /debug/pprof) on `addr`")
	fs.StringVar(&c.Solver, "solver", "auto", "linear-solver backend: auto (dense below a size cutoff, sparse Cholesky above), dense, sparse, or cg")
	fs.IntVar(&c.SolverWorkers, "solver-workers", 0, "worker goroutines of the parallel supernodal factorization (0 = one per CPU, 1 = serial; results are bit-identical)")
	fs.StringVar(&c.Engine, "engine", "mc", "analysis engine: mc (full Monte Carlo), steady (linear-time steady-state screen only), or both (the screen prunes the Monte Carlo to the mortal subset)")
}

// active is the manifest of the current run, readable by RecordFlags until
// the finish function runs.
var active atomic.Pointer[trace.Manifest]

// monitorRingSize is the default last-N-trials window served by /status.
const monitorRingSize = 256

// Setup wires everything the config asks for and returns a finish function
// to run before process exit: it writes the telemetry reports, flushes and
// closes the trace sinks, writes the provenance manifests beside every
// artifact, and stops the monitor. fs is the parsed top-level flag set,
// captured into the manifest (nil skips flag capture); command names the
// binary in the manifest.
func Setup(c Config, command string, fs *flag.FlagSet) (finish func() error, err error) {
	mode, err := spice.ParseSolverMode(c.Solver)
	if err != nil {
		return nil, fmt.Errorf("-solver: %w", err)
	}
	spice.SetDefaultSolver(mode)
	if c.SolverWorkers < 0 {
		return nil, fmt.Errorf("-solver-workers: must be ≥ 0, got %d", c.SolverWorkers)
	}
	spice.SetSolverWorkers(c.SolverWorkers)
	engine, err := mc.ParseEngine(c.Engine)
	if err != nil {
		return nil, fmt.Errorf("-engine: %w", err)
	}

	m := trace.NewManifest(command, os.Args[1:])
	if fs != nil {
		m.Config = trace.FlagConfig(fs)
	}
	m.MaterialHash = core.MaterialHash()
	m.StressCacheKeyVersion = core.StressCacheKeyVersion()
	m.Solver = spice.DefaultSolver().String()
	m.Engine = engine
	if p := c.Telemetry.MetricsJSON; p != "" && p != "-" {
		m.Artifacts = append(m.Artifacts, p)
	}
	if c.HTTPAddr != "" && c.Trace.RingSize == 0 {
		c.Trace.RingSize = monitorRingSize
	}

	ring, traceFinish, err := trace.CLISetup(c.Trace, m)
	if err != nil {
		return nil, err
	}
	telemetryFinish := telemetry.CLISetup(c.Telemetry)

	var mon *monitor.Server
	if c.HTTPAddr != "" {
		mon, err = monitor.Start(c.HTTPAddr, monitor.Options{Ring: ring})
		if err != nil {
			traceFinish() //nolint:errcheck // already failing
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "%s: monitor listening on http://%s\n", command, mon.Addr())
	}

	active.Store(m)
	return func() error {
		active.Store(nil)
		// Telemetry reports first (the -metrics-json artifact must exist
		// before its manifest is written beside it), then the trace finish,
		// which flushes sinks and writes every manifest copy.
		err := telemetryFinish()
		if terr := traceFinish(); err == nil {
			err = terr
		}
		if cerr := mon.Close(); err == nil {
			err = cerr
		}
		return err
	}, nil
}

// RecordFlags merges a subcommand's parsed flag set into the active run
// manifest (emgrid parses per-subcommand flags after Setup), lifting the
// reproducibility knobs — trials/seed/j — into their dedicated manifest
// fields. No-op when no run is active.
func RecordFlags(fs *flag.FlagSet) {
	m := active.Load()
	if m == nil || fs == nil {
		return
	}
	if m.Config == nil {
		m.Config = make(map[string]string)
	}
	for k, v := range trace.FlagConfig(fs) {
		m.Config[k] = v
	}
	if v, err := strconv.Atoi(m.Config["trials"]); err == nil {
		m.Trials = v
	}
	if v, err := strconv.ParseInt(m.Config["seed"], 10, 64); err == nil {
		m.Seed = v
	}
	if v, err := strconv.Atoi(m.Config["j"]); err == nil {
		m.Workers = v
	}
	if v := m.Config["solver"]; v != "" {
		if mode, err := spice.ParseSolverMode(v); err == nil {
			m.Solver = mode.String()
		}
	}
	if v := m.Config["engine"]; v != "" {
		if engine, err := mc.ParseEngine(v); err == nil {
			m.Engine = engine
		}
	}
}

// RecordArtifact registers a result file produced after Setup (e.g. the
// -engine=steady classification JSON) with the active run manifest, so a
// provenance copy is written beside it at finish. No-op when no run is
// active or the path is stdout.
func RecordArtifact(path string) {
	m := active.Load()
	if m == nil || path == "" || path == "-" {
		return
	}
	m.Artifacts = append(m.Artifacts, path)
}

// RecordScreen attaches a steady-state screening summary to the active run
// manifest, so every artifact of a -engine=steady/both run carries the
// classification the results were pruned against. No-op when no run is
// active.
func RecordScreen(info trace.ScreenInfo) {
	m := active.Load()
	if m == nil {
		return
	}
	m.Screen = &info
}
