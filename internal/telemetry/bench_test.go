package telemetry

import "testing"

// BenchmarkDisabledCounter measures the cost an instrumented hot path pays
// when telemetry is off: one atomic pointer load plus nil-receiver no-ops.
// This is the "near-zero overhead" claim of the package doc; the whole
// sequence should be a few nanoseconds and allocation-free.
func BenchmarkDisabledCounter(b *testing.B) {
	old := Default()
	SetDefault(nil)
	defer SetDefault(old)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Default()
		r.Counter("x") // nil registry: no map touch
	}
}

// BenchmarkDisabledSpan measures a full disabled span-timer sequence,
// checking that the clock is never read.
func BenchmarkDisabledSpan(b *testing.B) {
	old := Default()
	SetDefault(nil)
	defer SetDefault(old)
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t0 := h.Start()
		h.ObserveSince(t0)
	}
}

// BenchmarkEnabledCounter is the contrast case: handle lookup plus an atomic
// increment with telemetry on.
func BenchmarkEnabledCounter(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("x").Inc()
	}
}

// BenchmarkEnabledCachedCounter measures the recommended hot-path pattern:
// fetch the handle once, record through it repeatedly.
func BenchmarkEnabledCachedCounter(b *testing.B) {
	c := New().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledHistogram(b *testing.B) {
	h := New().Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) + 0.5)
	}
}
