package telemetry

import (
	"sync/atomic"
	"time"
)

// Status is a point-in-time view of the most recent progress-reporting loop,
// the payload behind the live HTTP monitor's /status endpoint.
type Status struct {
	// Label names the loop (e.g. "mc").
	Label string `json:"label"`
	// Done/Total are the loop's progress counters; Total may be 0 for
	// open-ended loops.
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// Elapsed is the wall time since status collection was enabled.
	Elapsed time.Duration `json:"elapsed_ns"`
	// ETA estimates the remaining wall time from the current rate; 0 when
	// unknown (no progress yet, or no total).
	ETA time.Duration `json:"eta_ns"`
}

// statusState collects progress ticks with plain atomics so the per-tick cost
// stays negligible against the rate-limited progress sink it rides on.
type statusState struct {
	start time.Time
	label atomic.Pointer[string]
	done  atomic.Int64
	total atomic.Int64
}

func (st *statusState) update(label string, done, total int64) {
	if p := st.label.Load(); p == nil || *p != label {
		st.label.Store(&label)
	}
	st.done.Store(done)
	st.total.Store(total)
}

// EnableStatus turns on status collection: every ProgressTick updates the
// registry's Status. Idempotent; no-op on a nil registry.
func (r *Registry) EnableStatus() {
	if r == nil || r.status.Load() != nil {
		return
	}
	r.status.CompareAndSwap(nil, &statusState{start: time.Now()})
}

// Status returns the latest progress view. ok is false on a nil registry,
// when EnableStatus was never called, or before the first tick.
func (r *Registry) Status() (s Status, ok bool) {
	if r == nil {
		return Status{}, false
	}
	st := r.status.Load()
	if st == nil {
		return Status{}, false
	}
	p := st.label.Load()
	if p == nil {
		return Status{}, false
	}
	s.Label = *p
	s.Done = st.done.Load()
	s.Total = st.total.Load()
	s.Elapsed = time.Since(st.start)
	if s.Done > 0 && s.Total > s.Done {
		s.ETA = time.Duration(float64(s.Elapsed) / float64(s.Done) * float64(s.Total-s.Done))
	}
	return s, true
}
