package telemetry

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. A nil *Counter is a
// valid no-op sink, so instrumented code records unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}
