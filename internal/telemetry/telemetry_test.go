package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSinksAreNoOps pins the central design contract: every mutating
// method is callable on nil receivers, so instrumented code never branches.
func TestNilSinksAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatalf("nil registry handed out non-nil counter")
	}
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
	h := r.Histogram("y")
	if h != nil {
		t.Fatalf("nil registry handed out non-nil histogram")
	}
	h.Observe(1.5)
	if !h.Start().IsZero() {
		t.Fatalf("nil histogram Start should return the zero time")
	}
	h.ObserveSince(time.Time{})
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram snapshot count = %d", s.Count)
	}
	r.ProgressTick("x", 1, 2)
	r.SetProgress(nil, 0)
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if r.Counter("hits") != c {
		t.Fatalf("Counter is not idempotent per name")
	}
}

func TestHistogramStats(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	vals := []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	for _, v := range vals {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	if s.Min != 1 || s.Max != 512 {
		t.Fatalf("min/max = %g/%g, want 1/512", s.Min, s.Max)
	}
	wantSum := 1023.0
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
	// Power-of-two buckets: the p50 estimate must land within a factor √2
	// of the true median bucket (values 1..512 → median between 16 and 32).
	if s.P50 < 8 || s.P50 > 64 {
		t.Fatalf("p50 = %g, outside plausible [8, 64]", s.P50)
	}
	if s.P99 < s.P50 || s.P99 > s.Max {
		t.Fatalf("p99 = %g, want within [p50=%g, max=%g]", s.P99, s.P50, s.Max)
	}
}

func TestHistogramExtremeValues(t *testing.T) {
	h := New().Histogram("h")
	for _, v := range []float64{0, -1, math.Inf(1), 1e-300, 1e300, math.NaN()} {
		h.Observe(v) // must not panic or index out of range
	}
	if got := h.Snapshot().Count; got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
}

func TestEnableIdempotentAndDefault(t *testing.T) {
	old := Default()
	defer SetDefault(old)

	SetDefault(nil)
	if Enabled() {
		t.Fatalf("telemetry enabled after SetDefault(nil)")
	}
	r1 := Enable()
	r2 := Enable()
	if r1 != r2 || Default() != r1 {
		t.Fatalf("Enable is not idempotent")
	}
	r1.Counter("a").Inc()
	if got := Default().Counter("a").Value(); got != 1 {
		t.Fatalf("default registry lost state: %d", got)
	}
}

func TestSnapshotDerivedMetrics(t *testing.T) {
	r := New()
	r.Counter(MCTrials).Add(100)
	r.Histogram(MCRunSeconds).Observe(4.0)
	r.Counter(ParBusyNanos).Add(750)
	r.Counter(ParWallNanos).Add(1000)
	r.Counter(StressDiskHits).Add(3)
	r.Counter(StressDiskMisses).Add(1)
	s := r.Snapshot()
	if got := s.Derived[MCTrialsPerSecond]; math.Abs(got-25) > 1e-12 {
		t.Fatalf("trials/sec = %g, want 25", got)
	}
	if got := s.Derived[ParUtilization]; math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("utilization = %g, want 0.75", got)
	}
	if got := s.Derived[StressDiskHitRate]; math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("hit rate = %g, want 0.75", got)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := New()
	r.Counter(CGSolves).Add(7)
	r.Histogram(CGItersPerSolve).Observe(12)
	s := r.Snapshot()

	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{CGSolves, CGItersPerSolve, "7"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, text.String())
		}
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("json report does not round-trip: %v", err)
	}
	if back.Counters[CGSolves] != 7 {
		t.Fatalf("round-tripped counter = %d, want 7", back.Counters[CGSolves])
	}
	if back.Histograms[CGItersPerSolve].Count != 1 {
		t.Fatalf("round-tripped histogram count = %d, want 1", back.Histograms[CGItersPerSolve].Count)
	}
}

func TestProgressRateLimitAndFinalTick(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.SetProgress(&buf, time.Hour) // quiet interval: only the final tick emits
	for i := int64(1); i <= 50; i++ {
		r.ProgressTick("mc", i, 50)
	}
	out := buf.String()
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("want exactly the final progress line, got:\n%s", out)
	}
	if !strings.Contains(out, "50/50") || !strings.Contains(out, "100%") {
		t.Fatalf("final line malformed: %q", out)
	}
	// Detach: no further output.
	r.SetProgress(nil, 0)
	r.ProgressTick("mc", 50, 50)
	if buf.String() != out {
		t.Fatalf("detached sink still wrote")
	}
}
