package telemetry

import (
	"math"
	"sync/atomic"
)

// Gauge is an atomic instantaneous value — queue depths, active-job counts,
// ring occupancy — the third metric kind next to the monotonic Counter and
// the distribution Histogram. A nil *Gauge is a valid no-op sink, so
// instrumented code records unconditionally, exactly like counters.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (negative deltas decrease it). No-op on a
// nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, delta)
}

// Value returns the current value; zero on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
