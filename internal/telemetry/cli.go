package telemetry

import (
	"fmt"
	"io"
	"os"
	"time"
)

// CLIConfig mirrors the -metrics / -metrics-json / -progress flags the
// binaries share.
type CLIConfig struct {
	// Metrics writes a text report to stderr when the process finishes.
	Metrics bool
	// MetricsJSON, when non-empty, writes a JSON report to this path at
	// finish ("-" selects stdout).
	MetricsJSON string
	// Progress emits periodic progress lines to stderr during long loops.
	Progress bool
}

// enabled reports whether any flag asks for telemetry.
func (c CLIConfig) enabled() bool { return c.Metrics || c.MetricsJSON != "" || c.Progress }

// CLISetup enables telemetry according to the flags and returns a finish
// function that writes the requested end-of-run reports. When no flag is
// set, telemetry stays disabled and finish is a cheap no-op. Reports go to
// stderr or the -metrics-json file — stdout only when explicitly requested
// with "-metrics-json -" — so experiment output remains bit-identical with
// telemetry on.
func CLISetup(cfg CLIConfig) (finish func() error) {
	if !cfg.enabled() {
		return func() error { return nil }
	}
	r := Enable()
	if cfg.Progress {
		r.SetProgress(os.Stderr, 2*time.Second)
	}
	return func() error {
		s := r.Snapshot()
		if cfg.Metrics {
			if err := s.WriteText(os.Stderr); err != nil {
				return fmt.Errorf("telemetry: text report: %w", err)
			}
		}
		if cfg.MetricsJSON != "" {
			var w io.Writer = os.Stdout
			if cfg.MetricsJSON != "-" {
				f, err := os.Create(cfg.MetricsJSON)
				if err != nil {
					return fmt.Errorf("telemetry: json report: %w", err)
				}
				defer f.Close()
				w = f
			}
			if err := s.WriteJSON(w); err != nil {
				return fmt.Errorf("telemetry: json report: %w", err)
			}
		}
		return nil
	}
}
