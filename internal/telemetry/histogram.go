package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram buckets and bounds. Buckets are powers of two: bucket b covers
// [2^(b-histOffset-1), 2^(b-histOffset)), so the layout spans ~1e-12
// (sub-nanosecond spans in seconds) to ~3.6e16 (TTFs in seconds) without
// configuration. Observations outside the range clamp to the end buckets;
// exact min/max/sum are tracked separately, so only the quantile estimates
// coarsen at the extremes.
const (
	histBuckets = 96
	histOffset  = 40
)

// Histogram is a fixed-size power-of-two-bucket histogram of positive
// float64 observations, with exact count, sum, min and max. All methods are
// safe for concurrent use; a nil *Histogram is a valid no-op sink.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketOf maps a positive value to its bucket index.
func bucketOf(v float64) int {
	_, exp := math.Frexp(v) // v = frac·2^exp with frac ∈ [0.5, 1)
	b := exp + histOffset
	if b < 0 {
		return 0
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one observation. Non-positive and NaN values count toward
// count/sum/min/max but land in the lowest bucket. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	casFloat(&h.minBits, v, func(old, new float64) bool { return new < old })
	casFloat(&h.maxBits, v, func(old, new float64) bool { return new > old })
	b := 0
	if v > 0 {
		b = bucketOf(v)
	}
	h.buckets[b].Add(1)
}

// Start begins a span timer: it returns time.Now when the histogram is live
// and the zero time when it is nil, so the disabled path never reads the
// clock. Pair with ObserveSince.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the elapsed seconds since t0 (a Start result). No-op
// on a nil receiver.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// addFloat atomically adds v to the float64 stored as bits in p.
func addFloat(p *atomic.Uint64, v float64) {
	for {
		old := p.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if p.CompareAndSwap(old, next) {
			return
		}
	}
}

// casFloat atomically replaces the float64 in p with v when better(cur, v).
func casFloat(p *atomic.Uint64, v float64, better func(cur, cand float64) bool) {
	for {
		old := p.Load()
		if !better(math.Float64frombits(old), v) {
			return
		}
		if p.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time summary of a histogram. Quantiles are
// estimated from the power-of-two buckets (geometric bucket midpoints,
// clamped to the exact observed min/max), so they carry about a factor-√2
// resolution — adequate for the order-of-magnitude questions a run report
// answers.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
	}
	if s.Count == 0 {
		return HistogramSnapshot{}
	}
	s.Mean = s.Sum / float64(s.Count)
	s.Min = math.Float64frombits(h.minBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())

	var counts [histBuckets]int64
	var total int64
	for b := range counts {
		counts[b] = h.buckets[b].Load()
		total += counts[b]
	}
	s.P50 = h.quantile(&counts, total, 0.50, s.Min, s.Max)
	s.P90 = h.quantile(&counts, total, 0.90, s.Min, s.Max)
	s.P99 = h.quantile(&counts, total, 0.99, s.Min, s.Max)
	return s
}

func (h *Histogram) quantile(counts *[histBuckets]int64, total int64, q, min, max float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += counts[b]
		if cum >= rank {
			// Geometric midpoint of [2^(b-offset-1), 2^(b-offset)).
			v := math.Ldexp(1, b-histOffset) / math.Sqrt2
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
	}
	return max
}
