// Package telemetry is the observability layer of the EM analysis pipeline:
// atomic counters, bounded histograms and span timers threaded through the
// hot paths (CG/Cholesky solves, the incremental re-solve engine, the
// Monte-Carlo loops, the FEA pipeline and the worker pool).
//
// The design constraint is that disabled telemetry must cost essentially
// nothing, because the instrumented sites sit inside loops executed millions
// of times per run. Every sink is nil-safe: a nil *Registry hands out nil
// *Counter and *Histogram handles, and the mutating methods on those are
// no-ops on nil receivers, so instrumented code records unconditionally
// without branching on an "enabled" flag. Span timers go one step further —
// (*Histogram).Start returns the zero time.Time on a nil receiver, so the
// disabled path never even calls time.Now.
//
// Telemetry is also strictly observational: metrics never feed back into any
// computation, so deterministic outputs are bit-identical with telemetry on
// or off.
//
// The global registry is off by default. Enable installs one (idempotently)
// and publishes it on expvar; instrumented packages fetch handles through
// Default, which returns nil while disabled.
package telemetry

import (
	"sync"
	"sync/atomic"
)

// Registry is a named collection of counters, gauges and histograms. The
// zero value is not useful; use New. A nil *Registry is valid and hands out
// nil sinks.
type Registry struct {
	counters sync.Map // string → *Counter
	gauges   sync.Map // string → *Gauge
	hists    sync.Map // string → *Histogram

	progress atomic.Pointer[progressSink]
	status   atomic.Pointer[statusState]
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := r.counters.LoadOrStore(name, new(Counter))
	return c.(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first use.
// A nil registry returns a nil gauge, whose methods are no-ops.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges.Load(name); ok {
		return g.(*Gauge)
	}
	g, _ := r.gauges.LoadOrStore(name, new(Gauge))
	return g.(*Gauge)
}

// Histogram returns the histogram registered under name, creating it on
// first use. A nil registry returns a nil histogram, whose methods are
// no-ops.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := r.hists.LoadOrStore(name, newHistogram())
	return h.(*Histogram)
}

// defaultRegistry holds the process-wide registry; nil while disabled.
var defaultRegistry atomic.Pointer[Registry]

// Default returns the process-wide registry, or nil when telemetry is
// disabled. Instrumented code calls this once per operation (or caches the
// handles it needs) and records through the returned handles.
func Default() *Registry { return defaultRegistry.Load() }

// Enabled reports whether a process-wide registry is installed.
func Enabled() bool { return Default() != nil }

// Enable installs a process-wide registry if none is installed yet and
// returns the active one. It is idempotent and safe for concurrent use, and
// publishes the registry on expvar as "emvia" (once per process).
func Enable() *Registry {
	r := New()
	if !defaultRegistry.CompareAndSwap(nil, r) {
		r = defaultRegistry.Load()
	}
	publishExpvar()
	return r
}

// SetDefault replaces the process-wide registry; nil disables telemetry.
// Intended for tests, which install a fresh registry to observe one
// operation and remove it afterwards.
func SetDefault(r *Registry) { defaultRegistry.Store(r) }
