package telemetry

import (
	"sync"
	"testing"
)

func TestGaugeSetAddValue(t *testing.T) {
	var g Gauge
	if v := g.Value(); v != 0 {
		t.Fatalf("zero gauge = %v, want 0", v)
	}
	g.Set(3.5)
	g.Add(1.5)
	if v := g.Value(); v != 5 {
		t.Fatalf("after Set(3.5)+Add(1.5) = %v, want 5", v)
	}
	g.Add(-7)
	if v := g.Value(); v != -2 {
		t.Fatalf("after Add(-7) = %v, want -2", v)
	}
}

func TestGaugeNilSafe(t *testing.T) {
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if v := g.Value(); v != 0 {
		t.Fatalf("nil gauge Value = %v, want 0", v)
	}
	var r *Registry
	if r.Gauge("x") != nil {
		t.Fatal("nil registry must hand out nil gauges")
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Fatalf("balanced concurrent adds = %v, want 0", v)
	}
}

func TestSnapshotIncludesGauges(t *testing.T) {
	r := New()
	r.Gauge("serve.queue.depth").Set(4)
	s := r.Snapshot()
	if s.Gauges["serve.queue.depth"] != 4 {
		t.Fatalf("snapshot gauges = %v", s.Gauges)
	}
}
