package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Exposition grammar, one regexp per line class. Values must be plain
// decimal/scientific floats — the writer clamps NaN/±Inf, so the value
// grammar deliberately excludes them.
var (
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? (\+Inf|-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)
)

// validateExposition asserts every line is grammatical, TYPE lines precede
// their family's samples, no series repeats, and no value is NaN/±Inf
// (le="+Inf" appears only as a bucket label, which the sample regexp
// permits solely inside the quoted label value).
func validateExposition(t *testing.T, out []byte) {
	t.Helper()
	seenSeries := make(map[string]bool)
	typed := make(map[string]string)
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "#") {
			if !promTypeRe.MatchString(line) {
				t.Fatalf("invalid TYPE line: %q", line)
			}
			name := strings.Fields(line)[2]
			if typed[name] != "" {
				t.Fatalf("family %s typed twice", name)
			}
			typed[name] = strings.Fields(line)[3]
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Fatalf("invalid sample line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		series, value := line[:sp], line[sp+1:]
		if value == "+Inf" || value == "-Inf" || value == "NaN" {
			t.Fatalf("non-finite value leaked: %q", line)
		}
		if seenSeries[series] {
			t.Fatalf("duplicate series %q", series)
		}
		seenSeries[series] = true
		// The sample must belong to a declared family.
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				if typed[strings.TrimSuffix(name, suf)] == "histogram" {
					base = strings.TrimSuffix(name, suf)
				}
			}
		}
		if typed[base] == "" {
			t.Fatalf("sample %q precedes or lacks its TYPE line", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning exposition: %v", err)
	}
}

func expose(t *testing.T, r *Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.Bytes()
}

func TestWritePrometheusBasics(t *testing.T) {
	r := New()
	r.Counter("serve.jobs.submitted").Add(7)
	r.Gauge("serve.queue.depth").Set(3)
	r.Gauge(ServeStageSeconds("queue-wait")).Set(0.5) // label convention on a gauge
	h := r.Histogram("serve.job_seconds")
	h.Observe(1.0) // bucket [1,2) → le="2"
	h.Observe(1.5)
	h.Observe(3.0) // bucket [2,4) → le="4"

	out := expose(t, r)
	validateExposition(t, out)
	text := string(out)
	for _, want := range []string{
		"# TYPE emvia_serve_jobs_submitted_total counter",
		"emvia_serve_jobs_submitted_total 7",
		"# TYPE emvia_serve_queue_depth gauge",
		"emvia_serve_queue_depth 3",
		`emvia_serve_stage_seconds{stage="queue-wait"} 0.5`,
		"# TYPE emvia_serve_job_seconds histogram",
		`emvia_serve_job_seconds_bucket{le="2"} 2`,
		`emvia_serve_job_seconds_bucket{le="4"} 3`,
		`emvia_serve_job_seconds_bucket{le="+Inf"} 3`,
		"emvia_serve_job_seconds_sum 5.5",
		"emvia_serve_job_seconds_count 3",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

func TestWritePrometheusEmptyAndEdgeHistograms(t *testing.T) {
	r := New()
	r.Histogram("never.observed") // empty: only +Inf bucket, sum 0, count 0
	hInf := r.Histogram("ttf.with_inf")
	hInf.Observe(math.Inf(1)) // sum goes +Inf; must clamp, count stays honest
	hNaN := r.Histogram("with.nan")
	hNaN.Observe(math.NaN())
	hNeg := r.Histogram("with.negative")
	hNeg.Observe(-3)
	r.Gauge("nan.gauge").Set(math.NaN())
	r.Gauge("inf.gauge").Set(math.Inf(-1))

	out := expose(t, r)
	validateExposition(t, out)
	text := string(out)
	for _, want := range []string{
		`emvia_never_observed_bucket{le="+Inf"} 0`,
		"emvia_never_observed_sum 0",
		"emvia_never_observed_count 0",
		`emvia_ttf_with_inf_bucket{le="+Inf"} 1`,
		"emvia_ttf_with_inf_sum 0", // clamped
		"emvia_ttf_with_inf_count 1",
		"emvia_with_nan_count 1",
		"emvia_with_negative_count 1",
		"emvia_nan_gauge 0",
		"emvia_inf_gauge 0",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

func TestWritePrometheusCumulativeBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	obs := []float64{0.001, 0.002, 0.004, 1, 1, 64, 1e30}
	for _, v := range obs {
		h.Observe(v)
	}
	out := expose(t, r)
	validateExposition(t, out)

	// Parse the emitted buckets back and check cumulative consistency:
	// nondecreasing counts, final le="+Inf" equals _count.
	var last int64 = -1
	var infCount, count int64 = -1, -1
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		switch {
		case strings.HasPrefix(line, "emvia_lat_bucket{le=\"+Inf\"}"):
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &infCount)
		case strings.HasPrefix(line, "emvia_lat_bucket"):
			var c int64
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &c)
			if c < last {
				t.Errorf("bucket counts not cumulative: %q after %d", line, last)
			}
			last = c
		case strings.HasPrefix(line, "emvia_lat_count"):
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &count)
		}
	}
	if count != int64(len(obs)) || infCount != count {
		t.Errorf("count %d, le=+Inf %d, want both %d", count, infCount, len(obs))
	}
}

func TestWritePrometheusLabelEscaping(t *testing.T) {
	r := New()
	r.Counter(`evil{stage=a"b\c` + "\n" + `d}`).Inc()
	out := expose(t, r)
	validateExposition(t, out)
	want := `emvia_evil_total{stage="a\"b\\c\nd"} 1`
	if !strings.Contains(string(out), want+"\n") {
		t.Errorf("escaped label missing: want %q in:\n%s", want, out)
	}
}

func TestWritePrometheusCollisions(t *testing.T) {
	r := New()
	// Counter claims emvia_x_total; a gauge literally named x_total must
	// not duplicate it. A gauge named h_count must not shadow histogram
	// h's _count member (gauges reserve before histograms).
	r.Counter("x").Inc()
	r.Gauge("x_total").Set(9)
	r.Gauge("h_count").Set(9)
	r.Histogram("h").Observe(1)
	out := expose(t, r)
	validateExposition(t, out)
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry: err %v, %d bytes", err, buf.Len())
	}
}

// FuzzWritePrometheus throws arbitrary metric names, label fragments and
// values (including NaN/±Inf bit patterns) at the writer and asserts the
// output always parses as a valid exposition with finite values — the
// satellite contract: label escaping, NaN/Inf and empty histograms never
// panic or emit invalid lines.
func FuzzWritePrometheus(f *testing.F) {
	f.Add("serve.jobs.submitted", "stage", "mc", 1.5)
	f.Add("", "", "", math.NaN())
	f.Add("9starts.with.digit", "le", "+Inf", math.Inf(1))
	f.Add("a{b=c,d=e}", "__name__", "x\"y\\z\nw", -0.0)
	f.Add("weird{unterminated", "k=v", "}", 1e308)
	f.Add("dots.and-dashes.and spaces", "ключ", "значение", math.Inf(-1))
	f.Fuzz(func(t *testing.T, name, lkey, lval string, v float64) {
		r := New()
		r.Counter(name).Add(3)
		r.Counter(name + "{" + lkey + "=" + lval + "}").Inc()
		r.Gauge(name).Set(v)
		r.Gauge("g{" + lkey + "=" + lval + "," + lkey + "=other}").Set(v)
		h := r.Histogram(name + "{" + lkey + "=" + lval + "}")
		h.Observe(v)
		h.Observe(-v)
		r.Histogram("empty{" + lkey + "=" + lval + "}")
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		validateExposition(t, buf.Bytes())
	})
}

func TestPromValue(t *testing.T) {
	cases := map[float64]string{
		0:            "0",
		1.5:          "1.5",
		math.NaN():   "0",
		math.Inf(1):  "0",
		math.Inf(-1): "0",
	}
	for in, want := range cases {
		if got := promValue(in); got != want {
			t.Errorf("promValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := promValue(1e-12); got != strconv.FormatFloat(1e-12, 'g', -1, 64) {
		t.Errorf("promValue(1e-12) = %q", got)
	}
}
