package telemetry

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Prometheus text exposition (format version 0.0.4) of a registry.
//
// Metric names in the registry use the internal dotted scheme, optionally
// carrying a label suffix (`base{key=value,key2=value2}`, see
// ServeStageSeconds). The writer maps them onto the Prometheus data model:
//
//   - dots and other invalid characters become underscores, and every
//     metric is prefixed "emvia_" (one namespace per process);
//   - counters gain the conventional "_total" suffix;
//   - the 96 power-of-two histogram buckets render as cumulative
//     `_bucket{le="..."}` series plus `_sum` and `_count`;
//   - label values are escaped per the exposition grammar (backslash,
//     double quote, newline);
//   - non-finite values (a NaN gauge, a +Inf histogram sum) are clamped to
//     0 — the text format technically admits them, but downstream PromQL
//     turns them into poison, so the writer never leaks them.
//
// Name collisions after sanitization (two registry keys mapping onto one
// series, or a gauge shadowing a histogram's _count) keep the first family
// in kind order counter → gauge → histogram and drop the rest, so the
// output is always a valid exposition. Real metric names never collide;
// the rule exists so arbitrary (fuzzed) names cannot produce invalid text.

// promSeries is one output sample line: a family member with resolved
// labels and a pre-formatted value.
type promSeries struct {
	labels string // rendered {...} block, "" when unlabeled
	value  string
}

// promFamily is one `# TYPE` group.
type promFamily struct {
	name string // sanitized full family name (without _total/_bucket suffixes)
	kind string // "counter" | "gauge" | "histogram"
	// series are the family's plain samples (counter/gauge); histograms
	// render from hist instead.
	series []promSeries
	hists  []promHist
}

type promHist struct {
	labels string // rendered label block without braces, "" when unlabeled
	h      *Histogram
}

// hasSeries reports whether a plain sample with this label block already
// exists (distinct registry keys can sanitize onto one series; duplicates
// would be an invalid exposition, so the first wins).
func (f *promFamily) hasSeries(block string) bool {
	for _, s := range f.series {
		if s.labels == block {
			return true
		}
	}
	return false
}

// hasHist is hasSeries for histogram members.
func (f *promFamily) hasHist(list string) bool {
	for _, ph := range f.hists {
		if ph.labels == list {
			return true
		}
	}
	return false
}

// WritePrometheus renders the registry's counters, gauges and histograms in
// Prometheus text exposition format. A nil registry writes nothing. The
// output is deterministic: families sort by name, series by label block.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	byName := make(map[string]*promFamily)
	var order []string
	family := func(name, kind string) *promFamily {
		f, ok := byName[name]
		if !ok {
			f = &promFamily{name: name, kind: kind}
			byName[name] = f
			order = append(order, name)
		}
		return f
	}
	// Collisions resolve in kind order: counters claim their names first,
	// then gauges, then histograms (which also reserve their _bucket, _sum
	// and _count member names).
	taken := make(map[string]bool)
	reserve := func(names ...string) bool {
		for _, n := range names {
			if taken[n] {
				return false
			}
		}
		for _, n := range names {
			taken[n] = true
		}
		return true
	}

	for _, k := range sortedMapKeys(&r.counters) {
		base, labels := promParseName(k)
		name := base + "_total"
		if f, ok := byName[name]; !ok || f.kind != "counter" {
			if !reserve(name) {
				continue
			}
		}
		v, _ := r.counters.Load(k)
		f := family(name, "counter")
		if block := promLabelBlock(labels); !f.hasSeries(block) {
			f.series = append(f.series, promSeries{labels: block, value: strconv.FormatInt(v.(*Counter).Value(), 10)})
		}
	}
	for _, k := range sortedMapKeys(&r.gauges) {
		base, labels := promParseName(k)
		if f, ok := byName[base]; !ok || f.kind != "gauge" {
			if !reserve(base) {
				continue
			}
		}
		v, _ := r.gauges.Load(k)
		f := family(base, "gauge")
		if block := promLabelBlock(labels); !f.hasSeries(block) {
			f.series = append(f.series, promSeries{labels: block, value: promValue(v.(*Gauge).Value())})
		}
	}
	for _, k := range sortedMapKeys(&r.hists) {
		base, labels := promParseName(k)
		if f, ok := byName[base]; !ok || f.kind != "histogram" {
			if !reserve(base, base+"_bucket", base+"_sum", base+"_count") {
				continue
			}
		}
		// "le" is the reserved bucket label; a user label of that name
		// would duplicate it inside one sample.
		for i, l := range labels {
			if l.key == "le" {
				labels[i].key = "le_"
			}
		}
		v, _ := r.hists.Load(k)
		f := family(base, "histogram")
		if list := promLabelList(labels); !f.hasHist(list) {
			f.hists = append(f.hists, promHist{labels: list, h: v.(*Histogram)})
		}
	}

	bw := bufio.NewWriter(w)
	sort.Strings(order)
	for _, name := range order {
		f := byName[name]
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind)
		bw.WriteByte('\n')
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, s := range f.series {
			bw.WriteString(f.name)
			bw.WriteString(s.labels)
			bw.WriteByte(' ')
			bw.WriteString(s.value)
			bw.WriteByte('\n')
		}
		sort.Slice(f.hists, func(i, j int) bool { return f.hists[i].labels < f.hists[j].labels })
		for _, ph := range f.hists {
			promWriteHist(bw, f.name, ph)
		}
	}
	return bw.Flush()
}

// promWriteHist renders one histogram member: cumulative buckets at the
// power-of-two upper bounds (only non-empty buckets are emitted — the
// cumulative counts stay exact at every emitted bound), the mandatory
// le="+Inf" bucket, then _sum and _count.
func promWriteHist(bw *bufio.Writer, name string, ph promHist) {
	var counts [histBuckets]int64
	var total int64
	for b := range counts {
		counts[b] = ph.h.bucketLoad(b)
		total += counts[b]
	}
	bucketLabels := func(le string) string {
		if ph.labels == "" {
			return `{le="` + le + `"}`
		}
		return "{" + ph.labels + `,le="` + le + `"}`
	}
	var cum int64
	for b := 0; b < histBuckets-1; b++ {
		if counts[b] == 0 {
			continue
		}
		cum += counts[b]
		bw.WriteString(name)
		bw.WriteString("_bucket")
		bw.WriteString(bucketLabels(strconv.FormatFloat(math.Ldexp(1, b-histOffset), 'g', -1, 64)))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	// The top bucket is the clamp bucket (observations above the range), so
	// its upper bound is +Inf regardless of occupancy.
	bw.WriteString(name)
	bw.WriteString("_bucket")
	bw.WriteString(bucketLabels("+Inf"))
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(total, 10))
	bw.WriteByte('\n')

	sum := 0.0
	if total > 0 {
		sum = math.Float64frombits(ph.h.sumBits.Load())
	}
	labels := ""
	if ph.labels != "" {
		labels = "{" + ph.labels + "}"
	}
	bw.WriteString(name)
	bw.WriteString("_sum")
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(promValue(sum))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(total, 10))
	bw.WriteByte('\n')
}

// bucketLoad exposes one raw bucket count to the exposition writer.
func (h *Histogram) bucketLoad(b int) int64 { return h.buckets[b].Load() }

// promValue formats a sample value, clamping non-finite floats to 0.
func promValue(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type promLabel struct{ key, value string }

// promParseName splits a registry key into its sanitized base name and
// label pairs. Keys without a parseable `{k=v,...}` suffix sanitize whole —
// braces become underscores — so any string yields a valid metric name.
func promParseName(raw string) (string, []promLabel) {
	open := strings.IndexByte(raw, '{')
	if open > 0 && strings.HasSuffix(raw, "}") {
		inner := raw[open+1 : len(raw)-1]
		parts := strings.Split(inner, ",")
		labels := make([]promLabel, 0, len(parts))
		ok := true
		for _, p := range parts {
			eq := strings.IndexByte(p, '=')
			if eq <= 0 {
				ok = false
				break
			}
			labels = append(labels, promLabel{key: promSanitizeLabelKey(p[:eq]), value: p[eq+1:]})
		}
		if ok {
			// Duplicate keys (after sanitization) would be invalid inside
			// one sample; last one wins, order then re-sorts by key.
			seen := make(map[string]string, len(labels))
			for _, l := range labels {
				seen[l.key] = l.value
			}
			labels = labels[:0]
			for _, k := range sortedKeys(seen) {
				labels = append(labels, promLabel{key: k, value: seen[k]})
			}
			return "emvia_" + promSanitizeName(raw[:open]), labels
		}
	}
	return "emvia_" + promSanitizeName(raw), nil
}

// promLabelList renders label pairs as `k1="v1",k2="v2"` (no braces).
func promLabelList(labels []promLabel) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.key)
		sb.WriteString(`="`)
		sb.WriteString(promEscapeLabelValue(l.value))
		sb.WriteByte('"')
	}
	return sb.String()
}

// promLabelBlock renders label pairs as a braced block, "" when empty.
func promLabelBlock(labels []promLabel) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + promLabelList(labels) + "}"
}

// promSanitizeName maps any string onto the metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promSanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promSanitizeLabelKey maps any string onto the label-name grammar
// [a-zA-Z_][a-zA-Z0-9_]* (no colons, no leading digit, never empty or
// reserved-prefixed).
func promSanitizeLabelKey(s string) string {
	if s == "" {
		return "_"
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			sb.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if strings.HasPrefix(out, "__") {
		// "__" label names are reserved for Prometheus internals.
		out = "x" + out
	}
	return out
}

// promEscapeLabelValue escapes a label value per the exposition grammar.
func promEscapeLabelValue(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// sortedMapKeys snapshots and sorts a sync.Map's string keys.
func sortedMapKeys(m *sync.Map) []string {
	var keys []string
	m.Range(func(k, _ any) bool {
		keys = append(keys, k.(string))
		return true
	})
	sort.Strings(keys)
	return keys
}
