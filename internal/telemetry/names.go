package telemetry

// Metric names. Centralizing them here keeps the instrumented packages, the
// derived-metric computation in Snapshot and the documentation (DESIGN.md §8)
// in agreement. Naming scheme: <package>.<subsystem>.<metric>; histogram
// names carry their unit as the final path element.
const (
	// internal/solver — conjugate gradients.
	CGSolves        = "solver.cg.solves"
	CGIterations    = "solver.cg.iterations"
	CGItersPerSolve = "solver.cg.iterations_per_solve"

	// internal/solver — dense Cholesky (the direct re-solve path).
	DenseFactorizations = "solver.dense.factorizations"
	DenseUpdates        = "solver.dense.updates"
	DenseDowndates      = "solver.dense.downdates"
	DenseSolves         = "solver.dense.solves"

	// internal/solver — sparse Cholesky (the large-grid direct path).
	SparseFactorizations = "solver.sparse.factorizations"
	SparseUpdates        = "solver.sparse.updates"
	SparseDowndates      = "solver.sparse.downdates"
	SparseSolves         = "solver.sparse.solves"

	// internal/spice — the incremental re-solve engine.
	SpiceCompiles         = "spice.compiles"
	SpiceSlotEdits        = "spice.slot_edits"
	SpiceResets           = "spice.resets"
	SpiceDirectSolves     = "spice.solves.direct"
	SpiceSparseSolves     = "spice.solves.sparse"
	SpiceCGSolves         = "spice.solves.cg"
	SpicePrecondRefreshes = "spice.precond.refreshes"
	SpiceFactorSeconds    = "spice.sparse.factor_seconds"

	// internal/mc — the sequential-failure Monte-Carlo engine.
	MCTrials           = "mc.trials"
	MCFailuresPerTrial = "mc.failures_per_trial"
	MCTrialSeconds     = "mc.trial_seconds"
	MCFailStepSeconds  = "mc.fail_step_seconds"
	MCRunSeconds       = "mc.run_seconds"
	// Candidate-mask split of a screened (-engine=both) run: candidates are
	// the mortal components the trials simulate, pruned the immortal rest
	// the steady screen removed from sampling and scanning.
	MCCandidateComponents = "mc.screen.candidate_components"
	MCPrunedComponents    = "mc.screen.pruned_components"

	// internal/pdn + internal/steady — the steady-state screening engine.
	SteadyScreens       = "steady.screens"
	SteadyScreenSeconds = "steady.screen_seconds"
	SteadyMortalVias    = "steady.mortal_vias"
	SteadyImmortalVias  = "steady.immortal_vias"

	// internal/fem — the FEA pipeline.
	FEMSolves          = "fem.solves"
	FEMAssemblySeconds = "fem.assembly_seconds"
	FEMSolveSeconds    = "fem.solve_seconds"
	FEMStressSeconds   = "fem.stress_recovery_seconds"

	// internal/core — memoization layers.
	StressMemHits    = "core.stresscache.mem_hits"
	StressMemMisses  = "core.stresscache.mem_misses"
	StressDiskHits   = "core.stresscache.disk_hits"
	StressDiskMisses = "core.stresscache.disk_misses"
	StressDiskBad    = "core.stresscache.disk_corrupt"
	CharHits         = "core.charcache.hits"
	CharMisses       = "core.charcache.misses"

	// internal/serve — the EM-analysis job server. Submitted counts every
	// accepted POST (dedup'd or not); Solves counts actual engine
	// executions, so submitted - dedup hits = solves + failures.
	// QueueDepth and JobsActive are gauges (+1 on enqueue/admit, -1 on
	// dequeue/terminal); LedgerRecords/LedgerErrors count run-ledger
	// appends.
	ServeSubmitted         = "serve.jobs.submitted"
	ServeDedupCacheHits    = "serve.jobs.dedup_cache_hits"
	ServeDedupInflightHits = "serve.jobs.dedup_inflight_hits"
	ServeRejectedFull      = "serve.jobs.rejected_queue_full"
	ServeRejectedDraining  = "serve.jobs.rejected_draining"
	ServeCompleted         = "serve.jobs.completed"
	ServeFailed            = "serve.jobs.failed"
	ServeDeadlineExceeded  = "serve.jobs.deadline_exceeded"
	ServeRetries           = "serve.jobs.retries"
	ServeSolves            = "serve.solves"
	ServeQueueDepth        = "serve.queue.depth"
	ServeJobsActive        = "serve.jobs.active"
	ServeJobSeconds        = "serve.job_seconds"
	ServeQueueWaitSeconds  = "serve.queue_wait_seconds"
	ServeLedgerRecords     = "serve.ledger.records"
	ServeLedgerErrors      = "serve.ledger.errors"

	// internal/serve — distributed trial sharding. Dispatched counts every
	// shard dispatch attempt (first try and re-issues); RemoteRuns/LocalRuns
	// split completed shards by where they executed; Reissues counts
	// dispatches re-issued after a worker failure or timeout; CacheHits are
	// shards answered from the content-addressed partial cache without any
	// run; Errors counts failed dispatch attempts. Served/ServeSeconds
	// instrument the worker side of POST /v1/shards; MergeSeconds and
	// MergeErrors instrument the coordinator's partial-manifest merge.
	ServeShardDispatched   = "serve.shard.dispatched"
	ServeShardRemoteRuns   = "serve.shard.remote_runs"
	ServeShardLocalRuns    = "serve.shard.local_runs"
	ServeShardReissues     = "serve.shard.reissues"
	ServeShardCacheHits    = "serve.shard.cache_hits"
	ServeShardErrors       = "serve.shard.errors"
	ServeShardServed       = "serve.shard.served"
	ServeShardServeSeconds = "serve.shard.serve_seconds"
	ServeShardMergeSeconds = "serve.shard.merge_seconds"
	ServeShardMergeErrors  = "serve.shard.merge_errors"

	// internal/trace — live-ring occupancy, published as gauges at monitor
	// scrape time (the ring itself stays telemetry-free).
	TraceRingOccupancy = "trace.ring.occupancy"
	TraceRingCapacity  = "trace.ring.capacity"

	// internal/par — worker-pool utilization. BusyNanos is the summed
	// in-worker time of parallel dispatches; WallNanos is the summed
	// wall-clock time of those dispatches weighted by the worker count, so
	// busy/wall is the fleet utilization.
	ParRuns      = "par.runs"
	ParBlocks    = "par.blocks"
	ParBusyNanos = "par.busy_nanos"
	ParWallNanos = "par.weighted_wall_nanos"
)

// ServeStageSeconds names the per-stage job-latency histogram of one
// executor stage ("queue-wait", "resolve", "compile", "factorize", "screen",
// "mc", "manifest", …). The label suffix follows the registry's metric-label
// convention — `base{key=value}` — which the Prometheus exposition writer
// renders as a proper label pair, so every stage is one series of a single
// emvia_serve_stage_seconds family.
func ServeStageSeconds(stage string) string {
	return "serve.stage_seconds{stage=" + stage + "}"
}

// Derived-metric names (computed at snapshot time, never stored).
const (
	MCTrialsPerSecond = "mc.trials_per_second"
	ParUtilization    = "par.worker_utilization"
	// The three disk-lookup rates partition every persistent stress-cache
	// lookup: hit + miss + corrupt = 1. Splitting miss from corrupt matters
	// operationally — a rising corrupt rate means damaged or stale cache
	// files being silently recomputed, not just a cold cache.
	StressDiskHitRate     = "core.stresscache.disk_hit_rate"
	StressDiskMissRate    = "core.stresscache.disk_miss_rate"
	StressDiskCorruptRate = "core.stresscache.disk_corrupt_rate"
)
