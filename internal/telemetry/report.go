package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is a point-in-time copy of a registry's metrics plus the derived
// rates (throughput, utilization, hit rates) a report reader actually wants.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Derived    map[string]float64           `json:"derived,omitempty"`
}

// Snapshot captures the registry's current state. Nil registries snapshot to
// an empty (but non-nil-map) snapshot, so report writers need no nil checks.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
		Derived:    make(map[string]float64),
	}
	if r == nil {
		return s
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		s.Histograms[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	s.derive()
	return s
}

// derive computes the cross-metric rates from the raw counters/histograms.
func (s *Snapshot) derive() {
	if trials := s.Counters[MCTrials]; trials > 0 {
		if run, ok := s.Histograms[MCRunSeconds]; ok && run.Sum > 0 {
			s.Derived[MCTrialsPerSecond] = float64(trials) / run.Sum
		}
	}
	if wall := s.Counters[ParWallNanos]; wall > 0 {
		s.Derived[ParUtilization] = float64(s.Counters[ParBusyNanos]) / float64(wall)
	}
	if lookups := s.Counters[StressDiskHits] + s.Counters[StressDiskMisses] + s.Counters[StressDiskBad]; lookups > 0 {
		s.Derived[StressDiskHitRate] = float64(s.Counters[StressDiskHits]) / float64(lookups)
		s.Derived[StressDiskMissRate] = float64(s.Counters[StressDiskMisses]) / float64(lookups)
		s.Derived[StressDiskCorruptRate] = float64(s.Counters[StressDiskBad]) / float64(lookups)
	}
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as a human-readable run report: counters,
// histograms and derived rates, each section sorted by metric name.
func (s *Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "=== telemetry report ==="); err != nil {
		return err
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "  %-40s %12d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "  %-40s %12.4g\n", k, s.Gauges[k])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, k := range sortedKeys(s.Histograms) {
			h := s.Histograms[k]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-40s n=%-8d mean=%-11.4g p50=%-11.4g p99=%-11.4g min=%-11.4g max=%-11.4g sum=%.4g\n",
				k, h.Count, h.Mean, h.P50, h.P99, h.Min, h.Max, h.Sum)
		}
	}
	if len(s.Derived) > 0 {
		fmt.Fprintln(w, "derived:")
		for _, k := range sortedKeys(s.Derived) {
			fmt.Fprintf(w, "  %-40s %12.4g\n", k, s.Derived[k])
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
