package telemetry

import (
	"bytes"
	"expvar"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSnapshotDiskRateSplit(t *testing.T) {
	// Pins the derived-metrics contract of the end-of-run report: hits,
	// misses and corrupt entries partition the disk lookups, and all three
	// rates appear under their documented names.
	r := New()
	r.Counter(StressDiskHits).Add(6)
	r.Counter(StressDiskMisses).Add(3)
	r.Counter(StressDiskBad).Add(1)
	s := r.Snapshot()
	for name, want := range map[string]float64{
		StressDiskHitRate:     0.6,
		StressDiskMissRate:    0.3,
		StressDiskCorruptRate: 0.1,
	} {
		got, ok := s.Derived[name]
		if !ok {
			t.Fatalf("derived metric %q missing from snapshot", name)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s = %g, want %g", name, got, want)
		}
	}
	if sum := s.Derived[StressDiskHitRate] + s.Derived[StressDiskMissRate] + s.Derived[StressDiskCorruptRate]; math.Abs(sum-1) > 1e-12 {
		t.Fatalf("rates sum to %g, want 1", sum)
	}
	// The text report's derived section must carry the split.
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{StressDiskHitRate, StressDiskMissRate, StressDiskCorruptRate} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("text report missing %q:\n%s", name, buf.String())
		}
	}
}

func TestZeroTrialSnapshotFinite(t *testing.T) {
	// A report from a run that never completed a trial (or never touched the
	// disk cache) must not divide by zero: the derived section simply omits
	// the undefined rates, and nothing is NaN/Inf.
	r := New()
	r.Counter(MCTrials).Add(0)
	r.Histogram(MCRunSeconds) // registered but never observed: Sum == 0
	s := r.Snapshot()
	for _, name := range []string{MCTrialsPerSecond, ParUtilization, StressDiskHitRate, StressDiskMissRate, StressDiskCorruptRate} {
		if v, ok := s.Derived[name]; ok {
			t.Fatalf("derived %q = %g present on an empty run", name, v)
		}
	}
	for name, v := range s.Derived {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("derived %q = %g is non-finite", name, v)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatalf("zero-trial text report: %v", err)
	}
}

func TestZeroIntervalProgressDefaults(t *testing.T) {
	// interval <= 0 must select the default rather than emitting on every
	// tick (or dividing the rate limiter by zero).
	r := New()
	var buf bytes.Buffer
	r.SetProgress(&buf, 0)
	for i := int64(1); i < 100; i++ {
		r.ProgressTick("mc", i, 1000) // never final, inside the quiet interval
	}
	if buf.Len() != 0 {
		t.Fatalf("zero-interval sink emitted during quiet interval:\n%s", buf.String())
	}
	r.ProgressTick("mc", 1000, 1000)
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("want exactly the final line, got %d:\n%s", got, buf.String())
	}
}

func TestDisabledExpvarStaysNull(t *testing.T) {
	old := Default()
	defer SetDefault(old)

	Enable() // publishes the expvar hook (idempotent)
	SetDefault(nil)
	v := expvar.Get("emvia")
	if v == nil {
		t.Fatal("expvar \"emvia\" not published")
	}
	if got := v.String(); got != "null" {
		t.Fatalf("disabled expvar = %s, want null", got)
	}
	r := Enable()
	r.Counter(MCTrials).Inc()
	if got := v.String(); !strings.Contains(got, MCTrials) {
		t.Fatalf("enabled expvar missing %q: %s", MCTrials, got)
	}
}

func TestStatusFollowsProgressTicks(t *testing.T) {
	r := New()
	if _, ok := r.Status(); ok {
		t.Fatal("Status ok before EnableStatus")
	}
	r.EnableStatus()
	if _, ok := r.Status(); ok {
		t.Fatal("Status ok before the first tick")
	}
	r.ProgressTick("mc", 25, 100)
	time.Sleep(5 * time.Millisecond) // let Elapsed become visibly non-zero
	s, ok := r.Status()
	if !ok {
		t.Fatal("Status !ok after a tick")
	}
	if s.Label != "mc" || s.Done != 25 || s.Total != 100 {
		t.Fatalf("status = %+v", s)
	}
	if s.Elapsed <= 0 {
		t.Fatalf("elapsed = %v", s.Elapsed)
	}
	if s.ETA <= 0 {
		t.Fatalf("ETA = %v, want > 0 at 25/100", s.ETA)
	}
	r.ProgressTick("grid", 100, 100)
	s, _ = r.Status()
	if s.Label != "grid" || s.Done != 100 || s.ETA != 0 {
		t.Fatalf("final status = %+v, want grid 100/100 ETA 0", s)
	}

	// Status must never require a progress writer: ticks alone feed it.
	var nilReg *Registry
	nilReg.EnableStatus()
	if _, ok := nilReg.Status(); ok {
		t.Fatal("nil registry reported status")
	}
}
