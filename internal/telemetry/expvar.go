package telemetry

import (
	"expvar"
	"sync"
)

var expvarOnce sync.Once

// publishExpvar exposes the process-wide registry under the expvar key
// "emvia", so a future server mode (or anything importing net/http/pprof)
// serves the metrics on /debug/vars with no further wiring. The published
// Func reads Default at call time, so it tracks SetDefault swaps and
// publishes null while telemetry is disabled. expvar.Publish panics on
// duplicate names, hence the Once.
func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("emvia", expvar.Func(func() any {
			if r := Default(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
}
