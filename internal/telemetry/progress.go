package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// progressSink emits rate-limited progress lines for long-running loops.
// The rate limit is enforced with one atomic timestamp, so the common case
// (a tick inside the quiet interval) costs a clock read and an atomic load —
// cheap enough for the Monte-Carlo per-trial call site.
type progressSink struct {
	w        io.Writer
	interval int64 // nanoseconds between emitted lines

	lastNanos atomic.Int64
	start     time.Time

	mu sync.Mutex // serializes writes to w
}

// SetProgress attaches a progress writer emitting at most one line per
// interval (plus a final line when a loop completes). A nil writer detaches.
// No-op on a nil registry.
func (r *Registry) SetProgress(w io.Writer, interval time.Duration) {
	if r == nil {
		return
	}
	if w == nil {
		r.progress.Store(nil)
		return
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	s := &progressSink{w: w, interval: int64(interval), start: time.Now()}
	s.lastNanos.Store(time.Now().UnixNano())
	r.progress.Store(s)
}

// ProgressTick reports that done of total units of the named loop have
// completed. Lines are rate-limited to the configured interval, except that
// the final tick (done == total) always emits. Safe for concurrent use; a
// nil registry or detached sink makes it a no-op.
func (r *Registry) ProgressTick(label string, done, total int64) {
	if r == nil {
		return
	}
	if st := r.status.Load(); st != nil {
		st.update(label, done, total)
	}
	s := r.progress.Load()
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	last := s.lastNanos.Load()
	final := total > 0 && done >= total
	if !final && now-last < s.interval {
		return
	}
	if !s.lastNanos.CompareAndSwap(last, now) && !final {
		return // another goroutine just emitted
	}
	elapsed := time.Since(s.start).Round(100 * time.Millisecond)
	s.mu.Lock()
	defer s.mu.Unlock()
	if total > 0 {
		fmt.Fprintf(s.w, "[%s] %d/%d (%.0f%%) elapsed %v\n", label, done, total,
			100*float64(done)/float64(total), elapsed)
	} else {
		fmt.Fprintf(s.w, "[%s] %d elapsed %v\n", label, done, elapsed)
	}
}
