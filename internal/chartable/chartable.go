// Package chartable stores the thermomechanical-stress precharacterization
// of via-array structures: for each (layer pair × intersection pattern × via
// configuration × wire width) it records the peak tensile stress under every
// via of the array, as produced by the FEA of package cudd.
//
// This is the paper's §3.2 characterization database: built once per process
// technology (like standard-cell characterization), then queried during
// power-grid analysis. Wire widths not characterized exactly are answered by
// linear interpolation between the bracketing characterized widths, the
// paper's strategy for keeping the FEA count at 9 × w_n × v_n.
package chartable

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"emvia/internal/cudd"
	"emvia/internal/fem"
)

// Key identifies a characterized via-array family up to wire width.
type Key struct {
	LayerPair cudd.LayerPair
	Pattern   cudd.Pattern
	ArrayN    int
}

// String formats the key for error messages.
func (k Key) String() string {
	return fmt.Sprintf("%v/%v/%d×%d", k.LayerPair, k.Pattern, k.ArrayN, k.ArrayN)
}

// Entry is one characterization point: the per-via peak stresses of a
// structure at one wire width.
type Entry struct {
	Key       Key
	WireWidth float64     // m
	Sigma     [][]float64 // [row][col] peak σ_T per via, Pa
}

// Table is the characterization database.
type Table struct {
	entries map[Key][]Entry // sorted by WireWidth
}

// New returns an empty table.
func New() *Table {
	return &Table{entries: make(map[Key][]Entry)}
}

// Add inserts an entry, keeping each family's width axis sorted. Adding a
// second entry at an existing width replaces it.
func (t *Table) Add(e Entry) error {
	if e.Key.ArrayN < 1 {
		return fmt.Errorf("chartable: entry %v has invalid ArrayN", e.Key)
	}
	if e.WireWidth <= 0 {
		return fmt.Errorf("chartable: entry %v has non-positive width %g", e.Key, e.WireWidth)
	}
	if len(e.Sigma) != e.Key.ArrayN {
		return fmt.Errorf("chartable: entry %v has %d stress rows, want %d", e.Key, len(e.Sigma), e.Key.ArrayN)
	}
	for i, row := range e.Sigma {
		if len(row) != e.Key.ArrayN {
			return fmt.Errorf("chartable: entry %v row %d has %d columns, want %d", e.Key, i, len(row), e.Key.ArrayN)
		}
	}
	list := t.entries[e.Key]
	for i := range list {
		if list[i].WireWidth == e.WireWidth {
			list[i] = e
			return nil
		}
	}
	list = append(list, e)
	sort.Slice(list, func(i, j int) bool { return list[i].WireWidth < list[j].WireWidth })
	t.entries[e.Key] = list
	return nil
}

// Keys lists the characterized families in a stable order.
func (t *Table) Keys() []Key {
	keys := make([]Key, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.LayerPair != b.LayerPair {
			if a.LayerPair.Lower != b.LayerPair.Lower {
				return a.LayerPair.Lower < b.LayerPair.Lower
			}
			return a.LayerPair.Upper < b.LayerPair.Upper
		}
		if a.Pattern != b.Pattern {
			return a.Pattern < b.Pattern
		}
		return a.ArrayN < b.ArrayN
	})
	return keys
}

// Widths returns the characterized wire widths of a family.
func (t *Table) Widths(k Key) []float64 {
	list := t.entries[k]
	out := make([]float64, len(list))
	for i, e := range list {
		out[i] = e.WireWidth
	}
	return out
}

// Len returns the total number of entries.
func (t *Table) Len() int {
	n := 0
	for _, l := range t.entries {
		n += len(l)
	}
	return n
}

// Lookup returns the per-via peak stress matrix for a family at the given
// wire width, interpolating linearly between bracketing characterized widths
// and clamping outside the characterized range.
func (t *Table) Lookup(k Key, width float64) ([][]float64, error) {
	list := t.entries[k]
	if len(list) == 0 {
		return nil, fmt.Errorf("chartable: no characterization for %v", k)
	}
	if width <= 0 {
		return nil, fmt.Errorf("chartable: non-positive width %g", width)
	}
	i := sort.Search(len(list), func(i int) bool { return list[i].WireWidth >= width })
	switch {
	case i == 0:
		return cloneSigma(list[0].Sigma), nil
	case i == len(list):
		return cloneSigma(list[len(list)-1].Sigma), nil
	case list[i].WireWidth == width:
		return cloneSigma(list[i].Sigma), nil
	}
	lo, hi := list[i-1], list[i]
	f := (width - lo.WireWidth) / (hi.WireWidth - lo.WireWidth)
	n := k.ArrayN
	out := make([][]float64, n)
	for r := 0; r < n; r++ {
		out[r] = make([]float64, n)
		for c := 0; c < n; c++ {
			out[r][c] = lo.Sigma[r][c]*(1-f) + hi.Sigma[r][c]*f
		}
	}
	return out, nil
}

func cloneSigma(s [][]float64) [][]float64 {
	out := make([][]float64, len(s))
	for i, row := range s {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// BuildSpec directs a characterization campaign.
type BuildSpec struct {
	// LayerPairs, Patterns, ArrayNs and WireWidths enumerate the families:
	// the FEA count is the product of the four lengths.
	LayerPairs []cudd.LayerPair
	Patterns   []cudd.Pattern
	ArrayNs    []int
	WireWidths []float64
	// Base provides the structure parameters shared by all runs (geometry,
	// temperatures, resolution); Pattern/LayerPair/ArrayN/WireWidth fields
	// are overwritten per run.
	Base cudd.Params
	// Solve tunes the FEA solves.
	Solve fem.SolveOptions
	// Progress, when non-nil, is called before each FEA run.
	Progress func(k Key, width float64)
	// Characterize, when non-nil, replaces cudd.Characterize as the stress
	// producer for each run. Callers use it to route solves through a
	// persistent cache; it must return the per-via peak σ_T matrix that
	// cudd.Characterize would produce for the same params.
	Characterize func(p cudd.Params, opt fem.SolveOptions) ([][]float64, error)
}

// Build runs the full FEA campaign of the spec and returns the populated
// table. This is the expensive one-time-per-technology step; the paper notes
// its cost is acceptable for the same reason standard-cell characterization
// is.
func Build(spec BuildSpec) (*Table, error) {
	if len(spec.LayerPairs) == 0 || len(spec.Patterns) == 0 || len(spec.ArrayNs) == 0 || len(spec.WireWidths) == 0 {
		return nil, fmt.Errorf("chartable: empty build spec axis")
	}
	characterize := spec.Characterize
	if characterize == nil {
		characterize = func(p cudd.Params, opt fem.SolveOptions) ([][]float64, error) {
			res, err := cudd.Characterize(p, opt)
			if err != nil {
				return nil, err
			}
			return res.PeakSigmaT, nil
		}
	}
	t := New()
	for _, lp := range spec.LayerPairs {
		for _, pat := range spec.Patterns {
			for _, n := range spec.ArrayNs {
				for _, w := range spec.WireWidths {
					k := Key{LayerPair: lp, Pattern: pat, ArrayN: n}
					if spec.Progress != nil {
						spec.Progress(k, w)
					}
					p := spec.Base
					p.LayerPair = lp
					p.Pattern = pat
					p.ArrayN = n
					p.WireWidth = w
					sigma, err := characterize(p, spec.Solve)
					if err != nil {
						return nil, fmt.Errorf("chartable: characterizing %v at width %g: %w", k, w, err)
					}
					if err := t.Add(Entry{Key: k, WireWidth: w, Sigma: sigma}); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return t, nil
}

// jsonEntry is the serialized form of an Entry.
type jsonEntry struct {
	LowerClass int         `json:"lower_class"`
	UpperClass int         `json:"upper_class"`
	Pattern    int         `json:"pattern"`
	ArrayN     int         `json:"array_n"`
	WireWidth  float64     `json:"wire_width_m"`
	Sigma      [][]float64 `json:"sigma_pa"`
}

// Save writes the table as JSON.
func (t *Table) Save(w io.Writer) error {
	var out []jsonEntry
	for _, k := range t.Keys() {
		for _, e := range t.entries[k] {
			out = append(out, jsonEntry{
				LowerClass: int(k.LayerPair.Lower),
				UpperClass: int(k.LayerPair.Upper),
				Pattern:    int(k.Pattern),
				ArrayN:     k.ArrayN,
				WireWidth:  e.WireWidth,
				Sigma:      e.Sigma,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Load reads a table previously written by Save.
func Load(r io.Reader) (*Table, error) {
	var in []jsonEntry
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("chartable: decoding: %w", err)
	}
	t := New()
	for _, je := range in {
		e := Entry{
			Key: Key{
				LayerPair: cudd.LayerPair{
					Lower: cudd.LayerClass(je.LowerClass),
					Upper: cudd.LayerClass(je.UpperClass),
				},
				Pattern: cudd.Pattern(je.Pattern),
				ArrayN:  je.ArrayN,
			},
			WireWidth: je.WireWidth,
			Sigma:     je.Sigma,
		}
		if err := t.Add(e); err != nil {
			return nil, err
		}
	}
	return t, nil
}
