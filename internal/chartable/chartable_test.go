package chartable

import (
	"bytes"
	"math"
	"testing"

	"emvia/internal/cudd"
	"emvia/internal/fem"
	"emvia/internal/phys"
)

func sigma(n int, base float64) [][]float64 {
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			s[i][j] = base + float64(i*n+j)*1e6
		}
	}
	return s
}

func key(n int) Key {
	return Key{
		LayerPair: cudd.LayerPair{Lower: cudd.Intermediate, Upper: cudd.Top},
		Pattern:   cudd.Plus,
		ArrayN:    n,
	}
}

func TestAddValidation(t *testing.T) {
	tab := New()
	if err := tab.Add(Entry{Key: Key{ArrayN: 0}, WireWidth: 1e-6, Sigma: nil}); err == nil {
		t.Error("accepted ArrayN=0")
	}
	if err := tab.Add(Entry{Key: key(2), WireWidth: 0, Sigma: sigma(2, 2e8)}); err == nil {
		t.Error("accepted zero width")
	}
	if err := tab.Add(Entry{Key: key(2), WireWidth: 1e-6, Sigma: sigma(3, 2e8)}); err == nil {
		t.Error("accepted wrong sigma shape")
	}
	bad := sigma(2, 2e8)
	bad[1] = bad[1][:1]
	if err := tab.Add(Entry{Key: key(2), WireWidth: 1e-6, Sigma: bad}); err == nil {
		t.Error("accepted ragged sigma")
	}
	if err := tab.Add(Entry{Key: key(2), WireWidth: 1e-6, Sigma: sigma(2, 2e8)}); err != nil {
		t.Errorf("rejected valid entry: %v", err)
	}
}

func TestAddReplacesSameWidth(t *testing.T) {
	tab := New()
	mustAdd(t, tab, Entry{Key: key(1), WireWidth: 2e-6, Sigma: sigma(1, 2e8)})
	mustAdd(t, tab, Entry{Key: key(1), WireWidth: 2e-6, Sigma: sigma(1, 3e8)})
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replacement", tab.Len())
	}
	got, err := tab.Lookup(key(1), 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 3e8 {
		t.Errorf("replacement not effective: %g", got[0][0])
	}
}

func mustAdd(t *testing.T, tab *Table, e Entry) {
	t.Helper()
	if err := tab.Add(e); err != nil {
		t.Fatalf("Add: %v", err)
	}
}

func TestLookupInterpolatesAndClamps(t *testing.T) {
	tab := New()
	mustAdd(t, tab, Entry{Key: key(2), WireWidth: 2e-6, Sigma: sigma(2, 200e6)})
	mustAdd(t, tab, Entry{Key: key(2), WireWidth: 4e-6, Sigma: sigma(2, 300e6)})

	// Exact hits.
	got, err := tab.Lookup(key(2), 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 200e6 {
		t.Errorf("exact lookup = %g", got[0][0])
	}
	// Midpoint interpolation, per via.
	got, err = tab.Lookup(key(2), 3e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 250e6 + float64(i*2+j)*1e6
			if math.Abs(got[i][j]-want) > 1 {
				t.Errorf("interp via (%d,%d) = %g, want %g", i, j, got[i][j], want)
			}
		}
	}
	// Clamping below and above.
	got, _ = tab.Lookup(key(2), 1e-6)
	if got[0][0] != 200e6 {
		t.Errorf("clamp low = %g", got[0][0])
	}
	got, _ = tab.Lookup(key(2), 9e-6)
	if got[0][0] != 300e6 {
		t.Errorf("clamp high = %g", got[0][0])
	}
	// Missing family and bad width.
	if _, err := tab.Lookup(key(4), 2e-6); err == nil {
		t.Error("lookup of missing family succeeded")
	}
	if _, err := tab.Lookup(key(2), -1); err == nil {
		t.Error("lookup with negative width succeeded")
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	tab := New()
	mustAdd(t, tab, Entry{Key: key(1), WireWidth: 2e-6, Sigma: sigma(1, 2e8)})
	got, _ := tab.Lookup(key(1), 2e-6)
	got[0][0] = -1
	again, _ := tab.Lookup(key(1), 2e-6)
	if again[0][0] != 2e8 {
		t.Error("Lookup exposed internal storage")
	}
}

func TestKeysStableOrder(t *testing.T) {
	tab := New()
	k1 := Key{LayerPair: cudd.LayerPair{Lower: cudd.Top, Upper: cudd.Top}, Pattern: cudd.LShape, ArrayN: 8}
	k2 := Key{LayerPair: cudd.LayerPair{Lower: cudd.Intermediate, Upper: cudd.Intermediate}, Pattern: cudd.Plus, ArrayN: 4}
	mustAdd(t, tab, Entry{Key: k1, WireWidth: 2e-6, Sigma: sigma(8, 2e8)})
	mustAdd(t, tab, Entry{Key: k2, WireWidth: 2e-6, Sigma: sigma(4, 2e8)})
	keys := tab.Keys()
	if len(keys) != 2 || keys[0] != k2 || keys[1] != k1 {
		t.Errorf("Keys order = %v", keys)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tab := New()
	mustAdd(t, tab, Entry{Key: key(2), WireWidth: 2e-6, Sigma: sigma(2, 200e6)})
	mustAdd(t, tab, Entry{Key: key(2), WireWidth: 4e-6, Sigma: sigma(2, 300e6)})
	mustAdd(t, tab, Entry{Key: key(1), WireWidth: 2e-6, Sigma: sigma(1, 250e6)})

	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Len() != tab.Len() {
		t.Fatalf("round trip Len = %d, want %d", back.Len(), tab.Len())
	}
	for _, k := range tab.Keys() {
		for _, w := range tab.Widths(k) {
			a, err := tab.Lookup(k, w)
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.Lookup(k, w)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				for j := range a[i] {
					if a[i][j] != b[i][j] {
						t.Errorf("round trip mismatch at %v w=%g via (%d,%d)", k, w, i, j)
					}
				}
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := Load(bytes.NewBufferString(`[{"array_n":0,"wire_width_m":1e-6}]`)); err == nil {
		t.Error("accepted invalid entry")
	}
}

func TestBuildRunsFEACampaign(t *testing.T) {
	base := cudd.DefaultParams()
	base.Margin = 1.0 * phys.Micron
	base.SubstrateThickness = 0.8 * phys.Micron
	base.StepOutside = 0.6 * phys.Micron
	base.StepZBulk = 1.0 * phys.Micron
	var calls int
	tab, err := Build(BuildSpec{
		LayerPairs: []cudd.LayerPair{{Lower: cudd.Intermediate, Upper: cudd.Intermediate}},
		Patterns:   []cudd.Pattern{cudd.Plus, cudd.TShape},
		ArrayNs:    []int{2},
		WireWidths: []float64{2e-6, 2.5e-6},
		Base:       base,
		Progress:   func(Key, float64) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Errorf("progress calls = %d, want 4", calls)
	}
	if tab.Len() != 4 {
		t.Errorf("table Len = %d, want 4", tab.Len())
	}
	// Interpolated width between the two characterized points is bracketed.
	k := Key{LayerPair: cudd.LayerPair{Lower: cudd.Intermediate, Upper: cudd.Intermediate}, Pattern: cudd.Plus, ArrayN: 2}
	lo, err := tab.Lookup(k, 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := tab.Lookup(k, 2.5e-6)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := tab.Lookup(k, 2.25e-6)
	if err != nil {
		t.Fatal(err)
	}
	a, b := lo[0][0], hi[0][0]
	if a > b {
		a, b = b, a
	}
	if mid[0][0] < a-1 || mid[0][0] > b+1 {
		t.Errorf("interpolated stress %g not bracketed by [%g, %g]", mid[0][0], a, b)
	}
}

func TestBuildEmptySpec(t *testing.T) {
	if _, err := Build(BuildSpec{}); err == nil {
		t.Error("accepted empty spec")
	}
}

func TestInterpolationAccuracyVsExactFEA(t *testing.T) {
	// The paper limits w_n to 3 characterized widths and interpolates in
	// between; quantify the interpolation error against an exact FEA at the
	// midpoint width.
	base := cudd.DefaultParams()
	base.Margin = 1.0 * phys.Micron
	base.SubstrateThickness = 0.8 * phys.Micron
	base.StepOutside = 0.5 * phys.Micron
	base.StepZBulk = 1.0 * phys.Micron
	lp := cudd.LayerPair{Lower: cudd.Intermediate, Upper: cudd.Intermediate}
	tab, err := Build(BuildSpec{
		LayerPairs: []cudd.LayerPair{lp},
		Patterns:   []cudd.Pattern{cudd.Plus},
		ArrayNs:    []int{2},
		WireWidths: []float64{2e-6, 3e-6},
		Base:       base,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := Key{LayerPair: lp, Pattern: cudd.Plus, ArrayN: 2}
	interp, err := tab.Lookup(k, 2.5e-6)
	if err != nil {
		t.Fatal(err)
	}
	exactP := base
	exactP.LayerPair = lp
	exactP.Pattern = cudd.Plus
	exactP.ArrayN = 2
	exactP.WireWidth = 2.5e-6
	exact, err := cudd.Characterize(exactP, fem.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			rel := math.Abs(interp[i][j]-exact.PeakSigmaT[i][j]) / exact.PeakSigmaT[i][j]
			if rel > 0.05 {
				t.Errorf("via (%d,%d): interpolation error %.1f%% exceeds 5%%", i, j, 100*rel)
			}
		}
	}
}
