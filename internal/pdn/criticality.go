package pdn

import (
	"fmt"
	"sort"

	"emvia/internal/mc"
)

// CriticalEntry ranks one via array by how often the Monte Carlo saw it
// precipitate grid failure.
type CriticalEntry struct {
	// Via identifies the array.
	Via ViaInfo
	// FirstFailures counts trials in which this array failed first.
	FirstFailures int
	// Involvements counts trials in which it failed at all before the
	// system criterion fired.
	Involvements int
}

// CriticalityReport ranks the grid's via arrays from a Monte-Carlo result:
// the designer-facing answer to "which arrays should be upsized first?"
// (e.g. promoted from 4×4 to 8×8, the intervention Figure 9 justifies).
// Arrays with zero involvement are omitted; ties break toward higher
// involvement, then lower index for determinism.
func CriticalityReport(g *Grid, res *mc.Result, topN int) ([]CriticalEntry, error) {
	if g == nil || res == nil {
		return nil, fmt.Errorf("pdn: CriticalityReport needs a grid and a result")
	}
	n := len(g.Vias)
	first := res.FirstFailureCounts(n)
	inv := res.FailureInvolvement(n)
	var out []CriticalEntry
	for k, v := range g.Vias {
		if inv[k] == 0 {
			continue
		}
		out = append(out, CriticalEntry{Via: v, FirstFailures: first[k], Involvements: inv[k]})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.FirstFailures != b.FirstFailures {
			return a.FirstFailures > b.FirstFailures
		}
		if a.Involvements != b.Involvements {
			return a.Involvements > b.Involvements
		}
		if a.Via.IY != b.Via.IY {
			return a.Via.IY < b.Via.IY
		}
		return a.Via.IX < b.Via.IX
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out, nil
}
