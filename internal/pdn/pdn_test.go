package pdn

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"strings"
	"testing"

	"emvia/internal/cudd"
	"emvia/internal/emdist"
	"emvia/internal/phys"
	"emvia/internal/stat"
	"emvia/internal/thermal"
	"emvia/internal/viaarray"
)

func smallSpec() GridSpec {
	s := PG1Spec()
	s.NX, s.NY = 8, 8
	s.PadPeriod = 3
	return s
}

func mustGrid(t *testing.T, spec GridSpec, targetIR float64) *Grid {
	t.Helper()
	g, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if targetIR > 0 {
		if err := g.CalibrateLoad(targetIR); err != nil {
			t.Fatalf("CalibrateLoad: %v", err)
		}
	}
	return g
}

// testModels builds synthetic per-pattern TTF models with medians in years
// reflecting the pattern stress ordering (L best, Plus worst).
func testModels(refCurrent float64) map[cudd.Pattern]viaarray.TTFModel {
	mk := func(medYears, sigma float64) viaarray.TTFModel {
		return viaarray.TTFModel{
			Dist:       stat.LogNormal{Mu: math.Log(phys.YearsToSeconds(medYears)), Sigma: sigma},
			RefCurrent: refCurrent,
			FailK:      16,
		}
	}
	return map[cudd.Pattern]viaarray.TTFModel{
		cudd.Plus:   mk(6, 0.35),
		cudd.TShape: mk(7, 0.35),
		cudd.LShape: mk(8, 0.35),
	}
}

func TestValidateSpec(t *testing.T) {
	bad := smallSpec()
	bad.NX = 1
	if _, err := Generate(bad); err == nil {
		t.Error("accepted 1-stripe grid")
	}
	bad = smallSpec()
	bad.Vdd = 0
	if _, err := Generate(bad); err == nil {
		t.Error("accepted zero Vdd")
	}
	bad = smallSpec()
	bad.PadPeriod = 0
	if _, err := Generate(bad); err == nil {
		t.Error("accepted zero pad period")
	}
	bad = smallSpec()
	bad.PadPeriod = 100
	if _, err := Generate(bad); err == nil {
		t.Error("accepted padless grid")
	}
}

func TestGenerateStructure(t *testing.T) {
	spec := smallSpec()
	g := mustGrid(t, spec, 0)
	nx, ny := spec.NX, spec.NY
	wantWires := ny*(nx-1) + nx*(ny-1)
	wantVias := nx * ny
	if got := len(g.Netlist.Resistors); got != wantWires+wantVias {
		t.Errorf("resistors = %d, want %d", got, wantWires+wantVias)
	}
	if got := len(g.Vias); got != wantVias {
		t.Errorf("vias = %d, want %d", got, wantVias)
	}
	if got := len(g.Netlist.Currents); got != nx*ny {
		t.Errorf("loads = %d, want %d", got, nx*ny)
	}
	if len(g.Netlist.Voltages) == 0 {
		t.Error("no pads")
	}
	// Pattern census: 4 corners L, edge (non-corner) T, interior Plus.
	counts := g.PatternCounts()
	if counts[cudd.LShape] != 4 {
		t.Errorf("L count = %d, want 4", counts[cudd.LShape])
	}
	wantT := 2*(nx-2) + 2*(ny-2)
	if counts[cudd.TShape] != wantT {
		t.Errorf("T count = %d, want %d", counts[cudd.TShape], wantT)
	}
	wantPlus := (nx - 2) * (ny - 2)
	if counts[cudd.Plus] != wantPlus {
		t.Errorf("Plus count = %d, want %d", counts[cudd.Plus], wantPlus)
	}
	// Via resistor indices point at inter-layer resistors.
	for _, v := range g.Vias {
		r := g.Netlist.Resistors[v.ResistorIndex]
		if r.Ohms != spec.ViaArrayR {
			t.Fatalf("via resistor %s has value %g", r.Name, r.Ohms)
		}
	}
	// Total load preserved.
	sum := 0.0
	for _, c := range g.Netlist.Currents {
		sum += c.Amps
	}
	if math.Abs(sum-spec.TotalLoad)/spec.TotalLoad > 1e-9 {
		t.Errorf("total load = %g, want %g", sum, spec.TotalLoad)
	}
}

func TestCalibrateLoad(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0)
	if err := g.CalibrateLoad(0.05); err != nil {
		t.Fatal(err)
	}
	frac, err := g.NominalIRDropFrac()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac-0.05) > 1e-6 {
		t.Errorf("calibrated IR drop = %g, want 0.05", frac)
	}
	if err := g.CalibrateLoad(0); err == nil {
		t.Error("accepted zero target")
	}
	if err := g.CalibrateLoad(1.5); err == nil {
		t.Error("accepted target ≥ 1")
	}
}

func TestNewSystemRejectsViolatedNominal(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.2)
	cfg := TTFConfig{
		Grid:       g,
		Models:     testModels(refCurrentOf(t, g)),
		Criterion:  IRDrop,
		IRDropFrac: 0.10,
	}
	if _, err := NewSystem(cfg); err == nil {
		t.Error("accepted grid whose nominal IR drop exceeds the criterion")
	}
}

// refCurrentOf estimates a representative via current for model scaling.
func refCurrentOf(t *testing.T, g *Grid) float64 {
	t.Helper()
	sys, err := NewSystem(TTFConfig{
		Grid:      g,
		Models:    testModels(1), // placeholder scaling
		Criterion: WeakestLink,
	})
	if err != nil {
		t.Fatal(err)
	}
	max := 0.0
	for _, i := range sys.i0 {
		if i > max {
			max = i
		}
	}
	if max == 0 {
		t.Fatal("grid carries no via current")
	}
	return max
}

func TestConfigValidation(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	if err := (TTFConfig{}).Validate(); err == nil {
		t.Error("accepted empty config")
	}
	cfg := TTFConfig{Grid: g, Models: map[cudd.Pattern]viaarray.TTFModel{}}
	if err := cfg.Validate(); err == nil {
		t.Error("accepted missing pattern models")
	}
	cfg = TTFConfig{Grid: g, Models: testModels(1), Criterion: IRDrop, IRDropFrac: 0}
	if err := cfg.Validate(); err == nil {
		t.Error("accepted zero IR threshold")
	}
}

func TestWeakestLinkSingleEvent(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	cfg := TTFConfig{Grid: g, Models: testModels(refCurrentOf(t, g)), Criterion: WeakestLink}
	res, err := AnalyzeTTF(cfg, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range res.Events {
		if len(ev) != 1 {
			t.Errorf("trial %d: %d events under weakest-link, want 1", i, len(ev))
		}
		if res.TTF[i] != ev[0] {
			t.Errorf("trial %d: TTF %g != first event %g", i, res.TTF[i], ev[0])
		}
	}
}

func TestIRDropOutlivesWeakestLink(t *testing.T) {
	// The paper's central system-level claim: the 10 % IR-drop criterion
	// yields much longer TTFs than weakest-link because the mesh tolerates
	// many failures.
	g := mustGrid(t, smallSpec(), 0.05)
	ref := refCurrentOf(t, g)
	wl, err := AnalyzeTTF(TTFConfig{Grid: g, Models: testModels(ref), Criterion: WeakestLink}, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := AnalyzeTTF(TTFConfig{Grid: g, Models: testModels(ref), Criterion: IRDrop, IRDropFrac: 0.10}, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	mWL := median(t, wl.FiniteTTF())
	mIR := median(t, ir.FiniteTTF())
	t.Logf("median TTF: weakest-link %.2f y, IR-drop %.2f y",
		phys.SecondsToYears(mWL), phys.SecondsToYears(mIR))
	if mIR <= mWL {
		t.Errorf("IR-drop TTF %g not above weakest-link %g", mIR, mWL)
	}
	// IR-drop trials fail multiple arrays before the criterion fires.
	totalEvents := 0
	for _, ev := range ir.Events {
		totalEvents += len(ev)
	}
	if avg := float64(totalEvents) / float64(len(ir.Events)); avg < 2 {
		t.Errorf("IR-drop trials average %.1f failures, expected > 2 (mesh redundancy)", avg)
	}
}

func median(t *testing.T, s []float64) float64 {
	t.Helper()
	e, err := stat.NewECDF(s)
	if err != nil {
		t.Fatal(err)
	}
	return e.Percentile(0.5)
}

func TestLongerLivedModelsExtendGridTTF(t *testing.T) {
	// Doubling every array's median TTF must roughly double the grid TTF
	// (sanity of the model plumbing).
	g := mustGrid(t, smallSpec(), 0.05)
	ref := refCurrentOf(t, g)
	base := testModels(ref)
	double := map[cudd.Pattern]viaarray.TTFModel{}
	for k, m := range base {
		m.Dist.Mu += math.Log(2)
		double[k] = m
	}
	r1, err := AnalyzeTTF(TTFConfig{Grid: g, Models: base, Criterion: IRDrop, IRDropFrac: 0.10}, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := AnalyzeTTF(TTFConfig{Grid: g, Models: double, Criterion: IRDrop, IRDropFrac: 0.10}, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := median(t, r1.FiniteTTF()), median(t, r2.FiniteTTF())
	if ratio := m2 / m1; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("doubling model TTF scaled grid TTF by %.2f, want ≈ 2", ratio)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	ref := refCurrentOf(t, g)
	cfg := TTFConfig{Grid: g, Models: testModels(ref), Criterion: IRDrop, IRDropFrac: 0.10}
	a, err := AnalyzeTTF(cfg, 16, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeTTF(cfg, 16, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.TTF {
		if a.TTF[i] != b.TTF[i] {
			t.Fatalf("trial %d: %g != %g", i, a.TTF[i], b.TTF[i])
		}
	}
}

func TestImportRoundTrip(t *testing.T) {
	spec := smallSpec()
	g := mustGrid(t, spec, 0.05)
	var buf bytes.Buffer
	if err := g.Netlist.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDeck(&buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Vias) != len(g.Vias) {
		t.Fatalf("imported %d vias, want %d", len(back.Vias), len(g.Vias))
	}
	// Pattern census must survive the round trip.
	a, b := g.PatternCounts(), back.PatternCounts()
	for pat, n := range a {
		if b[pat] != n {
			t.Errorf("pattern %v: imported %d, want %d", pat, b[pat], n)
		}
	}
	// And the imported grid must solve to the same nominal IR drop.
	f1, err := g.NominalIRDropFrac()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := back.NominalIRDropFrac()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f1-f2) > 1e-9 {
		t.Errorf("IR drop changed across import: %g vs %g", f1, f2)
	}
}

func TestImportRejectsViaFreeDecks(t *testing.T) {
	nl := &(mustGrid(t, smallSpec(), 0)).Netlist
	_ = nl
	var buf bytes.Buffer
	buf.WriteString("R1 a b 1\nV1 a 0 1.8\n")
	if _, err := LoadDeck(&buf, smallSpec()); err == nil {
		t.Error("accepted deck without via arrays")
	}
}

func TestPatternForExhaustive(t *testing.T) {
	if PatternFor(0, 0, 5, 5) != cudd.LShape {
		t.Error("corner not L")
	}
	if PatternFor(4, 4, 5, 5) != cudd.LShape {
		t.Error("far corner not L")
	}
	if PatternFor(2, 0, 5, 5) != cudd.TShape {
		t.Error("edge not T")
	}
	if PatternFor(2, 2, 5, 5) != cudd.Plus {
		t.Error("interior not Plus")
	}
}

func TestPGSpecsGrowing(t *testing.T) {
	s1, s2, s5 := PG1Spec(), PG2Spec(), PG5Spec()
	if !(s1.NX*s1.NY < s2.NX*s2.NY && s2.NX*s2.NY < s5.NX*s5.NY) {
		t.Error("benchmark sizes not increasing PG1 < PG2 < PG5")
	}
	for _, s := range []GridSpec{s1, s2, s5} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s spec invalid: %v", s.Name, err)
		}
	}
}

func TestTuneHitsBothTargets(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0)
	if err := g.Tune(0.05, 0.01); err != nil {
		t.Fatal(err)
	}
	imax, ir, err := g.MaxViaCurrent()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imax-0.01)/0.01 > 0.05 {
		t.Errorf("busiest via current = %g, want ≈ 0.01", imax)
	}
	if math.Abs(ir-0.05)/0.05 > 0.05 {
		t.Errorf("IR fraction = %g, want ≈ 0.05", ir)
	}
	// Re-tuning to different targets converges too.
	if err := g.Tune(0.08, 0.02); err != nil {
		t.Fatal(err)
	}
	imax, ir, err = g.MaxViaCurrent()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imax-0.02)/0.02 > 0.05 || math.Abs(ir-0.08)/0.08 > 0.05 {
		t.Errorf("re-tune: imax=%g ir=%g", imax, ir)
	}
}

func TestTuneValidation(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0)
	if err := g.Tune(0, 0.01); err == nil {
		t.Error("accepted zero IR target")
	}
	if err := g.Tune(1.5, 0.01); err == nil {
		t.Error("accepted IR target ≥ 1")
	}
	if err := g.Tune(0.05, 0); err == nil {
		t.Error("accepted zero current target")
	}
}

func TestCriterionString(t *testing.T) {
	if WeakestLink.String() != "Weakest-link" {
		t.Errorf("WeakestLink = %q", WeakestLink)
	}
	if IRDrop.String() != "IR-drop" {
		t.Errorf("IRDrop = %q", IRDrop)
	}
	if s := Criterion(99).String(); s == "" {
		t.Error("unknown criterion empty string")
	}
}

func TestSystemStateAccessors(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	sys, err := NewSystem(TTFConfig{
		Grid:       g,
		Models:     testModels(refCurrentOf(t, g)),
		Criterion:  IRDrop,
		IRDropFrac: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := randNew(7)
	if err := sys.BeginTrial(rng); err != nil {
		t.Fatal(err)
	}
	if sys.FailedCount() != 0 {
		t.Errorf("fresh trial FailedCount = %d", sys.FailedCount())
	}
	if frac := sys.WorstIRDropFrac(); math.Abs(frac-0.05) > 0.005 {
		t.Errorf("initial IR frac = %g, want ≈ 0.05", frac)
	}
	if err := sys.Fail(0); err != nil {
		t.Fatal(err)
	}
	if sys.FailedCount() != 1 {
		t.Errorf("FailedCount after one failure = %d", sys.FailedCount())
	}
	if err := sys.Fail(0); err == nil {
		t.Error("double failure accepted")
	}
	// A second BeginTrial restores the pristine state.
	if err := sys.BeginTrial(rng); err != nil {
		t.Fatal(err)
	}
	if sys.FailedCount() != 0 {
		t.Error("BeginTrial did not reset failures")
	}
	if frac := sys.WorstIRDropFrac(); math.Abs(frac-0.05) > 0.005 {
		t.Errorf("restored IR frac = %g", frac)
	}
}

func TestAnalyzeTTFValidation(t *testing.T) {
	if _, err := AnalyzeTTF(TTFConfig{}, 10, 1); err == nil {
		t.Error("accepted empty config")
	}
}

func TestNominalIRDropFracRejectsBrokenNetlist(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0)
	// Conflicting pads make compilation fail.
	g.Netlist.Voltages = append(g.Netlist.Voltages, g.Netlist.Voltages[0])
	g.Netlist.Voltages[len(g.Netlist.Voltages)-1].Volts = 99
	if _, err := g.NominalIRDropFrac(); err == nil {
		t.Error("accepted conflicting pads")
	}
}

func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestWireBlechScreen(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0)
	if err := g.Tune(0.065, 0.01); err != nil {
		t.Fatal(err)
	}
	em := emdistDefault()
	rep, err := g.WireBlechScreen(em, 115e6)
	if err != nil {
		t.Fatal(err)
	}
	wantSegs := len(g.Netlist.Resistors) - len(g.Vias)
	if rep.Segments != wantSegs {
		t.Errorf("segments = %d, want %d", rep.Segments, wantSegs)
	}
	if rep.WorstJL <= 0 || rep.Threshold <= 0 {
		t.Errorf("degenerate report: %+v", rep)
	}
	if f := rep.ImmortalFraction(); f < 0 || f > 1 {
		t.Errorf("immortal fraction = %g", f)
	}
	t.Logf("Blech screen: %d/%d mortal segments, worst jL %.3g of threshold %.3g",
		rep.Mortal, rep.Segments, rep.WorstJL, rep.Threshold)
	// A vanishing critical stress makes every loaded segment mortal.
	strict, err := g.WireBlechScreen(em, 1)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Mortal == 0 {
		t.Error("near-zero critical stress flagged nothing")
	}
	if _, err := g.WireBlechScreen(em, 0); err == nil {
		t.Error("accepted zero critical stress")
	}
}

func emdistDefault() emdist.Params { return emdist.Default() }

func TestPowerMapAttribution(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0)
	if err := g.Tune(0.065, 0.01); err != nil {
		t.Fatal(err)
	}
	power, err := g.PowerMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(power) != g.Spec.NX*g.Spec.NY {
		t.Fatalf("power map length %d", len(power))
	}
	total := 0.0
	for i, p := range power {
		if p < 0 {
			t.Fatalf("negative power at node %d", i)
		}
		total += p
	}
	// The grid dissipates roughly Vdd × total load (all load current flows
	// from the pads); Joule + load split must land in that ballpark.
	want := g.Spec.Vdd * g.Spec.TotalLoad
	if total < 0.5*want || total > 1.5*want {
		t.Errorf("total power %g W, expected near %g W", total, want)
	}
}

func TestThermalProfileHotterUnderLoad(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0)
	if err := g.Tune(0.065, 0.01); err != nil {
		t.Fatal(err)
	}
	tm, temps, err := g.ThermalProfile(thermal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(temps) != len(g.Vias) {
		t.Fatalf("temps length %d", len(temps))
	}
	for k, tc := range temps {
		if tc <= 44 || tc > 250 {
			t.Errorf("array %d at %g °C implausible", k, tc)
		}
	}
	if tm.MaxTemp() <= tm.MeanTemp() {
		t.Error("max not above mean for a nonuniform power map")
	}
	// Mismatched lattice is rejected.
	bad := thermal.DefaultConfig(3, 3, g.Spec.Pitch)
	if _, _, err := g.ThermalProfile(bad); err == nil {
		t.Error("accepted mismatched thermal lattice")
	}
}

func TestTTFScaleDeratesGrid(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	ref := refCurrentOf(t, g)
	base := TTFConfig{Grid: g, Models: testModels(ref), Criterion: IRDrop, IRDropFrac: 0.10}
	r1, err := AnalyzeTTF(base, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	scaled := base
	scaled.TTFScale = make([]float64, len(g.Vias))
	for i := range scaled.TTFScale {
		scaled.TTFScale[i] = 0.5
	}
	r2, err := AnalyzeTTF(scaled, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := median(t, r1.FiniteTTF()), median(t, r2.FiniteTTF())
	if ratio := m2 / m1; math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("uniform 0.5 derating scaled grid TTF by %g", ratio)
	}
	// Invalid scales rejected.
	bad := base
	bad.TTFScale = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Error("accepted wrong-length TTFScale")
	}
	bad.TTFScale = make([]float64, len(g.Vias))
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero TTFScale entries")
	}
}

func TestGenerateMultiLayerStructure(t *testing.T) {
	spec := MultiLayerSpec{
		Name: "ML", Layers: 4, NX: 6, NY: 6,
		Pitch: 100e-6, WireWidth: 2e-6, WireThickness: 0.45e-6,
		RhoCu: 2.75e-8, Vdd: 1.8, PadPeriod: 3, TotalLoad: 0.1,
		ViaArrayR: 0.05, Seed: 2,
	}
	ml, err := GenerateMultiLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Via arrays: (Layers−1) × NX×NY.
	wantVias := 3 * 36
	if len(ml.Vias) != wantVias || len(ml.Grid.Vias) != wantVias {
		t.Fatalf("vias = %d/%d, want %d", len(ml.Vias), len(ml.Grid.Vias), wantVias)
	}
	// Layer pairs: two intermediate–intermediate pairs + one
	// intermediate–top pair (layers 3→4).
	counts := ml.PairCounts()
	ii := cudd.LayerPair{Lower: cudd.Intermediate, Upper: cudd.Intermediate}
	it := cudd.LayerPair{Lower: cudd.Intermediate, Upper: cudd.Top}
	if counts[ii] != 2*36 || counts[it] != 36 {
		t.Errorf("pair counts = %v", counts)
	}
	// The grid solves and tunes like a single-pair grid.
	if err := ml.Grid.Tune(0.065, 0.01); err != nil {
		t.Fatalf("Tune: %v", err)
	}
	imax, ir, err := ml.Grid.MaxViaCurrent()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imax-0.01)/0.01 > 0.05 || math.Abs(ir-0.065)/0.065 > 0.05 {
		t.Errorf("tuned imax=%g ir=%g", imax, ir)
	}
	// Validation.
	bad := spec
	bad.Layers = 1
	if _, err := GenerateMultiLayer(bad); err == nil {
		t.Error("accepted single layer")
	}
	bad = spec
	bad.PadPeriod = 100
	if _, err := GenerateMultiLayer(bad); err == nil {
		t.Error("accepted padless grid")
	}
}

func TestPerViaModelsOverride(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	ref := refCurrentOf(t, g)
	base := testModels(ref)
	perVia := make([]viaarray.TTFModel, len(g.Vias))
	for i, v := range g.Vias {
		perVia[i] = base[v.Pattern]
	}
	cfgMap := TTFConfig{Grid: g, Models: base, Criterion: IRDrop, IRDropFrac: 0.10}
	cfgVia := TTFConfig{Grid: g, PerViaModels: perVia, Criterion: IRDrop, IRDropFrac: 0.10}
	r1, err := AnalyzeTTF(cfgMap, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := AnalyzeTTF(cfgVia, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.TTF {
		if r1.TTF[i] != r2.TTF[i] {
			t.Fatalf("trial %d differs: %g vs %g", i, r1.TTF[i], r2.TTF[i])
		}
	}
	// Validation of the override.
	bad := cfgVia
	bad.PerViaModels = perVia[:3]
	if err := bad.Validate(); err == nil {
		t.Error("accepted wrong-length PerViaModels")
	}
	bad.PerViaModels = make([]viaarray.TTFModel, len(g.Vias))
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero-current models")
	}
}

func TestCriticalityReport(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	ref := refCurrentOf(t, g)
	res, err := AnalyzeTTF(TTFConfig{Grid: g, Models: testModels(ref), Criterion: IRDrop, IRDropFrac: 0.10}, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CriticalityReport(g, res, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) == 0 || len(rep) > 10 {
		t.Fatalf("report size = %d", len(rep))
	}
	totalFirst := 0
	for i, e := range rep {
		if e.Involvements < e.FirstFailures {
			t.Errorf("entry %d: involvement %d < first %d", i, e.Involvements, e.FirstFailures)
		}
		if i > 0 && rep[i-1].FirstFailures < e.FirstFailures {
			t.Error("report not sorted by first failures")
		}
		totalFirst += e.FirstFailures
	}
	// Every trial has a first failure; with topN=10 the listed entries may
	// not cover all 60, but a meaningful fraction should concentrate there.
	if totalFirst == 0 {
		t.Error("no first failures recorded in the top entries")
	}
	if _, err := CriticalityReport(nil, res, 5); err == nil {
		t.Error("accepted nil grid")
	}
}

func TestWriteIRDropSVG(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	var buf bytes.Buffer
	if err := g.WriteIRDropSVG(&buf, 320); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(out, "worst IR drop") {
		t.Error("missing annotation")
	}
	// Pads marked.
	if !strings.Contains(out, "<circle") {
		t.Error("missing pad markers")
	}
	// Cell count: one rect per intersection.
	if n := strings.Count(out, "<rect"); n != g.Spec.NX*g.Spec.NY {
		t.Errorf("rect count %d, want %d", n, g.Spec.NX*g.Spec.NY)
	}
}

func TestGoldenDeckLoadsAndSolves(t *testing.T) {
	f, err := os.Open("testdata/pg_mini.sp")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec := PG1Spec()
	g, err := LoadDeck(f, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Vias) != 64 {
		t.Fatalf("golden deck vias = %d, want 64", len(g.Vias))
	}
	imax, ir, err := g.MaxViaCurrent()
	if err != nil {
		t.Fatal(err)
	}
	// The deck was generated tuned to 6.5 % IR / 10 mA busiest array; the
	// solve must reproduce that within write/parse rounding.
	if math.Abs(ir-0.065) > 1e-3 {
		t.Errorf("golden deck IR = %g, want 0.065", ir)
	}
	if math.Abs(imax-0.01) > 1e-4 {
		t.Errorf("golden deck busiest array = %g, want 0.01", imax)
	}
	counts := g.PatternCounts()
	if counts[cudd.LShape] != 4 || counts[cudd.TShape] != 24 || counts[cudd.Plus] != 36 {
		t.Errorf("golden deck pattern census = %v", counts)
	}
}

func TestMultiLayerThermalProfile(t *testing.T) {
	spec := MultiLayerSpec{
		Name: "MLT", Layers: 3, NX: 6, NY: 6,
		Pitch: 100e-6, WireWidth: 2e-6, WireThickness: 0.45e-6,
		RhoCu: 2.75e-8, Vdd: 1.8, PadPeriod: 3, TotalLoad: 0.1,
		ViaArrayR: 0.05, Seed: 6,
	}
	ml, err := GenerateMultiLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ml.Grid.Tune(0.065, 0.01); err != nil {
		t.Fatal(err)
	}
	tm, temps, err := ml.Grid.ThermalProfile(thermal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(temps) != len(ml.Grid.Vias) {
		t.Fatalf("temps = %d, want %d", len(temps), len(ml.Grid.Vias))
	}
	if tm.MaxTemp() < 90 {
		t.Errorf("max temp %g below ambient", tm.MaxTemp())
	}
	// Stacked arrays at the same (x,y) share the lattice temperature.
	byXY := map[[2]int]float64{}
	for k, v := range ml.Grid.Vias {
		key := [2]int{v.IX, v.IY}
		if prev, ok := byXY[key]; ok {
			if prev != temps[k] {
				t.Fatalf("stacked arrays at %v see different temps: %g vs %g", key, prev, temps[k])
			}
		} else {
			byXY[key] = temps[k]
		}
	}
}
