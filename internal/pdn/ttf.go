package pdn

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"emvia/internal/cudd"
	"emvia/internal/mc"
	"emvia/internal/spice"
	"emvia/internal/trace"
	"emvia/internal/viaarray"
)

// Criterion is the power-grid (system-level) failure criterion of §5.2.
type Criterion int

// System failure criteria.
const (
	// WeakestLink declares the grid dead at the first via-array failure —
	// the traditional, pessimistic criterion the paper argues against.
	WeakestLink Criterion = iota
	// IRDrop declares the grid dead when the worst IR drop exceeds a
	// fraction of Vdd (paper: 10 %), crediting mesh redundancy.
	IRDrop
)

// String names the criterion as in the paper's tables.
func (c Criterion) String() string {
	switch c {
	case WeakestLink:
		return "Weakest-link"
	case IRDrop:
		return "IR-drop"
	}
	return fmt.Sprintf("pdn.Criterion(%d)", int(c))
}

// TTFConfig describes a grid TTF analysis.
type TTFConfig struct {
	// Grid is the power grid under analysis.
	Grid *Grid
	// Models maps each intersection pattern to its characterized via-array
	// TTF model (paper §5.1 output). All three patterns present in the
	// grid must be covered.
	Models map[cudd.Pattern]viaarray.TTFModel
	// Criterion selects the system failure criterion.
	Criterion Criterion
	// IRDropFrac is the IR-drop threshold as a fraction of Vdd (paper:
	// 0.10); required when Criterion == IRDrop.
	IRDropFrac float64
	// TTFScale optionally multiplies each array's sampled TTF (g.Vias
	// order): the hook for local-temperature derating (Arrhenius + stress
	// relaxation) computed by the thermal analysis. Nil means uniform 1.
	TTFScale []float64
	// PerViaModels optionally overrides Models with one TTF model per via
	// array (g.Vias order) — the hook for multi-layer grids where each
	// array's model depends on its layer pair as well as its pattern.
	PerViaModels []viaarray.TTFModel
}

// Validate checks the configuration against the grid.
func (c TTFConfig) Validate() error {
	if c.Grid == nil {
		return fmt.Errorf("pdn: TTFConfig needs a grid")
	}
	if c.PerViaModels != nil {
		if len(c.PerViaModels) != len(c.Grid.Vias) {
			return fmt.Errorf("pdn: PerViaModels has %d entries, want %d", len(c.PerViaModels), len(c.Grid.Vias))
		}
		for k, m := range c.PerViaModels {
			if m.RefCurrent <= 0 {
				return fmt.Errorf("pdn: PerViaModels[%d] has non-positive reference current", k)
			}
		}
	} else {
		for pat := range c.Grid.PatternCounts() {
			if _, ok := c.Models[pat]; !ok {
				return fmt.Errorf("pdn: no TTF model for %v via arrays", pat)
			}
		}
	}
	if c.Criterion == IRDrop && (c.IRDropFrac <= 0 || c.IRDropFrac >= 1) {
		return fmt.Errorf("pdn: IRDropFrac must be in (0,1), got %g", c.IRDropFrac)
	}
	if c.TTFScale != nil {
		if len(c.TTFScale) != len(c.Grid.Vias) {
			return fmt.Errorf("pdn: TTFScale has %d entries, want %d", len(c.TTFScale), len(c.Grid.Vias))
		}
		for k, s := range c.TTFScale {
			if s <= 0 || math.IsNaN(s) {
				return fmt.Errorf("pdn: TTFScale[%d] = %g invalid", k, s)
			}
		}
	}
	return nil
}

// GridSystem is the mc.System of the second hierarchy level: components are
// via arrays, failure opens them, and the criterion is grid IR integrity.
type GridSystem struct {
	cfg     TTFConfig
	circuit *spice.Circuit

	i0  []float64 // pristine per-array current magnitudes
	op0 *spice.OP // pristine operating point

	alive       []bool
	baseTTF     []float64
	iNow        []float64
	opNow       *spice.OP
	failedCount int

	// Two spare operating points double-buffer the re-solves inside a trial:
	// Fail always solves into the spare opNow does not occupy, so op0 is
	// never overwritten and the inner loop allocates nothing.
	opA, opB *spice.OP

	// Batched trial preparation (mc.TrialPreparer). PrepareTrials predicts
	// each upcoming trial's first failure from its seed, batch-solves the
	// Sherman–Morrison correction vectors for the distinct first failures of
	// the group in one multi-RHS sweep, and stores one entry per trial;
	// BeginTrial consumes the entries in order and Fail serves the first
	// post-failure solution from them instead of a triangular solve.
	prep     []prepTrial
	prepNext int
	prepK    int // predicted first failure of the running trial; -1 = none
	prepCoef float64
	prepZOff int
	prepZ    []float64 // correction vectors A⁻¹·u, one per distinct first failure
	prepB    []float64 // batched right-hand sides (the u vectors)
	yFree    []float64 // pristine free-node solution (gathered from op0 once)
	xScratch []float64

	// candidates is the steady screen's mortal mask (mc.CandidateMasker);
	// nil runs the legacy sequential sampling stream. With a mask set,
	// BeginTrial draws one base seed per trial and samples each candidate
	// from its own derived substream, so the sampled TTF of a via array
	// depends only on (trial, array) — never on which other arrays are in
	// the mask. sub is the reusable substream generator.
	candidates []bool
	sub        *rand.Rand

	// circuitDirty records that a trial edited the compiled circuit (opened
	// a via), so the next BeginTrial must restore the pristine matrix and
	// factor. Weakest-link trials never edit the circuit — the trial is
	// over at the first failure, before anything reads the matrix again —
	// which keeps the expensive sparse-factor restore off that path.
	circuitDirty bool
}

// prepTrial is one prepared trial: the predicted first-failing array and the
// Sherman–Morrison coefficient against correction vector zoff.
type prepTrial struct {
	k     int // first-failing via array; -1 when the trial never fails
	zoff  int // index into prepZ; -1 when the failure leaves the free system unchanged
	coef  float64
	valid bool
}

// NewSystem compiles the grid and solves the pristine operating point. It
// rejects grids whose nominal IR drop already violates the criterion.
func NewSystem(cfg TTFConfig) (*GridSystem, error) {
	return NewSystemCtx(context.Background(), cfg)
}

// NewSystemCtx is NewSystem with a context whose timeline (if any) gets the
// "compile" and "factorize" stage spans. The context is observational only:
// system construction is a bounded amount of work and does not check for
// cancellation.
func NewSystemCtx(ctx context.Context, cfg TTFConfig) (*GridSystem, error) {
	tl := trace.TimelineFrom(ctx)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	endCompile := tl.Stage("compile")
	circuit, err := spice.Compile(cfg.Grid.Netlist)
	endCompile()
	if err != nil {
		return nil, fmt.Errorf("pdn: compiling grid: %w", err)
	}
	endFactorize := tl.Stage("factorize")
	op, err := circuit.SolveDC(nil)
	endFactorize()
	if err != nil {
		return nil, fmt.Errorf("pdn: pristine solve: %w", err)
	}
	if cfg.Criterion == IRDrop {
		if frac := op.WorstIRDropFrac(cfg.Grid.Spec.Vdd); frac >= cfg.IRDropFrac {
			return nil, fmt.Errorf("pdn: nominal IR drop %.1f%% already violates the %.1f%% criterion; calibrate the load first",
				frac*100, cfg.IRDropFrac*100)
		}
	}
	s := &GridSystem{cfg: cfg, circuit: circuit, op0: op}
	// Put the solver into its canonical post-reset state (slots compiled,
	// pristine factor snapshot taken) once up front, so trials on a fresh
	// system and on a Clone start from bit-identical solver state whether
	// or not BeginTrial's dirty gate runs another restore in between.
	circuit.ResetResistors()
	s.opA = circuit.NewOP()
	s.opB = circuit.NewOP()
	s.i0 = make([]float64, len(cfg.Grid.Vias))
	for k, v := range cfg.Grid.Vias {
		s.i0[k] = math.Abs(op.ResistorCurrent(v.ResistorIndex))
	}
	return s, nil
}

// Clone returns an independent system for another Monte-Carlo worker. The
// cloned circuit shares every immutable compile-time artifact (node tables,
// sparsity pattern, slot map, symbolic factor structure) with the receiver
// and copies the mutable numeric state, so per-worker systems skip the
// compile + order + factor cost entirely while producing bit-identical
// trials. Cloning only reads the receiver: concurrent clones of one master
// are safe.
func (s *GridSystem) Clone() *GridSystem {
	circuit := s.circuit.Clone()
	d := &GridSystem{
		cfg:        s.cfg,
		circuit:    circuit,
		i0:         s.i0, // pristine currents are write-once
		op0:        s.op0.CloneFor(circuit),
		candidates: s.candidates, // write-once after SetCandidates
		// The source may have been cloned mid-run with vias open; make the
		// clone's first BeginTrial restore the pristine state.
		circuitDirty: true,
	}
	d.opA = circuit.NewOP()
	d.opB = circuit.NewOP()
	return d
}

// NumComponents returns the via-array count.
func (s *GridSystem) NumComponents() int { return len(s.cfg.Grid.Vias) }

var _ mc.TrialPreparer = (*GridSystem)(nil)
var _ mc.CandidateMasker = (*GridSystem)(nil)

// subSeed derives the sampling substream seed of array k in a masked trial
// from the trial's base draw (splitmix-style mixing, as mc derives trial
// seeds from the run seed).
func subSeed(base int64, k int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(k+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// splitmixSource is a rand.Source64 with O(1) reseeding (splitmix64). The
// masked sampling path reseeds once per candidate per trial; the stock
// math/rand source pays a 607-word state rebuild per Seed, which would cost
// more than the sampling it feeds. Reseeding this source is one store.
type splitmixSource struct{ s uint64 }

func (p *splitmixSource) Seed(seed int64) { p.s = uint64(seed) }

func (p *splitmixSource) Uint64() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *splitmixSource) Int63() int64 { return int64(p.Uint64() >> 1) }

// SetCandidates implements mc.CandidateMasker: it restricts the trials to
// the masked via arrays and switches TTF sampling to per-array substreams,
// so shrinking the mask never perturbs the sampled lifetimes of the arrays
// that remain. A nil mask restores the legacy sequential stream.
func (s *GridSystem) SetCandidates(mask []bool) error {
	if mask == nil {
		s.candidates = nil
		return nil
	}
	if len(mask) != s.NumComponents() {
		return fmt.Errorf("pdn: candidate mask has %d entries, want %d", len(mask), s.NumComponents())
	}
	any := false
	for _, m := range mask {
		if m {
			any = true
			break
		}
	}
	if !any {
		return fmt.Errorf("pdn: candidate mask excludes every via array")
	}
	s.candidates = append([]bool(nil), mask...)
	return nil
}

// ensureSub returns the reusable substream generator.
func (s *GridSystem) ensureSub() *rand.Rand {
	if s.sub == nil {
		s.sub = rand.New(new(splitmixSource))
	}
	return s.sub
}

// BeginTrial restores the pristine grid and samples array TTFs at their
// nominal currents.
func (s *GridSystem) BeginTrial(rng *rand.Rand) error {
	n := s.NumComponents()
	if s.alive == nil {
		s.alive = make([]bool, n)
		s.baseTTF = make([]float64, n)
		s.iNow = make([]float64, n)
	}
	// Restore the vias opened by the previous trial and put the solver into
	// its canonical pristine state (matrix values, factor, preconditioner),
	// so trial outcomes do not depend on which trials ran before on this
	// system instance. A clean circuit (weakest-link trials, or a fresh
	// system) skips the restore — on large sparse grids it is the single
	// most expensive step of a sampling-bound trial.
	if s.circuitDirty {
		s.circuit.ResetResistors()
		s.circuitDirty = false
	}
	for k := range s.alive {
		s.alive[k] = true
	}
	s.failedCount = 0
	copy(s.iNow, s.i0)
	s.opNow = s.op0
	if s.candidates == nil {
		for k, v := range s.cfg.Grid.Vias {
			var model viaarray.TTFModel
			if s.cfg.PerViaModels != nil {
				model = s.cfg.PerViaModels[k]
			} else {
				model = s.cfg.Models[v.Pattern]
			}
			s.baseTTF[k] = model.Sample(rng, s.i0[k])
			if s.cfg.TTFScale != nil {
				s.baseTTF[k] *= s.cfg.TTFScale[k]
			}
		}
	} else {
		// Masked sampling: one base draw from the trial stream, then an
		// independent substream per candidate. Exactly one draw is taken
		// from rng whatever the mask, and substream seeds depend only on
		// (base, k), which is what makes screened runs mask-monotone.
		base := rng.Int63()
		sub := s.ensureSub()
		for k, v := range s.cfg.Grid.Vias {
			if !s.candidates[k] {
				s.baseTTF[k] = math.Inf(1)
				continue
			}
			var model viaarray.TTFModel
			if s.cfg.PerViaModels != nil {
				model = s.cfg.PerViaModels[k]
			} else {
				model = s.cfg.Models[v.Pattern]
			}
			sub.Seed(subSeed(base, k))
			s.baseTTF[k] = model.Sample(sub, s.i0[k])
			if s.cfg.TTFScale != nil {
				s.baseTTF[k] *= s.cfg.TTFScale[k]
			}
		}
	}
	// Consume this trial's prepared entry, if a group was prepared. Entries
	// are queued in trial order, matching the engine's in-order group run.
	s.prepK = -1
	if s.prepNext < len(s.prep) {
		e := s.prep[s.prepNext]
		s.prepNext++
		if e.valid {
			s.prepK = e.k
			s.prepZOff = e.zoff
			s.prepCoef = e.coef
		}
	}
	return nil
}

// PrepareTrials implements mc.TrialPreparer: ahead of a trial group it
// replays each trial's TTF sampling from its seed, predicts the trial's
// first failure — the strict argmin of sampled TTF over arrays carrying
// current, exactly the engine's first scheduling decision — and solves for
// the distinct Sherman–Morrison correction vectors of the group in one
// batched multi-RHS sweep over the pristine factor. Fail then reconstructs
// the post-first-failure operating point as x = y − coef·z instead of
// paying a per-trial triangular solve. Preparation is skipped (leaving the
// exact legacy path) under the weakest-link criterion, off the sparse
// direct backend, and for predicted failures touching a non-ground pad.
func (s *GridSystem) PrepareTrials(seeds []int64) error {
	s.prep = s.prep[:0]
	s.prepNext = 0
	s.prepK = -1
	if s.cfg.Criterion == WeakestLink || s.circuit.SolverBackend() != spice.SolverSparse.String() {
		return nil
	}
	// The corrections expand about the pristine system; make it current.
	s.circuit.ResetResistors()
	s.circuitDirty = false
	n := s.circuit.NumFree()
	if s.yFree == nil {
		s.yFree = make([]float64, n)
		if err := s.circuit.GatherFree(s.yFree, s.op0); err != nil {
			return err
		}
		s.xScratch = make([]float64, n)
	}
	// Predict each trial's first failure; deduplicate the correction solves.
	zof := make(map[int]int, len(seeds)) // resistor index -> slot in prepZ
	var zri []int                        // slot -> resistor index
	rng := rand.New(rand.NewSource(0))
	for _, seed := range seeds {
		rng.Seed(seed)
		// Mirror BeginTrial's sampling stream exactly — the legacy sequential
		// draws, or the masked base-draw-plus-substreams — same draw order,
		// same scaling, so the predicted argmin is the one the engine will
		// pick.
		var base int64
		var sub *rand.Rand
		if s.candidates != nil {
			base = rng.Int63()
			sub = s.ensureSub()
		}
		minTTF := math.Inf(1)
		k := -1
		for i, v := range s.cfg.Grid.Vias {
			if s.candidates != nil && !s.candidates[i] {
				continue
			}
			var model viaarray.TTFModel
			if s.cfg.PerViaModels != nil {
				model = s.cfg.PerViaModels[i]
			} else {
				model = s.cfg.Models[v.Pattern]
			}
			src := rng
			if s.candidates != nil {
				sub.Seed(subSeed(base, i))
				src = sub
			}
			ttf := model.Sample(src, s.i0[i])
			if s.cfg.TTFScale != nil {
				ttf *= s.cfg.TTFScale[i]
			}
			if s.i0[i] > 0 && ttf < minTTF {
				minTTF = ttf
				k = i
			}
		}
		e := prepTrial{k: -1, zoff: -1}
		if k >= 0 && !math.IsInf(minTTF, 1) {
			ri := s.cfg.Grid.Vias[k].ResistorIndex
			fa, fb, _, _ := s.circuit.ResistorTerms(ri)
			// Opening the resistor is the rank-one edit A → A + dg·u·uᵀ over
			// the free nodes, u = e_fa − e_fb with pinned terminals dropped;
			// a pinned terminal additionally shifts the right-hand side, which
			// folds into the correction coefficient below. A resistor with no
			// free terminal leaves the free system untouched (zoff −1: the
			// post-failure solution is the pristine one).
			if s.circuit.ResistorConductance(ri) > 0 {
				zo := -1
				if fa >= 0 || fb >= 0 {
					var seen bool
					if zo, seen = zof[ri]; !seen {
						zo = len(zri)
						zof[ri] = zo
						zri = append(zri, ri)
					}
				}
				e = prepTrial{k: k, zoff: zo, valid: true}
			}
		}
		s.prep = append(s.prep, e)
	}
	m := len(zri)
	if m == 0 {
		return nil
	}
	if cap(s.prepZ) < m*n {
		s.prepZ = make([]float64, m*n)
		s.prepB = make([]float64, m*n)
	}
	s.prepZ = s.prepZ[:m*n]
	s.prepB = s.prepB[:m*n]
	for i := range s.prepB {
		s.prepB[i] = 0
	}
	for zo, ri := range zri {
		fa, fb, _, _ := s.circuit.ResistorTerms(ri)
		if fa >= 0 {
			s.prepB[zo*n+fa] = 1
		}
		if fb >= 0 {
			s.prepB[zo*n+fb] = -1
		}
	}
	// One batched sweep amortizes the factor traffic over the whole group.
	if err := s.circuit.SolveFreeBatch(s.prepZ, s.prepB, m); err != nil {
		// The sparse path degraded (e.g. factorization failure downgraded the
		// backend); run the group on the legacy per-trial solves instead.
		for i := range s.prep {
			s.prep[i].valid = false
		}
		return nil
	}
	uDot := func(x []float64, fa, fb int) float64 {
		v := 0.0
		if fa >= 0 {
			v += x[fa]
		}
		if fb >= 0 {
			v -= x[fb]
		}
		return v
	}
	for i := range s.prep {
		e := &s.prep[i]
		if !e.valid || e.zoff < 0 {
			continue
		}
		ri := s.cfg.Grid.Vias[e.k].ResistorIndex
		fa, fb, va, vb := s.circuit.ResistorTerms(ri)
		dg := -s.circuit.ResistorConductance(ri)
		z := s.prepZ[e.zoff*n : (e.zoff+1)*n]
		denom := 1 + dg*uDot(z, fa, fb)
		if math.Abs(denom) < 1e-12 {
			// Opening this array (nearly) disconnects the grid; the formula
			// is ill-conditioned, so leave the trial on the legacy solve.
			e.valid = false
			continue
		}
		// The numerator is the full-space voltage drop across the resistor:
		// a pinned terminal contributes its pad voltage where a free one
		// contributes its pristine solve value (the pad's right-hand-side
		// shift folds in exactly this way).
		e.coef = dg * (uDot(s.yFree, fa, fb) + va - vb) / denom
	}
	return nil
}

// prepServe reconstructs the post-first-failure operating point from the
// prepared Sherman–Morrison state into dst. A false return means the caller
// must fall back to a legacy solve.
func (s *GridSystem) prepServe(dst *spice.OP) bool {
	x := s.xScratch
	if s.prepZOff >= 0 {
		n := len(x)
		z := s.prepZ[s.prepZOff*n : (s.prepZOff+1)*n]
		for i := range x {
			x[i] = s.yFree[i] - s.prepCoef*z[i]
		}
	} else {
		copy(x, s.yFree)
	}
	return s.circuit.ScatterFree(dst, x) == nil
}

// BaseTTF returns array k's sampled TTF.
func (s *GridSystem) BaseTTF(k int) float64 { return s.baseTTF[k] }

// AgingRate returns (I_now/I_0)² for array k.
func (s *GridSystem) AgingRate(k int) float64 {
	if !s.alive[k] || s.i0[k] <= 0 {
		return 0
	}
	r := s.iNow[k] / s.i0[k]
	return r * r
}

// Fail opens via array k and redistributes the grid currents. Under the
// weakest-link criterion the re-solve is skipped: the trial is already over.
func (s *GridSystem) Fail(k int) error {
	if !s.alive[k] {
		return fmt.Errorf("pdn: via array %d already failed", k)
	}
	s.alive[k] = false
	s.failedCount++
	if s.cfg.Criterion == WeakestLink {
		// The trial is already over; nothing reads the matrix before the
		// next BeginTrial, so leave the circuit pristine instead of paying
		// the open-and-restore round trip on the factored system.
		return nil
	}
	if err := s.circuit.DisableResistor(s.cfg.Grid.Vias[k].ResistorIndex); err != nil {
		return err
	}
	s.circuitDirty = true
	dst := s.opA
	if s.opNow == s.opA {
		dst = s.opB
	}
	// The first failure of a prepared trial is served from the batched
	// Sherman–Morrison state; everything else pays the legacy solve.
	if !(s.failedCount == 1 && k == s.prepK && s.prepServe(dst)) {
		if err := s.circuit.SolveDCInto(dst, s.opNow); err != nil {
			return fmt.Errorf("pdn: re-solve after failing array %d: %w", k, err)
		}
	}
	s.opNow = dst
	op := dst
	for i, v := range s.cfg.Grid.Vias {
		if s.candidates != nil && !s.candidates[i] {
			continue // never scheduled: its aging rate is never read
		}
		if s.alive[i] {
			s.iNow[i] = math.Abs(op.ResistorCurrent(v.ResistorIndex))
		} else {
			s.iNow[i] = 0
		}
	}
	return nil
}

// Failed evaluates the system criterion.
func (s *GridSystem) Failed() (bool, error) {
	switch s.cfg.Criterion {
	case WeakestLink:
		return s.failedCount >= 1, nil
	case IRDrop:
		if s.opNow == nil {
			return false, nil
		}
		return s.opNow.WorstIRDropFrac(s.cfg.Grid.Spec.Vdd) >= s.cfg.IRDropFrac, nil
	}
	return false, fmt.Errorf("pdn: unknown criterion %d", int(s.cfg.Criterion))
}

// ComponentLabel names via array k by its pattern and mesh position, e.g.
// "Plus-shaped(3,4)" (mc.ComponentLabeler — trace output only).
func (s *GridSystem) ComponentLabel(k int) string {
	v := s.cfg.Grid.Vias[k]
	return fmt.Sprintf("%s(%d,%d)", v.Pattern, v.IX, v.IY)
}

// FailedCount returns the number of failed arrays in the current trial.
func (s *GridSystem) FailedCount() int { return s.failedCount }

// WorstIRDropFrac exposes the current worst IR drop (for tests/diagnostics).
func (s *GridSystem) WorstIRDropFrac() float64 {
	if s.opNow == nil {
		return 0
	}
	return s.opNow.WorstIRDropFrac(s.cfg.Grid.Spec.Vdd)
}

// AnalyzeTTF runs the grid-level Monte Carlo (Algorithm 1, step 2) with
// trials independent across workers. One master system is compiled, ordered
// and factored up front; every worker gets a clone of it, which shares the
// immutable symbolic work and stays bit-identical to a serial run over the
// master.
func AnalyzeTTF(cfg TTFConfig, trials int, seed int64) (*mc.Result, error) {
	return AnalyzeTTFCtx(context.Background(), cfg, trials, seed, mc.Options{})
}

// AnalyzeTTFCtx is AnalyzeTTF with cancellation and a caller-supplied option
// base: Workers (the per-job worker budget of the analysis service),
// BatchTrials, TraceLabel and FirstTrial (the trial-range offset of a
// distributed shard — trial t always derives its generator from
// trialSeed(seed, t) whichever shard runs it) are honored; Trials, Seed,
// Solver and the criterion trace label are filled in here. Results are
// bit-identical for any worker budget and any shard partition thanks to
// mc's per-trial seed splitting.
func AnalyzeTTFCtx(ctx context.Context, cfg TTFConfig, trials int, seed int64, base mc.Options) (*mc.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master, err := NewSystemCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	opt := base
	opt.Trials = trials
	opt.Seed = seed
	if opt.TraceLabel == "" {
		opt.TraceLabel = "grid:" + cfg.Criterion.String()
	}
	opt.Solver = master.circuit.SolverBackend()
	endMC := trace.TimelineFrom(ctx).Stage("mc")
	defer endMC()
	return mc.RunParallelCtx(ctx, func() (mc.System, error) {
		return master.Clone(), nil
	}, opt)
}

// AnalyzeTTFScreened is the -engine=both pipeline: it runs the linear-time
// steady-state screen against the pristine operating point, feeds the mortal
// set into the grid Monte Carlo as the candidate mask, and asserts at run
// end that every observed failure was classified mortal — a violated
// assertion means the screen's conservatism contract broke and the pruned
// statistics cannot be trusted, so it surfaces as an error alongside the
// results rather than silently.
func AnalyzeTTFScreened(cfg TTFConfig, trials int, seed int64, sc ScreenConfig) (*mc.Result, *GridScreen, error) {
	return AnalyzeTTFScreenedCtx(context.Background(), cfg, trials, seed, sc, mc.Options{})
}

// AnalyzeTTFScreenedCtx is AnalyzeTTFScreened with cancellation and a
// caller-supplied option base (see AnalyzeTTFCtx). The screen itself is a
// single linear pass and runs to completion; the context bounds the Monte
// Carlo that follows it.
func AnalyzeTTFScreenedCtx(ctx context.Context, cfg TTFConfig, trials int, seed int64, sc ScreenConfig, base mc.Options) (*mc.Result, *GridScreen, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	master, err := NewSystemCtx(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	tl := trace.TimelineFrom(ctx)
	endScreen := tl.Stage("screen")
	screen, err := master.SteadyScreen(sc)
	endScreen()
	if err != nil {
		return nil, nil, err
	}
	if screen.MortalVias == 0 {
		return nil, screen, fmt.Errorf("pdn: steady screen classified every via array immortal; nothing for the Monte Carlo to simulate (criterion %s)", cfg.Criterion)
	}
	opt := base
	opt.Trials = trials
	opt.Seed = seed
	opt.Engine = mc.EngineBoth
	opt.Candidates = screen.CandidateMask()
	if opt.TraceLabel == "" {
		opt.TraceLabel = "grid:" + cfg.Criterion.String()
	}
	opt.Solver = master.circuit.SolverBackend()
	endMC := tl.Stage("mc")
	res, err := mc.RunParallelCtx(ctx, func() (mc.System, error) {
		return master.Clone(), nil
	}, opt)
	endMC()
	if err != nil {
		return nil, screen, err
	}
	if miss := res.MaskMisses(screen.ViaMortal); len(miss) > 0 {
		return res, screen, fmt.Errorf("pdn: screened run observed %d failure(s) outside the steady mortal set (first: via array %d)", len(miss), miss[0])
	}
	return res, screen, nil
}
