// Package pdn models power delivery networks: a synthetic generator for
// IBM-benchmark-style grids (Nassif [16] dialect), IR-drop analysis, and the
// grid-level EM TTF Monte Carlo of the paper's §5.2 in which via arrays are
// the failing components.
//
// The real IBM decks are not redistributable, so the generator synthesizes
// grids with the same structure the paper relies on: a two-layer mesh of
// horizontal and vertical power stripes joined by via arrays at every
// intersection, Vdd pads on the upper layer, and current loads on the lower
// layer. The paper modifies the benchmarks anyway (non-zero via resistances,
// tuned wire geometry for a "reasonable IR drop"); CalibrateLoad reproduces
// that tuning step. Intersections are classified into the paper's Plus, T
// and L patterns by their mesh position (interior, edge, corner).
package pdn

import (
	"fmt"
	"math"
	"math/rand"

	"emvia/internal/cudd"
	"emvia/internal/phys"
	"emvia/internal/spice"
)

// GridSpec parameterizes a synthetic power grid.
type GridSpec struct {
	// Name labels the grid (e.g. "PG1").
	Name string
	// NX, NY are the numbers of vertical and horizontal stripes; the mesh
	// has NX×NY intersections, each with a via array.
	NX, NY int
	// Pitch is the stripe spacing, m.
	Pitch float64
	// WireWidth and WireThickness set the stripe cross-section, m.
	WireWidth, WireThickness float64
	// RhoCu is the wire resistivity, Ω·m.
	RhoCu float64
	// Vdd is the supply voltage, V.
	Vdd float64
	// PadPeriod places a pad every PadPeriod-th intersection in each axis
	// (upper layer); the four corner regions always receive pads.
	PadPeriod int
	// TotalLoad is the summed load current, A, spread over the lower-layer
	// nodes with ±50 % lognormal-ish variation.
	TotalLoad float64
	// ViaArrayR is the nominal (pristine) resistance of each via array, Ω.
	ViaArrayR float64
	// Seed drives the load-distribution randomness.
	Seed int64
}

// Validate checks the specification.
func (s GridSpec) Validate() error {
	if s.NX < 2 || s.NY < 2 {
		return fmt.Errorf("pdn: grid needs at least 2×2 stripes, got %d×%d", s.NX, s.NY)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"Pitch", s.Pitch}, {"WireWidth", s.WireWidth}, {"WireThickness", s.WireThickness},
		{"RhoCu", s.RhoCu}, {"Vdd", s.Vdd}, {"TotalLoad", s.TotalLoad}, {"ViaArrayR", s.ViaArrayR},
	} {
		if c.v <= 0 || math.IsNaN(c.v) {
			return fmt.Errorf("pdn: %s must be positive, got %g", c.name, c.v)
		}
	}
	if s.PadPeriod < 1 {
		return fmt.Errorf("pdn: PadPeriod must be ≥ 1, got %d", s.PadPeriod)
	}
	return nil
}

// SegmentResistance returns the wire resistance between adjacent
// intersections.
func (s GridSpec) SegmentResistance() float64 {
	return s.RhoCu * s.Pitch / (s.WireWidth * s.WireThickness)
}

// ViaInfo records one via-array instance in the grid.
type ViaInfo struct {
	// IX, IY locate the intersection.
	IX, IY int
	// Pattern is the paper's intersection classification: L at mesh
	// corners, T on mesh edges, Plus in the interior.
	Pattern cudd.Pattern
	// ResistorIndex is the via array's index into the netlist resistors.
	ResistorIndex int
}

// Grid is a generated (or imported) power grid with via-array metadata.
type Grid struct {
	Spec    GridSpec
	Netlist *spice.Netlist
	Vias    []ViaInfo

	// Pristine-solve cache (see solveCircuit): the compiled circuit of the
	// current netlist topology, reused across MaxViaCurrent calls with value
	// pushes instead of recompilation.
	cachedCircuit *spice.Circuit
	cachedVolts   int
}

// PatternFor classifies an intersection by mesh position.
func PatternFor(ix, iy, nx, ny int) cudd.Pattern {
	xEdge := ix == 0 || ix == nx-1
	yEdge := iy == 0 || iy == ny-1
	switch {
	case xEdge && yEdge:
		return cudd.LShape
	case xEdge || yEdge:
		return cudd.TShape
	default:
		return cudd.Plus
	}
}

// nodeName builds the benchmark-style node name n<layer>_<ix>_<iy>.
func nodeName(layer, ix, iy int) string {
	return fmt.Sprintf("n%d_%d_%d", layer, ix, iy)
}

// Generate synthesizes the grid netlist. Layer 1 is the lower (load) layer
// with horizontal stripes, layer 2 the upper (pad) layer with vertical
// stripes; via arrays join them at every intersection.
func Generate(spec GridSpec) (*Grid, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	nl := &spice.Netlist{Title: spec.Name}
	seg := spec.SegmentResistance()

	// Lower layer: horizontal stripes (constant iy), segments along ix.
	rid := 0
	for iy := 0; iy < spec.NY; iy++ {
		for ix := 0; ix < spec.NX-1; ix++ {
			rid++
			nl.Resistors = append(nl.Resistors, spice.Resistor{
				Name: fmt.Sprintf("R%d", rid),
				A:    nodeName(1, ix, iy),
				B:    nodeName(1, ix+1, iy),
				Ohms: seg,
			})
		}
	}
	// Upper layer: vertical stripes (constant ix), segments along iy.
	for ix := 0; ix < spec.NX; ix++ {
		for iy := 0; iy < spec.NY-1; iy++ {
			rid++
			nl.Resistors = append(nl.Resistors, spice.Resistor{
				Name: fmt.Sprintf("R%d", rid),
				A:    nodeName(2, ix, iy),
				B:    nodeName(2, ix, iy+1),
				Ohms: seg,
			})
		}
	}
	// Via arrays at every intersection; remember their resistor indices.
	g := &Grid{Spec: spec, Netlist: nl}
	for iy := 0; iy < spec.NY; iy++ {
		for ix := 0; ix < spec.NX; ix++ {
			rid++
			nl.Resistors = append(nl.Resistors, spice.Resistor{
				Name: fmt.Sprintf("Rv%d_%d", ix, iy),
				A:    nodeName(1, ix, iy),
				B:    nodeName(2, ix, iy),
				Ohms: spec.ViaArrayR,
			})
			g.Vias = append(g.Vias, ViaInfo{
				IX:            ix,
				IY:            iy,
				Pattern:       PatternFor(ix, iy, spec.NX, spec.NY),
				ResistorIndex: len(nl.Resistors) - 1,
			})
		}
	}
	// Pads on the upper layer, every PadPeriod-th intersection starting
	// half a period in (so the grid perimeter is pad-free, like the
	// benchmarks' C4 bump arrays).
	vid := 0
	start := spec.PadPeriod / 2
	padCount := 0
	for iy := start; iy < spec.NY; iy += spec.PadPeriod {
		for ix := start; ix < spec.NX; ix += spec.PadPeriod {
			vid++
			nl.Voltages = append(nl.Voltages, spice.VoltageSource{
				Name:  fmt.Sprintf("V%d", vid),
				Node:  nodeName(2, ix, iy),
				Volts: spec.Vdd,
			})
			padCount++
		}
	}
	if padCount == 0 {
		return nil, fmt.Errorf("pdn: pad period %d leaves the %d×%d grid padless", spec.PadPeriod, spec.NX, spec.NY)
	}
	// Loads on the lower layer: every node draws a randomized share.
	nLoads := spec.NX * spec.NY
	weights := make([]float64, nLoads)
	sum := 0.0
	for i := range weights {
		// 0.5–1.5× uniform spread around the mean share.
		weights[i] = 0.5 + rng.Float64()
		sum += weights[i]
	}
	iid := 0
	for iy := 0; iy < spec.NY; iy++ {
		for ix := 0; ix < spec.NX; ix++ {
			iid++
			amps := spec.TotalLoad * weights[iid-1] / sum
			nl.Currents = append(nl.Currents, spice.CurrentSource{
				Name: fmt.Sprintf("I%d", iid),
				A:    nodeName(1, ix, iy),
				B:    "0",
				Amps: amps,
			})
		}
	}
	return g, nil
}

// NominalIRDropFrac compiles the pristine grid and returns its worst IR drop
// as a fraction of Vdd.
func (g *Grid) NominalIRDropFrac() (float64, error) {
	c, err := spice.Compile(g.Netlist)
	if err != nil {
		return 0, err
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		return 0, err
	}
	return op.WorstIRDropFrac(g.Spec.Vdd), nil
}

// CalibrateLoad rescales the load currents so the pristine grid's worst IR
// drop equals targetFrac of Vdd — the paper's "tuned the wire geometry ...
// to obtain a reasonable IR drop" step. The network is linear in the loads,
// so one solve suffices.
func (g *Grid) CalibrateLoad(targetFrac float64) error {
	if targetFrac <= 0 || targetFrac >= 1 {
		return fmt.Errorf("pdn: target IR fraction must be in (0,1), got %g", targetFrac)
	}
	cur, err := g.NominalIRDropFrac()
	if err != nil {
		return err
	}
	if cur <= 0 {
		return fmt.Errorf("pdn: grid has no IR drop to calibrate (got %g)", cur)
	}
	scale := targetFrac / cur
	for i := range g.Netlist.Currents {
		g.Netlist.Currents[i].Amps *= scale
	}
	g.Spec.TotalLoad *= scale
	return nil
}

// PatternCounts tallies via arrays per intersection pattern.
func (g *Grid) PatternCounts() map[cudd.Pattern]int {
	m := map[cudd.Pattern]int{}
	for _, v := range g.Vias {
		m[v.Pattern]++
	}
	return m
}

// PG1Spec, PG2Spec and PG5Spec are scaled-down analogues of the IBM power
// grid benchmarks the paper evaluates (the originals are 30k–1.6M nodes; the
// analogues keep the 500-trial Monte Carlo laptop-friendly while preserving
// mesh redundancy, pad density and a tuned nominal IR drop). Sizes grow
// PG1 < PG2 < PG5 like the originals.
func PG1Spec() GridSpec { return pgSpec("PG1", 20, 20, 5, 1) }

// PG2Spec is the mid-size benchmark analogue.
func PG2Spec() GridSpec { return pgSpec("PG2", 30, 30, 6, 2) }

// PG5Spec is the large benchmark analogue.
func PG5Spec() GridSpec { return pgSpec("PG5", 44, 44, 7, 5) }

func pgSpec(name string, nx, ny, padPeriod int, seed int64) GridSpec {
	return GridSpec{
		Name:          name,
		NX:            nx,
		NY:            ny,
		Pitch:         100 * phys.Micron,
		WireWidth:     2 * phys.Micron,
		WireThickness: 0.45 * phys.Micron,
		RhoCu:         2.75e-8,
		Vdd:           1.8,
		PadPeriod:     padPeriod,
		TotalLoad:     1.0, // recalibrated by CalibrateLoad
		ViaArrayR:     0.05,
		Seed:          seed,
	}
}
