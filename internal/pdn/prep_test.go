package pdn

import (
	"math"
	"testing"

	"emvia/internal/mc"
	"emvia/internal/spice"
)

// forceSparse pins the process solver default to the sparse direct backend
// for one test, so even the small test grids exercise the prepared path.
func forceSparse(t *testing.T) {
	t.Helper()
	prev := spice.DefaultSolver()
	spice.SetDefaultSolver(spice.SolverSparse)
	t.Cleanup(func() { spice.SetDefaultSolver(prev) })
}

// TestPreparedTrialsMatchLegacy cross-checks the batched Sherman–Morrison
// trial preparation against the legacy per-trial solve path: same grid, same
// seeds, batching on vs off. The first post-failure operating point differs
// only by solve rounding (correction about the pristine factor vs a solve
// against the downdated one), so the failure sequences must agree and the
// TTFs must match to solver precision.
func TestPreparedTrialsMatchLegacy(t *testing.T) {
	forceSparse(t)
	g := mustGrid(t, smallSpec(), 0.05)
	ref := refCurrentOf(t, g)
	cfg := TTFConfig{Grid: g, Models: testModels(ref), Criterion: IRDrop, IRDropFrac: 0.10}

	run := func(batch int) *mc.Result {
		t.Helper()
		master, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := master.circuit.SolverBackend(); got != "sparse" {
			t.Fatalf("backend = %s, want sparse", got)
		}
		res, err := mc.Run(master, mc.Options{Trials: 40, Seed: 11, BatchTrials: batch, RunToCompletion: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	legacy := run(-1)
	prepared := run(8)

	for i := range legacy.TTF {
		a, b := legacy.TTF[i], prepared.TTF[i]
		if math.IsInf(a, 1) && math.IsInf(b, 1) {
			continue
		}
		if d := math.Abs(a-b) / math.Max(math.Abs(a), 1); d > 1e-9 {
			t.Fatalf("trial %d: prepared TTF %g vs legacy %g (rel %g)", i, b, a, d)
		}
		if len(legacy.EventComps[i]) != len(prepared.EventComps[i]) {
			t.Fatalf("trial %d: %d events prepared vs %d legacy", i, len(prepared.EventComps[i]), len(legacy.EventComps[i]))
		}
		for j := range legacy.EventComps[i] {
			if legacy.EventComps[i][j] != prepared.EventComps[i][j] {
				t.Fatalf("trial %d event %d: failed array %d prepared vs %d legacy",
					i, j, prepared.EventComps[i][j], legacy.EventComps[i][j])
			}
		}
	}
}

// TestPreparedTrialsEngage verifies the preparation actually predicts and
// serves first failures on the sparse path — guarding against the hook
// silently degrading to the legacy solve everywhere.
func TestPreparedTrialsEngage(t *testing.T) {
	forceSparse(t)
	g := mustGrid(t, smallSpec(), 0.05)
	ref := refCurrentOf(t, g)
	cfg := TTFConfig{Grid: g, Models: testModels(ref), Criterion: IRDrop, IRDropFrac: 0.10}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{101, 202, 303, 404}
	if err := s.PrepareTrials(seeds); err != nil {
		t.Fatal(err)
	}
	if len(s.prep) != len(seeds) {
		t.Fatalf("prepared %d entries, want %d", len(s.prep), len(seeds))
	}
	valid := 0
	for _, e := range s.prep {
		if e.valid {
			valid++
			if e.k < 0 || e.k >= s.NumComponents() || e.zoff < 0 {
				t.Fatalf("valid entry with k=%d zoff=%d", e.k, e.zoff)
			}
		}
	}
	if valid == 0 {
		t.Fatal("no prepared entry is valid; the batched path never engages")
	}

	// Weakest-link runs must not prepare at all: the trial ends at the first
	// failure, before any re-solve the preparation could serve.
	cfg.Criterion = WeakestLink
	cfg.IRDropFrac = 0
	wl, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.PrepareTrials(seeds); err != nil {
		t.Fatal(err)
	}
	if len(wl.prep) != 0 {
		t.Fatalf("weakest-link prepared %d entries, want 0", len(wl.prep))
	}
}

// TestPreparedParallelMatchesSerial pins worker invariance of the batched
// path end to end on a real grid system.
func TestPreparedParallelMatchesSerial(t *testing.T) {
	forceSparse(t)
	g := mustGrid(t, smallSpec(), 0.05)
	ref := refCurrentOf(t, g)
	cfg := TTFConfig{Grid: g, Models: testModels(ref), Criterion: IRDrop, IRDropFrac: 0.10}
	master, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := mc.Options{Trials: 24, Seed: 3, BatchTrials: 6}
	serial, err := mc.Run(master, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 3
	parallel, err := mc.RunParallel(func() (mc.System, error) { return master.Clone(), nil }, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.TTF {
		if serial.TTF[i] != parallel.TTF[i] && !(math.IsInf(serial.TTF[i], 1) && math.IsInf(parallel.TTF[i], 1)) {
			t.Fatalf("trial %d: parallel TTF %g != serial %g", i, parallel.TTF[i], serial.TTF[i])
		}
	}
}

// TestPreparedMismatchFallsBack forces the replay prediction wrong: the
// group is prepared from one set of seeds but the trials run from another,
// so the predicted first failure disagrees with the engine's actual first
// scheduling decision and Fail must take the legacy re-solve. The run has to
// come out exactly as correct as an unprepared one — stale preparation may
// cost the speedup, never the answer.
func TestPreparedMismatchFallsBack(t *testing.T) {
	forceSparse(t)
	g := mustGrid(t, smallSpec(), 0.05)
	ref := refCurrentOf(t, g)
	cfg := TTFConfig{Grid: g, Models: testModels(ref), Criterion: IRDrop, IRDropFrac: 0.10}
	const trials = 16

	reference, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mc.Run(reference, mc.Options{Trials: trials, Seed: 11, BatchTrials: -1, RunToCompletion: true})
	if err != nil {
		t.Fatal(err)
	}

	stale, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Prepare from seeds the engine will never use. BatchTrials −1 keeps the
	// engine from re-preparing, so BeginTrial consumes these stale entries.
	wrong := make([]int64, trials)
	for i := range wrong {
		wrong[i] = int64(9000 + 31*i)
	}
	if err := stale.PrepareTrials(wrong); err != nil {
		t.Fatal(err)
	}
	preds := make([]int, 0, trials)
	valid := 0
	for _, e := range stale.prep {
		k := -1
		if e.valid {
			k = e.k
			valid++
		}
		preds = append(preds, k)
	}
	if valid == 0 {
		t.Fatal("no stale prediction is valid; the mismatch path is never reachable")
	}
	got, err := mc.Run(stale, mc.Options{Trials: trials, Seed: 11, BatchTrials: -1, RunToCompletion: true})
	if err != nil {
		t.Fatal(err)
	}

	mismatches := 0
	for i := range want.TTF {
		if len(got.EventComps[i]) == 0 {
			t.Fatalf("trial %d: no failures recorded", i)
		}
		if preds[i] != got.EventComps[i][0] {
			mismatches++
		}
		a, b := want.TTF[i], got.TTF[i]
		if math.IsInf(a, 1) && math.IsInf(b, 1) {
			continue
		}
		if d := math.Abs(a-b) / math.Max(math.Abs(a), 1); d > 1e-9 {
			t.Fatalf("trial %d: stale-prepared TTF %g vs legacy %g (rel %g)", i, b, a, d)
		}
		for j := range want.EventComps[i] {
			if want.EventComps[i][j] != got.EventComps[i][j] {
				t.Fatalf("trial %d event %d: failed array %d stale-prepared vs %d legacy",
					i, j, got.EventComps[i][j], want.EventComps[i][j])
			}
		}
	}
	if mismatches == 0 {
		t.Fatal("every stale prediction matched the actual first failure; the fallback was never exercised")
	}
	t.Logf("stale prep: %d/%d predictions mismatched and fell back to the legacy solve", mismatches, trials)
}
