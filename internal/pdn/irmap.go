package pdn

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"emvia/internal/spice"
)

// WriteIRDropSVG renders the lower-layer IR-drop map of the grid as an SVG
// heatmap (one cell per intersection, white = no drop, dark red = the worst
// observed drop), with the pads of the upper layer marked. The standard
// visualization for power-grid sign-off reviews.
func (g *Grid) WriteIRDropSVG(w io.Writer, widthPx int) error {
	if widthPx <= 0 {
		widthPx = 640
	}
	c, err := spice.Compile(g.Netlist)
	if err != nil {
		return err
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		return err
	}
	nx, ny := g.Spec.NX, g.Spec.NY
	drops := make([]float64, nx*ny)
	maxDrop := 0.0
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			name := nodeName(1, ix, iy)
			v, err := op.Voltage(name)
			if err != nil {
				return fmt.Errorf("pdn: grid node %s missing from netlist: %w", name, err)
			}
			d := g.Spec.Vdd - v
			if d < 0 {
				d = 0
			}
			drops[iy*nx+ix] = d
			if d > maxDrop {
				maxDrop = d
			}
		}
	}
	if maxDrop == 0 {
		maxDrop = 1 // all-white map rather than division by zero
	}
	cell := float64(widthPx) / float64(nx)
	heightPx := int(cell*float64(ny)) + 1

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		widthPx, heightPx, widthPx, heightPx)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			f := drops[iy*nx+ix] / maxDrop
			// White → dark red ramp.
			rCh := 255
			gb := int(math.Round(255 * (1 - f)))
			fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="rgb(%d,%d,%d)"/>`+"\n",
				float64(ix)*cell, float64(iy)*cell, cell, cell, rCh, gb, gb)
		}
	}
	// Mark pads (upper-layer voltage sources) as blue dots.
	for _, v := range g.Netlist.Voltages {
		_, ix, iy, ok := parseNodeName(v.Node)
		if !ok {
			continue
		}
		fmt.Fprintf(bw, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="#1f4e9c"/>`+"\n",
			(float64(ix)+0.5)*cell, (float64(iy)+0.5)*cell, cell*0.25)
	}
	fmt.Fprintf(bw, `<text x="4" y="14" font-size="12" font-family="sans-serif">worst IR drop %.1f mV (%.2f%% of Vdd)</text>`+"\n",
		maxDrop*1e3, 100*maxDrop/g.Spec.Vdd)
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}
