package pdn

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"emvia/internal/spice"
	"emvia/internal/thermal"
)

// parseNodeName decodes the benchmark node convention n<layer>_<x>_<y>.
func parseNodeName(name string) (layer, x, y int, ok bool) {
	if len(name) < 2 || (name[0] != 'n' && name[0] != 'N') {
		return 0, 0, 0, false
	}
	parts := strings.Split(name[1:], "_")
	if len(parts) != 3 {
		return 0, 0, 0, false
	}
	l, err1 := strconv.Atoi(parts[0])
	xv, err2 := strconv.Atoi(parts[1])
	yv, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, 0, 0, false
	}
	return l, xv, yv, true
}

// PowerMap solves the pristine grid and attributes the dissipated power to
// the intersection lattice: wire Joule power is split between the segment's
// endpoints, via-array Joule power goes to its intersection, and each load
// dissipates I·V at its node (the switching power the load current models).
// The returned vector is indexed j·NX+i in watts.
func (g *Grid) PowerMap() ([]float64, error) {
	c, err := spice.Compile(g.Netlist)
	if err != nil {
		return nil, err
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		return nil, err
	}
	nx, ny := g.Spec.NX, g.Spec.NY
	power := make([]float64, nx*ny)
	deposit := func(x, y int, w float64) {
		if x >= 0 && x < nx && y >= 0 && y < ny {
			power[y*nx+x] += w
		}
	}
	for i, r := range g.Netlist.Resistors {
		ir := op.ResistorCurrent(i)
		if ir == 0 {
			continue
		}
		w := ir * ir * r.Ohms
		_, xa, ya, oka := parseNodeName(r.A)
		_, xb, yb, okb := parseNodeName(r.B)
		switch {
		case oka && okb:
			deposit(xa, ya, w/2)
			deposit(xb, yb, w/2)
		case oka:
			deposit(xa, ya, w)
		case okb:
			deposit(xb, yb, w)
		}
	}
	for _, s := range g.Netlist.Currents {
		_, x, y, ok := parseNodeName(s.A)
		if !ok {
			_, x, y, ok = parseNodeName(s.B)
		}
		if !ok {
			continue
		}
		v, err := op.Voltage(s.A)
		if err != nil {
			// Load pulls to ground; use the grid-side terminal.
			v, err = op.Voltage(s.B)
			if err != nil {
				continue
			}
		}
		deposit(x, y, math.Abs(s.Amps*v))
	}
	return power, nil
}

// ThermalProfile solves the compact thermal network for the grid's power
// map and returns the die temperature map plus the local temperature (°C)
// of every via array, in g.Vias order.
func (g *Grid) ThermalProfile(cfg thermal.Config) (*thermal.Map, []float64, error) {
	if cfg.NX == 0 && cfg.NY == 0 {
		cfg = thermal.DefaultConfig(g.Spec.NX, g.Spec.NY, g.Spec.Pitch)
	}
	if cfg.NX != g.Spec.NX || cfg.NY != g.Spec.NY {
		return nil, nil, fmt.Errorf("thermal: lattice %d×%d does not match grid %d×%d",
			cfg.NX, cfg.NY, g.Spec.NX, g.Spec.NY)
	}
	power, err := g.PowerMap()
	if err != nil {
		return nil, nil, err
	}
	tm, err := thermal.Solve(cfg, power)
	if err != nil {
		return nil, nil, err
	}
	temps := make([]float64, len(g.Vias))
	for k, v := range g.Vias {
		temps[k] = tm.TempAt(v.IX, v.IY)
	}
	return tm, temps, nil
}
