package pdn

import (
	"fmt"
	"math"

	"emvia/internal/spice"
)

// MaxViaCurrent solves the pristine grid and returns the largest via-array
// current magnitude (A) together with the worst IR-drop fraction.
func (g *Grid) MaxViaCurrent() (maxAmps, irFrac float64, err error) {
	c, err := g.solveCircuit()
	if err != nil {
		return 0, 0, err
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		return 0, 0, err
	}
	for _, v := range g.Vias {
		if i := math.Abs(op.ResistorCurrent(v.ResistorIndex)); i > maxAmps {
			maxAmps = i
		}
	}
	return maxAmps, op.WorstIRDropFrac(g.Spec.Vdd), nil
}

// solveCircuit returns a compiled circuit holding the current netlist
// values. The compilation is cached on the grid: while the topology is
// unchanged (same element counts and terminals — the invariant of Tune,
// which only rescales Ohms and Amps), repeated calls push values into the
// compiled system in place, so the pristine solve reuses the fixed pattern
// and the cached direct factor instead of recompiling the netlist. Any
// element-count change recompiles from scratch; callers that rewire
// terminals at constant counts must drop the cache by clearing
// Grid.cachedCircuit (no in-tree caller does).
func (g *Grid) solveCircuit() (*spice.Circuit, error) {
	nl := g.Netlist
	c := g.cachedCircuit
	if c == nil || c.NumResistors() != len(nl.Resistors) ||
		c.NumCurrents() != len(nl.Currents) || g.cachedVolts != len(nl.Voltages) {
		c, err := spice.Compile(nl)
		if err != nil {
			return nil, err
		}
		g.cachedCircuit = c
		g.cachedVolts = len(nl.Voltages)
		return c, nil
	}
	for i := range nl.Resistors {
		if err := c.SetResistor(i, nl.Resistors[i].Ohms); err != nil {
			return nil, err
		}
	}
	for i := range nl.Currents {
		if err := c.SetCurrent(i, nl.Currents[i].Amps); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Tune adjusts the grid the way the paper tunes the benchmark decks: load
// currents are scaled so the busiest via array carries targetViaAmps (the
// via-array characterization reference current, keeping the 1/I² TTF scaling
// near unity), and wire resistances are scaled so the pristine worst IR drop
// equals targetIRFrac of Vdd. Because loads scale currents linearly and wire
// resistance scales IR nearly linearly at fixed currents, two or three fixed-
// point sweeps converge tightly.
func (g *Grid) Tune(targetIRFrac, targetViaAmps float64) error {
	if targetIRFrac <= 0 || targetIRFrac >= 1 {
		return fmt.Errorf("pdn: target IR fraction must be in (0,1), got %g", targetIRFrac)
	}
	if targetViaAmps <= 0 {
		return fmt.Errorf("pdn: target via current must be positive, got %g", targetViaAmps)
	}
	isVia := make([]bool, len(g.Netlist.Resistors))
	for _, v := range g.Vias {
		isVia[v.ResistorIndex] = true
	}
	for iter := 0; iter < 5; iter++ {
		imax, ir, err := g.MaxViaCurrent()
		if err != nil {
			return err
		}
		if imax <= 0 || ir <= 0 {
			return fmt.Errorf("pdn: degenerate grid during tuning (imax=%g, ir=%g)", imax, ir)
		}
		loadScale := targetViaAmps / imax
		for i := range g.Netlist.Currents {
			g.Netlist.Currents[i].Amps *= loadScale
		}
		g.Spec.TotalLoad *= loadScale
		// IR scales with the loads; the residual gap is closed by the wires.
		ir *= loadScale
		wireScale := targetIRFrac / ir
		// Do not let a single sweep overshoot wildly; convergence is fast
		// anyway and damping keeps via currents near their target.
		if wireScale > 10 {
			wireScale = 10
		}
		if wireScale < 0.1 {
			wireScale = 0.1
		}
		for i := range g.Netlist.Resistors {
			if !isVia[i] {
				g.Netlist.Resistors[i].Ohms *= wireScale
			}
		}
		if wireScale > 0.98 && wireScale < 1.02 && loadScale > 0.98 && loadScale < 1.02 {
			break
		}
	}
	imax, ir, err := g.MaxViaCurrent()
	if err != nil {
		return err
	}
	if math.Abs(imax-targetViaAmps)/targetViaAmps > 0.05 || math.Abs(ir-targetIRFrac)/targetIRFrac > 0.05 {
		return fmt.Errorf("pdn: tuning did not converge: via current %g (target %g), IR %.3f (target %.3f)",
			imax, targetViaAmps, ir, targetIRFrac)
	}
	return nil
}
