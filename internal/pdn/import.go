package pdn

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"emvia/internal/cudd"
	"emvia/internal/spice"
)

// FromNetlist builds a Grid from an existing benchmark-style deck whose node
// names follow the n<layer>_<x>_<y> convention of the IBM power grid
// benchmarks. Resistors joining two layers at the same (x, y) are identified
// as via arrays and classified into Plus/T/L patterns from the coordinate
// extremes of the via population. The paper performs exactly this step on
// the benchmark decks (after giving the short-circuited vias their real
// array resistance, which the caller does by editing the deck or via
// spice.Circuit.SetResistor).
func FromNetlist(nl *spice.Netlist, spec GridSpec) (*Grid, error) {
	type coord struct{ x, y int }
	parse := func(name string) (layer int, c coord, ok bool) {
		if len(name) < 2 || (name[0] != 'n' && name[0] != 'N') {
			return 0, coord{}, false
		}
		parts := strings.Split(name[1:], "_")
		if len(parts) != 3 {
			return 0, coord{}, false
		}
		l, err1 := strconv.Atoi(parts[0])
		x, err2 := strconv.Atoi(parts[1])
		y, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return 0, coord{}, false
		}
		return l, coord{x, y}, true
	}

	g := &Grid{Spec: spec, Netlist: nl}
	minX, maxX := int(^uint(0)>>1), -int(^uint(0)>>1)
	minY, maxY := minX, maxX
	type viaCand struct {
		idx int
		c   coord
	}
	var cands []viaCand
	for i, r := range nl.Resistors {
		la, ca, oka := parse(r.A)
		lb, cb, okb := parse(r.B)
		if !oka || !okb || la == lb {
			continue
		}
		if ca != cb {
			continue // inter-layer but offset: not a via stack we track
		}
		cands = append(cands, viaCand{idx: i, c: ca})
		if ca.x < minX {
			minX = ca.x
		}
		if ca.x > maxX {
			maxX = ca.x
		}
		if ca.y < minY {
			minY = ca.y
		}
		if ca.y > maxY {
			maxY = ca.y
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("pdn: no via-array resistors found (node names must follow n<layer>_<x>_<y>)")
	}
	for _, vc := range cands {
		pat := patternFromExtremes(vc.c.x, vc.c.y, minX, maxX, minY, maxY)
		g.Vias = append(g.Vias, ViaInfo{
			IX:            vc.c.x,
			IY:            vc.c.y,
			Pattern:       pat,
			ResistorIndex: vc.idx,
		})
	}
	return g, nil
}

func patternFromExtremes(x, y, minX, maxX, minY, maxY int) cudd.Pattern {
	xEdge := x == minX || x == maxX
	yEdge := y == minY || y == maxY
	switch {
	case xEdge && yEdge:
		return cudd.LShape
	case xEdge || yEdge:
		return cudd.TShape
	default:
		return cudd.Plus
	}
}

// LoadDeck parses a benchmark deck and wraps it as a Grid.
func LoadDeck(r io.Reader, spec GridSpec) (*Grid, error) {
	nl, err := spice.Parse(r)
	if err != nil {
		return nil, err
	}
	return FromNetlist(nl, spec)
}
