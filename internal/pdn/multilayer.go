package pdn

import (
	"fmt"
	"math"
	"math/rand"

	"emvia/internal/cudd"
	"emvia/internal/spice"
)

// MultiLayerSpec describes a power grid spanning several metal layers, the
// "top 5 metal layers [which] use thick wires with via arrays" of the
// paper's §3.2. Layers alternate routing direction (odd layers horizontal,
// even vertical); via arrays join consecutive layers at every intersection
// of their stripes. The paper's three layer-pair classes (intermediate–
// intermediate, intermediate–top, top–top) map onto the stack: all layers
// but the topmost are intermediate class.
type MultiLayerSpec struct {
	// Name labels the grid.
	Name string
	// Layers is the number of metal layers (≥ 2). Layer 1 is the lowest
	// (load) layer; layer Layers is the top (pad) layer.
	Layers int
	// NX, NY are the stripe counts in the two routing directions.
	NX, NY int
	// Pitch is the stripe spacing, m.
	Pitch float64
	// WireWidth and WireThickness set the stripe cross-section, m. The
	// topmost layer uses TopThicknessFactor × WireThickness (top metals
	// are thicker).
	WireWidth, WireThickness float64
	// TopThicknessFactor thickens the top layer (default 2 when 0).
	TopThicknessFactor float64
	// RhoCu is the wire resistivity, Ω·m.
	RhoCu float64
	// Vdd is the supply voltage, V.
	Vdd float64
	// PadPeriod places pads every PadPeriod-th intersection on the top
	// layer.
	PadPeriod int
	// TotalLoad is the summed load current, A, on layer 1.
	TotalLoad float64
	// ViaArrayR is the nominal via-array resistance, Ω, for every pair.
	ViaArrayR float64
	// Seed drives the load randomization.
	Seed int64
}

// Validate checks the specification.
func (s MultiLayerSpec) Validate() error {
	if s.Layers < 2 {
		return fmt.Errorf("pdn: multilayer grid needs ≥ 2 layers, got %d", s.Layers)
	}
	if s.NX < 2 || s.NY < 2 {
		return fmt.Errorf("pdn: grid needs ≥ 2×2 stripes, got %d×%d", s.NX, s.NY)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"Pitch", s.Pitch}, {"WireWidth", s.WireWidth}, {"WireThickness", s.WireThickness},
		{"RhoCu", s.RhoCu}, {"Vdd", s.Vdd}, {"TotalLoad", s.TotalLoad}, {"ViaArrayR", s.ViaArrayR},
	} {
		if c.v <= 0 || math.IsNaN(c.v) {
			return fmt.Errorf("pdn: %s must be positive, got %g", c.name, c.v)
		}
	}
	if s.PadPeriod < 1 {
		return fmt.Errorf("pdn: PadPeriod must be ≥ 1, got %d", s.PadPeriod)
	}
	return nil
}

// MultiViaInfo extends ViaInfo with the layer pair the array joins, so each
// array can use the matching chartable/TTF characterization.
type MultiViaInfo struct {
	ViaInfo
	// Lower is the lower metal layer index (1-based); the array joins
	// Lower and Lower+1.
	Lower int
	// LayerPair classifies the pair for characterization lookups.
	LayerPair cudd.LayerPair
}

// MultiLayerGrid is a generated multi-layer power grid.
type MultiLayerGrid struct {
	Spec MultiLayerSpec
	// Grid is the embedded single-pair view used by the TTF machinery
	// (netlist + flattened via metadata); its GridSpec mirrors the lateral
	// geometry so tuning and thermal analysis work unchanged.
	Grid *Grid
	// Vias carries the per-array layer-pair metadata, index-aligned with
	// Grid.Vias.
	Vias []MultiViaInfo
}

// GenerateMultiLayer synthesizes the netlist. Odd layers route along x
// (segments between ix and ix+1 at constant iy), even layers along y; every
// (ix, iy) intersection of consecutive layers gets a via array.
func GenerateMultiLayer(spec MultiLayerSpec) (*MultiLayerGrid, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.TopThicknessFactor == 0 {
		spec.TopThicknessFactor = 2
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	nl := &spice.Netlist{Title: spec.Name}
	segR := func(layer int) float64 {
		t := spec.WireThickness
		if layer == spec.Layers {
			t *= spec.TopThicknessFactor
		}
		return spec.RhoCu * spec.Pitch / (spec.WireWidth * t)
	}
	rid := 0
	for layer := 1; layer <= spec.Layers; layer++ {
		horizontal := layer%2 == 1
		r := segR(layer)
		if horizontal {
			for iy := 0; iy < spec.NY; iy++ {
				for ix := 0; ix < spec.NX-1; ix++ {
					rid++
					nl.Resistors = append(nl.Resistors, spice.Resistor{
						Name: fmt.Sprintf("R%d", rid),
						A:    nodeName(layer, ix, iy),
						B:    nodeName(layer, ix+1, iy),
						Ohms: r,
					})
				}
			}
		} else {
			for ix := 0; ix < spec.NX; ix++ {
				for iy := 0; iy < spec.NY-1; iy++ {
					rid++
					nl.Resistors = append(nl.Resistors, spice.Resistor{
						Name: fmt.Sprintf("R%d", rid),
						A:    nodeName(layer, ix, iy),
						B:    nodeName(layer, ix, iy+1),
						Ohms: r,
					})
				}
			}
		}
	}

	ml := &MultiLayerGrid{Spec: spec}
	base := GridSpec{
		Name:          spec.Name,
		NX:            spec.NX,
		NY:            spec.NY,
		Pitch:         spec.Pitch,
		WireWidth:     spec.WireWidth,
		WireThickness: spec.WireThickness,
		RhoCu:         spec.RhoCu,
		Vdd:           spec.Vdd,
		PadPeriod:     spec.PadPeriod,
		TotalLoad:     spec.TotalLoad,
		ViaArrayR:     spec.ViaArrayR,
		Seed:          spec.Seed,
	}
	g := &Grid{Spec: base, Netlist: nl}
	for layer := 1; layer < spec.Layers; layer++ {
		pairClass := cudd.LayerPair{Lower: cudd.Intermediate, Upper: cudd.Intermediate}
		if layer+1 == spec.Layers {
			pairClass.Upper = cudd.Top
		}
		for iy := 0; iy < spec.NY; iy++ {
			for ix := 0; ix < spec.NX; ix++ {
				rid++
				nl.Resistors = append(nl.Resistors, spice.Resistor{
					Name: fmt.Sprintf("Rv%d_%d_%d", layer, ix, iy),
					A:    nodeName(layer, ix, iy),
					B:    nodeName(layer+1, ix, iy),
					Ohms: spec.ViaArrayR,
				})
				info := ViaInfo{
					IX:            ix,
					IY:            iy,
					Pattern:       PatternFor(ix, iy, spec.NX, spec.NY),
					ResistorIndex: len(nl.Resistors) - 1,
				}
				g.Vias = append(g.Vias, info)
				ml.Vias = append(ml.Vias, MultiViaInfo{
					ViaInfo:   info,
					Lower:     layer,
					LayerPair: pairClass,
				})
			}
		}
	}
	// Pads on the top layer.
	start := spec.PadPeriod / 2
	vid, padCount := 0, 0
	for iy := start; iy < spec.NY; iy += spec.PadPeriod {
		for ix := start; ix < spec.NX; ix += spec.PadPeriod {
			vid++
			nl.Voltages = append(nl.Voltages, spice.VoltageSource{
				Name:  fmt.Sprintf("V%d", vid),
				Node:  nodeName(spec.Layers, ix, iy),
				Volts: spec.Vdd,
			})
			padCount++
		}
	}
	if padCount == 0 {
		return nil, fmt.Errorf("pdn: pad period %d leaves the grid padless", spec.PadPeriod)
	}
	// Loads on layer 1.
	weights := make([]float64, spec.NX*spec.NY)
	sum := 0.0
	for i := range weights {
		weights[i] = 0.5 + rng.Float64()
		sum += weights[i]
	}
	iid := 0
	for iy := 0; iy < spec.NY; iy++ {
		for ix := 0; ix < spec.NX; ix++ {
			iid++
			nl.Currents = append(nl.Currents, spice.CurrentSource{
				Name: fmt.Sprintf("I%d", iid),
				A:    nodeName(1, ix, iy),
				B:    "0",
				Amps: spec.TotalLoad * weights[iid-1] / sum,
			})
		}
	}
	ml.Grid = g
	return ml, nil
}

// PairCounts tallies via arrays per layer-pair class.
func (ml *MultiLayerGrid) PairCounts() map[cudd.LayerPair]int {
	out := map[cudd.LayerPair]int{}
	for _, v := range ml.Vias {
		out[v.LayerPair]++
	}
	return out
}
