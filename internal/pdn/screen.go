package pdn

import (
	"context"
	"fmt"
	"math"

	"emvia/internal/emdist"
	"emvia/internal/spice"
	"emvia/internal/steady"
	"emvia/internal/telemetry"
	"emvia/internal/trace"
)

// ScreenConfig tunes the grid-level steady-state EM screen (arXiv
// 2112.13451 applied to the mesh): which critical-stress quantile bounds
// mortality and what thermomechanical pre-stress the via barriers carry.
type ScreenConfig struct {
	// EM supplies the Korhonen constants; the zero value selects
	// emdist.Default().
	EM emdist.Params
	// CritQuantile is the quantile of the lognormal critical-stress
	// distribution used as the nucleation threshold. Screening against a
	// low quantile is what makes the classification conservative: a
	// component is only called immortal when even a weak flaw could not
	// nucleate at its steady-state stress cap. 0 selects 1e-3.
	CritQuantile float64
	// SigmaTVia is the thermomechanical pre-stress at the via barriers, Pa
	// (the FEA characterization's scale); 0 selects the calibration value.
	SigmaTVia float64
	// SigmaCritWire is the wire-tree mortality threshold, Pa; 0 selects
	// the same critical-stress quantile (wires carry no via pre-stress).
	SigmaCritWire float64
}

func (sc ScreenConfig) withDefaults() ScreenConfig {
	if sc.EM.Omega == 0 {
		sc.EM = emdist.Default()
	}
	if sc.CritQuantile == 0 {
		sc.CritQuantile = 1e-3
	}
	if sc.SigmaTVia == 0 {
		sc.SigmaTVia = emdist.CalibrationSigmaT
	}
	return sc
}

// GridScreen is the steady-state classification of one grid: every mesh
// segment and every via array immortal/mortal with stress margins — the
// -engine=steady result artifact, and the candidate mask -engine=both feeds
// into the Monte Carlo.
type GridScreen struct {
	// Wire is the tree-level screen of the mesh segments (vias excluded:
	// their liner barriers bound the trees).
	Wire *steady.Report
	// ViaStress, ViaMargin and ViaMortal classify each via array (g.Vias
	// order): ViaStress is the steady-state stress cap at the array's
	// barriers (pre-stress included), ViaMargin the headroom to the
	// critical stress (negative = mortal).
	ViaStress []float64
	ViaMargin []float64
	ViaMortal []bool
	// MortalVias / Vias and MortalSegments / Segments are the headline
	// classification counts.
	MortalVias, Vias         int
	MortalSegments, Segments int
	// SigmaCritVia and SigmaCritWire echo the resolved thresholds, Pa.
	SigmaCritVia  float64
	SigmaCritWire float64
	// SigmaTVia echoes the via barrier pre-stress used, Pa.
	SigmaTVia float64
}

// CandidateMask returns the mortal-via mask in mc.Options.Candidates form.
// The returned slice is freshly allocated each call.
func (s *GridScreen) CandidateMask() []bool {
	mask := make([]bool, len(s.ViaMortal))
	copy(mask, s.ViaMortal)
	return mask
}

// MortalViaFraction is the fraction of via arrays classified mortal.
func (s *GridScreen) MortalViaFraction() float64 {
	if s.Vias == 0 {
		return 0
	}
	return float64(s.MortalVias) / float64(s.Vias)
}

// screenGraph builds the steady-state wire graph of a compiled grid: every
// non-via resistor becomes a branch (uniform volume — the synthetic mesh
// uses one wire cross-section and pitch throughout), pads become flux
// boundaries. Via resistors are excluded: their liner barriers are what
// partition the metal into independent trees.
func screenGraph(g *Grid, circuit *spice.Circuit, op *spice.OP) (*steady.Graph, []bool, error) {
	isVia := make([]bool, circuit.NumResistors())
	for _, v := range g.Vias {
		if v.ResistorIndex < 0 || v.ResistorIndex >= len(isVia) {
			return nil, nil, fmt.Errorf("pdn: via resistor index %d out of range", v.ResistorIndex)
		}
		isVia[v.ResistorIndex] = true
	}
	n := circuit.NumNodes()
	sg := &steady.Graph{
		NumNodes: n,
		V:        make([]float64, n),
		Blocked:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		sg.V[i] = op.VoltageAt(i)
		sg.Blocked[i] = circuit.IsPad(i)
	}
	for ri := 0; ri < circuit.NumResistors(); ri++ {
		if isVia[ri] {
			continue
		}
		a, b := circuit.ResistorNodes(ri)
		if a < 0 || b < 0 {
			continue // ground-terminated elements are not wire metal
		}
		sg.Branches = append(sg.Branches, steady.Branch{A: a, B: b})
	}
	return sg, isVia, nil
}

// screenGrid classifies the grid against the solved pristine operating
// point. Wire trees are screened on their signed steady tension. A via
// array is screened on the unsigned steady deviation at its terminal nodes
// plus half its own voltage drop: the array TTF model is direction-agnostic
// (the characterized σ_T and TTF(I) apply whichever barrier the flux
// divergence loads), so the conservative stress scale of a junction is how
// far its potential sits from the tree's atom-conservation mean — large for
// exactly the pad- and load-side arrays that carry the grid's current, zero
// for junctions the current passes by.
func screenGrid(g *Grid, circuit *spice.Circuit, op *spice.OP, sc ScreenConfig) (*GridScreen, error) {
	sc = sc.withDefaults()
	reg := telemetry.Default()
	t0 := reg.Histogram(telemetry.SteadyScreenSeconds).Start()
	sg, _, err := screenGraph(g, circuit, op)
	if err != nil {
		return nil, err
	}
	dist, err := sc.EM.SigmaCDist()
	if err != nil {
		return nil, fmt.Errorf("pdn: critical-stress distribution: %w", err)
	}
	sigmaCrit := dist.Quantile(sc.CritQuantile)
	if !(sigmaCrit > 0) {
		return nil, fmt.Errorf("pdn: critical-stress quantile %g resolves to %g", sc.CritQuantile, sigmaCrit)
	}
	wireCrit := sc.SigmaCritWire
	if wireCrit == 0 {
		wireCrit = sigmaCrit
	}
	rep, err := steady.Screen(sg, steady.Config{EM: sc.EM, SigmaCrit: wireCrit})
	if err != nil {
		return nil, err
	}
	out := &GridScreen{
		Wire:           rep,
		ViaStress:      make([]float64, len(g.Vias)),
		ViaMargin:      make([]float64, len(g.Vias)),
		ViaMortal:      make([]bool, len(g.Vias)),
		Vias:           len(g.Vias),
		Segments:       len(sg.Branches),
		MortalSegments: rep.MortalBranches,
		SigmaCritVia:   sigmaCrit,
		SigmaCritWire:  wireCrit,
		SigmaTVia:      sc.SigmaTVia,
	}
	for k, v := range g.Vias {
		a, b := circuit.ResistorNodes(v.ResistorIndex)
		dev := 0.0
		if a >= 0 {
			if d := math.Abs(rep.Stress[a]); d > dev {
				dev = d
			}
		}
		if b >= 0 {
			if d := math.Abs(rep.Stress[b]); d > dev {
				dev = d
			}
		}
		// Half the array's own voltage drop is the Blech term of the via
		// body itself (the junction-to-barrier segment of the tree).
		cond := circuit.ResistorConductance(v.ResistorIndex)
		current := math.Abs(op.ResistorCurrent(v.ResistorIndex))
		if cond > 0 {
			dev += rep.Chi * (current / cond) / 2
		}
		stress := sc.SigmaTVia + dev
		out.ViaStress[k] = stress
		out.ViaMargin[k] = sigmaCrit - stress
		// A zero-current array never ages in the TTF model (its sampled
		// lifetime is +Inf at any stress), so it stays immortal regardless.
		if current > 0 && stress >= sigmaCrit {
			out.ViaMortal[k] = true
			out.MortalVias++
		}
	}
	reg.Counter(telemetry.SteadyScreens).Inc()
	reg.Counter(telemetry.SteadyMortalVias).Add(int64(out.MortalVias))
	reg.Counter(telemetry.SteadyImmortalVias).Add(int64(out.Vias - out.MortalVias))
	reg.Histogram(telemetry.SteadyScreenSeconds).ObserveSince(t0)
	return out, nil
}

// SteadyScreen classifies every component of the system's grid against its
// pristine operating point — the linear-time pre-pass of -engine=steady and
// -engine=both. It reuses the system's compiled circuit and pristine solve,
// so the screen costs one O(branches) sweep, no extra linear solves.
func (s *GridSystem) SteadyScreen(sc ScreenConfig) (*GridScreen, error) {
	return screenGrid(s.cfg.Grid, s.circuit, s.op0, sc)
}

// ScreenGrid compiles and solves a grid and runs the steady-state screen —
// the standalone -engine=steady path, which never builds TTF models or
// touches the Monte Carlo.
func ScreenGrid(g *Grid, sc ScreenConfig) (*GridScreen, error) {
	return ScreenGridCtx(context.Background(), g, sc)
}

// ScreenGridCtx is ScreenGrid with a context whose timeline (if any) gets
// the "compile", "factorize" and "screen" stage spans. The context is
// observational only — the screen is a single bounded pass.
func ScreenGridCtx(ctx context.Context, g *Grid, sc ScreenConfig) (*GridScreen, error) {
	if g == nil {
		return nil, fmt.Errorf("pdn: ScreenGrid needs a grid")
	}
	tl := trace.TimelineFrom(ctx)
	endCompile := tl.Stage("compile")
	circuit, err := spice.Compile(g.Netlist)
	endCompile()
	if err != nil {
		return nil, fmt.Errorf("pdn: compiling grid: %w", err)
	}
	endFactorize := tl.Stage("factorize")
	op, err := circuit.SolveDC(nil)
	endFactorize()
	if err != nil {
		return nil, fmt.Errorf("pdn: pristine solve: %w", err)
	}
	endScreen := tl.Stage("screen")
	defer endScreen()
	return screenGrid(g, circuit, op, sc)
}
