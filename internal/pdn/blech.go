package pdn

import (
	"fmt"
	"math"

	"emvia/internal/emdist"
	"emvia/internal/korhonen"
	"emvia/internal/spice"
)

// WireBlechReport summarizes the Blech short-length screening of a grid's
// wire segments: the check behind the paper's §5.2 assumption that "spanning
// voids in wires have a very low probability, and for all practical purposes
// EM failures occur in via arrays". A segment whose j·L product is below the
// Blech threshold saturates below the void-nucleation stress and is immortal.
type WireBlechReport struct {
	// Threshold is the critical j·L product, A/m.
	Threshold float64
	// Segments is the number of wire segments checked (via arrays are
	// excluded — their reliability is the Monte Carlo's job).
	Segments int
	// Mortal is the number of segments whose j·L exceeds the threshold.
	Mortal int
	// WorstJL is the largest observed j·L product, A/m.
	WorstJL float64
}

// ImmortalFraction returns the fraction of wire segments that are
// Blech-immune.
func (r WireBlechReport) ImmortalFraction() float64 {
	if r.Segments == 0 {
		return 1
	}
	return 1 - float64(r.Mortal)/float64(r.Segments)
}

// WireBlechScreen solves the pristine grid and screens every wire segment's
// j·L product against the Blech threshold at effective critical stress
// sigmaCrit (= σ_C − σ_T of the wires). Wire cross-section comes from the
// grid spec; segment length is the stripe pitch.
func (g *Grid) WireBlechScreen(em emdist.Params, sigmaCrit float64) (*WireBlechReport, error) {
	if sigmaCrit <= 0 {
		return nil, fmt.Errorf("pdn: sigmaCrit must be positive, got %g", sigmaCrit)
	}
	area := g.Spec.WireWidth * g.Spec.WireThickness
	if area <= 0 || g.Spec.Pitch <= 0 {
		return nil, fmt.Errorf("pdn: grid spec lacks wire geometry")
	}
	c, err := spice.Compile(g.Netlist)
	if err != nil {
		return nil, err
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		return nil, err
	}
	isVia := make([]bool, len(g.Netlist.Resistors))
	for _, v := range g.Vias {
		isVia[v.ResistorIndex] = true
	}
	rep := &WireBlechReport{Threshold: korhonen.BlechProduct(em, sigmaCrit)}
	for i := range g.Netlist.Resistors {
		if isVia[i] {
			continue
		}
		j := math.Abs(op.ResistorCurrent(i)) / area
		jl := j * g.Spec.Pitch
		rep.Segments++
		if jl > rep.WorstJL {
			rep.WorstJL = jl
		}
		if !korhonen.Immortal(em, sigmaCrit, j, g.Spec.Pitch) {
			rep.Mortal++
		}
	}
	return rep, nil
}
