package pdn

import (
	"math/rand"
	"testing"
)

// TestTrialLoopZeroAlloc pins the allocation budget of the Monte-Carlo hot
// path: once a GridSystem has run one warm-up trial (building the cached
// factor and scratch state), BeginTrial → Fail → Failed cycles must not
// touch the heap.
func TestTrialLoopZeroAlloc(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	cfg := TTFConfig{
		Grid:       g,
		Models:     testModels(refCurrentOf(t, g)),
		Criterion:  IRDrop,
		IRDropFrac: 0.10,
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	trial := func() error {
		if err := s.BeginTrial(rng); err != nil {
			return err
		}
		for k := 0; k < 3; k++ {
			if err := s.Fail(k); err != nil {
				return err
			}
			if _, err := s.Failed(); err != nil {
				return err
			}
		}
		return nil
	}
	// Warm-up trial: lazily builds the pristine dense factor, its snapshot,
	// and the per-trial buffers.
	if err := trial(); err != nil {
		t.Fatal(err)
	}
	var trialErr error
	allocs := testing.AllocsPerRun(20, func() {
		if err := trial(); err != nil {
			trialErr = err
		}
	})
	if trialErr != nil {
		t.Fatal(trialErr)
	}
	if allocs != 0 {
		t.Errorf("trial loop allocates %.1f objects per trial, want 0", allocs)
	}
}
