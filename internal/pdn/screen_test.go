package pdn

import (
	"math"
	"math/rand"
	"testing"

	"emvia/internal/mc"
)

func mustScreenedSystem(t *testing.T, g *Grid) (*GridSystem, *GridScreen) {
	t.Helper()
	sys, err := NewSystem(TTFConfig{
		Grid:       g,
		Models:     testModels(refCurrentOf(t, g)),
		Criterion:  IRDrop,
		IRDropFrac: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	screen, err := sys.SteadyScreen(ScreenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, screen
}

func TestSteadyScreenClassifies(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	_, screen := mustScreenedSystem(t, g)
	if screen.Vias != len(g.Vias) {
		t.Fatalf("screen covers %d vias, want %d", screen.Vias, len(g.Vias))
	}
	if len(screen.ViaStress) != screen.Vias || len(screen.ViaMargin) != screen.Vias || len(screen.ViaMortal) != screen.Vias {
		t.Fatal("per-via arrays not parallel to the via list")
	}
	if screen.SigmaCritVia <= screen.SigmaTVia {
		t.Fatalf("no screening headroom: σ_crit %g ≤ σ_T %g", screen.SigmaCritVia, screen.SigmaTVia)
	}
	if screen.MortalVias == 0 {
		t.Fatal("a loaded grid must have mortal vias")
	}
	for k := 0; k < screen.Vias; k++ {
		if math.IsNaN(screen.ViaStress[k]) || math.IsInf(screen.ViaStress[k], 0) {
			t.Fatalf("via %d stress %g", k, screen.ViaStress[k])
		}
		if screen.ViaMortal[k] != (screen.ViaMargin[k] <= 0) {
			t.Fatalf("via %d: mortal=%v but margin %g", k, screen.ViaMortal[k], screen.ViaMargin[k])
		}
	}
	if screen.Wire == nil || screen.Wire.Trees == 0 {
		t.Fatal("wire report missing")
	}
	if screen.Segments != len(g.Netlist.Resistors)-len(g.Vias) {
		t.Errorf("segments = %d, want %d", screen.Segments, len(g.Netlist.Resistors)-len(g.Vias))
	}
	t.Logf("screen: %d/%d mortal vias (%.0f%%), %d wire trees, σ_crit %.0f MPa",
		screen.MortalVias, screen.Vias, 100*screen.MortalViaFraction(),
		screen.Wire.Trees, screen.SigmaCritVia/1e6)
}

func TestScreenGridStandalone(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	sys, viaSys := mustScreenedSystem(t, g)
	_ = sys
	solo, err := ScreenGrid(g, ScreenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if solo.MortalVias != viaSys.MortalVias {
		t.Errorf("standalone screen found %d mortal vias, system screen %d", solo.MortalVias, viaSys.MortalVias)
	}
	for k := range solo.ViaStress {
		if solo.ViaStress[k] != viaSys.ViaStress[k] {
			t.Fatalf("via %d stress differs: %g vs %g", k, solo.ViaStress[k], viaSys.ViaStress[k])
		}
	}
	if _, err := ScreenGrid(nil, ScreenConfig{}); err == nil {
		t.Error("accepted nil grid")
	}
}

// TestLegacyFailuresWithinMortalSet is the screening soundness property on
// randomized small grids: every via array the unpruned Monte Carlo observes
// failing (before the system criterion fires) must be classified mortal by
// the steady screen. A miss here means -engine=both would drop statistics
// -engine=mc would have produced.
func TestLegacyFailuresWithinMortalSet(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		spec := smallSpec()
		spec.NX = 6 + rng.Intn(4)
		spec.NY = 6 + rng.Intn(4)
		spec.PadPeriod = 2 + rng.Intn(2)
		targetIR := 0.04 + 0.03*rng.Float64()
		g := mustGrid(t, spec, targetIR)
		sys, screen := mustScreenedSystem(t, g)
		res, err := AnalyzeTTF(sys.cfg, 40, 1000+int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		misses := res.MaskMisses(screen.ViaMortal)
		if len(misses) > 0 {
			for _, k := range misses {
				t.Errorf("grid %dx%d pad %d ir %.3f: via %d failed in MC but screened immortal (i0 %.4g A, margin %.3g MPa)",
					spec.NX, spec.NY, spec.PadPeriod, targetIR, k, sys.i0[k], screen.ViaMargin[k]/1e6)
			}
			t.Fatalf("%d mortal-set misses", len(misses))
		}
		t.Logf("grid %dx%d pad %d ir %.3f: %d/%d mortal, 0 misses over 40 trials",
			spec.NX, spec.NY, spec.PadPeriod, targetIR, screen.MortalVias, screen.Vias)
	}
}

// TestScreenedBitIdenticalToMaskedFull pins the per-component substream
// contract: a masked run restricted to the mortal set is bit-identical to a
// masked run over all components whenever the full run's failures all land
// in the mortal set — shrinking the mask must never perturb the surviving
// components' sampled lifetimes or the trial outcomes built from them.
func TestScreenedBitIdenticalToMaskedFull(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	sys, screen := mustScreenedSystem(t, g)
	all := make([]bool, len(g.Vias))
	for i := range all {
		all[i] = true
	}
	run := func(mask []bool) *mc.Result {
		t.Helper()
		clone := sys.Clone()
		res, err := mc.Run(clone, mc.Options{
			Trials:     30,
			Seed:       77,
			Engine:     mc.EngineBoth,
			Candidates: mask,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(all)
	if misses := full.MaskMisses(screen.ViaMortal); len(misses) > 0 {
		t.Fatalf("full masked run failed %d vias outside the mortal set; screen not conservative here", len(misses))
	}
	pruned := run(screen.CandidateMask())
	for i := range full.TTF {
		if full.TTF[i] != pruned.TTF[i] {
			t.Fatalf("trial %d TTF differs: %g (full) vs %g (pruned)", i, full.TTF[i], pruned.TTF[i])
		}
		if len(full.Events[i]) != len(pruned.Events[i]) {
			t.Fatalf("trial %d event count differs: %d vs %d", i, len(full.Events[i]), len(pruned.Events[i]))
		}
		for j := range full.Events[i] {
			if full.Events[i][j] != pruned.Events[i][j] || full.EventComps[i][j] != pruned.EventComps[i][j] {
				t.Fatalf("trial %d event %d differs: (%g, %d) vs (%g, %d)", i, j,
					full.Events[i][j], full.EventComps[i][j], pruned.Events[i][j], pruned.EventComps[i][j])
			}
		}
	}
}

// TestAnalyzeTTFScreened exercises the -engine=both pipeline end to end:
// screen, prune, run, assert zero misses, and keep the surviving TTF
// distribution in the same ballpark as the unpruned engine.
func TestAnalyzeTTFScreened(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	cfg := TTFConfig{
		Grid:       g,
		Models:     testModels(refCurrentOf(t, g)),
		Criterion:  IRDrop,
		IRDropFrac: 0.10,
	}
	res, screen, err := AnalyzeTTFScreened(cfg, 40, 7, ScreenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if screen.MortalVias == 0 || screen.MortalVias > screen.Vias {
		t.Fatalf("mortal count %d of %d", screen.MortalVias, screen.Vias)
	}
	legacy, err := AnalyzeTTF(cfg, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	mScr := median(t, res.FiniteTTF())
	mLeg := median(t, legacy.FiniteTTF())
	if ratio := mScr / mLeg; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("screened median TTF off by %.2fx vs legacy", ratio)
	}
	// Pruned components must never appear in the event log.
	if misses := res.MaskMisses(screen.ViaMortal); len(misses) > 0 {
		t.Fatalf("screened run failed outside its own mask: %v", misses)
	}
}

func TestSetCandidatesValidation(t *testing.T) {
	g := mustGrid(t, smallSpec(), 0.05)
	sys, _ := mustScreenedSystem(t, g)
	if err := sys.SetCandidates(make([]bool, 3)); err == nil {
		t.Error("accepted wrong-length mask")
	}
	if err := sys.SetCandidates(make([]bool, len(g.Vias))); err == nil {
		t.Error("accepted all-false mask")
	}
	mask := make([]bool, len(g.Vias))
	mask[0] = true
	if err := sys.SetCandidates(mask); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetCandidates(nil); err != nil {
		t.Fatal(err)
	}
	if sys.candidates != nil {
		t.Error("nil mask did not clear candidates")
	}
}
