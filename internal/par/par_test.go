package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if got := p.Workers(); got != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", got)
	}
	var zero Pool
	if got := zero.Workers(); got != 1 {
		t.Fatalf("zero pool Workers() = %d, want 1", got)
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3).Workers() = %d, want GOMAXPROCS", got)
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("New(7).Workers() = %d, want 7", got)
	}
}

func TestRunCoversEveryBlockOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 16} {
		p := New(workers)
		const n = 1000
		hits := make([]atomic.Int32, n)
		p.Run(n, func(b int) { hits[b].Add(1) })
		for b := range hits {
			if got := hits[b].Load(); got != 1 {
				t.Fatalf("workers=%d: block %d ran %d times, want 1", workers, b, got)
			}
		}
	}
}

func TestRunZeroAndNegativeBlocks(t *testing.T) {
	ran := 0
	New(4).Run(0, func(int) { ran++ })
	New(4).Run(-5, func(int) { ran++ })
	if ran != 0 {
		t.Fatalf("fn ran %d times for empty block counts, want 0", ran)
	}
}

func TestSerialRunAllocsNothing(t *testing.T) {
	var p *Pool
	sum := 0
	fn := func(b int) { sum += b }
	allocs := testing.AllocsPerRun(100, func() {
		p.Run(64, fn)
	})
	if allocs != 0 {
		t.Errorf("serial Run allocates %.1f objects, want 0", allocs)
	}
}

func TestBlocks(t *testing.T) {
	cases := []struct{ n, bs, want int }{
		{0, 8, 0}, {-1, 8, 0}, {1, 8, 1}, {8, 8, 1}, {9, 8, 2}, {100, 7, 15},
	}
	for _, c := range cases {
		if got := Blocks(c.n, c.bs); got != c.want {
			t.Errorf("Blocks(%d,%d) = %d, want %d", c.n, c.bs, got, c.want)
		}
	}
}
