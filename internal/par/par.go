// Package par provides the small worker-pool primitive shared by the
// parallel FEA assembly, stress recovery and CG kernels.
//
// The design constraint is determinism: callers partition work into blocks
// whose results are independent of which worker runs them (disjoint writes,
// or per-block partial results reduced in block order afterwards), so the
// numerical output is bit-identical for any worker count. The pool therefore
// only provides dynamic block dispatch — never a reduction of its own.
//
// A nil *Pool (or worker count 1) runs every block inline on the calling
// goroutine with no synchronization and no allocation, so serial callers pay
// nothing for the shared code path.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"emvia/internal/telemetry"
	"emvia/internal/trace"
)

// Pool is a fixed-width worker pool. The zero value and nil are both valid
// and mean "serial".
type Pool struct {
	workers int
}

// New returns a pool of the given width. workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width; nil and zero-value pools report 1.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Run invokes fn(b) for every block index b in [0, nblocks), dispatching
// blocks dynamically across the pool's workers. fn must write only to
// block-b-owned state; under that contract the result is identical for any
// worker count. Run returns when every block has finished.
func (p *Pool) Run(nblocks int, fn func(b int)) {
	w := p.Workers()
	if w > nblocks {
		w = nblocks
	}
	if w <= 1 {
		// The serial path is deliberately uninstrumented: it sits inside the
		// per-iteration CG kernels of serial callers, where even a single
		// atomic load per call would be measurable.
		for b := 0; b < nblocks; b++ {
			fn(b)
		}
		return
	}
	// Utilization telemetry (parallel dispatches only): busy time is the
	// summed in-worker time, wall time is the dispatch duration weighted by
	// the worker count; their ratio is the fleet utilization. time.Now is
	// only read when telemetry is enabled.
	reg := telemetry.Default()
	var run0 time.Time
	var busy *telemetry.Counter
	if reg != nil {
		reg.Counter(telemetry.ParRuns).Inc()
		reg.Counter(telemetry.ParBlocks).Add(int64(nblocks))
		busy = reg.Counter(telemetry.ParBusyNanos)
		run0 = time.Now()
	}
	// Trace span for the parallel dispatch only — the serial path above stays
	// uninstrumented for the same hot-loop reason as telemetry.
	runSpan := trace.Default().Span("par.run")
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			var w0 time.Time
			if busy != nil {
				w0 = time.Now()
			}
			for {
				b := int(next.Add(1)) - 1
				if b >= nblocks {
					break
				}
				fn(b)
			}
			if busy != nil {
				busy.Add(int64(time.Since(w0)))
			}
		}()
	}
	wg.Wait()
	runSpan()
	if reg != nil {
		reg.Counter(telemetry.ParWallNanos).Add(int64(w) * int64(time.Since(run0)))
	}
}

// Blocks returns the number of fixed-size blocks covering n items. The block
// size is a property of the work, not of the pool, so partial results stay
// comparable across worker counts.
func Blocks(n, blockSize int) int {
	if n <= 0 {
		return 0
	}
	return (n + blockSize - 1) / blockSize
}
