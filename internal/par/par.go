// Package par provides the small worker-pool primitive shared by the
// parallel FEA assembly, stress recovery, CG kernels and the supernodal
// sparse-Cholesky factorization.
//
// The design constraint is determinism: callers partition work into blocks
// whose results are independent of which worker runs them (disjoint writes,
// or per-block partial results reduced in block order afterwards), so the
// numerical output is bit-identical for any worker count. The pool therefore
// only provides dynamic block dispatch — never a reduction of its own.
//
// A nil *Pool (or worker count 1) runs every block inline on the calling
// goroutine with no synchronization and no allocation, so serial callers pay
// nothing for the shared code path.
//
// Workers are persistent: the first parallel dispatch spawns workers−1
// helper goroutines that park on a channel between dispatches, so steady-state
// dispatch allocates nothing (the per-call goroutine spawn of the previous
// design cost ~1.5k allocs/op in the multi-worker FEA benchmarks). The caller
// always participates as slot 0. Dispatches are serialized by an internal
// mutex, so a pool may be shared between goroutines — concurrent Run calls
// queue rather than race. Run/RunW must not be called from inside a running
// block function of the same pool (self-deadlock).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"emvia/internal/telemetry"
	"emvia/internal/trace"
)

// Pool is a fixed-width worker pool. The zero value and nil are both valid
// and mean "serial".
type Pool struct {
	workers int

	// mu serializes parallel dispatches and guards lazy worker start-up and
	// Close. The serial fast path never touches it.
	mu      sync.Mutex
	started bool
	closed  bool
	wake    chan struct{} // one token per helper participating in a dispatch
	done    chan struct{} // completion signal from the last finishing worker
	quit    chan struct{} // closed by Close; terminates parked workers

	// Dispatch state, written under mu before tokens are sent. Exactly one
	// of fn/fnw is non-nil per dispatch.
	nblocks int
	fn      func(b int)
	fnw     func(b, slot int)
	next    atomic.Int64
	pending atomic.Int64
}

// New returns a pool of the given width. workers <= 0 selects
// runtime.GOMAXPROCS(0). Helper goroutines are spawned lazily on the first
// parallel dispatch and parked between dispatches; Close releases them.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// sharedPools caches one never-closed pool per width for callers whose pool
// lifetime is "the whole process" (per-solve FEA pools, the spice solver
// pool). Reusing one pool per width keeps repeated solves from respawning
// workers on every call.
var (
	sharedMu    sync.Mutex
	sharedPools map[int]*Pool
)

// Shared returns the process-wide pool of the given width (<= 0 selects
// GOMAXPROCS), creating it on first use. Shared pools are never closed; their
// parked workers persist for the life of the process. Dispatches from
// concurrent goroutines onto the same shared pool serialize.
func Shared(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedPools == nil {
		sharedPools = make(map[int]*Pool)
	}
	p := sharedPools[workers]
	if p == nil {
		p = New(workers)
		sharedPools[workers] = p
	}
	return p
}

// Workers returns the pool width; nil and zero-value pools report 1.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Close releases the pool's parked worker goroutines. It is idempotent and
// nil-safe. A closed pool remains usable — subsequent Run/RunW calls execute
// serially on the caller.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.started {
		close(p.quit)
	}
}

// Run invokes fn(b) for every block index b in [0, nblocks), dispatching
// blocks dynamically across the pool's workers. fn must write only to
// block-b-owned state; under that contract the result is identical for any
// worker count. Run returns when every block has finished.
func (p *Pool) Run(nblocks int, fn func(b int)) {
	if nblocks <= 0 {
		return
	}
	w := p.Workers()
	if w > nblocks {
		w = nblocks
	}
	if w <= 1 {
		// The serial path is deliberately uninstrumented: it sits inside the
		// per-iteration CG kernels of serial callers, where even a single
		// atomic load per call would be measurable.
		for b := 0; b < nblocks; b++ {
			fn(b)
		}
		return
	}
	p.dispatch(nblocks, w, fn, nil)
}

// RunW is Run with a worker-slot argument: fn(b, slot) receives the identity
// of the worker running block b, a stable integer in [0, Workers()) with the
// caller as slot 0. Callers use it to index per-worker scratch (sized
// Workers()) without synchronization. Block results must not depend on slot —
// scratch must be fully overwritten or cleared per block — so the output
// remains bit-identical for any worker count.
func (p *Pool) RunW(nblocks int, fn func(b, slot int)) {
	if nblocks <= 0 {
		return
	}
	w := p.Workers()
	if w > nblocks {
		w = nblocks
	}
	if w <= 1 {
		for b := 0; b < nblocks; b++ {
			fn(b, 0)
		}
		return
	}
	p.dispatch(nblocks, w, nil, fn)
}

// dispatch runs one parallel invocation with w >= 2 participants.
func (p *Pool) dispatch(nblocks, w int, fn func(int), fnw func(int, int)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		// Closed pools degrade to serial rather than panic: per-solve pools
		// may race a deferred Close against a final flush elsewhere.
		p.runSerial(nblocks, fn, fnw)
		return
	}
	if !p.started {
		p.started = true
		p.wake = make(chan struct{}, p.workers-1)
		p.done = make(chan struct{}, 1)
		p.quit = make(chan struct{})
		for id := 1; id < p.workers; id++ {
			go p.workerLoop(id)
		}
	}
	// Utilization telemetry (parallel dispatches only): busy time is the
	// summed in-worker time, wall time is the dispatch duration weighted by
	// the worker count; their ratio is the fleet utilization. time.Now is
	// only read when telemetry is enabled.
	reg := telemetry.Default()
	var run0, w0 time.Time
	var busy *telemetry.Counter
	if reg != nil {
		reg.Counter(telemetry.ParRuns).Inc()
		reg.Counter(telemetry.ParBlocks).Add(int64(nblocks))
		busy = reg.Counter(telemetry.ParBusyNanos)
		run0 = time.Now()
	}
	// Trace span for the parallel dispatch only — the serial path stays
	// uninstrumented for the same hot-loop reason as telemetry.
	runSpan := trace.Default().Span("par.run")

	p.nblocks = nblocks
	p.fn = fn
	p.fnw = fnw
	p.next.Store(0)
	helpers := w - 1
	p.pending.Store(int64(helpers) + 1)
	for i := 0; i < helpers; i++ {
		p.wake <- struct{}{}
	}
	if busy != nil {
		w0 = time.Now()
	}
	p.loop(0)
	if busy != nil {
		busy.Add(int64(time.Since(w0)))
	}
	if p.pending.Add(-1) != 0 {
		<-p.done
	}
	p.fn = nil
	p.fnw = nil

	runSpan()
	if reg != nil {
		reg.Counter(telemetry.ParWallNanos).Add(int64(w) * int64(time.Since(run0)))
	}
}

func (p *Pool) runSerial(nblocks int, fn func(int), fnw func(int, int)) {
	if fnw != nil {
		for b := 0; b < nblocks; b++ {
			fnw(b, 0)
		}
		return
	}
	for b := 0; b < nblocks; b++ {
		fn(b)
	}
}

// workerLoop is the body of one persistent helper goroutine. It parks on the
// wake channel between dispatches; each token admits it to exactly one
// dispatch. The channel receive orders the dispatch-state writes of the
// caller before the reads here.
func (p *Pool) workerLoop(id int) {
	for {
		select {
		case <-p.wake:
		case <-p.quit:
			return
		}
		var w0 time.Time
		var busy *telemetry.Counter
		if reg := telemetry.Default(); reg != nil {
			busy = reg.Counter(telemetry.ParBusyNanos)
			w0 = time.Now()
		}
		p.loop(id)
		if busy != nil {
			busy.Add(int64(time.Since(w0)))
		}
		if p.pending.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// loop drains dispatch blocks on behalf of worker slot.
func (p *Pool) loop(slot int) {
	n := p.nblocks
	if fw := p.fnw; fw != nil {
		for {
			b := int(p.next.Add(1)) - 1
			if b >= n {
				return
			}
			fw(b, slot)
		}
	}
	f := p.fn
	for {
		b := int(p.next.Add(1)) - 1
		if b >= n {
			return
		}
		f(b)
	}
}

// Blocks returns the number of fixed-size blocks covering n items. The block
// size is a property of the work, not of the pool, so partial results stay
// comparable across worker counts.
func Blocks(n, blockSize int) int {
	if n <= 0 {
		return 0
	}
	return (n + blockSize - 1) / blockSize
}
