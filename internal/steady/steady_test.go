package steady

import (
	"math"
	"testing"

	"emvia/internal/emdist"
	"emvia/internal/korhonen"
)

// lineGraph builds a uniform m-segment line of total length L carrying
// current density j: node potentials drop linearly by ρ·j·L end to end.
func lineGraph(em emdist.Params, j, L float64, m int) *Graph {
	g := &Graph{NumNodes: m + 1, V: make([]float64, m+1)}
	drop := em.Rho * j * L
	for i := 0; i <= m; i++ {
		// Conventional current flows 0 → m, so V decreases with i.
		g.V[i] = 1.8 - drop*float64(i)/float64(m)
	}
	for i := 0; i < m; i++ {
		g.Branches = append(g.Branches, Branch{A: i, B: i + 1})
	}
	return g
}

// TestLineMatchesKorhonen pins the whole generalization to its one-line
// special case: the peak steady tension of a uniform blocked line must be
// the Blech saturation stress G·L/2 of the Korhonen model.
func TestLineMatchesKorhonen(t *testing.T) {
	em := emdist.Default()
	j, L := 2e9, 50e-6
	g := lineGraph(em, j, L, 10)
	rep, err := Screen(g, Config{EM: em, SigmaCrit: 500e6})
	if err != nil {
		t.Fatal(err)
	}
	want := korhonen.Line{Length: L, EM: em, J: j}.SteadyStateCathodeStress()
	if d := math.Abs(rep.MaxStress-want) / want; d > 1e-12 {
		t.Fatalf("line peak stress %g, Korhonen G·L/2 = %g (rel %g)", rep.MaxStress, want, d)
	}
	if rep.Trees != 1 {
		t.Fatalf("uniform line split into %d trees", rep.Trees)
	}
}

// TestBlechAgreement sweeps j·L across the Blech product: the screen's
// mortal/immortal verdict must agree with korhonen.Immortal exactly.
func TestBlechAgreement(t *testing.T) {
	em := emdist.Default()
	const sigmaCrit = 300e6
	bp := korhonen.BlechProduct(em, sigmaCrit)
	for _, frac := range []float64{0.25, 0.5, 0.9, 0.999, 1.001, 1.5, 4} {
		j := 1e10
		L := frac * bp / j
		g := lineGraph(em, j, L, 7)
		rep, err := Screen(g, Config{EM: em, SigmaCrit: sigmaCrit})
		if err != nil {
			t.Fatal(err)
		}
		mortal := rep.MortalBranches > 0
		wantMortal := !korhonen.Immortal(em, sigmaCrit, j, L)
		if mortal != wantMortal {
			t.Fatalf("j·L = %.3f·Blech: screen mortal=%v, korhonen mortal=%v", frac, mortal, wantMortal)
		}
	}
}

// TestBlockedNodeSplitsTrees checks that a pad in the middle of a line acts
// as a flux barrier: two half-length trees, each saturating at half the
// full-line stress.
func TestBlockedNodeSplitsTrees(t *testing.T) {
	em := emdist.Default()
	j, L := 2e9, 50e-6
	m := 10
	g := lineGraph(em, j, L, m)
	g.Blocked = make([]bool, g.NumNodes)
	g.Blocked[m/2] = true
	rep, err := Screen(g, Config{EM: em, SigmaCrit: 500e6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trees != 2 {
		t.Fatalf("blocked midpoint produced %d trees, want 2", rep.Trees)
	}
	want := korhonen.Line{Length: L / 2, EM: em, J: j}.SteadyStateCathodeStress()
	if d := math.Abs(rep.MaxStress-want) / want; d > 1e-12 {
		t.Fatalf("half-tree peak stress %g, want %g", rep.MaxStress, want)
	}
	if rep.TreeID[m/2] != -1 {
		t.Fatalf("blocked node assigned to tree %d", rep.TreeID[m/2])
	}
}

// TestAtomConservation checks the defining property of the steady solution:
// the volume-weighted stress over each tree sums to zero (no net atom
// creation), accumulated branch-endpoint-wise exactly as Screen averages.
func TestAtomConservation(t *testing.T) {
	em := emdist.Default()
	// A T-shaped tree with unequal volumes and a nonuniform potential.
	g := &Graph{
		NumNodes: 5,
		V:        []float64{1.80, 1.77, 1.745, 1.76, 1.79},
		Branches: []Branch{
			{A: 0, B: 1, Volume: 2},
			{A: 1, B: 2, Volume: 1},
			{A: 1, B: 3, Volume: 0.5},
			{A: 3, B: 4, Volume: 3},
		},
	}
	rep, err := Screen(g, Config{EM: em, SigmaCrit: 500e6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trees != 1 {
		t.Fatalf("T-tree split into %d trees", rep.Trees)
	}
	sum, wsum := 0.0, 0.0
	for _, b := range g.Branches {
		sum += b.Volume * (rep.Stress[b.A] + rep.Stress[b.B]) / 2
		wsum += b.Volume
	}
	if scale := math.Max(rep.MaxStress, 1); math.Abs(sum/wsum)/scale > 1e-12 {
		t.Fatalf("volume-weighted tree stress %g does not vanish (max %g)", sum/wsum, rep.MaxStress)
	}
}

// TestZeroCurrentImmortal: with a flat potential no branch can build stress.
func TestZeroCurrentImmortal(t *testing.T) {
	em := emdist.Default()
	g := &Graph{
		NumNodes: 3,
		V:        []float64{1.8, 1.8, 1.8},
		Branches: []Branch{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	rep, err := Screen(g, Config{EM: em, SigmaCrit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MortalBranches != 0 || rep.MaxStress != 0 {
		t.Fatalf("flat potential classified mortal: %d branches, max %g", rep.MortalBranches, rep.MaxStress)
	}
}

// TestInputValidation covers the error paths.
func TestInputValidation(t *testing.T) {
	em := emdist.Default()
	cases := []struct {
		name string
		g    *Graph
		cfg  Config
	}{
		{"nil graph", nil, Config{EM: em, SigmaCrit: 1}},
		{"bad potentials", &Graph{NumNodes: 2, V: []float64{1}}, Config{EM: em, SigmaCrit: 1}},
		{"bad blocked", &Graph{NumNodes: 2, V: []float64{1, 1}, Blocked: []bool{true}}, Config{EM: em, SigmaCrit: 1}},
		{"bad branch", &Graph{NumNodes: 2, V: []float64{1, 1}, Branches: []Branch{{A: 0, B: 5}}}, Config{EM: em, SigmaCrit: 1}},
		{"bad crit", &Graph{NumNodes: 2, V: []float64{1, 1}}, Config{EM: em, SigmaCrit: 0}},
		{"bad em", &Graph{NumNodes: 2, V: []float64{1, 1}}, Config{SigmaCrit: 1}},
	}
	for _, c := range cases {
		if _, err := Screen(c.g, c.cfg); err == nil {
			t.Fatalf("%s: Screen accepted invalid input", c.name)
		}
	}
}
