// Package steady implements the linear-time steady-state electromigration
// screen of arXiv 2112.13451 over general interconnect trees.
//
// At steady state the atomic flux vanishes on every branch of a blocked
// metal tree: ∂σ/∂x + G = 0 with G = e·Z*·ρ·j/Ω. Ohm's law gives
// ρ·j = −dV/dx along the branch, so the steady stress is affine in the
// electrical potential,
//
//	σ_ss(x) = χ·(V̄ − V(x)),   χ = e·Z*/Ω,
//
// where V̄ is the metal-volume-weighted mean potential over the tree — the
// unique constant that conserves the tree's atom count. Tension therefore
// peaks at the tree's lowest-potential node (the cathode end of electron
// flow), and a one-segment tree reduces exactly to the Blech saturation
// stress G·L/2 of internal/korhonen. A component is EM-immortal when its
// peak steady tension stays below the critical nucleation stress: no void
// can ever nucleate, at any time, so Monte-Carlo sampling of its lifetime
// is wasted work.
//
// The screen needs only the solved DC operating point: node potentials,
// branch connectivity and relative metal volumes. One union-find pass over
// the branches plus two accumulation sweeps classify every node and branch,
// O(B·α(N)) — effectively linear in the netlist size, with no per-tree
// linear solves.
package steady

import (
	"fmt"
	"math"

	"emvia/internal/emdist"
	"emvia/internal/phys"
)

// Branch is one wire segment of the interconnect graph. Current direction
// and magnitude are implicit in the endpoint potentials; Volume weights the
// segment's metal volume (L·A) in the tree's atom-conservation average, and
// any non-positive value means "uniform" (weight 1).
type Branch struct {
	A, B   int
	Volume float64
}

// Graph is the screened interconnect: solved node potentials plus wire
// connectivity. Vias must NOT appear as branches — their liner barriers
// block atomic flux, which is exactly what partitions the metal into
// independent trees; they are screened against the node stresses of the
// trees they terminate on (see internal/pdn and internal/viaarray).
// Blocked marks flux-boundary nodes (package pads): a blocked node splits
// the trees meeting at it and belongs to none, but its potential still
// enters the averages of the branches that touch it.
type Graph struct {
	NumNodes int
	V        []float64
	Blocked  []bool
	Branches []Branch
}

// Config sets the screening physics.
type Config struct {
	// EM supplies e·Z*/Ω and ρ (the Korhonen constants). Required.
	EM emdist.Params
	// SigmaCrit is the critical tensile stress threshold, Pa: a node or
	// branch whose steady-state tension reaches it is classified mortal.
	SigmaCrit float64
}

// Report is the classification of one screened graph.
type Report struct {
	// Trees is the number of connected wire trees found.
	Trees int
	// TreeID maps each node to its tree (−1: blocked or isolated).
	TreeID []int
	// Stress is the per-node steady-state stress, Pa (tension positive);
	// 0 for nodes outside every tree.
	Stress []float64
	// BranchStress and BranchMortal classify each input branch by its peak
	// endpoint tension.
	BranchStress []float64
	BranchMortal []bool
	// MortalBranches counts the mortal entries of BranchMortal.
	MortalBranches int
	// MaxStress is the largest steady tension anywhere in the graph, Pa.
	MaxStress float64
	// SigmaCrit echoes the threshold the classification used, Pa.
	SigmaCrit float64
	// Chi is the stress-per-volt conversion e·Z*/Ω, Pa/V.
	Chi float64
}

// unionFind is a plain path-halving union-find over node indices.
type unionFind []int

func newUnionFind(n int) unionFind {
	p := make(unionFind, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func (p unionFind) find(x int) int {
	for p[x] != x {
		p[x] = p[p[x]]
		x = p[x]
	}
	return x
}

func (p unionFind) union(a, b int) {
	ra, rb := p.find(a), p.find(b)
	if ra != rb {
		p[ra] = rb
	}
}

// Screen classifies every node and branch of the graph as EM-mortal or
// immortal against cfg.SigmaCrit.
func Screen(g *Graph, cfg Config) (*Report, error) {
	if g == nil || g.NumNodes <= 0 {
		return nil, fmt.Errorf("steady: empty graph")
	}
	if len(g.V) != g.NumNodes {
		return nil, fmt.Errorf("steady: %d potentials for %d nodes", len(g.V), g.NumNodes)
	}
	if g.Blocked != nil && len(g.Blocked) != g.NumNodes {
		return nil, fmt.Errorf("steady: %d blocked flags for %d nodes", len(g.Blocked), g.NumNodes)
	}
	if cfg.EM.ZStar <= 0 || cfg.EM.Omega <= 0 {
		return nil, fmt.Errorf("steady: EM params need positive ZStar and Omega")
	}
	if cfg.SigmaCrit <= 0 || math.IsNaN(cfg.SigmaCrit) {
		return nil, fmt.Errorf("steady: SigmaCrit must be positive, got %g", cfg.SigmaCrit)
	}
	blocked := func(i int) bool { return g.Blocked != nil && g.Blocked[i] }
	for bi, b := range g.Branches {
		if b.A < 0 || b.A >= g.NumNodes || b.B < 0 || b.B >= g.NumNodes {
			return nil, fmt.Errorf("steady: branch %d endpoints (%d,%d) out of range", bi, b.A, b.B)
		}
	}

	// Pass 1: merge branches into trees. Blocked nodes never merge — each
	// acts as a barrier — so a branch joins the tree of its free endpoint.
	// A branch with both endpoints blocked forms a degenerate tree of its
	// own, keyed past the node range.
	uf := newUnionFind(g.NumNodes + len(g.Branches))
	comp := make([]int, len(g.Branches)) // union-find key per branch
	for bi, b := range g.Branches {
		switch {
		case !blocked(b.A) && !blocked(b.B):
			uf.union(b.A, b.B)
			comp[bi] = b.A
		case !blocked(b.A):
			comp[bi] = b.A
		case !blocked(b.B):
			comp[bi] = b.B
		default:
			comp[bi] = g.NumNodes + bi
		}
	}

	// Pass 2: per-tree volume-weighted mean potential. Each branch spreads
	// its volume evenly over its two endpoints, so chains of equal segments
	// reproduce the trapezoid average of V along the wire.
	type acc struct{ wsum, vsum float64 }
	sums := make(map[int]*acc, 64)
	for bi, b := range g.Branches {
		w := b.Volume
		if w <= 0 || math.IsNaN(w) {
			w = 1
		}
		root := uf.find(comp[bi])
		comp[bi] = root
		a := sums[root]
		if a == nil {
			a = &acc{}
			sums[root] = a
		}
		a.wsum += w
		a.vsum += w * (g.V[b.A] + g.V[b.B]) / 2
	}

	chi := phys.ElementaryCharge * cfg.EM.ZStar / cfg.EM.Omega
	rep := &Report{
		TreeID:       make([]int, g.NumNodes),
		Stress:       make([]float64, g.NumNodes),
		BranchStress: make([]float64, len(g.Branches)),
		BranchMortal: make([]bool, len(g.Branches)),
		SigmaCrit:    cfg.SigmaCrit,
		Chi:          chi,
	}
	for i := range rep.TreeID {
		rep.TreeID[i] = -1
	}
	treeOf := make(map[int]int, len(sums))
	vbar := func(root int) float64 {
		a := sums[root]
		return a.vsum / a.wsum
	}

	// Pass 3: classify. Node stress is defined for every non-blocked node a
	// branch touches; a blocked endpoint is judged against the adjoining
	// branch's tree (its worst attachment wins via the max fold below).
	for bi, b := range g.Branches {
		root := comp[bi]
		tid, ok := treeOf[root]
		if !ok {
			tid = len(treeOf)
			treeOf[root] = tid
		}
		mean := vbar(root)
		sa := chi * (mean - g.V[b.A])
		sb := chi * (mean - g.V[b.B])
		if !blocked(b.A) {
			rep.TreeID[b.A] = tid
			rep.Stress[b.A] = sa
		}
		if !blocked(b.B) {
			rep.TreeID[b.B] = tid
			rep.Stress[b.B] = sb
		}
		s := math.Max(sa, sb)
		rep.BranchStress[bi] = s
		if s >= cfg.SigmaCrit {
			rep.BranchMortal[bi] = true
			rep.MortalBranches++
		}
		if s > rep.MaxStress {
			rep.MaxStress = s
		}
	}
	rep.Trees = len(treeOf)
	return rep, nil
}

// NodeStress returns node i's steady-state tension plus an extra residual
// (e.g. a via's thermomechanical pre-stress), 0 for nodes outside any tree.
func (r *Report) NodeStress(i int) float64 { return r.Stress[i] }

// Mortal reports whether a component anchored at node i with pre-stress
// sigmaT can ever nucleate: σ_ss(i) + σ_T ≥ σ_crit.
func (r *Report) Mortal(i int, sigmaT float64) bool {
	return r.Stress[i]+sigmaT >= r.SigmaCrit
}

// Margin returns the stress headroom σ_crit − σ_ss(i) − σ_T of a component
// anchored at node i, Pa; negative margins are mortal.
func (r *Report) Margin(i int, sigmaT float64) float64 {
	return r.SigmaCrit - r.Stress[i] - sigmaT
}
