package mc

import "emvia/internal/telemetry"

// runMetrics caches the telemetry handles one Monte-Carlo run (or one
// parallel worker) records through. With telemetry disabled every handle is
// nil and reg is nil, so the per-trial hot path pays nil-receiver no-ops
// only; span timers never read the clock.
type runMetrics struct {
	reg              *telemetry.Registry // for progress ticks; nil when disabled
	trials           *telemetry.Counter
	failuresPerTrial *telemetry.Histogram
	trialSeconds     *telemetry.Histogram
	failSeconds      *telemetry.Histogram
	runSeconds       *telemetry.Histogram
	candidates       *telemetry.Counter
	pruned           *telemetry.Counter
}

func newRunMetrics() runMetrics {
	r := telemetry.Default()
	return runMetrics{
		reg:              r,
		trials:           r.Counter(telemetry.MCTrials),
		failuresPerTrial: r.Histogram(telemetry.MCFailuresPerTrial),
		trialSeconds:     r.Histogram(telemetry.MCTrialSeconds),
		failSeconds:      r.Histogram(telemetry.MCFailStepSeconds),
		runSeconds:       r.Histogram(telemetry.MCRunSeconds),
		candidates:       r.Counter(telemetry.MCCandidateComponents),
		pruned:           r.Counter(telemetry.MCPrunedComponents),
	}
}

// observeMask records a screened run's candidate/pruned split once per run:
// total components minus candidates is what the steady screen saved the
// engine from sampling and scanning.
func (m *runMetrics) observeMask(total, cands int) {
	m.candidates.Add(int64(cands))
	m.pruned.Add(int64(total - cands))
}
