package mc

import (
	"math/rand"
	"testing"
)

// sampledSystem draws every component TTF from the trial generator, so its
// results depend entirely on the per-trial seeding — the property the
// FirstTrial offset must preserve bit for bit.
type sampledSystem struct {
	n     int
	critK int

	ttfs        []float64
	failedCount int
}

func (s *sampledSystem) NumComponents() int { return s.n }

func (s *sampledSystem) BeginTrial(rng *rand.Rand) error {
	s.failedCount = 0
	if s.ttfs == nil {
		s.ttfs = make([]float64, s.n)
	}
	for i := range s.ttfs {
		s.ttfs[i] = rng.ExpFloat64() * 1e7
	}
	return nil
}

func (s *sampledSystem) BaseTTF(i int) float64   { return s.ttfs[i] }
func (s *sampledSystem) AgingRate(i int) float64 { return 1 + float64(s.failedCount) }
func (s *sampledSystem) Fail(i int) error        { s.failedCount++; return nil }
func (s *sampledSystem) Failed() (bool, error)   { return s.failedCount >= s.critK, nil }

// TestFirstTrialShardsBitIdentical pins the distributed-sharding contract:
// runs whose [FirstTrial, FirstTrial+Trials) ranges tile [0, N) reproduce,
// trial for trial, exactly the full-range run — including uneven shard
// sizes that break the batch-group alignment.
func TestFirstTrialShardsBitIdentical(t *testing.T) {
	const trials = 37
	opt := Options{Trials: trials, Seed: 99}
	full, err := Run(&sampledSystem{n: 8, critK: 3}, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, bounds := range [][]int{
		{0, trials},
		{0, 19, trials},
		{0, 7, 8, 23, trials}, // deliberately uneven, mid-batch-group cuts
	} {
		for s := 0; s+1 < len(bounds); s++ {
			start, end := bounds[s], bounds[s+1]
			shard, err := Run(&sampledSystem{n: 8, critK: 3}, Options{
				Trials: end - start, Seed: 99, FirstTrial: start,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < end-start; i++ {
				g := start + i
				if shard.TTF[i] != full.TTF[g] {
					t.Fatalf("shard [%d,%d) trial %d: TTF %g != full %g",
						start, end, g, shard.TTF[i], full.TTF[g])
				}
				if len(shard.Events[i]) != len(full.Events[g]) {
					t.Fatalf("shard [%d,%d) trial %d: %d events != full %d",
						start, end, g, len(shard.Events[i]), len(full.Events[g]))
				}
				for j := range shard.Events[i] {
					if shard.Events[i][j] != full.Events[g][j] ||
						shard.EventComps[i][j] != full.EventComps[g][j] {
						t.Fatalf("shard [%d,%d) trial %d event %d diverges", start, end, g, j)
					}
				}
			}
		}
	}
}

// TestFirstTrialParallelMatchesSerial checks the offset under the parallel
// dispatcher at several worker counts.
func TestFirstTrialParallelMatchesSerial(t *testing.T) {
	opt := Options{Trials: 21, Seed: 7, FirstTrial: 13}
	serial, err := Run(&sampledSystem{n: 6, critK: 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		popt := opt
		popt.Workers = w
		par, err := RunParallel(func() (System, error) {
			return &sampledSystem{n: 6, critK: 2}, nil
		}, popt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.TTF {
			if par.TTF[i] != serial.TTF[i] {
				t.Fatalf("workers=%d trial %d: %g != %g", w, i, par.TTF[i], serial.TTF[i])
			}
		}
	}
}

func TestValidateRejectsNegativeFirstTrial(t *testing.T) {
	err := Options{Trials: 1, FirstTrial: -1}.Validate()
	if err == nil {
		t.Fatal("negative FirstTrial validated")
	}
}
