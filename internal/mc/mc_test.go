package mc

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// fixedSystem fails its components at predetermined times, with optional
// acceleration after each failure and a criterion of k failures.
type fixedSystem struct {
	ttfs      []float64
	critK     int
	accelMult float64 // aging-rate multiplier applied to survivors per failure

	failedCount int
	rates       []float64
	failErr     error
}

func (s *fixedSystem) NumComponents() int { return len(s.ttfs) }

func (s *fixedSystem) BeginTrial(rng *rand.Rand) error {
	s.failedCount = 0
	s.rates = make([]float64, len(s.ttfs))
	for i := range s.rates {
		s.rates[i] = 1
	}
	return nil
}

func (s *fixedSystem) BaseTTF(i int) float64   { return s.ttfs[i] }
func (s *fixedSystem) AgingRate(i int) float64 { return s.rates[i] }

func (s *fixedSystem) Fail(i int) error {
	if s.failErr != nil {
		return s.failErr
	}
	s.failedCount++
	if s.accelMult > 0 {
		for j := range s.rates {
			s.rates[j] *= s.accelMult
		}
	}
	return nil
}

func (s *fixedSystem) Failed() (bool, error) {
	return s.failedCount >= s.critK, nil
}

func TestRunOrdersFailuresByTTF(t *testing.T) {
	sys := &fixedSystem{ttfs: []float64{30, 10, 20}, critK: 3}
	res, err := Run(sys, Options{Trials: 1, Seed: 1, RunToCompletion: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30}
	if len(res.Events[0]) != 3 {
		t.Fatalf("events = %v", res.Events[0])
	}
	for i, w := range want {
		if math.Abs(res.Events[0][i]-w) > 1e-12 {
			t.Errorf("event %d at %g, want %g", i, res.Events[0][i], w)
		}
	}
	if res.TTF[0] != 30 {
		t.Errorf("system TTF = %g, want 30 (criterion: all 3)", res.TTF[0])
	}
}

func TestRunStopsAtCriterion(t *testing.T) {
	sys := &fixedSystem{ttfs: []float64{30, 10, 20}, critK: 2}
	res, err := Run(sys, Options{Trials: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TTF[0] != 20 {
		t.Errorf("system TTF = %g, want 20 (second failure)", res.TTF[0])
	}
	if len(res.Events[0]) != 2 {
		t.Errorf("recorded %d events without RunToCompletion, want 2", len(res.Events[0]))
	}
}

func TestRunToCompletionRecordsAllEvents(t *testing.T) {
	sys := &fixedSystem{ttfs: []float64{30, 10, 20}, critK: 1}
	res, err := Run(sys, Options{Trials: 1, Seed: 1, RunToCompletion: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TTF[0] != 10 {
		t.Errorf("system TTF = %g, want 10", res.TTF[0])
	}
	if len(res.Events[0]) != 3 {
		t.Errorf("events = %v, want all 3", res.Events[0])
	}
}

func TestAccelerationShortensLaterFailures(t *testing.T) {
	// Two components with TTF 10 and 20. After the first failure survivors
	// age at 2×: the second fails at t = 10 + (20−10)/2 = 15.
	sys := &fixedSystem{ttfs: []float64{10, 20}, critK: 2, accelMult: 2}
	res, err := Run(sys, Options{Trials: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TTF[0]-15) > 1e-12 {
		t.Errorf("accelerated second failure at %g, want 15", res.TTF[0])
	}
}

func TestZeroTTFFailsImmediately(t *testing.T) {
	sys := &fixedSystem{ttfs: []float64{0, 5}, critK: 1}
	res, err := Run(sys, Options{Trials: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TTF[0] != 0 {
		t.Errorf("TTF = %g, want 0", res.TTF[0])
	}
}

func TestInfiniteTTFNeverFails(t *testing.T) {
	sys := &fixedSystem{ttfs: []float64{math.Inf(1), math.Inf(1)}, critK: 1}
	res, err := Run(sys, Options{Trials: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ttf := range res.TTF {
		if !math.IsInf(ttf, 1) {
			t.Errorf("TTF = %g, want +Inf", ttf)
		}
	}
	if got := res.FiniteTTF(); len(got) != 0 {
		t.Errorf("FiniteTTF = %v, want empty", got)
	}
}

func TestMixedInfiniteStopsEarly(t *testing.T) {
	sys := &fixedSystem{ttfs: []float64{5, math.Inf(1)}, critK: 2}
	res, err := Run(sys, Options{Trials: 1, Seed: 1, RunToCompletion: true})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.TTF[0], 1) {
		t.Errorf("TTF = %g, want +Inf (second component immortal)", res.TTF[0])
	}
	if len(res.Events[0]) != 1 {
		t.Errorf("events = %v, want exactly the one mortal failure", res.Events[0])
	}
}

func TestKthFailureTimes(t *testing.T) {
	sys := &fixedSystem{ttfs: []float64{30, 10, 20}, critK: 1}
	res, err := Run(sys, Options{Trials: 3, Seed: 9, RunToCompletion: true})
	if err != nil {
		t.Fatal(err)
	}
	second := res.KthFailureTimes(2)
	if len(second) != 3 {
		t.Fatalf("KthFailureTimes(2) len = %d", len(second))
	}
	for _, v := range second {
		if v != 20 {
			t.Errorf("2nd failure at %g, want 20", v)
		}
	}
	if got := res.KthFailureTimes(4); len(got) != 0 {
		t.Errorf("KthFailureTimes(4) = %v, want empty", got)
	}
	if got := res.KthFailureTimes(0); len(got) != 0 {
		t.Errorf("KthFailureTimes(0) = %v, want empty", got)
	}
}

func TestRunValidation(t *testing.T) {
	sys := &fixedSystem{ttfs: []float64{1}, critK: 1}
	if _, err := Run(sys, Options{Trials: 0}); err == nil {
		t.Error("accepted zero trials")
	}
	if _, err := RunParallel(func() (System, error) { return sys, nil }, Options{Trials: 0}); err == nil {
		t.Error("parallel accepted zero trials")
	}
}

func TestFailErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	sys := &fixedSystem{ttfs: []float64{1}, critK: 1, failErr: boom}
	if _, err := Run(sys, Options{Trials: 1}); !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

// randomSystem samples TTFs to exercise the stochastic path.
type randomSystem struct {
	n     int
	critK int
	ttfs  []float64
}

func (s *randomSystem) NumComponents() int { return s.n }
func (s *randomSystem) BeginTrial(rng *rand.Rand) error {
	s.ttfs = make([]float64, s.n)
	for i := range s.ttfs {
		s.ttfs[i] = math.Exp(rng.NormFloat64())
	}
	return nil
}
func (s *randomSystem) BaseTTF(i int) float64   { return s.ttfs[i] }
func (s *randomSystem) AgingRate(i int) float64 { return 1 }
func (s *randomSystem) Fail(i int) error        { return nil }
func (s *randomSystem) Failed() (bool, error) {
	count := 0
	for _, t := range s.ttfs {
		_ = t
		count++
	}
	return true, nil // weakest link
}

func TestParallelMatchesSerial(t *testing.T) {
	opt := Options{Trials: 64, Seed: 123, RunToCompletion: true}
	serial, err := Run(&randomSystem{n: 8, critK: 1}, opt)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunParallel(func() (System, error) {
		return &randomSystem{n: 8, critK: 1}, nil
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.TTF {
		if serial.TTF[i] != parallel.TTF[i] {
			t.Fatalf("trial %d: serial %g != parallel %g", i, serial.TTF[i], parallel.TTF[i])
		}
		if len(serial.Events[i]) != len(parallel.Events[i]) {
			t.Fatalf("trial %d: event count differs", i)
		}
	}
}

func TestParallelFactoryErrorPropagates(t *testing.T) {
	boom := errors.New("factory boom")
	_, err := RunParallel(func() (System, error) { return nil, boom }, Options{Trials: 4, Seed: 1})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want factory boom", err)
	}
}

func TestWeakestLinkDistribution(t *testing.T) {
	// With criterion = first failure, the system TTF is the minimum of the
	// component TTFs; statistically its median must sit well below the
	// component median exp(0)=1 for n=8: P(min > m) = (1-Φ)^8 = 0.5 →
	// median at Φ⁻¹(1−0.5^{1/8}) ≈ Φ⁻¹(0.083) ≈ −1.38σ → exp(−1.38)≈0.25.
	sys := &randomSystem{n: 8, critK: 1}
	res, err := Run(sys, Options{Trials: 4000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	ttfs := append([]float64(nil), res.TTF...)
	sort.Float64s(ttfs)
	med := ttfs[len(ttfs)/2]
	if med < 0.18 || med > 0.34 {
		t.Errorf("weakest-link median = %g, want ≈ 0.25", med)
	}
}

func TestTrialSeedDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := trialSeed(42, i)
		if seen[s] {
			t.Fatalf("duplicate trial seed at %d", i)
		}
		seen[s] = true
	}
}

func TestEventCompsAndCriticality(t *testing.T) {
	sys := &fixedSystem{ttfs: []float64{30, 10, 20}, critK: 3}
	res, err := Run(sys, Options{Trials: 5, Seed: 2, RunToCompletion: true})
	if err != nil {
		t.Fatal(err)
	}
	for tr := range res.EventComps {
		want := []int{1, 2, 0} // TTF order: 10 (idx 1), 20 (idx 2), 30 (idx 0)
		if len(res.EventComps[tr]) != 3 {
			t.Fatalf("trial %d: comps = %v", tr, res.EventComps[tr])
		}
		for i, w := range want {
			if res.EventComps[tr][i] != w {
				t.Fatalf("trial %d: comps = %v, want %v", tr, res.EventComps[tr], want)
			}
		}
	}
	first := res.FirstFailureCounts(3)
	if first[1] != 5 || first[0] != 0 || first[2] != 0 {
		t.Errorf("FirstFailureCounts = %v", first)
	}
	inv := res.FailureInvolvement(3)
	for i, c := range inv {
		if c != 5 {
			t.Errorf("involvement[%d] = %d, want 5", i, c)
		}
	}
}
