package mc

import (
	"math"
	"sync"
	"testing"
)

// preparerSystem wraps randomSystem with a TrialPreparer that records every
// group of seeds it is handed. It never touches the trial RNG, so its trial
// results are identical to the plain randomSystem's.
type preparerSystem struct {
	randomSystem

	mu     sync.Mutex
	groups [][]int64
}

func (s *preparerSystem) PrepareTrials(seeds []int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.groups = append(s.groups, append([]int64(nil), seeds...))
	return nil
}

func TestBatchGroupingAnnouncesEveryTrial(t *testing.T) {
	sys := &preparerSystem{randomSystem: randomSystem{n: 4, critK: 1}}
	opt := Options{Trials: 23, Seed: 99, BatchTrials: 5}
	if _, err := Run(sys, opt); err != nil {
		t.Fatal(err)
	}
	if len(sys.groups) != 5 {
		t.Fatalf("PrepareTrials called %d times, want 5 groups for 23 trials of 5", len(sys.groups))
	}
	trial := 0
	for gi, g := range sys.groups {
		want := 5
		if gi == 4 {
			want = 3
		}
		if len(g) != want {
			t.Fatalf("group %d has %d seeds, want %d", gi, len(g), want)
		}
		for _, sd := range g {
			if sd != trialSeed(opt.Seed, trial) {
				t.Fatalf("group %d announced seed %d for trial %d, want %d", gi, sd, trial, trialSeed(opt.Seed, trial))
			}
			trial++
		}
	}
	if trial != opt.Trials {
		t.Fatalf("groups announced %d trials, want %d", trial, opt.Trials)
	}
}

func TestBatchDisabledSkipsPreparer(t *testing.T) {
	sys := &preparerSystem{randomSystem: randomSystem{n: 4, critK: 1}}
	if _, err := Run(sys, Options{Trials: 8, Seed: 7, BatchTrials: -1}); err != nil {
		t.Fatal(err)
	}
	if len(sys.groups) != 0 {
		t.Fatalf("BatchTrials<0 must never call PrepareTrials, got %d calls", len(sys.groups))
	}
}

func TestBatchParallelMatchesSerial(t *testing.T) {
	// Group dispatch must not perturb results: serial ungrouped,
	// grouped-serial, and grouped-parallel runs of the same seeded system
	// agree bitwise for any worker count.
	base, err := Run(&randomSystem{n: 6, critK: 1}, Options{Trials: 37, Seed: 5, RunToCompletion: true, BatchTrials: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3} {
		opt := Options{Trials: 37, Seed: 5, RunToCompletion: true, BatchTrials: 4, Workers: workers}
		var got *Result
		if workers == 0 {
			got, err = Run(&preparerSystem{randomSystem: randomSystem{n: 6, critK: 1}}, opt)
		} else {
			got, err = RunParallel(func() (System, error) {
				return &preparerSystem{randomSystem: randomSystem{n: 6, critK: 1}}, nil
			}, opt)
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.TTF {
			if base.TTF[i] != got.TTF[i] && !(math.IsInf(base.TTF[i], 1) && math.IsInf(got.TTF[i], 1)) {
				t.Fatalf("workers=%d trial %d: TTF %g != baseline %g", workers, i, got.TTF[i], base.TTF[i])
			}
		}
	}
}
