// Package mc implements Algorithm 1 of the DAC'17 paper: Monte-Carlo
// simulation of sequential EM failures in a redundant system. The same
// engine runs at both hierarchy levels — vias inside a via array, and via
// arrays inside a power grid — through the System interface.
//
// Each trial samples a base TTF for every component at its trial-start
// current, then repeatedly fails the component with the least remaining
// life. Failing a component redistributes current, which accelerates the
// survivors; the engine models this with damage accumulation: component i
// fails when its accumulated damage ∫ rate_i(t)·dt reaches its base TTF,
// where rate_i is the system-reported relative aging rate (1 at trial
// start, (j_new/j_0)² after redistribution, per the TTF ∝ 1/j² scaling of
// the nucleation model).
package mc

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"emvia/internal/trace"
)

// System is a redundant system analyzed by Algorithm 1. Implementations are
// stateful: BeginTrial resets electrical state, Fail mutates it.
type System interface {
	// NumComponents returns the number of failable components.
	NumComponents() int
	// BeginTrial resets the system and samples fresh component TTFs.
	BeginTrial(rng *rand.Rand) error
	// BaseTTF returns component i's sampled TTF in seconds under its
	// trial-start conditions. May be 0 (immediately feasible void) or +Inf
	// (no EM stress on this component).
	BaseTTF(i int) float64
	// AgingRate returns the current relative damage rate of surviving
	// component i: 1 at trial start, rising when the component inherits
	// current from failed neighbours.
	AgingRate(i int) float64
	// Fail marks component i failed and updates the electrical state
	// (resistance change, current redistribution).
	Fail(i int) error
	// Failed reports whether the system-level failure criterion is
	// breached in the current state.
	Failed() (bool, error)
}

// TrialPreparer is optionally implemented by Systems that can precompute
// state shared by a group of upcoming trials — e.g. batching the linear
// solves that seed each trial's first failure into one multi-RHS sweep.
// The engine calls PrepareTrials with the seeds of the next BatchTrials
// consecutive trials right before running them (in order, on the same
// system instance), so an implementation may key its precomputation to the
// seeds and serve it back during BeginTrial/Fail. Preparation must not
// change the observable trial results: it is an amortization hook, not a
// semantic one.
type TrialPreparer interface {
	// PrepareTrials precomputes for the trials seeded by seeds, replacing
	// any previously prepared state.
	PrepareTrials(seeds []int64) error
}

// defaultBatchTrials is the trial-group size when BatchTrials is 0.
const defaultBatchTrials = 16

// Engine names an analysis backend selected by the -engine flag. The
// Monte-Carlo engine only ever runs EngineMC and EngineBoth configurations;
// EngineSteady is the screening-only backend handled by the callers.
const (
	EngineMC     = "mc"
	EngineSteady = "steady"
	EngineBoth   = "both"
)

// ParseEngine validates an -engine flag value, mapping "" to EngineMC.
func ParseEngine(s string) (string, error) {
	switch s {
	case "", EngineMC:
		return EngineMC, nil
	case EngineSteady, EngineBoth:
		return s, nil
	}
	return "", fmt.Errorf("mc: unknown engine %q (want mc, steady or both)", s)
}

// CandidateMasker is optionally implemented by Systems that understand a
// candidate mask natively: SetCandidates is called once before any trial
// when Options.Candidates is set. A masking system must switch its TTF
// sampling to the per-component substream contract — one base draw from the
// trial generator, then an independent generator seeded by mixing the base
// with the component index for each candidate — so that shrinking the mask
// never perturbs the random stream of the components that remain. Systems
// without the interface still run correctly under a mask (the engine skips
// non-candidates itself) but must not be compared bit-for-bit across masks.
type CandidateMasker interface {
	// SetCandidates installs the mask (len == NumComponents, true =
	// failure candidate). The slice is shared and must not be mutated.
	SetCandidates(mask []bool) error
}

// Options configures a Monte-Carlo run.
type Options struct {
	// Trials is the number of Monte-Carlo trials (paper: N_trials = 500).
	Trials int
	// Seed makes the run reproducible; trial t derives its own generator
	// from Seed and t, so results do not depend on scheduling.
	Seed int64
	// FirstTrial offsets the run into a larger trial sequence: the run
	// executes trials [FirstTrial, FirstTrial+Trials) of the sequence seeded
	// by Seed, with local result index i holding global trial FirstTrial+i.
	// Because trial t always derives its generator from trialSeed(Seed, t)
	// regardless of which run executes it, a set of runs whose ranges tile
	// [0, N) reproduces, trial for trial, exactly the bits a single
	// [0, N) run would — the contract distributed shard execution merges on.
	// 0 (the default) is the whole-range run.
	FirstTrial int
	// RunToCompletion keeps failing components after the system criterion
	// fires, recording every failure event. Used by via-array
	// characterization, which extracts all n_F criteria from one run.
	RunToCompletion bool
	// Workers bounds the number of worker goroutines of RunParallel; zero
	// selects runtime.GOMAXPROCS(0), negative values are rejected by
	// Validate. Results are bit-identical for any value thanks to per-trial
	// seeding. Ignored by Run.
	Workers int
	// TraceLabel names this run in structured traces (see internal/trace);
	// empty selects "mc".
	TraceLabel string
	// BatchTrials sets the trial-group size: trials are dispatched to
	// workers in fixed consecutive groups of this size, and a System that
	// implements TrialPreparer is given each group's seeds ahead of running
	// it. 0 selects the default (16); negative disables batching entirely
	// (group size 1 and PrepareTrials never called — the legacy per-trial
	// path, which batching-aware Systems must reproduce exactly). Group
	// boundaries depend only on the trial index, never on Workers, so
	// results stay bit-identical for any worker count.
	BatchTrials int
	// Solver records the linear-solver backend the run's systems use
	// ("auto", "dense", "sparse" or "cg"; empty = unspecified). The engine
	// itself never interprets it — the backend is a property of the System
	// factory — but it is validated here and carried into the run-provenance
	// manifest, so results stay attributable to a backend when the default
	// changes.
	Solver string
	// Engine records the analysis backend that configured the run ("mc",
	// "both"; empty = unspecified). Like Solver it is provenance, not
	// behavior: the pruning itself rides on Candidates.
	Engine string
	// Candidates restricts each trial to a subset of failure candidates
	// (len == NumComponents, true = candidate): non-candidates are never
	// sampled, scanned or failed, the screening contract of the steady
	// engine. Nil — the default — is the legacy unscreened path, preserved
	// byte for byte. The slice is shared across workers read-only.
	Candidates []bool
}

// Validate rejects impossible option values: Trials must be ≥ 1 and Workers
// ≥ 0 (0 = one worker per CPU). Both fields are ints, so NaN or fractional
// counts are unrepresentable here by construction — flag/config parsing
// rejects them before an Options can be built. Run and RunParallel call
// Validate themselves.
func (o Options) Validate() error {
	if o.Trials < 1 {
		return fmt.Errorf("mc: Trials must be ≥ 1, got %d", o.Trials)
	}
	if o.Workers < 0 {
		return fmt.Errorf("mc: Workers must be ≥ 0 (0 = one per CPU), got %d", o.Workers)
	}
	if o.FirstTrial < 0 {
		return fmt.Errorf("mc: FirstTrial must be ≥ 0, got %d", o.FirstTrial)
	}
	switch o.Solver {
	case "", "default", "auto", "dense", "sparse", "cg":
	default:
		return fmt.Errorf("mc: unknown solver backend %q (want auto, dense, sparse or cg)", o.Solver)
	}
	switch o.Engine {
	case "", EngineMC, EngineBoth:
	default:
		return fmt.Errorf("mc: engine %q cannot drive a Monte-Carlo run (want mc or both)", o.Engine)
	}
	if o.Candidates != nil {
		any := false
		for _, c := range o.Candidates {
			if c {
				any = true
				break
			}
		}
		if !any {
			return fmt.Errorf("mc: Candidates masks out every component; nothing to simulate")
		}
	}
	return nil
}

// candidateIdx resolves the candidate mask against a system: it validates
// the length, installs the mask on CandidateMasker systems, and returns the
// ascending candidate index list the trial loop scans (nil for the legacy
// unmasked path).
func candidateIdx(sys System, opt Options) ([]int, error) {
	if opt.Candidates == nil {
		return nil, nil
	}
	n := sys.NumComponents()
	if len(opt.Candidates) != n {
		return nil, fmt.Errorf("mc: Candidates has %d entries for %d components", len(opt.Candidates), n)
	}
	if cm, ok := sys.(CandidateMasker); ok {
		if err := cm.SetCandidates(opt.Candidates); err != nil {
			return nil, fmt.Errorf("mc: installing candidate mask: %w", err)
		}
	}
	idx := make([]int, 0, n)
	for i, c := range opt.Candidates {
		if c {
			idx = append(idx, i)
		}
	}
	return idx, nil
}

// traceLabel returns the run name for structured traces.
func (o Options) traceLabel() string {
	if o.TraceLabel != "" {
		return o.TraceLabel
	}
	return "mc"
}

// groupSize resolves BatchTrials to the effective trial-group size.
func (o Options) groupSize() int {
	switch {
	case o.BatchTrials < 0:
		return 1
	case o.BatchTrials == 0:
		return defaultBatchTrials
	}
	return o.BatchTrials
}

// prepareGroup hands the seeds of local trials [g0, g1) to a preparer
// system (global indices shifted by FirstTrial). seeds is the caller's
// scratch buffer, returned grown.
func prepareGroup(p TrialPreparer, opt Options, g0, g1 int, seeds []int64) ([]int64, error) {
	seeds = seeds[:0]
	for t := g0; t < g1; t++ {
		seeds = append(seeds, trialSeed(opt.Seed, opt.FirstTrial+t))
	}
	if err := p.PrepareTrials(seeds); err != nil {
		return seeds, fmt.Errorf("mc: preparing trials %d..%d: %w", g0, g1-1, err)
	}
	return seeds, nil
}

// ComponentLabeler is optionally implemented by Systems that can name their
// components for trace output (e.g. "Plus-shaped(3,4)" for a via, or a grid
// array's position). Labels appear in trace fail events; they never feed
// back into the simulation.
type ComponentLabeler interface {
	// ComponentLabel returns a human-readable identity for component i.
	ComponentLabel(i int) string
}

// Result collects the per-trial outcomes.
type Result struct {
	// TTF is the per-trial system failure time in seconds (+Inf when the
	// criterion never fired).
	TTF []float64
	// Events[t] lists the component-failure times of trial t in
	// chronological order (all events when RunToCompletion, else the
	// events up to and including system failure).
	Events [][]float64
	// EventComps[t] lists the component index of each failure of trial t,
	// parallel to Events[t]. Used for criticality ranking: which
	// components actually precipitate system failure.
	EventComps [][]int
}

// FiniteTTF returns the finite system TTFs (dropping never-failed trials).
func (r *Result) FiniteTTF() []float64 {
	out := make([]float64, 0, len(r.TTF))
	for _, t := range r.TTF {
		if !math.IsInf(t, 1) {
			out = append(out, t)
		}
	}
	return out
}

// KthFailureTimes returns the time of the k-th component failure (1-based)
// in each trial that reached k failures. Requires RunToCompletion for
// complete data.
func (r *Result) KthFailureTimes(k int) []float64 {
	var out []float64
	for _, ev := range r.Events {
		if k >= 1 && k <= len(ev) {
			out = append(out, ev[k-1])
		}
	}
	return out
}

// FirstFailureCounts tallies, per component, how many trials it was the
// first to fail — the weakest-link criticality ranking a designer uses to
// decide which components to upsize.
func (r *Result) FirstFailureCounts(numComponents int) []int {
	counts := make([]int, numComponents)
	for _, comps := range r.EventComps {
		if len(comps) > 0 && comps[0] >= 0 && comps[0] < numComponents {
			counts[comps[0]]++
		}
	}
	return counts
}

// FailureInvolvement tallies, per component, how many trials it failed at
// any point before (or at) system failure.
func (r *Result) FailureInvolvement(numComponents int) []int {
	counts := make([]int, numComponents)
	for _, comps := range r.EventComps {
		for _, c := range comps {
			if c >= 0 && c < numComponents {
				counts[c]++
			}
		}
	}
	return counts
}

// MaskMisses returns every component that failed in some trial despite not
// being in mask — the screening soundness check of the steady engine: a
// non-empty return from an unscreened run means the mortal classification
// missed a component the Monte Carlo observed failing.
func (r *Result) MaskMisses(mask []bool) []int {
	var misses []int
	seen := make(map[int]bool)
	for _, comps := range r.EventComps {
		for _, c := range comps {
			if c >= 0 && c < len(mask) && !mask[c] && !seen[c] {
				seen[c] = true
				misses = append(misses, c)
			}
		}
	}
	return misses
}

// trialSeed decorrelates per-trial generators.
func trialSeed(seed int64, trial int) int64 {
	x := uint64(seed) + uint64(trial)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return int64(x)
}

// Run executes the Monte-Carlo loop serially on one system instance.
func Run(sys System, opt Options) (*Result, error) {
	return RunCtx(context.Background(), sys, opt)
}

// RunCtx is Run with cancellation: the context is checked between trials, so
// a deadline or cancel stops the loop within one trial's wall time. On
// cancellation the error wraps ctx.Err() (errors.Is-matchable against
// context.Canceled / context.DeadlineExceeded) and the partial results are
// discarded — callers needing progress accounting observe it through the
// trace ring or telemetry, which tick per completed trial either way.
func RunCtx(ctx context.Context, sys System, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		TTF:        make([]float64, opt.Trials),
		Events:     make([][]float64, opt.Trials),
		EventComps: make([][]int, opt.Trials),
	}
	// One generator and one scratch buffer set serve every trial: reseeding
	// with the per-trial seed reproduces exactly the stream a fresh
	// generator would, so results are unchanged while the loop stops
	// allocating.
	rng := rand.New(rand.NewSource(trialSeed(opt.Seed, 0)))
	var scratch trialScratch
	met := newRunMetrics()
	run := trace.Default().BeginRun(opt.traceLabel(), opt.Trials)
	defer run.End()
	labeler, _ := sys.(ComponentLabeler)
	idxs, err := candidateIdx(sys, opt)
	if err != nil {
		return nil, err
	}
	if idxs != nil {
		met.observeMask(sys.NumComponents(), len(idxs))
	}
	var preparer TrialPreparer
	if opt.BatchTrials >= 0 {
		preparer, _ = sys.(TrialPreparer)
	}
	batch := opt.groupSize()
	var seeds []int64
	t0 := met.runSeconds.Start()
	for g0 := 0; g0 < opt.Trials; g0 += batch {
		g1 := min(g0+batch, opt.Trials)
		if preparer != nil {
			var err error
			if seeds, err = prepareGroup(preparer, opt, g0, g1, seeds); err != nil {
				return nil, err
			}
		}
		for t := g0; t < g1; t++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("mc: canceled after %d of %d trials: %w", t, opt.Trials, err)
			}
			rng.Seed(trialSeed(opt.Seed, opt.FirstTrial+t))
			ttf, events, comps, err := runTrial(sys, rng, opt.RunToCompletion, idxs, &scratch, &met, run.Trial(t), labeler)
			if err != nil {
				return nil, fmt.Errorf("mc: trial %d: %w", t, err)
			}
			res.TTF[t] = ttf
			res.Events[t] = events
			res.EventComps[t] = comps
			met.reg.ProgressTick("mc", int64(t+1), int64(opt.Trials))
		}
	}
	met.runSeconds.ObserveSince(t0)
	return res, nil
}

// RunParallel executes trials across workers, each with its own System from
// the factory. Results are identical to Run thanks to per-trial seeding.
func RunParallel(newSys func() (System, error), opt Options) (*Result, error) {
	return RunParallelCtx(context.Background(), newSys, opt)
}

// RunParallelCtx is RunParallel with cancellation: every worker checks the
// context between trials, so a deadline or cancel drains the pool within one
// trial's wall time per worker. The returned error wraps ctx.Err() unless a
// trial failed first (the first failure of any kind wins).
func RunParallelCtx(ctx context.Context, newSys func() (System, error), opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batch := opt.groupSize()
	if groups := (opt.Trials + batch - 1) / batch; workers > groups {
		workers = groups
	}
	res := &Result{
		TTF:        make([]float64, opt.Trials),
		Events:     make([][]float64, opt.Trials),
		EventComps: make([][]int, opt.Trials),
	}
	met := newRunMetrics()
	run := trace.Default().BeginRun(opt.traceLabel(), opt.Trials)
	defer run.End()
	if opt.Candidates != nil {
		nc := 0
		for _, c := range opt.Candidates {
			if c {
				nc++
			}
		}
		met.observeMask(len(opt.Candidates), nc)
	}
	t0 := met.runSeconds.Start()
	// Trial dispatch is a lock-free atomic fetch-add — workers never contend
	// on a mutex in the hot loop. Errors are confined to a sync.Once (the
	// first one wins) plus a stop flag that drains the remaining workers.
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		done     atomic.Int64
		stop     atomic.Bool
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() { firstErr = err })
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys, err := newSys()
			if err != nil {
				fail(err)
				return
			}
			rng := rand.New(rand.NewSource(trialSeed(opt.Seed, 0)))
			var scratch trialScratch
			met := newRunMetrics() // per-worker handles; runSeconds tracked by the dispatcher
			labeler, _ := sys.(ComponentLabeler)
			idxs, err := candidateIdx(sys, opt)
			if err != nil {
				fail(err)
				return
			}
			var preparer TrialPreparer
			if opt.BatchTrials >= 0 {
				preparer, _ = sys.(TrialPreparer)
			}
			var seeds []int64
			// Workers claim whole trial groups: the group → trial mapping is a
			// pure function of the options, so a preparer system sees exactly
			// the groups a serial run would, whichever worker claims each.
			for !stop.Load() {
				g0 := (int(next.Add(1)) - 1) * batch
				if g0 >= opt.Trials {
					return
				}
				g1 := min(g0+batch, opt.Trials)
				if preparer != nil {
					var err error
					if seeds, err = prepareGroup(preparer, opt, g0, g1, seeds); err != nil {
						fail(err)
						return
					}
				}
				for t := g0; t < g1; t++ {
					if err := ctx.Err(); err != nil {
						fail(fmt.Errorf("mc: canceled at trial %d of %d: %w", t, opt.Trials, err))
						return
					}
					rng.Seed(trialSeed(opt.Seed, opt.FirstTrial+t))
					ttf, events, comps, err := runTrial(sys, rng, opt.RunToCompletion, idxs, &scratch, &met, run.Trial(t), labeler)
					if err != nil {
						fail(fmt.Errorf("mc: trial %d: %w", t, err))
						return
					}
					res.TTF[t] = ttf
					res.Events[t] = events
					res.EventComps[t] = comps
					if met.reg != nil {
						met.reg.ProgressTick("mc", done.Add(1), int64(opt.Trials))
					}
				}
			}
		}()
	}
	wg.Wait()
	met.runSeconds.ObserveSince(t0)
	// wg.Wait orders every once.Do before this read; no lock needed.
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// trialScratch holds the per-trial damage and liveness buffers a worker
// reuses across the trials it runs, keeping the scheduling loop
// allocation-free.
type trialScratch struct {
	damage []float64
	alive  []bool
}

func (s *trialScratch) reserve(n int) {
	if cap(s.damage) < n {
		s.damage = make([]float64, n)
		s.alive = make([]bool, n)
	}
	s.damage = s.damage[:n]
	s.alive = s.alive[:n]
}

// runTrial performs one sequential-failure trial. idxs is the ascending
// candidate index list of a screened run (nil = every component); only
// listed components are sampled, scanned and failed, which is what turns a
// mortal-subset mask into wall-clock savings on large systems. tt is the
// trial's trace recorder (the zero value when tracing is off) and lab the
// optional component namer; both are strictly observational.
func runTrial(sys System, rng *rand.Rand, toCompletion bool, idxs []int, scratch *trialScratch, met *runMetrics, tt trace.Trial, lab ComponentLabeler) (systemTTF float64, events []float64, comps []int, err error) {
	trial0 := met.trialSeconds.Start()
	if err := sys.BeginTrial(rng); err != nil {
		return 0, nil, nil, fmt.Errorf("BeginTrial: %w", err)
	}
	n := sys.NumComponents()
	nc := n
	if idxs != nil {
		nc = len(idxs)
	}
	tt.Begin(n)
	if tt.Enabled() {
		if idxs == nil {
			for i := 0; i < n; i++ {
				tt.Sample(i, sys.BaseTTF(i))
			}
		} else {
			for _, i := range idxs {
				tt.Sample(i, sys.BaseTTF(i))
			}
		}
	}
	scratch.reserve(n)
	damage, alive := scratch.damage, scratch.alive
	for i := range damage {
		damage[i] = 0
	}
	if idxs == nil {
		for i := range alive {
			alive[i] = true
		}
	} else {
		for i := range alive {
			alive[i] = false
		}
		for _, i := range idxs {
			alive[i] = true
		}
	}
	now := 0.0
	systemTTF = math.Inf(1)
	systemFailed := false

	for remaining := nc; remaining > 0; remaining-- {
		// Find the component with the least remaining life. The unmasked and
		// masked scans are spelled out separately to keep the legacy hot loop
		// exactly as it was and the masked one free of a full-range sweep.
		minDt := math.Inf(1)
		minIdx := -1
		if idxs == nil {
			for i := 0; i < n; i++ {
				if !alive[i] {
					continue
				}
				rate := sys.AgingRate(i)
				if rate < 0 || math.IsNaN(rate) {
					return 0, nil, nil, fmt.Errorf("component %d: invalid aging rate %g", i, rate)
				}
				left := sys.BaseTTF(i) - damage[i]
				if left < 0 {
					left = 0
				}
				var dt float64
				switch {
				case rate == 0:
					dt = math.Inf(1)
				default:
					dt = left / rate
				}
				if dt < minDt {
					minDt = dt
					minIdx = i
				}
			}
		} else {
			for _, i := range idxs {
				if !alive[i] {
					continue
				}
				rate := sys.AgingRate(i)
				if rate < 0 || math.IsNaN(rate) {
					return 0, nil, nil, fmt.Errorf("component %d: invalid aging rate %g", i, rate)
				}
				left := sys.BaseTTF(i) - damage[i]
				if left < 0 {
					left = 0
				}
				var dt float64
				switch {
				case rate == 0:
					dt = math.Inf(1)
				default:
					dt = left / rate
				}
				if dt < minDt {
					minDt = dt
					minIdx = i
				}
			}
		}
		if minIdx < 0 || math.IsInf(minDt, 1) {
			// No candidate can ever fail; the system survives forever.
			break
		}
		// Advance time and accumulate damage on survivors.
		now += minDt
		if idxs == nil {
			for i := 0; i < n; i++ {
				if alive[i] {
					damage[i] += minDt * sys.AgingRate(i)
				}
			}
		} else {
			for _, i := range idxs {
				if alive[i] {
					damage[i] += minDt * sys.AgingRate(i)
				}
			}
		}
		alive[minIdx] = false
		// The Fail call is the redistribution step: it mutates the electrical
		// state and re-solves, which dominates a trial's wall time.
		fail0 := met.failSeconds.Start()
		if err := sys.Fail(minIdx); err != nil {
			return 0, nil, nil, fmt.Errorf("Fail(%d): %w", minIdx, err)
		}
		met.failSeconds.ObserveSince(fail0)
		events = append(events, now)
		comps = append(comps, minIdx)
		if tt.Enabled() {
			label := ""
			if lab != nil {
				label = lab.ComponentLabel(minIdx)
			}
			tt.Fail(now, minIdx, label)
			// Summarize the redistribution the Fail call just performed:
			// max/mean aging rate over the survivors. This O(n) scan runs
			// only when tracing is on.
			maxRate, sum := 0.0, 0.0
			maxComp, survivors := -1, 0
			for i := 0; i < n; i++ {
				if !alive[i] {
					continue
				}
				r := sys.AgingRate(i)
				survivors++
				sum += r
				if r > maxRate {
					maxRate, maxComp = r, i
				}
			}
			if survivors > 0 {
				tt.Redistribute(now, maxRate, maxComp, sum/float64(survivors), survivors)
			}
		}

		if !systemFailed {
			failed, err := sys.Failed()
			if err != nil {
				return 0, nil, nil, fmt.Errorf("Failed check: %w", err)
			}
			if failed {
				systemFailed = true
				systemTTF = now
				tt.SpecViolation(now, len(events))
				if !toCompletion {
					break
				}
			}
		}
	}
	met.trials.Inc()
	met.failuresPerTrial.Observe(float64(len(events)))
	met.trialSeconds.ObserveSince(trial0)
	tt.End(systemTTF, len(events))
	return systemTTF, events, comps, nil
}
