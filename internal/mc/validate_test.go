package mc

import (
	"strings"
	"testing"
)

// TestOptionsValidate pins the option-validation contract directly.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opt     Options
		wantErr string
	}{
		{"zero trials", Options{Trials: 0}, "Trials"},
		{"negative trials", Options{Trials: -5}, "Trials"},
		{"negative workers", Options{Trials: 10, Workers: -1}, "Workers"},
		{"valid serial", Options{Trials: 1}, ""},
		{"valid auto workers", Options{Trials: 3, Workers: 0}, ""},
		{"valid explicit workers", Options{Trials: 3, Workers: 4}, ""},
	}
	for _, tc := range cases {
		err := tc.opt.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestRunRejectsInvalidOptions asserts both engines surface the validation
// error instead of hanging or panicking on impossible option values.
func TestRunRejectsInvalidOptions(t *testing.T) {
	bad := []Options{
		{Trials: 0, Seed: 1},
		{Trials: -3, Seed: 1},
		{Trials: 8, Workers: -2, Seed: 1},
	}
	for _, opt := range bad {
		if _, err := Run(&fixedSystem{ttfs: []float64{1}, critK: 1}, opt); err == nil {
			t.Errorf("Run(%+v): no error", opt)
		}
		_, err := RunParallel(func() (System, error) {
			return &fixedSystem{ttfs: []float64{1}, critK: 1}, nil
		}, opt)
		if err == nil {
			t.Errorf("RunParallel(%+v): no error", opt)
		}
	}
}
