package emdist_test

import (
	"fmt"

	"emvia/internal/emdist"
	"emvia/internal/phys"
)

// Equation (1) end to end: the inner vias of a 4×4 array see lower
// thermomechanical stress than the perimeter, which extends their
// nucleation-limited lifetime — the paper's "~2 years per inner via".
func ExampleParams_MedianTTF() {
	em := emdist.Default()
	perimeter := em.MedianTTF(235e6, 1e10) // corner-via stress
	inner := em.MedianTTF(222e6, 1e10)     // inner-via stress
	fmt.Printf("perimeter %.1f y, inner %.1f y, gain %.1f y\n",
		phys.SecondsToYears(perimeter), phys.SecondsToYears(inner),
		phys.SecondsToYears(inner-perimeter))
	// Output:
	// perimeter 7.3 y, inner 9.1 y, gain 1.8 y
}

// Equation (3)'s 1/j² scaling lets a single reference-current
// characterization serve every operating current.
func ExampleParams_NucleationTime() {
	em := emdist.Default()
	ref := em.NucleationTime(345e6, 230e6, 1e10)
	half := em.NucleationTime(345e6, 230e6, 0.5e10)
	fmt.Printf("half the current lives %.0fx longer\n", half/ref)
	// Output:
	// half the current lives 4x longer
}
