package emdist

import (
	"math"
	"math/rand"
	"testing"

	"emvia/internal/phys"
)

// qrand is a deterministic quasi-random parameter sweep (golden-ratio
// additive recurrence with per-dimension offsets) — the same low-discrepancy
// idiom as the stat property tests, giving even coverage of the physical
// parameter box from a handful of cases.
type qrand struct{ i int }

func (q *qrand) next(dim int, lo, hi float64) float64 {
	x := float64(q.i+1)*0.6180339887498949 + float64(dim)*0.7548776662466927
	x -= math.Floor(x)
	return lo + x*(hi-lo)
}

func (q *qrand) advance() { q.i++ }

// sweepParams perturbs every physical constant of the default set by up to
// ±30 % along a low-discrepancy direction, keeping the parameters valid while
// exploring a broad neighbourhood of the paper's operating point.
func sweepParams(q *qrand) Params {
	p := Default()
	p.D0 *= q.next(0, 0.7, 1.3)
	p.Ea *= q.next(1, 0.9, 1.1) // Arrhenius exponent: keep the sweep numerically sane
	p.Omega *= q.next(2, 0.7, 1.3)
	p.ZStar *= q.next(3, 0.7, 1.3)
	p.Rho *= q.next(4, 0.7, 1.3)
	p.Bulk *= q.next(5, 0.7, 1.3)
	p.Kappa *= q.next(6, 0.7, 1.3)
	p.GammaS *= q.next(7, 0.7, 1.3)
	p.ThetaC = q.next(8, 0.3, math.Pi-1e-9)
	p.RfMean *= q.next(9, 0.7, 1.3)
	p.RfStdFrac = q.next(10, 0.01, 0.2)
	p.DeffLogSigma = q.next(11, 0, 0.5)
	p.TempC = q.next(12, 60, 150)
	q.advance()
	return p
}

// TestPropertyNucleationZeroWhenStressExceedsCritical pins the central model
// discontinuity of equation (1): whenever σ_C ≤ σ_T a void is immediately
// feasible and t_n must be exactly 0, never merely small — across the whole
// parameter sweep.
func TestPropertyNucleationZeroWhenStressExceedsCritical(t *testing.T) {
	var q qrand
	for i := 0; i < 150; i++ {
		p := sweepParams(&q)
		sigmaT := q.next(20, 1e6, 500e6)
		j := math.Exp(q.next(21, math.Log(1e8), math.Log(1e11)))
		// σ_C at or below σ_T → exactly zero.
		for _, sigmaC := range []float64{sigmaT, sigmaT * 0.999, sigmaT / 2, 0} {
			if tn := p.NucleationTime(sigmaC, sigmaT, j); tn != 0 {
				t.Fatalf("case %d: t_n(σ_C=%g ≤ σ_T=%g) = %g, want exactly 0", i, sigmaC, sigmaT, tn)
			}
		}
		// σ_C above σ_T → strictly positive and finite.
		tn := p.NucleationTime(sigmaT*1.001, sigmaT, j)
		if !(tn > 0) || math.IsInf(tn, 1) || math.IsNaN(tn) {
			t.Fatalf("case %d: t_n(σ_C>σ_T) = %g, want positive finite", i, tn)
		}
		// No driving force → +Inf regardless of stress gap.
		if tn := p.NucleationTime(2*sigmaT, sigmaT, 0); !math.IsInf(tn, 1) {
			t.Fatalf("case %d: t_n(j=0) = %g, want +Inf", i, tn)
		}
	}
}

// TestPropertyNucleationScaling pins the two exact scaling laws of equations
// (1)–(3): t_n ∝ (σ_C−σ_T)² and t_n ∝ 1/j², for every swept parameter set.
func TestPropertyNucleationScaling(t *testing.T) {
	var q qrand
	for i := 0; i < 150; i++ {
		p := sweepParams(&q)
		sigmaT := q.next(20, 1e6, 400e6)
		gap := q.next(21, 1e6, 300e6)
		j := math.Exp(q.next(22, math.Log(1e8), math.Log(1e11)))
		base := p.NucleationTime(sigmaT+gap, sigmaT, j)

		// Doubling the stress gap quadruples t_n.
		quad := p.NucleationTime(sigmaT+2*gap, sigmaT, j)
		if d := math.Abs(quad/base - 4); d > 1e-9 {
			t.Errorf("case %d: doubling gap scaled t_n by %g, want 4", i, quad/base)
		}
		// t_n · j² is invariant in j.
		for _, f := range []float64{0.1, 3, 17} {
			other := p.NucleationTime(sigmaT+gap, sigmaT, f*j)
			if d := math.Abs(other*f*f/base - 1); d > 1e-9 {
				t.Errorf("case %d: t_n·j² not invariant at j×%g (ratio %g)", i, f, other*f*f/base)
			}
		}
	}
}

// TestPropertySigmaCDistFlawRelation checks the critical-stress distribution
// against equation (4)'s exact change of variables: σ_C·R_f = 2γs·sinθ_C at
// the median, and σ_C inherits the flaw radius's log-sigma unchanged.
func TestPropertySigmaCDistFlawRelation(t *testing.T) {
	var q qrand
	for i := 0; i < 150; i++ {
		p := sweepParams(&q)
		sc, err := p.SigmaCDist()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		rfMedian := math.Exp(math.Log(p.RfMean) - sc.Sigma*sc.Sigma/2) // lognormal median from moments
		want := 2 * p.GammaS * math.Sin(p.ThetaC) / rfMedian
		if d := math.Abs(sc.Median()/want - 1); d > 1e-9 {
			t.Errorf("case %d: σ_C median %g, want 2γs·sinθ/Rf_med = %g", i, sc.Median(), want)
		}
		if sc.Sigma <= 0 {
			t.Errorf("case %d: σ_C Sigma = %g, want > 0", i, sc.Sigma)
		}
	}
}

// TestPropertySampleTTFWellFormed sweeps parameters and seeds: sampled TTFs
// must always be ≥ 0 and never NaN, the contract the Monte-Carlo engine
// relies on (0 and +Inf are both legal outcomes).
func TestPropertySampleTTFWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var q qrand
	for i := 0; i < 60; i++ {
		p := sweepParams(&q)
		sigmaT := q.next(20, 0, 600e6) // deliberately allowed above typical σ_C medians
		j := math.Exp(q.next(21, math.Log(1e8), math.Log(1e11)))
		for k := 0; k < 50; k++ {
			ttf := p.SampleTTF(rng, sigmaT, j)
			if ttf < 0 || math.IsNaN(ttf) {
				t.Fatalf("case %d sample %d: TTF = %g (σ_T=%g j=%g)", i, k, ttf, sigmaT, j)
			}
		}
	}
}

// TestPropertyCalibrateAndJMaxInverses checks the two inversions around
// MedianTTF: CalibrateD0 must hit the target median exactly, and
// JMaxForLifetime must return the current density whose median TTF is the
// requested lifetime.
func TestPropertyCalibrateAndJMaxInverses(t *testing.T) {
	var q qrand
	for i := 0; i < 100; i++ {
		p := sweepParams(&q)
		sigmaT := q.next(20, 50e6, 200e6)
		j := math.Exp(q.next(21, math.Log(5e9), math.Log(5e10)))
		years := q.next(22, 0.5, 30)

		if p.MedianTTF(sigmaT, j) == 0 {
			// σ_T at or above the median critical stress: the documented
			// guard behaviour is a no-op calibration and a zero jmax.
			if cal := p.CalibrateD0(sigmaT, j, years); cal != p {
				t.Errorf("case %d: CalibrateD0 changed params despite zero median TTF", i)
			}
			if jm := p.JMaxForLifetime(sigmaT, phys.YearsToSeconds(years)); jm != 0 {
				t.Errorf("case %d: jmax = %g with zero median TTF, want 0", i, jm)
			}
			continue
		}

		cal := p.CalibrateD0(sigmaT, j, years)
		if got := phys.SecondsToYears(cal.MedianTTF(sigmaT, j)); math.Abs(got/years-1) > 1e-9 {
			t.Errorf("case %d: calibrated median %g years, want %g", i, got, years)
		}

		target := phys.YearsToSeconds(years)
		jmax := cal.JMaxForLifetime(sigmaT, target)
		if jmax <= 0 || math.IsInf(jmax, 1) {
			t.Fatalf("case %d: jmax = %g for a finite positive target", i, jmax)
		}
		if got := cal.MedianTTF(sigmaT, jmax); math.Abs(got/target-1) > 1e-9 {
			t.Errorf("case %d: MedianTTF at jmax = %g s, want %g s", i, got, target)
		}
	}
}

// TestPropertyTempScaleIdentity checks TTFTempScale's fixed point (unit
// factor at the reference temperature, to round-off) and its pure-Arrhenius
// limit: at σ_T = 0 the linear stress rescaling is inert, so a hotter die
// must strictly shorten life through the diffusivity alone.
func TestPropertyTempScaleIdentity(t *testing.T) {
	var q qrand
	for i := 0; i < 100; i++ {
		p := sweepParams(&q)
		sigmaT := q.next(20, 50e6, 250e6)
		j := math.Exp(q.next(21, math.Log(1e9), math.Log(5e10)))
		tRef := p.TempC
		if s := p.TTFTempScale(sigmaT, tRef, tRef, 400, j); math.Abs(s-1) > 1e-12 {
			t.Errorf("case %d: TTFTempScale at the reference temperature = %g, want 1", i, s)
		}
		// σ_T = 0 removes the stress rescaling: the factor reduces to the
		// explicit temperature dependence t_n ∝ T/D_eff(T) — Arrhenius
		// diffusivity against the linear kB·T in C_tn — strictly below 1
		// for a hotter die because the exponential wins.
		s := p.TTFTempScale(0, tRef, tRef+10, 400, j)
		if !(s > 0) || math.IsInf(s, 1) || math.IsNaN(s) {
			t.Fatalf("case %d: TTFTempScale(+10°C) = %g, want positive finite", i, s)
		}
		if s >= 1 {
			t.Errorf("case %d: +10°C scale factor %g at σ_T=0, want < 1 (hotter ages faster)", i, s)
		}
		hot := p.WithTemp(tRef + 10)
		want := (hot.TempK() / p.TempK()) * p.Deff() / hot.Deff()
		if d := math.Abs(s/want - 1); d > 1e-9 {
			t.Errorf("case %d: σ_T=0 scale factor %g, want diffusivity ratio %g", i, s, want)
		}
	}
}
