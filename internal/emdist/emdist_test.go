package emdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emvia/internal/phys"
)

func TestDefaultIsValidAndCalibrated(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	got := phys.SecondsToYears(p.MedianTTF(CalibrationSigmaT, CalibrationJ))
	if math.Abs(got-CalibrationYears)/CalibrationYears > 1e-9 {
		t.Errorf("calibrated median TTF = %g years, want %g", got, CalibrationYears)
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	p := Default()
	p.D0 = 0
	if err := p.Validate(); err == nil {
		t.Error("accepted zero D0")
	}
	p = Default()
	p.ThetaC = -1
	if err := p.Validate(); err == nil {
		t.Error("accepted negative ThetaC")
	}
	p = Default()
	p.DeffLogSigma = -0.1
	if err := p.Validate(); err == nil {
		t.Error("accepted negative DeffLogSigma")
	}
	p = Default()
	p.RfMean = math.NaN()
	if err := p.Validate(); err == nil {
		t.Error("accepted NaN RfMean")
	}
}

func TestSigmaCDistMatchesPaper(t *testing.T) {
	p := Default()
	sc, err := p.SigmaCDist()
	if err != nil {
		t.Fatal(err)
	}
	// σ_C = 2γs/Rf with γs=1.725, Rf=10nm → median ≈ 345 MPa.
	med := sc.Median()
	if math.Abs(med-345e6)/345e6 > 0.01 {
		t.Errorf("σ_C median = %g MPa, want ≈ 345", med/1e6)
	}
	// Paper §2.2: σ_C "can vary by as much as 100 MPa". Check the ±3σ
	// spread is of order 100 MPa.
	spread := sc.Quantile(0.9987) - sc.Quantile(0.0013)
	if spread < 50e6 || spread > 200e6 {
		t.Errorf("σ_C 6σ spread = %g MPa, want ~100", spread/1e6)
	}
}

func TestNucleationTimeLimits(t *testing.T) {
	p := Default()
	if got := p.NucleationTime(200e6, 300e6, 1e10); got != 0 {
		t.Errorf("σ_C < σ_T: TTF = %g, want 0", got)
	}
	if got := p.NucleationTime(300e6, 300e6, 1e10); got != 0 {
		t.Errorf("σ_C = σ_T: TTF = %g, want 0", got)
	}
	if got := p.NucleationTime(300e6, 200e6, 0); !math.IsInf(got, 1) {
		t.Errorf("j = 0: TTF = %g, want +Inf", got)
	}
	if got := p.NucleationTime(300e6, 200e6, 1e10); got <= 0 {
		t.Errorf("normal conditions: TTF = %g, want > 0", got)
	}
}

func TestTTFScalesInverseSquareCurrent(t *testing.T) {
	// Equation (3): C_tn ∝ 1/j², so TTF(2j) = TTF(j)/4 — the scaling the
	// paper uses to characterize at a reference current only.
	p := Default()
	t1 := p.NucleationTime(345e6, 230e6, 1e10)
	t2 := p.NucleationTime(345e6, 230e6, 2e10)
	if math.Abs(t1/t2-4) > 1e-9 {
		t.Errorf("TTF ratio for 2× current = %g, want 4", t1/t2)
	}
}

func TestTTFQuadraticInEffectiveStress(t *testing.T) {
	p := Default()
	t1 := p.NucleationTime(345e6, 245e6, 1e10) // Δ = 100 MPa
	t2 := p.NucleationTime(345e6, 295e6, 1e10) // Δ = 50 MPa
	if math.Abs(t1/t2-4) > 1e-9 {
		t.Errorf("TTF ratio for 2× effective stress = %g, want 4", t1/t2)
	}
}

func TestLowerSigmaTExtendsLifetime(t *testing.T) {
	// The paper's headline mechanism: inner vias with lower σ_T live longer.
	p := Default()
	inner := p.MedianTTF(215e6, 1e10)
	outer := p.MedianTTF(240e6, 1e10)
	if inner <= outer {
		t.Errorf("lower σ_T gives TTF %g ≤ higher σ_T TTF %g", inner, outer)
	}
	// The paper quotes ~2 years improvement for inner vias of a 4×4 array;
	// with our calibration the gap should be of that order (years, not days
	// or centuries).
	gap := phys.SecondsToYears(inner - outer)
	if gap < 0.3 || gap > 15 {
		t.Errorf("inner-via lifetime gain = %.2f years, want order of years", gap)
	}
}

func TestDeffArrhenius(t *testing.T) {
	p := Default()
	d105 := p.Deff()
	p2 := p
	p2.TempC = 300 // accelerated-test temperature
	d300 := p2.Deff()
	if d300 <= d105 {
		t.Errorf("diffusivity not increasing with temperature: %g vs %g", d300, d105)
	}
	// Arrhenius consistency: ln ratio = Ea/kB·(1/T1 − 1/T2).
	want := p.Ea / phys.Boltzmann * (1/p.TempK() - 1/p2.TempK())
	if got := math.Log(d300 / d105); math.Abs(got-want) > 1e-9 {
		t.Errorf("Arrhenius ratio ln = %g, want %g", got, want)
	}
}

func TestSampleTTFDistribution(t *testing.T) {
	p := Default()
	rng := rand.New(rand.NewSource(42))
	n := 20000
	var samples []float64
	for i := 0; i < n; i++ {
		v := p.SampleTTF(rng, 230e6, 1e10)
		if v > 0 && !math.IsInf(v, 1) {
			samples = append(samples, v)
		}
	}
	if len(samples) < n*9/10 {
		t.Fatalf("only %d/%d finite positive samples", len(samples), n)
	}
	// Median of samples should sit near MedianTTF (diffusivity noise is
	// symmetric in log space, σ_C noise nearly so).
	med := phys.SecondsToYears(p.MedianTTF(230e6, 1e10))
	sorted := append([]float64(nil), samples...)
	sortFloats(sorted)
	gotMed := phys.SecondsToYears(sorted[len(sorted)/2])
	if math.Abs(gotMed-med)/med > 0.1 {
		t.Errorf("sample median = %.2f years, analytic median = %.2f", gotMed, med)
	}
}

func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestFitTTFIsApproxLogNormal(t *testing.T) {
	// The paper argues (via Wilkinson) that TTF is well approximated by a
	// lognormal; validate with a KS test against the fitted lognormal.
	p := Default()
	rng := rand.New(rand.NewSource(7))
	fit, err := p.FitTTF(rng, 20000, 230e6, 1e10)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = p.SampleTTF(rng, 230e6, 1e10)
	}
	ecdfKS(t, samples, fit.CDF, 0.05)
}

func ecdfKS(t *testing.T, samples []float64, cdf func(float64) float64, tol float64) {
	t.Helper()
	var pos []float64
	for _, s := range samples {
		if s > 0 && !math.IsInf(s, 1) {
			pos = append(pos, s)
		}
	}
	n := float64(len(pos))
	sortFloats(pos)
	d := 0.0
	for i, x := range pos {
		f := cdf(x)
		if v := math.Abs(f - float64(i)/n); v > d {
			d = v
		}
		if v := math.Abs(float64(i+1)/n - f); v > d {
			d = v
		}
	}
	if d > tol {
		t.Errorf("KS distance to fitted lognormal = %g, want < %g", d, tol)
	}
}

func TestFitTTFErrors(t *testing.T) {
	p := Default()
	rng := rand.New(rand.NewSource(1))
	if _, err := p.FitTTF(rng, 1, 230e6, 1e10); err == nil {
		t.Error("accepted n=1")
	}
	// σ_T far above any achievable σ_C: immediate failure everywhere.
	if _, err := p.FitTTF(rng, 100, 2e9, 1e10); err == nil {
		t.Error("accepted conditions with certain immediate failure")
	}
}

func TestCalibrateD0Property(t *testing.T) {
	// Property: calibration hits any positive target for any sane stress.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sigmaT := 150e6 + rng.Float64()*140e6 // below σ_C median
		target := 0.5 + rng.Float64()*30
		p := Default().CalibrateD0(sigmaT, 1e10, target)
		got := phys.SecondsToYears(p.MedianTTF(sigmaT, 1e10))
		return math.Abs(got-target)/target < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCalibrateD0DegenerateNoop(t *testing.T) {
	p := Default()
	// σ_T above σ_C median → zero median TTF → calibration must not change D0.
	q := p.CalibrateD0(500e6, 1e10, 10)
	if q.D0 != p.D0 {
		t.Error("degenerate calibration changed D0")
	}
	q = p.CalibrateD0(230e6, 1e10, 0)
	if q.D0 != p.D0 {
		t.Error("zero-target calibration changed D0")
	}
}

func TestSigmaTAtTemp(t *testing.T) {
	// Characterized: 230 MPa at 105 °C with stress-free 250 °C.
	ref, tRef, tsf := 230e6, 105.0, 250.0
	if got := SigmaTAtTemp(ref, tRef, tRef, tsf); got != ref {
		t.Errorf("identity scaling = %g", got)
	}
	if got := SigmaTAtTemp(ref, tRef, tsf, tsf); got != 0 {
		t.Errorf("stress-free point = %g, want 0", got)
	}
	// At 300 °C the residual stress flips compressive — the §1 blind spot.
	got := SigmaTAtTemp(ref, tRef, 300, tsf)
	if got >= 0 {
		t.Errorf("stress at 300 °C = %g, want compressive", got)
	}
	want := ref * (300 - tsf) / (tRef - tsf)
	if math.Abs(got-want) > 1 {
		t.Errorf("scaling = %g, want %g", got, want)
	}
	if got := SigmaTAtTemp(ref, tsf, 300, tsf); got != 0 {
		t.Errorf("degenerate reference = %g, want 0", got)
	}
}

func TestWithTemp(t *testing.T) {
	p := Default()
	hot := p.WithTemp(300)
	if hot.TempC != 300 || p.TempC != 105 {
		t.Errorf("WithTemp mutated receiver or failed: %g / %g", hot.TempC, p.TempC)
	}
	if hot.Deff() <= p.Deff() {
		t.Error("hot diffusivity not larger")
	}
}

func TestGrowthPhaseSlitVsSpanning(t *testing.T) {
	// Paper §2.1: for Cu DD slit voids the growth stage is rapid and TTF is
	// nucleation-dominated; for Al-era spanning voids growth dominates.
	p := Default()
	j := 1e10
	tn := p.MedianTTF(230e6, j)
	slit := p.GrowthTime(j, 3*phys.Nanometre)       // slit under the liner
	spanning := p.GrowthTime(j, 250*phys.Nanometre) // void spanning the via
	if slit >= 0.2*tn {
		t.Errorf("slit growth %g not ≪ nucleation %g", slit, tn)
	}
	if spanning <= slit {
		t.Error("spanning-void growth not slower than slit growth")
	}
	// Growth scales linearly with the critical size.
	ratio := spanning / slit
	if math.Abs(ratio-250.0/3) > 1e-6*ratio {
		t.Errorf("growth not linear in size: ratio %g", ratio)
	}
	if got := p.GrowthTime(j, 0); got != 0 {
		t.Errorf("zero-size growth = %g", got)
	}
	if got := p.GrowthTime(0, 1e-9); !math.IsInf(got, 1) {
		t.Errorf("zero-current growth = %g, want +Inf", got)
	}
}

func TestDriftVelocityScalesWithCurrent(t *testing.T) {
	p := Default()
	v1, v2 := p.DriftVelocity(1e10), p.DriftVelocity(2e10)
	if math.Abs(v2/v1-2) > 1e-12 {
		t.Errorf("drift velocity not linear in j: %g vs %g", v1, v2)
	}
	if v1 <= 0 {
		t.Errorf("drift velocity = %g", v1)
	}
}

func TestTTFWithGrowthAdds(t *testing.T) {
	p := Default()
	tn := p.NucleationTime(345e6, 230e6, 1e10)
	tg := p.GrowthTime(1e10, 100e-9)
	got := p.TTFWithGrowth(345e6, 230e6, 1e10, 100e-9)
	if math.Abs(got-(tn+tg)) > 1e-6*(tn+tg) {
		t.Errorf("TTFWithGrowth = %g, want %g", got, tn+tg)
	}
	// With σ_C < σ_T nucleation is instant and only growth remains.
	if got := p.TTFWithGrowth(200e6, 230e6, 1e10, 100e-9); math.Abs(got-tg) > 1e-9*tg {
		t.Errorf("instant-nucleation TTF = %g, want growth-only %g", got, tg)
	}
}

func TestJMaxForLifetime(t *testing.T) {
	p := Default()
	target := phys.YearsToSeconds(10)
	// Round trip: at j = JMax, the median TTF equals the target.
	j := p.JMaxForLifetime(230e6, target)
	if j <= 0 || math.IsInf(j, 1) {
		t.Fatalf("JMax = %g", j)
	}
	if got := p.MedianTTF(230e6, j); math.Abs(got-target)/target > 1e-9 {
		t.Errorf("TTF at JMax = %g years, want 10", phys.SecondsToYears(got))
	}
	// Lower stress allows more current — the stress-aware limit is layout-
	// dependent, unlike the foundry's single number.
	if !(p.JMaxForLifetime(210e6, target) > j) {
		t.Error("lower σ_T did not raise the allowed current density")
	}
	// Degenerate regimes.
	if got := p.JMaxForLifetime(230e6, 0); !math.IsInf(got, 1) {
		t.Errorf("zero target: %g", got)
	}
	if got := p.JMaxForLifetime(500e6, target); got != 0 {
		t.Errorf("σ_T above σ_C: %g, want 0", got)
	}
}

func TestTTFTempScale(t *testing.T) {
	p := Default()
	// Identity at the reference temperature.
	if s := p.TTFTempScale(230e6, 105, 105, 250, 1e10); math.Abs(s-1) > 1e-12 {
		t.Errorf("identity scale = %g", s)
	}
	// Hotter than reference: Arrhenius acceleration wins over stress
	// relaxation only beyond a crossover; at slightly hotter the net effect
	// must be finite and positive.
	s110 := p.TTFTempScale(230e6, 105, 110, 250, 1e10)
	if s110 <= 0 || math.IsInf(s110, 0) {
		t.Errorf("scale at 110C = %g", s110)
	}
	// Much colder than the stress-free point from above: σ_T grows past
	// σ_C → immediate failure → zero scale.
	if s := p.TTFTempScale(230e6, 105, -50, 250, 1e10); s != 0 {
		t.Errorf("deep-cold scale = %g, want 0", s)
	}
	// At the stress-free temperature the residual stress vanishes and the
	// diffusivity is much higher: the balance is finite.
	s250 := p.TTFTempScale(230e6, 105, 250, 250, 1e10)
	if s250 <= 0 || math.IsInf(s250, 0) {
		t.Errorf("scale at stress-free T = %g", s250)
	}
}
