// Package emdist implements the electromigration void-nucleation physics of
// the DAC'17 paper (§2): the Korhonen-model nucleation time of equations
// (1)–(3) and the critical-stress distribution of equation (4).
//
// For Cu dual-damascene vias, slit voids under the via dominate failure and
// the time-to-failure is the nucleation time
//
//	TTF ≈ t_n = (σ_C − σ_T)² · C_tn / D_eff   (0 when σ_C ≤ σ_T)
//	D_eff = D0 · exp(−Ea / kB·T)
//	C_tn  = (Ω/4) · [κ·kB·T / ((e·Z*·ρCu·j)² · B)]
//
// with σ_C = 2γs·sinθ_C / R_f lognormally distributed through the interface
// flaw radius R_f, and D_eff lognormally distributed through process
// variation. The κ in C_tn is π for the 1-D Korhonen diffusion solution; it
// doubles as the model's dimensionless calibration knob.
package emdist

import (
	"fmt"
	"math"
	"math/rand"

	"emvia/internal/mat"
	"emvia/internal/phys"
	"emvia/internal/stat"
)

// Params collects the EM material and model constants. Construct with
// Default and override fields as needed; all zero-value fields are invalid.
type Params struct {
	// D0 is the diffusivity prefactor, m²/s.
	D0 float64
	// Ea is the effective activation energy, J.
	Ea float64
	// Omega is the atomic volume of Cu, m³.
	Omega float64
	// ZStar is the effective charge number |Z*|.
	ZStar float64
	// Rho is the Cu resistivity at operating temperature, Ω·m.
	Rho float64
	// Bulk is the effective bulk modulus B of the confined Cu/dielectric
	// system, Pa.
	Bulk float64
	// Kappa is the dimensionless constant of equation (3); π for the 1-D
	// Korhonen solution.
	Kappa float64
	// GammaS is the Cu surface free energy, J/m².
	GammaS float64
	// ThetaC is the void contact angle, radians (π/2 for circular flaws).
	ThetaC float64
	// RfMean and RfStdFrac give the lognormal flaw-radius distribution:
	// mean in metres and standard deviation as a fraction of the mean
	// (paper: 10 nm and 5 %).
	RfMean    float64
	RfStdFrac float64
	// DeffLogSigma is the lognormal sigma of the process variation on
	// D_eff (paper [2] models D_eff as lognormal).
	DeffLogSigma float64
	// TempC is the operating temperature, °C.
	TempC float64
}

// Reference conditions used to calibrate the default D0: a via under the
// nominal Plus-pattern 4×4 thermomechanical stress carrying the paper's
// benchmark current density should have a median TTF of ~8 years, placing
// the via-array and grid CDFs in the paper's 2–22 year window.
const (
	CalibrationSigmaT = 230e6 // Pa
	CalibrationJ      = 1e10  // A/m²
	CalibrationYears  = 8.0   // target median TTF, years
)

// Default returns the literature parameter set, with D0 calibrated so the
// reference via meets CalibrationYears.
func Default() Params {
	p := Params{
		D0:           7.8e-5, // placeholder; recalibrated below
		Ea:           mat.EaCu,
		Omega:        mat.OmegaCu,
		ZStar:        mat.ZStarEff,
		Rho:          mat.RhoCu,
		Bulk:         mat.BulkModulusEff,
		Kappa:        math.Pi,
		GammaS:       mat.GammaSurfCu,
		ThetaC:       math.Pi / 2,
		RfMean:       10 * phys.Nanometre,
		RfStdFrac:    0.05,
		DeffLogSigma: 0.20,
		TempC:        105,
	}
	p = p.CalibrateD0(CalibrationSigmaT, CalibrationJ, CalibrationYears)
	return p
}

// Validate reports the first invalid field.
func (p Params) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"D0", p.D0}, {"Ea", p.Ea}, {"Omega", p.Omega}, {"ZStar", p.ZStar},
		{"Rho", p.Rho}, {"Bulk", p.Bulk}, {"Kappa", p.Kappa},
		{"GammaS", p.GammaS}, {"RfMean", p.RfMean}, {"RfStdFrac", p.RfStdFrac},
	}
	for _, c := range checks {
		if c.v <= 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("emdist: %s must be positive and finite, got %g", c.name, c.v)
		}
	}
	if p.ThetaC <= 0 || p.ThetaC > math.Pi {
		return fmt.Errorf("emdist: ThetaC must be in (0, π], got %g", p.ThetaC)
	}
	if p.DeffLogSigma < 0 {
		return fmt.Errorf("emdist: DeffLogSigma must be ≥ 0, got %g", p.DeffLogSigma)
	}
	return nil
}

// TempK returns the operating temperature in Kelvin.
func (p Params) TempK() float64 { return phys.CelsiusToKelvin(p.TempC) }

// Deff returns the nominal effective diffusivity D0·exp(−Ea/kB·T), m²/s.
func (p Params) Deff() float64 {
	return phys.Arrhenius(p.D0, p.Ea, p.TempK())
}

// Ctn evaluates equation (3) for current density j (A/m²): the
// proportionality constant between (σ_C−σ_T)²/D_eff and the nucleation
// time, in s·m²/Pa².
func (p Params) Ctn(j float64) float64 {
	if j <= 0 {
		return math.Inf(1)
	}
	force := phys.ElementaryCharge * p.ZStar * p.Rho * j // EM force per atom, N
	return (p.Omega / 4) * p.Kappa * phys.Boltzmann * p.TempK() /
		(force * force * p.Bulk)
}

// SigmaCDist returns the lognormal distribution of the critical stress
// σ_C = 2γs·sinθ_C / R_f induced by the lognormal flaw radius: if
// R_f ~ LogN(µ, s) then σ_C ~ LogN(ln(2γs·sinθ_C) − µ, s).
func (p Params) SigmaCDist() (stat.LogNormal, error) {
	rf, err := stat.LogNormalFromMoments(p.RfMean, p.RfStdFrac*p.RfMean)
	if err != nil {
		return stat.LogNormal{}, fmt.Errorf("emdist: flaw radius distribution: %w", err)
	}
	num := 2 * p.GammaS * math.Sin(p.ThetaC)
	return stat.LogNormal{Mu: math.Log(num) - rf.Mu, Sigma: rf.Sigma}, nil
}

// NucleationTime evaluates equation (1) for explicit σ_C, σ_T (Pa) and j
// (A/m²) with the nominal D_eff: the deterministic core of the model.
// It returns 0 when σ_C ≤ σ_T (a void is immediately feasible) and +Inf
// when j ≤ 0 (no EM driving force).
func (p Params) NucleationTime(sigmaC, sigmaT, j float64) float64 {
	if sigmaC <= sigmaT {
		return 0
	}
	if j <= 0 {
		return math.Inf(1)
	}
	d := sigmaC - sigmaT
	return d * d * p.Ctn(j) / p.Deff()
}

// SampleTTF draws one via TTF (seconds) at thermomechanical stress sigmaT
// (Pa) and current density j (A/m²), sampling both the critical stress and
// the diffusivity variation.
func (p Params) SampleTTF(rng *rand.Rand, sigmaT, j float64) float64 {
	sc, err := p.SigmaCDist()
	if err != nil {
		panic(fmt.Sprintf("emdist: invalid params in SampleTTF: %v", err))
	}
	sigmaC := sc.Sample(rng)
	t := p.NucleationTime(sigmaC, sigmaT, j)
	if p.DeffLogSigma > 0 && t > 0 && !math.IsInf(t, 1) {
		t *= math.Exp(-p.DeffLogSigma * rng.NormFloat64())
	}
	return t
}

// MedianTTF returns the TTF (seconds) at the median critical stress and
// nominal diffusivity.
func (p Params) MedianTTF(sigmaT, j float64) float64 {
	sc, err := p.SigmaCDist()
	if err != nil {
		panic(fmt.Sprintf("emdist: invalid params in MedianTTF: %v", err))
	}
	return p.NucleationTime(sc.Median(), sigmaT, j)
}

// CalibrateD0 returns a copy of the parameters with D0 rescaled so that
// MedianTTF(sigmaT, j) equals targetYears. This pins the absolute time
// scale, which the paper's unpublished foundry constants would otherwise
// leave free; all relative comparisons are unaffected.
func (p Params) CalibrateD0(sigmaT, j, targetYears float64) Params {
	cur := p.MedianTTF(sigmaT, j)
	target := phys.YearsToSeconds(targetYears)
	if cur <= 0 || math.IsInf(cur, 0) || target <= 0 {
		return p
	}
	p.D0 *= cur / target
	return p
}

// DriftVelocity returns the EM atomic drift velocity
// v_d = (D_eff/kB·T)·e·Z*·ρ·j, m/s — the rate at which a nucleated void
// grows along the line.
func (p Params) DriftVelocity(j float64) float64 {
	return p.Deff() / (phys.Boltzmann * p.TempK()) *
		phys.ElementaryCharge * p.ZStar * p.Rho * j
}

// GrowthTime returns the void-growth phase duration for a void to reach
// criticalSize (m) at current density j: t_g = criticalSize / v_d.
//
// For the Al-era failure mode the void must span the via (criticalSize ≈
// via width, hundreds of nm) and growth dominates the TTF; for Cu dual-
// damascene slit voids under the via only a few-nm slit at the liner
// interface opens the circuit, making t_g ≪ t_n — the paper's §2.1
// justification for TTF ≈ t_n.
func (p Params) GrowthTime(j, criticalSize float64) float64 {
	if criticalSize <= 0 {
		return 0
	}
	v := p.DriftVelocity(j)
	if v <= 0 {
		return math.Inf(1)
	}
	return criticalSize / v
}

// TTFWithGrowth evaluates the two-phase TTF = t_n + t_g of the pre-Cu
// literature (Korhonen [9]): nucleation at explicit σ_C, σ_T plus growth to
// criticalSize.
func (p Params) TTFWithGrowth(sigmaC, sigmaT, j, criticalSize float64) float64 {
	return p.NucleationTime(sigmaC, sigmaT, j) + p.GrowthTime(j, criticalSize)
}

// WithTemp returns a copy of the parameters at another operating
// temperature (°C); D_eff and C_tn pick up the change automatically.
func (p Params) WithTemp(tC float64) Params {
	p.TempC = tC
	return p
}

// SigmaTAtTemp linearly rescales a thermomechanical stress characterized at
// reference operating temperature tRefC (°C) to another temperature tC,
// given the stress-free temperature tStressFreeC: within linear elasticity
// σ_T ∝ (T − T_sf). At accelerated-test temperatures near the stress-free
// point the residual stress nearly vanishes (or turns compressive), which
// is exactly why stress-blind accelerated characterization misjudges
// operating-condition EM (paper §1).
func SigmaTAtTemp(sigmaTRef, tRefC, tC, tStressFreeC float64) float64 {
	den := tRefC - tStressFreeC
	if den == 0 {
		return 0
	}
	return sigmaTRef * (tC - tStressFreeC) / den
}

// JMaxForLifetime inverts the nucleation model: the largest current density
// (A/m²) a via at thermomechanical stress sigmaT can carry while its median
// TTF stays at or above targetSeconds. This is the stress-aware version of
// the foundry j_max limit of §1 — unlike the foundry's single number, it
// depends on the via's layout through σ_T. Returns +Inf when the target is
// non-positive and 0 when σ_T already exceeds the median critical stress.
func (p Params) JMaxForLifetime(sigmaT, targetSeconds float64) float64 {
	if targetSeconds <= 0 {
		return math.Inf(1)
	}
	const jRef = 1e10
	ref := p.MedianTTF(sigmaT, jRef)
	if ref <= 0 {
		return 0
	}
	if math.IsInf(ref, 1) {
		return math.Inf(1)
	}
	// TTF ∝ 1/j² ⇒ j_max = j_ref · sqrt(TTF(j_ref)/target).
	return jRef * math.Sqrt(ref/targetSeconds)
}

// TTFTempScale returns the multiplicative factor on a TTF that was
// characterized at operating temperature tRefC with thermomechanical stress
// sigmaTRef, when the component actually operates at tC: the ratio of
// median nucleation times with both the Arrhenius diffusivity and the
// linearly rescaled σ_T (stress-free at tStressFreeC) evaluated at each
// temperature. Factors below 1 mean the hot spot ages faster.
func (p Params) TTFTempScale(sigmaTRef, tRefC, tC, tStressFreeC, j float64) float64 {
	ref := p.WithTemp(tRefC).MedianTTF(sigmaTRef, j)
	at := p.WithTemp(tC).MedianTTF(SigmaTAtTemp(sigmaTRef, tRefC, tC, tStressFreeC), j)
	if ref <= 0 || math.IsInf(ref, 1) {
		return 1
	}
	if at <= 0 {
		return 0
	}
	if math.IsInf(at, 1) {
		return math.Inf(1)
	}
	return at / ref
}

// FitTTF fits a lognormal to n sampled TTFs at the given conditions; the
// paper invokes Wilkinson's approximation to argue this fit is accurate.
func (p Params) FitTTF(rng *rand.Rand, n int, sigmaT, j float64) (stat.LogNormal, error) {
	if n < 2 {
		return stat.LogNormal{}, fmt.Errorf("emdist: need ≥ 2 samples, got %d", n)
	}
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		t := p.SampleTTF(rng, sigmaT, j)
		if t > 0 && !math.IsInf(t, 1) {
			samples = append(samples, t)
		}
	}
	if len(samples) < 2 {
		return stat.LogNormal{}, fmt.Errorf("emdist: conditions give immediate failure (σ_T ≥ σ_C almost surely)")
	}
	return stat.FitLogNormal(samples)
}
