package fem

import (
	"runtime"
	"testing"

	"emvia/internal/mat"
	"emvia/internal/mesh"
)

// parGrid builds a heterogeneous stack (Si / Cu / SiN) with a hole carved
// into the copper layer, so parallel assembly has to handle material
// boundaries, excluded cells and mixed BCs — the features that could break
// row ownership.
func parGrid(t *testing.T) *mesh.Grid {
	t.Helper()
	xs := mesh.Lines([]float64{0, 1e-6}, 0.125e-6, 1e-15)
	zs := mesh.Lines([]float64{0, 0.3e-6, 0.6e-6, 0.9e-6}, 0.1e-6, 1e-15)
	g, err := mesh.New(xs, xs, zs)
	if err != nil {
		t.Fatal(err)
	}
	g.Paint(mesh.Box{X0: 0, X1: 1e-6, Y0: 0, Y1: 1e-6, Z0: 0, Z1: 0.3e-6}, mat.Silicon)
	g.Paint(mesh.Box{X0: 0, X1: 1e-6, Y0: 0, Y1: 1e-6, Z0: 0.3e-6, Z1: 0.6e-6}, mat.Copper)
	g.Paint(mesh.Box{X0: 0, X1: 1e-6, Y0: 0, Y1: 1e-6, Z0: 0.6e-6, Z1: 0.9e-6}, mat.SiN)
	nx, ny, nz := g.CellDims()
	g.SetMaterial(nx/2, ny/2, nz/2, mat.None)
	return g
}

func parModel(t *testing.T) *Model {
	m := NewModel(parGrid(t), dT)
	m.SetFaceBC(XMin, Roller)
	m.SetFaceBC(XMax, Roller)
	m.SetFaceBC(YMin, Roller)
	m.SetFaceBC(ZMin, Clamp)
	return m
}

// TestSolveWorkersBitIdentical checks the tentpole guarantee: the parallel
// assembly, CG kernels and stress recovery return results bit-identical to
// the serial path for every worker count.
func TestSolveWorkersBitIdentical(t *testing.T) {
	m := parModel(t)
	ref, err := m.Solve(SolveOptions{Tol: 1e-10, Workers: 1})
	if err != nil {
		t.Fatalf("serial Solve: %v", err)
	}
	ref.PrecomputeStress(1)

	g := m.Grid
	nx, ny, nz := g.CellDims()
	for _, w := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		res, err := m.Solve(SolveOptions{Tol: 1e-10, Workers: w})
		if err != nil {
			t.Fatalf("Workers=%d Solve: %v", w, err)
		}
		if res.Stats != ref.Stats {
			t.Errorf("Workers=%d stats %+v, serial %+v", w, res.Stats, ref.Stats)
		}
		for i, v := range res.U {
			if v != ref.U[i] {
				t.Fatalf("Workers=%d U[%d] = %g, serial %g (not bit-identical)", w, i, v, ref.U[i])
			}
		}
		res.PrecomputeStress(w)
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					sw, okw := res.StressAt(i, j, k)
					sr, okr := ref.StressAt(i, j, k)
					if okw != okr {
						t.Fatalf("Workers=%d cell (%d,%d,%d) hole flag %v, serial %v", w, i, j, k, okw, okr)
					}
					if sw != sr {
						t.Fatalf("Workers=%d cell (%d,%d,%d) stress %+v, serial %+v (not bit-identical)", w, i, j, k, sw, sr)
					}
				}
			}
		}
	}
}

// TestPrecomputeStressMatchesLazy checks the cached per-cell recovery against
// the on-demand path bit for bit.
func TestPrecomputeStressMatchesLazy(t *testing.T) {
	m := parModel(t)
	lazy, err := m.Solve(SolveOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := m.Solve(SolveOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	cached.PrecomputeStress(runtime.GOMAXPROCS(0))
	nx, ny, nz := m.Grid.CellDims()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				sc, okc := cached.StressAt(i, j, k)
				sl, okl := lazy.StressAt(i, j, k)
				if okc != okl || sc != sl {
					t.Fatalf("cell (%d,%d,%d): cached %+v/%v, lazy %+v/%v", i, j, k, sc, okc, sl, okl)
				}
			}
		}
	}
}

// TestSolveWorkersDefault checks that the zero value picks GOMAXPROCS and
// still matches an explicit one-worker run.
func TestSolveWorkersDefault(t *testing.T) {
	m := parModel(t)
	ref, err := m.Solve(SolveOptions{Tol: 1e-10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(SolveOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.U {
		if v != ref.U[i] {
			t.Fatalf("default-workers U[%d] = %g, serial %g", i, v, ref.U[i])
		}
	}
}
