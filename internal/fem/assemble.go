package fem

import (
	"fmt"

	"emvia/internal/mat"
	"emvia/internal/par"
	"emvia/internal/sparse"
)

// Node-centric fixed-pattern stiffness assembly.
//
// The old path stamped 24×24 element blocks into a COO triplet and paid for
// a bucket sort, per-row sorts and a duplicate merge on every solve (~40% of
// a characterization run). This path exploits the structured lattice instead:
// each matrix row belongs to one node, a node couples only to the ≤27 lattice
// neighbors it shares a solid cell with, and those neighbors — visited in
// (k,j,i) order — yield the row's column indices already sorted. Rows are
// therefore built independently, which gives parallelism with no merge step:
// every worker owns whole nodes, and each row accumulates its ≤8 incident
// element contributions in ascending cell order regardless of how nodes are
// partitioned, so the assembled matrix is bit-identical for any worker count.
const nodeBlock = 256 // nodes per dispatch block

// perm8 reorders mesh.CellNodes hex ordering (bottom face CCW, then top)
// into ascending node-id order.
var perm8 = [8]int{0, 1, 3, 2, 4, 5, 7, 6}

// nbrMask8 maps an incident-cell octant (oz*4+oy*2+ox, where the cell index
// along x is i-1+ox, etc.) to the bitmask of neighbor offsets
// (dk+1)*9+(dj+1)*3+(di+1) covered by that cell's eight nodes.
var nbrMask8 = func() [8]uint32 {
	var m [8]uint32
	for oz := 0; oz < 2; oz++ {
		for oy := 0; oy < 2; oy++ {
			for ox := 0; ox < 2; ox++ {
				var bits uint32
				for dk := oz - 1; dk <= oz; dk++ {
					for dj := oy - 1; dj <= oy; dj++ {
						for di := ox - 1; di <= ox; di++ {
							bits |= 1 << uint((dk+1)*9+(dj+1)*3+(di+1))
						}
					}
				}
				m[oz*4+oy*2+ox] = bits
			}
		}
	}
	return m
}()

// localNode returns the mesh.CellNodes local index of the node at offset
// (dxo,dyo,dzo) ∈ {0,1}³ within a cell.
func localNode(dxo, dyo, dzo int) int {
	a := dxo
	if dyo == 1 {
		a = 3 - dxo
	}
	return 4*dzo + a
}

// assembly is the assembled free-DOF system.
type assembly struct {
	a   *sparse.CSR
	rhs []float64
	eq  []int // dof → equation number, -1 when fixed/inactive
	nEq int
}

// assemble builds the stiffness matrix and thermal-load vector over the free
// DOFs, partitioning both the element-table integration and the row fill
// across the pool.
func (m *Model) assemble(pool *par.Pool) (*assembly, error) {
	g := m.Grid
	nn := g.NumNodes()
	ndof := 3 * nn

	active := m.activeNodes()
	constrained := m.constrainedDOFs(active)

	// Equation numbering over free DOFs.
	eq := make([]int, ndof)
	nEq := 0
	for d := 0; d < ndof; d++ {
		node := d / 3
		if active[node] && !constrained[d] {
			eq[d] = nEq
			nEq++
		} else {
			eq[d] = -1
		}
	}
	if nEq == 0 {
		return nil, fmt.Errorf("fem: no free degrees of freedom (empty or fully constrained model)")
	}

	nx, ny, nz := g.CellDims()
	nnx, nny, _ := g.NodeDims()

	// Element table: one integrated (ke, fe) per distinct (size, material)
	// key, discovered serially in cell order so key indices are stable,
	// then integrated in parallel. cellElem maps every solid cell to its
	// table entry (-1 for holes).
	cellElem := make([]int32, nx*ny*nz)
	type pendingKey struct {
		dx, dy, dz float64
		props      mat.Elastic
	}
	keyIdx := make(map[elemKey]int32)
	var pend []pendingKey
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				cid := (k*ny+j)*nx + i
				id := g.Material(i, j, k)
				if id == mat.None {
					cellElem[cid] = -1
					continue
				}
				dx, dy, dz := g.CellSize(i, j, k)
				key := elemKey{dx, dy, dz, id}
				idx, ok := keyIdx[key]
				if !ok {
					props, err := mat.Properties(id)
					if err != nil {
						return nil, fmt.Errorf("fem: cell (%d,%d,%d): %w", i, j, k, err)
					}
					idx = int32(len(pend))
					keyIdx[key] = idx
					pend = append(pend, pendingKey{dx, dy, dz, props})
				}
				cellElem[cid] = idx
			}
		}
	}
	elems := make([]elemData, len(pend))
	deltaT := m.DeltaT
	pool.Run(len(pend), func(e int) {
		p := pend[e]
		elems[e].ke, elems[e].fe = elemStiffness(p.dx, p.dy, p.dz, p.props, deltaT)
	})

	// freeCnt[n] is the number of free DOFs of node n (its column count
	// contribution to every row it couples with).
	freeCnt := make([]uint8, nn)
	for n := 0; n < nn; n++ {
		var c uint8
		for d := 3 * n; d < 3*n+3; d++ {
			if eq[d] >= 0 {
				c++
			}
		}
		freeCnt[n] = c
	}

	// Pass A: per-node row width = Σ freeCnt over coupled neighbors.
	rowWidth := make([]int32, nn)
	nblk := par.Blocks(nn, nodeBlock)
	pool.Run(nblk, func(b int) {
		lo := b * nodeBlock
		hi := lo + nodeBlock
		if hi > nn {
			hi = nn
		}
		for n := lo; n < hi; n++ {
			if freeCnt[n] == 0 {
				continue
			}
			i := n % nnx
			j := (n / nnx) % nny
			k := n / (nnx * nny)
			mask := couplingMask(cellElem, i, j, k, nx, ny, nz)
			var w int32
			for bit := 0; bit < 27; bit++ {
				if mask&(1<<uint(bit)) == 0 {
					continue
				}
				di := bit%3 - 1
				dj := (bit/3)%3 - 1
				dk := bit/9 - 1
				w += int32(freeCnt[(dk*nny+dj)*nnx+di+n])
			}
			rowWidth[n] = w
		}
	})

	// Row pointers: every free row of a node shares that node's width.
	ptr := make([]int, nEq+1)
	r := 0
	for n := 0; n < nn; n++ {
		w := int(rowWidth[n])
		for d := 3 * n; d < 3*n+3; d++ {
			if eq[d] >= 0 {
				ptr[r+1] = ptr[r] + w
				r++
			}
		}
	}
	nnz := ptr[nEq]
	cols := make([]int, nnz)
	vals := make([]float64, nnz)
	rhs := make([]float64, nEq)

	// Pass B: fill each node's rows — columns once, then scatter the ≤8
	// incident element blocks in ascending cell order.
	pool.Run(nblk, func(b int) {
		lo := b * nodeBlock
		hi := lo + nodeBlock
		if hi > nn {
			hi = nn
		}
		for n := lo; n < hi; n++ {
			if rowWidth[n] == 0 {
				continue
			}
			i := n % nnx
			j := (n / nnx) % nny
			k := n / (nnx * nny)

			// Row bases for the free components of node n; r0 is the
			// first one, whose cols slice is built and then copied to
			// the siblings (identical layout).
			var base [3]int
			r0 := -1
			for c := 0; c < 3; c++ {
				base[c] = -1
				if rr := eq[3*n+c]; rr >= 0 {
					base[c] = ptr[rr]
					if r0 < 0 {
						r0 = ptr[rr]
					}
				}
			}
			w := int(rowWidth[n])
			rowCols := cols[r0 : r0+w]

			mask := couplingMask(cellElem, i, j, k, nx, ny, nz)
			pos := 0
			for bit := 0; bit < 27; bit++ {
				if mask&(1<<uint(bit)) == 0 {
					continue
				}
				di := bit%3 - 1
				dj := (bit/3)%3 - 1
				dk := bit/9 - 1
				mn := (dk*nny+dj)*nnx + di + n
				for cc := 0; cc < 3; cc++ {
					if col := eq[3*mn+cc]; col >= 0 {
						rowCols[pos] = col
						pos++
					}
				}
			}
			for c := 0; c < 3; c++ {
				if base[c] >= 0 && base[c] != r0 {
					copy(cols[base[c]:base[c]+w], rowCols)
				}
			}

			// Scatter incident cells in ascending cell-id order.
			for oz := 0; oz < 2; oz++ {
				ck := k - 1 + oz
				if ck < 0 || ck >= nz {
					continue
				}
				for oy := 0; oy < 2; oy++ {
					cj := j - 1 + oy
					if cj < 0 || cj >= ny {
						continue
					}
					for ox := 0; ox < 2; ox++ {
						ci := i - 1 + ox
						if ci < 0 || ci >= nx {
							continue
						}
						ei := cellElem[(ck*ny+cj)*nx+ci]
						if ei < 0 {
							continue
						}
						ed := &elems[ei]
						nodes := g.CellNodes(ci, cj, ck)
						aLoc := localNode(1-ox, 1-oy, 1-oz)
						pos := 0
						for _, p8 := range perm8 {
							mn := nodes[p8]
							for cc := 0; cc < 3; cc++ {
								col := eq[3*mn+cc]
								if col < 0 {
									continue
								}
								for rowCols[pos] < col {
									pos++
								}
								for c := 0; c < 3; c++ {
									if base[c] >= 0 {
										vals[base[c]+pos] += ed.ke[(3*aLoc+c)*24+3*p8+cc]
									}
								}
								pos++
							}
						}
						for c := 0; c < 3; c++ {
							if rr := eq[3*n+c]; rr >= 0 {
								rhs[rr] += ed.fe[3*aLoc+c]
							}
						}
					}
				}
			}
		}
	})

	return &assembly{
		a:   sparse.NewCSR(nEq, nEq, ptr, cols, vals),
		rhs: rhs,
		eq:  eq,
		nEq: nEq,
	}, nil
}

// couplingMask returns the 27-bit neighbor-offset mask of node (i,j,k): bit
// (dk+1)*9+(dj+1)*3+(di+1) is set when the node shares at least one solid
// incident cell with the node at that offset (bit 13 — the node itself — is
// set whenever any incident cell is solid).
func couplingMask(cellElem []int32, i, j, k, nx, ny, nz int) uint32 {
	var mask uint32
	for oz := 0; oz < 2; oz++ {
		ck := k - 1 + oz
		if ck < 0 || ck >= nz {
			continue
		}
		for oy := 0; oy < 2; oy++ {
			cj := j - 1 + oy
			if cj < 0 || cj >= ny {
				continue
			}
			for ox := 0; ox < 2; ox++ {
				ci := i - 1 + ox
				if ci < 0 || ci >= nx {
					continue
				}
				if cellElem[(ck*ny+cj)*nx+ci] >= 0 {
					mask |= nbrMask8[oz*4+oy*2+ox]
				}
			}
		}
	}
	return mask
}
