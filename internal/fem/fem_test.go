package fem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emvia/internal/mat"
	"emvia/internal/mesh"
	"emvia/internal/phys"
)

// cube builds an n×n×n single-material unit cube grid.
func cube(t *testing.T, n int, id mat.ID) *mesh.Grid {
	t.Helper()
	lines := mesh.Lines([]float64{0, 1e-6}, 1e-6/float64(n), 1e-15)
	g, err := mesh.New(lines, lines, lines)
	if err != nil {
		t.Fatalf("mesh.New: %v", err)
	}
	g.Paint(mesh.Box{X0: 0, X1: 1e-6, Y0: 0, Y1: 1e-6, Z0: 0, Z1: 1e-6}, id)
	return g
}

const dT = -225.0 // K, anneal 330 °C → operate 105 °C

// TestFreeExpansionZeroStress: a uniform body with minimal constraints
// expands freely under ΔT → stress must vanish.
func TestFreeExpansionZeroStress(t *testing.T) {
	g := cube(t, 3, mat.Copper)
	m := NewModel(g, dT)
	// Minimal rigid-body constraints: three roller symmetry planes act like
	// an octant model of a free cube.
	m.SetFaceBC(XMin, Roller)
	m.SetFaceBC(YMin, Roller)
	m.SetFaceBC(ZMin, Roller)
	res, err := m.Solve(SolveOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for k := 0; k < 3; k++ {
		for j := 0; j < 3; j++ {
			for i := 0; i < 3; i++ {
				s, ok := res.StressAt(i, j, k)
				if !ok {
					t.Fatal("hole in solid cube")
				}
				for name, v := range map[string]float64{"xx": s.XX, "yy": s.YY, "zz": s.ZZ, "xy": s.XY, "yz": s.YZ, "zx": s.ZX} {
					if math.Abs(v) > 1.0 { // Pa; stresses here are O(GPa) when constrained
						t.Errorf("cell (%d,%d,%d) σ%s = %g Pa, want ~0", i, j, k, name, v)
					}
				}
			}
		}
	}
	// Displacement check: free thermal strain ε = αΔT, so the far corner
	// moves by ε·L in each axis.
	p := mat.Table1[mat.Copper]
	wantU := p.CTE * dT * 1e-6
	nnx, nny, nnz := g.NodeDims()
	n := g.NodeID(nnx-1, nny-1, nnz-1)
	for d := 0; d < 3; d++ {
		if got := res.U[3*n+d]; math.Abs(got-wantU) > 1e-9*math.Abs(wantU)+1e-18 {
			t.Errorf("corner displacement[%d] = %g, want %g", d, got, wantU)
		}
	}
}

// TestFullyConstrainedHydrostatic: all faces roller → ε = 0 everywhere →
// σ = −(3λ+2µ)αΔT on the diagonal, i.e. σ_H = −3K·αΔT.
func TestFullyConstrainedHydrostatic(t *testing.T) {
	g := cube(t, 2, mat.Copper)
	m := NewModel(g, dT)
	for f := XMin; f <= ZMax; f++ {
		m.SetFaceBC(f, Roller)
	}
	res, err := m.Solve(SolveOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	p := mat.Table1[mat.Copper]
	want := -3 * p.BulkModulus() * p.CTE * dT
	h, ok := res.HydrostaticAt(1, 1, 1)
	if !ok {
		t.Fatal("hole in solid cube")
	}
	if math.Abs(h-want)/want > 1e-9 {
		t.Errorf("σ_H = %g, want %g", h, want)
	}
	if want < 0 {
		t.Errorf("cooling a constrained solid must give tensile stress, got want=%g", want)
	}
}

// TestUniaxialConstraint: x constrained on both x faces, free laterally →
// σ_xx = −EαΔT, σ_yy = σ_zz = 0.
func TestUniaxialConstraint(t *testing.T) {
	g := cube(t, 3, mat.Copper)
	m := NewModel(g, dT)
	m.SetFaceBC(XMin, Roller)
	m.SetFaceBC(XMax, Roller)
	// Pin rigid-body motion in y/z via rollers on the lower faces only;
	// upper faces stay free so lateral contraction is unimpeded.
	m.SetFaceBC(YMin, Roller)
	m.SetFaceBC(ZMin, Roller)
	res, err := m.Solve(SolveOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	p := mat.Table1[mat.Copper]
	want := -p.E * p.CTE * dT
	s, _ := res.StressAt(1, 1, 1)
	if math.Abs(s.XX-want)/math.Abs(want) > 1e-6 {
		t.Errorf("σ_xx = %g, want %g", s.XX, want)
	}
	if math.Abs(s.YY) > 1e-3*math.Abs(want) || math.Abs(s.ZZ) > 1e-3*math.Abs(want) {
		t.Errorf("lateral stresses σ_yy=%g σ_zz=%g, want ~0", s.YY, s.ZZ)
	}
}

// TestBimaterialTensileCopper: Cu slab sandwiched by stiff low-CTE layers,
// cooled: Cu wants to shrink more → ends up in tension (positive σ_H).
func TestBimaterialTensileCopper(t *testing.T) {
	xs := mesh.Lines([]float64{0, 1e-6}, 0.25e-6, 1e-15)
	zs := mesh.Lines([]float64{0, 0.3e-6, 0.6e-6, 0.9e-6}, 0.15e-6, 1e-15)
	g, err := mesh.New(xs, xs, zs)
	if err != nil {
		t.Fatal(err)
	}
	g.Paint(mesh.Box{X0: 0, X1: 1e-6, Y0: 0, Y1: 1e-6, Z0: 0, Z1: 0.3e-6}, mat.Silicon)
	g.Paint(mesh.Box{X0: 0, X1: 1e-6, Y0: 0, Y1: 1e-6, Z0: 0.3e-6, Z1: 0.6e-6}, mat.Copper)
	g.Paint(mesh.Box{X0: 0, X1: 1e-6, Y0: 0, Y1: 1e-6, Z0: 0.6e-6, Z1: 0.9e-6}, mat.SiN)
	m := NewModel(g, dT)
	m.SetFaceBC(XMin, Roller)
	m.SetFaceBC(XMax, Roller)
	m.SetFaceBC(YMin, Roller)
	m.SetFaceBC(YMax, Roller)
	m.SetFaceBC(ZMin, Clamp)
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	peak, found := res.MaxHydrostaticInBox(mesh.Box{X0: 0, X1: 1e-6, Y0: 0, Y1: 1e-6, Z0: 0.3e-6, Z1: 0.6e-6}, mat.Copper)
	if !found {
		t.Fatal("no copper cells found")
	}
	if peak <= 50*phys.MPa {
		t.Errorf("confined Cu hydrostatic stress = %g MPa, want clearly tensile (> 50 MPa)", peak/phys.MPa)
	}
	if peak > 2000*phys.MPa {
		t.Errorf("confined Cu hydrostatic stress = %g MPa, implausibly high", peak/phys.MPa)
	}
}

// TestHoleExclusion: cells painted None are excluded and queried as holes.
func TestHoleExclusion(t *testing.T) {
	g := cube(t, 3, mat.Copper)
	// Carve a hole in the middle.
	g.SetMaterial(1, 1, 1, mat.None)
	m := NewModel(g, dT)
	m.SetFaceBC(ZMin, Clamp)
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if _, ok := res.StressAt(1, 1, 1); ok {
		t.Error("hole reported stress")
	}
	if _, ok := res.StressAt(0, 0, 0); !ok {
		t.Error("solid cell reported as hole")
	}
}

func TestNoDOFsError(t *testing.T) {
	g := cube(t, 1, mat.None) // nothing painted: Paint with None is a no-op anyway
	m := NewModel(g, dT)
	if _, err := m.Solve(SolveOptions{}); err == nil {
		t.Error("expected error for empty model")
	}
}

func TestPrecondChoices(t *testing.T) {
	g := cube(t, 2, mat.Copper)
	for _, pc := range []string{"auto", "jacobi", "none", "ic0"} {
		m := NewModel(g, dT)
		for f := XMin; f <= ZMax; f++ {
			m.SetFaceBC(f, Roller)
		}
		res, err := m.Solve(SolveOptions{Precond: pc})
		if err != nil {
			t.Fatalf("Precond %q: %v", pc, err)
		}
		p := mat.Table1[mat.Copper]
		want := -3 * p.BulkModulus() * p.CTE * dT
		h, _ := res.HydrostaticAt(0, 0, 0)
		if math.Abs(h-want)/want > 1e-6 {
			t.Errorf("Precond %q: σ_H = %g, want %g", pc, h, want)
		}
	}
	m := NewModel(g, dT)
	if _, err := m.Solve(SolveOptions{Precond: "bogus"}); err == nil {
		t.Error("accepted bogus preconditioner name")
	}
}

func TestLineScanX(t *testing.T) {
	g := cube(t, 4, mat.Copper)
	m := NewModel(g, dT)
	for f := XMin; f <= ZMax; f++ {
		m.SetFaceBC(f, Roller)
	}
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	xs, sh := res.LineScanX(0.5e-6, 0.5e-6)
	if len(xs) != 4 || len(sh) != 4 {
		t.Fatalf("LineScanX lengths = %d,%d, want 4,4", len(xs), len(sh))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Error("scan x not increasing")
		}
	}
	// Fully constrained uniform body: stress constant along the scan.
	for i := 1; i < len(sh); i++ {
		if math.Abs(sh[i]-sh[0]) > 1e-6*math.Abs(sh[0]) {
			t.Errorf("scan stress varies: %g vs %g", sh[i], sh[0])
		}
	}
	// Scan outside the domain returns nothing.
	if xs, _ := res.LineScanX(5e-6, 0.5e-6); xs != nil {
		t.Error("scan outside domain returned data")
	}
}

func TestVonMisesAndTensorInvariants(t *testing.T) {
	tens := Tensor{XX: 100, YY: 100, ZZ: 100}
	if vm := tens.VonMises(); vm != 0 {
		t.Errorf("pure hydrostatic von Mises = %g, want 0", vm)
	}
	if h := tens.Hydrostatic(); h != 100 {
		t.Errorf("hydrostatic = %g, want 100", h)
	}
	shear := Tensor{XY: 10}
	if vm := shear.VonMises(); math.Abs(vm-10*math.Sqrt(3)) > 1e-9 {
		t.Errorf("pure shear von Mises = %g, want %g", vm, 10*math.Sqrt(3))
	}
}

// TestStiffnessSymmetryAndNullspace checks the element matrix directly:
// symmetric, and rigid translations produce zero force.
func TestStiffnessSymmetryAndNullspace(t *testing.T) {
	p := mat.Table1[mat.Copper]
	ke, _ := elemStiffness(1e-6, 2e-6, 0.5e-6, p, 0)
	for i := 0; i < 24; i++ {
		for j := 0; j < 24; j++ {
			if math.Abs(ke[i*24+j]-ke[j*24+i]) > 1e-3*math.Abs(ke[i*24+i]) {
				t.Fatalf("Ke asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// Rigid translation in each axis → Ke·u = 0.
	for d := 0; d < 3; d++ {
		var u [24]float64
		for a := 0; a < 8; a++ {
			u[3*a+d] = 1
		}
		for i := 0; i < 24; i++ {
			s := 0.0
			for j := 0; j < 24; j++ {
				s += ke[i*24+j] * u[j]
			}
			if math.Abs(s) > 1e-6*ke[i*24+i] {
				t.Fatalf("rigid translation axis %d gives force %g at dof %d", d, s, i)
			}
		}
	}
}

// TestThermalForceConsistency: for a fully-constrained element the thermal
// force equals the reaction of uniform stress σ = D·ε_th.
func TestThermalForceConsistency(t *testing.T) {
	p := mat.Table1[mat.Copper]
	_, fe := elemStiffness(1e-6, 1e-6, 1e-6, p, dT)
	// Total force on the element must vanish (internal equilibrium).
	for d := 0; d < 3; d++ {
		s := 0.0
		for a := 0; a < 8; a++ {
			s += fe[3*a+d]
		}
		if math.Abs(s) > 1e-9 {
			t.Errorf("thermal force unbalanced along axis %d: %g", d, s)
		}
	}
}

// TestElementPSDProperty: the element stiffness matrix must be symmetric
// positive semidefinite (6 rigid-body zero modes) for random box sizes and
// every material.
func TestElementPSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [3]float64{}
		for i := range dims {
			dims[i] = (0.05 + rng.Float64()) * 1e-6
		}
		ids := mat.All()
		id := ids[rng.Intn(len(ids))]
		p := mat.Table1[id]
		ke, _ := elemStiffness(dims[0], dims[1], dims[2], p, -145)
		// Random vector quadratic form must be ≥ 0 (within roundoff).
		scale := ke[0]
		for trial := 0; trial < 10; trial++ {
			var u [24]float64
			for i := range u {
				u[i] = rng.NormFloat64()
			}
			q := 0.0
			for i := 0; i < 24; i++ {
				for j := 0; j < 24; j++ {
					q += u[i] * ke[i*24+j] * u[j]
				}
			}
			if q < -1e-9*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStressInvariantUnderUniformScaling: scaling the whole structure
// geometrically leaves thermal stress unchanged (stress depends on strain,
// not absolute size).
func TestStressInvariantUnderUniformScaling(t *testing.T) {
	stress := func(scale float64) float64 {
		lines := mesh.Lines([]float64{0, scale * 1e-6}, scale*0.5e-6, 1e-18)
		g, err := mesh.New(lines, lines, lines)
		if err != nil {
			t.Fatal(err)
		}
		g.Paint(mesh.Box{X0: 0, X1: scale * 1e-6, Y0: 0, Y1: scale * 1e-6, Z0: 0, Z1: scale * 1e-6}, mat.Copper)
		m := NewModel(g, dT)
		for f := XMin; f <= ZMax; f++ {
			m.SetFaceBC(f, Roller)
		}
		res, err := m.Solve(SolveOptions{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := res.HydrostaticAt(0, 0, 0)
		return h
	}
	s1, s2 := stress(1), stress(7.3)
	if math.Abs(s1-s2)/s1 > 1e-9 {
		t.Errorf("stress not scale-invariant: %g vs %g", s1, s2)
	}
}
