// Package fem implements the 3-D linear thermoelastic finite-element solver
// used to precharacterize thermomechanical stress (σ_T) in Cu dual-damascene
// structures — the role played by ABAQUS in the DAC'17 paper.
//
// The discretization uses 8-node trilinear hexahedra on the rectilinear
// meshes of package mesh, with 2×2×2 Gauss quadrature, isotropic materials
// from package mat, and a uniform temperature change ΔT applied as an
// equivalent thermal-strain load. Boundary conditions are per-face: clamped
// (all displacement components zero) or roller/symmetry (normal component
// zero). The assembled stiffness system is solved by preconditioned
// conjugate gradients on the shared sparse stack.
//
// Stress is recovered at element centers; the quantity of interest for EM is
// the hydrostatic stress σ_H = (σxx+σyy+σzz)/3 (positive = tensile).
package fem

import (
	"fmt"

	"emvia/internal/mat"
	"emvia/internal/mesh"
	"emvia/internal/par"
	"emvia/internal/solver"
	"emvia/internal/telemetry"
	"emvia/internal/trace"
)

// Face names one of the six boundary faces of the rectilinear domain.
type Face int

// Boundary faces.
const (
	XMin Face = iota
	XMax
	YMin
	YMax
	ZMin
	ZMax
	numFaces
)

// String returns a short face name.
func (f Face) String() string {
	switch f {
	case XMin:
		return "x-"
	case XMax:
		return "x+"
	case YMin:
		return "y-"
	case YMax:
		return "y+"
	case ZMin:
		return "z-"
	case ZMax:
		return "z+"
	}
	return fmt.Sprintf("fem.Face(%d)", int(f))
}

// BC is the boundary-condition kind applied to a face.
type BC int

// Face boundary-condition kinds.
const (
	// Free leaves the face traction-free (natural BC, the default).
	Free BC = iota
	// Roller constrains the displacement component normal to the face
	// (symmetry plane: models the structure continuing periodically).
	Roller
	// Clamp constrains all three displacement components on the face.
	Clamp
)

// Model is a thermoelastic FE problem: a painted grid, a uniform temperature
// change and per-face boundary conditions.
type Model struct {
	Grid *mesh.Grid
	// DeltaT is the uniform temperature change in K (operating −
	// stress-free temperature; negative after cool-down from anneal).
	DeltaT float64

	faceBC [numFaces]BC
}

// NewModel wraps a painted grid with a temperature change. All faces start
// Free; callers set boundary conditions before Solve.
func NewModel(g *mesh.Grid, deltaT float64) *Model {
	return &Model{Grid: g, DeltaT: deltaT}
}

// SetFaceBC assigns the boundary condition of a face.
func (m *Model) SetFaceBC(f Face, bc BC) {
	if f < 0 || f >= numFaces {
		panic(fmt.Sprintf("fem: invalid face %d", int(f)))
	}
	m.faceBC[f] = bc
}

// FaceBC returns the boundary condition of a face.
func (m *Model) FaceBC(f Face) BC { return m.faceBC[f] }

// SolveOptions tunes the linear solve.
type SolveOptions struct {
	// Tol is the relative residual tolerance (default 1e-8; stresses are
	// insensitive below this for the element counts used here).
	Tol float64
	// MaxIter bounds CG iterations (default 20·sqrt(dofs)+2000).
	MaxIter int
	// Precond overrides the preconditioner choice: "auto" (default),
	// "jacobi", "ic0" or "none". Used by the ablation benchmarks.
	Precond string
	// Workers sets the number of workers for assembly, the CG kernels and
	// stress recovery. Zero or negative selects GOMAXPROCS. The result is
	// bit-identical for every worker count: rows are owned by single
	// workers and all reductions use fixed-order blocked partial sums.
	Workers int
}

// Result holds the displacement solution and exposes stress recovery.
type Result struct {
	// U is the full displacement vector, 3 entries per node (x fastest).
	U []float64
	// Stats reports the CG iteration count and final residual.
	Stats solver.Stats

	model   *Model
	workers int

	// Element-centre stress cache filled by PrecomputeStress; nil until
	// then (StressAt computes on demand in that case).
	sig   []Tensor
	sigOK []bool
}

// Solve assembles and solves the thermoelastic system. Assembly, the CG
// kernels and stress recovery run on opt.Workers workers (0 = GOMAXPROCS)
// and produce bit-identical results for every worker count.
func (m *Model) Solve(opt SolveOptions) (*Result, error) {
	reg := telemetry.Default()
	reg.Counter(telemetry.FEMSolves).Inc()
	solve0 := reg.Histogram(telemetry.FEMSolveSeconds).Start()

	// The shared per-width pool keeps its workers parked between solves, so
	// repeated characterizations pay the goroutine spawn only once.
	pool := par.Shared(opt.Workers)
	asm0 := reg.Histogram(telemetry.FEMAssemblySeconds).Start()
	asmSpan := trace.Default().Span("fem.assemble")
	asm, err := m.assemble(pool)
	if err != nil {
		return nil, err
	}
	asmSpan()
	reg.Histogram(telemetry.FEMAssemblySeconds).ObserveSince(asm0)
	a, rhs, eq, nEq := asm.a, asm.rhs, asm.eq, asm.nEq

	tol := opt.Tol
	if tol == 0 {
		tol = 1e-8
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 20*isqrt(nEq) + 2000
	}
	var pre solver.Preconditioner
	switch opt.Precond {
	case "", "auto":
		pre = solver.NewAutoPreconditioner(a)
	case "jacobi":
		j, err := solver.NewJacobi(a)
		if err != nil {
			return nil, fmt.Errorf("fem: jacobi preconditioner: %w", err)
		}
		pre = j
	case "ic0":
		ic, err := solver.NewIC0(a)
		if err != nil {
			return nil, fmt.Errorf("fem: ic0 preconditioner: %w", err)
		}
		pre = ic
	case "none":
		pre = solver.Identity{}
	default:
		return nil, fmt.Errorf("fem: unknown preconditioner %q", opt.Precond)
	}

	cgSpan := trace.Default().Span("fem.cg")
	x, st, err := solver.CG(a, rhs, solver.Options{Tol: tol, MaxIter: maxIter, M: pre, Pool: pool})
	if err != nil {
		return nil, fmt.Errorf("fem: linear solve: %w", err)
	}
	cgSpan()

	ndof := 3 * m.Grid.NumNodes()
	u := make([]float64, ndof)
	for d := 0; d < ndof; d++ {
		if eq[d] >= 0 {
			u[d] = x[eq[d]]
		}
	}
	reg.Histogram(telemetry.FEMSolveSeconds).ObserveSince(solve0)
	return &Result{U: u, Stats: st, model: m, workers: opt.Workers}, nil
}

// activeNodes marks nodes adjacent to at least one non-None cell.
func (m *Model) activeNodes() []bool {
	g := m.Grid
	active := make([]bool, g.NumNodes())
	nx, ny, nz := g.CellDims()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if g.Material(i, j, k) == mat.None {
					continue
				}
				for _, n := range g.CellNodes(i, j, k) {
					active[n] = true
				}
			}
		}
	}
	return active
}

// constrainedDOFs marks DOFs fixed by the face boundary conditions.
func (m *Model) constrainedDOFs(active []bool) []bool {
	g := m.Grid
	nnx, nny, nnz := g.NodeDims()
	constrained := make([]bool, 3*g.NumNodes())
	mark := func(node int, f Face) {
		switch m.faceBC[f] {
		case Clamp:
			constrained[3*node] = true
			constrained[3*node+1] = true
			constrained[3*node+2] = true
		case Roller:
			switch f {
			case XMin, XMax:
				constrained[3*node] = true
			case YMin, YMax:
				constrained[3*node+1] = true
			case ZMin, ZMax:
				constrained[3*node+2] = true
			}
		}
	}
	for k := 0; k < nnz; k++ {
		for j := 0; j < nny; j++ {
			for i := 0; i < nnx; i++ {
				n := g.NodeID(i, j, k)
				if !active[n] {
					continue
				}
				if i == 0 {
					mark(n, XMin)
				}
				if i == nnx-1 {
					mark(n, XMax)
				}
				if j == 0 {
					mark(n, YMin)
				}
				if j == nny-1 {
					mark(n, YMax)
				}
				if k == 0 {
					mark(n, ZMin)
				}
				if k == nnz-1 {
					mark(n, ZMax)
				}
			}
		}
	}
	return constrained
}

func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}
