package fem

import (
	"fmt"
	"math"

	"emvia/internal/mat"
	"emvia/internal/mesh"
	"emvia/internal/par"
	"emvia/internal/telemetry"
	"emvia/internal/trace"
)

// Tensor is a symmetric Cauchy stress tensor in Voigt layout.
type Tensor struct {
	XX, YY, ZZ, XY, YZ, ZX float64
}

// Hydrostatic returns σ_H = (σxx+σyy+σzz)/3, the EM-relevant invariant
// (positive = tensile).
func (t Tensor) Hydrostatic() float64 {
	return (t.XX + t.YY + t.ZZ) / 3
}

// VonMises returns the von Mises equivalent stress, useful for sanity checks
// and visualization.
func (t Tensor) VonMises() float64 {
	d1 := t.XX - t.YY
	d2 := t.YY - t.ZZ
	d3 := t.ZZ - t.XX
	s := 0.5*(d1*d1+d2*d2+d3*d3) + 3*(t.XY*t.XY+t.YZ*t.YZ+t.ZX*t.ZX)
	if s < 0 {
		s = 0
	}
	return math.Sqrt(s)
}

// cellBlock is the number of cells per PrecomputeStress dispatch block.
const cellBlock = 512

// PrecomputeStress recovers and caches the element-centre stress tensor of
// every solid cell, partitioned across workers (0 = the worker count of the
// solve, which itself defaults to GOMAXPROCS). Each cell is computed
// independently from the displacement field, so the cached tensors are
// bit-identical for any worker count. Subsequent StressAt / HydrostaticAt /
// MaxHydrostaticInBox queries read the cache, which removes the repeated
// per-query recovery cost when scan boxes overlap.
func (r *Result) PrecomputeStress(workers int) {
	if r.sig != nil {
		return
	}
	if workers == 0 {
		workers = r.workers
	}
	g := r.model.Grid
	nx, ny, _ := g.CellDims()
	ncells := g.NumCells()
	sig := make([]Tensor, ncells)
	sigOK := make([]bool, ncells)
	stress0 := telemetry.Default().Histogram(telemetry.FEMStressSeconds).Start()
	stressSpan := trace.Default().Span("fem.stress")
	pool := par.Shared(workers)
	pool.Run(par.Blocks(ncells, cellBlock), func(b int) {
		lo := b * cellBlock
		hi := lo + cellBlock
		if hi > ncells {
			hi = ncells
		}
		for cid := lo; cid < hi; cid++ {
			i := cid % nx
			j := (cid / nx) % ny
			k := cid / (nx * ny)
			sig[cid], sigOK[cid] = r.computeStressAt(i, j, k)
		}
	})
	stressSpan()
	telemetry.Default().Histogram(telemetry.FEMStressSeconds).ObserveSince(stress0)
	r.sig, r.sigOK = sig, sigOK
}

// StressAt recovers the element-centre stress of cell (i,j,k):
// σ = D·(B·u − ε_th). ok is false for holes (mat.None). After
// PrecomputeStress it is a cache lookup.
func (r *Result) StressAt(i, j, k int) (Tensor, bool) {
	if r.sig != nil {
		cid := r.model.Grid.CellID(i, j, k)
		return r.sig[cid], r.sigOK[cid]
	}
	return r.computeStressAt(i, j, k)
}

func (r *Result) computeStressAt(i, j, k int) (Tensor, bool) {
	g := r.model.Grid
	id := g.Material(i, j, k)
	if id == mat.None {
		return Tensor{}, false
	}
	p, err := mat.Properties(id)
	if err != nil {
		panic(fmt.Sprintf("fem: unreachable: painted cell has unknown material: %v", err))
	}
	dx, dy, dz := g.CellSize(i, j, k)
	grad := shapeGrad(dx, dy, dz, 0, 0, 0)
	nodes := g.CellNodes(i, j, k)

	// Strain at element centre: ε = B·u_e.
	var eps [6]float64
	for a := 0; a < 8; a++ {
		ux := r.U[3*nodes[a]]
		uy := r.U[3*nodes[a]+1]
		uz := r.U[3*nodes[a]+2]
		gx, gy, gz := grad[a][0], grad[a][1], grad[a][2]
		eps[0] += gx * ux
		eps[1] += gy * uy
		eps[2] += gz * uz
		eps[3] += gy*ux + gx*uy
		eps[4] += gz*uy + gy*uz
		eps[5] += gz*ux + gx*uz
	}
	// Subtract thermal strain.
	eth := p.CTE * r.model.DeltaT
	eps[0] -= eth
	eps[1] -= eth
	eps[2] -= eth

	d := elastD(p)
	var sig [6]float64
	for i2 := 0; i2 < 6; i2++ {
		s := 0.0
		for j2 := 0; j2 < 6; j2++ {
			s += d[i2*6+j2] * eps[j2]
		}
		sig[i2] = s
	}
	return Tensor{XX: sig[0], YY: sig[1], ZZ: sig[2], XY: sig[3], YZ: sig[4], ZX: sig[5]}, true
}

// HydrostaticAt returns the element-centre hydrostatic stress of cell
// (i,j,k); ok is false for holes.
func (r *Result) HydrostaticAt(i, j, k int) (float64, bool) {
	t, ok := r.StressAt(i, j, k)
	if !ok {
		return 0, false
	}
	return t.Hydrostatic(), true
}

// MaxHydrostaticInBox scans all cells of the given material whose centres lie
// inside the box and returns the peak (most tensile) hydrostatic stress.
// found is false when no matching cell exists.
func (r *Result) MaxHydrostaticInBox(b mesh.Box, id mat.ID) (peak float64, found bool) {
	g := r.model.Grid
	nx, ny, nz := g.CellDims()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if g.Material(i, j, k) != id {
					continue
				}
				cx, cy, cz := g.CellCenter(i, j, k)
				if !b.Contains(cx, cy, cz) {
					continue
				}
				h, _ := r.HydrostaticAt(i, j, k)
				if !found || h > peak {
					peak = h
					found = true
				}
			}
		}
	}
	return peak, found
}

// LineScanX samples the hydrostatic stress along the x direction at fixed
// (y, z): for each cell column it reports the cell-centre x coordinate and
// σ_H of the cell containing (x, y, z). Cells that are holes are skipped.
func (r *Result) LineScanX(y, z float64) (xs, sigmaH []float64) {
	g := r.model.Grid
	_, j, k, ok := g.FindCell(g.X[0], y, z)
	if !ok {
		return nil, nil
	}
	nx, _, _ := g.CellDims()
	for i := 0; i < nx; i++ {
		h, ok := r.HydrostaticAt(i, j, k)
		if !ok {
			continue
		}
		cx, _, _ := g.CellCenter(i, j, k)
		xs = append(xs, cx)
		sigmaH = append(sigmaH, h)
	}
	return xs, sigmaH
}
