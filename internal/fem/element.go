package fem

import (
	"math"

	"emvia/internal/mat"
)

// Natural-coordinate signs of the eight hex8 nodes, matching
// mesh.Grid.CellNodes ordering (bottom face CCW, then top face).
var hexSign = [8][3]float64{
	{-1, -1, -1}, {1, -1, -1}, {1, 1, -1}, {-1, 1, -1},
	{-1, -1, 1}, {1, -1, 1}, {1, 1, 1}, {-1, 1, 1},
}

// gauss2 holds the two-point Gauss abscissae on [-1, 1] (weights are 1).
var gauss2 = [2]float64{-1 / math.Sqrt(3.0), 1 / math.Sqrt(3.0)}

// elastD fills the 6×6 isotropic elasticity matrix in engineering Voigt
// order [εxx εyy εzz γxy γyz γzx].
func elastD(p mat.Elastic) [36]float64 {
	lambda, mu := p.Lame()
	var d [36]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				d[i*6+j] = lambda + 2*mu
			} else {
				d[i*6+j] = lambda
			}
		}
	}
	d[3*6+3] = mu
	d[4*6+4] = mu
	d[5*6+5] = mu
	return d
}

// shapeGrad fills dN/dx for the 8 nodes of an axis-aligned box element of
// size (dx,dy,dz) at natural coordinates (xi,eta,zeta).
func shapeGrad(dx, dy, dz, xi, eta, zeta float64) [8][3]float64 {
	var g [8][3]float64
	for a := 0; a < 8; a++ {
		sx, sy, sz := hexSign[a][0], hexSign[a][1], hexSign[a][2]
		// dN/dξ · dξ/dx with dξ/dx = 2/dx for a box element.
		g[a][0] = sx * (1 + sy*eta) * (1 + sz*zeta) / 8 * 2 / dx
		g[a][1] = sy * (1 + sx*xi) * (1 + sz*zeta) / 8 * 2 / dy
		g[a][2] = sz * (1 + sx*xi) * (1 + sy*eta) / 8 * 2 / dz
	}
	return g
}

// bMatrix fills the 6×24 strain-displacement matrix from shape gradients.
func bMatrix(grad [8][3]float64) [6 * 24]float64 {
	var b [6 * 24]float64
	for a := 0; a < 8; a++ {
		gx, gy, gz := grad[a][0], grad[a][1], grad[a][2]
		c := 3 * a
		b[0*24+c] = gx   // εxx ← u_x
		b[1*24+c+1] = gy // εyy ← u_y
		b[2*24+c+2] = gz // εzz ← u_z
		b[3*24+c] = gy   // γxy
		b[3*24+c+1] = gx
		b[4*24+c+1] = gz // γyz
		b[4*24+c+2] = gy
		b[5*24+c] = gz // γzx
		b[5*24+c+2] = gx
	}
	return b
}

// elemStiffness computes the 24×24 stiffness matrix and the 24-entry thermal
// force vector of an axis-aligned box element.
func elemStiffness(dx, dy, dz float64, p mat.Elastic, deltaT float64) (ke [24 * 24]float64, fe [24]float64) {
	d := elastD(p)
	detJw := dx * dy * dz / 8 // detJ × unit Gauss weight
	// Thermal stress vector D·ε_th with ε_th = αΔT[1,1,1,0,0,0].
	eth := p.CTE * deltaT
	var dEth [6]float64
	for i := 0; i < 6; i++ {
		dEth[i] = (d[i*6+0] + d[i*6+1] + d[i*6+2]) * eth
	}
	for _, xi := range gauss2 {
		for _, eta := range gauss2 {
			for _, zeta := range gauss2 {
				b := bMatrix(shapeGrad(dx, dy, dz, xi, eta, zeta))
				// db = D·B (6×24)
				var db [6 * 24]float64
				for i := 0; i < 6; i++ {
					for j := 0; j < 24; j++ {
						s := 0.0
						for k := 0; k < 6; k++ {
							s += d[i*6+k] * b[k*24+j]
						}
						db[i*24+j] = s
					}
				}
				// Ke += Bᵀ·(D·B)·detJw ; fe += Bᵀ·(D·ε_th)·detJw
				for i := 0; i < 24; i++ {
					for j := 0; j < 24; j++ {
						s := 0.0
						for k := 0; k < 6; k++ {
							s += b[k*24+i] * db[k*24+j]
						}
						ke[i*24+j] += s * detJw
					}
					s := 0.0
					for k := 0; k < 6; k++ {
						s += b[k*24+i] * dEth[k]
					}
					fe[i] += s * detJw
				}
			}
		}
	}
	return ke, fe
}

// elemCache memoizes element matrices by (size, material): rectilinear grids
// repeat cell sizes heavily, so this removes nearly all element integration
// cost.
type elemCache struct {
	deltaT float64
	m      map[elemKey]*elemData
}

type elemKey struct {
	dx, dy, dz float64
	id         mat.ID
}

type elemData struct {
	ke [24 * 24]float64
	fe [24]float64
}

func newElemCache(deltaT float64) *elemCache {
	return &elemCache{deltaT: deltaT, m: make(map[elemKey]*elemData)}
}

func (c *elemCache) get(dx, dy, dz float64, id mat.ID, p mat.Elastic) (*[24 * 24]float64, *[24]float64) {
	k := elemKey{dx, dy, dz, id}
	if d, ok := c.m[k]; ok {
		return &d.ke, &d.fe
	}
	d := &elemData{}
	d.ke, d.fe = elemStiffness(dx, dy, dz, p, c.deltaT)
	c.m[k] = d
	return &d.ke, &d.fe
}
