package fem

import (
	"math"

	"emvia/internal/mat"
)

// Natural-coordinate signs of the eight hex8 nodes, matching
// mesh.Grid.CellNodes ordering (bottom face CCW, then top face).
var hexSign = [8][3]float64{
	{-1, -1, -1}, {1, -1, -1}, {1, 1, -1}, {-1, 1, -1},
	{-1, -1, 1}, {1, -1, 1}, {1, 1, 1}, {-1, 1, 1},
}

// gauss2 holds the two-point Gauss abscissae on [-1, 1] (weights are 1).
var gauss2 = [2]float64{-1 / math.Sqrt(3.0), 1 / math.Sqrt(3.0)}

// elastD fills the 6×6 isotropic elasticity matrix in engineering Voigt
// order [εxx εyy εzz γxy γyz γzx].
func elastD(p mat.Elastic) [36]float64 {
	lambda, mu := p.Lame()
	var d [36]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				d[i*6+j] = lambda + 2*mu
			} else {
				d[i*6+j] = lambda
			}
		}
	}
	d[3*6+3] = mu
	d[4*6+4] = mu
	d[5*6+5] = mu
	return d
}

// shapeGrad fills dN/dx for the 8 nodes of an axis-aligned box element of
// size (dx,dy,dz) at natural coordinates (xi,eta,zeta).
func shapeGrad(dx, dy, dz, xi, eta, zeta float64) [8][3]float64 {
	var g [8][3]float64
	for a := 0; a < 8; a++ {
		sx, sy, sz := hexSign[a][0], hexSign[a][1], hexSign[a][2]
		// dN/dξ · dξ/dx with dξ/dx = 2/dx for a box element.
		g[a][0] = sx * (1 + sy*eta) * (1 + sz*zeta) / 8 * 2 / dx
		g[a][1] = sy * (1 + sx*xi) * (1 + sz*zeta) / 8 * 2 / dy
		g[a][2] = sz * (1 + sx*xi) * (1 + sy*eta) / 8 * 2 / dz
	}
	return g
}

// bMatrix fills the 6×24 strain-displacement matrix from shape gradients.
func bMatrix(grad [8][3]float64) [6 * 24]float64 {
	var b [6 * 24]float64
	for a := 0; a < 8; a++ {
		gx, gy, gz := grad[a][0], grad[a][1], grad[a][2]
		c := 3 * a
		b[0*24+c] = gx   // εxx ← u_x
		b[1*24+c+1] = gy // εyy ← u_y
		b[2*24+c+2] = gz // εzz ← u_z
		b[3*24+c] = gy   // γxy
		b[3*24+c+1] = gx
		b[4*24+c+1] = gz // γyz
		b[4*24+c+2] = gy
		b[5*24+c] = gz // γzx
		b[5*24+c+2] = gx
	}
	return b
}

// elemStiffness computes the 24×24 stiffness matrix and the 24-entry thermal
// force vector of an axis-aligned box element.
//
// The Bᵀ·D·B product exploits the sparsity of the isotropic case instead of
// dense 6-length inner loops: each B column has exactly three nonzeros (one
// normal strain, two shears), so D·B is written directly from the shape
// gradients and each ke entry needs three multiply-adds. The thermal load
// collapses to fe(3a+c) = (3λ+2μ)·αΔT·∂N_a/∂x_c per Gauss point because the
// shear rows of D·ε_th vanish for an isotropic thermal strain.
func elemStiffness(dx, dy, dz float64, p mat.Elastic, deltaT float64) (ke [24 * 24]float64, fe [24]float64) {
	lambda, mu := p.Lame()
	lam2mu := lambda + 2*mu
	detJw := dx * dy * dz / 8 // detJ × unit Gauss weight
	fth := (3*lambda + 2*mu) * p.CTE * deltaT * detJw
	for _, xi := range gauss2 {
		for _, eta := range gauss2 {
			for _, zeta := range gauss2 {
				grad := shapeGrad(dx, dy, dz, xi, eta, zeta)
				// db = D·B (6×24) written from the B-column structure.
				var db [6 * 24]float64
				for b := 0; b < 8; b++ {
					gx, gy, gz := grad[b][0], grad[b][1], grad[b][2]
					jx := 3 * b
					db[0*24+jx] = lam2mu * gx
					db[1*24+jx] = lambda * gx
					db[2*24+jx] = lambda * gx
					db[3*24+jx] = mu * gy
					db[5*24+jx] = mu * gz
					db[0*24+jx+1] = lambda * gy
					db[1*24+jx+1] = lam2mu * gy
					db[2*24+jx+1] = lambda * gy
					db[3*24+jx+1] = mu * gx
					db[4*24+jx+1] = mu * gz
					db[0*24+jx+2] = lambda * gz
					db[1*24+jx+2] = lambda * gz
					db[2*24+jx+2] = lam2mu * gz
					db[4*24+jx+2] = mu * gy
					db[5*24+jx+2] = mu * gx
				}
				// ke += Bᵀ·(D·B)·detJw, three terms per row from the same
				// B-column structure.
				for a := 0; a < 8; a++ {
					gx, gy, gz := grad[a][0], grad[a][1], grad[a][2]
					rx := 3 * a * 24
					ry := rx + 24
					rz := ry + 24
					for j := 0; j < 24; j++ {
						ke[rx+j] += (gx*db[0*24+j] + gy*db[3*24+j] + gz*db[5*24+j]) * detJw
						ke[ry+j] += (gy*db[1*24+j] + gx*db[3*24+j] + gz*db[4*24+j]) * detJw
						ke[rz+j] += (gz*db[2*24+j] + gy*db[4*24+j] + gx*db[5*24+j]) * detJw
					}
					fe[3*a] += gx * fth
					fe[3*a+1] += gy * fth
					fe[3*a+2] += gz * fth
				}
			}
		}
	}
	return ke, fe
}

// elemKey identifies a distinct element integration: rectilinear grids
// repeat (size, material) combinations heavily, so assembly integrates each
// distinct key once (see assemble.go) instead of once per cell.
type elemKey struct {
	dx, dy, dz float64
	id         mat.ID
}

type elemData struct {
	ke [24 * 24]float64
	fe [24]float64
}
