// Package profiling wires the standard runtime/pprof CPU and heap profiles
// into command-line tools behind -cpuprofile / -memprofile flags, so the
// Monte-Carlo hot path can be profiled on real workloads without ad-hoc
// instrumentation.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session is an active profiling session. The zero value (from Start with
// empty paths) is inert: Stop on it is a no-op.
type Session struct {
	cpuFile *os.File
	memPath string
}

// Start begins CPU profiling to cpuPath and schedules a heap snapshot to
// memPath at Stop. Either path may be empty to disable that profile. The
// caller must call Stop before exiting, including on error paths —
// os.Exit skips deferred calls, so commands should funnel exits through a
// single point after Stop.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: create CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
		s.cpuFile = f
	}
	return s, nil
}

// Stop finishes the CPU profile and writes the heap profile. It is safe to
// call on a session with neither profile enabled, and idempotent.
func (s *Session) Stop() error {
	var first error
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("profiling: close CPU profile: %w", err)
		}
		s.cpuFile = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("profiling: create heap profile: %w", err)
			}
		} else {
			runtime.GC() // snapshot live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("profiling: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("profiling: close heap profile: %w", err)
			}
		}
		s.memPath = ""
	}
	return first
}
