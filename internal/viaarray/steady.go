package viaarray

import (
	"fmt"
	"math"

	"emvia/internal/steady"
)

// ArrayScreen is the steady-state classification of one via array's stack:
// the two wire chains screened as interconnect trees and every via of the
// array classified immortal/mortal against a critical-stress quantile.
type ArrayScreen struct {
	// Wire is the tree-level screen of the bottom and top chains (two
	// trees; the vias' liner barriers keep them separate).
	Wire *steady.Report
	// ViaStress, ViaMargin and ViaMortal classify each via in flat
	// row-major order (the Array component order): steady stress cap at
	// the via barriers including its thermomechanical pre-stress, headroom
	// to the critical stress (negative = mortal), and the verdict.
	ViaStress []float64
	ViaMargin []float64
	ViaMortal []bool
	// MortalVias counts the mortal entries.
	MortalVias int
	// SigmaCrit is the resolved critical-stress threshold, Pa.
	SigmaCrit float64
}

// MortalFraction is the fraction of vias classified mortal.
func (s *ArrayScreen) MortalFraction() float64 {
	if len(s.ViaMortal) == 0 {
		return 0
	}
	return float64(s.MortalVias) / float64(len(s.ViaMortal))
}

// SteadyScreen classifies the pristine array against the steady-state
// stress of its corner-fed network: each chain is walked once as an
// interconnect tree (σ = χ·(V̄ − V)) and each via is screened on the
// unsigned steady deviation at its two junction nodes plus half its own
// drop, with its thermomechanical pre-stress added, against the
// critQuantile quantile of the critical-stress distribution (0 selects
// 1e-3). The screen always evaluates the physical corner-fed network —
// UniformFeed is a crowding-free idealization for sensitivity studies and
// has no voltage profile to screen.
func (cfg Config) SteadyScreen(critQuantile float64) (*ArrayScreen, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if critQuantile == 0 {
		critQuantile = 1e-3
	}
	if critQuantile < 0 || critQuantile >= 1 {
		return nil, fmt.Errorf("viaarray: critical-stress quantile %g outside (0,1)", critQuantile)
	}
	a, err := New(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.N
	n2 := n * n
	a.alive = make([]bool, n2)
	for i := range a.alive {
		a.alive[i] = true
	}
	v, err := a.solveNetwork(a.totalCurrent)
	if err != nil {
		return nil, err
	}
	// Two chains, vias excluded: bottom columns 0..n−1, top rows n..2n−1.
	// No blocked nodes — the modeled metal ends at the feed and extraction
	// terminals, so each chain conserves its own atoms.
	sg := &steady.Graph{
		NumNodes: 2 * n,
		V:        v,
		Blocked:  make([]bool, 2*n),
	}
	for i := 0; i < n-1; i++ {
		sg.Branches = append(sg.Branches,
			steady.Branch{A: i, B: i + 1},
			steady.Branch{A: n + i, B: n + i + 1})
	}
	dist, err := cfg.EM.SigmaCDist()
	if err != nil {
		return nil, fmt.Errorf("viaarray: critical-stress distribution: %w", err)
	}
	sigmaCrit := dist.Quantile(critQuantile)
	rep, err := steady.Screen(sg, steady.Config{EM: cfg.EM, SigmaCrit: sigmaCrit})
	if err != nil {
		return nil, err
	}
	out := &ArrayScreen{
		Wire:      rep,
		ViaStress: make([]float64, n2),
		ViaMargin: make([]float64, n2),
		ViaMortal: make([]bool, n2),
		SigmaCrit: sigmaCrit,
	}
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			k := a.viaIndex(col, row)
			dev := math.Abs(rep.Stress[col])
			if d := math.Abs(rep.Stress[n+row]); d > dev {
				dev = d
			}
			dev += rep.Chi * math.Abs(v[col]-v[n+row]) / 2
			stress := cfg.SigmaT[row][col] + dev
			out.ViaStress[k] = stress
			out.ViaMargin[k] = sigmaCrit - stress
			if a.totalCurrent > 0 && stress >= sigmaCrit {
				out.ViaMortal[k] = true
				out.MortalVias++
			}
		}
	}
	return out, nil
}
