// Package viaarray models an n×n power-grid via array as a redundant
// electrical system (paper §4): each via is a failable component whose TTF
// follows the stress-dependent nucleation model of package emdist, and whose
// current is set by a resistive network that captures current crowding and
// the redistribution that follows via failures.
//
// The network has one bottom-wire node per via column and one top-wire node
// per via row; via (col, row) bridges them. Current enters the bottom wire
// on its x− side and leaves the top wire on its y+ side (the canonical
// corner-feed of a power-grid mesh intersection), so perimeter vias near the
// feed carry more current than interior vias. When vias fail they are
// removed from the network and the survivors inherit their current, aging
// faster (TTF ∝ 1/j²).
package viaarray

import (
	"fmt"
	"math"
	"math/rand"

	"emvia/internal/cudd"
	"emvia/internal/emdist"
	"emvia/internal/phys"
	"emvia/internal/solver"
)

// FeedMode selects how current enters and leaves the array network.
type FeedMode int

// Feed modes.
const (
	// CornerFeed injects at the first bottom column and extracts at the
	// last top row: the default, maximizing current crowding.
	CornerFeed FeedMode = iota
	// UniformFeed forces equal current through every via (no crowding);
	// used by the ablation benchmarks to isolate the crowding effect.
	UniformFeed
)

// Config describes a via array system.
type Config struct {
	// N is the array dimension (n×n vias).
	N int
	// SigmaT is the per-via thermomechanical stress, Pa, [row][col]
	// (row = y index, col = x index), from the FEA characterization.
	SigmaT [][]float64
	// EM is the nucleation model parameter set.
	EM emdist.Params
	// CurrentDensity is the total array current density, A/m², over
	// ViaArea (paper: 1e10 A/m²).
	CurrentDensity float64
	// ViaArea is the summed via cross-section, m² (paper: 1 µm²).
	ViaArea float64
	// RVia is the per-via resistance, Ω.
	RVia float64
	// RSegBottom and RSegTop are the wire resistances between adjacent via
	// columns (bottom wire) and rows (top wire), Ω.
	RSegBottom, RSegTop float64
	// FailK is the array failure criterion n_F: the array is deemed failed
	// when FailK vias have failed. n² means open circuit (R = ∞); with the
	// gap-free parallel approximation of equation (5), n²/2 corresponds to
	// R = 2×.
	FailK int
	// Feed selects the current feed topology.
	Feed FeedMode
	// DisableAging freezes the damage rate at 1 even after current
	// redistribution, ignoring the TTF ∝ 1/j² acceleration of survivors.
	// Used by the ablation benchmarks to isolate the aging effect.
	DisableAging bool
}

// FromStructure derives the electrical configuration from a Cu DD structure
// and its characterized per-via stresses. rhoViaFactor scales the copper
// resistivity to account for liner and size effects in the via (typical ~5);
// zero selects 5.
func FromStructure(p cudd.Params, sigmaT [][]float64, em emdist.Params, j float64, failK int, rhoViaFactor float64) (Config, error) {
	p, err := p.Validate()
	if err != nil {
		return Config{}, err
	}
	if rhoViaFactor == 0 {
		rhoViaFactor = 5
	}
	n := p.ArrayN
	aVia := p.ViaArea / float64(n*n)
	pitch := p.Pitch()
	tBottom := p.MetalThicknessIntermediate
	if p.LayerPair.Lower == cudd.Top {
		tBottom = p.MetalThicknessTop
	}
	tTop := p.MetalThicknessIntermediate
	if p.LayerPair.Upper == cudd.Top {
		tTop = p.MetalThicknessTop
	}
	cfg := Config{
		N:              n,
		SigmaT:         sigmaT,
		EM:             em,
		CurrentDensity: j,
		ViaArea:        p.ViaArea,
		RVia:           rhoViaFactor * em.Rho * p.ViaHeight / aVia,
		RSegBottom:     em.Rho * pitch / (p.WireWidth * tBottom),
		RSegTop:        em.Rho * pitch / (p.WireWidth * tTop),
		FailK:          failK,
	}
	return cfg, nil
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("viaarray: N must be ≥ 1, got %d", c.N)
	}
	if len(c.SigmaT) != c.N {
		return fmt.Errorf("viaarray: SigmaT has %d rows, want %d", len(c.SigmaT), c.N)
	}
	for i, row := range c.SigmaT {
		if len(row) != c.N {
			return fmt.Errorf("viaarray: SigmaT row %d has %d entries, want %d", i, len(row), c.N)
		}
	}
	if err := c.EM.Validate(); err != nil {
		return err
	}
	if c.CurrentDensity <= 0 {
		return fmt.Errorf("viaarray: CurrentDensity must be positive, got %g", c.CurrentDensity)
	}
	if c.ViaArea <= 0 {
		return fmt.Errorf("viaarray: ViaArea must be positive, got %g", c.ViaArea)
	}
	if c.RVia <= 0 {
		return fmt.Errorf("viaarray: RVia must be positive, got %g", c.RVia)
	}
	if c.RSegBottom < 0 || c.RSegTop < 0 {
		return fmt.Errorf("viaarray: wire segment resistances must be ≥ 0")
	}
	if c.FailK < 1 || c.FailK > c.N*c.N {
		return fmt.Errorf("viaarray: FailK must be in [1, %d], got %d", c.N*c.N, c.FailK)
	}
	return nil
}

// DeltaRFraction evaluates equation (5): the fractional resistance increase
// of an n-via parallel array after nF failures, ΔR/R = nF/(n−nF). It is +Inf
// when all vias fail.
func DeltaRFraction(n, nF int) float64 {
	if nF >= n {
		return math.Inf(1)
	}
	return float64(nF) / float64(n-nF)
}

// FailKForResistanceFactor returns the smallest n_F whose equation-(5)
// resistance increase reaches the given factor: factor 2 means R = 2×R0
// (half the vias), +Inf means open circuit (all vias).
func FailKForResistanceFactor(n int, factor float64) int {
	total := n * n
	if math.IsInf(factor, 1) {
		return total
	}
	for k := 1; k <= total; k++ {
		if 1+DeltaRFraction(total, k) >= factor {
			return k
		}
	}
	return total
}

// Array is the mc.System implementation for one via array.
type Array struct {
	cfg Config

	totalCurrent float64   // A
	sigmaFlat    []float64 // row-major σ_T
	alive        []bool
	baseTTF      []float64
	j0, jNow     []float64
	failedCount  int
}

// New builds the system. The configuration is validated once here.
func New(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		cfg:          cfg,
		totalCurrent: cfg.CurrentDensity * cfg.ViaArea,
	}
	n := cfg.N
	a.sigmaFlat = make([]float64, 0, n*n)
	for _, row := range cfg.SigmaT {
		a.sigmaFlat = append(a.sigmaFlat, row...)
	}
	return a, nil
}

// NumComponents returns n².
func (a *Array) NumComponents() int { return a.cfg.N * a.cfg.N }

// viaIndex maps (col, row) to the flat component index.
func (a *Array) viaIndex(col, row int) int { return row*a.cfg.N + col }

// ComponentLabel names via i as "via(col,row)" for trace output
// (mc.ComponentLabeler).
func (a *Array) ComponentLabel(i int) string {
	return fmt.Sprintf("via(%d,%d)", i%a.cfg.N, i/a.cfg.N)
}

// BeginTrial resets the network and samples fresh via TTFs at the trial-
// start currents.
func (a *Array) BeginTrial(rng *rand.Rand) error {
	n2 := a.NumComponents()
	a.alive = make([]bool, n2)
	for i := range a.alive {
		a.alive[i] = true
	}
	a.failedCount = 0
	j, err := a.solveCurrents()
	if err != nil {
		return err
	}
	a.j0 = j
	a.jNow = append([]float64(nil), j...)
	a.baseTTF = make([]float64, n2)
	for i := 0; i < n2; i++ {
		a.baseTTF[i] = a.cfg.EM.SampleTTF(rng, a.sigmaFlat[i], a.j0[i])
	}
	return nil
}

// BaseTTF returns via i's sampled TTF.
func (a *Array) BaseTTF(i int) float64 { return a.baseTTF[i] }

// AgingRate returns (j_now/j_0)² for via i, the TTF ∝ 1/j² damage-rate
// scaling of equation (3).
func (a *Array) AgingRate(i int) float64 {
	if !a.alive[i] || a.j0[i] <= 0 {
		return 0
	}
	if a.cfg.DisableAging {
		return 1
	}
	r := a.jNow[i] / a.j0[i]
	return r * r
}

// Fail removes via i from the network and redistributes current.
func (a *Array) Fail(i int) error {
	if !a.alive[i] {
		return fmt.Errorf("viaarray: via %d already failed", i)
	}
	a.alive[i] = false
	a.failedCount++
	if a.failedCount == a.NumComponents() {
		for k := range a.jNow {
			a.jNow[k] = 0
		}
		return nil
	}
	j, err := a.solveCurrents()
	if err != nil {
		return err
	}
	a.jNow = j
	return nil
}

// Failed reports whether FailK vias have failed.
func (a *Array) Failed() (bool, error) {
	return a.failedCount >= a.cfg.FailK, nil
}

// FailedCount returns the number of failed vias in the current trial state.
func (a *Array) FailedCount() int { return a.failedCount }

// solveCurrents computes the per-via current density (A/m²) of the current
// network state.
func (a *Array) solveCurrents() ([]float64, error) {
	n := a.cfg.N
	n2 := n * n
	aliveCount := 0
	for _, al := range a.alive {
		if al {
			aliveCount++
		}
	}
	if aliveCount == 0 {
		return make([]float64, n2), nil
	}
	aVia := a.cfg.ViaArea / float64(n2)
	out := make([]float64, n2)

	if a.cfg.Feed == UniformFeed {
		per := a.totalCurrent / float64(aliveCount)
		for i := 0; i < n2; i++ {
			if a.alive[i] {
				out[i] = per / aVia
			}
		}
		return out, nil
	}

	v, err := a.solveNetwork(a.totalCurrent)
	if err != nil {
		return nil, err
	}
	gVia := 1 / a.cfg.RVia
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			k := a.viaIndex(col, row)
			if !a.alive[k] {
				continue
			}
			i := (v[col] - v[n+row]) * gVia
			out[k] = math.Abs(i) / aVia
		}
	}
	return out, nil
}

// solveNetwork solves the nodal system for an injected current at the feed
// terminal and returns the node voltages (bottom columns 0..n−1, top rows
// n..2n−1; the extraction terminal, the last top row, is ground with
// voltage 0).
func (a *Array) solveNetwork(injected float64) ([]float64, error) {
	n := a.cfg.N
	nn := 2 * n
	ground := nn - 1
	dim := nn - 1 // ground eliminated
	idx := func(node int) int {
		if node == ground {
			return -1
		}
		return node
	}
	g := make([]float64, dim*dim)
	stamp := func(p, q int, cond float64) {
		ip, iq := idx(p), idx(q)
		if ip >= 0 {
			g[ip*dim+ip] += cond
		}
		if iq >= 0 {
			g[iq*dim+iq] += cond
		}
		if ip >= 0 && iq >= 0 {
			g[ip*dim+iq] -= cond
			g[iq*dim+ip] -= cond
		}
	}
	// Wire chains. A zero segment resistance means the wire is ideal; use a
	// very large conductance rather than merging nodes.
	segCond := func(r float64) float64 {
		if r <= 0 {
			return 1e12
		}
		return 1 / r
	}
	for i := 0; i < n-1; i++ {
		stamp(i, i+1, segCond(a.cfg.RSegBottom))
		stamp(n+i, n+i+1, segCond(a.cfg.RSegTop))
	}
	gVia := 1 / a.cfg.RVia
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			if a.alive[a.viaIndex(col, row)] {
				stamp(col, n+row, gVia)
			}
		}
	}
	// A tiny leak to ground keeps the matrix SPD when parts of the network
	// are isolated from the extraction terminal (e.g. a whole row's vias
	// failed); the leak current is negligible at these conductance scales.
	for i := 0; i < dim; i++ {
		g[i*dim+i] += 1e-9 * gVia
	}
	rhs := make([]float64, dim)
	rhs[0] = injected

	ch, err := solver.NewDenseCholesky(g, dim)
	if err != nil {
		return nil, fmt.Errorf("viaarray: network factorization: %w", err)
	}
	sol, err := ch.Solve(rhs)
	if err != nil {
		return nil, fmt.Errorf("viaarray: network solve: %w", err)
	}
	v := make([]float64, nn)
	copy(v, sol)
	v[ground] = 0
	return v, nil
}

// Resistance returns the equivalent resistance (Ω) between the feed
// terminals in the current trial state; +Inf when every via has failed.
func (a *Array) Resistance() (float64, error) {
	if a.failedCount >= a.NumComponents() {
		return math.Inf(1), nil
	}
	if a.alive == nil {
		// Pristine array outside a trial: all vias alive.
		a.alive = make([]bool, a.NumComponents())
		for i := range a.alive {
			a.alive[i] = true
		}
	}
	return a.feedVoltage()
}

// feedVoltage solves the network with unit current and returns V(feed)/I,
// i.e. the feed-to-feed resistance.
func (a *Array) feedVoltage() (float64, error) {
	v, err := a.solveNetwork(1)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

// NominalResistance returns the pristine-array feed-to-feed resistance.
func (c Config) NominalResistance() (float64, error) {
	a, err := New(c)
	if err != nil {
		return 0, err
	}
	return a.Resistance()
}

// ReferenceYears is a convenience: the median single-via TTF at the array's
// mean stress and nominal per-via current, in years.
func (c Config) ReferenceYears() float64 {
	mean := 0.0
	for _, row := range c.SigmaT {
		for _, v := range row {
			mean += v
		}
	}
	mean /= float64(c.N * c.N)
	return phys.SecondsToYears(c.EM.MedianTTF(mean, c.CurrentDensity))
}
