package viaarray

import (
	"fmt"
	"math"
	"math/rand"

	"emvia/internal/mc"
	"emvia/internal/stat"
)

// TTFModel is the product of via-array characterization: a two-parameter
// lognormal TTF distribution at a reference array current, with the 1/I²
// scaling of equation (3) used to re-target it to the current an array
// actually carries in a power grid (paper §5.1: "the TTF of the via array is
// fitted to a two-parameter lognormal distribution that is sampled during
// power grid TTF analysis").
type TTFModel struct {
	// Dist is the fitted lognormal of the array TTF in seconds at
	// RefCurrent.
	Dist stat.LogNormal
	// RefCurrent is the total array current (A) of the characterization.
	RefCurrent float64
	// FailK is the via-array failure criterion the model was fitted for.
	FailK int
}

// Scale returns the TTF multiplier for an array carrying current (A):
// TTF ∝ 1/I², so arrays carrying less than the reference live longer.
func (m TTFModel) Scale(current float64) float64 {
	if current <= 0 {
		return math.Inf(1)
	}
	r := m.RefCurrent / current
	return r * r
}

// Sample draws an array TTF (seconds) at the given total current.
func (m TTFModel) Sample(rng *rand.Rand, current float64) float64 {
	s := m.Scale(current)
	if math.IsInf(s, 1) {
		return math.Inf(1)
	}
	return m.Dist.Sample(rng) * s
}

// CharResult is a via-array reliability characterization.
type CharResult struct {
	// Config echoes the characterized configuration.
	Config Config
	// MC holds the raw Monte-Carlo outcome (run to completion, so the
	// failure times of every n_F criterion are available).
	MC *mc.Result
	// Samples are the finite system TTFs (seconds) under Config.FailK.
	Samples []float64
	// Model is the lognormal fit of Samples at the reference current.
	Model TTFModel
}

// Characterize runs the Algorithm-1 Monte Carlo for the array and fits the
// lognormal TTF model. Trials follow the paper's N_trials (500 unless the
// caller needs tighter tails).
func Characterize(cfg Config, trials int, seed int64) (*CharResult, error) {
	return CharacterizeNamed(cfg, trials, seed, "")
}

// CharacterizeNamed is Characterize with an explicit trace run label (e.g.
// "array:Plus-shaped:3x3"); empty falls back to "viaarray".
func CharacterizeNamed(cfg Config, trials int, seed int64, traceLabel string) (*CharResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if traceLabel == "" {
		traceLabel = "viaarray"
	}
	res, err := mc.RunParallel(func() (mc.System, error) { return New(cfg) }, mc.Options{
		Trials:          trials,
		Seed:            seed,
		RunToCompletion: true,
		TraceLabel:      traceLabel,
	})
	if err != nil {
		return nil, fmt.Errorf("viaarray: characterization MC: %w", err)
	}
	samples := res.FiniteTTF()
	if len(samples) < 2 {
		return nil, fmt.Errorf("viaarray: only %d finite TTF samples; array never reaches criterion n_F=%d", len(samples), cfg.FailK)
	}
	fit, err := stat.FitLogNormal(samples)
	if err != nil {
		return nil, fmt.Errorf("viaarray: fitting TTF lognormal: %w", err)
	}
	return &CharResult{
		Config:  cfg,
		MC:      res,
		Samples: samples,
		Model: TTFModel{
			Dist:       fit,
			RefCurrent: cfg.CurrentDensity * cfg.ViaArea,
			FailK:      cfg.FailK,
		},
	}, nil
}

// CriterionSamples returns the system TTFs under an alternative criterion
// n_F (the k-th via failure times), reusing the run-to-completion events.
func (c *CharResult) CriterionSamples(nF int) []float64 {
	return c.MC.KthFailureTimes(nF)
}

// CriterionModel fits a TTFModel for an alternative criterion n_F from the
// same Monte-Carlo run.
func (c *CharResult) CriterionModel(nF int) (TTFModel, error) {
	samples := c.CriterionSamples(nF)
	if len(samples) < 2 {
		return TTFModel{}, fmt.Errorf("viaarray: criterion n_F=%d has %d samples", nF, len(samples))
	}
	fit, err := stat.FitLogNormal(samples)
	if err != nil {
		return TTFModel{}, err
	}
	return TTFModel{
		Dist:       fit,
		RefCurrent: c.Config.CurrentDensity * c.Config.ViaArea,
		FailK:      nF,
	}, nil
}
