package viaarray

import (
	"math"
	"testing"
)

func TestArraySteadyScreenShape(t *testing.T) {
	cfg := testConfig(4, 8)
	s, err := cfg.SteadyScreen(0)
	if err != nil {
		t.Fatal(err)
	}
	n2 := cfg.N * cfg.N
	if len(s.ViaStress) != n2 || len(s.ViaMargin) != n2 || len(s.ViaMortal) != n2 {
		t.Fatal("screen arrays not n² long")
	}
	if s.Wire == nil || s.Wire.Trees != 2 {
		t.Fatalf("chains should form 2 trees, got %+v", s.Wire)
	}
	mortal := 0
	for k := 0; k < n2; k++ {
		if math.IsNaN(s.ViaStress[k]) || math.IsInf(s.ViaStress[k], 0) {
			t.Fatalf("via %d stress %g", k, s.ViaStress[k])
		}
		if s.ViaMortal[k] != (s.ViaMargin[k] <= 0) {
			t.Fatalf("via %d verdict inconsistent with margin %g", k, s.ViaMargin[k])
		}
		if s.ViaMortal[k] {
			mortal++
		}
	}
	if mortal != s.MortalVias {
		t.Fatalf("MortalVias %d, counted %d", s.MortalVias, mortal)
	}
	if f := s.MortalFraction(); f < 0 || f > 1 {
		t.Fatalf("mortal fraction %g", f)
	}
}

func TestArraySteadyScreenCrowding(t *testing.T) {
	// Corner feed crowds current into the near-corner vias; their steady
	// stress must top the far corner's.
	cfg := testConfig(4, 8)
	cfg.RSegBottom, cfg.RSegTop = 0.2, 0.2 // pronounced crowding
	s, err := cfg.SteadyScreen(0)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.N
	near := s.ViaStress[0]            // (col 0, row 0): feed side
	far := s.ViaStress[n*n-1]         // (col n−1, row n−1): extraction side
	mid := s.ViaStress[(n/2)*n+(n/2)] // interior
	if near <= mid {
		t.Errorf("feed-corner stress %g not above interior %g", near, mid)
	}
	t.Logf("steady via stress: near %.1f MPa, mid %.1f MPa, far %.1f MPa (σ_crit %.1f MPa)",
		near/1e6, mid/1e6, far/1e6, s.SigmaCrit/1e6)
}

func TestArraySteadyScreenThresholds(t *testing.T) {
	// Weak drive and modest pre-stress: everything immortal.
	cfg := testConfig(3, 9)
	cfg.CurrentDensity = 1e6
	s, err := cfg.SteadyScreen(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.MortalVias != 0 {
		t.Errorf("weakly driven array has %d mortal vias", s.MortalVias)
	}
	// Pre-stress above any plausible critical stress: everything mortal.
	hot := testConfig(3, 9)
	hot.SigmaT = uniformSigma(3, 500e6)
	s, err = hot.SteadyScreen(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.MortalVias != 9 {
		t.Errorf("over-stressed array has %d mortal vias, want 9", s.MortalVias)
	}
	// Quantile validation.
	if _, err := cfg.SteadyScreen(1.5); err == nil {
		t.Error("accepted quantile ≥ 1")
	}
	bad := testConfig(2, 4)
	bad.N = 0
	if _, err := bad.SteadyScreen(0); err == nil {
		t.Error("accepted invalid config")
	}
}
