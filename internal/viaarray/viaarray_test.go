package viaarray

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emvia/internal/cudd"
	"emvia/internal/emdist"
	"emvia/internal/phys"
	"emvia/internal/stat"
)

// uniformSigma builds an n×n stress matrix with constant σ_T.
func uniformSigma(n int, v float64) [][]float64 {
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			s[i][j] = v
		}
	}
	return s
}

// testConfig returns a sane configuration for an n×n array.
func testConfig(n, failK int) Config {
	return Config{
		N:              n,
		SigmaT:         uniformSigma(n, 230e6),
		EM:             emdist.Default(),
		CurrentDensity: 1e10,
		ViaArea:        1e-12,
		RVia:           0.15 * float64(n*n), // per-via scales with n²
		RSegBottom:     0.02,
		RSegTop:        0.02,
		FailK:          failK,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(2, 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.SigmaT = uniformSigma(3, 1e8) },
		func(c *Config) { c.SigmaT[1] = c.SigmaT[1][:1] },
		func(c *Config) { c.CurrentDensity = 0 },
		func(c *Config) { c.ViaArea = -1 },
		func(c *Config) { c.RVia = 0 },
		func(c *Config) { c.RSegBottom = -1 },
		func(c *Config) { c.FailK = 0 },
		func(c *Config) { c.FailK = 5 },
		func(c *Config) { c.EM.D0 = 0 },
	}
	for i, mutate := range cases {
		c := testConfig(2, 4)
		c.SigmaT = uniformSigma(2, 230e6) // fresh copy per case
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDeltaRFraction(t *testing.T) {
	// Paper's worked example: 4×4 (n=16), one failure → 1/15 ≈ 6.7 %;
	// eight failures → 100 %.
	if got := DeltaRFraction(16, 1); math.Abs(got-1.0/15) > 1e-12 {
		t.Errorf("ΔR/R(16,1) = %g, want 1/15", got)
	}
	if got := DeltaRFraction(16, 8); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("ΔR/R(16,8) = %g, want 1", got)
	}
	if got := DeltaRFraction(16, 16); !math.IsInf(got, 1) {
		t.Errorf("ΔR/R(16,16) = %g, want +Inf", got)
	}
}

func TestFailKForResistanceFactor(t *testing.T) {
	if got := FailKForResistanceFactor(4, 2); got != 8 {
		t.Errorf("FailK(4×4, R=2×) = %d, want 8", got)
	}
	if got := FailKForResistanceFactor(8, 2); got != 32 {
		t.Errorf("FailK(8×8, R=2×) = %d, want 32", got)
	}
	if got := FailKForResistanceFactor(4, math.Inf(1)); got != 16 {
		t.Errorf("FailK(4×4, R=∞) = %d, want 16", got)
	}
	if got := FailKForResistanceFactor(1, math.Inf(1)); got != 1 {
		t.Errorf("FailK(1×1, R=∞) = %d, want 1", got)
	}
}

func TestCurrentConservation(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		cfg := testConfig(n, n*n)
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		if err := a.BeginTrial(rng); err != nil {
			t.Fatal(err)
		}
		aVia := cfg.ViaArea / float64(n*n)
		total := 0.0
		for i := 0; i < n*n; i++ {
			total += a.j0[i] * aVia
		}
		want := cfg.CurrentDensity * cfg.ViaArea
		if math.Abs(total-want)/want > 1e-6 {
			t.Errorf("n=%d: via currents sum to %g, want %g", n, total, want)
		}
	}
}

func TestCurrentCrowding(t *testing.T) {
	// With corner feed, the via nearest the feed/extraction path carries
	// more current than the most remote via.
	cfg := testConfig(4, 16)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.BeginTrial(rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	// Feed at bottom column 0, extraction at top row n−1: via (0, n−1) is
	// on the shortest path, via (n−1, 0) on the longest.
	near := a.j0[a.viaIndex(0, 3)]
	far := a.j0[a.viaIndex(3, 0)]
	if near <= far {
		t.Errorf("no crowding: near-feed j=%g ≤ far j=%g", near, far)
	}
	// Uniform feed removes crowding entirely.
	cfg.Feed = UniformFeed
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.BeginTrial(rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 16; i++ {
		if math.Abs(u.j0[i]-u.j0[0]) > 1e-9*u.j0[0] {
			t.Errorf("uniform feed: via %d j=%g differs from via 0 j=%g", i, u.j0[i], u.j0[0])
		}
	}
}

func TestFailureRedistributesCurrent(t *testing.T) {
	cfg := testConfig(2, 4)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.BeginTrial(rand.New(rand.NewSource(5))); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), a.jNow...)
	if err := a.Fail(0); err != nil {
		t.Fatal(err)
	}
	if a.AgingRate(0) != 0 {
		t.Error("failed via still aging")
	}
	// Survivors must carry more total current than before.
	sumAfter := 0.0
	for i := 1; i < 4; i++ {
		sumAfter += a.jNow[i]
		if a.AgingRate(i) < 1-1e-9 {
			t.Errorf("survivor %d aging rate %g < 1 after failure", i, a.AgingRate(i))
		}
	}
	sumBefore := before[1] + before[2] + before[3]
	if sumAfter <= sumBefore {
		t.Errorf("survivor current did not rise: %g vs %g", sumAfter, sumBefore)
	}
	// Double-fail is an error.
	if err := a.Fail(0); err == nil {
		t.Error("double Fail accepted")
	}
}

func TestResistanceFollowsEquation5(t *testing.T) {
	// With near-ideal wires the array is n² parallel vias and the
	// resistance trajectory must match equation (5).
	cfg := testConfig(4, 16)
	cfg.RSegBottom = 0
	cfg.RSegTop = 0
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.BeginTrial(rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	r0, err := a.Resistance()
	if err != nil {
		t.Fatal(err)
	}
	want0 := cfg.RVia / 16
	if math.Abs(r0-want0)/want0 > 1e-3 {
		t.Fatalf("nominal R = %g, want %g", r0, want0)
	}
	for nf := 1; nf <= 8; nf++ {
		if err := a.Fail(nf - 1); err != nil {
			t.Fatal(err)
		}
		r, err := a.Resistance()
		if err != nil {
			t.Fatal(err)
		}
		want := 1 + DeltaRFraction(16, nf)
		if got := r / r0; math.Abs(got-want)/want > 1e-3 {
			t.Errorf("after %d failures R/R0 = %g, want %g", nf, got, want)
		}
	}
}

func TestAllFailedResistanceInfinite(t *testing.T) {
	cfg := testConfig(1, 1)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.BeginTrial(rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	if err := a.Fail(0); err != nil {
		t.Fatal(err)
	}
	r, err := a.Resistance()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r, 1) {
		t.Errorf("fully failed array R = %g, want +Inf", r)
	}
	failed, err := a.Failed()
	if err != nil || !failed {
		t.Errorf("Failed() = %v, %v, want true", failed, err)
	}
}

func TestCharacterizeProducesLogNormalFit(t *testing.T) {
	cfg := testConfig(2, 4)
	res, err := Characterize(cfg, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 190 {
		t.Errorf("finite samples = %d/200", len(res.Samples))
	}
	if res.Model.Dist.Sigma <= 0 {
		t.Error("degenerate lognormal fit")
	}
	// KS distance between the empirical samples and the fit must be small
	// (the paper's justification for the lognormal handoff).
	e, err := stat.NewECDF(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if d := e.KSDistance(res.Model.Dist.CDF); d > 0.12 {
		t.Errorf("KS distance of lognormal fit = %g", d)
	}
}

func TestCriterionMonotone(t *testing.T) {
	// The k-th failure time grows with k: median TTF under n_F=1 <
	// n_F=half < n_F=all.
	cfg := testConfig(2, 4)
	res, err := Characterize(cfg, 300, 13)
	if err != nil {
		t.Fatal(err)
	}
	med := func(k int) float64 {
		s := res.CriterionSamples(k)
		e, err := stat.NewECDF(s)
		if err != nil {
			t.Fatalf("criterion %d: %v", k, err)
		}
		return e.Percentile(0.5)
	}
	m1, m2, m4 := med(1), med(2), med(4)
	if !(m1 < m2 && m2 < m4) {
		t.Errorf("criterion medians not increasing: %g, %g, %g", m1, m2, m4)
	}
	// CriterionModel works and scales with current.
	model, err := res.CriterionModel(2)
	if err != nil {
		t.Fatal(err)
	}
	if model.FailK != 2 {
		t.Errorf("model FailK = %d", model.FailK)
	}
	if s := model.Scale(model.RefCurrent / 2); math.Abs(s-4) > 1e-12 {
		t.Errorf("half current scale = %g, want 4", s)
	}
	if !math.IsInf(model.Scale(0), 1) {
		t.Error("zero current scale not +Inf")
	}
	if _, err := res.CriterionModel(99); err == nil {
		t.Error("accepted impossible criterion")
	}
}

// gradedSigma mimics the FEA stress maps: perimeter vias at the outer value,
// interior vias relaxing toward the inner value over two rings.
func gradedSigma(n int, perimeter, inner float64) [][]float64 {
	s := make([][]float64, n)
	for r := range s {
		s[r] = make([]float64, n)
		for c := range s[r] {
			ring := r
			if c < ring {
				ring = c
			}
			if v := n - 1 - r; v < ring {
				ring = v
			}
			if v := n - 1 - c; v < ring {
				ring = v
			}
			f := float64(ring) / 2
			if f > 1 {
				f = 1
			}
			s[r][c] = perimeter + (inner-perimeter)*f
		}
	}
	return s
}

func TestRedundancyOrdering(t *testing.T) {
	// Paper Fig 9: median/worst-case TTF of 1×1 < 4×4 < 8×8 under the
	// open-circuit criterion. As the paper notes, the redundancy benefit is
	// "magnified by the reduction in thermomechanical stress as we go from
	// 1×1 to 8×8": with uniform per-via stress the weakest-of-n² statistics
	// plus current-redistribution acceleration would cancel the redundancy
	// gain, so the graded FEA stress maps are essential input here.
	sigma := map[int][][]float64{
		1: {{260e6}},
		4: gradedSigma(4, 250e6, 222e6),
		8: gradedSigma(8, 250e6, 208e6),
	}
	meds := map[int]float64{}
	worst := map[int]float64{}
	for _, n := range []int{1, 4, 8} {
		cfg := testConfig(n, n*n)
		cfg.SigmaT = sigma[n]
		res, err := Characterize(cfg, 300, 17)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		e, err := stat.NewECDF(res.Samples)
		if err != nil {
			t.Fatal(err)
		}
		meds[n] = e.Percentile(0.5)
		worst[n] = e.Percentile(0.003)
	}
	t.Logf("median TTF (years): 1×1=%.2f 4×4=%.2f 8×8=%.2f",
		phys.SecondsToYears(meds[1]), phys.SecondsToYears(meds[4]), phys.SecondsToYears(meds[8]))
	t.Logf("0.3%%ile TTF (years): 1×1=%.2f 4×4=%.2f 8×8=%.2f",
		phys.SecondsToYears(worst[1]), phys.SecondsToYears(worst[4]), phys.SecondsToYears(worst[8]))
	if !(meds[1] < meds[4] && meds[4] < meds[8]) {
		t.Errorf("median redundancy ordering violated: %v", meds)
	}
	if !(worst[1] < worst[4] && worst[4] < worst[8]) {
		t.Errorf("worst-case redundancy ordering violated: %v", worst)
	}
}

func TestRelaxedCriterionExtendsTTF(t *testing.T) {
	// Fig 9's second axis: for the same 4×4 array, the R=∞ criterion
	// (all 16 vias) gives a longer TTF than R=2× (8 vias).
	cfg := testConfig(4, 16)
	cfg.SigmaT = gradedSigma(4, 250e6, 222e6)
	res, err := Characterize(cfg, 300, 23)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := stat.NewECDF(res.CriterionSamples(8))
	if err != nil {
		t.Fatal(err)
	}
	eInf, err := stat.NewECDF(res.CriterionSamples(16))
	if err != nil {
		t.Fatal(err)
	}
	if !(e2.Percentile(0.5) < eInf.Percentile(0.5)) {
		t.Errorf("R=2× median %g not below R=∞ median %g", e2.Percentile(0.5), eInf.Percentile(0.5))
	}
	if !(e2.Percentile(0.003) < eInf.Percentile(0.003)) {
		t.Errorf("R=2× worst case not below R=∞ worst case")
	}
}

func TestFromStructure(t *testing.T) {
	p := cudd.DefaultParams()
	sig := uniformSigma(4, 230e6)
	cfg, err := FromStructure(p, sig, emdist.Default(), 1e10, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("derived config invalid: %v", err)
	}
	if cfg.N != 4 || cfg.FailK != 16 {
		t.Errorf("derived N=%d FailK=%d", cfg.N, cfg.FailK)
	}
	if cfg.RVia <= 0 || cfg.RSegBottom <= 0 || cfg.RSegTop <= 0 {
		t.Error("derived resistances not positive")
	}
	// Nominal array resistance is independent of n (same total via area):
	// compare 4×4 and 8×8 within a tolerance that allows wire-segment
	// spreading differences.
	p8 := p
	p8.ArrayN = 8
	cfg8, err := FromStructure(p8, uniformSigma(8, 230e6), emdist.Default(), 1e10, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := cfg.NominalResistance()
	if err != nil {
		t.Fatal(err)
	}
	r8, err := cfg8.NominalResistance()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r4-r8)/r4 > 0.5 {
		t.Errorf("nominal resistance differs wildly between configs: %g vs %g", r4, r8)
	}
	// Invalid base params are rejected.
	bad := p
	bad.ArrayN = 0
	if _, err := FromStructure(bad, sig, emdist.Default(), 1e10, 1, 0); err == nil {
		t.Error("accepted invalid structure params")
	}
}

func TestReferenceYearsSane(t *testing.T) {
	cfg := testConfig(4, 16)
	y := cfg.ReferenceYears()
	if y < 0.5 || y > 100 {
		t.Errorf("reference median TTF = %g years, implausible", y)
	}
}

func TestModelSetSaveLoadRoundTrip(t *testing.T) {
	mk := func(med float64) TTFModel {
		return TTFModel{
			Dist:       stat.LogNormal{Mu: math.Log(med), Sigma: 0.2},
			RefCurrent: 0.01,
			FailK:      16,
		}
	}
	set := ModelSet{
		ArrayN: 4,
		FailK:  16,
		Models: map[cudd.Pattern]TTFModel{
			cudd.Plus:   mk(1e8),
			cudd.TShape: mk(1.2e8),
			cudd.LShape: mk(1.5e8),
		},
	}
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModelSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ArrayN != 4 || back.FailK != 16 {
		t.Errorf("round trip header: %+v", back)
	}
	for _, pat := range cudd.Patterns() {
		a, b := set.Models[pat], back.Models[pat]
		if a.Dist != b.Dist || a.RefCurrent != b.RefCurrent || a.FailK != b.FailK {
			t.Errorf("%v model changed: %+v vs %+v", pat, a, b)
		}
	}
}

func TestModelSetValidate(t *testing.T) {
	var buf bytes.Buffer
	bad := ModelSet{ArrayN: 0}
	if err := bad.Save(&buf); err == nil {
		t.Error("saved invalid set")
	}
	missing := ModelSet{ArrayN: 4, FailK: 8, Models: map[cudd.Pattern]TTFModel{}}
	if err := missing.Validate(); err == nil {
		t.Error("accepted missing patterns")
	}
	if _, err := LoadModelSet(bytes.NewBufferString("junk")); err == nil {
		t.Error("loaded junk")
	}
	if _, err := LoadModelSet(bytes.NewBufferString(`{"array_n":2,"fail_k":99}`)); err == nil {
		t.Error("loaded out-of-range criterion")
	}
}

// TestNetworkProperties: current conservation and linearity hold for random
// alive patterns of the via network.
func TestNetworkProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		cfg := testConfig(n, n*n)
		a, err := New(cfg)
		if err != nil {
			return false
		}
		if err := a.BeginTrial(rng); err != nil {
			return false
		}
		// Kill a random subset (never all).
		kills := rng.Intn(n*n - 1)
		for k := 0; k < kills; k++ {
			// pick a random alive via
			var alive []int
			for i, al := range a.alive {
				if al {
					alive = append(alive, i)
				}
			}
			if len(alive) <= 1 {
				break
			}
			if err := a.Fail(alive[rng.Intn(len(alive))]); err != nil {
				return false
			}
		}
		// Conservation: total surviving current equals the feed.
		aVia := cfg.ViaArea / float64(n*n)
		total := 0.0
		for i := range a.jNow {
			total += a.jNow[i] * aVia
		}
		want := cfg.CurrentDensity * cfg.ViaArea
		return math.Abs(total-want)/want < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestResistanceMonotoneUnderFailures: every failure strictly increases the
// array resistance.
func TestResistanceMonotoneUnderFailures(t *testing.T) {
	cfg := testConfig(3, 9)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if err := a.BeginTrial(rng); err != nil {
		t.Fatal(err)
	}
	prev, err := a.Resistance()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := a.Fail(i); err != nil {
			t.Fatal(err)
		}
		r, err := a.Resistance()
		if err != nil {
			t.Fatal(err)
		}
		if r <= prev {
			t.Fatalf("resistance not increasing after failure %d: %g ≤ %g", i, r, prev)
		}
		prev = r
	}
}
