package viaarray_test

import (
	"fmt"

	"emvia/internal/viaarray"
)

// Equation (5) of the paper: the redundancy arithmetic of a 16-via array.
// One failed via costs 6.7 % resistance; half the array costs 100 %.
func ExampleDeltaRFraction() {
	for _, nf := range []int{1, 4, 8} {
		fmt.Printf("n_F=%d: +%.1f%%\n", nf, 100*viaarray.DeltaRFraction(16, nf))
	}
	// Output:
	// n_F=1: +6.7%
	// n_F=4: +33.3%
	// n_F=8: +100.0%
}

// Failure criteria expressed as resistance factors map to via counts: the
// R=2× criterion of Fig 9 means half the vias, R=∞ means all of them.
func ExampleFailKForResistanceFactor() {
	fmt.Println("4x4 R=2x :", viaarray.FailKForResistanceFactor(4, 2))
	fmt.Println("8x8 R=2x :", viaarray.FailKForResistanceFactor(8, 2))
	// Output:
	// 4x4 R=2x : 8
	// 8x8 R=2x : 32
}
