package viaarray

import (
	"encoding/json"
	"fmt"
	"io"

	"emvia/internal/cudd"
	"emvia/internal/stat"
)

// ModelSet is a persistable per-pattern via-array TTF characterization: the
// §5.1 product that the grid analysis consumes. Saving it lets the expensive
// characterize step run once per technology and criterion.
type ModelSet struct {
	// ArrayN is the via configuration (n×n).
	ArrayN int
	// FailK is the array failure criterion the models were fitted for.
	FailK int
	// Models maps each intersection pattern to its TTF model.
	Models map[cudd.Pattern]TTFModel
}

// Validate checks completeness.
func (m ModelSet) Validate() error {
	if m.ArrayN < 1 {
		return fmt.Errorf("viaarray: ModelSet ArrayN = %d", m.ArrayN)
	}
	if m.FailK < 1 || m.FailK > m.ArrayN*m.ArrayN {
		return fmt.Errorf("viaarray: ModelSet FailK = %d out of range for %d×%d", m.FailK, m.ArrayN, m.ArrayN)
	}
	for _, pat := range cudd.Patterns() {
		tm, ok := m.Models[pat]
		if !ok {
			return fmt.Errorf("viaarray: ModelSet missing %v model", pat)
		}
		if tm.RefCurrent <= 0 || tm.Dist.Sigma < 0 {
			return fmt.Errorf("viaarray: ModelSet %v model malformed", pat)
		}
	}
	return nil
}

type jsonModel struct {
	Pattern    int     `json:"pattern"`
	Mu         float64 `json:"mu_ln_seconds"`
	Sigma      float64 `json:"sigma_ln"`
	RefCurrent float64 `json:"ref_current_a"`
	FailK      int     `json:"fail_k"`
}

type jsonModelSet struct {
	ArrayN int         `json:"array_n"`
	FailK  int         `json:"fail_k"`
	Models []jsonModel `json:"models"`
}

// Save writes the model set as JSON.
func (m ModelSet) Save(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	out := jsonModelSet{ArrayN: m.ArrayN, FailK: m.FailK}
	for _, pat := range cudd.Patterns() {
		tm := m.Models[pat]
		out.Models = append(out.Models, jsonModel{
			Pattern:    int(pat),
			Mu:         tm.Dist.Mu,
			Sigma:      tm.Dist.Sigma,
			RefCurrent: tm.RefCurrent,
			FailK:      tm.FailK,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// LoadModelSet reads a model set previously written by Save.
func LoadModelSet(r io.Reader) (ModelSet, error) {
	var in jsonModelSet
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return ModelSet{}, fmt.Errorf("viaarray: decoding model set: %w", err)
	}
	m := ModelSet{
		ArrayN: in.ArrayN,
		FailK:  in.FailK,
		Models: make(map[cudd.Pattern]TTFModel, len(in.Models)),
	}
	for _, jm := range in.Models {
		m.Models[cudd.Pattern(jm.Pattern)] = TTFModel{
			Dist:       stat.LogNormal{Mu: jm.Mu, Sigma: jm.Sigma},
			RefCurrent: jm.RefCurrent,
			FailK:      jm.FailK,
		}
	}
	if err := m.Validate(); err != nil {
		return ModelSet{}, err
	}
	return m, nil
}
