package trace

import (
	"context"
	"sync"
	"time"
)

// StageSpan is one completed stage of a job's execution timeline: where it
// started relative to the job's admit time and how long it ran. Durations are
// wall-clock seconds — timelines describe service latency, not simulated EM
// time.
type StageSpan struct {
	Stage           string  `json:"stage"`
	StartSeconds    float64 `json:"start_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// timelineSpanCap bounds a timeline's retained spans. A job runs a fixed
// pipeline of under a dozen stages; the cap only guards against a buggy or
// adversarial caller looping Stage() forever.
const timelineSpanCap = 1024

// Timeline accumulates the stage spans of one job. It is safe for concurrent
// use and nil-safe: every method on a nil *Timeline is a no-op, so
// instrumented code records unconditionally whether or not the caller asked
// for a timeline.
//
// The optional observer runs synchronously on each recorded span (outside the
// timeline lock) — the serve layer uses it to feed per-stage latency
// histograms without this package importing telemetry.
type Timeline struct {
	epoch    time.Time
	observer func(stage string, seconds float64)

	mu    sync.Mutex
	spans []StageSpan
}

// NewTimeline returns a timeline whose span start times are measured from
// epoch (the zero time selects "now"). observer, if non-nil, is invoked for
// every recorded span with the stage name and duration in seconds.
func NewTimeline(epoch time.Time, observer func(stage string, seconds float64)) *Timeline {
	if epoch.IsZero() {
		epoch = time.Now()
	}
	return &Timeline{epoch: epoch, observer: observer}
}

// Stage starts a span for the named stage and returns the function that ends
// it. Usage: defer tl.Stage("compile")() — or capture the end function when
// the stage boundary is not a function boundary.
func (t *Timeline) Stage(stage string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Add(stage, start, time.Since(start)) }
}

// Add records an already-measured span. Callers use it for stages whose
// start precedes the timeline's construction (admit, queue-wait).
func (t *Timeline) Add(stage string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	span := StageSpan{
		Stage:           stage,
		StartSeconds:    start.Sub(t.epoch).Seconds(),
		DurationSeconds: d.Seconds(),
	}
	t.mu.Lock()
	if len(t.spans) < timelineSpanCap {
		t.spans = append(t.spans, span)
	}
	t.mu.Unlock()
	if t.observer != nil {
		t.observer(stage, span.DurationSeconds)
	}
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Timeline) Spans() []StageSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageSpan, len(t.spans))
	copy(out, t.spans)
	return out
}

// timelineKey is the context key carrying a job's *Timeline through the
// engine layers (serve executor → pdn → solver setup) without widening any
// signatures on the way.
type timelineKey struct{}

// WithTimeline returns a context carrying tl. A nil tl returns ctx unchanged.
func WithTimeline(ctx context.Context, tl *Timeline) context.Context {
	if tl == nil {
		return ctx
	}
	return context.WithValue(ctx, timelineKey{}, tl)
}

// TimelineFrom extracts the timeline carried by ctx, or nil — and nil is a
// valid recording target, so callers never branch on the result.
func TimelineFrom(ctx context.Context) *Timeline {
	tl, _ := ctx.Value(timelineKey{}).(*Timeline)
	return tl
}
