// Package trace is the second observability layer of the pipeline,
// complementing package telemetry's aggregate counters with *structure*: a
// low-overhead, deterministic record of every failure cascade the Monte-Carlo
// engine simulates (trial begin/end, per-component TTF samples, failures with
// time and component identity, current-redistribution summaries, spec
// violations) plus wall-clock stage spans from the FEA pipeline.
//
// The design constraints mirror telemetry's:
//
//   - Off means off. The process-wide tracer is an atomic pointer that is nil
//     until a CLI opts in (-trace / -trace-chrome / -http). A nil *Tracer and
//     the zero Trial recorder are valid no-ops, so instrumented code records
//     unconditionally.
//   - Strictly observational: no traced value feeds back into a computation,
//     so paper metrics are bit-identical with tracing on or off.
//   - Deterministic: cascade events carry only simulated time and component
//     identity, never wall-clock data, and each trial's events are buffered
//     in a per-trial slot owned by exactly one worker. The merged stream
//     (trial order, then within-trial record order) is therefore byte-
//     identical between mc.Run and mc.RunParallel at any worker count.
//     Wall-clock data is confined to Span events, a separate stream.
//
// Events flow to pluggable sinks: JSONL export (cmd/emtrace's input), Chrome
// trace_event JSON (chrome://tracing, Perfetto) and an in-memory Ring holding
// the last N trials for the live HTTP monitor's /status endpoint.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tracer owns the sinks and the span buffer. A nil *Tracer is valid and
// disables every operation. Use New, not the zero value.
type Tracer struct {
	epoch   time.Time
	samples bool
	spanCap int

	runSeq atomic.Int64

	mu           sync.Mutex // guards sinks, spans, err
	sinks        []Sink
	spans        []Event
	spansDropped atomic.Int64
	err          error

	ring *Ring
}

// Options configures a Tracer.
type Options struct {
	// Sinks receive merged event batches (one batch per completed MC run,
	// plus the span batch at Close).
	Sinks []Sink
	// Ring, when non-nil, receives a per-trial cascade summary the moment
	// each trial completes (live, before the run's deterministic merge).
	Ring *Ring
	// DisableSamples drops per-component TTF-sample events, the bulkiest
	// event class (one per component per trial).
	DisableSamples bool
	// SpanCap bounds the wall-clock span buffer; further spans are counted
	// as dropped rather than recorded. Zero selects 16384.
	SpanCap int
}

// New returns a tracer writing to the given sinks.
func New(opt Options) *Tracer {
	cap := opt.SpanCap
	if cap <= 0 {
		cap = 16384
	}
	return &Tracer{
		epoch:   time.Now(),
		samples: !opt.DisableSamples,
		spanCap: cap,
		sinks:   opt.Sinks,
		ring:    opt.Ring,
	}
}

// defaultTracer holds the process-wide tracer; nil while disabled.
var defaultTracer atomic.Pointer[Tracer]

// Default returns the process-wide tracer, or nil when tracing is disabled.
func Default() *Tracer { return defaultTracer.Load() }

// Enabled reports whether a process-wide tracer is installed.
func Enabled() bool { return Default() != nil }

// SetDefault replaces the process-wide tracer; nil disables tracing.
func SetDefault(t *Tracer) { defaultTracer.Store(t) }

// Ring returns the tracer's live ring, or nil.
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// emit hands one merged batch to every sink. The batch is written atomically
// with respect to other batches (one mutex hold), so concurrent runs never
// interleave events within a run.
func (t *Tracer) emit(events []Event) {
	if t == nil || len(events) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.sinks {
		if err := s.WriteEvents(events); err != nil && t.err == nil {
			t.err = err
		}
	}
}

// SpansDropped reports how many spans were discarded after the span buffer
// filled (see Options.SpanCap).
func (t *Tracer) SpansDropped() int64 {
	if t == nil {
		return 0
	}
	return t.spansDropped.Load()
}

// Close flushes the span buffer and closes every sink, returning the first
// error any sink reported. Safe on nil.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := t.spans
	t.spans = nil
	t.mu.Unlock()
	t.emit(spans)
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// SpanEnd finishes a wall-clock span started by Tracer.Span.
type SpanEnd func()

// noopSpan is the shared disabled SpanEnd, so the nil path allocates nothing.
var noopSpan SpanEnd = func() {}

// Span starts a wall-clock stage span (FEA assembly, CG solve, stress
// recovery, parallel dispatch). The returned SpanEnd records the span; on a
// nil tracer it is a shared no-op and the clock is never read.
func (t *Tracer) Span(name string) SpanEnd {
	if t == nil {
		return noopSpan
	}
	start := time.Now()
	return func() {
		dur := time.Since(start)
		t.mu.Lock()
		if len(t.spans) >= t.spanCap {
			t.mu.Unlock()
			t.spansDropped.Add(1)
			return
		}
		t.spans = append(t.spans, Event{
			Trial:  -1,
			Comp:   -1,
			Type:   EvSpan,
			Label:  name,
			WallNS: start.Sub(t.epoch).Nanoseconds(),
			DurNS:  dur.Nanoseconds(),
		})
		t.mu.Unlock()
	}
}

// Run buffers the cascade events of one Monte-Carlo run: one append-only
// slot per trial, each owned by exactly one worker goroutine, merged in
// trial order at End. A nil *Run is a valid no-op.
type Run struct {
	t      *Tracer
	name   string
	seq    int64
	trials [][]Event
}

// BeginRun opens a per-run recorder named name with the given trial count.
// Returns nil (a no-op run) on a nil tracer or a non-positive trial count.
func (t *Tracer) BeginRun(name string, trials int) *Run {
	if t == nil || trials <= 0 {
		return nil
	}
	return &Run{
		t:      t,
		name:   name,
		seq:    t.runSeq.Add(1) - 1,
		trials: make([][]Event, trials),
	}
}

// Trial returns the recorder for trial i. The zero Trial (from a nil run or
// an out-of-range index) is a valid no-op.
func (r *Run) Trial(i int) Trial {
	if r == nil || i < 0 || i >= len(r.trials) {
		return Trial{}
	}
	return Trial{run: r, idx: i}
}

// End merges the per-trial buffers in deterministic trial order and flushes
// the batch to the tracer's sinks. Safe on nil.
func (r *Run) End() {
	if r == nil {
		return
	}
	total := 0
	for _, tb := range r.trials {
		total += len(tb)
	}
	merged := make([]Event, 0, total)
	for _, tb := range r.trials {
		merged = append(merged, tb...)
	}
	r.t.emit(merged)
}

// Trial records the cascade events of one trial. The zero value is a valid
// no-op; Enabled distinguishes it so callers can skip event-argument
// computation (e.g. the O(n) redistribution summary) when tracing is off.
type Trial struct {
	run *Run
	idx int
}

// Enabled reports whether this recorder actually records.
func (tr Trial) Enabled() bool { return tr.run != nil }

func (tr Trial) record(e Event) {
	e.Run = tr.run.name
	e.Seq = tr.run.seq
	e.Trial = tr.idx
	tr.run.trials[tr.idx] = append(tr.run.trials[tr.idx], e)
}

// Begin records the trial start with its component count.
func (tr Trial) Begin(components int) {
	if tr.run == nil {
		return
	}
	tr.record(Event{Type: EvTrialBegin, Comp: -1, N: components})
}

// Sample records component comp's freshly sampled base TTF (seconds).
func (tr Trial) Sample(comp int, ttf float64) {
	if tr.run == nil || !tr.run.t.samples {
		return
	}
	tr.record(Event{Type: EvSample, Comp: comp, V: ttf})
}

// Fail records the failure of component comp at simulated time t (seconds).
// label is the component's human identity (e.g. "Plus-shaped(3,4)"); empty
// when the system provides none.
func (tr Trial) Fail(t float64, comp int, label string) {
	if tr.run == nil {
		return
	}
	tr.record(Event{Type: EvFail, T: t, Comp: comp, Label: label})
}

// Redistribute summarizes the current redistribution that followed a
// failure: the maximum relative aging rate among the alive survivors (and
// the component holding it), their mean rate, and the survivor count. A
// rising max records how redistribution concentrates stress.
func (tr Trial) Redistribute(t, maxRate float64, maxComp int, meanRate float64, survivors int) {
	if tr.run == nil {
		return
	}
	tr.record(Event{Type: EvRedistribute, T: t, Comp: maxComp, V: maxRate, V2: meanRate, N: survivors})
}

// SpecViolation records the system-level failure criterion firing at
// simulated time t, after failures component failures.
func (tr Trial) SpecViolation(t float64, failures int) {
	if tr.run == nil {
		return
	}
	tr.record(Event{Type: EvSpec, T: t, Comp: -1, N: failures})
}

// End records the trial outcome — the system TTF (+Inf when the criterion
// never fired) and the total component-failure count — and publishes the
// trial's cascade summary to the tracer's live ring, if any.
func (tr Trial) End(ttf float64, failures int) {
	if tr.run == nil {
		return
	}
	tr.record(Event{Type: EvTrialEnd, Comp: -1, V: ttf, N: failures})
	if ring := tr.run.t.ring; ring != nil {
		ring.add(summarize(tr.run.name, tr.run.seq, tr.idx, tr.run.trials[tr.idx]))
	}
}
