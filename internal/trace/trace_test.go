package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
)

// memSink retains every batch it is handed.
type memSink struct {
	batches [][]Event
	closed  bool
}

func (s *memSink) WriteEvents(ev []Event) error {
	cp := make([]Event, len(ev))
	copy(cp, ev)
	s.batches = append(s.batches, cp)
	return nil
}

func (s *memSink) Close() error { s.closed = true; return nil }

func (s *memSink) all() []Event {
	var out []Event
	for _, b := range s.batches {
		out = append(out, b...)
	}
	return out
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	end := tr.Span("x")
	end()
	r := tr.BeginRun("run", 4)
	if r != nil {
		t.Fatalf("BeginRun on nil tracer = %v, want nil", r)
	}
	trial := r.Trial(0)
	if trial.Enabled() {
		t.Fatal("zero Trial reports Enabled")
	}
	trial.Begin(3)
	trial.Sample(0, 1.5)
	trial.Fail(2.0, 0, "c0")
	trial.Redistribute(2.0, 1.2, 1, 1.1, 2)
	trial.SpecViolation(3.0, 1)
	trial.End(3.0, 1)
	r.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close on nil tracer: %v", err)
	}
	if tr.Ring() != nil || tr.SpansDropped() != 0 {
		t.Fatal("nil tracer leaked state")
	}
}

func TestRunMergeDeterministicOrder(t *testing.T) {
	// Fill trials out of order from multiple goroutines; the merged batch
	// must still come out in trial order.
	sink := &memSink{}
	tc := New(Options{Sinks: []Sink{sink}})
	const trials = 8
	run := tc.BeginRun("merge", trials)
	var wg sync.WaitGroup
	for i := trials - 1; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := run.Trial(i)
			tr.Begin(2)
			tr.Fail(float64(i), i%2, "")
			tr.End(float64(i), 1)
		}(i)
	}
	wg.Wait()
	run.End()
	events := sink.all()
	if len(events) != trials*3 {
		t.Fatalf("got %d events, want %d", len(events), trials*3)
	}
	for i, e := range events {
		wantTrial := i / 3
		if e.Trial != wantTrial {
			t.Fatalf("event %d: trial %d, want %d", i, e.Trial, wantTrial)
		}
		if e.Run != "merge" || e.Seq != 0 {
			t.Fatalf("event %d: run %q seq %d", i, e.Run, e.Seq)
		}
	}
	wantTypes := []EventType{EvTrialBegin, EvFail, EvTrialEnd}
	for i, e := range events {
		if e.Type != wantTypes[i%3] {
			t.Fatalf("event %d: type %v, want %v", i, e.Type, wantTypes[i%3])
		}
	}
}

func TestRunSeqIncrements(t *testing.T) {
	tc := New(Options{})
	a := tc.BeginRun("a", 1)
	b := tc.BeginRun("b", 1)
	if a.seq != 0 || b.seq != 1 {
		t.Fatalf("seqs = %d, %d; want 0, 1", a.seq, b.seq)
	}
	if tc.BeginRun("zero", 0) != nil {
		t.Fatal("BeginRun with 0 trials should return nil")
	}
}

func TestTrialOutOfRange(t *testing.T) {
	tc := New(Options{})
	run := tc.BeginRun("r", 2)
	for _, i := range []int{-1, 2, 100} {
		if run.Trial(i).Enabled() {
			t.Fatalf("Trial(%d) enabled, want no-op", i)
		}
	}
}

func TestDisableSamples(t *testing.T) {
	sink := &memSink{}
	tc := New(Options{Sinks: []Sink{sink}, DisableSamples: true})
	run := tc.BeginRun("r", 1)
	tr := run.Trial(0)
	tr.Begin(1)
	tr.Sample(0, 1.0)
	tr.End(1.0, 0)
	run.End()
	for _, e := range sink.all() {
		if e.Type == EvSample {
			t.Fatal("sample event recorded with DisableSamples")
		}
	}
}

func TestSpanCapDrops(t *testing.T) {
	sink := &memSink{}
	tc := New(Options{Sinks: []Sink{sink}, SpanCap: 2})
	for i := 0; i < 5; i++ {
		tc.Span("s")()
	}
	if got := tc.SpansDropped(); got != 3 {
		t.Fatalf("SpansDropped = %d, want 3", got)
	}
	if err := tc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := len(sink.all()); got != 2 {
		t.Fatalf("flushed %d spans, want 2", got)
	}
	if !sink.closed {
		t.Fatal("sink not closed")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	events := []Event{
		{Run: "r", Seq: 1, Trial: 0, Type: EvTrialBegin, Comp: -1, N: 9},
		{Run: "r", Seq: 1, Trial: 0, Type: EvSample, Comp: 3, V: 2.5e8},
		{Run: "r", Seq: 1, Trial: 0, Type: EvSample, Comp: 4, V: math.Inf(1)},
		{Run: "r", Seq: 1, Trial: 0, Type: EvFail, T: 1.25e8, Comp: 3, Label: "Plus-shaped(2,1)"},
		{Run: "r", Seq: 1, Trial: 0, Type: EvRedistribute, T: 1.25e8, Comp: 5, V: 1.9, V2: 1.2, N: 8},
		{Run: "r", Seq: 1, Trial: 0, Type: EvSpec, T: 2e8, Comp: -1, N: 3},
		{Run: "r", Seq: 1, Trial: 0, Type: EvTrialEnd, Comp: -1, V: math.Inf(1), N: 3},
		{Trial: -1, Comp: -1, Type: EvSpan, Label: "fem.cg", WallNS: 12345, DurNS: 678},
	}
	for _, e := range events {
		buf, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal %v: %v", e.Type, err)
		}
		var back Event
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", buf, err)
		}
		// Fail events with empty labels omit the field; everything else
		// must survive exactly (NaN-free here, so == comparison is fine).
		if back != e {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v\n via %s", e, back, buf)
		}
	}
}

func TestEventJSONNonFinite(t *testing.T) {
	e := Event{Run: "r", Trial: 0, Comp: -1, Type: EvTrialEnd, V: math.Inf(1), N: 1}
	buf, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"v":"+Inf"`) {
		t.Fatalf("infinite TTF not spelled +Inf: %s", buf)
	}
	var back Event
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.V, 1) {
		t.Fatalf("parsed V = %v, want +Inf", back.V)
	}
	var f jsonFloat
	if err := json.Unmarshal([]byte(`"NaN"`), &f); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(f)) {
		t.Fatalf("jsonFloat(NaN) = %v", f)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &f); err == nil {
		t.Fatal("jsonFloat accepted garbage")
	}
}

func TestJSONLSinkStream(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	ev := []Event{
		{Run: "r", Trial: 0, Comp: -1, Type: EvTrialBegin, N: 2},
		{Run: "r", Trial: 0, Type: EvFail, T: 1, Comp: 0},
		{Run: "r", Trial: 0, Comp: -1, Type: EvTrialEnd, V: 1, N: 1},
	}
	if err := s.WriteEvents(ev); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		n++
	}
	if n != len(ev) {
		t.Fatalf("got %d lines, want %d", n, len(ev))
	}
}

func TestChromeSinkValidJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	ev := []Event{
		{Trial: -1, Comp: -1, Type: EvSpan, Label: "fem.cg", WallNS: 1000, DurNS: 500},
		{Run: "mc", Seq: 0, Trial: 0, Type: EvFail, T: 1e8, Comp: 2, Label: "T-shaped(0,1)"},
		{Run: "mc", Seq: 0, Trial: 0, Comp: -1, Type: EvSpec, T: 2e8, N: 2},
		{Run: "mc", Seq: 0, Trial: 0, Comp: -1, Type: EvTrialEnd, V: 2e8, N: 2},
		// Infinite TTF must be skipped, not emitted as invalid JSON.
		{Run: "mc", Seq: 0, Trial: 1, Comp: -1, Type: EvTrialEnd, V: math.Inf(1), N: 0},
	}
	if err := s.WriteEvents(ev); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	// span + process_name metadata + fail + spec + cascade = 5.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d trace events, want 5:\n%s", len(doc.TraceEvents), buf.String())
	}
	var names []string
	for _, e := range doc.TraceEvents {
		names = append(names, e["name"].(string))
	}
	want := []string{"fem.cg", "process_name", "fail T-shaped(0,1)", "spec violation", "cascade"}
	for i, n := range names {
		if n != want[i] {
			t.Fatalf("event %d name %q, want %q", i, n, want[i])
		}
	}
}

func TestChromeSinkEmptyStillValid(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty chrome trace invalid: %v\n%s", err, buf.String())
	}
}

func TestRingSummaries(t *testing.T) {
	ring := NewRing(2)
	tc := New(Options{Ring: ring})
	run := tc.BeginRun("r", 3)
	for i := 0; i < 3; i++ {
		tr := run.Trial(i)
		tr.Begin(4)
		tr.Fail(float64(10*(i+1)), i, "c")
		tr.Redistribute(float64(10*(i+1)), 1.5+float64(i), 1, 1.1, 3)
		if i == 2 {
			tr.SpecViolation(99, 1)
			tr.End(99, 1)
		} else {
			tr.End(math.Inf(1), 1)
		}
	}
	if got := ring.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
	last, ok := ring.Last()
	if !ok {
		t.Fatal("Last on fed ring returned !ok")
	}
	if last.Trial != 2 || last.SpecTime != 99 || last.TTF != 99 || last.FirstComp != 2 || last.MaxRate != 3.5 {
		t.Fatalf("last summary = %+v", last)
	}
	snap := ring.Snapshot()
	if len(snap) != 2 || snap[0].Trial != 1 || snap[1].Trial != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Trial 1 never hit the spec and kept TTF = +Inf.
	if snap[0].SpecTime != -1 || !math.IsInf(snap[0].TTF, 1) {
		t.Fatalf("trial 1 summary = %+v", snap[0])
	}

	var nilRing *Ring
	if nilRing.Total() != 0 {
		t.Fatal("nil ring Total != 0")
	}
	if _, ok := nilRing.Last(); ok {
		t.Fatal("nil ring Last ok")
	}
	if nilRing.Snapshot() != nil {
		t.Fatal("nil ring Snapshot non-nil")
	}
}

func TestManifestWrite(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest("emgrid", []string{"-trials", "100"})
	m.Seed = 7
	m.Trials = 100
	m.Workers = 4
	m.MaterialHash = "deadbeef"
	m.StressCacheKeyVersion = 1
	artifact := dir + "/trace.jsonl"
	m.Artifacts = []string{artifact, "-"}
	if err := m.WriteBeside(); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(ManifestPath(artifact))
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Command != "emgrid" || back.Seed != 7 || back.Trials != 100 ||
		back.Workers != 4 || back.MaterialHash != "deadbeef" ||
		back.StressCacheKeyVersion != 1 || back.SchemaVersion != manifestSchemaVersion {
		t.Fatalf("manifest round trip = %+v", back)
	}
	if back.GoVersion == "" || back.GOOS == "" || back.NumCPU < 1 {
		t.Fatalf("runtime fields missing: %+v", back)
	}
}

func TestDefaultInstallUninstall(t *testing.T) {
	if Enabled() {
		t.Fatal("tracer enabled at test start")
	}
	tc := New(Options{})
	SetDefault(tc)
	defer SetDefault(nil)
	if Default() != tc || !Enabled() {
		t.Fatal("SetDefault did not install")
	}
	SetDefault(nil)
	if Enabled() {
		t.Fatal("SetDefault(nil) did not uninstall")
	}
}
