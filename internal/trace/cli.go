package trace

import (
	"flag"
	"fmt"
	"os"
)

// CLIConfig is the flag surface shared by the emgrid/emsweep/paperfigs CLIs.
// Register the flags with RegisterFlags, then call CLISetup after flag.Parse.
type CLIConfig struct {
	// Out is the JSONL trace path ("-" = stdout, "" = no JSONL sink).
	Out string
	// Chrome is the Chrome trace_event JSON path ("" = no Chrome sink).
	Chrome string
	// NoSamples drops per-component TTF-sample events.
	NoSamples bool
	// RingSize is the live-ring capacity (last N trials). It is forced to at
	// least the default whenever the HTTP monitor needs the ring; zero keeps
	// the ring off unless another option needs it.
	RingSize int
}

// RegisterFlags declares the -trace* flags on fs.
func (c *CLIConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Out, "trace", "", "write a JSONL failure-cascade trace to `file` (\"-\" = stdout)")
	fs.StringVar(&c.Chrome, "trace-chrome", "", "write a Chrome trace_event JSON trace to `file` (chrome://tracing, Perfetto)")
	fs.BoolVar(&c.NoSamples, "trace-nosamples", false, "omit per-component TTF sample events from the trace")
}

// Active reports whether any option requires a tracer.
func (c CLIConfig) Active() bool {
	return c.Out != "" || c.Chrome != "" || c.RingSize > 0
}

// CLISetup builds sinks from the config, installs the process-wide tracer,
// and records the trace artifacts in the manifest (when non-nil). It returns
// the tracer's live ring (nil unless RingSize > 0) and a finish func that
// flushes and closes everything, uninstalls the tracer, reports dropped
// spans, and writes the manifest beside each artifact.
//
// When no option is active it installs nothing and finish only writes the
// manifest (covering e.g. a -metrics-json artifact with no trace).
func CLISetup(c CLIConfig, m *Manifest) (*Ring, func() error, error) {
	var (
		sinks []Sink
		files []*os.File
	)
	fail := func(err error) (*Ring, func() error, error) {
		for _, f := range files {
			f.Close()
		}
		return nil, nil, err
	}
	if c.Out != "" {
		if c.Out == "-" {
			sinks = append(sinks, NewJSONLSink(os.Stdout))
		} else {
			f, err := os.Create(c.Out)
			if err != nil {
				return fail(fmt.Errorf("trace: %w", err))
			}
			files = append(files, f)
			sinks = append(sinks, NewJSONLSink(f))
		}
		if m != nil {
			m.Artifacts = append(m.Artifacts, c.Out)
		}
	}
	if c.Chrome != "" {
		f, err := os.Create(c.Chrome)
		if err != nil {
			return fail(fmt.Errorf("trace: %w", err))
		}
		files = append(files, f)
		sinks = append(sinks, NewChromeSink(f))
		if m != nil {
			m.Artifacts = append(m.Artifacts, c.Chrome)
		}
	}
	var ring *Ring
	if c.RingSize > 0 {
		ring = NewRing(c.RingSize)
	}

	if !c.Active() {
		finish := func() error {
			if m != nil {
				return m.WriteBeside()
			}
			return nil
		}
		return nil, finish, nil
	}

	t := New(Options{Sinks: sinks, Ring: ring, DisableSamples: c.NoSamples})
	SetDefault(t)
	finish := func() error {
		SetDefault(nil)
		err := t.Close()
		if n := t.SpansDropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "trace: %d stage spans dropped (span buffer full)\n", n)
		}
		if m != nil {
			if merr := m.WriteBeside(); err == nil {
				err = merr
			}
		}
		return err
	}
	return ring, finish, nil
}
