package trace

import (
	"context"
	"testing"
	"time"
)

func TestTimelineRecordsSpans(t *testing.T) {
	epoch := time.Now()
	var observed []string
	tl := NewTimeline(epoch, func(stage string, seconds float64) {
		observed = append(observed, stage)
		if seconds < 0 {
			t.Errorf("observer saw negative duration for %s: %v", stage, seconds)
		}
	})
	tl.Add("queue-wait", epoch, 5*time.Millisecond)
	end := tl.Stage("compile")
	end()
	spans := tl.Spans()
	if len(spans) != 2 || spans[0].Stage != "queue-wait" || spans[1].Stage != "compile" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].DurationSeconds != 0.005 {
		t.Errorf("queue-wait duration = %v", spans[0].DurationSeconds)
	}
	if spans[1].StartSeconds < 0 {
		t.Errorf("compile started before epoch: %v", spans[1].StartSeconds)
	}
	if len(observed) != 2 || observed[0] != "queue-wait" || observed[1] != "compile" {
		t.Errorf("observer calls = %v", observed)
	}
}

func TestTimelineNegativeDurationClamped(t *testing.T) {
	tl := NewTimeline(time.Time{}, nil)
	tl.Add("weird", time.Now(), -time.Second)
	if d := tl.Spans()[0].DurationSeconds; d != 0 {
		t.Fatalf("negative duration not clamped: %v", d)
	}
}

func TestTimelineSpanCap(t *testing.T) {
	tl := NewTimeline(time.Time{}, nil)
	for i := 0; i < timelineSpanCap+10; i++ {
		tl.Add("s", time.Now(), 0)
	}
	if n := len(tl.Spans()); n != timelineSpanCap {
		t.Fatalf("retained %d spans, want cap %d", n, timelineSpanCap)
	}
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.Add("x", time.Now(), time.Second)
	tl.Stage("y")()
	if tl.Spans() != nil {
		t.Fatal("nil timeline must return nil spans")
	}
}

func TestTimelineContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if TimelineFrom(ctx) != nil {
		t.Fatal("empty context must carry no timeline")
	}
	if WithTimeline(ctx, nil) != ctx {
		t.Fatal("nil timeline must not wrap the context")
	}
	tl := NewTimeline(time.Time{}, nil)
	if got := TimelineFrom(WithTimeline(ctx, tl)); got != tl {
		t.Fatalf("TimelineFrom = %p, want %p", got, tl)
	}
}

func TestRingOccupancyCap(t *testing.T) {
	var nilRing *Ring
	if nilRing.Occupancy() != 0 || nilRing.Cap() != 0 {
		t.Fatal("nil ring must report 0/0")
	}
	r := NewRing(4)
	if r.Occupancy() != 0 || r.Cap() != 4 {
		t.Fatalf("fresh ring = %d/%d, want 0/4", r.Occupancy(), r.Cap())
	}
	for i := 0; i < 6; i++ {
		r.add(TrialSummary{Trial: i})
	}
	if r.Occupancy() != 4 || r.Cap() != 4 {
		t.Fatalf("wrapped ring = %d/%d, want 4/4", r.Occupancy(), r.Cap())
	}
}
