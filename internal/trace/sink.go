package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Sink consumes merged event batches. WriteEvents is always called under the
// tracer's mutex, so implementations need no locking of their own.
type Sink interface {
	WriteEvents([]Event) error
	Close() error
}

// JSONLSink writes one JSON object per line — the canonical export format
// and cmd/emtrace's input. Output is buffered; Close flushes (and closes the
// writer when it is an io.Closer).
type JSONLSink struct {
	bw *bufio.Writer
	c  io.Closer
	// scratch is reused across events, so steady-state writes allocate
	// nothing beyond buffer growth.
	scratch []byte
}

// NewJSONLSink wraps w. When w is an io.Closer (e.g. *os.File), Close closes
// it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// WriteEvents appends one line per event.
func (s *JSONLSink) WriteEvents(events []Event) error {
	for _, e := range events {
		s.scratch = e.appendJSON(s.scratch[:0])
		s.scratch = append(s.scratch, '\n')
		if _, err := s.bw.Write(s.scratch); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes the underlying writer.
func (s *JSONLSink) Close() error {
	err := s.bw.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ChromeSink streams the Chrome trace_event JSON format, loadable in
// chrome://tracing and Perfetto. The mapping:
//
//   - Each Monte-Carlo run becomes a process (pid = 2+seq) named after the
//     run label; each trial is a thread (tid = trial index). Simulated
//     seconds map 1:1 to trace microseconds, so a 10-year cascade reads as
//     ~315 s on the viewer's timeline. Trials appear as complete ("X")
//     slices from 0 to the system TTF (finite TTFs only), failures and spec
//     violations as instant ("i") events.
//   - Wall-clock stage spans live under pid 1 ("pipeline (wall clock)")
//     with real microsecond timestamps.
//
// Sample and redistribute events are omitted — they are JSONL/emtrace
// material, not timeline material.
type ChromeSink struct {
	bw    *bufio.Writer
	c     io.Closer
	first bool
	// pids maps (seq) → emitted process metadata, so each run's
	// process_name record is written once.
	named map[int64]bool
}

// NewChromeSink wraps w; Close closes it when it is an io.Closer.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{bw: bufio.NewWriterSize(w, 1<<16), first: true, named: make(map[int64]bool)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

func (s *ChromeSink) record(format string, args ...any) error {
	if s.first {
		if _, err := s.bw.WriteString(`{"traceEvents":[` + "\n"); err != nil {
			return err
		}
		s.first = false
	} else {
		if _, err := s.bw.WriteString(",\n"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(s.bw, format, args...)
	return err
}

// WriteEvents converts and appends one batch.
func (s *ChromeSink) WriteEvents(events []Event) error {
	for _, e := range events {
		var err error
		switch e.Type {
		case EvSpan:
			err = s.record(`{"name":%s,"ph":"X","pid":1,"tid":0,"ts":%.3f,"dur":%.3f}`,
				strconv.Quote(e.Label), float64(e.WallNS)/1e3, float64(e.DurNS)/1e3)
		case EvFail:
			if err = s.ensureProcess(e); err != nil {
				break
			}
			name := "fail"
			if e.Label != "" {
				name = "fail " + e.Label
			}
			err = s.record(`{"name":%s,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%.6g,"args":{"comp":%d}}`,
				strconv.Quote(name), 2+e.Seq, e.Trial, e.T, e.Comp)
		case EvSpec:
			if err = s.ensureProcess(e); err != nil {
				break
			}
			err = s.record(`{"name":"spec violation","ph":"i","s":"t","pid":%d,"tid":%d,"ts":%.6g,"args":{"failures":%d}}`,
				2+e.Seq, e.Trial, e.T, e.N)
		case EvTrialEnd:
			if !isFinite(e.V) {
				break
			}
			if err = s.ensureProcess(e); err != nil {
				break
			}
			err = s.record(`{"name":"cascade","ph":"X","pid":%d,"tid":%d,"ts":0,"dur":%.6g,"args":{"failures":%d}}`,
				2+e.Seq, e.Trial, e.V, e.N)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *ChromeSink) ensureProcess(e Event) error {
	if s.named[e.Seq] {
		return nil
	}
	s.named[e.Seq] = true
	return s.record(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":%s}}`,
		2+e.Seq, strconv.Quote(e.Run))
}

// Close terminates the JSON document and closes the underlying writer.
func (s *ChromeSink) Close() error {
	var err error
	if s.first {
		_, err = s.bw.WriteString(`{"traceEvents":[`)
		s.first = false
	}
	if err == nil {
		// 1 sim second = 1 trace µs for cascade pids; wall µs for pid 1.
		_, err = s.bw.WriteString("\n]," + `"displayTimeUnit":"ms","otherData":{"sim_time_unit":"1us = 1 simulated second"}}` + "\n")
	}
	if ferr := s.bw.Flush(); err == nil {
		err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func isFinite(v float64) bool { return v == v && v-v == 0 }
