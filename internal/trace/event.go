package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// EventType enumerates the structured event kinds.
type EventType uint8

// Event kinds. Cascade events (TrialBegin…TrialEnd) carry simulated time
// only and are deterministic; Span events carry wall-clock data.
const (
	EvTrialBegin EventType = iota
	EvSample
	EvFail
	EvRedistribute
	EvSpec
	EvTrialEnd
	EvSpan
)

// eventTypeNames is the JSON spelling of each kind.
var eventTypeNames = [...]string{
	EvTrialBegin:   "trial_begin",
	EvSample:       "sample",
	EvFail:         "fail",
	EvRedistribute: "redistribute",
	EvSpec:         "spec_violation",
	EvTrialEnd:     "trial_end",
	EvSpan:         "span",
}

// String returns the JSON spelling.
func (t EventType) String() string {
	if int(t) < len(eventTypeNames) {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("trace.EventType(%d)", int(t))
}

// eventTypeFromString inverts String.
func eventTypeFromString(s string) (EventType, error) {
	for i, n := range eventTypeNames {
		if n == s {
			return EventType(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event type %q", s)
}

// Event is one structured record. Field meaning varies by Type:
//
//	trial_begin    N = component count
//	sample         Comp, V = base TTF (s)
//	fail           T = simulated time (s), Comp, Label = component identity
//	redistribute   T, Comp = max-rate survivor, V = max aging rate,
//	               V2 = mean aging rate, N = survivor count
//	spec_violation T, N = failures so far
//	trial_end      V = system TTF (s, +Inf = criterion never fired),
//	               N = total failures
//	span           Label = stage name, WallNS = start (ns since tracer
//	               epoch), DurNS = duration (ns); Trial = -1
//
// Run/Seq/Trial identify the Monte-Carlo run (label + per-tracer sequence
// number) and trial; spans carry neither run nor trial.
type Event struct {
	Run    string
	Seq    int64
	Trial  int
	Type   EventType
	T      float64
	Comp   int
	Label  string
	V      float64
	V2     float64
	N      int
	WallNS int64
	DurNS  int64
}

// appendJSONFloat renders v, spelling the non-finite values JSON cannot
// carry as quoted strings ("+Inf", "-Inf", "NaN"); jsonFloat parses them
// back.
func appendJSONFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, `"+Inf"`...)
	case math.IsInf(v, -1):
		return append(b, `"-Inf"`...)
	case math.IsNaN(v):
		return append(b, `"NaN"`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// MarshalJSON renders the event as a single flat object, emitting only the
// fields meaningful for the event's type so the per-line cost stays small
// and the byte stream is a pure function of the event values.
func (e Event) MarshalJSON() ([]byte, error) { return e.appendJSON(nil), nil }

func (e Event) appendJSON(b []byte) []byte {
	b = append(b, `{"type":`...)
	b = strconv.AppendQuote(b, e.Type.String())
	if e.Type != EvSpan {
		b = append(b, `,"run":`...)
		b = strconv.AppendQuote(b, e.Run)
		b = append(b, `,"seq":`...)
		b = strconv.AppendInt(b, e.Seq, 10)
		b = append(b, `,"trial":`...)
		b = strconv.AppendInt(b, int64(e.Trial), 10)
	}
	switch e.Type {
	case EvTrialBegin:
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(e.N), 10)
	case EvSample:
		b = append(b, `,"comp":`...)
		b = strconv.AppendInt(b, int64(e.Comp), 10)
		b = append(b, `,"v":`...)
		b = appendJSONFloat(b, e.V)
	case EvFail:
		b = append(b, `,"t":`...)
		b = appendJSONFloat(b, e.T)
		b = append(b, `,"comp":`...)
		b = strconv.AppendInt(b, int64(e.Comp), 10)
		if e.Label != "" {
			b = append(b, `,"label":`...)
			b = strconv.AppendQuote(b, e.Label)
		}
	case EvRedistribute:
		b = append(b, `,"t":`...)
		b = appendJSONFloat(b, e.T)
		b = append(b, `,"comp":`...)
		b = strconv.AppendInt(b, int64(e.Comp), 10)
		b = append(b, `,"v":`...)
		b = appendJSONFloat(b, e.V)
		b = append(b, `,"v2":`...)
		b = appendJSONFloat(b, e.V2)
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(e.N), 10)
	case EvSpec:
		b = append(b, `,"t":`...)
		b = appendJSONFloat(b, e.T)
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(e.N), 10)
	case EvTrialEnd:
		b = append(b, `,"v":`...)
		b = appendJSONFloat(b, e.V)
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(e.N), 10)
	case EvSpan:
		b = append(b, `,"label":`...)
		b = strconv.AppendQuote(b, e.Label)
		b = append(b, `,"wall_ns":`...)
		b = strconv.AppendInt(b, e.WallNS, 10)
		b = append(b, `,"dur_ns":`...)
		b = strconv.AppendInt(b, e.DurNS, 10)
	}
	return append(b, '}')
}

// jsonFloat accepts both JSON numbers and the quoted non-finite spellings
// appendJSONFloat emits.
type jsonFloat float64

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*f = jsonFloat(math.Inf(1))
		case "-Inf":
			*f = jsonFloat(math.Inf(-1))
		case "NaN":
			*f = jsonFloat(math.NaN())
		default:
			return fmt.Errorf("trace: invalid float %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// UnmarshalJSON parses one JSONL line back into an Event. Fields absent
// from the line take their neutral values (Trial/Comp = -1).
func (e *Event) UnmarshalJSON(b []byte) error {
	var aux struct {
		Type   string    `json:"type"`
		Run    string    `json:"run"`
		Seq    int64     `json:"seq"`
		Trial  *int      `json:"trial"`
		T      jsonFloat `json:"t"`
		Comp   *int      `json:"comp"`
		Label  string    `json:"label"`
		V      jsonFloat `json:"v"`
		V2     jsonFloat `json:"v2"`
		N      int       `json:"n"`
		WallNS int64     `json:"wall_ns"`
		DurNS  int64     `json:"dur_ns"`
	}
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	typ, err := eventTypeFromString(aux.Type)
	if err != nil {
		return err
	}
	*e = Event{
		Run:    aux.Run,
		Seq:    aux.Seq,
		Trial:  -1,
		Type:   typ,
		T:      float64(aux.T),
		Comp:   -1,
		Label:  aux.Label,
		V:      float64(aux.V),
		V2:     float64(aux.V2),
		N:      aux.N,
		WallNS: aux.WallNS,
		DurNS:  aux.DurNS,
	}
	if aux.Trial != nil {
		e.Trial = *aux.Trial
	}
	if aux.Comp != nil {
		e.Comp = *aux.Comp
	}
	return nil
}
