package trace

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"
)

// manifestSchemaVersion is bumped when the manifest layout changes meaning.
const manifestSchemaVersion = 1

// Manifest is the run-provenance record written alongside every trace or
// metrics artifact: everything needed to reproduce the figure or metric the
// artifact backs — the exact invocation, the resolved configuration, seeds
// and worker counts, the material-constant hash and stress-cache key version
// (so a stale persistent cache is detectable), plus the toolchain and
// machine it ran on.
type Manifest struct {
	SchemaVersion int       `json:"schema_version"`
	CreatedAt     time.Time `json:"created_at"`
	// Command and Args are the exact invocation (os.Args split).
	Command string   `json:"command"`
	Args    []string `json:"args,omitempty"`
	// Config is the fully resolved flag set (defaults included), so the
	// run is reproducible even when flags were left implicit.
	Config map[string]string `json:"config,omitempty"`
	// Seed/Trials/Workers duplicate the headline reproducibility knobs out
	// of Config for toolability; zero values mean "not applicable".
	Seed    int64 `json:"seed,omitempty"`
	Trials  int   `json:"trials,omitempty"`
	Workers int   `json:"workers,omitempty"`
	// Solver records the linear-solver backend the run selected (auto/
	// dense/sparse/cg) — results can shift at the iterative-tolerance level
	// when the backend changes, so it is part of provenance.
	Solver string `json:"solver,omitempty"`
	// Engine records the analysis engine (mc, steady, both): a screened run
	// ("both") prunes the Monte Carlo to the steady mortal subset, so the
	// engine choice is part of result provenance.
	Engine string `json:"engine,omitempty"`
	// Screen summarizes the steady-state screening pre-pass of a steady or
	// both run: what was classified mortal and against which thresholds.
	Screen *ScreenInfo `json:"screen,omitempty"`
	// MaterialHash fingerprints the material table + EM constants
	// (core.MaterialHash); StressCacheKeyVersion is the persistent stress
	// cache's key schema version.
	MaterialHash          string `json:"material_hash,omitempty"`
	StressCacheKeyVersion int    `json:"stress_cache_key_version,omitempty"`

	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Hostname  string `json:"hostname,omitempty"`

	// Artifacts lists every file of the run this manifest describes (the
	// trace exports, the metrics JSON); a copy of the manifest is written
	// alongside each.
	Artifacts []string `json:"artifacts,omitempty"`
}

// ScreenInfo is the manifest record of one steady-state screening pass.
type ScreenInfo struct {
	Vias           int     `json:"vias"`
	MortalVias     int     `json:"mortal_vias"`
	Segments       int     `json:"segments"`
	MortalSegments int     `json:"mortal_segments"`
	SigmaCritViaPa float64 `json:"sigma_crit_via_pa"`
	SigmaTViaPa    float64 `json:"sigma_t_via_pa"`
}

// NewManifest starts a manifest for the given invocation, filling the
// toolchain and machine fields.
func NewManifest(command string, args []string) *Manifest {
	host, _ := os.Hostname()
	return &Manifest{
		SchemaVersion: manifestSchemaVersion,
		CreatedAt:     time.Now().UTC(),
		Command:       command,
		Args:          args,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Hostname:      host,
	}
}

// FlagConfig captures a parsed flag set as a name→value map, defaults
// included, for Manifest.Config.
func FlagConfig(fs *flag.FlagSet) map[string]string {
	cfg := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) { cfg[f.Name] = f.Value.String() })
	return cfg
}

// ManifestPath returns the manifest path for an artifact:
// "<artifact>.manifest.json".
func ManifestPath(artifact string) string { return artifact + ".manifest.json" }

// Write writes the manifest as indented JSON to path.
func (m *Manifest) Write(path string) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: encoding manifest: %w", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("trace: writing manifest: %w", err)
	}
	return nil
}

// WriteBeside writes one manifest copy alongside every artifact in
// m.Artifacts (skipping "-", the stdout spelling).
func (m *Manifest) WriteBeside() error {
	for _, a := range m.Artifacts {
		if a == "" || a == "-" {
			continue
		}
		if err := m.Write(ManifestPath(a)); err != nil {
			return err
		}
	}
	return nil
}
