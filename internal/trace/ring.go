package trace

import (
	"math"
	"sync"
)

// TrialSummary is the compact cascade digest the live ring stores for each
// completed trial. Times are simulated seconds; TTF and SpecTime are +Inf /
// NaN-free only in the sense that +Inf means "criterion never fired" and
// SpecTime < 0 means "no spec violation recorded".
type TrialSummary struct {
	Run      string
	Seq      int64
	Trial    int
	Failures int
	// TTF is the system TTF (+Inf when the criterion never fired).
	TTF float64
	// FirstComp/FirstLabel/FirstTime describe the first component failure;
	// FirstComp is -1 when the trial had no failures.
	FirstComp  int
	FirstLabel string
	FirstTime  float64
	// SpecTime is the time the system criterion fired, -1 when it did not.
	SpecTime float64
	// MaxRate is the largest post-redistribution aging rate observed.
	MaxRate float64
}

// summarize digests one trial's event buffer.
func summarize(run string, seq int64, trial int, events []Event) TrialSummary {
	s := TrialSummary{Run: run, Seq: seq, Trial: trial, TTF: math.Inf(1), FirstComp: -1, SpecTime: -1, MaxRate: 1}
	for _, e := range events {
		switch e.Type {
		case EvFail:
			if s.FirstComp < 0 {
				s.FirstComp = e.Comp
				s.FirstLabel = e.Label
				s.FirstTime = e.T
			}
		case EvRedistribute:
			if e.V > s.MaxRate {
				s.MaxRate = e.V
			}
		case EvSpec:
			s.SpecTime = e.T
		case EvTrialEnd:
			s.TTF = e.V
			s.Failures = e.N
		}
	}
	return s
}

// Ring holds the summaries of the last N completed trials, fed live (in
// completion order, which is nondeterministic under RunParallel — the ring
// is a monitoring sample, not part of the deterministic export path).
type Ring struct {
	mu      sync.Mutex
	entries []TrialSummary
	next    int
	filled  int
	total   int64
}

// NewRing returns a ring keeping the last n trials (n < 1 selects 64).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 64
	}
	return &Ring{entries: make([]TrialSummary, n)}
}

func (r *Ring) add(s TrialSummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[r.next] = s
	r.next = (r.next + 1) % len(r.entries)
	if r.filled < len(r.entries) {
		r.filled++
	}
	r.total++
}

// Total returns how many trials have passed through the ring.
func (r *Ring) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Last returns the most recently completed trial's summary.
func (r *Ring) Last() (TrialSummary, bool) {
	if r == nil {
		return TrialSummary{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled == 0 {
		return TrialSummary{}, false
	}
	return r.entries[(r.next-1+len(r.entries))%len(r.entries)], true
}

// Occupancy returns how many summaries the ring currently retains.
func (r *Ring) Occupancy() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.filled
}

// Cap returns the ring's capacity (how many summaries it can retain).
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.entries)
}

// Snapshot returns the retained summaries, oldest first.
func (r *Ring) Snapshot() []TrialSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TrialSummary, 0, r.filled)
	start := r.next - r.filled
	for i := 0; i < r.filled; i++ {
		out = append(out, r.entries[(start+i+len(r.entries))%len(r.entries)])
	}
	return out
}
