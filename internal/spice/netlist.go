// Package spice implements the subset of SPICE needed for power-grid
// analysis: netlists of resistors, independent current sources (loads) and
// ground-referenced voltage sources (pads), in the dialect of the IBM power
// grid benchmarks [Nassif, ASP-DAC'08], plus a DC operating-point solver
// based on nodal analysis over the shared sparse/CG stack.
package spice

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Resistor is a two-terminal resistance in ohms.
type Resistor struct {
	Name string
	A, B string
	Ohms float64
}

// CurrentSource drives a constant current (amps) from node A to node B
// through the source; a load is written `iX node 0 value`, pulling current
// out of the grid node into ground.
type CurrentSource struct {
	Name string
	A, B string
	Amps float64
}

// VoltageSource fixes node Node at Volts relative to ground. The benchmark
// dialect only uses ground-referenced sources (pad connections), which keeps
// nodal analysis symmetric positive-definite.
type VoltageSource struct {
	Name  string
	Node  string
	Volts float64
}

// Netlist is a parsed SPICE deck.
type Netlist struct {
	Title     string
	Resistors []Resistor
	Currents  []CurrentSource
	Voltages  []VoltageSource
}

// IsGround reports whether a node name denotes the ground node ("0", "gnd"
// or "GND"). A string switch instead of a map lookup: this predicate runs
// once per terminal of every element on each compile, where hashing the node
// name was a measurable slice of the compile cost.
func IsGround(name string) bool {
	switch name {
	case "0", "gnd", "GND":
		return true
	}
	return false
}

// Parse reads a SPICE deck. Supported cards: R/I/V elements, `*` comments,
// `.op` and `.end` directives (ignored), blank lines. Names and directives
// are case-insensitive; node names are case-sensitive except for ground.
func Parse(r io.Reader) (*Netlist, error) {
	nl := &Netlist{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if strings.HasPrefix(line, ".") {
			d := strings.ToLower(strings.Fields(line)[0])
			switch d {
			case ".op", ".end", ".title":
				continue
			default:
				return nil, fmt.Errorf("spice: line %d: unsupported directive %q", lineNo, d)
			}
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			return nil, fmt.Errorf("spice: line %d: element card needs 4 fields, got %d", lineNo, len(f))
		}
		val, err := ParseValue(f[3])
		if err != nil {
			return nil, fmt.Errorf("spice: line %d: %w", lineNo, err)
		}
		switch strings.ToLower(line[:1]) {
		case "r":
			if val <= 0 {
				return nil, fmt.Errorf("spice: line %d: resistor %s has non-positive value %g", lineNo, f[0], val)
			}
			nl.Resistors = append(nl.Resistors, Resistor{Name: f[0], A: f[1], B: f[2], Ohms: val})
		case "i":
			nl.Currents = append(nl.Currents, CurrentSource{Name: f[0], A: f[1], B: f[2], Amps: val})
		case "v":
			a, b := f[1], f[2]
			switch {
			case IsGround(b):
				nl.Voltages = append(nl.Voltages, VoltageSource{Name: f[0], Node: a, Volts: val})
			case IsGround(a):
				nl.Voltages = append(nl.Voltages, VoltageSource{Name: f[0], Node: b, Volts: -val})
			default:
				return nil, fmt.Errorf("spice: line %d: voltage source %s must have a ground terminal", lineNo, f[0])
			}
		default:
			return nil, fmt.Errorf("spice: line %d: unsupported element %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spice: reading deck: %w", err)
	}
	return nl, nil
}

// Write emits the netlist in the benchmark dialect, terminated by `.op` and
// `.end`.
func (nl *Netlist) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if nl.Title != "" {
		fmt.Fprintf(bw, "* %s\n", nl.Title)
	}
	for _, r := range nl.Resistors {
		fmt.Fprintf(bw, "%s %s %s %.9g\n", r.Name, r.A, r.B, r.Ohms)
	}
	for _, v := range nl.Voltages {
		fmt.Fprintf(bw, "%s %s 0 %.9g\n", v.Name, v.Node, v.Volts)
	}
	for _, c := range nl.Currents {
		fmt.Fprintf(bw, "%s %s %s %.9g\n", c.Name, c.A, c.B, c.Amps)
	}
	fmt.Fprintln(bw, ".op")
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// Nodes returns all non-ground node names in sorted order.
func (nl *Netlist) Nodes() []string {
	set := make(map[string]bool, 2*len(nl.Resistors))
	add := func(n string) {
		if !IsGround(n) {
			set[n] = true
		}
	}
	for _, r := range nl.Resistors {
		add(r.A)
		add(r.B)
	}
	for _, c := range nl.Currents {
		add(c.A)
		add(c.B)
	}
	for _, v := range nl.Voltages {
		add(v.Node)
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseValue parses a SPICE number with an optional scale suffix
// (f p n u m k meg g t, case-insensitive; "m" is milli, "meg" is mega).
func ParseValue(s string) (float64, error) {
	low := strings.ToLower(s)
	mult := 1.0
	num := low
	switch {
	case strings.HasSuffix(low, "meg"):
		mult, num = 1e6, low[:len(low)-3]
	case strings.HasSuffix(low, "f"):
		mult, num = 1e-15, low[:len(low)-1]
	case strings.HasSuffix(low, "p"):
		mult, num = 1e-12, low[:len(low)-1]
	case strings.HasSuffix(low, "n"):
		mult, num = 1e-9, low[:len(low)-1]
	case strings.HasSuffix(low, "u"):
		mult, num = 1e-6, low[:len(low)-1]
	case strings.HasSuffix(low, "m"):
		mult, num = 1e-3, low[:len(low)-1]
	case strings.HasSuffix(low, "k"):
		mult, num = 1e3, low[:len(low)-1]
	case strings.HasSuffix(low, "g"):
		mult, num = 1e9, low[:len(low)-1]
	case strings.HasSuffix(low, "t"):
		mult, num = 1e12, low[:len(low)-1]
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("spice: bad numeric value %q", s)
	}
	return v * mult, nil
}
