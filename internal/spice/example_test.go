package spice_test

import (
	"fmt"
	"strings"

	"emvia/internal/spice"
)

// Parse a benchmark-dialect fragment, solve the operating point and read
// the worst IR drop — the primitive the grid Monte Carlo repeats after
// every via-array failure.
func ExampleCompile() {
	deck := `* fragment
V1 pad 0 1.8
R1 pad n1_0_0 0.5
R2 n1_0_0 n1_1_0 0.5
I1 n1_1_0 0 100m
.op
.end
`
	nl, err := spice.Parse(strings.NewReader(deck))
	if err != nil {
		panic(err)
	}
	c, err := spice.Compile(nl)
	if err != nil {
		panic(err)
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		panic(err)
	}
	v, _ := op.Voltage("n1_1_0")
	fmt.Printf("load node %.2f V, worst IR drop %.1f%%\n", v, 100*op.WorstIRDropFrac(1.8))
	// Output:
	// load node 1.70 V, worst IR drop 5.6%
}

// SPICE numbers carry scale suffixes; "m" is milli and "MEG" is mega.
func ExampleParseValue() {
	for _, s := range []string{"100m", "2.5k", "3MEG"} {
		v, err := spice.ParseValue(s)
		if err != nil {
			panic(err)
		}
		fmt.Println(s, "=", v)
	}
	// Output:
	// 100m = 0.1
	// 2.5k = 2500
	// 3MEG = 3e+06
}
