package spice

import (
	"fmt"
	"math"

	"emvia/internal/par"
	"emvia/internal/solver"
	"emvia/internal/sparse"
	"emvia/internal/trace"
)

// Tunables of the incremental re-solve engine.
const (
	// defaultTol is the CG relative-residual tolerance.
	defaultTol = 1e-7
	// defaultDirectMaxNodes is the free-node count at and below which solves
	// use a cached dense Cholesky factor maintained by rank-one updates
	// instead of preconditioned CG. At a few hundred unknowns the O(n²)
	// triangular solves beat CG iteration, and failure edits become O(n²)
	// factor updates instead of fresh Krylov solves.
	defaultDirectMaxNodes = 256
	// supernodalMinNodes is the free-node count at and above which the sparse
	// direct path uses the blocked supernodal factorization instead of the
	// scalar up-looking one. Below it the scalar factor's lower constant wins;
	// above it the supernodal panels amortize indexing across dense columns
	// and the elimination-tree level schedule can use the solver worker pool.
	supernodalMinNodes = 2048
	// sparseUpdateBudget caps how many rank-one factor updates may accumulate
	// between solves on the sparse direct path. A failure cascade edits one
	// resistor per solve and never comes near it; a bulk value push (load
	// re-tuning rescales every wire) would cost thousands of etree-path
	// updates, where a single refactorization over the static structure is
	// far cheaper — so past the budget the factor is just marked stale and
	// the next solve refactors once.
	sparseUpdateBudget = 32
	// precondRefreshEdits is the staleness budget K: a Refreshable
	// preconditioner is refactored in place once this many resistor edits
	// have accumulated since it last matched the matrix. Below the budget
	// the stale factor is knowingly reused — after few failures it remains
	// an excellent (and still SPD, hence valid) preconditioner.
	precondRefreshEdits = 16
)

// Circuit is a compiled netlist ready for repeated DC solves with mutable
// resistor values — the operation the EM failure simulation performs after
// every via-array failure. The first solve compiles a fixed-pattern linear
// system (the gmin leak puts every free node on the diagonal and disabled
// resistors stay in the pattern), after which every resistor edit is an
// in-place O(4) value update and re-solves reuse all buffers and factors.
type Circuit struct {
	// Tol is the relative residual tolerance of the iterative solve path.
	// Zero selects the default 1e-7.
	Tol float64
	// DirectMaxNodes bounds the free-node count for the direct dense-factor
	// path. Zero selects the default 256; negative disables the direct path.
	// It is consulted when the solve pattern is first compiled, so set it
	// before the first solve.
	DirectMaxNodes int
	// Solver selects the backend. The zero value defers to the process-wide
	// default (normally SolverAuto: dense up to DirectMaxNodes, sparse
	// Cholesky above). Like DirectMaxNodes it is consulted when the solve
	// pattern is first compiled.
	Solver SolverMode

	names []string
	index map[string]int

	fixed   []float64 // pad voltage per node; NaN when the node is free
	freeIdx []int     // equation index per node, -1 for pads
	nFree   int

	res []cResistor
	cur []cCurrent

	gmin float64

	asm *assembly // compiled fixed-pattern system; nil until the first solve

	// Preconditioner cache for the iterative path. precondGen records the
	// assembly generation the preconditioner last matched, so SolveDC can
	// tell exactly how stale it is: Updatable preconditioners are kept
	// current eagerly, Refreshable ones refresh on the staleness policy
	// (edit budget or CG iteration drift), and any reuse in between is a
	// deliberate policy decision rather than a forgotten invalidation.
	precond           solver.Preconditioner
	precondIters      int // iteration count right after the cache was (re)built
	precondGen        uint64
	editsSinceRefresh int

	// met holds telemetry handles fetched once at compile; all nil (no-op)
	// when telemetry is disabled.
	met circuitMetrics
}

type cResistor struct {
	name     string
	a, b     int // node indices, -1 = ground
	cond     float64
	disabled bool
}

type cCurrent struct {
	a, b int
	amps float64
}

// resSlots caches the nnz slots and RHS coupling of one resistor so a
// conductance change applies as at most four in-place matrix edits plus at
// most two RHS edits.
type resSlots struct {
	aa, bb, ab, ba int     // matrix value slots; -1 when the entry does not exist
	fa, fb         int     // free equation index per terminal; -1 for pad or ground
	va, vb         float64 // pinned voltage of a pad terminal (0 for ground or free)
}

// assembly is the compiled fixed-pattern linear system of a circuit. The
// sparsity pattern covers every resistor — disabled ones too — plus the gmin
// leak on every free diagonal, so it is invariant across arbitrary failure
// and repair sequences and every topology edit is a pure value update.
type assembly struct {
	mat   *sparse.CSR
	rhs   []float64
	slots []resSlots // nil until the first edit compiles them (ensureSlots)
	gen   uint64     // bumped on every value edit

	// Pristine snapshots taken right after compilation. ResetResistors
	// restores them verbatim, so every Monte-Carlo trial starts from
	// bit-identical state no matter what previous trials did — the property
	// that keeps parallel runs identical to serial ones.
	mat0 []float64
	rhs0 []float64
	res0 []cResistor

	// Direct path (small grids): cached dense Cholesky factor maintained by
	// rank-one updates/downdates; chol0 is the pristine factor restored at
	// trial reset by memcpy. The factor is built lazily — a one-shot cold
	// solve never pays the O(n³) factorization; only re-solve activity
	// (an edit or a trial reset after the first solve) triggers it.
	direct       bool
	chol         *solver.DenseCholesky
	chol0        *solver.DenseCholesky
	w            []float64 // rank-one update scratch
	needRefactor bool      // a downdate broke down; refactor from mat lazily

	// Sparse direct path (large grids): fill-reducing-ordered sparse Cholesky
	// factor maintained by Davis–Hager edge up/downdates; schol0 is the
	// pristine factor restored at trial reset by memcpy. Unlike the dense
	// path the factor engages eagerly on the first solve — above the dense
	// ceiling the symbolic-plus-numeric factorization already beats a cold
	// preconditioned CG solve, and every re-solve after it is two triangular
	// sweeps over nnz(L). needRefactor is shared with the dense path (only
	// one direct backend is ever active).
	sparseDirect bool
	schol        solver.SparseFactor
	schol0       solver.SparseFactor
	pendingEdits int // factor updates since the last solve (sparseUpdateBudget)

	// Iterative-path scratch: CG workspace and the warm-start vector.
	work solver.Workspace
	x0   []float64
}

// Compile flattens a netlist into solver-ready form. Every voltage source
// pins its node; a node pinned twice with different voltages is an error.
func Compile(nl *Netlist) (*Circuit, error) {
	names := nl.Nodes()
	c := &Circuit{
		names: names,
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		c.index[n] = i
	}
	c.fixed = make([]float64, len(names))
	for i := range c.fixed {
		c.fixed[i] = math.NaN()
	}
	for _, v := range nl.Voltages {
		i, ok := c.index[v.Node]
		if !ok {
			return nil, fmt.Errorf("spice: voltage source %s on unknown node %s", v.Name, v.Node)
		}
		if !math.IsNaN(c.fixed[i]) && c.fixed[i] != v.Volts {
			return nil, fmt.Errorf("spice: node %s pinned to both %g and %g volts", v.Node, c.fixed[i], v.Volts)
		}
		c.fixed[i] = v.Volts
	}
	c.freeIdx = make([]int, len(names))
	for i := range names {
		if math.IsNaN(c.fixed[i]) {
			c.freeIdx[i] = c.nFree
			c.nFree++
		} else {
			c.freeIdx[i] = -1
		}
	}
	nodeOf := func(n string) int {
		if IsGround(n) {
			return -1
		}
		return c.index[n]
	}
	maxCond := 0.0
	for _, r := range nl.Resistors {
		g := 1 / r.Ohms
		if g > maxCond {
			maxCond = g
		}
		c.res = append(c.res, cResistor{name: r.Name, a: nodeOf(r.A), b: nodeOf(r.B), cond: g})
	}
	for _, s := range nl.Currents {
		c.cur = append(c.cur, cCurrent{a: nodeOf(s.A), b: nodeOf(s.B), amps: s.Amps})
	}
	if maxCond == 0 {
		maxCond = 1
	}
	// A vanishing leak to ground keeps the system nonsingular when failures
	// island part of the grid; islanded nodes then drift to 0 V, which
	// correctly registers as a catastrophic IR-drop violation.
	c.gmin = 1e-12 * maxCond
	return c, nil
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.names) }

// NumResistors returns the resistor count (compile order = netlist order).
func (c *Circuit) NumResistors() int { return len(c.res) }

// NodeIndex returns the index of a named node.
func (c *Circuit) NodeIndex(name string) (int, bool) {
	i, ok := c.index[name]
	return i, ok
}

// NodeName returns the name of node i.
func (c *Circuit) NodeName(i int) string { return c.names[i] }

// IsPad reports whether node i is pinned by a voltage source.
func (c *Circuit) IsPad(i int) bool { return c.freeIdx[i] < 0 }

// Generation returns the topology-edit counter of the compiled system: it
// advances on every resistor value change, disable, enable, and reset, and is
// zero before the first solve. Tests and callers use it to reason about
// preconditioner staleness.
func (c *Circuit) Generation() uint64 {
	if c.asm == nil {
		return 0
	}
	return c.asm.gen
}

// DirectPath reports whether solves use the cached dense factor (small
// systems) rather than preconditioned CG. Decided at first solve.
func (c *Circuit) DirectPath() bool { return c.asm != nil && c.asm.direct }

// PrecondStaleEdits returns how many resistor edits the iterative-path
// preconditioner is currently behind the matrix. Zero means exactly current.
func (c *Circuit) PrecondStaleEdits() int { return c.editsSinceRefresh }

// freeTerm maps a node index (-1 = ground) to its free equation index.
func (c *Circuit) freeTerm(node int) int {
	if node < 0 {
		return -1
	}
	return c.freeIdx[node]
}

// compile builds the fixed sparsity pattern with its numeric content stamped
// directly — a one-shot cold solve pays only for a solver-ready system. The
// per-resistor slot map and the pristine snapshots compile lazily at the
// first edit or reset (ensureSlots), so they cost nothing when no
// incremental edits follow. Called lazily by the first solve so that
// pre-solve SetResistor / DisableResistor calls are folded into the pristine
// state.
func (c *Circuit) compile() {
	c.met = newCircuitMetrics()
	n := c.nFree
	tr := sparse.NewTriplet(n, n, len(c.res)*4+n)
	rhs := make([]float64, n)
	for i := range c.names {
		if fi := c.freeIdx[i]; fi >= 0 {
			tr.Add(fi, fi, c.gmin) // gmin leak anchors every free diagonal
		}
	}
	for _, r := range c.res {
		fa, fb := c.freeTerm(r.a), c.freeTerm(r.b)
		g := r.cond
		if fa >= 0 {
			tr.Add(fa, fa, g)
			if fb >= 0 {
				tr.Add(fa, fb, -g)
			}
		}
		if fb >= 0 {
			tr.Add(fb, fb, g)
			if fa >= 0 {
				tr.Add(fb, fa, -g)
			}
		}
		if r.disabled {
			// Cancel the stamp numerically with a duplicate of opposite
			// sign: ToCSR sums duplicates, leaving the slot in the pattern
			// with value zero — the invariant that keeps later enables pure
			// value updates.
			if fa >= 0 {
				tr.Add(fa, fa, -g)
				if fb >= 0 {
					tr.Add(fa, fb, g)
				}
			}
			if fb >= 0 {
				tr.Add(fb, fb, -g)
				if fa >= 0 {
					tr.Add(fb, fa, g)
				}
			}
			continue
		}
		// A pad terminal pins its side; its conductance moves to the RHS.
		if fa >= 0 && fb < 0 && r.b >= 0 {
			rhs[fa] += g * c.fixed[r.b]
		}
		if fb >= 0 && fa < 0 && r.a >= 0 {
			rhs[fb] += g * c.fixed[r.a]
		}
	}
	for _, s := range c.cur {
		// Current flows a→b through the source: out of node a, into node b.
		if s.a >= 0 {
			if fi := c.freeIdx[s.a]; fi >= 0 {
				rhs[fi] -= s.amps
			}
		}
		if s.b >= 0 {
			if fi := c.freeIdx[s.b]; fi >= 0 {
				rhs[fi] += s.amps
			}
		}
	}
	a := &assembly{mat: tr.ToCSR(), rhs: rhs}
	c.asm = a

	limit := c.DirectMaxNodes
	if limit == 0 {
		limit = defaultDirectMaxNodes
	}
	mode := c.Solver
	if mode == SolverDefault {
		mode = DefaultSolver()
	}
	switch mode {
	case SolverDense:
		a.direct = n > 0
	case SolverSparse:
		a.sparseDirect = n > 0
	case SolverCG:
		// Neither direct path; preconditioned CG handles everything.
	default: // SolverAuto
		if n > 0 && limit > 0 && n <= limit {
			a.direct = true
		} else if n > 0 {
			a.sparseDirect = true
		}
	}
	if a.direct {
		a.w = make([]float64, n)
	}
	a.work.Reserve(n)
	a.x0 = make([]float64, n)
}

// SolverBackend reports the backend the compiled circuit actually uses
// ("dense", "sparse" or "cg"); before the first solve it reports how the
// current configuration would resolve. Factorization failures downgrade a
// direct backend to CG, and this reflects that.
func (c *Circuit) SolverBackend() string {
	if c.asm != nil {
		switch {
		case c.asm.direct:
			return SolverDense.String()
		case c.asm.sparseDirect:
			return SolverSparse.String()
		default:
			return SolverCG.String()
		}
	}
	mode := c.Solver
	if mode == SolverDefault {
		mode = DefaultSolver()
	}
	if mode == SolverAuto {
		limit := c.DirectMaxNodes
		if limit == 0 {
			limit = defaultDirectMaxNodes
		}
		if limit > 0 && c.nFree <= limit {
			mode = SolverDense
		} else {
			mode = SolverSparse
		}
	}
	return mode.String()
}

// ensureSlots lazily compiles the incremental-edit machinery: the
// per-resistor slot map and the pristine snapshots ResetResistors restores.
// It must run before the first post-compile mutation of the resistor table so
// the snapshots capture the compiled state — SetResistor, DisableResistor and
// ResetResistors call it ahead of any change. A circuit that only ever does
// one-shot solves never reaches it.
func (c *Circuit) ensureSlots() {
	a := c.asm
	if a == nil || a.slots != nil {
		return
	}
	mat := a.mat
	a.slots = make([]resSlots, len(c.res))
	for k, r := range c.res {
		sl := resSlots{aa: -1, bb: -1, ab: -1, ba: -1, fa: -1, fb: -1}
		if r.a >= 0 {
			if fi := c.freeIdx[r.a]; fi >= 0 {
				sl.fa = fi
			} else {
				sl.va = c.fixed[r.a]
			}
		}
		if r.b >= 0 {
			if fi := c.freeIdx[r.b]; fi >= 0 {
				sl.fb = fi
			} else {
				sl.vb = c.fixed[r.b]
			}
		}
		if sl.fa >= 0 {
			sl.aa = mat.SlotIndex(sl.fa, sl.fa)
			if sl.fb >= 0 {
				sl.ab = mat.SlotIndex(sl.fa, sl.fb)
			}
		}
		if sl.fb >= 0 {
			sl.bb = mat.SlotIndex(sl.fb, sl.fb)
			if sl.fa >= 0 {
				sl.ba = mat.SlotIndex(sl.fb, sl.fa)
			}
		}
		a.slots[k] = sl
	}
	a.mat0 = make([]float64, mat.NNZ())
	mat.CopyValues(a.mat0)
	a.rhs0 = append([]float64(nil), a.rhs...)
	a.res0 = append([]cResistor(nil), c.res...)
}

// applyDelta adds a conductance change dg of one resistor to the matrix
// values and RHS. Pad terms move to the RHS; a ground terminal carries va/vb
// of zero, so its RHS edit degenerates to a no-op.
func (c *Circuit) applyDelta(sl resSlots, dg float64) {
	a := c.asm
	if sl.fa >= 0 {
		a.mat.AddAt(sl.aa, dg)
		if sl.fb >= 0 {
			a.mat.AddAt(sl.ab, -dg)
		} else {
			a.rhs[sl.fa] += dg * sl.vb
		}
	}
	if sl.fb >= 0 {
		a.mat.AddAt(sl.bb, dg)
		if sl.fa >= 0 {
			a.mat.AddAt(sl.ba, -dg)
		} else {
			a.rhs[sl.fb] += dg * sl.va
		}
	}
}

// editResistor propagates an effective-conductance change of resistor i into
// the compiled system and its cached factor or preconditioner. Before the
// first solve there is nothing compiled and the change is simply recorded in
// the resistor table.
func (c *Circuit) editResistor(i int, dg float64) {
	if dg == 0 || c.asm == nil {
		return
	}
	a := c.asm
	a.gen++
	sl := a.slots[i]
	c.applyDelta(sl, dg)
	c.editsSinceRefresh++
	c.met.slotEdits.Inc()
	if a.sparseDirect {
		if a.schol != nil && !a.needRefactor {
			a.pendingEdits++
			if a.pendingEdits > sparseUpdateBudget {
				// A bulk edit burst: one refactorization at the next solve
				// beats continuing to chase it with rank-one updates.
				a.needRefactor = true
				return
			}
			// The edit is rank-one along a structural edge of A, so the
			// sparse factor absorbs it along the elimination-tree path —
			// O(path × column nnz) instead of a refactorization or a fresh
			// Krylov solve.
			s := math.Sqrt(math.Abs(dg))
			if dg > 0 {
				a.schol.UpdateEdge(sl.fa, sl.fb, s)
			} else if err := a.schol.DowndateEdge(sl.fa, sl.fb, s); err != nil {
				// Cancellation broke the downdate; the CSR values are always
				// correct, so refactor from them at the next solve.
				a.needRefactor = true
			}
		}
		return
	}
	if a.direct {
		if a.chol != nil && !a.needRefactor {
			// The edit is rank-one: ΔA = dg·u·uᵀ with u = e_fa − e_fb
			// (dropping pad/ground terminals), so the cached factor absorbs
			// it as a Cholesky update (dg > 0) or downdate (dg < 0).
			s := math.Sqrt(math.Abs(dg))
			w := a.w
			for j := range w {
				w[j] = 0
			}
			if sl.fa >= 0 {
				w[sl.fa] = s
			}
			if sl.fb >= 0 {
				w[sl.fb] = -s
			}
			if dg > 0 {
				a.chol.Update(w)
			} else if err := a.chol.Downdate(w); err != nil {
				// Cancellation broke the downdate; the CSR values are always
				// correct, so refactor from them at the next solve.
				a.needRefactor = true
			}
		}
		return
	}
	if upd, ok := c.precond.(solver.Updatable); ok {
		// Updatable preconditioners absorb the touched diagonals in O(1)
		// and stay exactly current.
		okA := sl.fa < 0 || upd.UpdateDiag(sl.fa, a.mat.ValueAt(sl.aa))
		okB := sl.fb < 0 || upd.UpdateDiag(sl.fb, a.mat.ValueAt(sl.bb))
		if okA && okB {
			c.precondGen = a.gen
			c.editsSinceRefresh = 0
		} else {
			c.precond = nil
		}
	}
}

// SetResistor replaces the value of resistor i (netlist order), re-enabling
// it if it was disabled.
func (c *Circuit) SetResistor(i int, ohms float64) error {
	if i < 0 || i >= len(c.res) {
		return fmt.Errorf("spice: resistor index %d out of range", i)
	}
	if ohms <= 0 {
		return fmt.Errorf("spice: resistor %s set to non-positive %g Ω", c.res[i].name, ohms)
	}
	g := 1 / ohms
	old := 0.0
	if !c.res[i].disabled {
		old = c.res[i].cond
	}
	c.ensureSlots() // snapshot the pre-edit state before mutating
	c.res[i].cond = g
	c.res[i].disabled = false
	c.editResistor(i, g-old)
	return nil
}

// DisableResistor removes resistor i from the network (an open-circuit EM
// failure). The resistor keeps its value for a later SetResistor restore.
func (c *Circuit) DisableResistor(i int) error {
	if i < 0 || i >= len(c.res) {
		return fmt.Errorf("spice: resistor index %d out of range", i)
	}
	if !c.res[i].disabled {
		c.ensureSlots() // snapshot the pre-edit state before mutating
		c.res[i].disabled = true
		c.editResistor(i, -c.res[i].cond)
	}
	return nil
}

// ResistorDisabled reports whether resistor i is currently open.
func (c *Circuit) ResistorDisabled(i int) bool { return c.res[i].disabled }

// ResetResistors restores every resistor — value and enabled state — to the
// snapshot taken when the solve pattern was compiled (for a circuit solved
// straight after Compile, the netlist values), together with the matching
// matrix values, RHS, cached factor, and preconditioner. It is the O(nnz)
// bulk alternative to replaying SetResistor calls and leaves the circuit in
// a canonical bit-reproducible state, which is what keeps parallel
// Monte-Carlo trials identical to serial ones. Before the first solve it is
// a no-op, since the current state is the snapshot state.
func (c *Circuit) ResetResistors() {
	if c.asm == nil {
		return
	}
	c.ensureSlots() // a reset signals re-solve activity; compile the machinery
	c.met.resets.Inc()
	a := c.asm
	copy(c.res, a.res0)
	a.mat.SetValues(a.mat0)
	copy(a.rhs, a.rhs0)
	a.gen++
	if a.sparseDirect {
		a.pendingEdits = 0
		if a.schol0 != nil {
			// Pristine factor restored by memcpy — no refactorization.
			a.schol.Restore(a.schol0) //nolint:errcheck // clone shares the structure
			a.needRefactor = false
		} else if err := c.ensureSparseFactor(); err != nil {
			// Matrix values are pristine, so a factorization failure here
			// means the sparse path cannot work at all; fall back to CG.
			a.sparseDirect = false
		} else {
			// First trial reset: mat holds pristine values, so the factor
			// just built is the pristine one — snapshot it for later resets.
			a.schol0 = a.schol.CloneFactor()
		}
		return
	}
	if a.direct {
		if a.chol0 != nil {
			// Pristine factor restored by memcpy — no refactorization.
			a.chol.Set(a.chol0)
			a.needRefactor = false
		} else if err := c.ensureFactor(); err != nil {
			// Matrix values are pristine, so a factorization failure here
			// means the direct path cannot work at all; fall back to CG.
			a.direct = false
		} else {
			// First trial reset: mat holds pristine values, so the factor
			// just built is the pristine one — snapshot it for later resets.
			a.chol0 = a.chol.Clone()
		}
		return
	}
	if c.precond != nil {
		// Put the preconditioner into its canonical pristine-matrix state so
		// trial results do not depend on the refresh history of earlier
		// trials on this circuit.
		if rf, ok := c.precond.(solver.Refreshable); ok {
			if err := rf.Refresh(a.mat); err != nil {
				c.precond = solver.NewAutoPreconditioner(a.mat)
			}
		}
		c.precondGen = a.gen
		c.editsSinceRefresh = 0
		c.precondIters = -1
	}
}

// SetCurrent replaces the drive of current source i (netlist order). A load
// change only moves the right-hand side — the conductance matrix and any
// cached factor are untouched — so re-tuning loads on a compiled circuit
// costs O(1) per source instead of a recompilation. The change re-baselines
// the circuit: ResetResistors keeps the new load (current sources are not
// part of the resistor-failure snapshot).
func (c *Circuit) SetCurrent(i int, amps float64) error {
	if i < 0 || i >= len(c.cur) {
		return fmt.Errorf("spice: current source index %d out of range", i)
	}
	s := &c.cur[i]
	d := amps - s.amps
	if d == 0 {
		return nil
	}
	s.amps = amps
	if c.asm == nil {
		return nil // compile stamps the new value
	}
	a := c.asm
	if s.a >= 0 {
		if fi := c.freeIdx[s.a]; fi >= 0 {
			a.rhs[fi] -= d
			if a.rhs0 != nil {
				a.rhs0[fi] -= d
			}
		}
	}
	if s.b >= 0 {
		if fi := c.freeIdx[s.b]; fi >= 0 {
			a.rhs[fi] += d
			if a.rhs0 != nil {
				a.rhs0[fi] += d
			}
		}
	}
	return nil
}

// NumCurrents returns the current-source count (compile order = netlist
// order).
func (c *Circuit) NumCurrents() int { return len(c.cur) }

// Clone returns an independent circuit that shares every immutable
// compile-time artifact with the receiver — node tables, sparsity pattern,
// per-resistor slot map, pristine snapshots, and the symbolic structure of
// the sparse factor — while copying all mutable numeric state (matrix
// values, RHS, resistor table, factor values). A clone solves and edits
// independently of its source and produces bit-identical results from the
// same state, which is what lets mc.RunParallel hand each worker a clone
// instead of recompiling and refactoring per worker. Cloning only reads the
// receiver, so concurrent clones of one master are safe; cloning and
// mutating the same circuit concurrently is not.
func (c *Circuit) Clone() *Circuit {
	d := &Circuit{
		Tol:            c.Tol,
		DirectMaxNodes: c.DirectMaxNodes,
		Solver:         c.Solver,
		names:          c.names,
		index:          c.index,
		fixed:          c.fixed,
		freeIdx:        c.freeIdx,
		nFree:          c.nFree,
		res:            append([]cResistor(nil), c.res...),
		cur:            append([]cCurrent(nil), c.cur...),
		gmin:           c.gmin,
		met:            c.met,
	}
	a := c.asm
	if a == nil {
		return d
	}
	b := &assembly{
		mat:          a.mat.ShallowCloneValues(),
		rhs:          append([]float64(nil), a.rhs...),
		slots:        a.slots, // read-only once built
		gen:          a.gen,
		mat0:         a.mat0, // pristine snapshots are write-once
		res0:         a.res0,
		direct:       a.direct,
		sparseDirect: a.sparseDirect,
		needRefactor: a.needRefactor,
		pendingEdits: a.pendingEdits,
	}
	if a.rhs0 != nil {
		// rhs0 is the one snapshot that can move after it is taken
		// (SetCurrent re-baselines loads), so the clone owns a copy.
		b.rhs0 = append([]float64(nil), a.rhs0...)
	}
	if a.chol != nil {
		b.chol = a.chol.Clone()
	}
	if a.chol0 != nil {
		b.chol0 = a.chol0.Clone()
	}
	if a.schol != nil {
		b.schol = a.schol.CloneFactor()
	}
	if a.schol0 != nil {
		b.schol0 = a.schol0.CloneFactor()
	}
	if a.direct {
		b.w = make([]float64, c.nFree)
	}
	b.work.Reserve(c.nFree)
	b.x0 = make([]float64, c.nFree)
	d.asm = b
	return d
}

// OP is a DC operating point.
type OP struct {
	c     *Circuit
	volts []float64 // per node (pads hold their pinned values)
	stats solver.Stats
}

// NewOP returns an empty operating point sized for this circuit, for use as
// a reusable SolveDCInto destination.
func (c *Circuit) NewOP() *OP {
	return &OP{c: c, volts: make([]float64, len(c.names))}
}

// SolveDC computes the operating point into a fresh OP. prev, when non-nil,
// warm-starts the iterative solve from an earlier operating point of the
// same circuit — after a single failure the solution moves little, so this
// typically cuts iterations substantially.
func (c *Circuit) SolveDC(prev *OP) (*OP, error) {
	op := &OP{}
	if err := c.SolveDCInto(op, prev); err != nil {
		return nil, err
	}
	return op, nil
}

// SolveDCInto computes the operating point into dst, reusing its buffers.
// Together with the compiled fixed-pattern assembly this makes repeated
// re-solves after resistor edits allocation-free. prev, when non-nil,
// warm-starts the iterative path and must not be dst itself.
func (c *Circuit) SolveDCInto(dst, prev *OP) error {
	if dst == nil {
		return fmt.Errorf("spice: SolveDCInto needs a destination OP")
	}
	if dst == prev {
		return fmt.Errorf("spice: SolveDCInto destination must differ from the warm-start OP")
	}
	dst.c = c
	if len(dst.volts) != len(c.names) {
		dst.volts = make([]float64, len(c.names))
	}
	dst.stats = solver.Stats{}
	if c.nFree == 0 {
		// Everything pinned: trivial.
		copy(dst.volts, c.fixed)
		return nil
	}
	if c.asm == nil {
		c.compile()
	}
	a := c.asm
	n := c.nFree

	// The sparse direct path engages eagerly: above the dense ceiling the
	// AMD-ordered factorization beats even a single cold CG solve, and its
	// cost is amortized across every re-solve that follows.
	if a.sparseDirect {
		if a.schol == nil || a.needRefactor {
			if err := c.ensureSparseFactor(); err != nil {
				// The sparse factorization failed; fall back to CG permanently.
				a.sparseDirect = false
			}
		}
		if a.sparseDirect {
			a.work.Reserve(n)
			if err := a.schol.SolveInto(a.work.X, a.rhs); err != nil {
				return fmt.Errorf("spice: DC solve: %w", err)
			}
			a.pendingEdits = 0
			c.met.sparseSolves.Inc()
			c.scatter(dst, a.work.X)
			return nil
		}
	}

	// The dense direct path engages only once there is re-solve activity (an
	// edit or a reset): a one-shot cold solve stays on CG and never pays the
	// O(n³) factorization.
	useDirect := a.direct && (a.chol != nil || a.gen > 0)
	if useDirect && (a.chol == nil || a.needRefactor) {
		if err := c.ensureFactor(); err != nil {
			// The dense factorization failed; fall back to CG permanently.
			a.direct = false
			useDirect = false
		}
	}
	if useDirect {
		a.work.Reserve(n)
		if err := a.chol.SolveInto(a.work.X, a.rhs); err != nil {
			return fmt.Errorf("spice: DC solve: %w", err)
		}
		c.met.directSolves.Inc()
		c.scatter(dst, a.work.X)
		return nil
	}

	var x0 []float64
	if prev != nil && prev.c == c {
		x0 = a.x0
		for i := range c.names {
			if fi := c.freeIdx[i]; fi >= 0 {
				x0[fi] = prev.volts[i]
			}
		}
	}
	tol := c.Tol
	if tol == 0 {
		tol = defaultTol
	}
	if c.precond == nil {
		c.precond = solver.NewAutoPreconditioner(a.mat)
		c.precondIters = -1
		c.precondGen = a.gen
		c.editsSinceRefresh = 0
	}
	// Staleness policy: the generation counter tells how far the
	// preconditioner lags the matrix. Within the edit budget the stale
	// factor is reused deliberately; past it, refresh in place.
	if c.precondGen != a.gen && c.editsSinceRefresh >= precondRefreshEdits {
		c.refreshPrecond()
	}
	x, st, err := solver.CG(a.mat, a.rhs, solver.Options{Tol: tol, M: c.precond, X0: x0, Work: &a.work})
	if err != nil {
		// The preconditioner may be broken (e.g. a failed in-place refresh);
		// rebuild from scratch once and retry before giving up.
		c.precond = solver.NewAutoPreconditioner(a.mat)
		c.precondIters = -1
		c.precondGen = a.gen
		c.editsSinceRefresh = 0
		x, st, err = solver.CG(a.mat, a.rhs, solver.Options{Tol: tol, M: c.precond, X0: x0, Work: &a.work})
		if err != nil {
			return fmt.Errorf("spice: DC solve: %w", err)
		}
	}
	if c.precondIters < 0 {
		c.precondIters = st.Iterations
	} else if st.Iterations > 8*(c.precondIters+4) {
		// Convergence drifted well past the fresh-factor baseline even
		// inside the edit budget: refresh now so the next solve recovers.
		c.refreshPrecond()
	}
	c.met.cgSolves.Inc()
	dst.stats = st
	c.scatter(dst, x)
	return nil
}

// ensureFactor builds (or rebuilds, after a downdate breakdown) the cached
// dense factor from the current matrix values.
func (c *Circuit) ensureFactor() error {
	a := c.asm
	if a.chol == nil {
		chol, err := solver.NewDenseCholeskyFromCSR(a.mat)
		if err != nil {
			return err
		}
		a.chol = chol
	} else if err := a.chol.RefactorFromCSR(a.mat); err != nil {
		return err
	}
	a.needRefactor = false
	return nil
}

// ensureSparseFactor builds (or refactors, after a downdate breakdown) the
// cached sparse factor from the current matrix values. The first build picks
// the backend by size — scalar up-looking below supernodalMinNodes free
// nodes, blocked supernodal above with nested-dissection ordering and the
// process solver pool — and pays the ordering plus symbolic analysis;
// refactorizations reuse the static structure and allocate nothing.
func (c *Circuit) ensureSparseFactor() error {
	a := c.asm
	done := trace.Default().Span("spice.sparse.factor")
	defer done()
	t0 := c.met.factorSeconds.Start()
	if a.schol == nil {
		var schol solver.SparseFactor
		var err error
		if c.nFree >= supernodalMinNodes {
			schol, err = solver.NewSupernodalCholeskyFromCSR(a.mat, par.Shared(SolverWorkers()))
		} else {
			schol, err = solver.NewSparseCholeskyFromCSR(a.mat)
		}
		if err != nil {
			return err
		}
		a.schol = schol
	} else if err := a.schol.RefactorFromCSR(a.mat); err != nil {
		return err
	}
	c.met.factorSeconds.ObserveSince(t0)
	a.needRefactor = false
	a.pendingEdits = 0
	return nil
}

// refreshPrecond brings the cached preconditioner up to date with the
// current matrix, in place when it supports that, and resets the staleness
// accounting and the iteration baseline.
func (c *Circuit) refreshPrecond() {
	c.met.refreshes.Inc()
	a := c.asm
	if rf, ok := c.precond.(solver.Refreshable); ok {
		if err := rf.Refresh(a.mat); err != nil {
			c.precond = solver.NewAutoPreconditioner(a.mat)
		}
	}
	c.precondGen = a.gen
	c.editsSinceRefresh = 0
	c.precondIters = -1
}

// scatter expands the free-node solution x into per-node voltages.
func (c *Circuit) scatter(op *OP, x []float64) {
	for i := range c.names {
		if fi := c.freeIdx[i]; fi >= 0 {
			op.volts[i] = x[fi]
		} else {
			op.volts[i] = c.fixed[i]
		}
	}
}

// NumFree returns the free (unpinned) node count — the dimension of the
// compiled linear system.
func (c *Circuit) NumFree() int { return c.nFree }

// ResistorTerms returns the free equation indices of resistor i's terminals
// (-1 when a terminal is a pad or ground) and the pinned voltage of each
// non-free terminal (0 for ground or for a free terminal). Batch trial
// preparation uses it to build the rank-one edit vector of a failure without
// reaching into the compiled slot map.
func (c *Circuit) ResistorTerms(i int) (fa, fb int, va, vb float64) {
	r := c.res[i]
	fa, fb = c.freeTerm(r.a), c.freeTerm(r.b)
	if r.a >= 0 && fa < 0 {
		va = c.fixed[r.a]
	}
	if r.b >= 0 && fb < 0 {
		vb = c.fixed[r.b]
	}
	return fa, fb, va, vb
}

// ResistorConductance returns the effective conductance of resistor i: its
// stamped value, or 0 while disabled.
func (c *Circuit) ResistorConductance(i int) float64 {
	if c.res[i].disabled {
		return 0
	}
	return c.res[i].cond
}

// ResistorNodes returns the node indices of resistor i's terminals, −1 for
// a ground terminal. Unlike ResistorTerms these are full node indices (pads
// included), which is what graph-level consumers like the steady-state
// screen need to map branches onto solved node voltages.
func (c *Circuit) ResistorNodes(i int) (a, b int) {
	r := c.res[i]
	return r.a, r.b
}

// SolveFreeBatch solves the compiled free-node system for nrhs stacked
// right-hand sides (vector v occupies b[v·n:(v+1)·n], likewise x) against the
// current cached sparse factor, bit-identical to nrhs separate solves. It is
// only available on the sparse direct path — the batched triangular sweeps
// are how Monte-Carlo trial groups amortize factor traffic — and builds the
// factor on first use like SolveDCInto would.
func (c *Circuit) SolveFreeBatch(x, b []float64, nrhs int) error {
	if c.asm == nil {
		c.compile()
	}
	a := c.asm
	if !a.sparseDirect {
		return fmt.Errorf("spice: SolveFreeBatch needs the sparse direct path (backend is %s)", c.SolverBackend())
	}
	if a.schol == nil || a.needRefactor {
		if err := c.ensureSparseFactor(); err != nil {
			a.sparseDirect = false
			return fmt.Errorf("spice: SolveFreeBatch factorization: %w", err)
		}
	}
	return a.schol.SolveBatchInto(x, b, nrhs)
}

// ScatterFree expands a free-node solution x (length NumFree) into the
// per-node voltages of op, exactly as an internal solve would. op is bound to
// this circuit and its iterative-solver stats are cleared: the caller is
// asserting x is an exact solve of the current system.
func (c *Circuit) ScatterFree(op *OP, x []float64) error {
	if op == nil {
		return fmt.Errorf("spice: ScatterFree needs a destination OP")
	}
	if len(x) != c.nFree {
		return fmt.Errorf("spice: ScatterFree got %d values, want %d", len(x), c.nFree)
	}
	op.c = c
	if len(op.volts) != len(c.names) {
		op.volts = make([]float64, len(c.names))
	}
	op.stats = solver.Stats{}
	c.scatter(op, x)
	return nil
}

// GatherFree collects the free-node voltages of op into x (length NumFree) —
// the inverse of ScatterFree, used to seed batch preparation with the cached
// pristine solution instead of re-solving for it.
func (c *Circuit) GatherFree(x []float64, op *OP) error {
	if op == nil || op.c != c {
		return fmt.Errorf("spice: GatherFree needs an OP of this circuit")
	}
	if len(x) != c.nFree {
		return fmt.Errorf("spice: GatherFree got %d slots, want %d", len(x), c.nFree)
	}
	for i := range c.names {
		if fi := c.freeIdx[i]; fi >= 0 {
			x[fi] = op.volts[i]
		}
	}
	return nil
}

// CloneFor returns a copy of the operating point bound to clone, which must
// be a Clone of the circuit that produced it (same node table). Rebinding
// matters for warm starts: SolveDCInto only uses prev when it belongs to the
// same circuit, so a cloned system must carry cloned operating points.
func (op *OP) CloneFor(clone *Circuit) *OP {
	return &OP{c: clone, volts: append([]float64(nil), op.volts...), stats: op.stats}
}

// Voltage returns the voltage of a named node.
func (op *OP) Voltage(name string) (float64, error) {
	i, ok := op.c.index[name]
	if !ok {
		return 0, fmt.Errorf("spice: unknown node %q", name)
	}
	return op.volts[i], nil
}

// VoltageAt returns the voltage of node i.
func (op *OP) VoltageAt(i int) float64 { return op.volts[i] }

// Stats reports the iterative-solver statistics of the solve (zero for the
// direct dense path, which is exact).
func (op *OP) Stats() solver.Stats { return op.stats }

// ResistorCurrent returns the current (A) through resistor i, positive from
// terminal A to terminal B; zero when disabled.
func (op *OP) ResistorCurrent(i int) float64 {
	r := op.c.res[i]
	if r.disabled {
		return 0
	}
	var va, vb float64
	if r.a >= 0 {
		va = op.volts[r.a]
	}
	if r.b >= 0 {
		vb = op.volts[r.b]
	}
	return (va - vb) * r.cond
}

// ResistorCurrentsInto extracts the current through every resistor of the
// solved operating point in one pass (dst length NumResistors, same sign
// convention as ResistorCurrent: positive from terminal A to B, zero while
// disabled). This is the branch-current extraction the steady-state screen
// runs over the pristine solve — one bulk sweep instead of NumResistors
// bound-checked calls.
func (op *OP) ResistorCurrentsInto(dst []float64) error {
	if len(dst) != len(op.c.res) {
		return fmt.Errorf("spice: ResistorCurrentsInto got %d slots for %d resistors", len(dst), len(op.c.res))
	}
	for i, r := range op.c.res {
		if r.disabled {
			dst[i] = 0
			continue
		}
		var va, vb float64
		if r.a >= 0 {
			va = op.volts[r.a]
		}
		if r.b >= 0 {
			vb = op.volts[r.b]
		}
		dst[i] = (va - vb) * r.cond
	}
	return nil
}

// MinVoltage returns the lowest node voltage and its node index, the
// worst-case IR-drop point of a Vdd grid.
func (op *OP) MinVoltage() (volts float64, node int) {
	volts = math.Inf(1)
	node = -1
	for i, v := range op.volts {
		if v < volts {
			volts = v
			node = i
		}
	}
	return volts, node
}

// WorstIRDropFrac returns the worst IR drop as a fraction of vdd.
func (op *OP) WorstIRDropFrac(vdd float64) float64 {
	v, _ := op.MinVoltage()
	return (vdd - v) / vdd
}
