package spice

import (
	"fmt"
	"math"

	"emvia/internal/solver"
	"emvia/internal/sparse"
)

// Circuit is a compiled netlist ready for repeated DC solves with mutable
// resistor values — the operation the EM failure simulation performs after
// every via-array failure.
type Circuit struct {
	names []string
	index map[string]int

	fixed   []float64 // pad voltage per node; NaN when the node is free
	freeIdx []int     // equation index per node, -1 for pads
	nFree   int

	res []cResistor
	cur []cCurrent

	gmin float64

	// Preconditioner cache: EM failure simulation re-solves the grid after
	// every single-element change, where the pristine-grid IC(0) factor
	// remains an excellent (and still SPD, hence valid) preconditioner.
	// The cache is rebuilt adaptively when convergence degrades.
	precond      solver.Preconditioner
	precondIters int // iteration count right after the cache was (re)built
}

type cResistor struct {
	name     string
	a, b     int // node indices, -1 = ground
	cond     float64
	disabled bool
}

type cCurrent struct {
	a, b int
	amps float64
}

// Compile flattens a netlist into solver-ready form. Every voltage source
// pins its node; a node pinned twice with different voltages is an error.
func Compile(nl *Netlist) (*Circuit, error) {
	names := nl.Nodes()
	c := &Circuit{
		names: names,
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		c.index[n] = i
	}
	c.fixed = make([]float64, len(names))
	for i := range c.fixed {
		c.fixed[i] = math.NaN()
	}
	for _, v := range nl.Voltages {
		i, ok := c.index[v.Node]
		if !ok {
			return nil, fmt.Errorf("spice: voltage source %s on unknown node %s", v.Name, v.Node)
		}
		if !math.IsNaN(c.fixed[i]) && c.fixed[i] != v.Volts {
			return nil, fmt.Errorf("spice: node %s pinned to both %g and %g volts", v.Node, c.fixed[i], v.Volts)
		}
		c.fixed[i] = v.Volts
	}
	c.freeIdx = make([]int, len(names))
	for i := range names {
		if math.IsNaN(c.fixed[i]) {
			c.freeIdx[i] = c.nFree
			c.nFree++
		} else {
			c.freeIdx[i] = -1
		}
	}
	nodeOf := func(n string) int {
		if IsGround(n) {
			return -1
		}
		return c.index[n]
	}
	maxCond := 0.0
	for _, r := range nl.Resistors {
		g := 1 / r.Ohms
		if g > maxCond {
			maxCond = g
		}
		c.res = append(c.res, cResistor{name: r.Name, a: nodeOf(r.A), b: nodeOf(r.B), cond: g})
	}
	for _, s := range nl.Currents {
		c.cur = append(c.cur, cCurrent{a: nodeOf(s.A), b: nodeOf(s.B), amps: s.Amps})
	}
	if maxCond == 0 {
		maxCond = 1
	}
	// A vanishing leak to ground keeps the system nonsingular when failures
	// island part of the grid; islanded nodes then drift to 0 V, which
	// correctly registers as a catastrophic IR-drop violation.
	c.gmin = 1e-12 * maxCond
	return c, nil
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.names) }

// NumResistors returns the resistor count (compile order = netlist order).
func (c *Circuit) NumResistors() int { return len(c.res) }

// NodeIndex returns the index of a named node.
func (c *Circuit) NodeIndex(name string) (int, bool) {
	i, ok := c.index[name]
	return i, ok
}

// NodeName returns the name of node i.
func (c *Circuit) NodeName(i int) string { return c.names[i] }

// IsPad reports whether node i is pinned by a voltage source.
func (c *Circuit) IsPad(i int) bool { return c.freeIdx[i] < 0 }

// SetResistor replaces the value of resistor i (netlist order), re-enabling
// it if it was disabled.
func (c *Circuit) SetResistor(i int, ohms float64) error {
	if i < 0 || i >= len(c.res) {
		return fmt.Errorf("spice: resistor index %d out of range", i)
	}
	if ohms <= 0 {
		return fmt.Errorf("spice: resistor %s set to non-positive %g Ω", c.res[i].name, ohms)
	}
	c.res[i].cond = 1 / ohms
	c.res[i].disabled = false
	return nil
}

// DisableResistor removes resistor i from the network (an open-circuit EM
// failure).
func (c *Circuit) DisableResistor(i int) error {
	if i < 0 || i >= len(c.res) {
		return fmt.Errorf("spice: resistor index %d out of range", i)
	}
	c.res[i].disabled = true
	return nil
}

// ResistorDisabled reports whether resistor i is currently open.
func (c *Circuit) ResistorDisabled(i int) bool { return c.res[i].disabled }

// OP is a DC operating point.
type OP struct {
	c     *Circuit
	volts []float64 // per node (pads hold their pinned values)
	stats solver.Stats
}

// SolveDC computes the operating point. prev, when non-nil, warm-starts the
// iterative solve from an earlier operating point of the same circuit —
// after a single failure the solution moves little, so this typically cuts
// iterations substantially.
func (c *Circuit) SolveDC(prev *OP) (*OP, error) {
	n := c.nFree
	if n == 0 {
		// Everything pinned: trivial.
		volts := make([]float64, len(c.names))
		copy(volts, c.fixed)
		return &OP{c: c, volts: volts}, nil
	}
	tr := sparse.NewTriplet(n, n, len(c.res)*4+n)
	rhs := make([]float64, n)

	for i := 0; i < len(c.names); i++ {
		if fi := c.freeIdx[i]; fi >= 0 {
			tr.Add(fi, fi, c.gmin)
		}
	}
	for _, r := range c.res {
		if r.disabled {
			continue
		}
		c.stampConductance(tr, rhs, r.a, r.b, r.cond)
	}
	for _, s := range c.cur {
		// Current flows a→b through the source: out of node a, into node b.
		if s.a >= 0 {
			if fi := c.freeIdx[s.a]; fi >= 0 {
				rhs[fi] -= s.amps
			}
		}
		if s.b >= 0 {
			if fi := c.freeIdx[s.b]; fi >= 0 {
				rhs[fi] += s.amps
			}
		}
	}

	a := tr.ToCSR()
	var x0 []float64
	if prev != nil && prev.c == c {
		x0 = make([]float64, n)
		for i := 0; i < len(c.names); i++ {
			if fi := c.freeIdx[i]; fi >= 0 {
				x0[fi] = prev.volts[i]
			}
		}
	}
	if c.precond == nil {
		c.precond = solver.NewAutoPreconditioner(a)
		c.precondIters = -1
	}
	x, st, err := solver.CG(a, rhs, solver.Options{
		Tol: 1e-7,
		M:   c.precond,
		X0:  x0,
	})
	if err != nil {
		// The cached preconditioner may be stale after many topology
		// changes; rebuild once and retry before giving up.
		c.precond = solver.NewAutoPreconditioner(a)
		c.precondIters = -1
		x, st, err = solver.CG(a, rhs, solver.Options{Tol: 1e-7, M: c.precond, X0: x0})
		if err != nil {
			return nil, fmt.Errorf("spice: DC solve: %w", err)
		}
	}
	if c.precondIters < 0 {
		c.precondIters = st.Iterations
	} else if st.Iterations > 8*(c.precondIters+4) {
		// Convergence has degraded well past the fresh-factor baseline:
		// drop the cache so the next solve refactors.
		c.precond = nil
	}
	volts := make([]float64, len(c.names))
	for i := range c.names {
		if fi := c.freeIdx[i]; fi >= 0 {
			volts[i] = x[fi]
		} else {
			volts[i] = c.fixed[i]
		}
	}
	return &OP{c: c, volts: volts, stats: st}, nil
}

// stampConductance stamps a conductance between nodes a and b (-1 = ground)
// into the free-node system, moving pad terms to the RHS.
func (c *Circuit) stampConductance(tr *sparse.Triplet, rhs []float64, a, b int, g float64) {
	var fa, fb = -1, -1
	var va, vb float64
	if a >= 0 {
		fa = c.freeIdx[a]
		va = c.fixed[a]
	}
	if b >= 0 {
		fb = c.freeIdx[b]
		vb = c.fixed[b]
	}
	if fa >= 0 {
		tr.Add(fa, fa, g)
		switch {
		case fb >= 0:
			tr.Add(fa, fb, -g)
		case b >= 0: // pad
			rhs[fa] += g * vb
		} // ground contributes nothing to rhs
	}
	if fb >= 0 {
		tr.Add(fb, fb, g)
		switch {
		case fa >= 0:
			tr.Add(fb, fa, -g)
		case a >= 0: // pad
			rhs[fb] += g * va
		}
	}
}

// Voltage returns the voltage of a named node.
func (op *OP) Voltage(name string) (float64, error) {
	i, ok := op.c.index[name]
	if !ok {
		return 0, fmt.Errorf("spice: unknown node %q", name)
	}
	return op.volts[i], nil
}

// VoltageAt returns the voltage of node i.
func (op *OP) VoltageAt(i int) float64 { return op.volts[i] }

// Stats reports the iterative-solver statistics of the solve.
func (op *OP) Stats() solver.Stats { return op.stats }

// ResistorCurrent returns the current (A) through resistor i, positive from
// terminal A to terminal B; zero when disabled.
func (op *OP) ResistorCurrent(i int) float64 {
	r := op.c.res[i]
	if r.disabled {
		return 0
	}
	var va, vb float64
	if r.a >= 0 {
		va = op.volts[r.a]
	}
	if r.b >= 0 {
		vb = op.volts[r.b]
	}
	return (va - vb) * r.cond
}

// MinVoltage returns the lowest node voltage and its node index, the
// worst-case IR-drop point of a Vdd grid.
func (op *OP) MinVoltage() (volts float64, node int) {
	volts = math.Inf(1)
	node = -1
	for i, v := range op.volts {
		if v < volts {
			volts = v
			node = i
		}
	}
	return volts, node
}

// WorstIRDropFrac returns the worst IR drop as a fraction of vdd.
func (op *OP) WorstIRDropFrac(vdd float64) float64 {
	v, _ := op.MinVoltage()
	return (vdd - v) / vdd
}
