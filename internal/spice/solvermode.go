package spice

import (
	"fmt"
	"sync/atomic"
)

// SolverMode selects the linear-solver backend of a compiled circuit.
type SolverMode int32

// Solver backends. The zero value defers to the process default (normally
// auto), so existing code that never sets Circuit.Solver keeps its behavior
// while the -solver CLI flag can steer every circuit in the process.
const (
	// SolverDefault resolves to the process-wide default (SetDefaultSolver).
	SolverDefault SolverMode = iota
	// SolverAuto picks per circuit: dense Cholesky up to DirectMaxNodes free
	// nodes, sparse Cholesky above it. CG remains the fallback when a
	// factorization fails.
	SolverAuto
	// SolverDense forces the dense Cholesky direct path regardless of size.
	SolverDense
	// SolverSparse forces the sparse Cholesky direct path regardless of size.
	SolverSparse
	// SolverCG forces preconditioned conjugate gradients.
	SolverCG
)

// String returns the flag spelling of the mode.
func (m SolverMode) String() string {
	switch m {
	case SolverDefault:
		return "default"
	case SolverAuto:
		return "auto"
	case SolverDense:
		return "dense"
	case SolverSparse:
		return "sparse"
	case SolverCG:
		return "cg"
	}
	return fmt.Sprintf("spice.SolverMode(%d)", int32(m))
}

// ParseSolverMode parses a -solver flag value.
func ParseSolverMode(s string) (SolverMode, error) {
	switch s {
	case "", "default":
		return SolverDefault, nil
	case "auto":
		return SolverAuto, nil
	case "dense":
		return SolverDense, nil
	case "sparse":
		return SolverSparse, nil
	case "cg":
		return SolverCG, nil
	}
	return SolverDefault, fmt.Errorf("spice: unknown solver %q (want auto, dense, sparse or cg)", s)
}

// processSolver is the process-wide default backend, consulted by circuits
// whose Solver field is SolverDefault at their first solve.
var processSolver atomic.Int32

func init() { processSolver.Store(int32(SolverAuto)) }

// SetDefaultSolver sets the process-wide default backend (the -solver flag).
// SolverDefault restores auto.
func SetDefaultSolver(m SolverMode) {
	if m == SolverDefault {
		m = SolverAuto
	}
	processSolver.Store(int32(m))
}

// DefaultSolver returns the process-wide default backend.
func DefaultSolver() SolverMode { return SolverMode(processSolver.Load()) }

// solverWorkers is the process-wide worker count of the parallel supernodal
// factorization (the -solver-workers flag). 0 = one per CPU.
var solverWorkers atomic.Int32

// SetSolverWorkers sets the process-wide worker count handed to the shared
// solver pool when a circuit builds a supernodal factor: 1 forces a serial
// factorization, 0 (the default) uses one worker per CPU. Negative values are
// treated as 0. The numeric results are bit-identical for every setting; only
// scheduling changes. Circuits that already built their factor keep the pool
// they were built with.
func SetSolverWorkers(n int) {
	if n < 0 {
		n = 0
	}
	solverWorkers.Store(int32(n))
}

// SolverWorkers returns the process-wide supernodal worker count (0 = one
// per CPU).
func SolverWorkers() int { return int(solverWorkers.Load()) }
