package spice

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestParseValueSuffixes(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1", 1}, {"1.5", 1.5}, {"-2e-3", -2e-3},
		{"1k", 1e3}, {"2.2K", 2.2e3}, {"5m", 5e-3}, {"3MEG", 3e6},
		{"10u", 1e-5}, {"7n", 7e-9}, {"4p", 4e-12}, {"1f", 1e-15},
		{"2g", 2e9}, {"1t", 1e12},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want) {
			t.Errorf("ParseValue(%q) = %g, want %g", c.in, got, c.want)
		}
	}
	if _, err := ParseValue("xyz"); err == nil {
		t.Error("accepted garbage value")
	}
}

const deck = `* test power grid fragment
R1 n1_0_0 n1_1_0 0.5
R2 n1_1_0 n1_2_0 0.5
r3 n1_2_0 0 1k
V1 n1_0_0 0 1.8
i1 n1_1_0 0 100m
.op
.end
`

func TestParseDeck(t *testing.T) {
	nl, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Resistors) != 3 || len(nl.Voltages) != 1 || len(nl.Currents) != 1 {
		t.Fatalf("counts R=%d V=%d I=%d", len(nl.Resistors), len(nl.Voltages), len(nl.Currents))
	}
	if nl.Resistors[2].Ohms != 1000 {
		t.Errorf("r3 = %g, want 1000", nl.Resistors[2].Ohms)
	}
	if nl.Currents[0].Amps != 0.1 {
		t.Errorf("i1 = %g, want 0.1", nl.Currents[0].Amps)
	}
	nodes := nl.Nodes()
	if len(nodes) != 3 {
		t.Errorf("nodes = %v, want 3 non-ground", nodes)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"R1 a b\n",       // too few fields
		"R1 a b -1\n",    // negative resistance
		"R1 a b 0\n",     // zero resistance
		"Q1 a b c 1\n",   // unsupported element
		"V1 a b 1.8\n",   // non-ground voltage source
		".tran 1n 10n\n", // unsupported directive
		"R1 a b zzz\n",   // bad value
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", strings.TrimSpace(c))
		}
	}
}

func TestParseGroundOnEitherVTerminal(t *testing.T) {
	nl, err := Parse(strings.NewReader("V1 0 pad 1.8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Voltages[0].Node != "pad" || nl.Voltages[0].Volts != -1.8 {
		t.Errorf("flipped V source = %+v", nl.Voltages[0])
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	nl, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	nl.Title = "round trip"
	if err := nl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(back.Resistors) != len(nl.Resistors) ||
		len(back.Currents) != len(nl.Currents) ||
		len(back.Voltages) != len(nl.Voltages) {
		t.Error("round trip changed element counts")
	}
}

// voltage divider: 1.8 V pad, two 1 Ω in series to ground.
const dividerDeck = `V1 top 0 1.8
R1 top mid 1
R2 mid 0 1
.op
`

func TestSolveDCVoltageDivider(t *testing.T) {
	nl, err := Parse(strings.NewReader(dividerDeck))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := op.Voltage("mid")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.9) > 1e-6 {
		t.Errorf("divider mid = %g, want 0.9", v)
	}
	vt, _ := op.Voltage("top")
	if vt != 1.8 {
		t.Errorf("pad voltage = %g, want 1.8", vt)
	}
	// Current through R1: (1.8−0.9)/1 = 0.9 A, from top to mid.
	if i := op.ResistorCurrent(0); math.Abs(i-0.9) > 1e-6 {
		t.Errorf("R1 current = %g, want 0.9", i)
	}
}

func TestSolveDCCurrentLoad(t *testing.T) {
	// Pad 1.0 V — R 0.5 Ω — node with 1 A load: node sits at 0.5 V.
	src := `V1 pad 0 1.0
R1 pad n 0.5
I1 n 0 1
.op
`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := op.Voltage("n")
	if math.Abs(v-0.5) > 1e-6 {
		t.Errorf("loaded node = %g V, want 0.5", v)
	}
	if frac := op.WorstIRDropFrac(1.0); math.Abs(frac-0.5) > 1e-6 {
		t.Errorf("worst IR drop = %g, want 0.5", frac)
	}
}

func TestSetAndDisableResistor(t *testing.T) {
	nl, err := Parse(strings.NewReader(dividerDeck))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Double R2 → mid = 1.8·2/3 = 1.2.
	if err := c.SetResistor(1, 2); err != nil {
		t.Fatal(err)
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := op.Voltage("mid")
	if math.Abs(v-1.2) > 1e-6 {
		t.Errorf("mid after SetResistor = %g, want 1.2", v)
	}
	// Open R2 → mid floats up to pad voltage (through R1, no load).
	if err := c.DisableResistor(1); err != nil {
		t.Fatal(err)
	}
	if !c.ResistorDisabled(1) {
		t.Error("ResistorDisabled false after disable")
	}
	op, err = c.SolveDC(op)
	if err != nil {
		t.Fatal(err)
	}
	v, _ = op.Voltage("mid")
	if math.Abs(v-1.8) > 1e-4 {
		t.Errorf("mid after open = %g, want ≈1.8", v)
	}
	if i := op.ResistorCurrent(1); i != 0 {
		t.Errorf("open resistor current = %g, want 0", i)
	}
	// Bad indices and values.
	if err := c.SetResistor(-1, 1); err == nil {
		t.Error("accepted negative index")
	}
	if err := c.SetResistor(0, 0); err == nil {
		t.Error("accepted zero resistance")
	}
	if err := c.DisableResistor(99); err == nil {
		t.Error("accepted out-of-range disable")
	}
}

func TestIslandedNodeDrainsToZero(t *testing.T) {
	// Node connected only through R1; opening R1 islands it → gmin pulls it
	// to 0 V, flagging catastrophic IR drop.
	src := `V1 pad 0 1.0
R1 pad n 1
I1 n 0 0.1
.op
`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DisableResistor(0); err != nil {
		t.Fatal(err)
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := op.Voltage("n")
	if v > 0.01 && !math.IsInf(v, 0) {
		// gmin island: voltage = −I/gmin is hugely negative, or ~0 without
		// load path. Either way it must not look healthy.
		t.Errorf("islanded node voltage = %g, want far below pad", v)
	}
	if frac := op.WorstIRDropFrac(1.0); frac < 0.99 {
		t.Errorf("islanded IR drop frac = %g, want ≈ or > 1", frac)
	}
}

func TestCompileConflictingPads(t *testing.T) {
	src := "V1 a 0 1.8\nV2 a 0 1.5\nR1 a 0 1\n"
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(nl); err == nil {
		t.Error("accepted conflicting pad voltages")
	}
}

func TestWarmStartFewerIterations(t *testing.T) {
	// Build a 20×20 grid and compare cold vs warm iteration counts after a
	// tiny perturbation.
	var sb strings.Builder
	sb.WriteString("V1 n_0_0 0 1.0\n")
	id := 0
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if i+1 < 20 {
				id++
				sb.WriteString("R")
				writeInt(&sb, id)
				sb.WriteString(" n_")
				writeInt(&sb, i)
				sb.WriteString("_")
				writeInt(&sb, j)
				sb.WriteString(" n_")
				writeInt(&sb, i+1)
				sb.WriteString("_")
				writeInt(&sb, j)
				sb.WriteString(" 1\n")
			}
			if j+1 < 20 {
				id++
				sb.WriteString("R")
				writeInt(&sb, id)
				sb.WriteString(" n_")
				writeInt(&sb, i)
				sb.WriteString("_")
				writeInt(&sb, j)
				sb.WriteString(" n_")
				writeInt(&sb, i)
				sb.WriteString("_")
				writeInt(&sb, j+1)
				sb.WriteString(" 1\n")
			}
		}
	}
	sb.WriteString("I1 n_19_19 0 0.001\n")
	nl, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetResistor(0, 1.01); err != nil {
		t.Fatal(err)
	}
	warm, err := c.SolveDC(cold)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats().Iterations >= cold.Stats().Iterations && cold.Stats().Iterations > 3 {
		t.Errorf("warm start (%d iters) not faster than cold (%d)",
			warm.Stats().Iterations, cold.Stats().Iterations)
	}
}

func writeInt(sb *strings.Builder, v int) {
	sb.WriteString(itoa(v))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
