package spice

import "emvia/internal/telemetry"

// circuitMetrics holds the telemetry handles of one compiled circuit. The
// handles are fetched once at compile time, so the per-edit and per-solve
// hot paths record through cached pointers — with telemetry disabled every
// handle is nil and each record call is a nil-receiver no-op.
type circuitMetrics struct {
	slotEdits     *telemetry.Counter
	resets        *telemetry.Counter
	directSolves  *telemetry.Counter
	sparseSolves  *telemetry.Counter
	cgSolves      *telemetry.Counter
	refreshes     *telemetry.Counter
	factorSeconds *telemetry.Histogram
}

// newCircuitMetrics snapshots the process-wide registry into per-circuit
// handles and counts the compilation itself.
func newCircuitMetrics() circuitMetrics {
	r := telemetry.Default() // nil when disabled: all handles stay nil
	r.Counter(telemetry.SpiceCompiles).Inc()
	return circuitMetrics{
		slotEdits:     r.Counter(telemetry.SpiceSlotEdits),
		resets:        r.Counter(telemetry.SpiceResets),
		directSolves:  r.Counter(telemetry.SpiceDirectSolves),
		sparseSolves:  r.Counter(telemetry.SpiceSparseSolves),
		cgSolves:      r.Counter(telemetry.SpiceCGSolves),
		refreshes:     r.Counter(telemetry.SpicePrecondRefreshes),
		factorSeconds: r.Histogram(telemetry.SpiceFactorSeconds),
	}
}
