package spice

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseValue: the value parser must never panic and must round-trip
// through formatting for accepted inputs.
func FuzzParseValue(f *testing.F) {
	for _, seed := range []string{"1", "1.5k", "-2e-3", "3MEG", "10u", "zzz", "", "k", "1e", "-", "1meg"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseValue(s)
		if err != nil {
			return
		}
		if v != v && !strings.Contains(strings.ToLower(s), "nan") {
			t.Errorf("ParseValue(%q) = NaN without nan in input", s)
		}
	})
}

// FuzzParse: the deck parser must never panic, and every deck it accepts
// must survive a write/re-parse round trip with identical element counts.
func FuzzParse(f *testing.F) {
	f.Add("R1 a b 1\nV1 a 0 1.8\nI1 b 0 1m\n.op\n.end\n")
	f.Add("* comment only\n")
	f.Add("R1 a b\n")
	f.Add("V1 a b 1.8\n")
	f.Add("r1 N1_0_0 0 1k\n")
	f.Fuzz(func(t *testing.T, deck string) {
		nl, err := Parse(strings.NewReader(deck))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := nl.Write(&buf); err != nil {
			t.Fatalf("Write of accepted deck failed: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-parse of written deck failed: %v\ndeck: %q", err, buf.String())
		}
		if len(back.Resistors) != len(nl.Resistors) ||
			len(back.Currents) != len(nl.Currents) ||
			len(back.Voltages) != len(nl.Voltages) {
			t.Errorf("round trip changed element counts for %q", deck)
		}
	})
}
