package spice

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// meshNetlist builds an n×n unit-resistance mesh with a 1 V pad at the
// origin and a small load at every other node. Resistor order: all
// horizontal edges row-major, then all vertical edges column-major — tests
// index into this layout to pick failure sequences that cannot island a
// node.
func meshNetlist(t *testing.T, n int) *Netlist {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("V1 n_0_0 0 1.0\n")
	id := 0
	for i := 0; i < n; i++ {
		for j := 0; j+1 < n; j++ {
			id++
			fmt.Fprintf(&sb, "R%d n_%d_%d n_%d_%d 1\n", id, i, j, i, j+1)
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i+1 < n; i++ {
			id++
			fmt.Fprintf(&sb, "R%d n_%d_%d n_%d_%d 1\n", id, i, j, i+1, j)
		}
	}
	k := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == 0 && j == 0 {
				continue
			}
			k++
			fmt.Fprintf(&sb, "I%d n_%d_%d 0 0.0001\n", k, i, j)
		}
	}
	nl, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("meshNetlist: %v", err)
	}
	return nl
}

// meshFailures returns 20 horizontal-edge resistor indices from interior
// rows of an n×n mesh. Every touched node keeps its vertical edges, so the
// grid stays connected throughout the sequence.
func meshFailures(t *testing.T, n int) []int {
	t.Helper()
	if n < 8 {
		t.Fatalf("mesh too small for 20 interior horizontal failures: n=%d", n)
	}
	var out []int
	for _, row := range []int{2, 4, 6} {
		for j := 0; j < n-1 && len(out) < 20; j++ {
			out = append(out, row*(n-1)+j)
		}
	}
	return out[:20]
}

// solveAll returns every node voltage of a fresh solve.
func solveAll(t *testing.T, c *Circuit, prev *OP) (*OP, []float64) {
	t.Helper()
	op, err := c.SolveDC(prev)
	if err != nil {
		t.Fatalf("SolveDC: %v", err)
	}
	v := make([]float64, c.NumNodes())
	for i := range v {
		v[i] = op.VoltageAt(i)
	}
	return op, v
}

// crossCheckIncremental drives one circuit through a 20-failure sequence
// with incremental re-solves and, at 1, 5 and 20 failures, compares every
// node voltage against a freshly compiled circuit that receives the same
// failures cold. The two must agree to 1e-10 (relative).
func crossCheckIncremental(t *testing.T, configure func(c *Circuit)) {
	t.Helper()
	nl := meshNetlist(t, 10)
	failures := meshFailures(t, 10)
	inc, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	configure(inc)
	op, _ := solveAll(t, inc, nil) // pristine warm-up solve
	milestones := map[int]bool{1: true, 5: true, 20: true}
	for k, ri := range failures {
		if err := inc.DisableResistor(ri); err != nil {
			t.Fatalf("failure %d (R index %d): %v", k+1, ri, err)
		}
		var vInc []float64
		op, vInc = solveAll(t, inc, op)
		if !milestones[k+1] {
			continue
		}
		cold, err := Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		configure(cold)
		for _, rj := range failures[:k+1] {
			if err := cold.DisableResistor(rj); err != nil {
				t.Fatal(err)
			}
		}
		_, vCold := solveAll(t, cold, nil)
		worst := 0.0
		for i := range vInc {
			d := math.Abs(vInc[i]-vCold[i]) / (1 + math.Abs(vCold[i]))
			if d > worst {
				worst = d
			}
		}
		t.Logf("after %2d failures: worst relative deviation %.2e", k+1, worst)
		if worst > 1e-10 {
			t.Errorf("after %d failures: incremental deviates from cold by %g, want ≤ 1e-10", k+1, worst)
		}
	}
}

func TestIncrementalMatchesColdDirect(t *testing.T) {
	// The cold reference circuit applies its edits before the first solve,
	// so it stays on the CG path (the direct factor only activates after a
	// post-compile edit); the tight tolerance keeps the reference within the
	// comparison budget of the exact rank-one-updated factor.
	crossCheckIncremental(t, func(c *Circuit) {
		c.DirectMaxNodes = 1024 // force the dense rank-one update path
		c.Tol = 1e-13
	})
}

func TestIncrementalMatchesColdCG(t *testing.T) {
	crossCheckIncremental(t, func(c *Circuit) {
		c.DirectMaxNodes = -1 // force the preconditioned CG path
		c.Tol = 1e-13
	})
}

// TestIncrementalMatchesColdSparse pins the sparse up/downdate path against
// cold refactorization: the incremental circuit chases 20 failures with
// rank-one downdates of its AMD-ordered factor while the reference refactors
// from scratch at each milestone.
func TestIncrementalMatchesColdSparse(t *testing.T) {
	crossCheckIncremental(t, func(c *Circuit) {
		c.Solver = SolverSparse
	})
}

// TestSolverBackendsAgree solves the same pristine mesh on every backend and
// compares all node voltages pairwise. The direct backends are exact; CG at
// Tol 1e-13 must land within 1e-8 of them.
func TestSolverBackendsAgree(t *testing.T) {
	nl := meshNetlist(t, 10)
	volts := map[string][]float64{}
	for _, mode := range []SolverMode{SolverDense, SolverSparse, SolverCG} {
		c, err := Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		c.Solver = mode
		c.Tol = 1e-13
		_, v := solveAll(t, c, nil)
		if got := c.SolverBackend(); got != mode.String() {
			t.Errorf("SolverBackend() = %q after solving with %v", got, mode)
		}
		volts[mode.String()] = v
	}
	for _, pair := range [][2]string{{"dense", "sparse"}, {"dense", "cg"}, {"sparse", "cg"}} {
		va, vb := volts[pair[0]], volts[pair[1]]
		worst := 0.0
		for i := range va {
			if d := math.Abs(va[i]-vb[i]) / (1 + math.Abs(vb[i])); d > worst {
				worst = d
			}
		}
		t.Logf("%s vs %s: worst relative deviation %.2e", pair[0], pair[1], worst)
		if worst > 1e-8 {
			t.Errorf("%s and %s disagree by %g, want ≤ 1e-8", pair[0], pair[1], worst)
		}
	}
}

// TestCloneBitIdenticalSparse drives a sparse master and its clone through
// the same failure sequence and demands bit-identical voltages at every
// step: the Monte-Carlo workers rely on Clone preserving the exact floating-
// point trajectory of the master.
func TestCloneBitIdenticalSparse(t *testing.T) {
	nl := meshNetlist(t, 10)
	master, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	master.Solver = SolverSparse
	opM, _ := solveAll(t, master, nil) // builds the shared factor
	clone := master.Clone()
	if got, want := clone.SolverBackend(), master.SolverBackend(); got != want {
		t.Fatalf("clone backend %q, master %q", got, want)
	}
	opC, vC := solveAll(t, clone, nil)
	_, vM := solveAll(t, master, opM)
	for i := range vM {
		if vM[i] != vC[i] {
			t.Fatalf("pristine node %d: master %v clone %v (not bit-identical)", i, vM[i], vC[i])
		}
	}
	for step, ri := range meshFailures(t, 10)[:8] {
		if err := master.DisableResistor(ri); err != nil {
			t.Fatal(err)
		}
		if err := clone.DisableResistor(ri); err != nil {
			t.Fatal(err)
		}
		opM, vM = solveAll(t, master, opM)
		opC, vC = solveAll(t, clone, opC)
		for i := range vM {
			if vM[i] != vC[i] {
				t.Fatalf("step %d node %d: master %v clone %v (not bit-identical)", step, i, vM[i], vC[i])
			}
		}
	}
	// Per-trial reset must restore both to the same pristine state.
	master.ResetResistors()
	clone.ResetResistors()
	_, vM = solveAll(t, master, nil)
	_, vC = solveAll(t, clone, nil)
	for i := range vM {
		if vM[i] != vC[i] {
			t.Fatalf("post-reset node %d: master %v clone %v", i, vM[i], vC[i])
		}
	}
}

// TestSetCurrentMatchesRecompile checks the load-push path used by the tuner:
// editing a current source in place must match a fresh compile of the edited
// netlist, and the edit must survive ResetResistors (it is a load change, not
// a resistor trial edit).
func TestSetCurrentMatchesRecompile(t *testing.T) {
	nl := meshNetlist(t, 8)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	c.Solver = SolverSparse
	solveAll(t, c, nil)
	if got, want := c.NumCurrents(), len(nl.Currents); got != want {
		t.Fatalf("NumCurrents() = %d, want %d", got, want)
	}
	for i := range nl.Currents {
		if err := c.SetCurrent(i, nl.Currents[i].Amps*1.7); err != nil {
			t.Fatal(err)
		}
	}
	c.ResetResistors() // must keep the new loads
	_, vGot := solveAll(t, c, nil)

	edited := *nl
	edited.Currents = append([]CurrentSource(nil), nl.Currents...)
	for i := range edited.Currents {
		edited.Currents[i].Amps *= 1.7
	}
	ref, err := Compile(&edited)
	if err != nil {
		t.Fatal(err)
	}
	ref.Solver = SolverSparse
	_, vWant := solveAll(t, ref, nil)
	for i := range vGot {
		if d := math.Abs(vGot[i]-vWant[i]) / (1 + math.Abs(vWant[i])); d > 1e-10 {
			t.Fatalf("node %d: pushed %g vs recompiled %g (rel %g)", i, vGot[i], vWant[i], d)
		}
	}
	if err := c.SetCurrent(-1, 0); err == nil {
		t.Error("SetCurrent(-1) did not fail")
	}
}

// TestSparseUpdateBudgetRefactors pushes more edits between solves than the
// up/downdate budget allows and checks the deferred refactorization still
// lands on the cold-compile answer.
func TestSparseUpdateBudgetRefactors(t *testing.T) {
	nl := meshNetlist(t, 10)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	c.Solver = SolverSparse
	solveAll(t, c, nil)
	// Rescale every resistor: far more edits than sparseUpdateBudget.
	for i := range nl.Resistors {
		if err := c.SetResistor(i, nl.Resistors[i].Ohms*1.31); err != nil {
			t.Fatal(err)
		}
	}
	_, vGot := solveAll(t, c, nil)

	edited := *nl
	edited.Resistors = append([]Resistor(nil), nl.Resistors...)
	for i := range edited.Resistors {
		edited.Resistors[i].Ohms *= 1.31
	}
	ref, err := Compile(&edited)
	if err != nil {
		t.Fatal(err)
	}
	ref.Solver = SolverSparse
	_, vWant := solveAll(t, ref, nil)
	for i := range vGot {
		if d := math.Abs(vGot[i]-vWant[i]) / (1 + math.Abs(vWant[i])); d > 1e-10 {
			t.Fatalf("node %d: bulk-edited %g vs recompiled %g (rel %g)", i, vGot[i], vWant[i], d)
		}
	}
}

func TestResistorCurrentZeroWhenDisabled(t *testing.T) {
	nl := meshNetlist(t, 8)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if i := op.ResistorCurrent(3); i == 0 {
		t.Error("pristine interior resistor carries no current")
	}
	if err := c.DisableResistor(3); err != nil {
		t.Fatal(err)
	}
	op, err = c.SolveDC(op)
	if err != nil {
		t.Fatal(err)
	}
	if i := op.ResistorCurrent(3); i != 0 {
		t.Errorf("disabled resistor current = %g, want exactly 0", i)
	}
}

// TestSetResistorReenablesDisabled checks that SetResistor on a disabled
// resistor brings it back with the new conductance, matching a circuit that
// never saw the disable.
func TestSetResistorReenablesDisabled(t *testing.T) {
	nl := meshNetlist(t, 8)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	c.Tol = 1e-13
	op, _ := solveAll(t, c, nil)
	if err := c.DisableResistor(5); err != nil {
		t.Fatal(err)
	}
	op, _ = solveAll(t, c, op)
	if err := c.SetResistor(5, 2.5); err != nil {
		t.Fatal(err)
	}
	if c.ResistorDisabled(5) {
		t.Fatal("resistor still disabled after SetResistor")
	}
	_, vGot := solveAll(t, c, op)

	ref, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	ref.Tol = 1e-13
	if err := ref.SetResistor(5, 2.5); err != nil {
		t.Fatal(err)
	}
	_, vWant := solveAll(t, ref, nil)
	for i := range vGot {
		if d := math.Abs(vGot[i]-vWant[i]) / (1 + math.Abs(vWant[i])); d > 1e-9 {
			t.Fatalf("node %d: re-enabled %g vs fresh %g (rel %g)", i, vGot[i], vWant[i], d)
		}
	}
}

// TestResetResistorsRestoresPristine checks the canonical per-trial reset:
// after arbitrary edits, ResetResistors must reproduce the pristine solve
// exactly.
func TestResetResistorsRestoresPristine(t *testing.T) {
	nl := meshNetlist(t, 8)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	op0, _ := solveAll(t, c, nil) // cold compile + solve
	// A reset right after the pristine solve builds and snapshots the exact
	// pristine factor, so both compared solves below use the direct path.
	c.ResetResistors()
	_, v0 := solveAll(t, c, op0)
	for _, ri := range []int{1, 7, 12} {
		if err := c.DisableResistor(ri); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetResistor(20, 9); err != nil {
		t.Fatal(err)
	}
	op, _ := solveAll(t, c, nil)
	c.ResetResistors()
	for _, ri := range []int{1, 7, 12} {
		if c.ResistorDisabled(ri) {
			t.Fatalf("resistor %d still disabled after reset", ri)
		}
	}
	_, v1 := solveAll(t, c, op)
	for i := range v0 {
		if d := math.Abs(v1[i]-v0[i]) / (1 + math.Abs(v0[i])); d > 1e-10 {
			t.Fatalf("node %d: post-reset %g vs pristine %g", i, v1[i], v0[i])
		}
	}
}

// TestGenerationCounter checks that every topology edit bumps the
// generation, which SolveDC uses to invalidate cached state.
func TestGenerationCounter(t *testing.T) {
	nl := meshNetlist(t, 8)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SolveDC(nil); err != nil {
		t.Fatal(err)
	}
	g0 := c.Generation()
	if err := c.DisableResistor(2); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != g0+1 {
		t.Errorf("generation after disable = %d, want %d", c.Generation(), g0+1)
	}
	// Re-disabling is an idempotent no-op and must not advance the
	// generation.
	if err := c.DisableResistor(2); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != g0+1 {
		t.Errorf("generation after repeated disable = %d, want %d", c.Generation(), g0+1)
	}
	if err := c.SetResistor(2, 1); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != g0+2 {
		t.Errorf("generation after re-enable = %d, want %d", c.Generation(), g0+2)
	}
	c.ResetResistors()
	if c.Generation() != g0+3 {
		t.Errorf("generation after reset = %d, want %d", c.Generation(), g0+3)
	}
}

// TestSolveDCIncrementalAllocs is the allocation budget of the Monte-Carlo
// hot path: once the solver is warm, a disable → re-solve → re-enable cycle
// must not touch the heap, on either solve path.
func TestSolveDCIncrementalAllocs(t *testing.T) {
	for _, tc := range []struct {
		name      string
		configure func(c *Circuit)
	}{
		{"direct", func(c *Circuit) { c.DirectMaxNodes = 1024 }},
		{"sparse", func(c *Circuit) { c.Solver = SolverSparse }},
		{"cg", func(c *Circuit) { c.DirectMaxNodes = -1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nl := meshNetlist(t, 10)
			c, err := Compile(nl)
			if err != nil {
				t.Fatal(err)
			}
			tc.configure(c)
			prev, err := c.SolveDC(nil)
			if err != nil {
				t.Fatal(err)
			}
			dst := c.NewOP()
			// Warm-up: trigger lazy factor construction / preconditioner
			// refresh so steady state is reached before counting.
			for i := 0; i < 3; i++ {
				if err := c.DisableResistor(4); err != nil {
					t.Fatal(err)
				}
				if err := c.SolveDCInto(dst, prev); err != nil {
					t.Fatal(err)
				}
				if err := c.SetResistor(4, 1); err != nil {
					t.Fatal(err)
				}
				if err := c.SolveDCInto(dst, prev); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				if err := c.DisableResistor(4); err != nil {
					t.Fatal(err)
				}
				if err := c.SolveDCInto(dst, prev); err != nil {
					t.Fatal(err)
				}
				if err := c.SetResistor(4, 1); err != nil {
					t.Fatal(err)
				}
				if err := c.SolveDCInto(dst, prev); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s hot loop allocates %.1f objects per cycle, want 0", tc.name, allocs)
			}
		})
	}
}
