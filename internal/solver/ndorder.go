package solver

import (
	"slices"

	"emvia/internal/sparse"
)

// Nested-dissection fill-reducing ordering.
//
// AMD (amd.go) is excellent for the small and mid-size networks the dense/
// sparse crossover leaves to the sparse path, but on large 2D grid meshes its
// greedy local decisions accumulate global fill: factor nnz grows like
// O(n^1.5·polylog) in practice versus the O(n·log n) a balanced dissection
// guarantees for planar graphs. NDOrder recursively bisects the graph with a
// BFS level-set separator and falls back to AMD on small leaf subgraphs,
// where the greedy ordering beats a blind dissection tail. The construction
// is fully deterministic: all tie-breaks are by smallest vertex id, and the
// recursion/concatenation order is fixed.
//
// A second effect matters as much as the fill count: dissection separators
// are eliminated last, so the elimination tree becomes wide and shallow with
// independent siblings — exactly the task graph the parallel supernodal
// factorization (supernodal.go) schedules across workers.

// ndLeafSize is the subgraph size at and below which NDOrder dissolves into
// AMD instead of dissecting further.
const ndLeafSize = 96

// NDMinNodes is the dimension at and above which AutoOrder switches from AMD
// to nested dissection. Below it AMD's fill is competitive and its ordering
// cost is negligible.
const NDMinNodes = 4096

// AutoOrder picks the fill-reducing ordering for a symmetric-pattern matrix:
// AMD for small systems, nested dissection at NDMinNodes and above.
func AutoOrder(a *sparse.CSR) []int {
	n, c := a.Dims()
	if n != c || n < NDMinNodes {
		return AMDOrder(a)
	}
	return NDOrder(a)
}

// NDOrder computes a deterministic nested-dissection ordering of the
// symmetric-pattern matrix a: perm[k] = original index of the k-th pivot.
// Non-square matrices get the natural order (the factorization will reject
// them anyway).
func NDOrder(a *sparse.CSR) []int {
	n, c := a.Dims()
	perm := make([]int, n)
	if n != c {
		for i := range perm {
			perm[i] = i
		}
		return perm
	}
	nd := &ndState{
		a:     a,
		level: make([]int, n),
		queue: make([]int, 0, n),
		mark:  make([]int, n), // 0 = outside the current subgraph
		loc:   make([]int, n),
		out:   perm[:0],
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	nd.dissect(all)
	if len(nd.out) != n {
		// Defensive: a bookkeeping bug here would silently produce a wrong
		// factorization; fail loudly instead.
		panic("solver: NDOrder emitted a partial ordering")
	}
	return perm
}

// ndState carries the shared scratch of one NDOrder run. Subgraphs are
// represented as sorted vertex-id slices; mark stamps distinguish "in the
// current subgraph" (stamp == epoch) from everything else, so neighbor scans
// never leave the subgraph.
type ndState struct {
	a     *sparse.CSR
	level []int
	queue []int
	mark  []int
	epoch int
	loc   []int // vertex -> local index within the current subgraph
	out   []int // ordering under construction (appended to)
}

// dissect orders the subgraph induced by verts (sorted ascending) and
// appends it to nd.out.
func (nd *ndState) dissect(verts []int) {
	if len(verts) == 0 {
		return
	}
	if len(verts) <= ndLeafSize {
		nd.orderLeaf(verts)
		return
	}
	nd.epoch++
	for _, v := range verts {
		nd.mark[v] = nd.epoch
	}
	// BFS from the smallest vertex id. If the subgraph is disconnected the
	// sweep stops early; the reached component is dissected on its own and
	// the remainder recurses.
	comp := nd.bfs(verts[0])
	if len(comp) < len(verts) {
		compSorted := append([]int(nil), comp...)
		sortInts(compSorted)
		rest := make([]int, 0, len(verts)-len(comp))
		nd.epoch++ // invalidate stamps; re-stamp the component
		for _, v := range compSorted {
			nd.mark[v] = nd.epoch
		}
		for _, v := range verts {
			if nd.mark[v] != nd.epoch {
				rest = append(rest, v)
			}
		}
		nd.dissect(compSorted)
		nd.dissect(rest)
		return
	}
	// Pseudo-peripheral start: re-run BFS from a smallest-id vertex of the
	// deepest level to stretch the level structure, then cut it in half.
	far := nd.farthest(comp)
	comp = nd.bfs(far)
	depth := nd.level[comp[len(comp)-1]]
	if depth < 2 {
		// Diameter too small to cut (near-clique); AMD handles it better
		// than a degenerate separator.
		nd.orderLeaf(verts)
		return
	}
	// Pick the separator level: the BFS level whose removal best balances
	// the two sides. Levels are contiguous in comp (BFS order).
	sep := nd.splitLevel(comp, depth)
	var partA, partB, sepV []int
	for _, v := range comp {
		switch l := nd.level[v]; {
		case l < sep:
			partA = append(partA, v)
		case l > sep:
			partB = append(partB, v)
		default:
			sepV = append(sepV, v)
		}
	}
	sortInts(partA)
	sortInts(partB)
	sortInts(sepV)
	nd.dissect(partA)
	nd.dissect(partB)
	// Separator vertices are eliminated last, in ascending id order.
	nd.out = append(nd.out, sepV...)
}

// bfs runs a breadth-first sweep from root over vertices stamped with the
// current epoch, filling nd.level, and returns the visit order. Vertices are
// expanded in queue order and neighbors appended in CSR column order, so the
// result is deterministic.
func (nd *ndState) bfs(root int) []int {
	nd.queue = nd.queue[:0]
	nd.queue = append(nd.queue, root)
	nd.level[root] = 0
	nd.mark[root] = -nd.epoch // visited stamp
	for head := 0; head < len(nd.queue); head++ {
		v := nd.queue[head]
		cols, _ := nd.a.Row(v)
		for _, u := range cols {
			if u != v && nd.mark[u] == nd.epoch {
				nd.mark[u] = -nd.epoch
				nd.level[u] = nd.level[v] + 1
				nd.queue = append(nd.queue, u)
			}
		}
	}
	// Restore in-subgraph stamps for the visited set so a second bfs can run
	// over the same epoch.
	for _, v := range nd.queue {
		nd.mark[v] = nd.epoch
	}
	return nd.queue
}

// farthest returns the smallest-id vertex of the deepest BFS level of the
// last sweep.
func (nd *ndState) farthest(comp []int) int {
	deep := nd.level[comp[len(comp)-1]]
	best := -1
	for _, v := range comp {
		if nd.level[v] == deep && (best < 0 || v < best) {
			best = v
		}
	}
	return best
}

// splitLevel picks the separator level 1..depth-1: the thinnest level whose
// removal still leaves both sides with at least a quarter of the component
// (fill grows with separator size much faster than with mild imbalance). When
// no level is that balanced it falls back to the best-balanced one.
func (nd *ndState) splitLevel(comp []int, depth int) int {
	counts := make([]int, depth+1)
	for _, v := range comp {
		counts[nd.level[v]]++
	}
	total := len(comp)
	bestThin, thinSize := -1, total+1
	bestBal, balScore := 1, total+1
	below := counts[0]
	for l := 1; l < depth; l++ {
		above := total - below - counts[l]
		if min(below, above) >= total/4 && counts[l] < thinSize {
			bestThin, thinSize = l, counts[l]
		}
		score := below - above
		if score < 0 {
			score = -score
		}
		if score < balScore {
			bestBal, balScore = l, score
		}
		below += counts[l]
	}
	if bestThin >= 0 {
		return bestThin
	}
	return bestBal
}

// orderLeaf appends an AMD ordering of the subgraph induced by verts.
func (nd *ndState) orderLeaf(verts []int) {
	if len(verts) == 1 {
		nd.out = append(nd.out, verts[0])
		return
	}
	nd.epoch++
	for li, v := range verts {
		nd.mark[v] = nd.epoch
		nd.loc[v] = li
	}
	// Build the induced-subgraph pattern in local indices. Values are
	// irrelevant to AMD; ones keep the CSR constructor happy.
	m := len(verts)
	ptr := make([]int, m+1)
	for li, v := range verts {
		cols, _ := nd.a.Row(v)
		deg := 0
		for _, u := range cols {
			if nd.mark[u] == nd.epoch {
				deg++
			}
		}
		ptr[li+1] = ptr[li] + deg
	}
	cols := make([]int, ptr[m])
	vals := make([]float64, ptr[m])
	pos := 0
	for _, v := range verts {
		rcols, _ := nd.a.Row(v)
		for _, u := range rcols {
			if nd.mark[u] == nd.epoch {
				cols[pos] = nd.loc[u]
				vals[pos] = 1
				pos++
			}
		}
	}
	sub := sparse.NewCSR(m, m, ptr, cols, vals)
	for _, li := range AMDOrder(sub) {
		nd.out = append(nd.out, verts[li])
	}
}

func sortInts(s []int) { slices.Sort(s) }
