package solver

import (
	"fmt"
	"math"

	"emvia/internal/sparse"
)

// IC0 is a zero-fill incomplete-Cholesky preconditioner: A ≈ L·Lᵀ where L
// keeps exactly the sparsity pattern of the lower triangle of A. For the
// M-matrix-like conductance systems of power grids, IC(0) exists and cuts CG
// iteration counts by a large factor; for FEM elasticity it usually exists
// too, and NewIC0 falls back with ErrNotSPD when a pivot breaks down so the
// caller can degrade to Jacobi.
type IC0 struct {
	n    int
	ptr  []int
	cols []int
	vals []float64 // L stored row-wise, diagonal last in each row
	diag []int     // index of the diagonal entry of each row within vals

	// Strict upper triangle Lᵀ stored row-wise so the backward solve is a
	// sequential row gather instead of a scattered column update. uperm maps
	// each strict-lower slot of vals to its slot in uvals (-1 for
	// diagonals); syncUpper refreshes uvals after each factorization.
	uptr  []int
	ucols []int
	uvals []float64
	uperm []int
	// invDiag caches 1/L(i,i) so the substitution sweeps multiply instead
	// of divide.
	invDiag []float64
}

// NewIC0 computes the zero-fill incomplete Cholesky factor of SPD matrix a.
func NewIC0(a *sparse.CSR) (*IC0, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("solver: IC0 needs a square matrix, got %d×%d", n, c)
	}
	low := a.LowerTriangle()
	ptr := make([]int, n+1)
	var colsAll []int
	var valsAll []float64
	diag := make([]int, n)

	// Copy the lower triangle; record diagonal positions.
	for i := 0; i < n; i++ {
		cols, vals := low.Row(i)
		if len(cols) == 0 || cols[len(cols)-1] != i {
			return nil, fmt.Errorf("%w: row %d has no diagonal entry", ErrNotSPD, i)
		}
		ptr[i] = len(colsAll)
		colsAll = append(colsAll, cols...)
		valsAll = append(valsAll, vals...)
		diag[i] = len(colsAll) - 1
	}
	ptr[n] = len(colsAll)

	ic := &IC0{n: n, ptr: ptr, cols: colsAll, vals: valsAll, diag: diag}
	ic.buildUpper()
	if err := ic.factor(); err != nil {
		return nil, err
	}
	ic.syncUpper()
	return ic, nil
}

// buildUpper lays out the strict upper triangle (Lᵀ without its diagonal)
// row-wise and records the slot permutation from the lower-triangle storage.
func (ic *IC0) buildUpper() {
	n := ic.n
	uptr := make([]int, n+1)
	for i := 0; i < n; i++ {
		for k := ic.ptr[i]; k < ic.diag[i]; k++ {
			uptr[ic.cols[k]+1]++
		}
	}
	for i := 0; i < n; i++ {
		uptr[i+1] += uptr[i]
	}
	ucols := make([]int, uptr[n])
	uperm := make([]int, len(ic.vals))
	next := make([]int, n)
	copy(next, uptr[:n])
	for i := 0; i < n; i++ {
		for k := ic.ptr[i]; k < ic.diag[i]; k++ {
			j := ic.cols[k]
			p := next[j]
			ucols[p] = i
			uperm[k] = p
			next[j]++
		}
		uperm[ic.diag[i]] = -1
	}
	ic.uptr = uptr
	ic.ucols = ucols
	ic.uvals = make([]float64, uptr[n])
	ic.uperm = uperm
	ic.invDiag = make([]float64, n)
}

// syncUpper copies the factored strict-lower values into the row-wise upper
// storage and refreshes the reciprocal diagonal. Allocation-free, so Refresh
// stays usable inside hot loops.
func (ic *IC0) syncUpper() {
	for k, p := range ic.uperm {
		if p >= 0 {
			ic.uvals[p] = ic.vals[k]
		}
	}
	for i := 0; i < ic.n; i++ {
		ic.invDiag[i] = 1 / ic.vals[ic.diag[i]]
	}
}

// factor runs the numeric IC(0) factorization in place over vals, which must
// hold the lower triangle of A in pattern order.
//
// We use the simple O(nnz·rowlen) up-looking variant: for each row i and
// each pair (j,k) of its off-diagonal columns, subtract L(i,j)·L(k,j)
// contributions. Rows here are short (FEM ≤ ~81, grids ≤ ~7), so the
// quadratic-in-rowlen cost is fine.
func (ic *IC0) factor() error {
	ptr, colsAll, valsAll, diag := ic.ptr, ic.cols, ic.vals, ic.diag
	for i := 0; i < ic.n; i++ {
		rowCols := colsAll[ptr[i] : ptr[i+1]-1] // off-diagonal columns of row i
		rowVals := valsAll[ptr[i] : ptr[i+1]-1]
		// Update row i using previously factored rows j (j < i, entry L(i,j)).
		for a1 := 0; a1 < len(rowCols); a1++ {
			j := rowCols[a1]
			// L(i,j) = (A(i,j) − Σ_{k<j} L(i,k)·L(j,k)) / L(j,j)
			sum := rowVals[a1]
			jCols := colsAll[ptr[j] : ptr[j+1]-1]
			jVals := valsAll[ptr[j] : ptr[j+1]-1]
			// Merge-intersect the column lists of rows i and j (both sorted).
			bi, bj := 0, 0
			for bi < a1 && bj < len(jCols) {
				switch {
				case rowCols[bi] < jCols[bj]:
					bi++
				case rowCols[bi] > jCols[bj]:
					bj++
				default:
					sum -= rowVals[bi] * jVals[bj]
					bi++
					bj++
				}
			}
			ljj := valsAll[diag[j]]
			rowVals[a1] = sum / ljj
		}
		// Diagonal: L(i,i) = sqrt(A(i,i) − Σ_k L(i,k)²).
		d := valsAll[diag[i]]
		for _, v := range rowVals {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w: IC0 pivot %g at row %d", ErrNotSPD, d, i)
		}
		valsAll[diag[i]] = math.Sqrt(d)
	}
	return nil
}

// Refresh refactors the preconditioner in place from a, which must have the
// sparsity pattern the factor was built from. It performs no allocation, so
// the circuit solver can refresh a stale factor inside the Monte-Carlo inner
// loop. On error the factor content is undefined and the caller must rebuild
// with NewIC0.
func (ic *IC0) Refresh(a *sparse.CSR) error {
	n, c := a.Dims()
	if n != ic.n || c != ic.n {
		return fmt.Errorf("solver: IC0 Refresh dimensions %d×%d, want %d×%d", n, c, ic.n, ic.n)
	}
	// Re-copy the lower triangle of a into the factor storage in place.
	w := 0
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, col := range cols {
			if col > i {
				break
			}
			if w >= ic.ptr[i+1] || ic.cols[w] != col {
				return fmt.Errorf("solver: IC0 Refresh pattern mismatch at (%d,%d)", i, col)
			}
			ic.vals[w] = vals[k]
			w++
		}
		if w != ic.ptr[i+1] {
			return fmt.Errorf("solver: IC0 Refresh pattern mismatch in row %d", i)
		}
	}
	if err := ic.factor(); err != nil {
		return err
	}
	ic.syncUpper()
	return nil
}

// Apply overwrites z with (L·Lᵀ)⁻¹·r by forward and backward substitution.
// Both sweeps are row gathers over contiguous storage (the backward one over
// the transposed copy maintained by syncUpper).
func (ic *IC0) Apply(z, r []float64) {
	// Forward solve L·y = r.
	for i := 0; i < ic.n; i++ {
		s0, s1 := r[i], 0.0
		k := ic.ptr[i]
		for ; k+1 < ic.diag[i]; k += 2 {
			s0 -= ic.vals[k] * z[ic.cols[k]]
			s1 -= ic.vals[k+1] * z[ic.cols[k+1]]
		}
		if k < ic.diag[i] {
			s0 -= ic.vals[k] * z[ic.cols[k]]
		}
		z[i] = (s0 + s1) * ic.invDiag[i]
	}
	// Backward solve Lᵀ·z = y: row i of the strict upper triangle holds
	// L(j,i) for j > i.
	for i := ic.n - 1; i >= 0; i-- {
		s0, s1 := z[i], 0.0
		k := ic.uptr[i]
		for ; k+1 < ic.uptr[i+1]; k += 2 {
			s0 -= ic.uvals[k] * z[ic.ucols[k]]
			s1 -= ic.uvals[k+1] * z[ic.ucols[k+1]]
		}
		if k < ic.uptr[i+1] {
			s0 -= ic.uvals[k] * z[ic.ucols[k]]
		}
		z[i] = (s0 + s1) * ic.invDiag[i]
	}
}

// NewAutoPreconditioner builds the strongest preconditioner that succeeds on
// a: IC(0) if its factorization exists, otherwise Jacobi, otherwise identity.
func NewAutoPreconditioner(a *sparse.CSR) Preconditioner {
	if ic, err := NewIC0(a); err == nil {
		return ic
	}
	if j, err := NewJacobi(a); err == nil {
		return j
	}
	return Identity{}
}
