package solver

import (
	"fmt"
	"math"

	"emvia/internal/sparse"
)

// IC0 is a zero-fill incomplete-Cholesky preconditioner: A ≈ L·Lᵀ where L
// keeps exactly the sparsity pattern of the lower triangle of A. For the
// M-matrix-like conductance systems of power grids, IC(0) exists and cuts CG
// iteration counts by a large factor; for FEM elasticity it usually exists
// too, and NewIC0 falls back with ErrNotSPD when a pivot breaks down so the
// caller can degrade to Jacobi.
type IC0 struct {
	n    int
	ptr  []int
	cols []int
	vals []float64 // L stored row-wise, diagonal last in each row
	diag []int     // index of the diagonal entry of each row within vals
}

// NewIC0 computes the zero-fill incomplete Cholesky factor of SPD matrix a.
func NewIC0(a *sparse.CSR) (*IC0, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("solver: IC0 needs a square matrix, got %d×%d", n, c)
	}
	low := a.LowerTriangle()
	ptr := make([]int, n+1)
	var colsAll []int
	var valsAll []float64
	diag := make([]int, n)

	// Copy the lower triangle; record diagonal positions.
	for i := 0; i < n; i++ {
		cols, vals := low.Row(i)
		if len(cols) == 0 || cols[len(cols)-1] != i {
			return nil, fmt.Errorf("%w: row %d has no diagonal entry", ErrNotSPD, i)
		}
		ptr[i] = len(colsAll)
		colsAll = append(colsAll, cols...)
		valsAll = append(valsAll, vals...)
		diag[i] = len(colsAll) - 1
	}
	ptr[n] = len(colsAll)

	ic := &IC0{n: n, ptr: ptr, cols: colsAll, vals: valsAll, diag: diag}
	if err := ic.factor(); err != nil {
		return nil, err
	}
	return ic, nil
}

// factor runs the numeric IC(0) factorization in place over vals, which must
// hold the lower triangle of A in pattern order.
//
// We use the simple O(nnz·rowlen) up-looking variant: for each row i and
// each pair (j,k) of its off-diagonal columns, subtract L(i,j)·L(k,j)
// contributions. Rows here are short (FEM ≤ ~81, grids ≤ ~7), so the
// quadratic-in-rowlen cost is fine.
func (ic *IC0) factor() error {
	ptr, colsAll, valsAll, diag := ic.ptr, ic.cols, ic.vals, ic.diag
	for i := 0; i < ic.n; i++ {
		rowCols := colsAll[ptr[i] : ptr[i+1]-1] // off-diagonal columns of row i
		rowVals := valsAll[ptr[i] : ptr[i+1]-1]
		// Update row i using previously factored rows j (j < i, entry L(i,j)).
		for a1 := 0; a1 < len(rowCols); a1++ {
			j := rowCols[a1]
			// L(i,j) = (A(i,j) − Σ_{k<j} L(i,k)·L(j,k)) / L(j,j)
			sum := rowVals[a1]
			jCols := colsAll[ptr[j] : ptr[j+1]-1]
			jVals := valsAll[ptr[j] : ptr[j+1]-1]
			// Merge-intersect the column lists of rows i and j (both sorted).
			bi, bj := 0, 0
			for bi < a1 && bj < len(jCols) {
				switch {
				case rowCols[bi] < jCols[bj]:
					bi++
				case rowCols[bi] > jCols[bj]:
					bj++
				default:
					sum -= rowVals[bi] * jVals[bj]
					bi++
					bj++
				}
			}
			ljj := valsAll[diag[j]]
			rowVals[a1] = sum / ljj
		}
		// Diagonal: L(i,i) = sqrt(A(i,i) − Σ_k L(i,k)²).
		d := valsAll[diag[i]]
		for _, v := range rowVals {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w: IC0 pivot %g at row %d", ErrNotSPD, d, i)
		}
		valsAll[diag[i]] = math.Sqrt(d)
	}
	return nil
}

// Refresh refactors the preconditioner in place from a, which must have the
// sparsity pattern the factor was built from. It performs no allocation, so
// the circuit solver can refresh a stale factor inside the Monte-Carlo inner
// loop. On error the factor content is undefined and the caller must rebuild
// with NewIC0.
func (ic *IC0) Refresh(a *sparse.CSR) error {
	n, c := a.Dims()
	if n != ic.n || c != ic.n {
		return fmt.Errorf("solver: IC0 Refresh dimensions %d×%d, want %d×%d", n, c, ic.n, ic.n)
	}
	// Re-copy the lower triangle of a into the factor storage in place.
	w := 0
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, col := range cols {
			if col > i {
				break
			}
			if w >= ic.ptr[i+1] || ic.cols[w] != col {
				return fmt.Errorf("solver: IC0 Refresh pattern mismatch at (%d,%d)", i, col)
			}
			ic.vals[w] = vals[k]
			w++
		}
		if w != ic.ptr[i+1] {
			return fmt.Errorf("solver: IC0 Refresh pattern mismatch in row %d", i)
		}
	}
	return ic.factor()
}

// Apply overwrites z with (L·Lᵀ)⁻¹·r by forward and backward substitution.
func (ic *IC0) Apply(z, r []float64) {
	// Forward solve L·y = r.
	for i := 0; i < ic.n; i++ {
		sum := r[i]
		for k := ic.ptr[i]; k < ic.diag[i]; k++ {
			sum -= ic.vals[k] * z[ic.cols[k]]
		}
		z[i] = sum / ic.vals[ic.diag[i]]
	}
	// Backward solve Lᵀ·z = y, processing columns right to left.
	for i := ic.n - 1; i >= 0; i-- {
		zi := z[i] / ic.vals[ic.diag[i]]
		z[i] = zi
		for k := ic.ptr[i]; k < ic.diag[i]; k++ {
			z[ic.cols[k]] -= ic.vals[k] * zi
		}
	}
}

// NewAutoPreconditioner builds the strongest preconditioner that succeeds on
// a: IC(0) if its factorization exists, otherwise Jacobi, otherwise identity.
func NewAutoPreconditioner(a *sparse.CSR) Preconditioner {
	if ic, err := NewIC0(a); err == nil {
		return ic
	}
	if j, err := NewJacobi(a); err == nil {
		return j
	}
	return Identity{}
}
