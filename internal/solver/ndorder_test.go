package solver

import (
	"testing"
)

func TestNDOrderPermutationRoundTrip(t *testing.T) {
	for _, dims := range [][2]int{{9, 11}, {70, 70}} {
		a := gridLaplacian(dims[0], dims[1])
		perm := NDOrder(a)
		inv := InversePermutation(perm)
		for i := range perm {
			if perm[inv[i]] != i || inv[perm[i]] != i {
				t.Fatalf("%dx%d: perm∘invperm is not the identity at %d", dims[0], dims[1], i)
			}
		}
	}
}

func TestNDOrderDeterministic(t *testing.T) {
	a := gridLaplacian(40, 37)
	p1, p2 := NDOrder(a), NDOrder(a)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("ordering differs at %d: %d vs %d", i, p1[i], p2[i])
		}
	}
}

// TestNDOrderFillVsAMD cross-checks nested dissection against AMD on a grid
// large enough for the asymptotic fill advantage to show: the ND factor must
// not fill more than AMD's, and both orderings must solve the same system to
// the same answer.
func TestNDOrderFillVsAMD(t *testing.T) {
	a := gridLaplacian(150, 150)
	n, _ := a.Dims()
	nd, err := NewSparseCholeskyOrdered(a, NDOrder(a))
	if err != nil {
		t.Fatal(err)
	}
	amd, err := NewSparseCholeskyOrdered(a, AMDOrder(a))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fill on 150x150 grid: ND %d, AMD %d", nd.NNZ(), amd.NNZ())
	if nd.NNZ() > amd.NNZ() {
		t.Fatalf("ND fill %d above AMD fill %d", nd.NNZ(), amd.NNZ())
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	xn := make([]float64, n)
	xa := make([]float64, n)
	if err := nd.SolveInto(xn, b); err != nil {
		t.Fatal(err)
	}
	if err := amd.SolveInto(xa, b); err != nil {
		t.Fatal(err)
	}
	for i := range xn {
		if d := xn[i] - xa[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("ND and AMD solutions differ at %d: %g vs %g", i, xn[i], xa[i])
		}
	}
}

// TestNDOrderDisconnected exercises the component split: a block-diagonal
// matrix of two meshes must still yield a complete, valid ordering.
func TestNDOrderDisconnected(t *testing.T) {
	a := gridLaplacian(30, 30)
	n, _ := a.Dims()
	// Duplicate the mesh into a 2n block-diagonal system.
	two := blockDiag(a, a)
	perm := NDOrder(two)
	inv := InversePermutation(perm)
	for i := range perm {
		if perm[inv[i]] != i {
			t.Fatalf("perm is not a permutation at %d", i)
		}
	}
	if _, err := NewSparseCholeskyOrdered(two, perm); err != nil {
		t.Fatalf("factor under ND ordering: %v", err)
	}
	_ = n
}

// TestAutoOrderSwitch pins the AMD/ND selection threshold.
func TestAutoOrderSwitch(t *testing.T) {
	small := gridLaplacian(20, 20) // 400 < NDMinNodes
	pa := AutoOrder(small)
	pb := AMDOrder(small)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("AutoOrder below threshold is not AMD at %d", i)
		}
	}
	large := gridLaplacian(64, 64) // 4096 = NDMinNodes
	pa = AutoOrder(large)
	pb = NDOrder(large)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("AutoOrder at threshold is not ND at %d", i)
		}
	}
}
