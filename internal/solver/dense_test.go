package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"emvia/internal/sparse"
)

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestDenseCholeskySolveIntoMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	_, dense := randomSPD(rng, 12)
	ch, err := NewDenseCholesky(dense, 12)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 12)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1, err := ch.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, 12)
	if err := ch.SolveInto(x2, b); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(x1, x2); d != 0 {
		t.Errorf("SolveInto differs from Solve by %g", d)
	}
	if err := ch.SolveInto(make([]float64, 5), b); err == nil {
		t.Error("SolveInto accepted wrong-length x")
	}
}

func TestDenseCholeskyFromCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(12)
		a, dense := randomSPD(rng, n)
		cd, err := NewDenseCholesky(dense, n)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := NewDenseCholeskyFromCSR(a)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xd, _ := cd.Solve(b)
		xs, _ := cs.Solve(b)
		if d := maxAbsDiff(xd, xs); d > 1e-12 {
			t.Errorf("trial %d: CSR-built factor differs by %g", trial, d)
		}
	}
}

// TestDenseCholeskyUpdateDowndateMatchesRefactor verifies the LINPACK
// rank-one recurrences against a from-scratch factorization: updating by
// w·wᵀ must match factoring A + w·wᵀ, and downdating back must recover the
// original solve.
func TestDenseCholeskyUpdateDowndateMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(15)
		_, dense := randomSPD(rng, n)
		ch, err := NewDenseCholesky(dense, n)
		if err != nil {
			t.Fatal(err)
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.3 * rng.NormFloat64()
		}
		// Sparse w with leading zeros, like a via edit touching two nodes.
		for i := 0; i < n/2; i++ {
			w[i] = 0
		}
		updated := make([]float64, n*n)
		copy(updated, dense)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				updated[i*n+j] += w[i] * w[j]
			}
		}
		ref, err := NewDenseCholesky(updated, n)
		if err != nil {
			t.Fatal(err)
		}
		wc := make([]float64, n)
		copy(wc, w)
		ch.Update(wc)

		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xu, _ := ch.Solve(b)
		xr, _ := ref.Solve(b)
		if d := maxAbsDiff(xu, xr); d > 1e-9 {
			t.Errorf("trial %d: update vs refactor differ by %g", trial, d)
		}

		// Downdate back to the original matrix.
		copy(wc, w)
		if err := ch.Downdate(wc); err != nil {
			t.Fatalf("trial %d: downdate: %v", trial, err)
		}
		orig, err := NewDenseCholesky(dense, n)
		if err != nil {
			t.Fatal(err)
		}
		xd, _ := ch.Solve(b)
		xo, _ := orig.Solve(b)
		if d := maxAbsDiff(xd, xo); d > 1e-9 {
			t.Errorf("trial %d: downdate did not restore original (diff %g)", trial, d)
		}
	}
}

func TestDenseCholeskyDowndateRejectsIndefinite(t *testing.T) {
	// A = I (2×2); downdating by w = (2,0) would give 1−4 < 0.
	ch, err := NewDenseCholesky([]float64{1, 0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Downdate([]float64{2, 0}); !errors.Is(err, ErrNotSPD) {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
}

func TestDenseCholeskySetAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	_, d1 := randomSPD(rng, 8)
	_, d2 := randomSPD(rng, 8)
	a, _ := NewDenseCholesky(d1, 8)
	bf, _ := NewDenseCholesky(d2, 8)
	snap := a.Clone()
	if err := a.Set(bf); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 8)
	b[3] = 1
	xa, _ := a.Solve(b)
	xb, _ := bf.Solve(b)
	if d := maxAbsDiff(xa, xb); d != 0 {
		t.Errorf("Set did not copy factor (diff %g)", d)
	}
	// The clone must be unaffected by the Set.
	xs, _ := snap.Solve(b)
	orig, _ := NewDenseCholesky(d1, 8)
	xo, _ := orig.Solve(b)
	if d := maxAbsDiff(xs, xo); d != 0 {
		t.Errorf("Clone aliased the original factor (diff %g)", d)
	}
	if err := a.Set(&DenseCholesky{n: 3, l: make([]float64, 9)}); err == nil {
		t.Error("Set accepted mismatched dimension")
	}
	if err := a.RefactorFromCSR(laplacian1D(5)); err == nil {
		t.Error("RefactorFromCSR accepted mismatched dimension")
	}
}

// TestJacobiUpdateDiagMatchesRebuild checks that the O(1) diagonal patch
// leaves the preconditioner identical to one rebuilt from the edited matrix.
func TestJacobiUpdateDiagMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a, dense := randomSPD(rng, 10)
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	// Edit two diagonal entries, as a resistor edit between two free nodes
	// would.
	dense[2*10+2] += 3.5
	dense[7*10+7] += 3.5
	if !jac.UpdateDiag(2, dense[2*10+2]) || !jac.UpdateDiag(7, dense[7*10+7]) {
		t.Fatal("UpdateDiag rejected positive diagonal")
	}
	tr := sparse.NewTriplet(10, 10, 100)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			tr.Add(i, j, dense[i*10+j])
		}
	}
	ref, err := NewJacobi(tr.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, 10)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	z1 := make([]float64, 10)
	z2 := make([]float64, 10)
	jac.Apply(z1, r)
	ref.Apply(z2, r)
	if d := maxAbsDiff(z1, z2); d != 0 {
		t.Errorf("patched Jacobi differs from rebuilt by %g", d)
	}
	if jac.UpdateDiag(2, 0) || jac.UpdateDiag(2, math.NaN()) {
		t.Error("UpdateDiag accepted nonpositive diagonal")
	}
}

// TestIC0RefreshMatchesFresh checks that refreshing an IC(0) factor in place
// from a same-pattern matrix gives the factor a fresh NewIC0 would build.
func TestIC0RefreshMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a1, dense := randomSPD(rng, 12)
	ic, err := NewIC0(a1)
	if err != nil {
		t.Fatal(err)
	}
	// Same pattern (fully dense here), different values: scale and bump the
	// diagonal so the refreshed factor is genuinely different.
	tr := sparse.NewTriplet(12, 12, 144)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			v := 1.7 * dense[i*12+j]
			if i == j {
				v += 2
			}
			tr.Add(i, j, v)
		}
	}
	a2 := tr.ToCSR()
	if err := ic.Refresh(a2); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	ref, err := NewIC0(a2)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, 12)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	z1 := make([]float64, 12)
	z2 := make([]float64, 12)
	ic.Apply(z1, r)
	ref.Apply(z2, r)
	if d := maxAbsDiff(z1, z2); d != 0 {
		t.Errorf("refreshed IC0 differs from fresh by %g", d)
	}
	// Pattern mismatch must be rejected, not silently misapplied.
	if err := ic.Refresh(laplacian1D(12)); err == nil {
		t.Error("Refresh accepted a different sparsity pattern")
	}
	if err := ic.Refresh(laplacian1D(5)); err == nil {
		t.Error("Refresh accepted a different dimension")
	}
}

// TestCGWorkspaceMatchesAndZeroAlloc checks that CG with a caller-provided
// workspace returns the same solution as the allocating path, and allocates
// nothing once the workspace is warm.
func TestCGWorkspaceMatchesAndZeroAlloc(t *testing.T) {
	n := 60
	a := laplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Cos(float64(i))
	}
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	xRef, stRef, err := CG(a, b, Options{Tol: 1e-10, M: jac})
	if err != nil {
		t.Fatal(err)
	}
	var ws Workspace
	ws.Reserve(n)
	xw, stw, err := CG(a, b, Options{Tol: 1e-10, M: jac, Work: &ws})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(xRef, xw); d != 0 {
		t.Errorf("workspace CG differs from allocating CG by %g", d)
	}
	if stw.Iterations != stRef.Iterations {
		t.Errorf("workspace CG took %d iterations, allocating took %d", stw.Iterations, stRef.Iterations)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := CG(a, b, Options{Tol: 1e-10, M: jac, Work: &ws}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("CG with workspace allocates %.1f objects per solve, want 0", allocs)
	}
}
