package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emvia/internal/sparse"
)

// randomSPD builds a random SPD matrix A = Bᵀ·B + n·I (dense) and its CSR
// form with a sprinkling of exact zeros kept out of the pattern.
func randomSPD(rng *rand.Rand, n int) (*sparse.CSR, []float64) {
	b := make([]float64, n*n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	dense := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b[k*n+i] * b[k*n+j]
			}
			if i == j {
				s += float64(n)
			}
			dense[i*n+j] = s
		}
	}
	tr := sparse.NewTriplet(n, n, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tr.Add(i, j, dense[i*n+j])
		}
	}
	return tr.ToCSR(), dense
}

// laplacian1D returns the SPD tridiagonal matrix of a 1-D resistive chain
// with grounded ends: classic well-conditioned test system.
func laplacian1D(n int) *sparse.CSR {
	tr := sparse.NewTriplet(n, n, 3*n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 2)
		if i > 0 {
			tr.Add(i, i-1, -1)
		}
		if i < n-1 {
			tr.Add(i, i+1, -1)
		}
	}
	return tr.ToCSR()
}

func residual(a *sparse.CSR, x, b []float64) float64 {
	r := a.MulVec(x)
	num, den := 0.0, 0.0
	for i := range b {
		d := b[i] - r[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

func TestCGSolvesLaplacian(t *testing.T) {
	n := 50
	a := laplacian1D(n)
	b := make([]float64, n)
	b[n/2] = 1
	x, st, err := CG(a, b, Options{})
	if err != nil {
		t.Fatalf("CG failed: %v", err)
	}
	if res := residual(a, x, b); res > 1e-9 {
		t.Errorf("residual = %g, want < 1e-9", res)
	}
	if st.Iterations == 0 {
		t.Error("CG reported zero iterations for nontrivial solve")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := laplacian1D(10)
	x, st, err := CG(a, make([]float64, 10), Options{})
	if err != nil {
		t.Fatalf("CG failed: %v", err)
	}
	for i, v := range x {
		if v != 0 {
			t.Errorf("x[%d] = %g, want 0", i, v)
		}
	}
	if st.Iterations != 0 {
		t.Errorf("iterations = %d, want 0 for zero rhs", st.Iterations)
	}
}

func TestCGDimensionErrors(t *testing.T) {
	a := laplacian1D(4)
	if _, _, err := CG(a, make([]float64, 3), Options{}); err == nil {
		t.Error("CG accepted mismatched rhs")
	}
	rect := sparse.NewTriplet(2, 3, 0).ToCSR()
	if _, _, err := CG(rect, make([]float64, 3), Options{}); err == nil {
		t.Error("CG accepted non-square matrix")
	}
	if _, _, err := CG(a, make([]float64, 4), Options{X0: make([]float64, 5)}); err == nil {
		t.Error("CG accepted bad warm start length")
	}
}

func TestCGNotConverged(t *testing.T) {
	a := laplacian1D(200)
	b := make([]float64, 200)
	b[0] = 1
	_, _, err := CG(a, b, Options{MaxIter: 2, Tol: 1e-14})
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("err = %v, want ErrNotConverged", err)
	}
}

func TestCGIndefiniteDetected(t *testing.T) {
	tr := sparse.NewTriplet(2, 2, 0)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, -1)
	_, _, err := CG(tr.ToCSR(), []float64{0, 1}, Options{})
	if !errors.Is(err, ErrNotSPD) {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
}

func TestPreconditionersAgreeRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		a, _ := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		jac, err := NewJacobi(a)
		if err != nil {
			t.Fatalf("NewJacobi: %v", err)
		}
		ic, err := NewIC0(a)
		if err != nil {
			t.Fatalf("NewIC0: %v", err)
		}
		for name, m := range map[string]Preconditioner{"identity": Identity{}, "jacobi": jac, "ic0": ic} {
			x, _, err := CG(a, b, Options{M: m, Tol: 1e-11})
			if err != nil {
				t.Fatalf("trial %d %s: CG failed: %v", trial, name, err)
			}
			if res := residual(a, x, b); res > 1e-9 {
				t.Errorf("trial %d %s: residual = %g", trial, name, res)
			}
		}
	}
}

func TestIC0ReducesIterations(t *testing.T) {
	n := 400
	a := laplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	_, plain, err := CG(a, b, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("plain CG: %v", err)
	}
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatalf("NewIC0: %v", err)
	}
	_, pre, err := CG(a, b, Options{Tol: 1e-10, M: ic})
	if err != nil {
		t.Fatalf("IC0 CG: %v", err)
	}
	if pre.Iterations >= plain.Iterations {
		t.Errorf("IC0 iterations %d not fewer than plain %d", pre.Iterations, plain.Iterations)
	}
}

func TestICOExactOnTridiagonal(t *testing.T) {
	// For a tridiagonal matrix IC(0) equals the exact Cholesky factor, so a
	// single preconditioner application solves the system.
	n := 30
	a := laplacian1D(n)
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatalf("NewIC0: %v", err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%3) - 1
	}
	x := make([]float64, n)
	ic.Apply(x, b)
	if res := residual(a, x, b); res > 1e-10 {
		t.Errorf("IC0 on tridiagonal: residual = %g, want ~0", res)
	}
}

func TestJacobiRejectsNonpositiveDiagonal(t *testing.T) {
	tr := sparse.NewTriplet(2, 2, 0)
	tr.Add(0, 0, 1)
	// (1,1) diagonal missing → zero.
	if _, err := NewJacobi(tr.ToCSR()); !errors.Is(err, ErrNotSPD) {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
}

func TestDenseCholeskyMatchesCG(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(15)
		a, dense := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ch, err := NewDenseCholesky(dense, n)
		if err != nil {
			t.Fatalf("NewDenseCholesky: %v", err)
		}
		xd, err := ch.Solve(b)
		if err != nil {
			t.Fatalf("dense solve: %v", err)
		}
		xi, _, err := CG(a, b, Options{Tol: 1e-12})
		if err != nil {
			t.Fatalf("CG: %v", err)
		}
		for i := range xd {
			if math.Abs(xd[i]-xi[i]) > 1e-6*(1+math.Abs(xd[i])) {
				t.Fatalf("trial %d: dense/CG mismatch at %d: %g vs %g", trial, i, xd[i], xi[i])
			}
		}
	}
}

func TestDenseCholeskyRejectsIndefinite(t *testing.T) {
	if _, err := NewDenseCholesky([]float64{1, 2, 2, 1}, 2); !errors.Is(err, ErrNotSPD) {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
	if _, err := NewDenseCholesky([]float64{1, 2, 3}, 2); err == nil {
		t.Error("accepted wrong-size matrix")
	}
}

func TestCGWarmStart(t *testing.T) {
	n := 100
	a := laplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x, cold, err := CG(a, b, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("cold CG: %v", err)
	}
	_, warm, err := CG(a, b, Options{Tol: 1e-10, X0: x})
	if err != nil {
		t.Fatalf("warm CG: %v", err)
	}
	if warm.Iterations > 1 {
		t.Errorf("warm-start iterations = %d, want ≤ 1", warm.Iterations)
	}
	if cold.Iterations <= 1 {
		t.Errorf("cold iterations = %d, suspiciously few", cold.Iterations)
	}
}

// Property: CG solution satisfies A·x = b for random SPD systems of random
// size under every preconditioner.
func TestCGPropertyRandomSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		a, _ := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, _, err := CG(a, b, Options{Tol: 1e-11, M: NewAutoPreconditioner(a)})
		if err != nil {
			return false
		}
		return residual(a, x, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
