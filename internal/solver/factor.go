package solver

import (
	"fmt"

	"emvia/internal/sparse"
)

// SparseFactor is the backend-neutral contract of the sparse direct
// factorizations: the scalar up-looking SparseCholesky and the blocked
// parallel SupernodalCholesky. Consumers (the SPICE engine, the Monte-Carlo
// trial loop) program against this interface so the backend can be picked by
// system size without touching the call sites.
//
// Both implementations guarantee the same semantics: fixed sparsity pattern
// after construction, allocation-free refactorization/solves, rank-one edge
// up/downdates with identical LINPACK arithmetic, and bit-identical solve
// results for a given factor regardless of backend-internal scheduling.
type SparseFactor interface {
	// N returns the system dimension.
	N() int
	// NNZ returns the stored entry count of L, diagonal included.
	NNZ() int
	// Perm returns the elimination order (internal slice; do not modify).
	Perm() []int
	// RefactorFromCSR refactors numerically in place from a matrix with the
	// pattern of the symbolic analysis.
	RefactorFromCSR(a *sparse.CSR) error
	// SolveInto overwrites x with A⁻¹·b without allocating.
	SolveInto(x, b []float64) error
	// SolveBatchInto solves nrhs stacked systems (vector v at [v·n, (v+1)·n))
	// in one pass, bit-identical to nrhs separate SolveInto calls.
	SolveBatchInto(x, b []float64, nrhs int) error
	// UpdateEdge applies A → A + s²·(e_fa−e_fb)·(e_fa−e_fb)ᵀ in original
	// indices; a negative terminal index means "pinned node" (absent).
	UpdateEdge(fa, fb int, s float64)
	// DowndateEdge applies A → A − s²·(e_fa−e_fb)·(e_fa−e_fb)ᵀ. On ErrNotSPD
	// the factor is garbage and must be refactored.
	DowndateEdge(fa, fb int, s float64) error
	// Restore overwrites the numeric factor with a copy of src's, which must
	// be the same backend with the same symbolic structure.
	Restore(src SparseFactor) error
	// CloneFactor returns an independent copy with private numeric state.
	CloneFactor() SparseFactor
}

// Restore implements SparseFactor for the scalar backend.
func (c *SparseCholesky) Restore(src SparseFactor) error {
	s, ok := src.(*SparseCholesky)
	if !ok {
		return fmt.Errorf("solver: Restore backend mismatch: %T into %T", src, c)
	}
	return c.Set(s)
}

// CloneFactor implements SparseFactor for the scalar backend.
func (c *SparseCholesky) CloneFactor() SparseFactor { return c.Clone() }

// Restore implements SparseFactor for the supernodal backend.
func (c *SupernodalCholesky) Restore(src SparseFactor) error {
	s, ok := src.(*SupernodalCholesky)
	if !ok {
		return fmt.Errorf("solver: Restore backend mismatch: %T into %T", src, c)
	}
	return c.Set(s)
}

// CloneFactor implements SparseFactor for the supernodal backend.
func (c *SupernodalCholesky) CloneFactor() SparseFactor { return c.Clone() }

var (
	_ SparseFactor = (*SparseCholesky)(nil)
	_ SparseFactor = (*SupernodalCholesky)(nil)
)
