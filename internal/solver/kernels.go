package solver

import (
	"emvia/internal/par"
	"emvia/internal/sparse"
)

// Deterministic parallel kernels for the CG iteration.
//
// Reductions (dot products) are computed over fixed-size blocks whose partial
// sums are written to per-block slots and reduced sequentially in block
// order. The block size is a constant of the algorithm — never derived from
// the worker count — so the floating-point result is bit-identical for any
// number of workers, including the serial path, which runs the exact same
// block loop inline. Elementwise updates (axpy, SpMV rows) have disjoint
// writes per index and are deterministic under any partition.
const (
	// dotBlock is the reduction block length.
	dotBlock = 1024
	// rowBlock is the number of matrix rows per SpMV dispatch block.
	rowBlock = 256
	// vecBlock is the number of vector entries per axpy dispatch block.
	vecBlock = 4096
)

// partialsLen returns the number of dot-product partial slots for dimension n.
func partialsLen(n int) int { return par.Blocks(n, dotBlock) }

// dotRange accumulates Σ a[i]·b[i] over [lo,hi) in index order.
func dotRange(a, b []float64, lo, hi int) float64 {
	s := 0.0
	for i := lo; i < hi; i++ {
		s += a[i] * b[i]
	}
	return s
}

// dotDet computes the blocked dot product of a and b using partials as the
// per-block scratch (len(partials) == partialsLen(len(a))). The serial branch
// performs no allocation.
func dotDet(a, b, partials []float64, p *par.Pool) float64 {
	n := len(a)
	nb := len(partials)
	if p.Workers() == 1 {
		for bi := 0; bi < nb; bi++ {
			lo := bi * dotBlock
			hi := lo + dotBlock
			if hi > n {
				hi = n
			}
			partials[bi] = dotRange(a, b, lo, hi)
		}
	} else {
		p.Run(nb, func(bi int) {
			lo := bi * dotBlock
			hi := lo + dotBlock
			if hi > n {
				hi = n
			}
			partials[bi] = dotRange(a, b, lo, hi)
		})
	}
	s := 0.0
	for _, v := range partials {
		s += v
	}
	return s
}

// mulVec computes y = A·x, row-partitioned across the pool. Row results are
// independent, so the output matches the serial MulVecTo bit for bit.
func mulVec(a *sparse.CSR, y, x []float64, p *par.Pool) {
	if p.Workers() == 1 {
		a.MulVecTo(y, x)
		return
	}
	rows, _ := a.Dims()
	p.Run(par.Blocks(rows, rowBlock), func(bi int) {
		lo := bi * rowBlock
		hi := lo + rowBlock
		if hi > rows {
			hi = rows
		}
		a.MulVecRange(y, x, lo, hi)
	})
}

// cgUpdate applies the fused iterate/residual update x += α·p, r −= α·ap.
func cgUpdate(x, r, pvec, ap []float64, alpha float64, p *par.Pool) {
	n := len(x)
	if p.Workers() == 1 {
		for i := 0; i < n; i++ {
			x[i] += alpha * pvec[i]
			r[i] -= alpha * ap[i]
		}
		return
	}
	p.Run(par.Blocks(n, vecBlock), func(bi int) {
		lo := bi * vecBlock
		hi := lo + vecBlock
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			x[i] += alpha * pvec[i]
			r[i] -= alpha * ap[i]
		}
	})
}

// cgDirection updates the search direction p = z + β·p.
func cgDirection(pvec, z []float64, beta float64, p *par.Pool) {
	n := len(pvec)
	if p.Workers() == 1 {
		for i := 0; i < n; i++ {
			pvec[i] = z[i] + beta*pvec[i]
		}
		return
	}
	p.Run(par.Blocks(n, vecBlock), func(bi int) {
		lo := bi * vecBlock
		hi := lo + vecBlock
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			pvec[i] = z[i] + beta*pvec[i]
		}
	})
}
