package solver

import (
	"emvia/internal/par"
	"emvia/internal/sparse"
)

// Deterministic parallel kernels for the CG iteration.
//
// Reductions (dot products) are computed over fixed-size blocks whose partial
// sums are written to per-block slots and reduced sequentially in block
// order. The block size is a constant of the algorithm — never derived from
// the worker count — so the floating-point result is bit-identical for any
// number of workers, including the serial path, which runs the exact same
// block loop inline. Elementwise updates (axpy, SpMV rows) have disjoint
// writes per index and are deterministic under any partition.
const (
	// dotBlock is the reduction block length.
	dotBlock = 1024
	// rowBlock is the number of matrix rows per SpMV dispatch block.
	rowBlock = 256
	// vecBlock is the number of vector entries per axpy dispatch block.
	vecBlock = 4096
)

// partialsLen returns the number of dot-product partial slots for dimension n.
func partialsLen(n int) int { return par.Blocks(n, dotBlock) }

// dotRange accumulates Σ a[i]·b[i] over [lo,hi) in index order.
func dotRange(a, b []float64, lo, hi int) float64 {
	s := 0.0
	for i := lo; i < hi; i++ {
		s += a[i] * b[i]
	}
	return s
}

// dotDet computes the blocked dot product of a and b using partials as the
// per-block scratch (len(partials) == partialsLen(len(a))). The serial branch
// performs no allocation.
func dotDet(a, b, partials []float64, p *par.Pool) float64 {
	n := len(a)
	nb := len(partials)
	if p.Workers() == 1 {
		for bi := 0; bi < nb; bi++ {
			lo := bi * dotBlock
			hi := lo + dotBlock
			if hi > n {
				hi = n
			}
			partials[bi] = dotRange(a, b, lo, hi)
		}
	} else {
		p.Run(nb, func(bi int) {
			lo := bi * dotBlock
			hi := lo + dotBlock
			if hi > n {
				hi = n
			}
			partials[bi] = dotRange(a, b, lo, hi)
		})
	}
	s := 0.0
	for _, v := range partials {
		s += v
	}
	return s
}

// mulVec computes y = A·x, row-partitioned across the pool. Row results are
// independent, so the output matches the serial MulVecTo bit for bit.
func mulVec(a *sparse.CSR, y, x []float64, p *par.Pool) {
	if p.Workers() == 1 {
		a.MulVecTo(y, x)
		return
	}
	rows, _ := a.Dims()
	p.Run(par.Blocks(rows, rowBlock), func(bi int) {
		lo := bi * rowBlock
		hi := lo + rowBlock
		if hi > rows {
			hi = rows
		}
		a.MulVecRange(y, x, lo, hi)
	})
}

// cgUpdate applies the fused iterate/residual update x += α·p, r −= α·ap.
func cgUpdate(x, r, pvec, ap []float64, alpha float64, p *par.Pool) {
	n := len(x)
	if p.Workers() == 1 {
		for i := 0; i < n; i++ {
			x[i] += alpha * pvec[i]
			r[i] -= alpha * ap[i]
		}
		return
	}
	p.Run(par.Blocks(n, vecBlock), func(bi int) {
		lo := bi * vecBlock
		hi := lo + vecBlock
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			x[i] += alpha * pvec[i]
			r[i] -= alpha * ap[i]
		}
	})
}

// cgDirection updates the search direction p = z + β·p.
func cgDirection(pvec, z []float64, beta float64, p *par.Pool) {
	n := len(pvec)
	if p.Workers() == 1 {
		for i := 0; i < n; i++ {
			pvec[i] = z[i] + beta*pvec[i]
		}
		return
	}
	p.Run(par.Blocks(n, vecBlock), func(bi int) {
		lo := bi * vecBlock
		hi := lo + vecBlock
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			pvec[i] = z[i] + beta*pvec[i]
		}
	})
}

// kernCtx holds the pooled CG kernels with their dispatch closures hoisted
// out of the per-iteration path. The free functions above allocate one
// closure per call when the pool is parallel; at tens of CG iterations per
// solve and four kernel calls per iteration that dominated the multi-worker
// FEA allocation profile (BENCH_3: 1728–2076 allocs/op vs 189 serial). The
// context creates each closure once — capturing only the context pointer —
// and passes operands through fields, so steady-state parallel iterations
// allocate nothing. Numerically the context paths run the exact block loops
// of the free functions, so results stay bit-identical.
type kernCtx struct {
	pool *par.Pool

	// Operand fields, set immediately before each dispatch.
	mat              *sparse.CSR
	dx, dy, partials []float64 // dot product
	mvY, mvX         []float64 // SpMV
	ux, ur, up, uap  []float64 // fused iterate/residual update
	alpha, beta      float64

	dotFn, mulFn, updFn, dirFn func(int)
}

// bind points the context at a pool and creates the dispatch closures on
// first parallel use.
func (k *kernCtx) bind(pool *par.Pool) {
	k.pool = pool
	if pool.Workers() == 1 || k.dotFn != nil {
		return
	}
	k.dotFn = func(bi int) {
		n := len(k.dx)
		lo := bi * dotBlock
		hi := lo + dotBlock
		if hi > n {
			hi = n
		}
		k.partials[bi] = dotRange(k.dx, k.dy, lo, hi)
	}
	k.mulFn = func(bi int) {
		rows := len(k.mvY)
		lo := bi * rowBlock
		hi := lo + rowBlock
		if hi > rows {
			hi = rows
		}
		k.mat.MulVecRange(k.mvY, k.mvX, lo, hi)
	}
	k.updFn = func(bi int) {
		n := len(k.ux)
		lo := bi * vecBlock
		hi := lo + vecBlock
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			k.ux[i] += k.alpha * k.up[i]
			k.ur[i] -= k.alpha * k.uap[i]
		}
	}
	k.dirFn = func(bi int) {
		n := len(k.up)
		lo := bi * vecBlock
		hi := lo + vecBlock
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			k.up[i] = k.ur[i] + k.beta*k.up[i]
		}
	}
}

// dot is dotDet through the hoisted closures.
func (k *kernCtx) dot(a, b, partials []float64) float64 {
	n := len(a)
	nb := len(partials)
	if k.pool.Workers() == 1 {
		for bi := 0; bi < nb; bi++ {
			lo := bi * dotBlock
			hi := lo + dotBlock
			if hi > n {
				hi = n
			}
			partials[bi] = dotRange(a, b, lo, hi)
		}
	} else {
		k.dx, k.dy, k.partials = a, b, partials
		k.pool.Run(nb, k.dotFn)
	}
	s := 0.0
	for _, v := range partials {
		s += v
	}
	return s
}

// mul is mulVec through the hoisted closures.
func (k *kernCtx) mul(a *sparse.CSR, y, x []float64) {
	if k.pool.Workers() == 1 {
		a.MulVecTo(y, x)
		return
	}
	rows, _ := a.Dims()
	k.mat, k.mvY, k.mvX = a, y, x
	k.pool.Run(par.Blocks(rows, rowBlock), k.mulFn)
}

// update is cgUpdate through the hoisted closures.
func (k *kernCtx) update(x, r, pvec, ap []float64, alpha float64) {
	n := len(x)
	if k.pool.Workers() == 1 {
		for i := 0; i < n; i++ {
			x[i] += alpha * pvec[i]
			r[i] -= alpha * ap[i]
		}
		return
	}
	k.ux, k.ur, k.up, k.uap, k.alpha = x, r, pvec, ap, alpha
	k.pool.Run(par.Blocks(n, vecBlock), k.updFn)
}

// direction is cgDirection through the hoisted closures. It reuses the up/ur
// operand fields: p = z + β·p with ur carrying z.
func (k *kernCtx) direction(pvec, z []float64, beta float64) {
	n := len(pvec)
	if k.pool.Workers() == 1 {
		for i := 0; i < n; i++ {
			pvec[i] = z[i] + beta*pvec[i]
		}
		return
	}
	k.up, k.ur, k.beta = pvec, z, beta
	k.pool.Run(par.Blocks(n, vecBlock), k.dirFn)
}
