package solver

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"emvia/internal/par"
	"emvia/internal/sparse"
	"emvia/internal/telemetry"
)

// SupernodalCholesky is a blocked sparse LLᵀ factorization P·A·Pᵀ = L·Lᵀ for
// large SPD systems. It shares the scalar SparseCholesky's contract — fixed
// sparsity pattern, allocation-free refactorization and triangular solves,
// Davis–Hager edge up/downdates — but stores L in supernodal panels and runs
// the numeric factorization as parallel supernode tasks over the elimination
// tree.
//
// A supernode is a maximal run of consecutive columns with identical
// below-diagonal structure (detected from the etree: parent[j] == j+1 and
// colcount[j] == colcount[j+1]+1, width-capped at snMaxWidth). Its columns
// are stored column-major in one dense panel of lr rows, lr = |pattern of the
// first column|; entry (row position ri, column jj) lives at jj·lr+ri, and
// positions ri < jj (the strictly-upper triangle of the diagonal block) are
// dead. Left-looking supernode-supernode updates then run as dense
// rank-w_d kernels over contiguous memory instead of scalar scatter chains,
// which is where both the serial speedup and the parallel scalability come
// from.
//
// Determinism: each target column accumulates its updates in a fixed order —
// source supernodes ascending (the static update lists are built sorted),
// source columns ascending, rows ascending — and every supernode/column is
// computed by exactly one worker per dispatch. The schedule only changes
// which worker runs a task, never the arithmetic inside one, so the factor
// is bit-identical at any worker count, including the serial path.
type SupernodalCholesky struct {
	n          int
	perm, invp []int
	parent     []int // column elimination tree; -1 = root

	pool *par.Pool // nil = serial

	// Supernode partition. Column j belongs to supernode snOf[j]; supernode s
	// covers columns [snCol[s], snCol[s+1]).
	nsup  int
	snCol []int32
	snOf  []int32

	// Row structure: snRows[snRptr[s]:snRptr[s+1]] lists the permuted row ids
	// of supernode s's panel, ascending; the first width(s) entries are the
	// supernode's own columns.
	snRows []int32
	snRptr []int

	// Panel values: the panel of supernode s is px[pptr[s] : pptr[s]+w·lr].
	px   []float64
	pptr []int

	// A-value scatter, grouped by target column (permuted): for t in
	// [asColPtr[j], asColPtr[j+1]), row position asRI[t] of column j's panel
	// slice loads a.ValueAt(asSlot[t]).
	asColPtr []int
	asSlot   []int32
	asRI     []int32

	// Static update lists, grouped by target supernode and sorted by source
	// ascending: entry t says rows [updRS[t], updRS[t]+updNC[t]) of source
	// supernode updSrc[t]'s row list land on target columns.
	uptr   []int
	updSrc []int32
	updRS  []int32
	updNC  []int32

	// Level schedule: supernodes of level l are
	// levelList[levelPtr[l]:levelPtr[l+1]], each level depending only on
	// completed earlier levels. lvlWork[l] estimates the level's panel work
	// for the parallel-dispatch threshold.
	levelPtr  []int
	levelList []int32
	lvlWork   []int

	// Column chunks of the parallel prep phase, grouped by level: chunk t
	// covers columns [chLo[t], chHi[t]) of supernode chSn[t]; level l owns
	// chunks [lvlChPtr[l], lvlChPtr[l+1]). Chunking the prep by column gives
	// the update aggregation — the dominant cost — worker-count-independent
	// load balance even when a level holds a single fat separator supernode.
	lvlChPtr []int
	chSn     []int32
	chLo     []int32
	chHi     []int32

	// Per-worker scratch (indexed by pool slot): relmap maps permuted row id
	// to panel row position of the supernode relFor[slot] (-1 entries
	// elsewhere); ybuf accumulates one update column.
	relmap [][]int32
	relFor []int32
	ybuf   [][]float64

	wbuf []float64 // up/downdate workspace; all-zero between calls
	z    []float64 // permuted solve vector
	zb   []float64 // batch solve scratch, grown on demand
	errs []error   // per-supernode factorization error, nil between calls

	// Pre-created dispatch closures (allocation-free refactors) and their
	// per-dispatch arguments.
	prepFn    func(b, slot int)
	factorFn  func(b, slot int)
	curList   []int32
	curChBase int

	nnzL   int // true entry count of L (dead panel corners excluded)
	maxLr  int
	amat   *sparse.CSR // matrix of the dispatch in flight
	failed int32       // any-task-failed flag of the refactor in flight (atomic)
}

// snMaxWidth caps supernode width: wider panels waste dead diagonal-block
// corners and coarsen the parallel task grain faster than the dense-kernel
// efficiency improves.
const snMaxWidth = 32

// snPrepChunk is the column granularity of the parallel prep phase.
const snPrepChunk = 4

// snAmalgSlack is the absolute stored-zero budget below which an
// amalgamation is always accepted (whatever the ratio); beyond it the waste
// must stay under a third of the panel.
const snAmalgSlack = 24

// snLevelParMinWork is the minimum total flop estimate of a level before its
// dispatch across workers beats running it inline: leaf levels of the
// elimination tree hold thousands of near-empty supernodes whose combined
// work is below one dispatch round-trip.
const snLevelParMinWork = 32768

// NewSupernodalCholeskyFromCSR orders a with AutoOrder (AMD below NDMinNodes,
// nested dissection above), runs the symbolic analysis and factors the
// matrix on pool (nil = serial). It returns ErrNotSPD when a pivot is
// non-positive.
func NewSupernodalCholeskyFromCSR(a *sparse.CSR, pool *par.Pool) (*SupernodalCholesky, error) {
	return NewSupernodalCholeskyOrdered(a, AutoOrder(a), pool)
}

// NewSupernodalCholeskyOrdered is NewSupernodalCholeskyFromCSR with a
// caller-chosen elimination order.
func NewSupernodalCholeskyOrdered(a *sparse.CSR, perm []int, pool *par.Pool) (*SupernodalCholesky, error) {
	n, m := a.Dims()
	if n != m {
		return nil, fmt.Errorf("solver: supernodal factor needs a square matrix, got %d×%d", n, m)
	}
	if len(perm) != n {
		return nil, fmt.Errorf("solver: permutation length %d, want %d", len(perm), n)
	}
	c := &SupernodalCholesky{n: n, perm: append([]int(nil), perm...), pool: pool}
	c.invp = make([]int, n)
	for i := range c.invp {
		c.invp[i] = -1
	}
	for k, p := range perm {
		if p < 0 || p >= n || c.invp[p] >= 0 {
			return nil, fmt.Errorf("solver: perm is not a permutation of 0..%d", n-1)
		}
		c.invp[p] = k
	}
	c.symbolic(a)
	if err := c.RefactorFromCSR(a); err != nil {
		return nil, err
	}
	return c, nil
}

// symbolic runs the scalar symbolic analysis (etree, row patterns, column
// structure), partitions columns into supernodes, and precomputes the static
// structures of the numeric phases: panel layouts, A-scatter targets, update
// lists and the level schedule.
func (c *SupernodalCholesky) symbolic(a *sparse.CSR) {
	n := c.n

	// Upper triangle of the permuted pattern plus raw A-scatter tuples
	// (permuted row, permuted col, CSR slot), exactly as the scalar path.
	upPtr := make([]int, n+1)
	var upCols []int32
	type atup struct{ k, j, slot int32 }
	var atups []atup
	for k := 0; k < n; k++ {
		orig := c.perm[k]
		cols, _ := a.Row(orig)
		if len(cols) > 0 {
			base := a.SlotIndex(orig, cols[0])
			for t, col := range cols {
				j := c.invp[col]
				if j > k {
					continue
				}
				atups = append(atups, atup{int32(k), int32(j), int32(base + t)})
				if j < k {
					upCols = append(upCols, int32(j))
				}
			}
		}
		upPtr[k+1] = len(upCols)
	}

	// Elimination tree (Liu's algorithm with path compression).
	c.parent = make([]int, n)
	anc := make([]int, n)
	for k := 0; k < n; k++ {
		c.parent[k] = -1
		anc[k] = -1
		for t := upPtr[k]; t < upPtr[k+1]; t++ {
			for i := int(upCols[t]); i != -1 && i < k; {
				next := anc[i]
				anc[i] = k
				if next == -1 {
					c.parent[i] = k
				}
				i = next
			}
		}
	}

	// Row patterns via ereach, and per-column counts.
	rowptr := make([]int, n+1)
	var srow []int32
	colcount := make([]int, n)
	stamp := make([]int, n)
	for i := range stamp {
		stamp[i] = -1
	}
	scratch := make([]int, 0, 64)
	for k := 0; k < n; k++ {
		stamp[k] = k
		scratch = scratch[:0]
		for t := upPtr[k]; t < upPtr[k+1]; t++ {
			for i := int(upCols[t]); stamp[i] != k; i = c.parent[i] {
				stamp[i] = k
				scratch = append(scratch, i)
			}
		}
		sort.Ints(scratch)
		for _, j := range scratch {
			srow = append(srow, int32(j))
			colcount[j]++
		}
		rowptr[k+1] = len(srow)
	}

	// Supernode partition: fundamental supernodes from the etree chain rule,
	// width-capped. On mesh orderings fundamental supernodes are almost all
	// single columns, so a relaxed amalgamation pass follows.
	c.snOf = make([]int32, n)
	fund := []int32{0}
	for j := 1; j < n; j++ {
		first := int(fund[len(fund)-1])
		mergeable := c.parent[j-1] == j && colcount[j-1] == colcount[j]+1 && j-first < snMaxWidth
		if !mergeable {
			fund = append(fund, int32(j))
		}
	}
	fund = append(fund, int32(n))

	// Relaxed amalgamation: absorb a supernode into its etree-chain successor
	// when the explicitly-stored zeros this adds stay a small fraction of the
	// panel. The merged panel's rows are its own columns followed by the true
	// tail pattern of its LAST column (every member column's pattern nests
	// inside that by the chain inclusion), so member columns may store exact
	// zeros; those cost bounded extra flops and buy the wide dense panels the
	// blocked kernels need. With j1 the last column of a group, the group's
	// tail length is colcount[j1] and its stored row count is width +
	// colcount[j1].
	truenz := make([]int, len(fund)) // true nnz per fundamental supernode
	for fi := 0; fi+1 < len(fund); fi++ {
		for j := fund[fi]; j < fund[fi+1]; j++ {
			truenz[fi] += 1 + colcount[j]
		}
	}
	c.snCol = append(c.snCol[:0], 0)
	curW := int(fund[1])
	curNZ := truenz[0]
	for fi := 1; fi+1 < len(fund); fi++ {
		jf := int(fund[fi])
		wf := int(fund[fi+1]) - jf
		tf := colcount[int(fund[fi+1])-1]
		chainOK := c.parent[jf-1] == jf
		wNew := curW + wf
		lrNew := wNew + tf
		stored := wNew*lrNew - wNew*(wNew-1)/2
		nzNew := curNZ + truenz[fi]
		waste := stored - nzNew
		if chainOK && wNew <= snMaxWidth && (waste <= snAmalgSlack || waste*3 <= stored) {
			curW, curNZ = wNew, nzNew
			continue
		}
		c.snCol = append(c.snCol, int32(jf))
		curW, curNZ = wf, truenz[fi]
	}
	c.nsup = len(c.snCol)
	c.snCol = append(c.snCol, int32(n))
	for s := 0; s < c.nsup; s++ {
		for j := c.snCol[s]; j < c.snCol[s+1]; j++ {
			c.snOf[j] = int32(s)
		}
	}

	// Column structure of L (transient): diagonal-first CSC, used to read off
	// each supernode's row list from its first column.
	colptr := make([]int, n+1)
	for j := 0; j < n; j++ {
		colptr[j+1] = colptr[j] + 1 + colcount[j]
	}
	rowind := make([]int32, colptr[n])
	cpos := make([]int, n)
	for j := 0; j < n; j++ {
		rowind[colptr[j]] = int32(j)
		cpos[j] = colptr[j] + 1
	}
	for k := 0; k < n; k++ {
		for t := rowptr[k]; t < rowptr[k+1]; t++ {
			j := srow[t]
			rowind[cpos[j]] = int32(k)
			cpos[j]++
		}
	}

	// Panel layouts: the row list of a (possibly amalgamated) supernode is its
	// own columns followed by the true tail pattern of its last column.
	c.snRptr = make([]int, c.nsup+1)
	c.pptr = make([]int, c.nsup+1)
	c.nnzL = 0
	c.maxLr = 0
	for s := 0; s < c.nsup; s++ {
		j0 := int(c.snCol[s])
		w := int(c.snCol[s+1]) - j0
		lr := w + colcount[j0+w-1]
		c.snRptr[s+1] = c.snRptr[s] + lr
		c.pptr[s+1] = c.pptr[s] + w*lr
		c.nnzL += w*lr - w*(w-1)/2
		if lr > c.maxLr {
			c.maxLr = lr
		}
	}
	c.snRows = make([]int32, c.snRptr[c.nsup])
	for s := 0; s < c.nsup; s++ {
		j0 := int(c.snCol[s])
		w := int(c.snCol[s+1]) - j0
		j1 := j0 + w - 1
		base := c.snRptr[s]
		for i := 0; i < w; i++ {
			c.snRows[base+i] = int32(j0 + i)
		}
		copy(c.snRows[base+w:c.snRptr[s+1]], rowind[colptr[j1]+1:colptr[j1+1]])
	}
	c.px = make([]float64, c.pptr[c.nsup])

	// A-scatter grouped by target column. Row position of permuted row k
	// within the target panel comes from a binary search of the (ascending)
	// row list.
	c.asColPtr = make([]int, n+1)
	for _, t := range atups {
		c.asColPtr[t.j+1]++
	}
	for j := 0; j < n; j++ {
		c.asColPtr[j+1] += c.asColPtr[j]
	}
	c.asSlot = make([]int32, len(atups))
	c.asRI = make([]int32, len(atups))
	fillpos := make([]int, n)
	copy(fillpos, c.asColPtr[:n])
	for _, t := range atups {
		s := c.snOf[t.j]
		rows := c.snRows[c.snRptr[s]:c.snRptr[s+1]]
		// Inline lower-bound search (sort.Search's closure would allocate
		// once per nonzero of A).
		lo, hi := 0, len(rows)
		for lo < hi {
			mid := (lo + hi) / 2
			if rows[mid] < t.k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		ri := lo
		p := fillpos[t.j]
		c.asSlot[p] = t.slot
		c.asRI[p] = int32(ri)
		fillpos[t.j] = p + 1
	}

	// Static update lists: for each source supernode d, group the tail of its
	// row list (positions ≥ width) into runs per target supernode. Iterating
	// d ascending keeps every target's list sorted by source — the fixed
	// update order the determinism argument relies on.
	updCount := make([]int, c.nsup+1)
	type updTup struct{ tgt, src, rs, nc int32 }
	var utups []updTup
	for d := 0; d < c.nsup; d++ {
		w := int(c.snCol[d+1] - c.snCol[d])
		rows := c.snRows[c.snRptr[d]:c.snRptr[d+1]]
		for u := w; u < len(rows); {
			tgt := c.snOf[rows[u]]
			v := u
			for v < len(rows) && c.snOf[rows[v]] == tgt {
				v++
			}
			utups = append(utups, updTup{tgt, int32(d), int32(u), int32(v - u)})
			updCount[tgt+1]++
			u = v
		}
	}
	c.uptr = make([]int, c.nsup+1)
	for s := 0; s < c.nsup; s++ {
		c.uptr[s+1] = c.uptr[s] + updCount[s+1]
	}
	c.updSrc = make([]int32, len(utups))
	c.updRS = make([]int32, len(utups))
	c.updNC = make([]int32, len(utups))
	copy(fillpos, c.uptr[:c.nsup])
	for _, t := range utups {
		p := fillpos[t.tgt]
		c.updSrc[p] = t.src
		c.updRS[p] = t.rs
		c.updNC[p] = t.nc
		fillpos[t.tgt] = p + 1
	}

	// Level schedule over the supernodal etree: level(s) = 1 + max level of
	// its children; children always have smaller indices, so one ascending
	// pass suffices.
	level := make([]int, c.nsup)
	maxLevel := 0
	for s := 0; s < c.nsup; s++ {
		last := int(c.snCol[s+1]) - 1
		if p := c.parent[last]; p >= 0 {
			sp := int(c.snOf[p])
			if level[s]+1 > level[sp] {
				level[sp] = level[s] + 1
			}
		}
		if level[s] > maxLevel {
			maxLevel = level[s]
		}
	}
	c.levelPtr = make([]int, maxLevel+2)
	for s := 0; s < c.nsup; s++ {
		c.levelPtr[level[s]+1]++
	}
	for l := 0; l < maxLevel+1; l++ {
		c.levelPtr[l+1] += c.levelPtr[l]
	}
	c.levelList = make([]int32, c.nsup)
	lpos := make([]int, maxLevel+1)
	copy(lpos, c.levelPtr[:maxLevel+1])
	for s := 0; s < c.nsup; s++ {
		c.levelList[lpos[level[s]]] = int32(s)
		lpos[level[s]]++
	}

	// Per-level work estimates and prep-phase column chunks.
	c.lvlWork = make([]int, maxLevel+1)
	c.lvlChPtr = make([]int, maxLevel+2)
	for l := 0; l <= maxLevel; l++ {
		nch := 0
		for _, s := range c.levelList[c.levelPtr[l]:c.levelPtr[l+1]] {
			c.lvlWork[l] += c.taskWork(s)
			w := int(c.snCol[s+1] - c.snCol[s])
			nch += (w + snPrepChunk - 1) / snPrepChunk
		}
		c.lvlChPtr[l+1] = c.lvlChPtr[l] + nch
	}
	nch := c.lvlChPtr[maxLevel+1]
	c.chSn = make([]int32, nch)
	c.chLo = make([]int32, nch)
	c.chHi = make([]int32, nch)
	pos := 0
	for l := 0; l <= maxLevel; l++ {
		for _, s := range c.levelList[c.levelPtr[l]:c.levelPtr[l+1]] {
			w := int(c.snCol[s+1] - c.snCol[s])
			for lo := 0; lo < w; lo += snPrepChunk {
				hi := lo + snPrepChunk
				if hi > w {
					hi = w
				}
				c.chSn[pos] = s
				c.chLo[pos] = int32(lo)
				c.chHi[pos] = int32(hi)
				pos++
			}
		}
	}

	// Workspaces and dispatch closures.
	c.wbuf = make([]float64, n)
	c.z = make([]float64, n)
	c.errs = make([]error, c.nsup)
	c.initScratch()
}

// initScratch sizes the per-worker scratch for the current pool and creates
// the dispatch closures once.
func (c *SupernodalCholesky) initScratch() {
	workers := c.pool.Workers()
	c.relmap = make([][]int32, workers)
	c.relFor = make([]int32, workers)
	c.ybuf = make([][]float64, workers)
	for w := 0; w < workers; w++ {
		rel := make([]int32, c.n)
		for i := range rel {
			rel[i] = -1
		}
		c.relmap[w] = rel
		c.relFor[w] = -1
		c.ybuf[w] = make([]float64, c.maxLr)
	}
	c.prepFn = func(b, slot int) {
		t := c.curChBase + b
		c.prepCols(c.chSn[t], int(c.chLo[t]), int(c.chHi[t]), slot)
	}
	c.factorFn = func(b, slot int) {
		s := c.curList[b]
		if err := c.denseFactor(s); err != nil {
			c.errs[s] = err
			atomic.StoreInt32(&c.failed, 1)
		}
	}
}

// N returns the system dimension.
func (c *SupernodalCholesky) N() int { return c.n }

// NNZ returns the entry count of L, diagonal included (dead panel corners
// excluded).
func (c *SupernodalCholesky) NNZ() int { return c.nnzL }

// Perm returns the elimination order. The slice is internal; callers must
// not modify it.
func (c *SupernodalCholesky) Perm() []int { return c.perm }

// Supernodes returns the number of supernodes of the partition.
func (c *SupernodalCholesky) Supernodes() int { return c.nsup }

// bindRel points slot's row-relocation map at supernode s, clearing the
// previous binding lazily.
func (c *SupernodalCholesky) bindRel(s int32, slot int) []int32 {
	rel := c.relmap[slot]
	if c.relFor[slot] == s {
		return rel
	}
	if old := c.relFor[slot]; old >= 0 {
		for _, r := range c.snRows[c.snRptr[old]:c.snRptr[old+1]] {
			rel[r] = -1
		}
	}
	for i, r := range c.snRows[c.snRptr[s]:c.snRptr[s+1]] {
		rel[r] = int32(i)
	}
	c.relFor[slot] = s
	return rel
}

// clearRel restores the all-minus-one invariant of every slot's map.
func (c *SupernodalCholesky) clearRel() {
	for slot, old := range c.relFor {
		if old >= 0 {
			rel := c.relmap[slot]
			for _, r := range c.snRows[c.snRptr[old]:c.snRptr[old+1]] {
				rel[r] = -1
			}
			c.relFor[slot] = -1
		}
	}
}

// prepCols computes columns [lo, hi) of supernode s up to (not including)
// the dense diagonal-block factorization: zero, scatter A, apply the static
// update list. Columns are independent, so any partition of [0, w) across
// workers yields identical results.
func (c *SupernodalCholesky) prepCols(s int32, lo, hi, slot int) {
	po := c.pptr[s]
	rows := c.snRows[c.snRptr[s]:c.snRptr[s+1]]
	lr := len(rows)
	px := c.px

	a := c.amat
	c0 := int(c.snCol[s])
	for jj := lo; jj < hi; jj++ {
		col := px[po+jj*lr+jj : po+(jj+1)*lr]
		for u := range col {
			col[u] = 0
		}
		base := po + jj*lr
		for t := c.asColPtr[c0+jj]; t < c.asColPtr[c0+jj+1]; t++ {
			px[base+int(c.asRI[t])] = a.ValueAt(int(c.asSlot[t]))
		}
	}

	rel := c.bindRel(s, slot)
	y := c.ybuf[slot]
	for t := c.uptr[s]; t < c.uptr[s+1]; t++ {
		d := c.updSrc[t]
		rs := int(c.updRS[t])
		nc := int(c.updNC[t])
		rowsD := c.snRows[c.snRptr[d]:c.snRptr[d+1]]
		ld := len(rowsD)
		wd := int(c.snCol[d+1] - c.snCol[d])
		pod := c.pptr[d]
		for q := 0; q < nc; q++ {
			jj := int(rowsD[rs+q]) - c0
			if jj < lo || jj >= hi {
				continue
			}
			// y[u] = Σ_k L_d[rs+q+u,k]·L_d[rs+q,k], k over d's columns
			// ascending. The hoisted slices start at row rs+q, so src[0] is
			// the multiplier itself. Four source columns per pass quarters
			// the y-store traffic; the in-statement adds associate left to
			// right, so the sums match the one-column-at-a-time order bit for
			// bit and the unroll factor never changes the result.
			m := ld - rs - q
			yy := y[:m]
			cb := pod + rs + q
			tb := po + jj*lr
			tails := rowsD[rs+q:]
			// All but the last 1–4 source columns accumulate into y four at a
			// time; the final block fuses with the scatter-subtract, so
			// narrow sources — the common case — never round-trip through y.
			// The in-statement adds associate left to right, matching the
			// one-column-at-a-time order, and the scatter hits every tail row
			// of d: they all lie in s's row list by the fill-path lemma.
			r := wd & 3
			if r == 0 {
				r = 4
			}
			kEnd := wd - r
			for k := 0; k < kEnd; k += 4 {
				cb0 := cb + k*ld
				s0 := px[cb0 : cb0+m]
				s1 := px[cb0+ld : cb0+ld+m]
				s2 := px[cb0+2*ld : cb0+2*ld+m]
				s3 := px[cb0+3*ld : cb0+3*ld+m]
				l0, l1, l2, l3 := s0[0], s1[0], s2[0], s3[0]
				for u := range yy {
					yy[u] += s0[u]*l0 + s1[u]*l1 + s2[u]*l2 + s3[u]*l3
				}
			}
			cb0 := cb + kEnd*ld
			switch r {
			case 1:
				s0 := px[cb0 : cb0+m]
				l0 := s0[0]
				if kEnd == 0 {
					for u, t := range tails {
						px[tb+int(rel[t])] -= s0[u] * l0
					}
				} else {
					for u, t := range tails {
						px[tb+int(rel[t])] -= yy[u] + s0[u]*l0
						yy[u] = 0
					}
				}
			case 2:
				s0 := px[cb0 : cb0+m]
				s1 := px[cb0+ld : cb0+ld+m]
				l0, l1 := s0[0], s1[0]
				for u, t := range tails {
					px[tb+int(rel[t])] -= yy[u] + s0[u]*l0 + s1[u]*l1
					yy[u] = 0
				}
			case 3:
				s0 := px[cb0 : cb0+m]
				s1 := px[cb0+ld : cb0+ld+m]
				s2 := px[cb0+2*ld : cb0+2*ld+m]
				l0, l1, l2 := s0[0], s1[0], s2[0]
				for u, t := range tails {
					px[tb+int(rel[t])] -= yy[u] + s0[u]*l0 + s1[u]*l1 + s2[u]*l2
					yy[u] = 0
				}
			default:
				s0 := px[cb0 : cb0+m]
				s1 := px[cb0+ld : cb0+ld+m]
				s2 := px[cb0+2*ld : cb0+2*ld+m]
				s3 := px[cb0+3*ld : cb0+3*ld+m]
				l0, l1, l2, l3 := s0[0], s1[0], s2[0], s3[0]
				for u, t := range tails {
					px[tb+int(rel[t])] -= yy[u] + s0[u]*l0 + s1[u]*l1 + s2[u]*l2 + s3[u]*l3
					yy[u] = 0
				}
			}
		}
	}
}

// denseFactor runs the dense Cholesky of supernode s's diagonal block with
// the triangular solve of its below-block, right-looking across the panel in
// fixed column order.
func (c *SupernodalCholesky) denseFactor(s int32) error {
	po := c.pptr[s]
	lr := c.snRptr[s+1] - c.snRptr[s]
	w := int(c.snCol[s+1] - c.snCol[s])
	px := c.px
	for jj := 0; jj < w; jj++ {
		col := px[po+jj*lr+jj : po+(jj+1)*lr] // col[0] is the diagonal
		d := col[0]
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w: supernodal pivot %g at permuted column %d", ErrNotSPD, d, int(c.snCol[s])+jj)
		}
		piv := math.Sqrt(d)
		inv := 1 / piv
		col[0] = piv
		// One division per column, then multiplies: an FP divide costs an
		// order of magnitude more than a multiply and this loop runs once per
		// stored entry of L.
		for u := 1; u < len(col); u++ {
			col[u] *= inv
		}
		for kk := jj + 1; kk < w; kk++ {
			ljk := col[kk-jj]
			if ljk == 0 {
				continue
			}
			tcol := px[po+kk*lr+kk : po+(kk+1)*lr]
			src := col[kk-jj:]
			for u := range tcol {
				tcol[u] -= src[u] * ljk
			}
		}
	}
	return nil
}

// RefactorFromCSR refactors numerically in place from a (same pattern as the
// symbolic analysis), scheduling supernode tasks level by level across the
// pool. It returns ErrNotSPD when a pivot is non-positive; the factor is
// then garbage and must be refactored before further use.
func (c *SupernodalCholesky) RefactorFromCSR(a *sparse.CSR) error {
	n, m := a.Dims()
	if n != c.n || m != c.n {
		return fmt.Errorf("solver: Refactor dimensions %d×%d, want %d×%d", n, m, c.n, c.n)
	}
	recordSparse(telemetry.SparseFactorizations)
	c.amat = a
	atomic.StoreInt32(&c.failed, 0)
	defer func() {
		c.amat = nil
		c.clearRel()
	}()
	workers := c.pool.Workers()
	for l := 0; l+1 < len(c.levelPtr); l++ {
		tasks := c.levelList[c.levelPtr[l]:c.levelPtr[l+1]]
		if workers > 1 && c.lvlWork[l] >= snLevelParMinWork {
			// Phase one: column-chunked prep (zero + A-scatter + update
			// aggregation), the dominant cost, load-balanced independently of
			// how columns group into supernodes. Phase two: per-supernode
			// dense factorization. Updates only flow from strictly earlier
			// levels, so the phases never race.
			c.curChBase = c.lvlChPtr[l]
			c.pool.RunW(c.lvlChPtr[l+1]-c.lvlChPtr[l], c.prepFn)
			c.curList = tasks
			c.pool.RunW(len(tasks), c.factorFn)
		} else {
			for _, s := range tasks {
				w := int(c.snCol[s+1] - c.snCol[s])
				c.prepCols(s, 0, w, 0)
				if err := c.denseFactor(s); err != nil {
					c.errs[s] = err
					atomic.StoreInt32(&c.failed, 1)
				}
			}
		}
		if atomic.LoadInt32(&c.failed) != 0 {
			// Deterministic error selection: the lowest-index failing
			// supernode of the earliest failing level, regardless of which
			// worker hit it first.
			var first error
			for _, s := range tasks {
				if err := c.errs[s]; err != nil {
					if first == nil {
						first = err
					}
					c.errs[s] = nil
				}
			}
			return first
		}
	}
	return nil
}

// taskWork estimates the flops spent on one supernode — the updates
// aggregated into its panel plus its dense factorization, both of which scale
// like width × rows² — for the level-dispatch threshold.
func (c *SupernodalCholesky) taskWork(s int32) int {
	w := int(c.snCol[s+1] - c.snCol[s])
	lr := c.snRptr[s+1] - c.snRptr[s]
	return w * lr * lr
}

// SolveInto overwrites x with A⁻¹·b without allocating. Both slices must
// have the system dimension; they may alias.
func (c *SupernodalCholesky) SolveInto(x, b []float64) error {
	if len(b) != c.n || len(x) != c.n {
		return fmt.Errorf("solver: SolveInto lengths %d/%d do not match dimension %d", len(x), len(b), c.n)
	}
	recordSparse(telemetry.SparseSolves)
	n, px, z := c.n, c.px, c.z
	for k := 0; k < n; k++ {
		z[k] = b[c.perm[k]]
	}
	for s := 0; s < c.nsup; s++ { // forward: L·z' = P·b
		po := c.pptr[s]
		rows := c.snRows[c.snRptr[s]:c.snRptr[s+1]]
		lr := len(rows)
		w := int(c.snCol[s+1] - c.snCol[s])
		c0 := int(c.snCol[s])
		for jj := 0; jj < w; jj++ {
			base := po + jj*lr
			zj := z[c0+jj] / px[base+jj]
			z[c0+jj] = zj
			for u := jj + 1; u < lr; u++ {
				z[rows[u]] -= px[base+u] * zj
			}
		}
	}
	for s := c.nsup - 1; s >= 0; s-- { // backward: Lᵀ·z = z'
		po := c.pptr[s]
		rows := c.snRows[c.snRptr[s]:c.snRptr[s+1]]
		lr := len(rows)
		w := int(c.snCol[s+1] - c.snCol[s])
		c0 := int(c.snCol[s])
		for jj := w - 1; jj >= 0; jj-- {
			base := po + jj*lr
			sum := z[c0+jj]
			for u := jj + 1; u < lr; u++ {
				sum -= px[base+u] * z[rows[u]]
			}
			z[c0+jj] = sum / px[base+jj]
		}
	}
	for k := 0; k < n; k++ {
		x[c.perm[k]] = z[k]
	}
	return nil
}

// SolveBatchInto solves nrhs systems in one blocked pass: b and x hold nrhs
// stacked vectors (vector k occupies [k·n, (k+1)·n)). Internally the panel
// is transposed to row-major so each column operation streams over the nrhs
// values of one row contiguously; the per-vector arithmetic is identical to
// nrhs separate SolveInto calls, so batched and looped solves agree bit for
// bit. Groups of eight or more vectors go through a fixed 16-lane kernel
// (solveBatch16) whose unrolled inner loops dodge per-element bounds checks;
// smaller groups and the tail use the variable-width pass.
func (c *SupernodalCholesky) SolveBatchInto(x, b []float64, nrhs int) error {
	if nrhs <= 0 {
		return fmt.Errorf("solver: SolveBatchInto nrhs %d", nrhs)
	}
	if len(b) != c.n*nrhs || len(x) != c.n*nrhs {
		return fmt.Errorf("solver: SolveBatchInto lengths %d/%d, want %d", len(x), len(b), c.n*nrhs)
	}
	recordSparse(telemetry.SparseSolves)
	for g0 := 0; g0 < nrhs; {
		m := nrhs - g0
		switch {
		case m >= 8:
			if m > 16 {
				m = 16
			}
			c.solveBatch16(x, b, g0, m)
		default:
			c.solveBatchVar(x, b, g0, m)
		}
		g0 += m
	}
	return nil
}

// solveBatch16 runs the row-major triangular passes over lanes
// [g0, g0+m) of the stacked right-hand sides, m ≤ 16, padding the scratch to
// a constant 16 lanes. Lanes never mix, so the pad lanes (zero-filled at
// gather) change nothing, and the array-pointer views let the 16-wide inner
// loops run without bounds checks.
func (c *SupernodalCholesky) solveBatch16(x, b []float64, g0, m int) {
	const W = 16
	n, px := c.n, c.px
	if cap(c.zb) < n*W {
		c.zb = make([]float64, n*W)
	}
	zb := c.zb[:n*W]
	for k := 0; k < n; k++ {
		p := c.perm[k]
		row := (*[W]float64)(zb[k*W:])
		for v := 0; v < m; v++ {
			row[v] = b[(g0+v)*n+p]
		}
		for v := m; v < W; v++ {
			row[v] = 0
		}
	}
	for s := 0; s < c.nsup; s++ { // forward
		po := c.pptr[s]
		rows := c.snRows[c.snRptr[s]:c.snRptr[s+1]]
		lr := len(rows)
		w := int(c.snCol[s+1] - c.snCol[s])
		c0 := int(c.snCol[s])
		// Diagonal block: divide each pivot lane and propagate it to the
		// remaining rows of the supernode, column by column.
		for jj := 0; jj < w; jj++ {
			base := po + jj*lr
			inv := px[base+jj]
			zr := (*[W]float64)(zb[(c0+jj)*W:])
			for v := 0; v < W; v++ {
				zr[v] /= inv
			}
			// Copy the pivot lanes into a local block: the target rows tr
			// alias zb, so reading through zr would force a reload per u.
			zl := *zr
			for u := jj + 1; u < w; u++ {
				l := px[base+u]
				if l == 0 {
					continue // amalgamation padding; x − 0·z = x bit for bit
				}
				tr := (*[W]float64)(zb[int(rows[u])*W:])
				for v := 0; v < W; v++ {
					tr[v] -= l * zl[v]
				}
			}
		}
		// Rectangular block: apply all w finalized pivot lanes to each row
		// below the supernode with one load/store per row. Per element the
		// subtractions still run in jj-ascending order against fully
		// divided pivot lanes, exactly as in the column-at-a-time schedule,
		// so the result is bit-identical.
		for u := w; u < lr; u++ {
			tr := (*[W]float64)(zb[int(rows[u])*W:])
			acc := *tr
			for jj := 0; jj < w; jj++ {
				l := px[po+jj*lr+u]
				if l == 0 {
					continue
				}
				zr := (*[W]float64)(zb[(c0+jj)*W:])
				for v := 0; v < W; v++ {
					acc[v] -= l * zr[v]
				}
			}
			*tr = acc
		}
	}
	for s := c.nsup - 1; s >= 0; s-- { // backward
		po := c.pptr[s]
		rows := c.snRows[c.snRptr[s]:c.snRptr[s+1]]
		lr := len(rows)
		w := int(c.snCol[s+1] - c.snCol[s])
		c0 := int(c.snCol[s])
		for jj := w - 1; jj >= 0; jj-- {
			base := po + jj*lr
			zr := (*[W]float64)(zb[(c0+jj)*W:])
			// Accumulate into a local block in the same u-ascending order
			// (bit-identical) so the running value stays out of memory: zr
			// aliases zb, and updating through it re-loads and re-stores
			// all W lanes on every source row.
			acc := *zr
			for u := jj + 1; u < lr; u++ {
				l := px[base+u]
				if l == 0 {
					continue
				}
				sr := (*[W]float64)(zb[int(rows[u])*W:])
				for v := 0; v < W; v++ {
					acc[v] -= l * sr[v]
				}
			}
			inv := px[base+jj]
			for v := 0; v < W; v++ {
				acc[v] /= inv
			}
			*zr = acc
		}
	}
	for k := 0; k < n; k++ {
		p := c.perm[k]
		row := (*[W]float64)(zb[k*W:])
		for v := 0; v < m; v++ {
			x[(g0+v)*n+p] = row[v]
		}
	}
}

// solveBatchVar is the variable-width row-major pass for lanes [g0, g0+nrhs)
// of the stacked right-hand sides.
func (c *SupernodalCholesky) solveBatchVar(x, b []float64, g0, nrhs int) {
	n, px := c.n, c.px
	if cap(c.zb) < n*nrhs {
		c.zb = make([]float64, n*nrhs)
	}
	zb := c.zb[:n*nrhs]
	for k := 0; k < n; k++ {
		p := c.perm[k]
		row := zb[k*nrhs : (k+1)*nrhs]
		for v := 0; v < nrhs; v++ {
			row[v] = b[(g0+v)*n+p]
		}
	}
	for s := 0; s < c.nsup; s++ { // forward
		po := c.pptr[s]
		rows := c.snRows[c.snRptr[s]:c.snRptr[s+1]]
		lr := len(rows)
		w := int(c.snCol[s+1] - c.snCol[s])
		c0 := int(c.snCol[s])
		for jj := 0; jj < w; jj++ {
			base := po + jj*lr
			inv := px[base+jj]
			zr := zb[(c0+jj)*nrhs : (c0+jj+1)*nrhs]
			for v := range zr {
				zr[v] /= inv
			}
			for u := jj + 1; u < lr; u++ {
				l := px[base+u]
				tr := zb[int(rows[u])*nrhs : (int(rows[u])+1)*nrhs]
				for v := range tr {
					tr[v] -= l * zr[v]
				}
			}
		}
	}
	for s := c.nsup - 1; s >= 0; s-- { // backward
		po := c.pptr[s]
		rows := c.snRows[c.snRptr[s]:c.snRptr[s+1]]
		lr := len(rows)
		w := int(c.snCol[s+1] - c.snCol[s])
		c0 := int(c.snCol[s])
		for jj := w - 1; jj >= 0; jj-- {
			base := po + jj*lr
			zr := zb[(c0+jj)*nrhs : (c0+jj+1)*nrhs]
			for u := jj + 1; u < lr; u++ {
				l := px[base+u]
				sr := zb[int(rows[u])*nrhs : (int(rows[u])+1)*nrhs]
				for v := range zr {
					zr[v] -= l * sr[v]
				}
			}
			inv := px[base+jj]
			for v := range zr {
				zr[v] /= inv
			}
		}
	}
	for k := 0; k < n; k++ {
		p := c.perm[k]
		row := zb[k*nrhs : (k+1)*nrhs]
		for v := 0; v < nrhs; v++ {
			x[(g0+v)*n+p] = row[v]
		}
	}
}

// colBase locates permuted column j in its panel: values px[base+u] for u in
// [jj, lr) with row ids rows[u].
func (c *SupernodalCholesky) colBase(j int) (base, jj, lr int, rows []int32) {
	s := c.snOf[j]
	jj = j - int(c.snCol[s])
	rows = c.snRows[c.snRptr[s]:c.snRptr[s+1]]
	lr = len(rows)
	base = c.pptr[s] + jj*lr
	return base, jj, lr, rows
}

// UpdateEdge applies the rank-one update A → A + s²·u·uᵀ with u = e_fa − e_fb
// in original indices, under the same contract and dchud arithmetic as
// SparseCholesky.UpdateEdge: the touched columns are the etree path from the
// first nonzero of P·u, each rotated in ascending row order.
func (c *SupernodalCholesky) UpdateEdge(fa, fb int, s float64) {
	recordSparse(telemetry.SparseUpdates)
	wb, px := c.wbuf, c.px
	j := c.scatterEdge(fa, fb, s)
	for ; j != -1; j = c.parent[j] {
		alpha := wb[j]
		if alpha == 0 {
			continue
		}
		wb[j] = 0
		base, jj, lr, rows := c.colBase(j)
		ljj := px[base+jj]
		r := math.Hypot(ljj, alpha)
		cc := r / ljj
		ss := alpha / ljj
		px[base+jj] = r
		for u := jj + 1; u < lr; u++ {
			i := rows[u]
			lij := (px[base+u] + ss*wb[i]) / cc
			px[base+u] = lij
			wb[i] = cc*wb[i] - ss*lij
		}
	}
}

// DowndateEdge applies A → A − s²·u·uᵀ (dchdd arithmetic). It returns
// ErrNotSPD — leaving the factor partially modified, so the caller must
// refactor — when the downdated matrix is not positive definite.
func (c *SupernodalCholesky) DowndateEdge(fa, fb int, s float64) error {
	recordSparse(telemetry.SparseDowndates)
	wb, px := c.wbuf, c.px
	j := c.scatterEdge(fa, fb, s)
	for ; j != -1; j = c.parent[j] {
		alpha := wb[j]
		if alpha == 0 {
			continue
		}
		wb[j] = 0
		base, jj, lr, rows := c.colBase(j)
		ljj := px[base+jj]
		d := (ljj - alpha) * (ljj + alpha)
		if d <= 0 || math.IsNaN(d) {
			for i := j; i != -1; i = c.parent[i] {
				wb[i] = 0
			}
			return fmt.Errorf("%w: supernodal downdate pivot %g at permuted column %d", ErrNotSPD, d, j)
		}
		r := math.Sqrt(d)
		cc := r / ljj
		ss := alpha / ljj
		px[base+jj] = r
		for u := jj + 1; u < lr; u++ {
			i := rows[u]
			lij := (px[base+u] - ss*wb[i]) / cc
			px[base+u] = lij
			wb[i] = cc*wb[i] - ss*lij
		}
	}
	return nil
}

// scatterEdge loads ±s at the permuted positions of the edge terminals into
// the update workspace and returns the first elimination-tree path node, or
// -1 when both terminals are pinned.
func (c *SupernodalCholesky) scatterEdge(fa, fb int, s float64) int {
	j := c.n
	if fa >= 0 {
		pa := c.invp[fa]
		c.wbuf[pa] = s
		j = pa
	}
	if fb >= 0 {
		pb := c.invp[fb]
		c.wbuf[pb] = -s
		if pb < j {
			j = pb
		}
	}
	if j == c.n {
		return -1
	}
	return j
}

// Set overwrites the numeric factor with a copy of src's, which must share
// the symbolic structure (trial-reset restore by memcpy).
func (c *SupernodalCholesky) Set(src *SupernodalCholesky) error {
	if src.n != c.n || len(src.px) != len(c.px) {
		return fmt.Errorf("solver: Set structure mismatch (%d/%d entries)", len(src.px), len(c.px))
	}
	copy(c.px, src.px)
	return nil
}

// Clone returns a copy with private numeric state (panel values and
// workspaces) sharing the immutable symbolic structure and the pool.
func (c *SupernodalCholesky) Clone() *SupernodalCholesky {
	d := *c
	d.px = append([]float64(nil), c.px...)
	d.wbuf = make([]float64, c.n)
	d.z = make([]float64, c.n)
	d.zb = nil
	d.errs = make([]error, c.nsup)
	d.initScratch()
	return &d
}
