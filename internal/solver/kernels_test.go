package solver

import (
	"math/rand"
	"runtime"
	"testing"

	"emvia/internal/par"
)

// TestCGPoolBitIdentical checks the deterministic-kernel contract: the CG
// iterates, iteration count and residual are bit-identical for any worker
// count, because reductions use fixed-size blocks reduced in block order.
// The dimension spans several dotBlock/rowBlock/vecBlock boundaries plus a
// ragged tail.
func TestCGPoolBitIdentical(t *testing.T) {
	n := 3*dotBlock + 137
	a := laplacian1D(n)
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	pre, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	xRef, stRef, err := CG(a, b, Options{Tol: 1e-10, M: pre})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		x, st, err := CG(a, b, Options{Tol: 1e-10, M: pre, Pool: par.New(w)})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if st != stRef {
			t.Errorf("workers=%d stats %+v, serial %+v", w, st, stRef)
		}
		for i := range x {
			if x[i] != xRef[i] {
				t.Fatalf("workers=%d x[%d] = %g, serial %g (not bit-identical)", w, i, x[i], xRef[i])
			}
		}
	}
}

// TestCGPoolWithWorkspaceAndWarmStart covers the pooled kernels on the
// buffer-reusing warm-started path the Monte-Carlo loop exercises.
func TestCGPoolWithWorkspaceAndWarmStart(t *testing.T) {
	n := 2*dotBlock + 51
	a := laplacian1D(n)
	b := make([]float64, n)
	x0 := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range b {
		b[i] = rng.NormFloat64()
		x0[i] = 0.1 * rng.NormFloat64()
	}
	xRef, stRef, err := CG(a, b, Options{Tol: 1e-10, X0: x0})
	if err != nil {
		t.Fatal(err)
	}
	var ws Workspace
	pool := par.New(4)
	for rep := 0; rep < 3; rep++ {
		x, st, err := CG(a, b, Options{Tol: 1e-10, X0: x0, Work: &ws, Pool: pool})
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if st != stRef {
			t.Errorf("rep %d stats %+v, serial %+v", rep, st, stRef)
		}
		for i := range x {
			if x[i] != xRef[i] {
				t.Fatalf("rep %d x[%d] differs from serial", rep, i)
			}
		}
	}
}

// TestCGSerialPoolZeroAlloc pins down that a nil or one-wide pool takes the
// inline kernel branches: with a reserved workspace (including the partials
// scratch) the whole solve is allocation-free.
func TestCGSerialPoolZeroAlloc(t *testing.T) {
	n := dotBlock + 200
	a := laplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	var ws Workspace
	ws.Reserve(n)
	for name, pool := range map[string]*par.Pool{"nil": nil, "one-wide": par.New(1)} {
		allocs := testing.AllocsPerRun(10, func() {
			if _, _, err := CG(a, b, Options{Tol: 1e-10, M: jac, Work: &ws, Pool: pool}); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s pool: CG allocates %.1f objects per solve, want 0", name, allocs)
		}
	}
}

// TestWorkspaceReservePartials checks the partials scratch is sized with the
// rest of the workspace so pooled solves reuse it.
func TestWorkspaceReservePartials(t *testing.T) {
	var ws Workspace
	ws.Reserve(3*dotBlock + 1)
	if got, want := len(ws.partials), partialsLen(3*dotBlock+1); got != want {
		t.Errorf("partials len = %d, want %d", got, want)
	}
	if len(ws.partials) != 4 {
		t.Errorf("partials len = %d, want 4 for n = 3·dotBlock+1", len(ws.partials))
	}
	// Shrinking re-slices without reallocating.
	p0 := &ws.partials[0]
	ws.Reserve(dotBlock)
	if len(ws.partials) != 1 || &ws.partials[0] != p0 {
		t.Error("Reserve to a smaller n reallocated the partials scratch")
	}
}

// TestDotDetBlockOrderIndependent cross-checks dotDet against a plain serial
// accumulation only in the blocked order — the two agree exactly because the
// serial branch runs the identical block loop.
func TestDotDetBlockOrderIndependent(t *testing.T) {
	n := 2*dotBlock + 333
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	partials := make([]float64, partialsLen(n))
	serial := dotDet(a, b, partials, nil)
	for _, w := range []int{2, 5, 16} {
		if got := dotDet(a, b, partials, par.New(w)); got != serial {
			t.Errorf("workers=%d dotDet = %g, serial %g", w, got, serial)
		}
	}
}
