package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"emvia/internal/par"
	"emvia/internal/sparse"
)

// blockDiag stacks two square matrices into one block-diagonal system.
func blockDiag(a, b *sparse.CSR) *sparse.CSR {
	na, _ := a.Dims()
	nb, _ := b.Dims()
	n := na + nb
	tr := sparse.NewTriplet(n, n, a.NNZ()+b.NNZ())
	for i := 0; i < na; i++ {
		cols, vals := a.Row(i)
		for t, c := range cols {
			tr.Add(i, c, vals[t])
		}
	}
	for i := 0; i < nb; i++ {
		cols, vals := b.Row(i)
		for t, c := range cols {
			tr.Add(na+i, na+c, vals[t])
		}
	}
	return tr.ToCSR()
}

// TestSupernodalMatchesScalarAndDense cross-checks the three direct backends:
// supernodal and scalar-sparse factor the same ordered system, dense factors
// it without reordering; all three are exact, so the solutions must agree to
// rounding.
func TestSupernodalMatchesScalarAndDense(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	systems := []*sparse.CSR{
		gridLaplacian(15, 17),
		laplacian1D(64),
	}
	spd, _ := randomSPD(rng, 48)
	systems = append(systems, spd)
	for ci, a := range systems {
		n, _ := a.Dims()
		perm := AMDOrder(a)
		sup, err := NewSupernodalCholeskyOrdered(a, perm, nil)
		if err != nil {
			t.Fatalf("case %d: supernodal: %v", ci, err)
		}
		scal, err := NewSparseCholeskyOrdered(a, perm)
		if err != nil {
			t.Fatalf("case %d: scalar: %v", ci, err)
		}
		dense := make([]float64, n*n)
		for i := 0; i < n; i++ {
			cols, vals := a.Row(i)
			for t2, c := range cols {
				dense[i*n+c] = vals[t2]
			}
		}
		dc, err := NewDenseCholesky(dense, n)
		if err != nil {
			t.Fatalf("case %d: dense: %v", ci, err)
		}
		// Amalgamation stores some explicit zeros, so the supernodal panels
		// hold at least the scalar fill but only boundedly more.
		if sup.NNZ() < scal.NNZ() {
			t.Fatalf("case %d: supernodal fill %d below scalar fill %d under the same ordering", ci, sup.NNZ(), scal.NNZ())
		}
		// The absolute amalgamation slack dominates on near-band systems, so
		// the bound carries a constant term alongside the ratio.
		if sup.NNZ() > 2*scal.NNZ()+64 {
			t.Fatalf("case %d: supernodal fill %d more than 2x scalar fill %d", ci, sup.NNZ(), scal.NNZ())
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xs, xc, xd := make([]float64, n), make([]float64, n), make([]float64, n)
		if err := sup.SolveInto(xs, b); err != nil {
			t.Fatal(err)
		}
		if err := scal.SolveInto(xc, b); err != nil {
			t.Fatal(err)
		}
		if err := dc.SolveInto(xd, b); err != nil {
			t.Fatal(err)
		}
		scale := 0.0
		for i := range xd {
			if v := math.Abs(xd[i]); v > scale {
				scale = v
			}
		}
		for i := range xs {
			if d := math.Abs(xs[i]-xc[i]) / scale; d > 1e-10 {
				t.Fatalf("case %d: supernodal vs scalar differ at %d: %g vs %g", ci, i, xs[i], xc[i])
			}
			if d := math.Abs(xs[i]-xd[i]) / scale; d > 1e-10 {
				t.Fatalf("case %d: supernodal vs dense differ at %d: %g vs %g", ci, i, xs[i], xd[i])
			}
		}
	}
}

// TestSupernodalBatchSolveBitIdentical pins the batch-solve contract on every
// backend: SolveBatchInto must reproduce nrhs looped SolveInto calls bit for
// bit, not just to rounding.
func TestSupernodalBatchSolveBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := gridLaplacian(40, 41)
	n, _ := a.Dims()
	const nrhs = 7
	b := make([]float64, n*nrhs)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	sup, err := NewSupernodalCholeskyFromCSR(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	scal, err := NewSparseCholeskyFromCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	backends := []struct {
		name string
		f    SparseFactor
	}{{"supernodal", sup}, {"scalar", scal}}
	for _, bk := range backends {
		batch := make([]float64, n*nrhs)
		if err := bk.f.SolveBatchInto(batch, b, nrhs); err != nil {
			t.Fatalf("%s: %v", bk.name, err)
		}
		loop := make([]float64, n)
		for v := 0; v < nrhs; v++ {
			if err := bk.f.SolveInto(loop, b[v*n:(v+1)*n]); err != nil {
				t.Fatalf("%s: %v", bk.name, err)
			}
			for i := range loop {
				if math.Float64bits(batch[v*n+i]) != math.Float64bits(loop[i]) {
					t.Fatalf("%s: batch and looped solve differ at rhs %d entry %d: %x vs %x",
						bk.name, v, i, math.Float64bits(batch[v*n+i]), math.Float64bits(loop[i]))
				}
			}
		}
	}
}

// TestSupernodalWorkerDeterminism is the determinism matrix of ISSUE 6: on an
// nx200-class grid the factor values and solve results must be bit-identical
// at 1, 2, 4 and 8 workers.
func TestSupernodalWorkerDeterminism(t *testing.T) {
	a := gridLaplacian(200, 200)
	n, _ := a.Dims()
	perm := AutoOrder(a)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	var refPx []float64
	var refX []float64
	for _, workers := range []int{1, 2, 4, 8} {
		var pool *par.Pool
		if workers > 1 {
			pool = par.New(workers)
			defer pool.Close()
		}
		c, err := NewSupernodalCholeskyOrdered(a, perm, pool)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		x := make([]float64, n)
		if err := c.SolveInto(x, b); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if refPx == nil {
			refPx = append([]float64(nil), c.px...)
			refX = x
			continue
		}
		for i := range refPx {
			if math.Float64bits(c.px[i]) != math.Float64bits(refPx[i]) {
				t.Fatalf("workers=%d: factor differs from workers=1 at panel entry %d", workers, i)
			}
		}
		for i := range refX {
			if math.Float64bits(x[i]) != math.Float64bits(refX[i]) {
				t.Fatalf("workers=%d: solution differs from workers=1 at %d", workers, i)
			}
		}
	}
}

// TestSupernodalUpdateDowndateMatchesScalar drives identical edge up/downdate
// sequences through both sparse backends and checks they keep agreeing with a
// from-scratch refactorization.
func TestSupernodalUpdateDowndateMatchesScalar(t *testing.T) {
	a := gridLaplacian(12, 14)
	n, _ := a.Dims()
	perm := AMDOrder(a)
	sup, err := NewSupernodalCholeskyOrdered(a, perm, nil)
	if err != nil {
		t.Fatal(err)
	}
	scal, err := NewSparseCholeskyOrdered(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	edges := []struct {
		i, j int
		dg   float64
	}{
		{3, 4, 0.7},
		{20, 34, 1.3},
		{100, 101, 0.25},
		{3, 4, -0.5}, // partial downdate of the first edit
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64((i*7)%11) - 5
	}
	for ei, e := range edges {
		s := math.Sqrt(math.Abs(e.dg))
		if e.dg >= 0 {
			sup.UpdateEdge(e.i, e.j, s)
			scal.UpdateEdge(e.i, e.j, s)
		} else {
			if err := sup.DowndateEdge(e.i, e.j, s); err != nil {
				t.Fatalf("edit %d: supernodal downdate: %v", ei, err)
			}
			if err := scal.DowndateEdge(e.i, e.j, s); err != nil {
				t.Fatalf("edit %d: scalar downdate: %v", ei, err)
			}
		}
		applyEdgeDelta(a, e.i, e.j, e.dg)
		ref, err := NewSparseCholeskyOrdered(a, perm)
		if err != nil {
			t.Fatalf("edit %d: refactor: %v", ei, err)
		}
		xs, xc, xr := make([]float64, n), make([]float64, n), make([]float64, n)
		if err := sup.SolveInto(xs, b); err != nil {
			t.Fatal(err)
		}
		if err := scal.SolveInto(xc, b); err != nil {
			t.Fatal(err)
		}
		if err := ref.SolveInto(xr, b); err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if d := math.Abs(xs[i] - xc[i]); d > 1e-10 {
				t.Fatalf("edit %d: supernodal vs scalar differ at %d: %g vs %g", ei, i, xs[i], xc[i])
			}
			if d := math.Abs(xs[i] - xr[i]); d > 1e-8 {
				t.Fatalf("edit %d: supernodal vs refactored differ at %d: %g vs %g", ei, i, xs[i], xr[i])
			}
		}
	}
}

// TestSupernodalRefactorTracksEdits mirrors the engine's epoch protocol:
// mutate the matrix in place, RefactorFromCSR, and check against a fresh
// factorization.
func TestSupernodalRefactorTracksEdits(t *testing.T) {
	a := gridLaplacian(25, 25)
	n, _ := a.Dims()
	c, err := NewSupernodalCholeskyFromCSR(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	applyEdgeDelta(a, 5, 30, 2.5)
	applyEdgeDelta(a, 200, 225, -0.8)
	if err := c.RefactorFromCSR(a); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSupernodalCholeskyOrdered(a, c.Perm(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.px {
		if math.Float64bits(c.px[i]) != math.Float64bits(fresh.px[i]) {
			t.Fatalf("refactored panel differs from fresh factorization at %d", i)
		}
	}
	_ = n
}

func TestSupernodalDowndateRejectsIndefinite(t *testing.T) {
	a := gridLaplacian(10, 10)
	c, err := NewSupernodalCholeskyFromCSR(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Removing far more conductance than the edge carries drives the matrix
	// indefinite; the downdate must report it.
	if err := c.DowndateEdge(4, 5, 10); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("downdate of indefinite matrix returned %v, want ErrNotSPD", err)
	}
}

func TestSupernodalRejectsIndefiniteMatrix(t *testing.T) {
	tr := sparse.NewTriplet(2, 2, 4)
	tr.Add(0, 0, 1)
	tr.Add(0, 1, 3)
	tr.Add(1, 0, 3)
	tr.Add(1, 1, 1)
	if _, err := NewSupernodalCholeskyFromCSR(tr.ToCSR(), nil); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("factorization of indefinite matrix returned %v, want ErrNotSPD", err)
	}
}

func TestSupernodalSetCloneRestore(t *testing.T) {
	a := gridLaplacian(14, 14)
	n, _ := a.Dims()
	c, err := NewSupernodalCholeskyFromCSR(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	pristine := c.Clone()
	c.UpdateEdge(7, 8, 1.5)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x1 := make([]float64, n)
	if err := c.SolveInto(x1, b); err != nil {
		t.Fatal(err)
	}
	// Restore through the SparseFactor interface and verify the pristine
	// solution returns bit-exactly.
	x0 := make([]float64, n)
	if err := pristine.SolveInto(x0, b); err != nil {
		t.Fatal(err)
	}
	var f SparseFactor = c
	if err := f.Restore(pristine); err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, n)
	if err := c.SolveInto(x2, b); err != nil {
		t.Fatal(err)
	}
	for i := range x0 {
		if math.Float64bits(x0[i]) != math.Float64bits(x2[i]) {
			t.Fatalf("restored factor solution differs at %d", i)
		}
	}
	// Backend mismatch must be rejected, not silently ignored.
	scal, err := NewSparseCholeskyFromCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Restore(scal); err == nil {
		t.Fatal("Restore accepted a mismatched backend")
	}
}

// TestSupernodalZeroAllocHotPath pins the allocation-free contract of the
// refactor/solve/batch cycle on the serial path.
func TestSupernodalZeroAllocHotPath(t *testing.T) {
	a := gridLaplacian(20, 20)
	n, _ := a.Dims()
	c, err := NewSupernodalCholeskyFromCSR(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	const nrhs = 4
	b := make([]float64, n*nrhs)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n*nrhs)
	if err := c.SolveBatchInto(x, b, nrhs); err != nil { // sizes zb once
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := c.RefactorFromCSR(a); err != nil {
			t.Fatal(err)
		}
		if err := c.SolveInto(x[:n], b[:n]); err != nil {
			t.Fatal(err)
		}
		if err := c.SolveBatchInto(x, b, nrhs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("refactor/solve cycle allocates %v times per run, want 0", allocs)
	}
}

// TestSupernodalPartitionInvariants sanity-checks the supernode partition on
// a mesh: contiguous coverage and width caps.
func TestSupernodalPartitionInvariants(t *testing.T) {
	a := gridLaplacian(30, 31)
	n, _ := a.Dims()
	c, err := NewSupernodalCholeskyFromCSR(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if int(c.snCol[0]) != 0 || int(c.snCol[c.nsup]) != n {
		t.Fatalf("supernode columns do not cover [0, %d)", n)
	}
	for s := 0; s < c.nsup; s++ {
		w := int(c.snCol[s+1] - c.snCol[s])
		if w <= 0 || w > snMaxWidth {
			t.Fatalf("supernode %d has width %d", s, w)
		}
		rows := c.snRows[c.snRptr[s]:c.snRptr[s+1]]
		if len(rows) < w {
			t.Fatalf("supernode %d has %d rows for width %d", s, len(rows), w)
		}
		for jj := 0; jj < w; jj++ {
			if int(rows[jj]) != int(c.snCol[s])+jj {
				t.Fatalf("supernode %d row list does not start with its own columns", s)
			}
		}
		for u := 1; u < len(rows); u++ {
			if rows[u] <= rows[u-1] {
				t.Fatalf("supernode %d row list not strictly ascending at %d", s, u)
			}
		}
	}
	if c.nsup >= n {
		t.Fatalf("mesh factor found no supernodes wider than one column (%d supernodes for %d columns)", c.nsup, n)
	}
}
