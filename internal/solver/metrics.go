package solver

import "emvia/internal/telemetry"

// recordCG publishes the outcome of one CG solve. With telemetry disabled
// this is a single atomic pointer load; the per-iteration loop itself is
// never instrumented, so the kernel hot path carries no telemetry cost at
// all.
func recordCG(st Stats) {
	r := telemetry.Default()
	if r == nil {
		return
	}
	r.Counter(telemetry.CGSolves).Inc()
	r.Counter(telemetry.CGIterations).Add(int64(st.Iterations))
	r.Histogram(telemetry.CGItersPerSolve).Observe(float64(st.Iterations))
}

// recordDense counts one dense-Cholesky operation under name.
func recordDense(name string) {
	if r := telemetry.Default(); r != nil {
		r.Counter(name).Inc()
	}
}

// recordSparse counts one sparse-Cholesky operation under name.
func recordSparse(name string) {
	if r := telemetry.Default(); r != nil {
		r.Counter(name).Inc()
	}
}
