// Package solver provides iterative and direct solvers for the symmetric
// positive-definite (SPD) linear systems produced by finite-element stiffness
// assembly and power-grid nodal analysis.
//
// The workhorse is the preconditioned conjugate-gradient method with a
// choice of identity, Jacobi (diagonal) or zero-fill incomplete-Cholesky
// preconditioners. A dense Cholesky factorization is included for small
// systems (via-array networks) and for cross-checking the iterative path in
// tests.
package solver

import (
	"errors"
	"fmt"
	"math"

	"emvia/internal/par"
	"emvia/internal/sparse"
)

// ErrNotConverged is wrapped by CG when the iteration limit is reached before
// the residual tolerance is met.
var ErrNotConverged = errors.New("solver: iteration limit reached before convergence")

// ErrNotSPD is returned by factorizations when a non-positive pivot shows the
// matrix is not positive definite.
var ErrNotSPD = errors.New("solver: matrix is not positive definite")

// Preconditioner applies z = M⁻¹·r for a symmetric positive-definite
// approximation M of the system matrix.
type Preconditioner interface {
	// Apply overwrites z with M⁻¹·r. z and r have the system dimension and
	// must not alias.
	Apply(z, r []float64)
}

// Updatable is implemented by preconditioners that can absorb a single
// diagonal change of the system matrix in O(1), keeping the preconditioner
// exactly current across the low-rank edits the EM failure simulation makes.
type Updatable interface {
	Preconditioner
	// UpdateDiag records that diagonal entry i of the system matrix is now
	// d. It reports false when d is unusable (non-positive), in which case
	// the caller must rebuild the preconditioner instead.
	UpdateDiag(i int, d float64) bool
}

// Refreshable is implemented by preconditioners that can refactor in place
// from a matrix with the same sparsity pattern they were built from, without
// allocating. Callers use it to refresh a stale factor on a schedule (every K
// topology edits, or when CG iteration counts drift) instead of on every
// solve.
type Refreshable interface {
	Preconditioner
	// Refresh recomputes the preconditioner from a, which must have the
	// sparsity pattern of the matrix the preconditioner was built from. On
	// error the preconditioner is left in an undefined state and must be
	// rebuilt from scratch.
	Refresh(a *sparse.CSR) error
}

// Identity is the trivial preconditioner M = I.
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(z, r []float64) { copy(z, r) }

// Jacobi is the diagonal preconditioner M = diag(A).
type Jacobi struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the diagonal of A. Zero or
// negative diagonal entries are rejected, since the target systems are SPD.
func NewJacobi(a *sparse.CSR) (*Jacobi, error) {
	d := a.Diagonal()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v <= 0 {
			return nil, fmt.Errorf("%w: diagonal entry %d is %g", ErrNotSPD, i, v)
		}
		inv[i] = 1 / v
	}
	return &Jacobi{invDiag: inv}, nil
}

// Apply overwrites z with diag(A)⁻¹·r.
func (j *Jacobi) Apply(z, r []float64) {
	for i, ri := range r {
		z[i] = ri * j.invDiag[i]
	}
}

// UpdateDiag replaces the cached inverse of diagonal entry i in O(1). It
// reports false (leaving the old value) when d is not positive.
func (j *Jacobi) UpdateDiag(i int, d float64) bool {
	if d <= 0 || math.IsNaN(d) {
		return false
	}
	j.invDiag[i] = 1 / d
	return true
}

// Refresh recomputes every inverse diagonal from a without allocating. The
// matrix must have the dimension the preconditioner was built with.
func (j *Jacobi) Refresh(a *sparse.CSR) error {
	n, _ := a.Dims()
	if n != len(j.invDiag) {
		return fmt.Errorf("solver: Jacobi Refresh dimension %d, want %d", n, len(j.invDiag))
	}
	for i := 0; i < n; i++ {
		d := 0.0
		cols, vals := a.Row(i)
		for k, c := range cols {
			if c == i {
				d = vals[k]
				break
			}
		}
		if d <= 0 {
			return fmt.Errorf("%w: diagonal entry %d is %g", ErrNotSPD, i, d)
		}
		j.invDiag[i] = 1 / d
	}
	return nil
}

// Options configures the conjugate-gradient iteration.
type Options struct {
	// Tol is the relative residual tolerance ‖b−Ax‖₂ ≤ Tol·‖b‖₂.
	// Zero selects the default 1e-10.
	Tol float64
	// MaxIter bounds the number of iterations. Zero selects 10·n.
	MaxIter int
	// M is the preconditioner; nil selects Identity.
	M Preconditioner
	// X0 optionally provides a warm-start initial guess (copied, not
	// mutated). Nil starts from zero.
	X0 []float64
	// Work optionally supplies reusable solve buffers. When set, CG
	// performs no heap allocation and the returned solution aliases
	// Work.X — callers must copy it out before the next solve.
	Work *Workspace
	// Pool parallelizes the SpMV and vector kernels across its workers.
	// Reductions use fixed-size blocks with partial sums combined in block
	// order, so the iterates, iteration count and residuals are
	// bit-identical for any worker count; nil (or a 1-wide pool) runs the
	// same blocked kernels inline. Preconditioner application is serial
	// either way.
	Pool *par.Pool
}

// Workspace holds the scratch vectors of a CG solve so repeated solves of
// same-dimension systems (the Monte-Carlo re-solve loop) are allocation-free.
// The zero value is ready to use; buffers grow on first use.
type Workspace struct {
	X          []float64 // solution vector of the most recent solve
	r, z, p, a []float64
	// partials holds the per-block partial sums of the deterministic
	// blocked dot products (one slot per dotBlock-sized chunk).
	partials []float64
	// kern holds the pooled kernel dispatch closures, created once on the
	// first parallel solve so multi-worker iterations allocate nothing.
	kern kernCtx
}

// Reserve grows the workspace to dimension n.
func (w *Workspace) Reserve(n int) {
	if cap(w.X) < n {
		w.X = make([]float64, n)
		w.r = make([]float64, n)
		w.z = make([]float64, n)
		w.p = make([]float64, n)
		w.a = make([]float64, n)
	}
	w.X = w.X[:n]
	w.r = w.r[:n]
	w.z = w.z[:n]
	w.p = w.p[:n]
	w.a = w.a[:n]
	nb := partialsLen(n)
	if cap(w.partials) < nb {
		w.partials = make([]float64, nb)
	}
	w.partials = w.partials[:nb]
}

// Stats reports how a CG solve went.
type Stats struct {
	Iterations int
	Residual   float64 // final relative residual
}

// CG solves A·x = b for SPD A by preconditioned conjugate gradients and
// returns the solution with iteration statistics. On ErrNotConverged the
// best iterate found is still returned.
func CG(a *sparse.CSR, b []float64, opt Options) ([]float64, Stats, error) {
	n, c := a.Dims()
	if n != c {
		return nil, Stats{}, fmt.Errorf("solver: CG needs a square matrix, got %d×%d", n, c)
	}
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("solver: CG rhs length %d does not match dimension %d", len(b), n)
	}
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 10 * n
		if maxIter < 100 {
			maxIter = 100
		}
	}
	var m Preconditioner = Identity{}
	if opt.M != nil {
		m = opt.M
	}

	pool := opt.Pool
	var x, r, z, p, ap, partials []float64
	var kc *kernCtx
	if opt.Work != nil {
		opt.Work.Reserve(n)
		x, r, z, p, ap = opt.Work.X, opt.Work.r, opt.Work.z, opt.Work.p, opt.Work.a
		partials = opt.Work.partials
		kc = &opt.Work.kern
		for i := range x {
			x[i] = 0
		}
	} else {
		x = make([]float64, n)
		r = make([]float64, n)
		z = make([]float64, n)
		p = make([]float64, n)
		ap = make([]float64, n)
		partials = make([]float64, partialsLen(n))
		kc = &kernCtx{}
	}
	kc.bind(pool)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, Stats{}, fmt.Errorf("solver: CG warm start length %d does not match dimension %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
		kc.mul(a, r, x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
	} else {
		copy(r, b)
	}

	bnorm := math.Sqrt(kc.dot(b, b, partials))
	if bnorm == 0 {
		// b = 0 ⇒ x = 0 exactly.
		for i := range x {
			x[i] = 0
		}
		recordCG(Stats{})
		return x, Stats{Iterations: 0, Residual: 0}, nil
	}

	m.Apply(z, r)
	copy(p, z)
	rz := kc.dot(r, z, partials)

	res := math.Sqrt(kc.dot(r, r, partials)) / bnorm
	var it int
	for it = 0; it < maxIter && res > tol; it++ {
		kc.mul(a, ap, p)
		pap := kc.dot(p, ap, partials)
		if pap <= 0 || math.IsNaN(pap) {
			return x, Stats{Iterations: it, Residual: res},
				fmt.Errorf("%w: pᵀAp = %g at iteration %d", ErrNotSPD, pap, it)
		}
		alpha := rz / pap
		kc.update(x, r, p, ap, alpha)
		res = math.Sqrt(kc.dot(r, r, partials)) / bnorm
		if res <= tol {
			it++
			break
		}
		m.Apply(z, r)
		rzNew := kc.dot(r, z, partials)
		beta := rzNew / rz
		rz = rzNew
		kc.direction(p, z, beta)
	}
	st := Stats{Iterations: it, Residual: res}
	recordCG(st)
	if res > tol {
		return x, st, fmt.Errorf("%w: residual %.3e after %d iterations (tol %.3e)",
			ErrNotConverged, res, it, tol)
	}
	return x, st, nil
}
