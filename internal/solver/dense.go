package solver

import (
	"fmt"
	"math"

	"emvia/internal/sparse"
	"emvia/internal/telemetry"
)

// DenseCholesky is a dense LLᵀ factorization of a small SPD matrix, used for
// via-array resistance networks (tens of nodes) and as a reference solver in
// tests.
type DenseCholesky struct {
	n int
	l []float64 // lower-triangular factor, row-major n×n
}

// NewDenseCholesky factors the SPD matrix a, given in row-major order with
// dimension n. It returns ErrNotSPD when a pivot is non-positive.
func NewDenseCholesky(a []float64, n int) (*DenseCholesky, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("solver: dense matrix has %d entries, want %d", len(a), n*n)
	}
	l := make([]float64, n*n)
	copy(l, a)
	if err := factorLowerInPlace(l, n); err != nil {
		return nil, err
	}
	return &DenseCholesky{n: n, l: l}, nil
}

// factorLowerInPlace overwrites the lower triangle of the row-major matrix in
// l with its Cholesky factor. Entries above the diagonal are ignored.
func factorLowerInPlace(l []float64, n int) error {
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := l[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return fmt.Errorf("%w: pivot %g at row %d", ErrNotSPD, sum, i)
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return nil
}

// NewDenseCholeskyFromCSR densifies a small sparse SPD matrix and factors it.
// Intended for the direct power-grid solve path, where node counts are small
// enough that O(n²) storage and O(n³) factorization beat iterative solves.
func NewDenseCholeskyFromCSR(a *sparse.CSR) (*DenseCholesky, error) {
	n, cdim := a.Dims()
	if n != cdim {
		return nil, fmt.Errorf("solver: dense factor needs a square matrix, got %d×%d", n, cdim)
	}
	c := &DenseCholesky{n: n, l: make([]float64, n*n)}
	if err := c.RefactorFromCSR(a); err != nil {
		return nil, err
	}
	return c, nil
}

// RefactorFromCSR refactors in place from a, which must have the dimension
// the factor was built with. It performs no allocation.
func (c *DenseCholesky) RefactorFromCSR(a *sparse.CSR) error {
	n, cdim := a.Dims()
	if n != c.n || cdim != c.n {
		return fmt.Errorf("solver: Refactor dimensions %d×%d, want %d×%d", n, cdim, c.n, c.n)
	}
	for i := range c.l {
		c.l[i] = 0
	}
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, col := range cols {
			if col <= i {
				c.l[i*n+col] = vals[k]
			}
		}
	}
	recordDense(telemetry.DenseFactorizations)
	return factorLowerInPlace(c.l, n)
}

// N returns the system dimension.
func (c *DenseCholesky) N() int { return c.n }

// Set overwrites the factor with a copy of src's, which must have the same
// dimension. It lets a Monte-Carlo trial restore a pristine factor by memcpy
// instead of refactoring.
func (c *DenseCholesky) Set(src *DenseCholesky) error {
	if src.n != c.n {
		return fmt.Errorf("solver: Set dimension %d, want %d", src.n, c.n)
	}
	copy(c.l, src.l)
	return nil
}

// Clone returns an independent copy of the factor.
func (c *DenseCholesky) Clone() *DenseCholesky {
	l := make([]float64, len(c.l))
	copy(l, c.l)
	return &DenseCholesky{n: c.n, l: l}
}

// Update applies the rank-one update L·Lᵀ → L·Lᵀ + w·wᵀ in place (LINPACK
// dchud). w is consumed. Updates always succeed on a valid factor.
func (c *DenseCholesky) Update(w []float64) {
	recordDense(telemetry.DenseUpdates)
	n, l := c.n, c.l
	k0 := 0
	for k0 < n && w[k0] == 0 {
		k0++
	}
	for k := k0; k < n; k++ {
		lkk := l[k*n+k]
		r := math.Hypot(lkk, w[k])
		cc := r / lkk
		s := w[k] / lkk
		l[k*n+k] = r
		for i := k + 1; i < n; i++ {
			lik := (l[i*n+k] + s*w[i]) / cc
			l[i*n+k] = lik
			w[i] = cc*w[i] - s*lik
		}
	}
}

// Downdate applies the rank-one downdate L·Lᵀ → L·Lᵀ − w·wᵀ in place
// (LINPACK dchdd). w is consumed. It returns ErrNotSPD — leaving the factor
// partially modified, so the caller must refactor — when the downdated
// matrix is not positive definite.
func (c *DenseCholesky) Downdate(w []float64) error {
	recordDense(telemetry.DenseDowndates)
	n, l := c.n, c.l
	k0 := 0
	for k0 < n && w[k0] == 0 {
		k0++
	}
	for k := k0; k < n; k++ {
		lkk := l[k*n+k]
		d := (lkk - w[k]) * (lkk + w[k])
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w: downdate pivot %g at row %d", ErrNotSPD, d, k)
		}
		r := math.Sqrt(d)
		cc := r / lkk
		s := w[k] / lkk
		l[k*n+k] = r
		for i := k + 1; i < n; i++ {
			lik := (l[i*n+k] - s*w[i]) / cc
			l[i*n+k] = lik
			w[i] = cc*w[i] - s*lik
		}
	}
	return nil
}

// Solve returns x with A·x = b.
func (c *DenseCholesky) Solve(b []float64) ([]float64, error) {
	x := make([]float64, c.n)
	if err := c.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto overwrites x with A⁻¹·b without allocating. x and b must have
// the system dimension and must not alias.
func (c *DenseCholesky) SolveInto(x, b []float64) error {
	if len(b) != c.n || len(x) != c.n {
		return fmt.Errorf("solver: SolveInto lengths %d/%d do not match dimension %d", len(x), len(b), c.n)
	}
	recordDense(telemetry.DenseSolves)
	n, l := c.n, c.l
	// Forward solve L·y = b into x, then backward solve Lᵀ·x = y in place:
	// the backward sweep at row i only reads entries x[k] with k > i, which
	// are already final.
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return nil
}

// SolveBatchInto solves nrhs systems at once: b and x hold nrhs stacked
// vectors (vector v occupies [v·n, (v+1)·n)). The dense backend serves
// systems small enough that there is no index traversal to amortize, so it
// loops SolveInto per vector — batched and looped solves are trivially
// bit-identical.
func (c *DenseCholesky) SolveBatchInto(x, b []float64, nrhs int) error {
	if nrhs <= 0 {
		return fmt.Errorf("solver: SolveBatchInto nrhs %d", nrhs)
	}
	if len(b) != c.n*nrhs || len(x) != c.n*nrhs {
		return fmt.Errorf("solver: SolveBatchInto lengths %d/%d, want %d", len(x), len(b), c.n*nrhs)
	}
	for v := 0; v < nrhs; v++ {
		if err := c.SolveInto(x[v*c.n:(v+1)*c.n], b[v*c.n:(v+1)*c.n]); err != nil {
			return err
		}
	}
	return nil
}
