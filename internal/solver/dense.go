package solver

import (
	"fmt"
	"math"
)

// DenseCholesky is a dense LLᵀ factorization of a small SPD matrix, used for
// via-array resistance networks (tens of nodes) and as a reference solver in
// tests.
type DenseCholesky struct {
	n int
	l []float64 // lower-triangular factor, row-major n×n
}

// NewDenseCholesky factors the SPD matrix a, given in row-major order with
// dimension n. It returns ErrNotSPD when a pivot is non-positive.
func NewDenseCholesky(a []float64, n int) (*DenseCholesky, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("solver: dense matrix has %d entries, want %d", len(a), n*n)
	}
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("%w: pivot %g at row %d", ErrNotSPD, sum, i)
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return &DenseCholesky{n: n, l: l}, nil
}

// Solve returns x with A·x = b.
func (c *DenseCholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("solver: rhs length %d does not match dimension %d", len(b), c.n)
	}
	n, l := c.n, c.l
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x, nil
}
