package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"emvia/internal/sparse"
)

// gridLaplacian builds the SPD conductance matrix of an nx×ny resistive mesh
// with unit edge conductances and a small leak on every diagonal — the same
// structure (5-point stencil plus gmin) the power-grid compiler produces, so
// these tests exercise the exact pattern class the sparse path serves.
func gridLaplacian(nx, ny int) *sparse.CSR {
	n := nx * ny
	tr := sparse.NewTriplet(n, n, 5*n)
	id := func(ix, iy int) int { return ix*ny + iy }
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			i := id(ix, iy)
			tr.Add(i, i, 1e-3)
			if ix+1 < nx {
				j := id(ix+1, iy)
				tr.Add(i, i, 1)
				tr.Add(j, j, 1)
				tr.Add(i, j, -1)
				tr.Add(j, i, -1)
			}
			if iy+1 < ny {
				j := id(ix, iy+1)
				tr.Add(i, i, 1)
				tr.Add(j, j, 1)
				tr.Add(i, j, -1)
				tr.Add(j, i, -1)
			}
		}
	}
	return tr.ToCSR()
}

// applyEdgeDelta stamps a conductance change dg of edge (i, j) into the
// matrix values, mirroring what the circuit engine's slot edits do.
func applyEdgeDelta(a *sparse.CSR, i, j int, dg float64) {
	a.AddAt(a.SlotIndex(i, i), dg)
	a.AddAt(a.SlotIndex(j, j), dg)
	a.AddAt(a.SlotIndex(i, j), -dg)
	a.AddAt(a.SlotIndex(j, i), -dg)
}

func TestAMDPermutationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []*sparse.CSR{
		gridLaplacian(15, 17),
		laplacian1D(40),
	}
	spd, _ := randomSPD(rng, 30)
	cases = append(cases, spd)
	for ci, a := range cases {
		perm := AMDOrder(a)
		inv := InversePermutation(perm)
		for i := range perm {
			if perm[inv[i]] != i || inv[perm[i]] != i {
				t.Fatalf("case %d: perm∘invperm is not the identity at %d", ci, i)
			}
		}
	}
}

func TestAMDReducesGridFill(t *testing.T) {
	a := gridLaplacian(20, 20)
	n, _ := a.Dims()
	natural := make([]int, n)
	for i := range natural {
		natural[i] = i
	}
	nat, err := NewSparseCholeskyOrdered(a, natural)
	if err != nil {
		t.Fatal(err)
	}
	amd, err := NewSparseCholeskyFromCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	// A 20×20 mesh in natural (banded) order fills the whole band; AMD must
	// do clearly better for the sparse path to be worth having.
	if amd.NNZ() >= nat.NNZ() {
		t.Fatalf("AMD fill %d not below natural-order fill %d", amd.NNZ(), nat.NNZ())
	}
}

func TestAMDDeterministic(t *testing.T) {
	a := gridLaplacian(12, 9)
	p1, p2 := AMDOrder(a), AMDOrder(a)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("ordering differs at %d: %d vs %d", i, p1[i], p2[i])
		}
	}
}

// TestSparseCholeskyMatchesDenseAndCG cross-checks the three backends on
// random SPD systems: the sparse and dense factorizations are both exact, so
// they must agree to rounding; CG is checked at its own tolerance.
func TestSparseCholeskyMatchesDenseAndCG(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		n := 20 + trial*13
		a, dense := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}

		sp, err := NewSparseCholeskyFromCSR(a)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]float64, n)
		if err := sp.SolveInto(xs, b); err != nil {
			t.Fatal(err)
		}

		dc, err := NewDenseCholesky(dense, n)
		if err != nil {
			t.Fatal(err)
		}
		xd, err := dc.Solve(b)
		if err != nil {
			t.Fatal(err)
		}

		xc, _, err := CG(a, b, Options{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}

		if d := maxAbsDiff(xs, xd); d > 1e-10 {
			t.Fatalf("n=%d: sparse vs dense max diff %g", n, d)
		}
		if d := maxAbsDiff(xs, xc); d > 1e-8 {
			t.Fatalf("n=%d: sparse vs CG max diff %g", n, d)
		}
		if r := residual(a, xs, b); r > 1e-12 {
			t.Fatalf("n=%d: sparse residual %g", n, r)
		}
	}
}

func TestSparseCholeskySolvesGrid(t *testing.T) {
	a := gridLaplacian(25, 23)
	n, _ := a.Dims()
	rng := rand.New(rand.NewSource(3))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	sp, err := NewSparseCholeskyFromCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	if err := sp.SolveInto(x, b); err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-10 {
		t.Fatalf("grid residual %g", r)
	}
}

// TestSparseCholeskyUpdateDowndateMatchesRefactor drives the factor through
// 1, 5 and 20 sequential edge downdates (EM failures) plus the matching
// restores, comparing against a cold factorization of the edited matrix with
// the same ordering after every edit — the acceptance bar of the incremental
// engine (≤1e-10).
func TestSparseCholeskyUpdateDowndateMatchesRefactor(t *testing.T) {
	a := gridLaplacian(14, 14)
	n, _ := a.Dims()
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	id := func(ix, iy int) int { return ix*14 + iy }

	for _, edits := range []int{1, 5, 20} {
		sp, err := NewSparseCholeskyFromCSR(a.Clone())
		if err != nil {
			t.Fatal(err)
		}
		edited := a.Clone()
		for e := 0; e < edits; e++ {
			// Interior horizontal edges, each failed once (dg = −1).
			i, j := id(1+e%12, 2+e/12), id(2+e%12, 2+e/12)
			applyEdgeDelta(edited, i, j, -1)
			if err := sp.DowndateEdge(i, j, 1); err != nil {
				t.Fatalf("edits=%d: downdate %d: %v", edits, e, err)
			}

			cold, err := NewSparseCholeskyOrdered(edited, sp.Perm())
			if err != nil {
				t.Fatalf("edits=%d: cold refactor after %d: %v", edits, e, err)
			}
			xi, xc := make([]float64, n), make([]float64, n)
			if err := sp.SolveInto(xi, b); err != nil {
				t.Fatal(err)
			}
			if err := cold.SolveInto(xc, b); err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(xi, xc); d > 1e-10 {
				t.Fatalf("edits=%d: after edit %d incremental vs cold max diff %g", edits, e, d)
			}
		}
		// Repair every failure (dg = +1) and compare against the pristine
		// matrix: the round trip must come home.
		for e := 0; e < edits; e++ {
			i, j := id(1+e%12, 2+e/12), id(2+e%12, 2+e/12)
			sp.UpdateEdge(i, j, 1)
		}
		cold, err := NewSparseCholeskyOrdered(a, sp.Perm())
		if err != nil {
			t.Fatal(err)
		}
		xi, xc := make([]float64, n), make([]float64, n)
		if err := sp.SolveInto(xi, b); err != nil {
			t.Fatal(err)
		}
		if err := cold.SolveInto(xc, b); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(xi, xc); d > 1e-10 {
			t.Fatalf("edits=%d: restore round trip max diff %g", edits, d)
		}
	}
}

// TestSparseCholeskyGroundedEdge exercises the single-terminal form of the
// edge update (the other terminal is a pad or ground and drops out of u).
func TestSparseCholeskyGroundedEdge(t *testing.T) {
	a := gridLaplacian(9, 9)
	n, _ := a.Dims()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	sp, err := NewSparseCholeskyFromCSR(a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	node := 40
	s := math.Sqrt(0.5)
	sp.UpdateEdge(node, -1, s) // extra 0.5 S to ground at one node
	edited := a.Clone()
	edited.AddAt(edited.SlotIndex(node, node), 0.5)
	cold, err := NewSparseCholeskyOrdered(edited, sp.Perm())
	if err != nil {
		t.Fatal(err)
	}
	xi, xc := make([]float64, n), make([]float64, n)
	if err := sp.SolveInto(xi, b); err != nil {
		t.Fatal(err)
	}
	if err := cold.SolveInto(xc, b); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(xi, xc); d > 1e-10 {
		t.Fatalf("grounded-edge update vs cold max diff %g", d)
	}
	sp.UpdateEdge(-1, -1, 1) // both terminals pinned: must be a no-op
	if err := sp.DowndateEdge(-1, -1, 1); err != nil {
		t.Fatalf("pinned-edge downdate: %v", err)
	}
}

func TestSparseCholeskyDowndateRejectsIndefinite(t *testing.T) {
	a := gridLaplacian(6, 6)
	sp, err := NewSparseCholeskyFromCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	// Removing 3 S from a unit edge makes the matrix indefinite.
	if err := sp.DowndateEdge(7, 13, math.Sqrt(3)); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("indefinite downdate returned %v, want ErrNotSPD", err)
	}
	// The factor is garbage now, but the workspace invariant must survive a
	// failed downdate: a refactor from the intact matrix has to recover.
	if err := sp.RefactorFromCSR(a); err != nil {
		t.Fatal(err)
	}
	n, _ := a.Dims()
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	x := make([]float64, n)
	if err := sp.SolveInto(x, b); err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-10 {
		t.Fatalf("post-recovery residual %g", r)
	}
}

func TestSparseCholeskyRejectsIndefiniteMatrix(t *testing.T) {
	tr := sparse.NewTriplet(2, 2, 4)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, -1)
	tr.Add(0, 1, 0.5)
	tr.Add(1, 0, 0.5)
	if _, err := NewSparseCholeskyFromCSR(tr.ToCSR()); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("indefinite matrix returned %v, want ErrNotSPD", err)
	}
}

func TestSparseCholeskySetAndClone(t *testing.T) {
	a := gridLaplacian(8, 8)
	n, _ := a.Dims()
	sp, err := NewSparseCholeskyFromCSR(a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	pristine := sp.Clone()
	sp.DowndateEdge(3, 11, 1) //nolint:errcheck // edge removal on a leaky mesh stays SPD
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	xp, xc := make([]float64, n), make([]float64, n)
	if err := pristine.SolveInto(xp, b); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSparseCholeskyOrdered(a, sp.Perm())
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.SolveInto(xc, b); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(xp, xc); d > 1e-12 {
		t.Fatalf("clone drifted with its source: max diff %g", d)
	}
	// Set restores the pristine factor by memcpy.
	if err := sp.Set(pristine); err != nil {
		t.Fatal(err)
	}
	if err := sp.SolveInto(xp, b); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(xp, xc); d > 1e-12 {
		t.Fatalf("Set did not restore the factor: max diff %g", d)
	}
	if err := sp.Set(&SparseCholesky{n: 3}); err == nil {
		t.Fatal("Set accepted a mismatched factor")
	}
}

// TestSparseCholeskyZeroAlloc pins the allocation-free contract of every
// steady-state operation: refactor, solve, and edge up/downdates.
func TestSparseCholeskyZeroAlloc(t *testing.T) {
	a := gridLaplacian(12, 12)
	n, _ := a.Dims()
	sp, err := NewSparseCholeskyFromCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	if allocs := testing.AllocsPerRun(10, func() {
		if err := sp.RefactorFromCSR(a); err != nil {
			t.Fatal(err)
		}
		if err := sp.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
		if err := sp.DowndateEdge(17, 29, 0.5); err != nil {
			t.Fatal(err)
		}
		sp.UpdateEdge(17, 29, 0.5)
	}); allocs != 0 {
		t.Fatalf("steady-state sparse ops allocated %v times per run", allocs)
	}
}
