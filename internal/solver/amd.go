package solver

import "emvia/internal/sparse"

// AMDOrder computes a fill-reducing elimination ordering for a symmetric
// sparsity pattern using an approximate-minimum-degree heuristic on the
// quotient graph (Amestoy, Davis & Duff). The returned perm has perm[k] = i
// when original row/column i is eliminated k-th, so the permuted matrix is
// C[k1,k2] = A[perm[k1], perm[k2]].
//
// The implementation keeps the three AMD ingredients that matter for grid
// patterns — the quotient graph (eliminated variables become elements instead
// of materializing fill edges), element absorption (an element adjacent to
// the pivot is a subset of the new element and is deleted), and the two-pass
// |Le \ Lp| external-degree approximation — and deliberately omits the
// supervariable hashing of reference AMD: on nodal-analysis grids
// indistinguishable variables are rare, and every simplification keeps the
// ordering deterministic. Any permutation is *correct* (only fill quality
// varies), so callers validate nothing beyond what this function guarantees:
// the result is always a true permutation of 0..n-1.
//
// A non-square matrix degenerates to the natural order, which keeps the
// caller's fallback path trivial.
func AMDOrder(a *sparse.CSR) []int {
	n, m := a.Dims()
	perm := make([]int, n)
	if n != m || n == 0 {
		for i := range perm {
			perm[i] = i
		}
		return perm
	}

	// Quotient-graph state. A node starts as a variable; elimination turns it
	// into an element whose member list is the pivot's structure Lp. Elements
	// adjacent to a later pivot are absorbed (deleted) because their members
	// are a subset of the new element's.
	adj := make([][]int32, n)     // variable–variable edges still explicit
	elems := make([][]int32, n)   // elements adjacent to each variable
	members := make([][]int32, n) // member variables of each element
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		lst := make([]int32, 0, len(cols))
		for _, c := range cols {
			if c != i {
				lst = append(lst, int32(c))
			}
		}
		adj[i] = lst
	}

	const (
		live     = 0
		elim     = 1 // eliminated: node is now an element
		absorbed = 2 // element deleted by absorption
	)
	state := make([]int8, n)

	// Degree buckets: a doubly linked list per approximate degree, scanned
	// from a monotonically maintained minimum. Ties break toward the node
	// inserted last, which is deterministic because every insertion order
	// below is a function of the input pattern alone.
	deg := make([]int, n)
	head := make([]int, n+1)
	next := make([]int, n)
	prev := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	insert := func(i int) {
		d := deg[i]
		next[i] = head[d]
		prev[i] = -1
		if head[d] >= 0 {
			prev[head[d]] = i
		}
		head[d] = i
	}
	remove := func(i int) {
		if prev[i] >= 0 {
			next[prev[i]] = next[i]
		} else {
			head[deg[i]] = next[i]
		}
		if next[i] >= 0 {
			prev[next[i]] = prev[i]
		}
	}
	for i := 0; i < n; i++ {
		deg[i] = len(adj[i])
		insert(i)
	}

	mark := make([]int32, n) // step stamp; mark[i] == stamp ⇔ i ∈ Lp this step
	w := make([]int32, n)    // two-pass |Le \ Lp| accumulator per element; -1 = unset
	for i := range w {
		w[i] = -1
	}
	var stamp int32
	lp := make([]int32, 0, n)
	touched := make([]int32, 0, 16) // elements whose w was set this step

	minDeg := 0
	for k := 0; k < n; k++ {
		// Pick the pivot p with minimum approximate degree.
		for head[minDeg] < 0 {
			minDeg++
		}
		p := head[minDeg]
		remove(p)
		perm[k] = p
		state[p] = elim
		stamp++
		mark[p] = stamp

		// Lp = explicit neighbors ∪ members of adjacent elements, minus
		// eliminated variables and p itself.
		lp = lp[:0]
		for _, j := range adj[p] {
			if state[j] == live && mark[j] != stamp {
				mark[j] = stamp
				lp = append(lp, j)
			}
		}
		for _, e := range elems[p] {
			if state[e] != elim { // already absorbed
				continue
			}
			for _, j := range members[e] {
				if state[j] == live && mark[j] != stamp {
					mark[j] = stamp
					lp = append(lp, j)
				}
			}
			// Le \ {p} ⊆ Lp, so element e is now redundant: absorb it.
			state[e] = absorbed
			members[e] = nil
		}
		adj[p] = nil
		elems[p] = nil

		// Pass 1 of the degree approximation: after this loop w[e] counts
		// |Le \ Lp| for every live element e adjacent to some i ∈ Lp, because
		// each member of e that lies in Lp decrements it exactly once.
		touched = touched[:0]
		for _, i := range lp {
			for _, e := range elems[i] {
				if state[e] != elim {
					continue
				}
				if w[e] < 0 {
					// First sighting this step: count the live members,
					// compacting out eliminated variables while here.
					mem := members[e][:0]
					for _, j := range members[e] {
						if state[j] == live {
							mem = append(mem, j)
						}
					}
					members[e] = mem
					w[e] = int32(len(mem))
					touched = append(touched, e)
				}
				w[e]--
			}
		}

		// Pass 2: rebuild each i ∈ Lp — drop edges into Lp (now covered by
		// the new element p), drop dead nodes, and recompute the approximate
		// external degree d(i) ≈ |Lp \ {i}| + |adj(i) \ Lp| + Σ|Le \ Lp|.
		for _, i32 := range lp {
			i := int(i32)
			al := adj[i][:0]
			for _, j := range adj[i] {
				if state[j] == live && mark[j] != stamp {
					al = append(al, j)
				}
			}
			adj[i] = al
			d := len(lp) - 1 + len(al)
			el := elems[i][:0]
			for _, e := range elems[i] {
				if state[e] == elim {
					el = append(el, e)
					d += int(w[e])
				}
			}
			elems[i] = append(el, int32(p))
			if lim := n - k - 1; d > lim {
				d = lim
			}
			remove(i)
			deg[i] = d
			insert(i)
			if d < minDeg {
				minDeg = d
			}
		}
		for _, e := range touched {
			w[e] = -1
		}
		members[p] = append([]int32(nil), lp...)
	}
	return perm
}

// InversePermutation returns inv with inv[perm[k]] = k. It panics if perm is
// not a permutation of 0..len(perm)-1, which turns a buggy ordering into a
// loud failure instead of a silently wrong factorization.
func InversePermutation(perm []int) []int {
	inv := make([]int, len(perm))
	for i := range inv {
		inv[i] = -1
	}
	for k, p := range perm {
		if p < 0 || p >= len(perm) || inv[p] >= 0 {
			panic("solver: not a permutation")
		}
		inv[p] = k
	}
	return inv
}
