package solver

import (
	"fmt"
	"math"
	"sort"

	"emvia/internal/sparse"
	"emvia/internal/telemetry"
)

// SparseCholesky is a sparse LLᵀ factorization P·A·Pᵀ = L·Lᵀ of a large SPD
// matrix with a fixed sparsity pattern — the power-grid conductance systems
// beyond the dense path's reach. The fill-reducing permutation P and the
// complete symbolic structure (elimination tree, row patterns, column
// pointers, A-scatter slots) are computed once per pattern; after that,
// numeric refactorization, triangular solves and Davis–Hager rank-one
// up/downdates are allocation-free and touch only the fixed structure.
//
// The matrix must be structurally symmetric (grid stamping always is); the
// symbolic analysis derives the elimination tree from the upper triangle of
// the permuted pattern.
type SparseCholesky struct {
	n          int
	perm, invp []int // perm[k] = original index of pivot k; invp inverts it
	parent     []int // elimination tree over permuted indices; -1 = root

	// L in compressed-sparse-column form over permuted indices. Each column j
	// stores its diagonal at colptr[j] and the below-diagonal rows after it
	// in strictly increasing order — the order up-looking factorization fills
	// them in, and the order the triangular sweeps stream through memory.
	colptr []int
	rowind []int32
	lx     []float64

	// Static refactorization structure. srow[rowptr[k]:rowptr[k+1]] is the
	// pattern of row k of L (ascending, diagonal excluded); ascatter maps the
	// upper-triangle entries of permuted row k of A into the dense workspace:
	// x[atgt[t]] = a.ValueAt(aslot[t]) for t in [aptr[k], aptr[k+1]).
	rowptr []int
	srow   []int32
	aptr   []int
	aslot  []int32
	atgt   []int32

	x    []float64 // factorization scatter workspace; all-zero between calls
	wbuf []float64 // up/downdate workspace; all-zero between calls
	z    []float64 // permuted solve vector
	zb   []float64 // batch solve scratch, grown on demand
	fill []int     // per-column fill cursor during refactorization
}

// NewSparseCholeskyFromCSR orders a with AMD, runs the symbolic analysis and
// factors the matrix. It returns ErrNotSPD when a pivot is non-positive.
func NewSparseCholeskyFromCSR(a *sparse.CSR) (*SparseCholesky, error) {
	return NewSparseCholeskyOrdered(a, AMDOrder(a))
}

// NewSparseCholeskyOrdered is NewSparseCholeskyFromCSR with a caller-chosen
// elimination order: perm[k] is the original index eliminated k-th. Any true
// permutation is valid; only the fill depends on it.
func NewSparseCholeskyOrdered(a *sparse.CSR, perm []int) (*SparseCholesky, error) {
	n, m := a.Dims()
	if n != m {
		return nil, fmt.Errorf("solver: sparse factor needs a square matrix, got %d×%d", n, m)
	}
	if len(perm) != n {
		return nil, fmt.Errorf("solver: permutation length %d, want %d", len(perm), n)
	}
	c := &SparseCholesky{n: n, perm: append([]int(nil), perm...)}
	c.invp = make([]int, n)
	for i := range c.invp {
		c.invp[i] = -1
	}
	for k, p := range perm {
		if p < 0 || p >= n || c.invp[p] >= 0 {
			return nil, fmt.Errorf("solver: perm is not a permutation of 0..%d", n-1)
		}
		c.invp[p] = k
	}
	c.symbolic(a)
	if err := c.RefactorFromCSR(a); err != nil {
		return nil, err
	}
	return c, nil
}

// symbolic computes the elimination tree, the per-row patterns of L, the CSC
// column structure, and the A-scatter slots — everything the numeric phases
// reuse without allocating.
func (c *SparseCholesky) symbolic(a *sparse.CSR) {
	n := c.n

	// Upper triangle of the permuted pattern, plus the A-value scatter: for
	// each permuted row k, which CSR slots of a land where in the workspace.
	upPtr := make([]int, n+1)
	var upCols []int32
	c.aptr = make([]int, n+1)
	for k := 0; k < n; k++ {
		orig := c.perm[k]
		cols, _ := a.Row(orig)
		if len(cols) > 0 {
			base := a.SlotIndex(orig, cols[0])
			for t, col := range cols {
				j := c.invp[col]
				if j > k {
					continue
				}
				c.aslot = append(c.aslot, int32(base+t))
				c.atgt = append(c.atgt, int32(j))
				if j < k {
					upCols = append(upCols, int32(j))
				}
			}
		}
		upPtr[k+1] = len(upCols)
		c.aptr[k+1] = len(c.aslot)
	}

	// Elimination tree (Liu's algorithm with path compression through an
	// ancestor array): for every upper entry (k, j) walk j's ancestor chain
	// and graft it under k.
	c.parent = make([]int, n)
	anc := make([]int, n)
	for k := 0; k < n; k++ {
		c.parent[k] = -1
		anc[k] = -1
		for t := upPtr[k]; t < upPtr[k+1]; t++ {
			for i := int(upCols[t]); i != -1 && i < k; {
				next := anc[i]
				anc[i] = k
				if next == -1 {
					c.parent[i] = k
				}
				i = next
			}
		}
	}

	// Row patterns: ereach(k) is found by walking each upper entry up the
	// etree until a node already marked for this k. Sorted ascending it is a
	// valid topological order (dependencies only flow small→large), which is
	// what the up-looking numeric loop and the cache both want.
	c.rowptr = make([]int, n+1)
	colcount := make([]int, n)
	stamp := make([]int, n)
	for i := range stamp {
		stamp[i] = -1
	}
	scratch := make([]int, 0, 64)
	for k := 0; k < n; k++ {
		stamp[k] = k
		scratch = scratch[:0]
		for t := upPtr[k]; t < upPtr[k+1]; t++ {
			for i := int(upCols[t]); stamp[i] != k; i = c.parent[i] {
				stamp[i] = k
				scratch = append(scratch, i)
			}
		}
		sort.Ints(scratch)
		for _, j := range scratch {
			c.srow = append(c.srow, int32(j))
			colcount[j]++
		}
		c.rowptr[k+1] = len(c.srow)
	}

	// Column structure of L: diagonal first, then the rows gathered from the
	// row patterns; scanning k ascending fills each column in ascending row
	// order.
	c.colptr = make([]int, n+1)
	for j := 0; j < n; j++ {
		c.colptr[j+1] = c.colptr[j] + 1 + colcount[j]
	}
	nnz := c.colptr[n]
	c.rowind = make([]int32, nnz)
	c.lx = make([]float64, nnz)
	cpos := make([]int, n)
	for j := 0; j < n; j++ {
		c.rowind[c.colptr[j]] = int32(j)
		cpos[j] = c.colptr[j] + 1
	}
	for k := 0; k < n; k++ {
		for t := c.rowptr[k]; t < c.rowptr[k+1]; t++ {
			j := c.srow[t]
			c.rowind[cpos[j]] = int32(k)
			cpos[j]++
		}
	}

	c.x = make([]float64, n)
	c.wbuf = make([]float64, n)
	c.z = make([]float64, n)
	c.fill = make([]int, n)
}

// N returns the system dimension.
func (c *SparseCholesky) N() int { return c.n }

// NNZ returns the stored entry count of L, diagonal included.
func (c *SparseCholesky) NNZ() int { return len(c.lx) }

// Perm returns the elimination order (perm[k] = original index of pivot k).
// The returned slice is internal; callers must not modify it.
func (c *SparseCholesky) Perm() []int { return c.perm }

// RefactorFromCSR refactors numerically in place from a, which must have the
// sparsity pattern the symbolic analysis was built from (the fixed-pattern
// invariant of the incremental engine guarantees that). It allocates nothing
// and returns ErrNotSPD when a pivot is non-positive, in which case the
// factor content is garbage and must be refactored before further use.
func (c *SparseCholesky) RefactorFromCSR(a *sparse.CSR) error {
	n, m := a.Dims()
	if n != c.n || m != c.n {
		return fmt.Errorf("solver: Refactor dimensions %d×%d, want %d×%d", n, m, c.n, c.n)
	}
	recordSparse(telemetry.SparseFactorizations)
	x, lx, fill := c.x, c.lx, c.fill
	for j := 0; j < n; j++ {
		fill[j] = c.colptr[j] + 1
	}
	for k := 0; k < n; k++ {
		// Scatter the upper entries of permuted row k of A, then eliminate
		// against every column in the row pattern (up-looking): each x[i] is
		// final when its turn comes because the pattern is in ascending
		// order and updates only flow from smaller columns to larger rows.
		for t := c.aptr[k]; t < c.aptr[k+1]; t++ {
			x[c.atgt[t]] = a.ValueAt(int(c.aslot[t]))
		}
		d := x[k]
		x[k] = 0
		for t := c.rowptr[k]; t < c.rowptr[k+1]; t++ {
			i := int(c.srow[t])
			lki := x[i] / lx[c.colptr[i]]
			x[i] = 0
			for p := c.colptr[i] + 1; p < fill[i]; p++ {
				x[c.rowind[p]] -= lx[p] * lki
			}
			d -= lki * lki
			lx[fill[i]] = lki
			fill[i]++
		}
		if d <= 0 || math.IsNaN(d) {
			// Restore the all-zero workspace invariant before bailing.
			for t := c.rowptr[k]; t < c.rowptr[k+1]; t++ {
				x[c.srow[t]] = 0
			}
			return fmt.Errorf("%w: sparse pivot %g at permuted row %d", ErrNotSPD, d, k)
		}
		lx[c.colptr[k]] = math.Sqrt(d)
	}
	return nil
}

// SolveInto overwrites x with A⁻¹·b without allocating. Both slices must
// have the system dimension; they may alias (the sweep runs in a permuted
// scratch vector).
func (c *SparseCholesky) SolveInto(x, b []float64) error {
	if len(b) != c.n || len(x) != c.n {
		return fmt.Errorf("solver: SolveInto lengths %d/%d do not match dimension %d", len(x), len(b), c.n)
	}
	recordSparse(telemetry.SparseSolves)
	n, lx, z := c.n, c.lx, c.z
	for k := 0; k < n; k++ {
		z[k] = b[c.perm[k]]
	}
	for j := 0; j < n; j++ { // forward: L·z' = P·b
		zj := z[j] / lx[c.colptr[j]]
		z[j] = zj
		for p := c.colptr[j] + 1; p < c.colptr[j+1]; p++ {
			z[c.rowind[p]] -= lx[p] * zj
		}
	}
	for j := n - 1; j >= 0; j-- { // backward: Lᵀ·z = z'
		s := z[j]
		for p := c.colptr[j] + 1; p < c.colptr[j+1]; p++ {
			s -= lx[p] * z[c.rowind[p]]
		}
		z[j] = s / lx[c.colptr[j]]
	}
	for k := 0; k < n; k++ {
		x[c.perm[k]] = z[k]
	}
	return nil
}

// SolveBatchInto solves nrhs systems in one blocked pass: b and x hold nrhs
// stacked vectors (vector v occupies [v·n, (v+1)·n)). The sweep streams each
// column's pattern once for all right-hand sides, with the per-vector
// arithmetic identical to nrhs separate SolveInto calls — batched and looped
// solves agree bit for bit, the index traversal and factor loads are
// amortized nrhs-fold.
func (c *SparseCholesky) SolveBatchInto(x, b []float64, nrhs int) error {
	if nrhs <= 0 {
		return fmt.Errorf("solver: SolveBatchInto nrhs %d", nrhs)
	}
	if len(b) != c.n*nrhs || len(x) != c.n*nrhs {
		return fmt.Errorf("solver: SolveBatchInto lengths %d/%d, want %d", len(x), len(b), c.n*nrhs)
	}
	recordSparse(telemetry.SparseSolves)
	n, lx := c.n, c.lx
	if cap(c.zb) < n*nrhs {
		c.zb = make([]float64, n*nrhs)
	}
	zb := c.zb[:n*nrhs]
	// Row-major permuted panel: the nrhs values of permuted row k are
	// contiguous at [k·nrhs, (k+1)·nrhs), so the inner loops vectorize.
	for k := 0; k < n; k++ {
		p := c.perm[k]
		row := zb[k*nrhs : (k+1)*nrhs]
		for v := 0; v < nrhs; v++ {
			row[v] = b[v*n+p]
		}
	}
	for j := 0; j < n; j++ { // forward: L·z' = P·b
		d := lx[c.colptr[j]]
		zr := zb[j*nrhs : (j+1)*nrhs]
		for v := range zr {
			zr[v] /= d
		}
		for p := c.colptr[j] + 1; p < c.colptr[j+1]; p++ {
			l := lx[p]
			i := int(c.rowind[p])
			tr := zb[i*nrhs : (i+1)*nrhs]
			for v := range tr {
				tr[v] -= l * zr[v]
			}
		}
	}
	for j := n - 1; j >= 0; j-- { // backward: Lᵀ·z = z'
		zr := zb[j*nrhs : (j+1)*nrhs]
		for p := c.colptr[j] + 1; p < c.colptr[j+1]; p++ {
			l := lx[p]
			i := int(c.rowind[p])
			sr := zb[i*nrhs : (i+1)*nrhs]
			for v := range zr {
				zr[v] -= l * sr[v]
			}
		}
		d := lx[c.colptr[j]]
		for v := range zr {
			zr[v] /= d
		}
	}
	for k := 0; k < n; k++ {
		p := c.perm[k]
		row := zb[k*nrhs : (k+1)*nrhs]
		for v := 0; v < nrhs; v++ {
			x[v*n+p] = row[v]
		}
	}
	return nil
}

// UpdateEdge applies the rank-one update A → A + s²·u·uᵀ with u = e_fa − e_fb
// in original (unpermuted) indices; a terminal of −1 (pad or ground side of a
// resistor) drops out of u. The entry (fa, fb) must be part of A's sparsity
// pattern — true for every resistor stamp — which guarantees the update never
// needs fill outside L's fixed pattern: the touched columns are exactly the
// elimination-tree path from the first nonzero of P·u, and the fill-path
// lemma keeps the working vector inside each visited column's row set. The
// per-column rotation is the same LINPACK dchud arithmetic as the dense
// DenseCholesky.Update, so the two paths agree bit-for-bit on shared
// problems. Cost: O(path length × column nnz) instead of O(n²).
func (c *SparseCholesky) UpdateEdge(fa, fb int, s float64) {
	recordSparse(telemetry.SparseUpdates)
	wb, lx := c.wbuf, c.lx
	j := c.scatterEdge(fa, fb, s)
	for ; j != -1; j = c.parent[j] {
		alpha := wb[j]
		if alpha == 0 {
			continue
		}
		wb[j] = 0
		ljj := lx[c.colptr[j]]
		r := math.Hypot(ljj, alpha)
		cc := r / ljj
		ss := alpha / ljj
		lx[c.colptr[j]] = r
		for p := c.colptr[j] + 1; p < c.colptr[j+1]; p++ {
			i := c.rowind[p]
			lij := (lx[p] + ss*wb[i]) / cc
			lx[p] = lij
			wb[i] = cc*wb[i] - ss*lij
		}
	}
}

// DowndateEdge applies A → A − s²·u·uᵀ under the UpdateEdge contract (dchdd
// arithmetic, matching DenseCholesky.Downdate). It returns ErrNotSPD —
// leaving the factor partially modified, so the caller must refactor — when
// the downdated matrix is not positive definite.
func (c *SparseCholesky) DowndateEdge(fa, fb int, s float64) error {
	recordSparse(telemetry.SparseDowndates)
	wb, lx := c.wbuf, c.lx
	j := c.scatterEdge(fa, fb, s)
	for ; j != -1; j = c.parent[j] {
		alpha := wb[j]
		if alpha == 0 {
			continue
		}
		wb[j] = 0
		ljj := lx[c.colptr[j]]
		d := (ljj - alpha) * (ljj + alpha)
		if d <= 0 || math.IsNaN(d) {
			// Restore the all-zero workspace invariant: every remaining
			// nonzero of wb sits on the ancestor path of j.
			for i := j; i != -1; i = c.parent[i] {
				wb[i] = 0
			}
			return fmt.Errorf("%w: sparse downdate pivot %g at permuted column %d", ErrNotSPD, d, j)
		}
		r := math.Sqrt(d)
		cc := r / ljj
		ss := alpha / ljj
		lx[c.colptr[j]] = r
		for p := c.colptr[j] + 1; p < c.colptr[j+1]; p++ {
			i := c.rowind[p]
			lij := (lx[p] - ss*wb[i]) / cc
			lx[p] = lij
			wb[i] = cc*wb[i] - ss*lij
		}
	}
	return nil
}

// scatterEdge loads ±s at the permuted positions of the edge terminals into
// the update workspace and returns the first elimination-tree path node, or
// -1 when both terminals are pinned.
func (c *SparseCholesky) scatterEdge(fa, fb int, s float64) int {
	j := c.n
	if fa >= 0 {
		pa := c.invp[fa]
		c.wbuf[pa] = s
		j = pa
	}
	if fb >= 0 {
		pb := c.invp[fb]
		c.wbuf[pb] = -s
		if pb < j {
			j = pb
		}
	}
	if j == c.n {
		return -1
	}
	return j
}

// Set overwrites the numeric factor with a copy of src's, which must share
// the dimension (and, for a meaningful result, the symbolic structure — the
// use case is restoring a pristine factor by memcpy at trial reset).
func (c *SparseCholesky) Set(src *SparseCholesky) error {
	if src.n != c.n || len(src.lx) != len(c.lx) {
		return fmt.Errorf("solver: Set structure mismatch (%d/%d entries)", len(src.lx), len(c.lx))
	}
	copy(c.lx, src.lx)
	return nil
}

// Clone returns a copy with private numeric state (factor values and
// workspaces) sharing the immutable symbolic structure — permutation, etree,
// column pattern and scatter slots. Clones are what make per-worker factors
// cheap: the symbolic arrays dominate memory and are computed once.
func (c *SparseCholesky) Clone() *SparseCholesky {
	d := *c
	d.lx = append([]float64(nil), c.lx...)
	d.x = make([]float64, c.n)
	d.wbuf = make([]float64, c.n)
	d.z = make([]float64, c.n)
	d.zb = nil
	d.fill = make([]int, c.n)
	return &d
}
