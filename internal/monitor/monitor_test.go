package monitor

import (
	"encoding/json"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"emvia/internal/telemetry"
	"emvia/internal/trace"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestStatusEndpoint(t *testing.T) {
	oldReg := telemetry.Default()
	defer telemetry.SetDefault(oldReg)

	ring := trace.NewRing(4)
	srv, err := Start("localhost:0", Options{Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Before any activity: progress and last_cascade are null, and the
	// response is valid JSON.
	var p struct {
		Progress *struct {
			Label      string  `json:"label"`
			Done       int64   `json:"done"`
			Total      int64   `json:"total"`
			ETASeconds float64 `json:"eta_seconds"`
		} `json:"progress"`
		TrialsCompleted int64 `json:"trials_completed"`
		LastCascade     *struct {
			Run      string `json:"run"`
			Failures int    `json:"failures"`
			TTF      any    `json:"ttf_seconds"`
			SpecTime any    `json:"spec_time_seconds"`
		} `json:"last_cascade"`
	}
	if err := json.Unmarshal(get(t, base+"/status"), &p); err != nil {
		t.Fatalf("idle /status not JSON: %v", err)
	}
	if p.Progress != nil || p.LastCascade != nil || p.TrialsCompleted != 0 {
		t.Fatalf("idle status = %+v", p)
	}

	// Feed progress (Start enabled telemetry+status) and a cascade with an
	// infinite TTF — the canonical JSON-hostile value.
	telemetry.Default().ProgressTick("mc", 42, 100)
	tc := trace.New(trace.Options{Ring: ring})
	run := tc.BeginRun("grid:IR-drop", 1)
	tr := run.Trial(0)
	tr.Begin(3)
	tr.Fail(5, 1, "Plus-shaped(0,0)")
	tr.End(math.Inf(1), 1)

	if err := json.Unmarshal(get(t, base+"/status"), &p); err != nil {
		t.Fatalf("active /status not JSON: %v", err)
	}
	if p.Progress == nil || p.Progress.Label != "mc" || p.Progress.Done != 42 || p.Progress.Total != 100 {
		t.Fatalf("progress = %+v", p.Progress)
	}
	if p.TrialsCompleted != 1 || p.LastCascade == nil {
		t.Fatalf("cascade status = %+v", p)
	}
	if p.LastCascade.Run != "grid:IR-drop" || p.LastCascade.Failures != 1 {
		t.Fatalf("last cascade = %+v", p.LastCascade)
	}
	if p.LastCascade.TTF != nil {
		t.Fatalf("infinite TTF rendered as %v, want null", p.LastCascade.TTF)
	}
	if p.LastCascade.SpecTime != nil {
		t.Fatalf("spec time = %v, want null (criterion never fired)", p.LastCascade.SpecTime)
	}
}

// TestStatusETANullWithZeroTrials pins the zero-progress contract: before
// any trial completes there is no basis for an ETA, so eta_seconds must be
// JSON null, not a garbage extrapolation.
func TestStatusETANullWithZeroTrials(t *testing.T) {
	oldReg := telemetry.Default()
	defer telemetry.SetDefault(oldReg)
	telemetry.SetDefault(nil)

	srv, err := Start("localhost:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	telemetry.Default().ProgressTick("mc", 0, 100)
	var p struct {
		Progress *struct {
			Done       int64 `json:"done"`
			ETASeconds any   `json:"eta_seconds"`
		} `json:"progress"`
	}
	if err := json.Unmarshal(get(t, base+"/status"), &p); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if p.Progress == nil {
		t.Fatal("progress missing after tick")
	}
	if p.Progress.ETASeconds != nil {
		t.Fatalf("zero-trials ETA = %v, want null", p.Progress.ETASeconds)
	}
}

// TestMetricsEndpoint checks /metrics serves a Prometheus exposition
// covering counters, stage histograms and the scrape-time ring gauges.
func TestMetricsEndpoint(t *testing.T) {
	oldReg := telemetry.Default()
	defer telemetry.SetDefault(oldReg)
	telemetry.SetDefault(nil)

	ring := trace.NewRing(8)
	srv, err := Start("localhost:0", Options{Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := telemetry.Default()
	reg.Counter(telemetry.ServeSubmitted).Inc()
	reg.Histogram(telemetry.ServeStageSeconds("mc")).Observe(0.25)

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"emvia_serve_jobs_submitted_total 1",
		`emvia_serve_stage_seconds_bucket{stage="mc",le="+Inf"} 1`,
		"emvia_trace_ring_occupancy 0",
		"emvia_trace_ring_capacity 8",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}
	if strings.Contains(text, " NaN\n") || strings.Contains(text, " +Inf\n") || strings.Contains(text, " Inf\n") {
		t.Error("/metrics leaked a non-finite value")
	}
}

// TestCloseBoundedWithStuckClient is the regression test for the unbounded
// shutdown: a client that opens a connection and sends half a request keeps
// the connection in the active state, so a bare http.Server.Shutdown waits
// on it forever. Close must give up after the configured grace period,
// force-close the straggler and return.
func TestCloseBoundedWithStuckClient(t *testing.T) {
	oldReg := telemetry.Default()
	defer telemetry.SetDefault(oldReg)

	const grace = 100 * time.Millisecond
	srv, err := Start("localhost:0", Options{ShutdownTimeout: grace})
	if err != nil {
		t.Fatal(err)
	}
	// A half-sent request: headers never terminated, so the server considers
	// the connection active until its own ReadHeaderTimeout (5s) fires —
	// long after the shutdown grace period.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /status HTTP/1.1\r\nHost: stuck\r\n")); err != nil {
		t.Fatal(err)
	}
	// Give the server a moment to accept and start reading the request.
	time.Sleep(10 * time.Millisecond)

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close with stuck client: %v", err)
		}
	case <-time.After(grace + 2*time.Second):
		t.Fatal("Close did not return within the shutdown bound")
	}
}

// TestCloseGracefulWhenIdle pins the fast path: with no connections open,
// Close returns promptly via the graceful branch.
func TestCloseGracefulWhenIdle(t *testing.T) {
	oldReg := telemetry.Default()
	defer telemetry.SetDefault(oldReg)

	srv, err := Start("localhost:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	get(t, "http://"+srv.Addr()+"/status")
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("idle Close: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("idle Close took %v", d)
	}
}

func TestDebugEndpointsServed(t *testing.T) {
	oldReg := telemetry.Default()
	defer telemetry.SetDefault(oldReg)

	srv, err := Start("localhost:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get(t, base+"/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["emvia"]; !ok {
		t.Fatal("/debug/vars missing the emvia telemetry snapshot")
	}
	if body := get(t, base+"/debug/pprof/"); len(body) == 0 {
		t.Fatal("/debug/pprof/ empty")
	}
	// No ring attached: /status must still answer.
	if err := json.Unmarshal(get(t, base+"/status"), &struct{}{}); err != nil {
		t.Fatalf("/status without ring: %v", err)
	}
}
