// Package monitor serves the live HTTP observability endpoints of the
// long-running CLIs (-http addr):
//
//	/status      JSON: loop progress with ETA, trial throughput, the last
//	             completed cascade's summary (from the trace ring), and
//	             serve-layer latency percentiles when a job server runs
//	/metrics     Prometheus text exposition of the telemetry registry
//	/debug/vars  expvar, including the "emvia" telemetry snapshot
//	/debug/pprof net/http/pprof profiles
//
// The monitor is read-only: it observes the telemetry registry and the trace
// ring, and never feeds anything back into the computation, so enabling it
// cannot perturb paper metrics. Starting a monitor force-enables telemetry
// (with status collection) so /status and /debug/vars have data to serve.
package monitor

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"emvia/internal/telemetry"
	"emvia/internal/trace"
)

// Options configures a monitor.
type Options struct {
	// Ring, when non-nil, supplies the last-cascade summaries for /status.
	Ring *trace.Ring
	// ShutdownTimeout bounds how long Close waits for in-flight requests to
	// finish before force-closing their connections. A stuck client (e.g. a
	// half-sent request or an abandoned pprof profile stream) can otherwise
	// hold a graceful shutdown open indefinitely. Zero selects 2s.
	ShutdownTimeout time.Duration
}

// defaultShutdownTimeout is the Close grace period when Options leaves it 0.
const defaultShutdownTimeout = 2 * time.Second

// Server is a running monitor.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	timeout time.Duration
}

// Register mounts the monitor endpoints (/status, /debug/vars, /debug/pprof)
// on an existing mux, so a host server — emserve's job API — can serve them
// alongside its own routes on one listener. It enables telemetry and status
// collection as a side effect, exactly like Start.
func Register(mux *http.ServeMux, opt Options) {
	reg := telemetry.Enable()
	reg.EnableStatus()
	mux.HandleFunc("/status", statusHandler(opt.Ring))
	mux.HandleFunc("/metrics", metricsHandler(opt.Ring))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Start listens on addr (e.g. "localhost:8080", ":0" for an ephemeral port)
// and serves the monitor endpoints until Close. It enables telemetry and
// status collection as a side effect.
func Start(addr string, opt Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	timeout := opt.ShutdownTimeout
	if timeout <= 0 {
		timeout = defaultShutdownTimeout
	}
	s := &Server{ln: ln, timeout: timeout}

	mux := http.NewServeMux()
	Register(mux, opt)

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server: a graceful http.Server.Shutdown bounded by the
// configured timeout (in-flight requests get a chance to finish), then a
// hard Close of whatever connections remain — so Close always returns within
// the bound, stuck clients or not. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err == nil {
		return nil
	}
	if cerr := s.srv.Close(); cerr != nil {
		return cerr
	}
	if err == context.DeadlineExceeded {
		// The bound fired and the stragglers were force-closed — that is the
		// contract working, not a failure to report.
		return nil
	}
	return err
}

// statusPayload is the /status response. Float fields that can be non-finite
// (+Inf TTFs) are rendered through jsonNumber, so the payload is always valid
// JSON.
type statusPayload struct {
	// Progress mirrors telemetry.Status; null before the first tick.
	Progress *progressPayload `json:"progress"`
	// TrialsCompleted counts trials that passed through the trace ring since
	// process start (0 when no ring is attached).
	TrialsCompleted int64 `json:"trials_completed"`
	// LastCascade summarizes the most recently completed trial; null before
	// the first completion or without a ring.
	LastCascade *cascadePayload `json:"last_cascade"`
	// Serve carries the job-service latency summaries; omitted until the
	// first job runs.
	Serve *servePayload `json:"serve,omitempty"`
}

type progressPayload struct {
	Label          string  `json:"label"`
	Done           int64   `json:"done"`
	Total          int64   `json:"total"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// ETASeconds is null before the first completed trial (no basis for an
	// estimate) and whenever the projection is non-finite.
	ETASeconds any `json:"eta_seconds"`
}

type cascadePayload struct {
	Run        string `json:"run"`
	Trial      int    `json:"trial"`
	Failures   int    `json:"failures"`
	TTF        any    `json:"ttf_seconds"`
	FirstComp  int    `json:"first_comp"`
	FirstLabel string `json:"first_label,omitempty"`
	FirstTime  any    `json:"first_time_seconds"`
	SpecTime   any    `json:"spec_time_seconds"` // null when the criterion never fired
	MaxRate    any    `json:"max_aging_rate"`
}

// histSummary is the /status digest of one latency histogram.
type histSummary struct {
	Count int64 `json:"count"`
	Mean  any   `json:"mean"`
	P50   any   `json:"p50"`
	P90   any   `json:"p90"`
	P99   any   `json:"p99"`
}

// servePayload is the /status "serve" section: queue-wait, whole-job and
// per-stage latency percentiles from the telemetry histograms.
type servePayload struct {
	QueueWaitSeconds *histSummary            `json:"queue_wait_seconds,omitempty"`
	JobSeconds       *histSummary            `json:"job_seconds,omitempty"`
	StageSeconds     map[string]*histSummary `json:"stage_seconds,omitempty"`
}

// jsonNumber keeps finite values numeric and renders non-finite ones as
// null, so /status consumers never meet a value JSON cannot carry. (The
// result-manifest convention of "+Inf" strings is a separate, pinned format
// — this is the live-status contract only.)
func jsonNumber(v float64) any {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return v
}

// summarize digests a histogram snapshot; nil when it holds no samples.
func summarize(h telemetry.HistogramSnapshot) *histSummary {
	if h.Count == 0 {
		return nil
	}
	return &histSummary{
		Count: h.Count,
		Mean:  jsonNumber(h.Mean),
		P50:   jsonNumber(h.P50),
		P90:   jsonNumber(h.P90),
		P99:   jsonNumber(h.P99),
	}
}

// serveStatus builds the /status serve section from the registry snapshot,
// nil when no job has touched the serve histograms (non-server CLIs).
func serveStatus(s *telemetry.Snapshot) *servePayload {
	out := &servePayload{
		QueueWaitSeconds: summarize(s.Histograms[telemetry.ServeQueueWaitSeconds]),
		JobSeconds:       summarize(s.Histograms[telemetry.ServeJobSeconds]),
	}
	const prefix = "serve.stage_seconds{stage="
	for name, h := range s.Histograms {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, "}") {
			continue
		}
		stage := name[len(prefix) : len(name)-1]
		if sum := summarize(h); sum != nil {
			if out.StageSeconds == nil {
				out.StageSeconds = make(map[string]*histSummary)
			}
			out.StageSeconds[stage] = sum
		}
	}
	if out.QueueWaitSeconds == nil && out.JobSeconds == nil && out.StageSeconds == nil {
		return nil
	}
	return out
}

// statusHandler serves /status against a (possibly nil) trace ring.
func statusHandler(ring *trace.Ring) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) { writeStatus(w, ring) }
}

// metricsHandler serves /metrics: the whole telemetry registry in Prometheus
// text exposition. Ring occupancy is sampled into gauges at scrape time, so
// the ring itself stays telemetry-free.
func metricsHandler(ring *trace.Ring) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		reg := telemetry.Default()
		if ring != nil {
			reg.Gauge(telemetry.TraceRingOccupancy).Set(float64(ring.Occupancy()))
			reg.Gauge(telemetry.TraceRingCapacity).Set(float64(ring.Cap()))
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client gone = nothing to do
	}
}

func writeStatus(w http.ResponseWriter, ring *trace.Ring) {
	var p statusPayload
	if st, ok := telemetry.Default().Status(); ok {
		p.Progress = &progressPayload{
			Label:          st.Label,
			Done:           st.Done,
			Total:          st.Total,
			ElapsedSeconds: st.Elapsed.Seconds(),
		}
		// An ETA extrapolated from zero completed trials is not an estimate;
		// serialize it (and any non-finite projection) as null.
		if st.Done > 0 && st.Total > 0 {
			p.Progress.ETASeconds = jsonNumber(st.ETA.Seconds())
		}
	}
	p.Serve = serveStatus(telemetry.Default().Snapshot())
	p.TrialsCompleted = ring.Total()
	if last, ok := ring.Last(); ok {
		c := &cascadePayload{
			Run:        last.Run,
			Trial:      last.Trial,
			Failures:   last.Failures,
			TTF:        jsonNumber(last.TTF),
			FirstComp:  last.FirstComp,
			FirstLabel: last.FirstLabel,
			FirstTime:  jsonNumber(last.FirstTime),
			MaxRate:    jsonNumber(last.MaxRate),
		}
		if last.SpecTime >= 0 {
			c.SpecTime = jsonNumber(last.SpecTime)
		}
		p.LastCascade = c
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&p) //nolint:errcheck // best-effort response write
}
