// Package cudd builds the Cu dual-damascene (Cu DD) finite-element models of
// the DAC'17 paper: a lower wire Mx, an upper wire Mx+1, and an n×n via array
// at their intersection, embedded in the full layer stack of Fig. 2
// (Si substrate, SiCOH ILD, Ta liner, Si3N4 capping). The three power-grid
// intersection patterns of Fig. 4 — Plus, T and L — are modelled by letting
// the wires either continue across the domain or terminate at the array.
//
// Characterize runs the thermoelastic solve (package fem) for a structure
// and extracts the quantities the EM flow consumes: the peak tensile
// hydrostatic stress under each via, and line scans of σ_H across via rows
// (Figs 1, 6, 7).
package cudd

import (
	"fmt"
	"math"

	"emvia/internal/phys"
)

// Pattern is the power-grid intersection pattern of Fig. 4.
type Pattern int

// Intersection patterns. In a Plus pattern both wires continue on all four
// sides of the via array (interior of the power mesh); in a T pattern the
// upper wire terminates at the array (mesh edge); in an L pattern both wires
// terminate (mesh corner).
const (
	Plus Pattern = iota
	TShape
	LShape
)

// String names the pattern as in the paper.
func (p Pattern) String() string {
	switch p {
	case Plus:
		return "Plus-shaped"
	case TShape:
		return "T-shaped"
	case LShape:
		return "L-shaped"
	}
	return fmt.Sprintf("cudd.Pattern(%d)", int(p))
}

// Patterns lists all intersection patterns in paper order.
func Patterns() []Pattern { return []Pattern{Plus, TShape, LShape} }

// LayerClass distinguishes intermediate from top metal layers; thickness is
// fixed per class within a technology.
type LayerClass int

// Metal layer classes.
const (
	Intermediate LayerClass = iota
	Top
)

// String names the layer class.
func (c LayerClass) String() string {
	if c == Top {
		return "top"
	}
	return "intermediate"
}

// LayerPair is the (Mx, Mx+1) layer-class combination. The paper
// characterizes three: intermediate–intermediate, intermediate–top, top–top.
type LayerPair struct {
	Lower, Upper LayerClass
}

// LayerPairs lists the three combinations the paper characterizes.
func LayerPairs() []LayerPair {
	return []LayerPair{
		{Intermediate, Intermediate},
		{Intermediate, Top},
		{Top, Top},
	}
}

// String formats the pair like "intermediate-top".
func (lp LayerPair) String() string {
	return lp.Lower.String() + "-" + lp.Upper.String()
}

// Params describes one Cu DD via-array structure to characterize.
type Params struct {
	// Pattern is the intersection pattern (Plus, T, L).
	Pattern Pattern
	// LayerPair selects the metal layer classes of Mx and Mx+1.
	LayerPair LayerPair
	// ArrayN is the via array dimension n (n×n vias). n=1 is a single
	// wide via.
	ArrayN int
	// WireWidth is the width of both wires, m (2 µm is typical for power
	// grids at upper layers).
	WireWidth float64
	// ViaArea is the total copper cross-section of the array, m²; all
	// configurations share it so they share nominal resistance (the paper
	// uses 1 µm²).
	ViaArea float64
	// ViaSpacing is the minimum via-to-via spacing, m. Zero keeps the
	// paper's equal-area geometry (gap = via side). A positive value
	// enforces the design-rule floor the paper lists as future work:
	// large arrays then occupy more area, and Validate rejects arrays
	// that no longer fit the wire.
	ViaSpacing float64
	// AnnealT is the effective stress-free temperature in °C. Cu DD is
	// manufactured at 300–350 °C, but plastic relaxation during cool-down
	// lowers the temperature at which the metallization is stress-free;
	// the 250 °C default also calibrates this compact model (clamped
	// substrate, symmetry rollers) to the 180–280 MPa hydrostatic-stress
	// window the paper's ABAQUS runs report.
	AnnealT float64
	// OperatingT is the worst-case chip operating temperature in °C;
	// ΔT = OperatingT − AnnealT.
	OperatingT float64

	// Geometry of the surrounding stack (all m). Zero values select the
	// 32 nm-class defaults of DefaultParams.
	MetalThicknessIntermediate float64
	MetalThicknessTop          float64
	ViaHeight                  float64
	CapThickness               float64
	LinerThickness             float64 // Ta pad under each via; 0 disables
	Margin                     float64 // ILD margin beyond the wire edges
	SubstrateThickness         float64
	UnderILD                   float64
	OverILD                    float64

	// Mesh resolution caps (m). Zero selects defaults tied to the via size.
	StepArray   float64 // lateral step inside the via-array footprint
	StepOutside float64 // lateral step elsewhere
	StepZMetal  float64 // vertical step inside metal/via layers
	StepZBulk   float64 // vertical step in substrate and bulk ILD
}

// DefaultParams returns the paper's nominal configuration: Plus-shaped 4×4
// array, intermediate–intermediate pair, 2 µm wires, 1 µm² via area,
// stress-free at 250 °C, operated at 105 °C.
func DefaultParams() Params {
	return Params{
		Pattern:                    Plus,
		LayerPair:                  LayerPair{Intermediate, Intermediate},
		ArrayN:                     4,
		WireWidth:                  2 * phys.Micron,
		ViaArea:                    1 * phys.Micron * phys.Micron,
		AnnealT:                    250,
		OperatingT:                 105,
		MetalThicknessIntermediate: 0.45 * phys.Micron,
		MetalThicknessTop:          0.90 * phys.Micron,
		ViaHeight:                  0.35 * phys.Micron,
		CapThickness:               0.10 * phys.Micron,
		LinerThickness:             0.02 * phys.Micron,
		Margin:                     1.6 * phys.Micron,
		SubstrateThickness:         1.2 * phys.Micron,
		UnderILD:                   0.4 * phys.Micron,
		OverILD:                    0.3 * phys.Micron,
	}
}

// Validate checks the parameter set and fills zero geometry fields with
// defaults, returning the completed copy.
func (p Params) Validate() (Params, error) {
	d := DefaultParams()
	if p.ArrayN < 1 {
		return p, fmt.Errorf("cudd: ArrayN must be ≥ 1, got %d", p.ArrayN)
	}
	if p.WireWidth <= 0 {
		return p, fmt.Errorf("cudd: WireWidth must be positive, got %g", p.WireWidth)
	}
	if p.ViaArea <= 0 {
		return p, fmt.Errorf("cudd: ViaArea must be positive, got %g", p.ViaArea)
	}
	fill := func(v *float64, def float64) {
		if *v == 0 {
			*v = def
		}
	}
	fill(&p.MetalThicknessIntermediate, d.MetalThicknessIntermediate)
	fill(&p.MetalThicknessTop, d.MetalThicknessTop)
	fill(&p.ViaHeight, d.ViaHeight)
	fill(&p.CapThickness, d.CapThickness)
	fill(&p.Margin, d.Margin)
	fill(&p.SubstrateThickness, d.SubstrateThickness)
	fill(&p.UnderILD, d.UnderILD)
	fill(&p.OverILD, d.OverILD)
	if p.AnnealT == 0 {
		p.AnnealT = d.AnnealT
	}
	if p.OperatingT == 0 {
		p.OperatingT = d.OperatingT
	}
	if ext := p.arrayExtent(); ext > p.WireWidth {
		return p, fmt.Errorf("cudd: %d×%d array extent %.3g µm exceeds wire width %.3g µm",
			p.ArrayN, p.ArrayN, ext/phys.Micron, p.WireWidth/phys.Micron)
	}
	if p.StepArray == 0 {
		p.StepArray = p.viaSide()
	}
	if p.StepOutside == 0 {
		p.StepOutside = 0.45 * phys.Micron
	}
	if p.StepZMetal == 0 {
		p.StepZMetal = 0.25 * phys.Micron
	}
	if p.StepZBulk == 0 {
		p.StepZBulk = 0.6 * phys.Micron
	}
	return p, nil
}

// viaSide returns the side length of one square via: the n² vias share
// ViaArea, so side = sqrt(ViaArea)/n.
func (p Params) viaSide() float64 {
	return math.Sqrt(p.ViaArea) / float64(p.ArrayN)
}

// viaGap returns the spacing between adjacent vias: the via side by default
// (the paper's equal-area geometry), or the design-rule minimum when larger.
func (p Params) viaGap() float64 {
	s := p.viaSide()
	if p.ViaSpacing > s {
		return p.ViaSpacing
	}
	return s
}

// pitch returns the via centre-to-centre distance (side + gap; 2·side in
// the paper's geometry of Figs 1 and 7).
func (p Params) pitch() float64 { return p.viaSide() + p.viaGap() }

// arrayExtent returns the full lateral span of the array:
// n vias + (n−1) gaps.
func (p Params) arrayExtent() float64 {
	return float64(p.ArrayN)*p.viaSide() + float64(p.ArrayN-1)*p.viaGap()
}

// metalThickness maps a layer class to its thickness.
func (p Params) metalThickness(c LayerClass) float64 {
	if c == Top {
		return p.MetalThicknessTop
	}
	return p.MetalThicknessIntermediate
}

// DeltaT returns the uniform temperature change in K.
func (p Params) DeltaT() float64 { return p.OperatingT - p.AnnealT }

// ViaSide returns the side length of one square via, m.
func (p Params) ViaSide() float64 { return p.viaSide() }

// Pitch returns the via centre-to-centre distance, m.
func (p Params) Pitch() float64 { return p.pitch() }

// ArrayExtent returns the lateral span of the via array, m.
func (p Params) ArrayExtent() float64 { return p.arrayExtent() }

// ViaCenter returns the centre coordinates of via (i, j), 0-indexed from the
// array corner, in the structure's global frame.
func (p Params) ViaCenter(i, j int) (x, y float64) {
	cx, cy := p.domainCenter()
	ext := p.arrayExtent()
	s := p.viaSide()
	x0 := cx - ext/2 + s/2
	y0 := cy - ext/2 + s/2
	return x0 + float64(i)*p.pitch(), y0 + float64(j)*p.pitch()
}

// domainCenter returns the intersection centre in the global frame.
func (p Params) domainCenter() (x, y float64) {
	half := p.WireWidth/2 + p.Margin
	return half, half
}

// domainSize returns the lateral domain side length.
func (p Params) domainSize() float64 {
	return p.WireWidth + 2*p.Margin
}
