package cudd

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"

	"emvia/internal/fem"
	"emvia/internal/mat"
	"emvia/internal/phys"
)

// testParams returns a coarse, fast configuration for unit tests.
func testParams(n int, pat Pattern) Params {
	p := DefaultParams()
	p.ArrayN = n
	p.Pattern = pat
	p.Margin = 1.0 * phys.Micron
	p.SubstrateThickness = 0.8 * phys.Micron
	p.StepOutside = 0.5 * phys.Micron
	p.StepZBulk = 1.0 * phys.Micron
	return p
}

func TestValidate(t *testing.T) {
	if _, err := (Params{ArrayN: 0, WireWidth: 1, ViaArea: 1}).Validate(); err == nil {
		t.Error("accepted ArrayN=0")
	}
	if _, err := (Params{ArrayN: 1, WireWidth: 0, ViaArea: 1}).Validate(); err == nil {
		t.Error("accepted zero wire width")
	}
	if _, err := (Params{ArrayN: 1, WireWidth: 1, ViaArea: 0}).Validate(); err == nil {
		t.Error("accepted zero via area")
	}
	// Array wider than wire must be rejected: 4×4 with 1 µm² in a 1 µm wire
	// has extent 1.75 µm > 1 µm.
	bad := DefaultParams()
	bad.WireWidth = 1 * phys.Micron
	if _, err := bad.Validate(); err == nil {
		t.Error("accepted array extent exceeding wire width")
	}
	good, err := DefaultParams().Validate()
	if err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if good.StepArray == 0 || good.StepOutside == 0 {
		t.Error("Validate did not fill resolution defaults")
	}
}

func TestGeometryDerivations(t *testing.T) {
	p, err := DefaultParams().Validate()
	if err != nil {
		t.Fatal(err)
	}
	// 4×4, 1 µm²: side 0.25 µm, pitch 0.5 µm, extent 1.75 µm.
	if got := p.viaSide(); math.Abs(got-0.25*phys.Micron) > 1e-15 {
		t.Errorf("viaSide = %g", got)
	}
	if got := p.pitch(); math.Abs(got-0.5*phys.Micron) > 1e-15 {
		t.Errorf("pitch = %g", got)
	}
	if got := p.arrayExtent(); math.Abs(got-1.75*phys.Micron) > 1e-15 {
		t.Errorf("arrayExtent = %g", got)
	}
	if got := p.DeltaT(); got != -145 {
		t.Errorf("DeltaT = %g, want -145", got)
	}
	// Via centres are symmetric about the domain centre.
	cx, cy := p.domainCenter()
	x00, y00 := p.ViaCenter(0, 0)
	x33, y33 := p.ViaCenter(3, 3)
	if math.Abs((x00+x33)/2-cx) > 1e-15 || math.Abs((y00+y33)/2-cy) > 1e-15 {
		t.Errorf("via array not centred: corners (%g,%g) (%g,%g), centre (%g,%g)", x00, y00, x33, y33, cx, cy)
	}
}

func TestBuildMaterialSanity(t *testing.T) {
	g, p, err := Build(testParams(2, Plus))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []mat.ID{mat.Silicon, mat.Copper, mat.SiCOH, mat.SiN, mat.Tantalum} {
		if g.CountMaterial(id) == 0 {
			t.Errorf("no cells of material %v", id)
		}
	}
	if g.CountMaterial(mat.None) != 0 {
		t.Errorf("unpainted cells remain: %d", g.CountMaterial(mat.None))
	}
	st := p.stack()
	// The via column at a via centre must be copper above the liner,
	// punching the cap; between vias the cap level must be SiN.
	vx, vy := p.ViaCenter(0, 0)
	zCap := (st.mxTop + st.capTop) / 2
	i, j, k, ok := g.FindCell(vx, vy, zCap)
	if !ok {
		t.Fatal("via centre not in grid")
	}
	if got := g.Material(i, j, k); got != mat.Copper && got != mat.Tantalum {
		t.Errorf("via column at cap level = %v, want Cu or Ta", got)
	}
	gapX := (vx + p.pitch()/2)
	i, j, k, _ = g.FindCell(gapX, vy, zCap)
	if got := g.Material(i, j, k); got != mat.SiN {
		t.Errorf("cap between vias = %v, want Si3N4", got)
	}
	// Liner pad sits directly on Mx top under the via.
	i, j, k, _ = g.FindCell(vx, vy, st.mxTop+p.LinerThickness/2)
	if got := g.Material(i, j, k); got != mat.Tantalum {
		t.Errorf("via bottom = %v, want Ta liner", got)
	}
	// Lower wire present under the via, upper wire above it.
	i, j, k, _ = g.FindCell(vx, vy, (st.mxBot+st.mxTop)/2)
	if got := g.Material(i, j, k); got != mat.Copper {
		t.Errorf("Mx under via = %v, want Cu", got)
	}
	i, j, k, _ = g.FindCell(vx, vy, (st.viaTop+st.mx1Top)/2)
	if got := g.Material(i, j, k); got != mat.Copper {
		t.Errorf("Mx+1 above via = %v, want Cu", got)
	}
}

func TestBuildPatternTermination(t *testing.T) {
	size := testParams(2, Plus).WireWidth + 2*testParams(2, Plus).Margin
	st := func(p Params) stack { v, _ := p.Validate(); return v.stack() }

	// Plus: Mx spans the full x extent; L: it terminates past the centre.
	gPlus, pPlus, err := Build(testParams(2, Plus))
	if err != nil {
		t.Fatal(err)
	}
	gL, pL, err := Build(testParams(2, LShape))
	if err != nil {
		t.Fatal(err)
	}
	_, cy := pPlus.domainCenter()
	zMx := (st(pPlus).mxBot + st(pPlus).mxTop) / 2
	farX := size - 0.1*phys.Micron

	i, j, k, _ := gPlus.FindCell(farX, cy, zMx)
	if got := gPlus.Material(i, j, k); got != mat.Copper {
		t.Errorf("Plus: Mx far end = %v, want Cu", got)
	}
	i, j, k, _ = gL.FindCell(farX, cy, zMx)
	if got := gL.Material(i, j, k); got != mat.SiCOH {
		t.Errorf("L: Mx far end = %v, want ILD", got)
	}
	// T: upper wire terminates on the +y side, continues on −y.
	gT, pT, err := Build(testParams(2, TShape))
	if err != nil {
		t.Fatal(err)
	}
	cx, _ := pT.domainCenter()
	zMx1 := (st(pT).viaTop + st(pT).mx1Top) / 2
	i, j, k, _ = gT.FindCell(cx, size-0.1*phys.Micron, zMx1)
	if got := gT.Material(i, j, k); got != mat.SiCOH {
		t.Errorf("T: Mx+1 far +y end = %v, want ILD", got)
	}
	i, j, k, _ = gT.FindCell(cx, 0.1*phys.Micron, zMx1)
	if got := gT.Material(i, j, k); got != mat.Copper {
		t.Errorf("T: Mx+1 −y end = %v, want Cu", got)
	}
	_ = pL
}

func TestCharacterizeTensileAndPlausible(t *testing.T) {
	res, err := Characterize(testParams(2, Plus), fem.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PeakSigmaT) != 2 || len(res.PeakSigmaT[0]) != 2 {
		t.Fatalf("PeakSigmaT shape = %dx%d", len(res.PeakSigmaT), len(res.PeakSigmaT[0]))
	}
	for j, row := range res.PeakSigmaT {
		for i, v := range row {
			if v < 30*phys.MPa || v > 1500*phys.MPa {
				t.Errorf("via (%d,%d): σ_T = %.1f MPa outside plausible tensile range", i, j, v/phys.MPa)
			}
		}
	}
	// 2×2 array is fully symmetric: all four peaks should agree closely.
	ref := res.PeakSigmaT[0][0]
	for j, row := range res.PeakSigmaT {
		for i, v := range row {
			if math.Abs(v-ref)/ref > 0.08 {
				t.Errorf("via (%d,%d): σ_T = %.1f MPa, breaks 2×2 symmetry vs %.1f", i, j, v/phys.MPa, ref/phys.MPa)
			}
		}
	}
	if res.MaxPeak() < res.MinPeak() {
		t.Error("MaxPeak < MinPeak")
	}
	if got := res.PeakFlat(); len(got) != 4 {
		t.Errorf("PeakFlat length = %d", len(got))
	}
}

func TestCharacterizePatternOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("3 FEA solves")
	}
	peaks := map[Pattern]float64{}
	for _, pat := range Patterns() {
		res, err := Characterize(testParams(2, pat), fem.SolveOptions{})
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		peaks[pat] = res.MaxPeak()
	}
	t.Logf("peak σ_T: Plus=%.1f T=%.1f L=%.1f MPa",
		peaks[Plus]/phys.MPa, peaks[TShape]/phys.MPa, peaks[LShape]/phys.MPa)
	// Paper §3.2: the Plus pattern is the most constrained and sees the most
	// stress; T and L are attenuated by the extra surrounding ILD.
	if !(peaks[Plus] > peaks[TShape] && peaks[TShape] > peaks[LShape]) {
		t.Errorf("pattern stress ordering violated: Plus=%.1f T=%.1f L=%.1f MPa",
			peaks[Plus]/phys.MPa, peaks[TShape]/phys.MPa, peaks[LShape]/phys.MPa)
	}
}

func TestCharacterizeInnerViasSeeLessStress(t *testing.T) {
	if testing.Short() {
		t.Skip("4×4 FEA solve")
	}
	res, err := Characterize(testParams(4, Plus), fem.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig 1: inner vias of a 4×4 array see lower stress than the
	// perimeter vias.
	inner := (res.PeakSigmaT[1][1] + res.PeakSigmaT[1][2] + res.PeakSigmaT[2][1] + res.PeakSigmaT[2][2]) / 4
	corner := (res.PeakSigmaT[0][0] + res.PeakSigmaT[0][3] + res.PeakSigmaT[3][0] + res.PeakSigmaT[3][3]) / 4
	t.Logf("inner σ_T = %.1f MPa, corner σ_T = %.1f MPa", inner/phys.MPa, corner/phys.MPa)
	if inner >= corner {
		t.Errorf("inner vias (%.1f MPa) not less stressed than corner vias (%.1f MPa)",
			inner/phys.MPa, corner/phys.MPa)
	}
}

func TestRowScanProducesProfile(t *testing.T) {
	res, err := Characterize(testParams(2, Plus), fem.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	xs, sh := res.RowScan(0)
	if len(xs) < 5 || len(xs) != len(sh) {
		t.Fatalf("RowScan lengths = %d,%d", len(xs), len(sh))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatal("scan x not increasing")
		}
	}
	// The scan runs inside the Mx wire, so all samples are tensile copper.
	for i, v := range sh {
		if v <= 0 {
			t.Errorf("scan sample %d: σ_H = %g not tensile", i, v)
		}
	}
}

func TestViaSpacingRule(t *testing.T) {
	// Equal-area default: gap = side, pitch = 2·side.
	p, err := DefaultParams().Validate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Pitch()-2*p.ViaSide()) > 1e-18 {
		t.Errorf("default pitch = %g, want 2×side %g", p.Pitch(), 2*p.ViaSide())
	}
	// A spacing rule above the side stretches the array (the paper's
	// stated future work).
	ruled := DefaultParams()
	ruled.ViaSpacing = 0.3 * phys.Micron // side is 0.25 µm for 4×4
	rv, err := ruled.Validate()
	if err != nil {
		t.Fatal(err)
	}
	wantExtent := 4*0.25*phys.Micron + 3*0.3*phys.Micron
	if math.Abs(rv.ArrayExtent()-wantExtent) > 1e-15 {
		t.Errorf("ruled extent = %g, want %g", rv.ArrayExtent(), wantExtent)
	}
	// An 8×8 array under a strict rule no longer fits the 2 µm wire.
	tight := DefaultParams()
	tight.ArrayN = 8
	tight.ViaSpacing = 0.2 * phys.Micron // extent = 8·0.125 + 7·0.2 = 2.4 µm
	if _, err := tight.Validate(); err == nil {
		t.Error("accepted spacing-ruled array wider than the wire")
	}
	// A rule below the natural gap changes nothing.
	loose := DefaultParams()
	loose.ViaSpacing = 0.1 * phys.Micron
	lv, err := loose.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if lv.Pitch() != p.Pitch() {
		t.Errorf("sub-gap rule changed pitch: %g vs %g", lv.Pitch(), p.Pitch())
	}
}

func TestViaSpacingBuildsAndCharacterizes(t *testing.T) {
	p := testParams(2, Plus)
	p.ViaSpacing = 0.7 * phys.Micron // side 0.5 µm, so the rule stretches
	res, err := Characterize(p, fem.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.PeakSigmaT {
		for _, v := range row {
			if v < 30*phys.MPa || v > 1500*phys.MPa {
				t.Errorf("ruled-array σ_T = %g MPa implausible", v/phys.MPa)
			}
		}
	}
}

func TestWriteCrossSectionSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStructureSVG(&buf, testParams(2, Plus), 400); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("output is not an SVG document")
	}
	// Well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed SVG: %v", err)
		}
	}
	// Every structural material appears (colors from the legend).
	for _, color := range []string{"#6b6b6b", "#c97a3d", "#dfe8f0", "#3f6fb5", "#7fb069"} {
		if !strings.Contains(out, color) {
			t.Errorf("SVG missing material color %s", color)
		}
	}
	// Out-of-grid slice is rejected.
	g, _, err := Build(testParams(2, Plus))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCrossSectionSVG(&buf, g, 1, 400); err == nil {
		t.Error("accepted y outside the grid")
	}
}
