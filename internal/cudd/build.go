package cudd

import (
	"fmt"

	"emvia/internal/mat"
	"emvia/internal/mesh"
)

// stack holds the derived z coordinates of the layer boundaries.
type stack struct {
	subTop  float64 // substrate top = under-ILD bottom
	mxBot   float64 // Mx bottom
	mxTop   float64 // Mx top = cap1 bottom = via-layer bottom
	capTop  float64 // cap1 top
	viaTop  float64 // via-layer top = Mx+1 bottom
	mx1Top  float64 // Mx+1 top = cap2 bottom
	cap2Top float64 // cap2 top
	zMax    float64 // over-ILD top (domain top)
}

func (p Params) stack() stack {
	var s stack
	s.subTop = p.SubstrateThickness
	s.mxBot = s.subTop + p.UnderILD
	s.mxTop = s.mxBot + p.metalThickness(p.LayerPair.Lower)
	s.capTop = s.mxTop + p.CapThickness
	s.viaTop = s.mxTop + p.ViaHeight
	s.mx1Top = s.viaTop + p.metalThickness(p.LayerPair.Upper)
	s.cap2Top = s.mx1Top + p.CapThickness
	s.zMax = s.cap2Top + p.OverILD
	return s
}

// Build constructs the painted rectilinear grid for the structure. The
// returned grid is ready for fem.NewModel with DeltaT = p.DeltaT().
func Build(p Params) (*mesh.Grid, Params, error) {
	p, err := p.Validate()
	if err != nil {
		return nil, p, err
	}
	st := p.stack()
	size := p.domainSize()
	cx, cy := p.domainCenter()
	w2 := p.WireWidth / 2
	s := p.viaSide()
	ext := p.arrayExtent()

	// Lateral feature lines: domain edges, wire edges, wire terminations and
	// every via edge. When StepArray is below the via side, via and gap
	// midlines are added so each via spans ≥ 2 cells.
	lateral := func(axis int) []float64 {
		c := cx
		if axis == 1 {
			c = cy
		}
		f := []float64{0, size, c - w2, c + w2}
		for k := 0; k < p.ArrayN; k++ {
			lo := c - ext/2 + float64(k)*p.pitch()
			f = append(f, lo, lo+s)
			if p.StepArray < 0.99*s {
				f = append(f, lo+s/2) // via midline
				if k+1 < p.ArrayN {
					f = append(f, lo+1.5*s) // gap midline
				}
			}
		}
		return f
	}
	snap := 1e-12
	xs := mesh.Lines(lateral(0), p.StepOutside, snap)
	ys := mesh.Lines(lateral(1), p.StepOutside, snap)

	// Vertical lines: per-layer segments with layer-appropriate steps.
	zs := concatLines([][3]float64{
		{0, st.subTop, p.StepZBulk},
		{st.subTop, st.mxBot, p.UnderILD},
		{st.mxBot, st.mxTop, p.StepZMetal},
		{st.mxTop, st.capTop, p.CapThickness},
		{st.capTop, st.viaTop, p.StepZMetal},
		{st.viaTop, st.mx1Top, p.StepZMetal},
		{st.mx1Top, st.cap2Top, p.CapThickness},
		{st.cap2Top, st.zMax, p.StepZBulk},
	}, snap)
	if p.LinerThickness > 0 {
		zs = insertLine(zs, st.mxTop+p.LinerThickness, snap)
	}

	g, err := mesh.New(xs, ys, zs)
	if err != nil {
		return nil, p, fmt.Errorf("cudd: building grid: %w", err)
	}

	// 1. Bulk: substrate below, ILD everywhere above.
	g.Paint(mesh.Box{X0: 0, X1: size, Y0: 0, Y1: size, Z0: 0, Z1: st.subTop}, mat.Silicon)
	g.Paint(mesh.Box{X0: 0, X1: size, Y0: 0, Y1: size, Z0: st.subTop, Z1: st.zMax}, mat.SiCOH)

	// 2. Capping slabs (deposited wafer-wide after CMP of each Cu layer).
	g.Paint(mesh.Box{X0: 0, X1: size, Y0: 0, Y1: size, Z0: st.mxTop, Z1: st.capTop}, mat.SiN)
	g.Paint(mesh.Box{X0: 0, X1: size, Y0: 0, Y1: size, Z0: st.mx1Top, Z1: st.cap2Top}, mat.SiN)

	// 3. Wires. Mx runs along x, Mx+1 along y; T terminates the upper wire
	// at the intersection, L terminates both (paper Fig. 5).
	mxX0, mxX1 := 0.0, size
	mx1Y0, mx1Y1 := 0.0, size
	switch p.Pattern {
	case TShape:
		mx1Y1 = cy + w2
	case LShape:
		mx1Y1 = cy + w2
		mxX1 = cx + w2
	}
	g.Paint(mesh.Box{X0: mxX0, X1: mxX1, Y0: cy - w2, Y1: cy + w2, Z0: st.mxBot, Z1: st.mxTop}, mat.Copper)
	g.Paint(mesh.Box{X0: cx - w2, X1: cx + w2, Y0: mx1Y0, Y1: mx1Y1, Z0: st.viaTop, Z1: st.mx1Top}, mat.Copper)

	// 4. Vias punch through the cap: Ta liner pad at the bottom, Cu above.
	for j := 0; j < p.ArrayN; j++ {
		for i := 0; i < p.ArrayN; i++ {
			vx, vy := p.ViaCenter(i, j)
			zCu := st.mxTop
			if p.LinerThickness > 0 {
				g.Paint(mesh.Box{
					X0: vx - s/2, X1: vx + s/2, Y0: vy - s/2, Y1: vy + s/2,
					Z0: st.mxTop, Z1: st.mxTop + p.LinerThickness,
				}, mat.Tantalum)
				zCu += p.LinerThickness
			}
			g.Paint(mesh.Box{
				X0: vx - s/2, X1: vx + s/2, Y0: vy - s/2, Y1: vy + s/2,
				Z0: zCu, Z1: st.viaTop,
			}, mat.Copper)
		}
	}
	return g, p, nil
}

// concatLines builds grid lines from contiguous [lo, hi, maxStep] segments.
func concatLines(segments [][3]float64, snap float64) []float64 {
	var out []float64
	for _, seg := range segments {
		lines := mesh.Lines([]float64{seg[0], seg[1]}, seg[2], snap)
		if len(out) > 0 {
			lines = lines[1:] // shared boundary
		}
		out = append(out, lines...)
	}
	return out
}

// insertLine adds a coordinate into an ascending line set unless an existing
// line is within snap of it.
func insertLine(lines []float64, v, snap float64) []float64 {
	for i, l := range lines {
		if v <= l+snap {
			if v >= l-snap {
				return lines // already present
			}
			out := make([]float64, 0, len(lines)+1)
			out = append(out, lines[:i]...)
			out = append(out, v)
			out = append(out, lines[i:]...)
			return out
		}
	}
	return append(lines, v)
}
