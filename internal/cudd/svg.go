package cudd

import (
	"bufio"
	"fmt"
	"io"

	"emvia/internal/mat"
	"emvia/internal/mesh"
)

// materialColors renders each Cu DD material in a conventional hue.
var materialColors = map[mat.ID]string{
	mat.Silicon:  "#6b6b6b",
	mat.Copper:   "#c97a3d",
	mat.SiCOH:    "#dfe8f0",
	mat.Tantalum: "#3f6fb5",
	mat.SiN:      "#7fb069",
	mat.None:     "#ffffff",
}

// WriteCrossSectionSVG renders the x–z cross-section of a painted grid at
// the given y coordinate as an SVG image (one rectangle per cell), the
// equivalent of the paper's Fig 2/Fig 5 schematics for the structures this
// library actually builds. The drawing is scaled to fit width pixels.
func WriteCrossSectionSVG(w io.Writer, g *mesh.Grid, y float64, widthPx int) error {
	if widthPx <= 0 {
		widthPx = 800
	}
	_, j, _, ok := g.FindCell(g.X[0], y, g.Z[0])
	if !ok {
		return fmt.Errorf("cudd: y = %g outside the grid", y)
	}
	nx, _, nz := g.CellDims()
	xSpan := g.X[len(g.X)-1] - g.X[0]
	zSpan := g.Z[len(g.Z)-1] - g.Z[0]
	scale := float64(widthPx) / xSpan
	heightPx := int(zSpan*scale) + 1

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		widthPx, heightPx, widthPx, heightPx)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", widthPx, heightPx)
	for k := 0; k < nz; k++ {
		for i := 0; i < nx; i++ {
			id := g.Material(i, j, k)
			color, okc := materialColors[id]
			if !okc {
				color = "#ff00ff"
			}
			x0 := (g.X[i] - g.X[0]) * scale
			x1 := (g.X[i+1] - g.X[0]) * scale
			// SVG y grows downward; flip z so the substrate is at the bottom.
			z0 := (zSpan - (g.Z[k+1] - g.Z[0])) * scale
			z1 := (zSpan - (g.Z[k] - g.Z[0])) * scale
			fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"/>`+"\n",
				x0, z0, x1-x0, z1-z0, color)
		}
	}
	// Legend.
	ly := 14
	for _, id := range []mat.ID{mat.Silicon, mat.Copper, mat.SiCOH, mat.Tantalum, mat.SiN} {
		fmt.Fprintf(bw, `<rect x="6" y="%d" width="12" height="12" fill="%s" stroke="black" stroke-width="0.5"/>`+"\n",
			ly-10, materialColors[id])
		fmt.Fprintf(bw, `<text x="22" y="%d" font-size="11" font-family="sans-serif">%s</text>`+"\n", ly, id)
		ly += 16
	}
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

// WriteStructureSVG builds the structure for p and renders the cross-
// section through the centre of the via array.
func WriteStructureSVG(w io.Writer, p Params, widthPx int) error {
	g, v, err := Build(p)
	if err != nil {
		return err
	}
	_, cy := v.domainCenter()
	// Slice through the first via row so vias are visible; for odd single
	// vias the centre works directly.
	if v.ArrayN > 1 {
		_, cy = v.ViaCenter(0, v.ArrayN/2)
	}
	return WriteCrossSectionSVG(w, g, cy, widthPx)
}
