package cudd

import (
	"fmt"

	"emvia/internal/fem"
	"emvia/internal/mat"
	"emvia/internal/mesh"
)

// Result is the thermomechanical characterization of one via-array
// structure: the solved FE model plus the per-via peak tensile hydrostatic
// stress σ_T that the EM nucleation model consumes.
type Result struct {
	// Params echoes the (validated) structure parameters.
	Params Params
	// PeakSigmaT[j][i] is the peak hydrostatic stress (Pa) in the lower
	// metal Mx directly beneath via (i, j); vias nucleate voids at their
	// point of maximum stress (paper §2.3).
	PeakSigmaT [][]float64
	// FEM is the underlying solution, retained for line scans and plots.
	FEM *fem.Result
	// Grid is the painted mesh the solution lives on.
	Grid *mesh.Grid
}

// Characterize builds the structure, runs the thermoelastic FEA and extracts
// per-via peak stresses. It is the Go equivalent of one ABAQUS
// precharacterization run in the paper's flow.
func Characterize(p Params, opt fem.SolveOptions) (*Result, error) {
	g, p, err := Build(p)
	if err != nil {
		return nil, err
	}
	model := fem.NewModel(g, p.DeltaT())
	// The structure sits in a periodic power-grid neighbourhood: symmetry
	// rollers on the lateral faces, clamped substrate bottom, free top.
	model.SetFaceBC(fem.XMin, fem.Roller)
	model.SetFaceBC(fem.XMax, fem.Roller)
	model.SetFaceBC(fem.YMin, fem.Roller)
	model.SetFaceBC(fem.YMax, fem.Roller)
	model.SetFaceBC(fem.ZMin, fem.Clamp)
	res, err := model.Solve(opt)
	if err != nil {
		return nil, fmt.Errorf("cudd: FEA for %v %d×%d: %w", p.Pattern, p.ArrayN, p.ArrayN, err)
	}
	// The per-via tile boxes below overlap and the row scans revisit the
	// same cells, so recover every element-centre tensor once (in parallel)
	// instead of per query.
	res.PrecomputeStress(opt.Workers)

	out := &Result{Params: p, FEM: res, Grid: g}
	st := p.stack()
	s := p.viaSide()
	out.PeakSigmaT = make([][]float64, p.ArrayN)
	for j := 0; j < p.ArrayN; j++ {
		out.PeakSigmaT[j] = make([]float64, p.ArrayN)
		for i := 0; i < p.ArrayN; i++ {
			vx, vy := p.ViaCenter(i, j)
			// Peak σ_H in the Mx copper within the via's tile: the footprint
			// plus half the inter-via gap on each side, so adjacent tiles
			// share the gap-centre stress maxima symmetrically. The 2 %
			// overshoot keeps boundary cells robustly included on both sides
			// despite floating-point rounding of feature coordinates. Depth:
			// top quarter of the Mx layer, where the Cu/Si3N4 flaw interface
			// sits.
			half := s/2 + 0.51*s // footprint half-side + half-gap (gap = s)
			box := mesh.Box{
				X0: vx - half, X1: vx + half,
				Y0: vy - half, Y1: vy + half,
				Z0: st.mxTop - 0.26*(st.mxTop-st.mxBot), Z1: st.mxTop,
			}
			peak, found := res.MaxHydrostaticInBox(box, mat.Copper)
			if !found {
				return nil, fmt.Errorf("cudd: no Mx copper under via (%d,%d)", i, j)
			}
			out.PeakSigmaT[j][i] = peak
		}
	}
	return out, nil
}

// RowScan returns the σ_H profile along x through via row j of the array,
// sampled in the top sub-layer of Mx (the scans of Figs 1, 6 and 7). The
// returned x coordinates are relative to the wire start (domain x=0).
func (r *Result) RowScan(j int) (xs, sigmaH []float64) {
	_, vy := r.Params.ViaCenter(0, j)
	st := r.Params.stack()
	z := st.mxTop - 0.02*(st.mxTop-st.mxBot)
	return r.FEM.LineScanX(vy, z)
}

// MaxPeak returns the largest per-via peak stress in the array.
func (r *Result) MaxPeak() float64 {
	best := r.PeakSigmaT[0][0]
	for _, row := range r.PeakSigmaT {
		for _, v := range row {
			if v > best {
				best = v
			}
		}
	}
	return best
}

// MinPeak returns the smallest per-via peak stress in the array (the most
// protected inner via).
func (r *Result) MinPeak() float64 {
	best := r.PeakSigmaT[0][0]
	for _, row := range r.PeakSigmaT {
		for _, v := range row {
			if v < best {
				best = v
			}
		}
	}
	return best
}

// PeakFlat returns the per-via peaks flattened row-major, the layout the
// via-array reliability model consumes.
func (r *Result) PeakFlat() []float64 {
	out := make([]float64, 0, len(r.PeakSigmaT)*len(r.PeakSigmaT))
	for _, row := range r.PeakSigmaT {
		out = append(out, row...)
	}
	return out
}
