package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emvia/internal/pdn"
	"emvia/internal/phys"
)

func TestDefaultBlackCalibrated(t *testing.T) {
	b := DefaultBlack()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	got := b.MedianTTF(1e10, phys.CelsiusToKelvin(105))
	if math.Abs(got-8*phys.Year)/(8*phys.Year) > 1e-9 {
		t.Errorf("calibrated median = %g years", phys.SecondsToYears(got))
	}
}

func TestBlackValidate(t *testing.T) {
	cases := []Black{
		{A: 0, N: 2, Ea: 1e-19},
		{A: 1, N: 0, Ea: 1e-19},
		{A: 1, N: 2, Ea: 0},
		{A: 1, N: 2, Ea: 1e-19, LogSigma: -1},
	}
	for i, b := range cases {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBlackScalings(t *testing.T) {
	b := DefaultBlack()
	tk := phys.CelsiusToKelvin(105)
	// n = 2: doubling j quarters the lifetime.
	r := b.MedianTTF(1e10, tk) / b.MedianTTF(2e10, tk)
	if math.Abs(r-4) > 1e-9 {
		t.Errorf("current scaling ratio = %g, want 4", r)
	}
	// Higher temperature shortens life.
	if b.MedianTTF(1e10, phys.CelsiusToKelvin(300)) >= b.MedianTTF(1e10, tk) {
		t.Error("hotter lifetime not shorter")
	}
	if !math.IsInf(b.MedianTTF(0, tk), 1) {
		t.Error("zero current not immortal")
	}
}

func TestAccelerationFactorConsistency(t *testing.T) {
	// AF must equal the ratio of median lifetimes at the two conditions.
	b := DefaultBlack()
	jTest, tTest := 3e10, phys.CelsiusToKelvin(300)
	jUse, tUse := 1e10, phys.CelsiusToKelvin(105)
	af := b.AccelerationFactor(jTest, tTest, jUse, tUse)
	want := b.MedianTTF(jUse, tUse) / b.MedianTTF(jTest, tTest)
	if math.Abs(af-want)/want > 1e-9 {
		t.Errorf("AF = %g, lifetime ratio = %g", af, want)
	}
	if af <= 1 {
		t.Errorf("AF = %g, accelerated test must be shorter-lived", af)
	}
}

func TestAccelerationFactorProperty(t *testing.T) {
	b := DefaultBlack()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		j1 := 1e9 * (1 + 50*rng.Float64())
		j2 := 1e9 * (1 + 50*rng.Float64())
		t1 := phys.CelsiusToKelvin(50 + 300*rng.Float64())
		t2 := phys.CelsiusToKelvin(50 + 300*rng.Float64())
		// AF(a→b)·AF(b→a) = 1.
		prod := b.AccelerationFactor(j1, t1, j2, t2) * b.AccelerationFactor(j2, t2, j1, t1)
		return math.Abs(prod-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func tunedGrid(t *testing.T) *pdn.Grid {
	t.Helper()
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 8, 8
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Tune(0.065, 0.01); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestScreenCurrentDensity(t *testing.T) {
	g := tunedGrid(t)
	const viaArea = 1e-12
	// The grid was tuned so the busiest array carries 0.01 A → 1e10 A/m².
	res, err := ScreenCurrentDensity(g, viaArea, 1.2e10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != len(g.Vias) {
		t.Fatalf("entries = %d, want %d", len(res.Entries), len(g.Vias))
	}
	if res.Violations != 0 {
		t.Errorf("violations at relaxed limit = %d, want 0", res.Violations)
	}
	// Entries sorted descending; the top one is near the tuning target.
	top := res.Entries[0].J
	if math.Abs(top-1e10)/1e10 > 0.06 {
		t.Errorf("top current density = %g, want ≈ 1e10", top)
	}
	for i := 1; i < len(res.Entries); i++ {
		if res.Entries[i].J > res.Entries[i-1].J {
			t.Fatal("entries not sorted descending")
		}
	}
	// Tighten the limit: violations appear and Pass flags agree.
	strict, err := ScreenCurrentDensity(g, viaArea, 0.5e10)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Violations == 0 {
		t.Error("no violations at strict limit")
	}
	count := 0
	for _, e := range strict.Entries {
		if !e.Pass {
			count++
		}
	}
	if count != strict.Violations {
		t.Errorf("violation count mismatch: %d vs %d", count, strict.Violations)
	}
	if _, err := ScreenCurrentDensity(g, 0, 1e10); err == nil {
		t.Error("accepted zero via area")
	}
}

func TestWeakestLinkGridTTF(t *testing.T) {
	g := tunedGrid(t)
	b := DefaultBlack()
	tk := phys.CelsiusToKelvin(105)
	med, err := WeakestLinkGridTTF(g, b, 1e-12, tk, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := WeakestLinkGridTTF(g, b, 1e-12, tk, 0.003)
	if err != nil {
		t.Fatal(err)
	}
	if !(worst < med) {
		t.Errorf("0.3%%ile %g not below median %g", worst, med)
	}
	// The weakest-link grid must die before its busiest single array's
	// median (minimum of many ≤ each term).
	single := b.MedianTTF(1e10, tk)
	if med >= single {
		t.Errorf("grid median %g not below busiest-array median %g", med, single)
	}
	if med <= 0 {
		t.Errorf("median = %g", med)
	}
	// Quantile monotonicity.
	q9, err := WeakestLinkGridTTF(g, b, 1e-12, tk, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !(med < q9) {
		t.Errorf("median %g not below 90%%ile %g", med, q9)
	}
	if _, err := WeakestLinkGridTTF(g, b, 1e-12, tk, 0); err == nil {
		t.Error("accepted quantile 0")
	}
	bad := b
	bad.A = 0
	if _, err := WeakestLinkGridTTF(g, bad, 1e-12, tk, 0.5); err == nil {
		t.Error("accepted invalid model")
	}
}

func TestWeakestLinkMatchesMonteCarlo(t *testing.T) {
	// Cross-check the analytic min-lognormal quantile against brute-force
	// sampling.
	g := tunedGrid(t)
	b := DefaultBlack()
	tk := phys.CelsiusToKelvin(105)
	med, err := WeakestLinkGridTTF(g, b, 1e-12, tk, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Monte Carlo the same minimum.
	c, err := pdnCompile(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := 4000
	mins := make([]float64, n)
	for k := 0; k < n; k++ {
		minV := math.Inf(1)
		for _, j := range c {
			v := b.Dist(j, tk).Sample(rng)
			if v < minV {
				minV = v
			}
		}
		mins[k] = minV
	}
	sortFloats(mins)
	mcMed := mins[n/2]
	if math.Abs(mcMed-med)/med > 0.05 {
		t.Errorf("analytic median %g vs MC %g", med, mcMed)
	}
}

// pdnCompile returns the per-array current densities of the pristine grid.
func pdnCompile(g *pdn.Grid) ([]float64, error) {
	res, err := ScreenCurrentDensity(g, 1e-12, math.Inf(1))
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(res.Entries))
	for _, e := range res.Entries {
		if e.J > 0 {
			out = append(out, e.J)
		}
	}
	return out, nil
}

func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
