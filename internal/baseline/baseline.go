// Package baseline implements the traditional EM methodology the paper
// argues against (§1): Black's-equation lifetime models characterized at
// accelerated test conditions, and foundry current-density (j_max)
// screening. Neither sees thermomechanical stress, via-array geometry or
// redundancy; the repository's benchmarks compare them against the
// stress-aware flow.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/spice"
	"emvia/internal/stat"
)

// Black is Black's lifetime law, t50 = A·j⁻ⁿ·exp(Ea/kB·T), with a lognormal
// spread — the industry-standard EM model ([1] in the paper).
type Black struct {
	// A is the technology prefactor (units depend on N; fixed by
	// Calibrate).
	A float64
	// N is the current-density exponent (2 for nucleation-dominated Cu).
	N float64
	// Ea is the activation energy, J.
	Ea float64
	// LogSigma is the lognormal sigma of the TTF spread.
	LogSigma float64
}

// DefaultBlack returns a nucleation-dominated Cu model (n = 2,
// Ea = 0.85 eV, σ = 0.3) with A calibrated so the reference condition
// (j = 1e10 A/m² at 105 °C) has a median TTF of 8 years, matching the
// stress-aware flow's calibration point.
func DefaultBlack() Black {
	b := Black{N: 2, Ea: 0.85 * phys.ElectronVolt, LogSigma: 0.3}
	return b.Calibrate(1e10, phys.CelsiusToKelvin(105), 8*phys.Year)
}

// Validate reports the first invalid field.
func (b Black) Validate() error {
	if b.A <= 0 || math.IsNaN(b.A) {
		return fmt.Errorf("baseline: Black prefactor must be positive, got %g", b.A)
	}
	if b.N <= 0 {
		return fmt.Errorf("baseline: Black exponent must be positive, got %g", b.N)
	}
	if b.Ea <= 0 {
		return fmt.Errorf("baseline: activation energy must be positive, got %g", b.Ea)
	}
	if b.LogSigma < 0 {
		return fmt.Errorf("baseline: LogSigma must be ≥ 0, got %g", b.LogSigma)
	}
	return nil
}

// MedianTTF returns t50 in seconds at current density j (A/m²) and
// temperature tempK.
func (b Black) MedianTTF(j, tempK float64) float64 {
	if j <= 0 {
		return math.Inf(1)
	}
	return b.A * math.Pow(j, -b.N) * math.Exp(b.Ea/(phys.Boltzmann*tempK))
}

// Dist returns the lognormal TTF distribution at the given conditions.
func (b Black) Dist(j, tempK float64) stat.LogNormal {
	return stat.LogNormal{Mu: math.Log(b.MedianTTF(j, tempK)), Sigma: b.LogSigma}
}

// Calibrate returns a copy with A set so MedianTTF(j, tempK) = target
// seconds.
func (b Black) Calibrate(j, tempK, target float64) Black {
	b.A = 1
	cur := b.MedianTTF(j, tempK)
	b.A = target / cur
	return b
}

// AccelerationFactor maps an accelerated-test lifetime to use conditions:
// AF = (j_test/j_use)ⁿ · exp(Ea/kB·(1/T_use − 1/T_test)). TTF_use =
// AF · TTF_test. This is the §1 procedure whose blind spot — stress state
// differs between 300 °C characterization and 105 °C operation — motivates
// the paper.
func (b Black) AccelerationFactor(jTest, tTestK, jUse, tUseK float64) float64 {
	return math.Pow(jTest/jUse, b.N) *
		math.Exp(b.Ea/phys.Boltzmann*(1/tUseK-1/tTestK))
}

// ScreenEntry is one via array's current-density check.
type ScreenEntry struct {
	// Via identifies the array in the grid.
	Via pdn.ViaInfo
	// J is the array current density, A/m², at the DC operating point.
	J float64
	// Pass reports J ≤ the screen limit.
	Pass bool
}

// ScreenResult is a j_max screen of a power grid.
type ScreenResult struct {
	// Limit is the screening current density, A/m².
	Limit float64
	// Entries are per-array results, sorted by descending J.
	Entries []ScreenEntry
	// Violations counts failing arrays.
	Violations int
}

// ScreenCurrentDensity performs the traditional foundry check: solve the
// grid once and compare every via array's current density (total current
// over the array's copper area viaArea) against the limit. It is fast and
// geometry-blind — the point of comparison for the stress-aware flow.
func ScreenCurrentDensity(g *pdn.Grid, viaArea, limit float64) (*ScreenResult, error) {
	if viaArea <= 0 || limit <= 0 {
		return nil, fmt.Errorf("baseline: viaArea and limit must be positive")
	}
	c, err := spice.Compile(g.Netlist)
	if err != nil {
		return nil, err
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		return nil, err
	}
	res := &ScreenResult{Limit: limit}
	for _, v := range g.Vias {
		j := math.Abs(op.ResistorCurrent(v.ResistorIndex)) / viaArea
		e := ScreenEntry{Via: v, J: j, Pass: j <= limit}
		if !e.Pass {
			res.Violations++
		}
		res.Entries = append(res.Entries, e)
	}
	sort.Slice(res.Entries, func(i, j int) bool { return res.Entries[i].J > res.Entries[j].J })
	return res, nil
}

// WeakestLinkGridTTF is the full traditional flow: every via array gets an
// identical Black lifetime at its own current (no stress, no redundancy),
// and the grid dies with its first array — analytically the minimum of
// independent lognormals, evaluated here by quantile search on the exact
// min-CDF. It returns the requested quantile of the grid TTF in seconds.
func WeakestLinkGridTTF(g *pdn.Grid, b Black, viaArea, tempK, quantile float64) (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if quantile <= 0 || quantile >= 1 {
		return 0, fmt.Errorf("baseline: quantile must be in (0,1), got %g", quantile)
	}
	c, err := spice.Compile(g.Netlist)
	if err != nil {
		return 0, err
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		return 0, err
	}
	dists := make([]stat.LogNormal, 0, len(g.Vias))
	for _, v := range g.Vias {
		j := math.Abs(op.ResistorCurrent(v.ResistorIndex)) / viaArea
		if j <= 0 {
			continue // carries no current: immortal under Black
		}
		dists = append(dists, b.Dist(j, tempK))
	}
	if len(dists) == 0 {
		return math.Inf(1), nil
	}
	// F_min(t) = 1 − Π(1 − F_i(t)); bisect for F_min(t) = quantile.
	cdfMin := func(t float64) float64 {
		logSurv := 0.0
		for _, d := range dists {
			s := 1 - d.CDF(t)
			if s <= 0 {
				return 1
			}
			logSurv += math.Log(s)
		}
		return 1 - math.Exp(logSurv)
	}
	lo, hi := 1.0, 1.0
	for cdfMin(hi) < quantile {
		hi *= 2
		if hi > 1e15 {
			return math.Inf(1), nil
		}
	}
	for cdfMin(lo) > quantile {
		lo /= 2
		if lo < 1e-9 {
			break
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-6*hi; i++ {
		mid := (lo + hi) / 2
		if cdfMin(mid) < quantile {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
