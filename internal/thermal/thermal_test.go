package thermal

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	good := DefaultConfig(4, 4, 100e-6)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NX = 0 },
		func(c *Config) { c.Pitch = 0 },
		func(c *Config) { c.KSi = -1 },
		func(c *Config) { c.DieThickness = 0 },
		func(c *Config) { c.HeatsinkConductancePerArea = math.NaN() },
	}
	for i, mutate := range cases {
		c := DefaultConfig(4, 4, 100e-6)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	cfg := DefaultConfig(3, 3, 100e-6)
	if _, err := Solve(cfg, make([]float64, 4)); err == nil {
		t.Error("accepted wrong power length")
	}
	p := make([]float64, 9)
	p[0] = -1
	if _, err := Solve(cfg, p); err == nil {
		t.Error("accepted negative power")
	}
}

func TestZeroPowerIsAmbient(t *testing.T) {
	cfg := DefaultConfig(5, 5, 100e-6)
	m, err := Solve(cfg, make([]float64, 25))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		for i := 0; i < 5; i++ {
			if math.Abs(m.TempAt(i, j)-cfg.AmbientC) > 1e-9 {
				t.Fatalf("unpowered node (%d,%d) at %g °C", i, j, m.TempAt(i, j))
			}
		}
	}
}

func TestUniformPowerEnergyBalance(t *testing.T) {
	// With uniform power, no lateral flow: every node sits at P/Gsink above
	// ambient.
	cfg := DefaultConfig(6, 6, 100e-6)
	p := make([]float64, 36)
	const w = 0.02 // 20 mW per node
	for i := range p {
		p[i] = w
	}
	m, err := Solve(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	want := w / (cfg.HeatsinkConductancePerArea * cfg.Pitch * cfg.Pitch)
	for j := 0; j < 6; j++ {
		for i := 0; i < 6; i++ {
			if math.Abs(m.RiseAt(i, j)-want)/want > 1e-6 {
				t.Fatalf("uniform rise at (%d,%d) = %g, want %g", i, j, m.RiseAt(i, j), want)
			}
		}
	}
	if math.Abs(m.MeanTemp()-m.MaxTemp()) > 1e-6 {
		t.Error("uniform field has mean ≠ max")
	}
}

func TestHotspotDecaysWithDistance(t *testing.T) {
	cfg := DefaultConfig(9, 9, 100e-6)
	p := make([]float64, 81)
	p[4*9+4] = 0.5 // 0.5 W at the centre
	m, err := Solve(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	centre := m.RiseAt(4, 4)
	if centre <= 0 {
		t.Fatalf("centre rise %g", centre)
	}
	prev := centre
	for d := 1; d <= 4; d++ {
		r := m.RiseAt(4+d, 4)
		if r >= prev {
			t.Errorf("rise not decaying at distance %d: %g ≥ %g", d, r, prev)
		}
		if r <= 0 {
			t.Errorf("rise negative at distance %d: %g", d, r)
		}
		prev = r
	}
	if got := m.MaxTemp(); math.Abs(got-(cfg.AmbientC+centre)) > 1e-9 {
		t.Errorf("MaxTemp = %g, want ambient+centre", got)
	}
	// Total heat balance: Σ Gsink·ΔT = Σ P.
	gs := cfg.HeatsinkConductancePerArea * cfg.Pitch * cfg.Pitch
	sunk := 0.0
	for j := 0; j < 9; j++ {
		for i := 0; i < 9; i++ {
			sunk += gs * m.RiseAt(i, j)
		}
	}
	if math.Abs(sunk-0.5)/0.5 > 1e-6 {
		t.Errorf("energy balance: sunk %g W, injected 0.5 W", sunk)
	}
}

func TestSymmetryOfCentredHotspot(t *testing.T) {
	cfg := DefaultConfig(7, 7, 100e-6)
	p := make([]float64, 49)
	p[3*7+3] = 0.1
	m, err := Solve(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= 3; d++ {
		r := []float64{m.RiseAt(3+d, 3), m.RiseAt(3-d, 3), m.RiseAt(3, 3+d), m.RiseAt(3, 3-d)}
		for k := 1; k < 4; k++ {
			if math.Abs(r[k]-r[0]) > 1e-9*r[0] {
				t.Fatalf("asymmetric field at distance %d: %v", d, r)
			}
		}
	}
}
