// Package thermal computes steady-state die temperature maps for power
// grids: Joule self-heating of the wires and via arrays plus switching
// power of the loads, spread laterally through the die and sunk vertically
// through the substrate/package. The EM nucleation model is strongly
// temperature-dependent (D_eff is Arrhenius, σ_T is linear in T − T_sf), so
// per-via-array temperatures refine the paper's uniform worst-case 105 °C
// assumption into a local one.
//
// The model is a standard compact thermal RC network on the grid's
// intersection lattice: node (i, j) couples to its four neighbours with a
// lateral spreading conductance and to the heatsink with a vertical
// conductance; the SPD system G·ΔT = P is solved on the shared sparse/CG
// stack.
package thermal

import (
	"fmt"
	"math"

	"emvia/internal/solver"
	"emvia/internal/sparse"
)

// Config parameterizes the compact thermal network.
type Config struct {
	// NX, NY are the lattice dimensions (one node per grid intersection).
	NX, NY int
	// Pitch is the lattice spacing, m.
	Pitch float64
	// AmbientC is the heatsink/ambient reference temperature, °C.
	AmbientC float64
	// KSi is the effective lateral thermal conductivity of the die,
	// W/(m·K); silicon ≈ 120 at hot-chip temperatures.
	KSi float64
	// DieThickness is the thermally active silicon thickness, m.
	DieThickness float64
	// HeatsinkConductancePerArea is the vertical conductance to ambient
	// per die area, W/(K·m²); package-dependent, ~1e4–1e6.
	HeatsinkConductancePerArea float64
}

// DefaultConfig returns a worst-case-analysis package environment: 90 °C
// at the sink (hot die, consistent with the EM model's 100–105 °C
// characterization band), 300 µm die, moderate heatsinking.
func DefaultConfig(nx, ny int, pitch float64) Config {
	return Config{
		NX:                         nx,
		NY:                         ny,
		Pitch:                      pitch,
		AmbientC:                   90,
		KSi:                        120,
		DieThickness:               300e-6,
		HeatsinkConductancePerArea: 2e5,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NX < 1 || c.NY < 1 {
		return fmt.Errorf("thermal: lattice %d×%d invalid", c.NX, c.NY)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Pitch", c.Pitch}, {"KSi", c.KSi}, {"DieThickness", c.DieThickness},
		{"HeatsinkConductancePerArea", c.HeatsinkConductancePerArea},
	} {
		if f.v <= 0 || math.IsNaN(f.v) {
			return fmt.Errorf("thermal: %s must be positive, got %g", f.name, f.v)
		}
	}
	return nil
}

// lateralConductance returns the node-to-node spreading conductance:
// k·A/L with A = pitch × die thickness and L = pitch, i.e. k·t.
func (c Config) lateralConductance() float64 {
	return c.KSi * c.DieThickness
}

// sinkConductance returns the per-node vertical conductance to ambient.
func (c Config) sinkConductance() float64 {
	return c.HeatsinkConductancePerArea * c.Pitch * c.Pitch
}

// Map is a solved temperature field on the lattice.
type Map struct {
	cfg Config
	// riseK[j*NX+i] is the temperature rise over ambient at node (i,j), K.
	riseK []float64
}

// Solve computes the temperature map for per-node power dissipation
// power[j*NX+i] in watts.
func Solve(cfg Config, power []float64) (*Map, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NX * cfg.NY
	if len(power) != n {
		return nil, fmt.Errorf("thermal: power vector has %d entries, want %d", len(power), n)
	}
	for i, p := range power {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("thermal: negative or NaN power %g at node %d", p, i)
		}
	}
	gl := cfg.lateralConductance()
	gs := cfg.sinkConductance()
	tr := sparse.NewTriplet(n, n, 5*n)
	idx := func(i, j int) int { return j*cfg.NX + i }
	for j := 0; j < cfg.NY; j++ {
		for i := 0; i < cfg.NX; i++ {
			k := idx(i, j)
			tr.Add(k, k, gs)
			if i+1 < cfg.NX {
				k2 := idx(i+1, j)
				tr.Add(k, k, gl)
				tr.Add(k2, k2, gl)
				tr.Add(k, k2, -gl)
				tr.Add(k2, k, -gl)
			}
			if j+1 < cfg.NY {
				k2 := idx(i, j+1)
				tr.Add(k, k, gl)
				tr.Add(k2, k2, gl)
				tr.Add(k, k2, -gl)
				tr.Add(k2, k, -gl)
			}
		}
	}
	a := tr.ToCSR()
	rise, _, err := solver.CG(a, power, solver.Options{
		Tol: 1e-10,
		M:   solver.NewAutoPreconditioner(a),
	})
	if err != nil {
		return nil, fmt.Errorf("thermal: solve: %w", err)
	}
	return &Map{cfg: cfg, riseK: rise}, nil
}

// RiseAt returns the temperature rise over ambient at node (i, j), K.
func (m *Map) RiseAt(i, j int) float64 {
	return m.riseK[j*m.cfg.NX+i]
}

// TempAt returns the absolute temperature at node (i, j), °C.
func (m *Map) TempAt(i, j int) float64 {
	return m.cfg.AmbientC + m.RiseAt(i, j)
}

// MaxTemp returns the hottest node temperature, °C.
func (m *Map) MaxTemp() float64 {
	max := math.Inf(-1)
	for _, r := range m.riseK {
		if r > max {
			max = r
		}
	}
	return m.cfg.AmbientC + max
}

// MeanTemp returns the area-average temperature, °C.
func (m *Map) MeanTemp() float64 {
	s := 0.0
	for _, r := range m.riseK {
		s += r
	}
	return m.cfg.AmbientC + s/float64(len(m.riseK))
}
