package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emvia/internal/mat"
)

func mustGrid(t *testing.T, x, y, z []float64) *Grid {
	t.Helper()
	g, err := New(x, y, z)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestLinesSnapsAndSubdivides(t *testing.T) {
	got := Lines([]float64{0, 1, 0.5}, 0.3, 1e-12)
	// Intervals [0,0.5] and [0.5,1] each need 2 subdivisions at step 0.3.
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(got) != len(want) {
		t.Fatalf("Lines = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Lines[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestLinesMergesCloseFeatures(t *testing.T) {
	got := Lines([]float64{0, 1e-15, 1}, 0, 1e-12)
	if len(got) != 2 {
		t.Fatalf("Lines = %v, want 2 entries", got)
	}
}

func TestLinesEmptyAndNoMaxStep(t *testing.T) {
	if got := Lines(nil, 1, 1e-12); got != nil {
		t.Errorf("Lines(nil) = %v", got)
	}
	got := Lines([]float64{2, 0, 1}, 0, 1e-12)
	want := []float64{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Lines no-substep = %v, want %v", got, want)
		}
	}
}

func TestLinesPreservesFeatures(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		feats := make([]float64, n)
		for i := range feats {
			feats[i] = rng.Float64() * 10
		}
		step := 0.1 + rng.Float64()
		lines := Lines(feats, step, 1e-9)
		// Every feature must appear (within snap tolerance) and steps obey max.
		for _, ft := range feats {
			found := false
			for _, l := range lines {
				if math.Abs(l-ft) <= 1e-9+1e-12*math.Abs(ft) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		for i := 1; i < len(lines); i++ {
			d := lines[i] - lines[i-1]
			if d <= 0 || d > step*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]float64{0}, []float64{0, 1}, []float64{0, 1}); err == nil {
		t.Error("accepted single grid line")
	}
	if _, err := New([]float64{0, 0}, []float64{0, 1}, []float64{0, 1}); err == nil {
		t.Error("accepted non-ascending lines")
	}
}

func TestIndexRoundTrips(t *testing.T) {
	g := mustGrid(t, []float64{0, 1, 2, 3}, []float64{0, 1, 2}, []float64{0, 1})
	nx, ny, nz := g.CellDims()
	if nx != 3 || ny != 2 || nz != 1 {
		t.Fatalf("CellDims = %d,%d,%d", nx, ny, nz)
	}
	seen := map[int]bool{}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				id := g.CellID(i, j, k)
				if seen[id] {
					t.Fatalf("duplicate cell id %d", id)
				}
				seen[id] = true
				ri, rj, rk := g.CellCoords(id)
				if ri != i || rj != j || rk != k {
					t.Fatalf("CellCoords(%d) = %d,%d,%d, want %d,%d,%d", id, ri, rj, rk, i, j, k)
				}
			}
		}
	}
	if len(seen) != g.NumCells() {
		t.Errorf("visited %d cells, want %d", len(seen), g.NumCells())
	}
	nnx, nny, nnz := g.NodeDims()
	for k := 0; k < nnz; k++ {
		for j := 0; j < nny; j++ {
			for i := 0; i < nnx; i++ {
				id := g.NodeID(i, j, k)
				ri, rj, rk := g.NodeCoords(id)
				if ri != i || rj != j || rk != k {
					t.Fatalf("NodeCoords(%d) mismatch", id)
				}
			}
		}
	}
}

func TestPaintAndCount(t *testing.T) {
	g := mustGrid(t, []float64{0, 1, 2}, []float64{0, 1, 2}, []float64{0, 1, 2})
	g.Paint(Box{0, 2, 0, 2, 0, 2}, mat.SiCOH)
	if got := g.CountMaterial(mat.SiCOH); got != 8 {
		t.Errorf("painted all: count = %d, want 8", got)
	}
	g.Paint(Box{0, 1, 0, 1, 0, 1}, mat.Copper)
	if got := g.CountMaterial(mat.Copper); got != 1 {
		t.Errorf("copper count = %d, want 1", got)
	}
	if got := g.Material(0, 0, 0); got != mat.Copper {
		t.Errorf("Material(0,0,0) = %v, want Cu", got)
	}
	if got := g.Material(1, 1, 1); got != mat.SiCOH {
		t.Errorf("Material(1,1,1) = %v, want SiCOH", got)
	}
}

func TestFindCell(t *testing.T) {
	g := mustGrid(t, []float64{0, 1, 2}, []float64{0, 2}, []float64{0, 3})
	cases := []struct {
		x, y, z float64
		i       int
		ok      bool
	}{
		{0.5, 1, 1, 0, true},
		{1.5, 1, 1, 1, true},
		{1.0, 1, 1, 1, true}, // interior grid line → higher cell
		{2.0, 1, 1, 1, true}, // domain max → last cell
		{-0.1, 1, 1, 0, false},
		{2.1, 1, 1, 0, false},
	}
	for _, c := range cases {
		i, _, _, ok := g.FindCell(c.x, c.y, c.z)
		if ok != c.ok || (ok && i != c.i) {
			t.Errorf("FindCell(%g) = i=%d ok=%v, want i=%d ok=%v", c.x, i, ok, c.i, c.ok)
		}
	}
}

func TestFindCellPropertyConsistentWithCenter(t *testing.T) {
	g := mustGrid(t, Lines([]float64{0, 3}, 0.5, 1e-12), Lines([]float64{0, 2}, 0.4, 1e-12), Lines([]float64{0, 1}, 0.3, 1e-12))
	nx, ny, nz := g.CellDims()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				cx, cy, cz := g.CellCenter(i, j, k)
				ri, rj, rk, ok := g.FindCell(cx, cy, cz)
				if !ok || ri != i || rj != j || rk != k {
					t.Fatalf("FindCell(center of %d,%d,%d) = %d,%d,%d ok=%v", i, j, k, ri, rj, rk, ok)
				}
			}
		}
	}
}

func TestCellNodesOrientation(t *testing.T) {
	g := mustGrid(t, []float64{0, 1, 2}, []float64{0, 1, 2}, []float64{0, 1, 2})
	n := g.CellNodes(0, 0, 0)
	// Node 0 at origin, node 6 at opposite corner (1,1,1).
	x, y, z := g.NodePos(g.NodeCoords(n[0]))
	if x != 0 || y != 0 || z != 0 {
		t.Errorf("node 0 at (%g,%g,%g), want origin", x, y, z)
	}
	x, y, z = g.NodePos(g.NodeCoords(n[6]))
	if x != 1 || y != 1 || z != 1 {
		t.Errorf("node 6 at (%g,%g,%g), want (1,1,1)", x, y, z)
	}
	// All eight distinct.
	seen := map[int]bool{}
	for _, id := range n {
		if seen[id] {
			t.Fatal("duplicate node in CellNodes")
		}
		seen[id] = true
	}
}

func TestCellSizeAndCenter(t *testing.T) {
	g := mustGrid(t, []float64{0, 0.5, 2}, []float64{0, 1}, []float64{0, 3})
	dx, dy, dz := g.CellSize(1, 0, 0)
	if dx != 1.5 || dy != 1 || dz != 3 {
		t.Errorf("CellSize = %g,%g,%g", dx, dy, dz)
	}
	cx, cy, cz := g.CellCenter(1, 0, 0)
	if cx != 1.25 || cy != 0.5 || cz != 1.5 {
		t.Errorf("CellCenter = %g,%g,%g", cx, cy, cz)
	}
}

func TestCellIDPanicsOutOfRange(t *testing.T) {
	g := mustGrid(t, []float64{0, 1}, []float64{0, 1}, []float64{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("CellID out of range did not panic")
		}
	}()
	g.CellID(1, 0, 0)
}
