// Package mesh builds the rectilinear (tensor-product) 3-D hexahedral meshes
// used by the finite-element thermomechanical solver.
//
// Cu dual-damascene structures are unions of axis-aligned boxes (layers,
// wires, vias, liners), so a rectilinear grid whose lines are snapped to
// every material feature edge meshes them exactly: each cell holds a single
// material. Grid lines between features are subdivided to a caller-chosen
// maximum step so the element aspect ratios stay sane.
package mesh

import (
	"fmt"
	"math"
	"sort"

	"emvia/internal/mat"
)

// Lines produces ascending grid-line coordinates covering every feature
// coordinate exactly, with extra lines inserted so no interval exceeds
// maxStep. Feature values closer than snapTol are merged (first wins).
func Lines(features []float64, maxStep, snapTol float64) []float64 {
	if len(features) == 0 {
		return nil
	}
	f := make([]float64, len(features))
	copy(f, features)
	sort.Float64s(f)
	uniq := f[:1]
	for _, v := range f[1:] {
		if v-uniq[len(uniq)-1] > snapTol {
			uniq = append(uniq, v)
		}
	}
	if maxStep <= 0 {
		return uniq
	}
	var out []float64
	for i := 0; i < len(uniq)-1; i++ {
		a, b := uniq[i], uniq[i+1]
		n := int(math.Ceil((b - a) / maxStep))
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			out = append(out, a+(b-a)*float64(k)/float64(n))
		}
	}
	out = append(out, uniq[len(uniq)-1])
	return out
}

// Grid is a rectilinear hexahedral mesh. X, Y, Z hold the ascending grid-line
// coordinates; cell (i,j,k) spans [X[i],X[i+1]]×[Y[j],Y[j+1]]×[Z[k],Z[k+1]]
// and carries one material. Cells marked mat.None are holes excluded from
// the FE model.
type Grid struct {
	X, Y, Z []float64
	cellMat []mat.ID
}

// New builds a grid from grid-line coordinate slices (each ascending, length
// ≥ 2). All cells start as mat.None.
func New(x, y, z []float64) (*Grid, error) {
	for _, ax := range []struct {
		name string
		c    []float64
	}{{"x", x}, {"y", y}, {"z", z}} {
		if len(ax.c) < 2 {
			return nil, fmt.Errorf("mesh: axis %s needs ≥ 2 grid lines, got %d", ax.name, len(ax.c))
		}
		for i := 1; i < len(ax.c); i++ {
			if ax.c[i] <= ax.c[i-1] {
				return nil, fmt.Errorf("mesh: axis %s grid lines not strictly ascending at %d", ax.name, i)
			}
		}
	}
	g := &Grid{X: x, Y: y, Z: z}
	g.cellMat = make([]mat.ID, g.NumCells())
	return g, nil
}

// CellDims returns the number of cells along each axis.
func (g *Grid) CellDims() (nx, ny, nz int) {
	return len(g.X) - 1, len(g.Y) - 1, len(g.Z) - 1
}

// NodeDims returns the number of nodes along each axis.
func (g *Grid) NodeDims() (nx, ny, nz int) {
	return len(g.X), len(g.Y), len(g.Z)
}

// NumCells returns the total cell count.
func (g *Grid) NumCells() int {
	nx, ny, nz := g.CellDims()
	return nx * ny * nz
}

// NumNodes returns the total node count.
func (g *Grid) NumNodes() int {
	nx, ny, nz := g.NodeDims()
	return nx * ny * nz
}

// CellID maps cell coordinates to a linear index (x fastest).
func (g *Grid) CellID(i, j, k int) int {
	nx, ny, nz := g.CellDims()
	if i < 0 || i >= nx || j < 0 || j >= ny || k < 0 || k >= nz {
		panic(fmt.Sprintf("mesh: cell (%d,%d,%d) out of range %d×%d×%d", i, j, k, nx, ny, nz))
	}
	return (k*ny+j)*nx + i
}

// CellCoords inverts CellID.
func (g *Grid) CellCoords(id int) (i, j, k int) {
	nx, ny, _ := g.CellDims()
	i = id % nx
	j = (id / nx) % ny
	k = id / (nx * ny)
	return i, j, k
}

// NodeID maps node coordinates to a linear index (x fastest).
func (g *Grid) NodeID(i, j, k int) int {
	nx, ny, nz := g.NodeDims()
	if i < 0 || i >= nx || j < 0 || j >= ny || k < 0 || k >= nz {
		panic(fmt.Sprintf("mesh: node (%d,%d,%d) out of range %d×%d×%d", i, j, k, nx, ny, nz))
	}
	return (k*ny+j)*nx + i
}

// NodeCoords inverts NodeID.
func (g *Grid) NodeCoords(id int) (i, j, k int) {
	nx, ny, _ := g.NodeDims()
	i = id % nx
	j = (id / nx) % ny
	k = id / (nx * ny)
	return i, j, k
}

// NodePos returns the physical coordinates of node (i,j,k).
func (g *Grid) NodePos(i, j, k int) (x, y, z float64) {
	return g.X[i], g.Y[j], g.Z[k]
}

// Material returns the material of cell (i,j,k).
func (g *Grid) Material(i, j, k int) mat.ID {
	return g.cellMat[g.CellID(i, j, k)]
}

// SetMaterial assigns the material of cell (i,j,k).
func (g *Grid) SetMaterial(i, j, k int, id mat.ID) {
	g.cellMat[g.CellID(i, j, k)] = id
}

// CellCenter returns the centroid of cell (i,j,k).
func (g *Grid) CellCenter(i, j, k int) (x, y, z float64) {
	return (g.X[i] + g.X[i+1]) / 2, (g.Y[j] + g.Y[j+1]) / 2, (g.Z[k] + g.Z[k+1]) / 2
}

// CellSize returns the edge lengths of cell (i,j,k).
func (g *Grid) CellSize(i, j, k int) (dx, dy, dz float64) {
	return g.X[i+1] - g.X[i], g.Y[j+1] - g.Y[j], g.Z[k+1] - g.Z[k]
}

// Box is an axis-aligned box used for material painting.
type Box struct {
	X0, X1, Y0, Y1, Z0, Z1 float64
}

// Contains reports whether point (x,y,z) lies inside the box.
func (b Box) Contains(x, y, z float64) bool {
	return x >= b.X0 && x <= b.X1 && y >= b.Y0 && y <= b.Y1 && z >= b.Z0 && z <= b.Z1
}

// Paint assigns material id to every cell whose center lies inside the box.
// Later paints overwrite earlier ones, so structures are built back-to-front
// (e.g. ILD slab first, then wires, then liner, then via fill).
func (g *Grid) Paint(b Box, id mat.ID) {
	nx, ny, nz := g.CellDims()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				cx, cy, cz := g.CellCenter(i, j, k)
				if b.Contains(cx, cy, cz) {
					g.cellMat[g.CellID(i, j, k)] = id
				}
			}
		}
	}
}

// CountMaterial returns how many cells carry material id.
func (g *Grid) CountMaterial(id mat.ID) int {
	n := 0
	for _, m := range g.cellMat {
		if m == id {
			n++
		}
	}
	return n
}

// FindCell locates the cell containing point (x,y,z), or ok=false if the
// point is outside the grid. Points on interior grid lines belong to the
// higher cell; the domain maximum belongs to the last cell.
func (g *Grid) FindCell(x, y, z float64) (i, j, k int, ok bool) {
	i, ok = findInterval(g.X, x)
	if !ok {
		return 0, 0, 0, false
	}
	j, ok = findInterval(g.Y, y)
	if !ok {
		return 0, 0, 0, false
	}
	k, ok = findInterval(g.Z, z)
	if !ok {
		return 0, 0, 0, false
	}
	return i, j, k, true
}

func findInterval(lines []float64, v float64) (int, bool) {
	if v < lines[0] || v > lines[len(lines)-1] {
		return 0, false
	}
	if v == lines[len(lines)-1] {
		return len(lines) - 2, true
	}
	return sort.SearchFloat64s(lines, math.Nextafter(v, math.Inf(1))) - 1, true
}

// CellNodes returns the eight node IDs of cell (i,j,k) in the standard hex8
// ordering: bottom face counter-clockwise (z=k), then top face (z=k+1).
func (g *Grid) CellNodes(i, j, k int) [8]int {
	return [8]int{
		g.NodeID(i, j, k),
		g.NodeID(i+1, j, k),
		g.NodeID(i+1, j+1, k),
		g.NodeID(i, j+1, k),
		g.NodeID(i, j, k+1),
		g.NodeID(i+1, j, k+1),
		g.NodeID(i+1, j+1, k+1),
		g.NodeID(i, j+1, k+1),
	}
}
