package sparse

import (
	"math/rand"
	"testing"
)

// grid5pt builds the 5-point Laplacian of an n×n grid, the sparsity class of
// the power-grid conductance systems.
func grid5pt(n int) *CSR {
	tr := NewTriplet(n*n, n*n, 5*n*n)
	idx := func(i, j int) int { return j*n + i }
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			k := idx(i, j)
			tr.Add(k, k, 4)
			if i+1 < n {
				tr.Add(k, idx(i+1, j), -1)
				tr.Add(idx(i+1, j), k, -1)
			}
			if j+1 < n {
				tr.Add(k, idx(i, j+1), -1)
				tr.Add(idx(i, j+1), k, -1)
			}
		}
	}
	return tr.ToCSR()
}

func BenchmarkSpMV(b *testing.B) {
	m := grid5pt(100) // 10k unknowns
	x := make([]float64, 10000)
	y := make([]float64, 10000)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecTo(y, x)
	}
}

func BenchmarkTripletToCSR(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		grid5pt(60)
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := grid5pt(80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transpose()
	}
}
