package sparse

import "testing"

// slotFixture builds the 3×3 CSR
//
//	[ 2 -1  0 ]
//	[-1  2 -1 ]
//	[ 0 -1  2 ]
//
// whose pattern the slot API operates on.
func slotFixture() *CSR {
	tr := NewTriplet(3, 3, 9)
	for i := 0; i < 3; i++ {
		tr.Add(i, i, 2)
		if i > 0 {
			tr.Add(i, i-1, -1)
		}
		if i < 3-1 {
			tr.Add(i, i+1, -1)
		}
	}
	return tr.ToCSR()
}

func TestSlotIndex(t *testing.T) {
	m := slotFixture()
	seen := make(map[int]bool)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := m.SlotIndex(i, j)
			inPattern := i == j || i == j+1 || i == j-1
			if inPattern {
				if s < 0 || s >= m.NNZ() {
					t.Errorf("SlotIndex(%d,%d) = %d, want valid slot", i, j, s)
				}
				if seen[s] {
					t.Errorf("SlotIndex(%d,%d) = %d reused", i, j, s)
				}
				seen[s] = true
				if got := m.ValueAt(s); got != m.At(i, j) {
					t.Errorf("ValueAt(slot(%d,%d)) = %g, want %g", i, j, got, m.At(i, j))
				}
			} else if s != -1 {
				t.Errorf("SlotIndex(%d,%d) = %d for structural zero, want -1", i, j, s)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SlotIndex accepted out-of-range coordinates")
		}
	}()
	m.SlotIndex(3, 0)
}

func TestSlotEditsMatchAt(t *testing.T) {
	m := slotFixture()
	s01 := m.SlotIndex(0, 1)
	m.AddAt(s01, 0.5)
	if got := m.At(0, 1); got != -0.5 {
		t.Errorf("after AddAt: At(0,1) = %g, want -0.5", got)
	}
	m.SetAt(s01, 7)
	if got := m.At(0, 1); got != 7 {
		t.Errorf("after SetAt: At(0,1) = %g, want 7", got)
	}
	// Neighbouring entries are untouched.
	if m.At(0, 0) != 2 || m.At(1, 1) != 2 {
		t.Error("slot edit leaked into other entries")
	}
}

func TestZeroValuesKeepsPattern(t *testing.T) {
	m := slotFixture()
	nnz := m.NNZ()
	m.ZeroValues()
	if m.NNZ() != nnz {
		t.Errorf("ZeroValues changed NNZ %d → %d", nnz, m.NNZ())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %g after ZeroValues", i, j, m.At(i, j))
			}
		}
	}
	// Slots survive zeroing: refill through them.
	s := m.SlotIndex(1, 1)
	m.SetAt(s, 4)
	if m.At(1, 1) != 4 {
		t.Error("slot stale after ZeroValues")
	}
}

func TestCopySetValuesRoundTrip(t *testing.T) {
	m := slotFixture()
	snap := make([]float64, m.NNZ())
	m.CopyValues(snap)
	m.SetAt(m.SlotIndex(2, 2), 99)
	m.ZeroValues()
	m.SetValues(snap)
	want := slotFixture()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != want.At(i, j) {
				t.Errorf("At(%d,%d) = %g after restore, want %g", i, j, m.At(i, j), want.At(i, j))
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("CopyValues accepted wrong-length destination")
		}
	}()
	m.CopyValues(make([]float64, 2))
}

func TestSetValuesLengthPanics(t *testing.T) {
	m := slotFixture()
	defer func() {
		if recover() == nil {
			t.Error("SetValues accepted wrong-length source")
		}
	}()
	m.SetValues(make([]float64, m.NNZ()+1))
}
