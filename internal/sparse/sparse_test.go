package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTripletToCSRBasic(t *testing.T) {
	tr := NewTriplet(3, 3, 0)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, 2)
	tr.Add(2, 2, 3)
	tr.Add(0, 2, 4)
	tr.Add(2, 0, 5)
	m := tr.ToCSR()
	if r, c := m.Dims(); r != 3 || c != 3 {
		t.Fatalf("Dims = %d×%d, want 3×3", r, c)
	}
	want := [][]float64{{1, 0, 4}, {0, 2, 0}, {5, 0, 3}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got := m.At(i, j); got != want[i][j] {
				t.Errorf("At(%d,%d) = %g, want %g", i, j, got, want[i][j])
			}
		}
	}
	if m.NNZ() != 5 {
		t.Errorf("NNZ = %d, want 5", m.NNZ())
	}
}

func TestTripletDuplicatesSum(t *testing.T) {
	tr := NewTriplet(2, 2, 0)
	for i := 0; i < 10; i++ {
		tr.Add(0, 1, 0.5)
		tr.Add(1, 1, -0.25)
	}
	m := tr.ToCSR()
	if got := m.At(0, 1); math.Abs(got-5) > 1e-12 {
		t.Errorf("summed duplicate At(0,1) = %g, want 5", got)
	}
	if got := m.At(1, 1); math.Abs(got+2.5) > 1e-12 {
		t.Errorf("summed duplicate At(1,1) = %g, want -2.5", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ after dedup = %d, want 2", m.NNZ())
	}
}

func TestAddZeroIsNoop(t *testing.T) {
	tr := NewTriplet(2, 2, 0)
	tr.Add(0, 0, 0)
	if tr.NNZ() != 0 {
		t.Errorf("NNZ after adding zero = %d, want 0", tr.NNZ())
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	tr := NewTriplet(2, 2, 0)
	tr.Add(2, 0, 1)
}

func TestEmptyMatrix(t *testing.T) {
	tr := NewTriplet(4, 3, 0)
	m := tr.ToCSR()
	x := []float64{1, 2, 3}
	y := m.MulVec(x)
	for i, v := range y {
		if v != 0 {
			t.Errorf("empty matrix MulVec[%d] = %g, want 0", i, v)
		}
	}
	if m.NNZ() != 0 {
		t.Errorf("NNZ = %d, want 0", m.NNZ())
	}
}

// randomTriplet builds a random matrix in both triplet and dense form.
func randomTriplet(rng *rand.Rand, r, c, adds int) (*Triplet, []float64) {
	tr := NewTriplet(r, c, adds)
	dense := make([]float64, r*c)
	for k := 0; k < adds; k++ {
		i, j := rng.Intn(r), rng.Intn(c)
		v := rng.NormFloat64()
		tr.Add(i, j, v)
		dense[i*c+j] += v
	}
	return tr, dense
}

func TestCSRMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		r, c := 1+rng.Intn(12), 1+rng.Intn(12)
		tr, dense := randomTriplet(rng, r, c, rng.Intn(60))
		m := tr.ToCSR()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if got, want := m.At(i, j), dense[i*c+j]; math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d: At(%d,%d) = %g, want %g", trial, i, j, got, want)
				}
			}
		}
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		tr, dense := randomTriplet(rng, r, c, rng.Intn(50))
		m := tr.ToCSR()
		x := make([]float64, c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := m.MulVec(x)
		for i := 0; i < r; i++ {
			want := 0.0
			for j := 0; j < c; j++ {
				want += dense[i*c+j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-9 {
				t.Fatalf("trial %d: MulVec[%d] = %g, want %g", trial, i, y[i], want)
			}
		}
	}
}

func TestTransposeProperty(t *testing.T) {
	// Property: (Aᵀ)ᵀ = A and yᵀ(Ax) = (Aᵀy)ᵀx for random matrices.
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		r, c := 1+lr.Intn(10), 1+lr.Intn(10)
		tr, _ := randomTriplet(lr, r, c, lr.Intn(40))
		m := tr.ToCSR()
		tt := m.Transpose().Transpose()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if math.Abs(m.At(i, j)-tt.At(i, j)) > 1e-12 {
					return false
				}
			}
		}
		x := make([]float64, c)
		y := make([]float64, r)
		for i := range x {
			x[i] = lr.NormFloat64()
		}
		for i := range y {
			y[i] = lr.NormFloat64()
		}
		ax := m.MulVec(x)
		aty := m.Transpose().MulVec(y)
		lhs, rhs := 0.0, 0.0
		for i := range y {
			lhs += y[i] * ax[i]
		}
		for j := range x {
			rhs += aty[j] * x[j]
		}
		return math.Abs(lhs-rhs) <= 1e-8*(1+math.Abs(lhs))
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDiagonal(t *testing.T) {
	tr := NewTriplet(3, 3, 0)
	tr.Add(0, 0, 7)
	tr.Add(1, 2, 1)
	tr.Add(2, 2, -3)
	m := tr.ToCSR()
	d := m.Diagonal()
	want := []float64{7, 0, -3}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Diagonal[%d] = %g, want %g", i, d[i], want[i])
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	tr := NewTriplet(3, 3, 0)
	tr.Add(0, 1, 2)
	tr.Add(1, 0, 2)
	tr.Add(2, 2, 1)
	if !tr.ToCSR().IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	tr.Add(0, 2, 1)
	if tr.ToCSR().IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
}

func TestLowerTriangle(t *testing.T) {
	tr := NewTriplet(3, 3, 0)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			tr.Add(i, j, float64(10*i+j+1))
		}
	}
	low := tr.ToCSR().LowerTriangle()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if j <= i {
				want = float64(10*i + j + 1)
			}
			if got := low.At(i, j); got != want {
				t.Errorf("LowerTriangle At(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestScaleAndClone(t *testing.T) {
	tr := NewTriplet(2, 2, 0)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, 2)
	m := tr.ToCSR()
	cl := m.Clone()
	m.Scale(3)
	if m.At(1, 1) != 6 {
		t.Errorf("Scale: At(1,1) = %g, want 6", m.At(1, 1))
	}
	if cl.At(1, 1) != 2 {
		t.Errorf("Clone mutated by Scale: At(1,1) = %g, want 2", cl.At(1, 1))
	}
}

func TestMulVecToDimensionPanics(t *testing.T) {
	m := NewTriplet(2, 3, 0).ToCSR()
	defer func() {
		if recover() == nil {
			t.Fatal("MulVecTo with bad dims did not panic")
		}
	}()
	m.MulVecTo(make([]float64, 2), make([]float64, 2))
}
