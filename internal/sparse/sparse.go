// Package sparse provides the compressed sparse row (CSR) matrix type and a
// coordinate-format builder used by the finite-element and circuit solvers.
//
// Go has no mature sparse linear-algebra ecosystem, so this package
// implements the small set of operations the repository needs: duplicate-
// summing triplet assembly, matrix–vector products, transpose, diagonal
// extraction and row scaling. Matrices are real and row-major; the symmetric
// positive-definite systems produced by FEM stiffness assembly and power-grid
// nodal analysis store both triangles explicitly.
package sparse

import (
	"fmt"
	"sort"
)

// Triplet accumulates matrix entries in coordinate (COO) form. Duplicate
// entries at the same (row, col) are summed when converting to CSR, which is
// exactly the semantics of finite-element and nodal-analysis "stamping".
type Triplet struct {
	nrows, ncols int
	rows, cols   []int
	vals         []float64
}

// NewTriplet returns an empty r×c triplet accumulator with capacity for nnz
// entries (nnz may be 0 if unknown).
func NewTriplet(r, c, nnz int) *Triplet {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("sparse: negative dimensions %d×%d", r, c))
	}
	return &Triplet{
		nrows: r,
		ncols: c,
		rows:  make([]int, 0, nnz),
		cols:  make([]int, 0, nnz),
		vals:  make([]float64, 0, nnz),
	}
}

// Dims returns the matrix dimensions.
func (t *Triplet) Dims() (r, c int) { return t.nrows, t.ncols }

// NNZ returns the number of accumulated (possibly duplicate) entries.
func (t *Triplet) NNZ() int { return len(t.vals) }

// Add accumulates v at position (i, j). Adding zero is a no-op so callers can
// stamp without branching.
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.nrows || j < 0 || j >= t.ncols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %d×%d", i, j, t.nrows, t.ncols))
	}
	if v == 0 {
		return
	}
	t.rows = append(t.rows, i)
	t.cols = append(t.cols, j)
	t.vals = append(t.vals, v)
}

// ToCSR compresses the triplets into CSR form, summing duplicates. The
// triplet accumulator remains valid and may keep accumulating afterwards.
func (t *Triplet) ToCSR() *CSR {
	// Count entries per row, then bucket-sort into row order.
	counts := make([]int, t.nrows+1)
	for _, r := range t.rows {
		counts[r+1]++
	}
	for i := 0; i < t.nrows; i++ {
		counts[i+1] += counts[i]
	}
	ptr := make([]int, t.nrows+1)
	copy(ptr, counts)
	cols := make([]int, len(t.vals))
	vals := make([]float64, len(t.vals))
	next := make([]int, t.nrows)
	for i := range next {
		next[i] = ptr[i]
	}
	for k, r := range t.rows {
		p := next[r]
		cols[p] = t.cols[k]
		vals[p] = t.vals[k]
		next[r]++
	}
	// Sort each row by column and merge duplicates in place.
	outPtr := make([]int, t.nrows+1)
	w := 0
	for i := 0; i < t.nrows; i++ {
		lo, hi := ptr[i], ptr[i+1]
		sortRow(cols[lo:hi], vals[lo:hi])
		outPtr[i] = w
		for k := lo; k < hi; k++ {
			if w > outPtr[i] && cols[w-1] == cols[k] {
				vals[w-1] += vals[k]
				continue
			}
			cols[w] = cols[k]
			vals[w] = vals[k]
			w++
		}
	}
	outPtr[t.nrows] = w
	return &CSR{
		nrows: t.nrows,
		ncols: t.ncols,
		ptr:   outPtr,
		cols:  cols[:w:w],
		vals:  vals[:w:w],
	}
}

// sortRow sorts one row's (column, value) pairs by column with an in-place
// insertion sort. Stamped rows are short (a handful of entries for nodal
// analysis, tens for FEM), where insertion sort beats the generic sort and —
// unlike sort.Sort with an interface receiver — allocates nothing, which
// matters because ToCSR runs once per matrix row.
func sortRow(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1] = cols[j]
			vals[j+1] = vals[j]
			j--
		}
		cols[j+1] = c
		vals[j+1] = v
	}
}

// CSR is a compressed sparse row matrix with column indices sorted within
// each row and no duplicate entries.
type CSR struct {
	nrows, ncols int
	ptr          []int
	cols         []int
	vals         []float64
}

// NewCSR builds a CSR matrix directly from raw components. The slices are
// used without copying; callers must not mutate them afterwards. It validates
// structural invariants and panics on malformed input, since raw construction
// is only used by trusted in-package code paths and tests.
func NewCSR(r, c int, ptr, cols []int, vals []float64) *CSR {
	if len(ptr) != r+1 || ptr[0] != 0 || ptr[r] != len(cols) || len(cols) != len(vals) {
		panic("sparse: inconsistent CSR components")
	}
	for i := 0; i < r; i++ {
		if ptr[i] > ptr[i+1] {
			panic("sparse: non-monotone row pointer")
		}
		for k := ptr[i]; k < ptr[i+1]; k++ {
			if cols[k] < 0 || cols[k] >= c {
				panic("sparse: column index out of range")
			}
			if k > ptr[i] && cols[k] <= cols[k-1] {
				panic("sparse: unsorted or duplicate column indices")
			}
		}
	}
	return &CSR{nrows: r, ncols: c, ptr: ptr, cols: cols, vals: vals}
}

// Dims returns the matrix dimensions.
func (m *CSR) Dims() (r, c int) { return m.nrows, m.ncols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// Row returns views of the column indices and values of row i. The returned
// slices alias internal storage and must not be mutated structurally.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	return m.cols[m.ptr[i]:m.ptr[i+1]], m.vals[m.ptr[i]:m.ptr[i+1]]
}

// At returns the entry at (i, j), zero if not stored.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %d×%d", i, j, m.nrows, m.ncols))
	}
	lo, hi := m.ptr[i], m.ptr[i+1]
	k := lo + sort.SearchInts(m.cols[lo:hi], j)
	if k < hi && m.cols[k] == j {
		return m.vals[k]
	}
	return 0
}

// SlotIndex returns the storage slot of entry (i, j), or -1 when the entry is
// not part of the sparsity pattern. Slots are stable for the lifetime of the
// matrix, so callers that repeatedly update the same entries (nodal-analysis
// stamping with a fixed pattern) can look slots up once and then use AddAt /
// SetAt for O(1) in-place value edits with no reassembly.
func (m *CSR) SlotIndex(i, j int) int {
	if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %d×%d", i, j, m.nrows, m.ncols))
	}
	lo, hi := m.ptr[i], m.ptr[i+1]
	k := lo + sort.SearchInts(m.cols[lo:hi], j)
	if k < hi && m.cols[k] == j {
		return k
	}
	return -1
}

// AddAt adds delta to the value stored in slot (from SlotIndex) in place.
func (m *CSR) AddAt(slot int, delta float64) { m.vals[slot] += delta }

// SetAt overwrites the value stored in slot (from SlotIndex) in place.
func (m *CSR) SetAt(slot int, v float64) { m.vals[slot] = v }

// ValueAt returns the value stored in slot (from SlotIndex).
func (m *CSR) ValueAt(slot int) float64 { return m.vals[slot] }

// ZeroValues sets every stored value to zero, keeping the sparsity pattern.
// Combined with SlotIndex/AddAt it supports rebuilding the numeric content of
// a fixed-pattern matrix without any allocation.
func (m *CSR) ZeroValues() {
	for i := range m.vals {
		m.vals[i] = 0
	}
}

// CopyValues copies the stored values into dst, which must have length NNZ.
// Together with SetValues it lets callers snapshot and restore the numeric
// content of a fixed-pattern matrix without reassembly.
func (m *CSR) CopyValues(dst []float64) {
	if len(dst) != len(m.vals) {
		panic(fmt.Sprintf("sparse: CopyValues length %d, want %d", len(dst), len(m.vals)))
	}
	copy(dst, m.vals)
}

// SetValues overwrites the stored values from src, which must have length
// NNZ, keeping the sparsity pattern.
func (m *CSR) SetValues(src []float64) {
	if len(src) != len(m.vals) {
		panic(fmt.Sprintf("sparse: SetValues length %d, want %d", len(src), len(m.vals)))
	}
	copy(m.vals, src)
}

// MulVec computes y = A·x into a fresh slice.
func (m *CSR) MulVec(x []float64) []float64 {
	y := make([]float64, m.nrows)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = A·x, overwriting y. len(x) must equal the column
// count and len(y) the row count.
func (m *CSR) MulVecTo(y, x []float64) {
	if len(x) != m.ncols || len(y) != m.nrows {
		panic(fmt.Sprintf("sparse: MulVecTo dimension mismatch: A is %d×%d, len(x)=%d, len(y)=%d",
			m.nrows, m.ncols, len(x), len(y)))
	}
	for i := 0; i < m.nrows; i++ {
		y[i] = m.rowDot(x, m.ptr[i], m.ptr[i+1])
	}
}

// rowDot accumulates one CSR row against x with two interleaved partial sums
// (breaking the serial dependency chain) combined as even+odd at the end.
// Every row-product in the package funnels through it, so MulVecTo and the
// partitioned MulVecRange produce bit-identical results.
func (m *CSR) rowDot(x []float64, lo, hi int) float64 {
	s0, s1 := 0.0, 0.0
	k := lo
	for ; k+1 < hi; k += 2 {
		s0 += m.vals[k] * x[m.cols[k]]
		s1 += m.vals[k+1] * x[m.cols[k+1]]
	}
	if k < hi {
		s0 += m.vals[k] * x[m.cols[k]]
	}
	return s0 + s1
}

// MulVecRange computes y[lo:hi] = (A·x)[lo:hi] for a row range, leaving the
// rest of y untouched. Row results are independent, so callers may partition
// the rows across workers in any way and still obtain a result bit-identical
// to MulVecTo. Bounds are the caller's responsibility beyond the row range
// check; dimension validation is done once by the driver, not per block.
func (m *CSR) MulVecRange(y, x []float64, lo, hi int) {
	if lo < 0 || hi > m.nrows || lo > hi {
		panic(fmt.Sprintf("sparse: MulVecRange rows [%d,%d) out of range %d", lo, hi, m.nrows))
	}
	for i := lo; i < hi; i++ {
		y[i] = m.rowDot(x, m.ptr[i], m.ptr[i+1])
	}
}

// Diagonal returns a fresh slice with the main diagonal (zero where absent).
func (m *CSR) Diagonal() []float64 {
	n := m.nrows
	if m.ncols < n {
		n = m.ncols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := m.ptr[i]; k < m.ptr[i+1]; k++ {
			if m.cols[k] == i {
				d[i] = m.vals[k]
				break
			}
		}
	}
	return d
}

// Transpose returns Aᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	ptr := make([]int, m.ncols+1)
	for _, c := range m.cols {
		ptr[c+1]++
	}
	for i := 0; i < m.ncols; i++ {
		ptr[i+1] += ptr[i]
	}
	cols := make([]int, len(m.vals))
	vals := make([]float64, len(m.vals))
	next := make([]int, m.ncols)
	copy(next, ptr[:m.ncols])
	for i := 0; i < m.nrows; i++ {
		for k := m.ptr[i]; k < m.ptr[i+1]; k++ {
			c := m.cols[k]
			p := next[c]
			cols[p] = i
			vals[p] = m.vals[k]
			next[c]++
		}
	}
	return &CSR{nrows: m.ncols, ncols: m.nrows, ptr: ptr, cols: cols, vals: vals}
}

// IsSymmetric reports whether the matrix equals its transpose to within tol
// in absolute value, entry by entry. Intended for test assertions on
// stiffness and conductance matrices.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.nrows != m.ncols {
		return false
	}
	t := m.Transpose()
	if len(t.vals) != len(m.vals) {
		return false
	}
	for i := 0; i < m.nrows; i++ {
		if m.ptr[i] != t.ptr[i] {
			return false
		}
		for k := m.ptr[i]; k < m.ptr[i+1]; k++ {
			if m.cols[k] != t.cols[k] {
				return false
			}
			d := m.vals[k] - t.vals[k]
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

// Scale multiplies every stored entry by s in place.
func (m *CSR) Scale(s float64) {
	for i := range m.vals {
		m.vals[i] *= s
	}
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	ptr := make([]int, len(m.ptr))
	copy(ptr, m.ptr)
	cols := make([]int, len(m.cols))
	copy(cols, m.cols)
	vals := make([]float64, len(m.vals))
	copy(vals, m.vals)
	return &CSR{nrows: m.nrows, ncols: m.ncols, ptr: ptr, cols: cols, vals: vals}
}

// ShallowCloneValues returns a copy of the matrix that shares the immutable
// sparsity pattern (row pointers and column indices) with the receiver but
// owns a private copy of the values. Callers that maintain one fixed pattern
// across many workers (per-worker circuit clones) use it to avoid duplicating
// the structural arrays; neither copy may mutate the pattern.
func (m *CSR) ShallowCloneValues() *CSR {
	vals := make([]float64, len(m.vals))
	copy(vals, m.vals)
	return &CSR{nrows: m.nrows, ncols: m.ncols, ptr: m.ptr, cols: m.cols, vals: vals}
}

// LowerTriangle returns the lower triangle (including the diagonal) of the
// matrix as a new CSR, used by the incomplete-Cholesky preconditioner.
func (m *CSR) LowerTriangle() *CSR {
	ptr := make([]int, m.nrows+1)
	nnz := 0
	for i := 0; i < m.nrows; i++ {
		for k := m.ptr[i]; k < m.ptr[i+1]; k++ {
			if m.cols[k] <= i {
				nnz++
			}
		}
		ptr[i+1] = nnz
	}
	cols := make([]int, nnz)
	vals := make([]float64, nnz)
	w := 0
	for i := 0; i < m.nrows; i++ {
		for k := m.ptr[i]; k < m.ptr[i+1]; k++ {
			if m.cols[k] <= i {
				cols[w] = m.cols[k]
				vals[w] = m.vals[k]
				w++
			}
		}
	}
	return &CSR{nrows: m.nrows, ncols: m.ncols, ptr: ptr, cols: cols, vals: vals}
}
