// Package phys collects the physical constants and unit helpers used
// throughout the electromigration (EM) and thermomechanical models.
//
// All quantities are SI unless a suffix says otherwise. Stress is in Pa,
// temperature in Kelvin, current density in A/m², diffusivity in m²/s.
package phys

import "math"

// Fundamental constants (CODATA values, SI units).
const (
	// Boltzmann is the Boltzmann constant kB in J/K.
	Boltzmann = 1.380649e-23
	// ElectronCharge is the elementary charge e in C.
	ElementaryCharge = 1.602176634e-19
	// ElectronVolt is one eV expressed in joules.
	ElectronVolt = 1.602176634e-19
)

// Convenient unit multipliers.
const (
	// Micron is 1 µm in metres.
	Micron = 1e-6
	// Nanometre is 1 nm in metres.
	Nanometre = 1e-9
	// MPa is 1 megapascal in pascals.
	MPa = 1e6
	// GPa is 1 gigapascal in pascals.
	GPa = 1e9
	// PPM is one part per million (used for CTE in ppm/°C).
	PPM = 1e-6
	// Year is one Julian year in seconds, the natural unit for TTF.
	Year = 365.25 * 24 * 3600
)

// CelsiusToKelvin converts a temperature in °C to Kelvin.
func CelsiusToKelvin(c float64) float64 { return c + 273.15 }

// KelvinToCelsius converts a temperature in Kelvin to °C.
func KelvinToCelsius(k float64) float64 { return k - 273.15 }

// SecondsToYears converts a duration in seconds to Julian years.
func SecondsToYears(s float64) float64 { return s / Year }

// YearsToSeconds converts a duration in Julian years to seconds.
func YearsToSeconds(y float64) float64 { return y * Year }

// Arrhenius evaluates A·exp(−Ea/kB·T) with Ea in joules and T in Kelvin.
// It is the standard thermally activated rate law used for EM diffusivity.
func Arrhenius(prefactor, eaJoules, tempK float64) float64 {
	return prefactor * math.Exp(-eaJoules/(Boltzmann*tempK))
}
