package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTemperatureConversions(t *testing.T) {
	if got := CelsiusToKelvin(105); math.Abs(got-378.15) > 1e-12 {
		t.Errorf("105 °C = %g K", got)
	}
	if got := KelvinToCelsius(273.15); got != 0 {
		t.Errorf("273.15 K = %g °C", got)
	}
	f := func(c float64) bool {
		return math.Abs(KelvinToCelsius(CelsiusToKelvin(c))-c) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestYearConversions(t *testing.T) {
	if got := YearsToSeconds(1); math.Abs(got-365.25*86400) > 1e-6 {
		t.Errorf("1 year = %g s", got)
	}
	if got := SecondsToYears(Year); math.Abs(got-1) > 1e-12 {
		t.Errorf("Year seconds = %g years", got)
	}
}

func TestArrhenius(t *testing.T) {
	// At infinite temperature the exponential saturates to the prefactor.
	if got := Arrhenius(2.5, 1e-19, 1e12); math.Abs(got-2.5)/2.5 > 1e-6 {
		t.Errorf("high-T limit = %g", got)
	}
	// Zero activation energy is temperature-independent.
	if Arrhenius(1, 0, 300) != 1 || Arrhenius(1, 0, 400) != 1 {
		t.Error("zero-Ea Arrhenius not constant")
	}
	// Monotone increasing in T for positive Ea.
	if !(Arrhenius(1, 1e-19, 400) > Arrhenius(1, 1e-19, 300)) {
		t.Error("Arrhenius not increasing with T")
	}
	// 0.85 eV at 378 K: the EM model's operating point, ≈ e^-26.1.
	ea := 0.85 * ElectronVolt
	want := math.Exp(-ea / (Boltzmann * 378.15))
	if got := Arrhenius(1, ea, 378.15); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Arrhenius = %g, want %g", got, want)
	}
}

func TestUnitConstants(t *testing.T) {
	if Micron != 1e-6 || Nanometre != 1e-9 || MPa != 1e6 || GPa != 1e9 || PPM != 1e-6 {
		t.Error("unit multipliers wrong")
	}
	if math.Abs(Boltzmann-1.380649e-23) > 1e-30 {
		t.Error("Boltzmann constant wrong")
	}
	if ElementaryCharge != ElectronVolt {
		t.Error("e and eV numerically differ (both SI)")
	}
}
