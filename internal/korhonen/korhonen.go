// Package korhonen implements the 1-D stress-evolution model of Korhonen et
// al. (J. Appl. Phys. 73, 1993), the physical foundation of the paper's
// nucleation-time equation (1)–(3).
//
// In a confined metal line under electromigration, the hydrostatic stress
// σ(x, t) obeys the diffusion-drift equation
//
//	∂σ/∂t = ∂/∂x [ κd · ( ∂σ/∂x + G ) ],   κd = D_eff·B·Ω / (kB·T)
//
// where G = e·Z*·ρ·j / Ω is the EM driving "stress gradient" and the line
// is blocked at both ends (zero atomic flux: ∂σ/∂x + G = 0). Stress builds
// up at the cathode end until it reaches the effective critical value
// σ_C − σ_T, nucleating a void. For a semi-infinite line the cathode stress
// grows as σ(0, t) = G·√(4·κd·t/π), which inverts to exactly equation (1)
// with κ = π:
//
//	t_n = (π/4)·(σ_C − σ_T)²·Ω·kB·T / ((e·Z*·ρ·j)²·D_eff·B)
//
// The package provides a Crank–Nicolson finite-difference solver for the
// transient (used to validate the closed form and to study finite-length
// effects such as Blech saturation) and the closed-form helpers.
package korhonen

import (
	"fmt"
	"math"

	"emvia/internal/emdist"
	"emvia/internal/phys"
)

// Line describes a confined interconnect segment under EM stress.
type Line struct {
	// Length is the line length, m.
	Length float64
	// EM supplies D_eff, B, Ω, Z*, ρ and the temperature.
	EM emdist.Params
	// J is the current density, A/m² (electron flow toward x = 0, so
	// tensile stress builds at x = 0, the cathode via).
	J float64
	// Sigma0 is the uniform initial stress (the thermomechanical σ_T
	// enters the nucleation criterion separately; the solver works in the
	// EM-induced stress increment, so Sigma0 is usually 0).
	Sigma0 float64
}

// Kappa returns the stress diffusivity κd = D_eff·B·Ω/(kB·T), m²/s.
func (l Line) Kappa() float64 {
	return l.EM.Deff() * l.EM.Bulk * l.EM.Omega / (phys.Boltzmann * l.EM.TempK())
}

// DriveGradient returns G = e·Z*·ρ·j/Ω, the EM stress gradient, Pa/m.
func (l Line) DriveGradient() float64 {
	return phys.ElementaryCharge * l.EM.ZStar * l.EM.Rho * l.J / l.EM.Omega
}

// SteadyStateCathodeStress returns the Blech saturation stress G·L/2 above
// the initial value: the maximum EM stress a finite blocked line can build.
func (l Line) SteadyStateCathodeStress() float64 {
	return l.Sigma0 + l.DriveGradient()*l.Length/2
}

// CathodeStressSemiInfinite returns the closed-form cathode stress of a
// semi-infinite line at time t: σ(0,t) = σ0 + G·√(4·κd·t/π).
func (l Line) CathodeStressSemiInfinite(t float64) float64 {
	if t <= 0 {
		return l.Sigma0
	}
	return l.Sigma0 + l.DriveGradient()*math.Sqrt(4*l.Kappa()*t/math.Pi)
}

// NucleationTimeClosedForm inverts the semi-infinite solution for the time
// at which the cathode stress reaches sigmaCrit: the paper's equation (1)
// with κ = π. It returns 0 when the initial stress already exceeds the
// threshold and +Inf when a finite line saturates below it.
func (l Line) NucleationTimeClosedForm(sigmaCrit float64) float64 {
	d := sigmaCrit - l.Sigma0
	if d <= 0 {
		return 0
	}
	g := l.DriveGradient()
	if g <= 0 {
		return math.Inf(1)
	}
	if l.Length > 0 && sigmaCrit > l.SteadyStateCathodeStress() {
		return math.Inf(1)
	}
	return math.Pi / 4 * d * d / (g * g * l.Kappa())
}

// BlechProduct returns the critical current-density × length product
// (A/m) below which a blocked line of effective critical stress sigmaCrit
// (= σ_C − σ_T) is immortal: saturation stress G·L/2 < sigmaCrit inverts to
//
//	j·L < 2·sigmaCrit·Ω / (e·Z*·ρ)
//
// This is the Blech short-length immunity the paper's grid-design assumption
// ("spanning voids in wires have a very low probability") relies on.
func BlechProduct(em emdist.Params, sigmaCrit float64) float64 {
	if sigmaCrit <= 0 {
		return 0
	}
	return 2 * sigmaCrit * em.Omega / (phys.ElementaryCharge * em.ZStar * em.Rho)
}

// Immortal reports whether a line of length L carrying j is Blech-immune at
// effective critical stress sigmaCrit.
func Immortal(em emdist.Params, sigmaCrit, j, length float64) bool {
	if j <= 0 || length <= 0 {
		return true
	}
	return j*length < BlechProduct(em, sigmaCrit)
}

// Solution is a transient stress profile history.
type Solution struct {
	// X are the node positions, m.
	X []float64
	// T are the output times, s.
	T []float64
	// Sigma[k][i] is the stress at time T[k], node X[i], Pa.
	Sigma [][]float64
}

// CathodeHistory returns σ(0, t) over the solution times.
func (s *Solution) CathodeHistory() (t, sigma []float64) {
	t = s.T
	sigma = make([]float64, len(s.T))
	for k := range s.T {
		sigma[k] = s.Sigma[k][0]
	}
	return t, sigma
}

// FirstCrossing returns the first output time at which the cathode stress
// reaches sigmaCrit, linearly interpolated; ok is false if it never does.
func (s *Solution) FirstCrossing(sigmaCrit float64) (float64, bool) {
	_, hist := s.CathodeHistory()
	for k := 1; k < len(hist); k++ {
		if hist[k] >= sigmaCrit {
			if hist[k] == hist[k-1] {
				return s.T[k], true
			}
			f := (sigmaCrit - hist[k-1]) / (hist[k] - hist[k-1])
			return s.T[k-1] + f*(s.T[k]-s.T[k-1]), true
		}
	}
	return 0, false
}

// SolveOptions controls the transient solver.
type SolveOptions struct {
	// Nodes is the spatial resolution (default 200).
	Nodes int
	// Steps is the number of time steps (default 400).
	Steps int
	// OutEvery stores every k-th step in the solution (default stores
	// ~100 frames).
	OutEvery int
}

// Solve integrates the stress-evolution PDE to tEnd with Crank–Nicolson
// time stepping and flux-blocking boundaries at both ends.
func (l Line) Solve(tEnd float64, opt SolveOptions) (*Solution, error) {
	if l.Length <= 0 {
		return nil, fmt.Errorf("korhonen: line length must be positive, got %g", l.Length)
	}
	if tEnd <= 0 {
		return nil, fmt.Errorf("korhonen: end time must be positive, got %g", tEnd)
	}
	if err := l.EM.Validate(); err != nil {
		return nil, err
	}
	n := opt.Nodes
	if n == 0 {
		n = 200
	}
	if n < 3 {
		return nil, fmt.Errorf("korhonen: need ≥ 3 nodes, got %d", n)
	}
	steps := opt.Steps
	if steps == 0 {
		steps = 400
	}
	outEvery := opt.OutEvery
	if outEvery == 0 {
		outEvery = steps / 100
		if outEvery == 0 {
			outEvery = 1
		}
	}

	dx := l.Length / float64(n-1)
	dt := tEnd / float64(steps)
	kd := l.Kappa()
	g := l.DriveGradient()
	r := kd * dt / (dx * dx) // CN is unconditionally stable; r may be large

	// Crank–Nicolson: (I − r/2·A)·σ^{m+1} = (I + r/2·A)·σ^m + dt·b where A
	// is the 1-D Laplacian with Neumann-like flux-blocking boundaries
	// ∂σ/∂x = −G, realized through ghost nodes:
	//   σ_{-1} = σ_1 + 2·dx·G   (x = 0, cathode: flux J_a ∝ ∂σ/∂x + G = 0)
	//   σ_{n}  = σ_{n-2} − 2·dx·G (x = L, anode)
	// which adds constant source terms at the boundary rows.
	sigma := make([]float64, n)
	for i := range sigma {
		sigma[i] = l.Sigma0
	}
	// Tridiagonal CN matrix (I − r/2·A).
	lower := make([]float64, n)
	diag := make([]float64, n)
	upper := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = 1 + r
		lower[i] = -r / 2
		upper[i] = -r / 2
	}
	// Boundary rows: ghost elimination doubles the inner coupling.
	upper[0] = -r
	lower[n-1] = -r

	sol := &Solution{}
	sol.X = make([]float64, n)
	for i := range sol.X {
		sol.X[i] = float64(i) * dx
	}
	store := func(t float64) {
		frame := make([]float64, n)
		copy(frame, sigma)
		sol.T = append(sol.T, t)
		sol.Sigma = append(sol.Sigma, frame)
	}
	store(0)

	rhs := make([]float64, n)
	cp := make([]float64, n) // scratch for the Thomas algorithm
	for m := 1; m <= steps; m++ {
		// Explicit half: (I + r/2·A)·σ + dt·sources.
		for i := 0; i < n; i++ {
			switch i {
			case 0:
				rhs[i] = (1-r)*sigma[0] + r*sigma[1] + 2*r*dx*g/2 // ghost source, explicit half
			case n - 1:
				rhs[i] = (1-r)*sigma[n-1] + r*sigma[n-2] - 2*r*dx*g/2
			default:
				rhs[i] = (1-r)*sigma[i] + r/2*(sigma[i-1]+sigma[i+1])
			}
		}
		// Implicit half's ghost sources move to the RHS too.
		rhs[0] += 2 * r * dx * g / 2
		rhs[n-1] -= 2 * r * dx * g / 2

		// Thomas algorithm.
		cp[0] = upper[0] / diag[0]
		rhs[0] = rhs[0] / diag[0]
		for i := 1; i < n; i++ {
			m2 := diag[i] - lower[i]*cp[i-1]
			cp[i] = upper[i] / m2
			rhs[i] = (rhs[i] - lower[i]*rhs[i-1]) / m2
		}
		sigma[n-1] = rhs[n-1]
		for i := n - 2; i >= 0; i-- {
			sigma[i] = rhs[i] - cp[i]*sigma[i+1]
		}
		if m%outEvery == 0 || m == steps {
			store(float64(m) * dt)
		}
	}
	return sol, nil
}
