package korhonen

import (
	"math"
	"testing"

	"emvia/internal/emdist"
	"emvia/internal/phys"
)

func testLine(length float64, j float64) Line {
	return Line{
		Length: length,
		EM:     emdist.Default(),
		J:      j,
	}
}

func TestDerivedQuantitiesPositive(t *testing.T) {
	l := testLine(100e-6, 1e10)
	if l.Kappa() <= 0 {
		t.Errorf("kappa = %g", l.Kappa())
	}
	if l.DriveGradient() <= 0 {
		t.Errorf("G = %g", l.DriveGradient())
	}
	if got := l.SteadyStateCathodeStress(); got <= 0 {
		t.Errorf("saturation stress = %g", got)
	}
}

func TestClosedFormMatchesEquation1(t *testing.T) {
	// The closed form must equal emdist's NucleationTime with κ = π and
	// zero thermomechanical stress: both are the same formula.
	em := emdist.Default()
	l := Line{Length: 1, EM: em, J: 1e10} // 1 m ≈ semi-infinite
	for _, crit := range []float64{50e6, 100e6, 150e6} {
		want := em.NucleationTime(crit, 0, 1e10)
		got := l.NucleationTimeClosedForm(crit)
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("crit %g MPa: closed form %g, emdist %g", crit/1e6, got, want)
		}
	}
}

func TestClosedFormLimits(t *testing.T) {
	l := testLine(100e-6, 1e10)
	if got := l.NucleationTimeClosedForm(-10e6); got != 0 {
		t.Errorf("below-initial threshold: %g, want 0", got)
	}
	// Saturation: a short line cannot build more than G·L/2.
	short := testLine(1e-6, 1e10)
	sat := short.SteadyStateCathodeStress()
	if got := short.NucleationTimeClosedForm(sat * 1.5); !math.IsInf(got, 1) {
		t.Errorf("above saturation: %g, want +Inf (Blech immunity)", got)
	}
	zeroJ := testLine(100e-6, 0)
	if got := zeroJ.NucleationTimeClosedForm(50e6); !math.IsInf(got, 1) {
		t.Errorf("zero current: %g, want +Inf", got)
	}
}

func TestSolveValidation(t *testing.T) {
	l := testLine(100e-6, 1e10)
	if _, err := l.Solve(0, SolveOptions{}); err == nil {
		t.Error("accepted zero end time")
	}
	if _, err := l.Solve(1, SolveOptions{Nodes: 2}); err == nil {
		t.Error("accepted 2 nodes")
	}
	bad := l
	bad.Length = 0
	if _, err := bad.Solve(1, SolveOptions{}); err == nil {
		t.Error("accepted zero length")
	}
	bad = l
	bad.EM.D0 = 0
	if _, err := bad.Solve(1, SolveOptions{}); err == nil {
		t.Error("accepted invalid EM params")
	}
}

// TestTransientMatchesSemiInfinite: before the diffusion front reaches the
// far end, the numerical cathode stress must follow G·√(4κt/π).
func TestTransientMatchesSemiInfinite(t *testing.T) {
	l := testLine(200e-6, 1e10)
	// Pick tEnd so the diffusion length √(κ·t) ≈ L/4: still semi-infinite.
	tEnd := (l.Length / 4) * (l.Length / 4) / l.Kappa()
	sol, err := l.Solve(tEnd, SolveOptions{Nodes: 400, Steps: 800})
	if err != nil {
		t.Fatal(err)
	}
	times, hist := sol.CathodeHistory()
	checked := 0
	for k := range times {
		if times[k] < tEnd/10 {
			continue // early times are under-resolved by dx
		}
		want := l.CathodeStressSemiInfinite(times[k])
		if math.Abs(hist[k]-want)/want > 0.03 {
			t.Errorf("t=%.3g s: cathode stress %g, closed form %g", times[k], hist[k], want)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d comparison points", checked)
	}
}

// TestNucleationTimeNumericalVsClosedForm validates equation (1)'s κ = π
// against the PDE: the first-crossing time of the critical stress must match
// the closed form within discretization error.
func TestNucleationTimeNumericalVsClosedForm(t *testing.T) {
	l := testLine(200e-6, 1e10)
	crit := 100e6 // Pa, well below saturation (G·L/2)
	if crit >= l.SteadyStateCathodeStress() {
		t.Fatal("test setup: criterion above saturation")
	}
	tn := l.NucleationTimeClosedForm(crit)
	sol, err := l.Solve(3*tn, SolveOptions{Nodes: 400, Steps: 1200})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := sol.FirstCrossing(crit)
	if !ok {
		t.Fatal("numerical solution never crossed the criterion")
	}
	if math.Abs(got-tn)/tn > 0.05 {
		t.Errorf("numerical t_n = %g, closed form %g (%.1f%% off)", got, tn, 100*math.Abs(got-tn)/tn)
	}
}

// TestBlechSaturation: a short line saturates at G·L/2 and never nucleates
// a void above that stress — the immortality the paper's grid design
// implicitly relies on for short wire segments.
func TestBlechSaturation(t *testing.T) {
	l := testLine(5e-6, 1e10)
	sat := l.SteadyStateCathodeStress()
	// Integrate far beyond the diffusion time L²/κ.
	tEnd := 50 * l.Length * l.Length / l.Kappa()
	sol, err := l.Solve(tEnd, SolveOptions{Nodes: 200, Steps: 800})
	if err != nil {
		t.Fatal(err)
	}
	_, hist := sol.CathodeHistory()
	final := hist[len(hist)-1]
	if math.Abs(final-sat)/sat > 0.02 {
		t.Errorf("final cathode stress %g, want saturation %g", final, sat)
	}
	// Stress history must be monotone nondecreasing at the cathode.
	for k := 1; k < len(hist); k++ {
		if hist[k] < hist[k-1]-1e-3*sat {
			t.Fatalf("cathode stress decreased at frame %d", k)
		}
	}
	// And must never exceed saturation.
	if _, ok := sol.FirstCrossing(sat * 1.05); ok {
		t.Error("stress exceeded the Blech saturation limit")
	}
}

// TestMassConservation: flux-blocking boundaries conserve total stress
// (∫σ dx is invariant because A transports atoms, not creates them).
func TestMassConservation(t *testing.T) {
	l := testLine(50e-6, 1e10)
	l.Sigma0 = 20e6
	tEnd := 2 * l.Length * l.Length / l.Kappa()
	sol, err := l.Solve(tEnd, SolveOptions{Nodes: 300, Steps: 600})
	if err != nil {
		t.Fatal(err)
	}
	integral := func(frame []float64) float64 {
		s := 0.0
		for i := 1; i < len(frame); i++ {
			s += (frame[i] + frame[i-1]) / 2
		}
		return s
	}
	first := integral(sol.Sigma[0])
	last := integral(sol.Sigma[len(sol.Sigma)-1])
	// first is n·σ0-scaled; compare relative drift against the profile
	// magnitude (anode is compressive, cathode tensile, mean stays σ0).
	scale := math.Abs(first)
	if scale == 0 {
		scale = 1
	}
	if math.Abs(last-first)/scale > 0.01 {
		t.Errorf("∫σ dx drifted: %g → %g", first, last)
	}
}

// TestAnodeCompression: the anode end goes compressive (negative increment),
// the mirror image of cathode tension.
func TestAnodeCompression(t *testing.T) {
	l := testLine(50e-6, 1e10)
	tEnd := l.Length * l.Length / l.Kappa()
	sol, err := l.Solve(tEnd, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	last := sol.Sigma[len(sol.Sigma)-1]
	if last[0] <= 0 {
		t.Errorf("cathode stress %g, want tensile", last[0])
	}
	if last[len(last)-1] >= 0 {
		t.Errorf("anode stress %g, want compressive", last[len(last)-1])
	}
	// Antisymmetry about the midpoint at steady state.
	mid := last[len(last)/2]
	if math.Abs(mid) > 0.05*last[0] {
		t.Errorf("midpoint stress %g not near zero (cathode %g)", mid, last[0])
	}
}

func TestFirstCrossingInterpolates(t *testing.T) {
	sol := &Solution{
		X:     []float64{0, 1},
		T:     []float64{0, 10, 20},
		Sigma: [][]float64{{0, 0}, {10, 0}, {30, 0}},
	}
	got, ok := sol.FirstCrossing(20)
	if !ok || math.Abs(got-15) > 1e-12 {
		t.Errorf("FirstCrossing = %g, %v, want 15", got, ok)
	}
	if _, ok := sol.FirstCrossing(100); ok {
		t.Error("crossed unreachable threshold")
	}
}

func TestSecondsToYearsRoundTrip(t *testing.T) {
	// Guard the unit helpers the package leans on.
	if got := phys.SecondsToYears(phys.YearsToSeconds(7.5)); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("round trip = %g", got)
	}
}

func TestBlechProductAndImmortal(t *testing.T) {
	em := emdist.Default()
	thr := BlechProduct(em, 115e6)
	if thr <= 0 {
		t.Fatalf("threshold = %g", thr)
	}
	// Consistency with the saturation stress: a line exactly at the
	// threshold saturates exactly at sigmaCrit.
	l := Line{Length: thr / 1e10, EM: em, J: 1e10}
	sat := l.SteadyStateCathodeStress()
	if math.Abs(sat-115e6)/115e6 > 1e-9 {
		t.Errorf("saturation at threshold = %g, want 115e6", sat)
	}
	if !Immortal(em, 115e6, 1e10, 0.99*thr/1e10) {
		t.Error("line just below threshold not immortal")
	}
	if Immortal(em, 115e6, 1e10, 1.01*thr/1e10) {
		t.Error("line just above threshold immortal")
	}
	if !Immortal(em, 115e6, 0, 1) || !Immortal(em, 115e6, 1e10, 0) {
		t.Error("zero current/length not immortal")
	}
	if BlechProduct(em, -1) != 0 {
		t.Error("negative critical stress threshold not 0")
	}
}
