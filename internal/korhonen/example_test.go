package korhonen_test

import (
	"fmt"

	"emvia/internal/emdist"
	"emvia/internal/korhonen"
	"emvia/internal/phys"
)

// The closed-form nucleation time of the paper's equation (1) is the
// first-crossing time of the Korhonen stress build-up; the PDE solver
// reproduces it.
func ExampleLine_NucleationTimeClosedForm() {
	line := korhonen.Line{
		Length: 200 * phys.Micron,
		EM:     emdist.Default(),
		J:      1e10,
	}
	crit := 115e6 // σ_C − σ_T, Pa
	closed := line.NucleationTimeClosedForm(crit)
	sol, err := line.Solve(2*closed, korhonen.SolveOptions{Nodes: 300, Steps: 900})
	if err != nil {
		panic(err)
	}
	numeric, ok := sol.FirstCrossing(crit)
	if !ok {
		panic("no crossing")
	}
	fmt.Printf("closed form %.1f y, PDE %.1f y\n",
		phys.SecondsToYears(closed), phys.SecondsToYears(numeric))
	// Output:
	// closed form 7.9 y, PDE 7.9 y
}

// Short lines saturate below the critical stress and never fail: the Blech
// immortality the grid's short wire segments enjoy.
func ExampleImmortal() {
	em := emdist.Default()
	crit := 115e6
	jl := korhonen.BlechProduct(em, crit)
	fmt.Printf("threshold jL = %.2e A/m\n", jl)
	fmt.Println("100 um at 1e10:", korhonen.Immortal(em, crit, 1e10, 100*phys.Micron))
	fmt.Println(" 30 um at 1e10:", korhonen.Immortal(em, crit, 1e10, 30*phys.Micron))
	// Output:
	// threshold jL = 6.17e+05 A/m
	// 100 um at 1e10: false
	//  30 um at 1e10: true
}
