package core

import (
	"fmt"

	"emvia/internal/cudd"
	"emvia/internal/pdn"
	"emvia/internal/stat"
	"emvia/internal/viaarray"
)

// MultiLayerAnalysis describes a §3.2-style multi-layer experiment: every
// via array uses the TTF model characterized for its own (pattern, layer
// pair) family, exercising the paper's full 9-way characterization matrix.
type MultiLayerAnalysis struct {
	// Grid is the multi-layer power grid.
	Grid *pdn.MultiLayerGrid
	// ArrayN selects the via configuration used grid-wide.
	ArrayN int
	// ArrayCriterion is the via-array failure criterion.
	ArrayCriterion ArrayCriterion
	// SystemCriterion and IRDropFrac define grid failure.
	SystemCriterion pdn.Criterion
	IRDropFrac      float64
	// CharTrials and GridTrials size the two Monte-Carlo levels.
	CharTrials, GridTrials int
	// Seed drives both levels.
	Seed int64
}

// AnalyzeMultiLayerGrid runs the pipeline with per-(pattern, pair) models.
func (a *Analyzer) AnalyzeMultiLayerGrid(m MultiLayerAnalysis) (*GridReport, error) {
	if m.Grid == nil {
		return nil, fmt.Errorf("core: MultiLayerAnalysis needs a grid")
	}
	if m.CharTrials == 0 {
		m.CharTrials = 500
	}
	if m.GridTrials == 0 {
		m.GridTrials = 500
	}
	width := m.Grid.Spec.WireWidth
	j := a.referenceCurrentDensity()

	// Characterize each (pattern, pair) family that actually occurs.
	type famKey struct {
		pat  cudd.Pattern
		pair cudd.LayerPair
	}
	fams := map[famKey]viaarray.TTFModel{}
	seedOff := int64(0)
	for _, v := range m.Grid.Vias {
		k := famKey{v.Pattern, v.LayerPair}
		if _, ok := fams[k]; ok {
			continue
		}
		c, err := a.CharacterizeViaArrayPair(v.Pattern, v.LayerPair, m.ArrayN, width, j, m.ArrayCriterion, m.CharTrials, m.Seed+seedOff)
		if err != nil {
			return nil, fmt.Errorf("core: characterizing %v/%v arrays: %w", v.Pattern, v.LayerPair, err)
		}
		fams[k] = c.Model
		seedOff++
	}
	perVia := make([]viaarray.TTFModel, len(m.Grid.Vias))
	for i, v := range m.Grid.Vias {
		perVia[i] = fams[famKey{v.Pattern, v.LayerPair}]
	}

	res, err := pdn.AnalyzeTTF(pdn.TTFConfig{
		Grid:         m.Grid.Grid,
		PerViaModels: perVia,
		Criterion:    m.SystemCriterion,
		IRDropFrac:   m.IRDropFrac,
	}, m.GridTrials, m.Seed+1000)
	if err != nil {
		return nil, err
	}
	finite := res.FiniteTTF()
	if len(finite) == 0 {
		return nil, fmt.Errorf("core: no trial reached the system failure criterion")
	}
	ecdf, err := stat.NewECDF(finite)
	if err != nil {
		return nil, err
	}
	// Reuse GridReport with the flattened single-pair view for percentile
	// accessors; the per-pattern Models map is not meaningful here.
	return &GridReport{
		Analysis: GridAnalysis{
			Grid:            m.Grid.Grid,
			ArrayN:          m.ArrayN,
			ArrayCriterion:  m.ArrayCriterion,
			SystemCriterion: m.SystemCriterion,
			IRDropFrac:      m.IRDropFrac,
			CharTrials:      m.CharTrials,
			GridTrials:      m.GridTrials,
			Seed:            m.Seed,
		},
		MC:  res,
		TTF: ecdf,
	}, nil
}
