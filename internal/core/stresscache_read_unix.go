//go:build unix

package core

import "syscall"

// readEntryFile slurps one cache entry into dst (grown as needed) with plain
// syscalls. os.ReadFile costs five allocations per call — two for the File
// wrapper, the NUL-terminated name, the Stat result and the content buffer —
// where the warm-cache path needs at most one, and it runs once per cold
// StressFor. The returned slice aliases dst's storage when it fits.
func readEntryFile(path string, dst []byte) ([]byte, error) {
	fd, err := syscall.Open(path, syscall.O_RDONLY|syscall.O_CLOEXEC, 0)
	if err != nil {
		return nil, err
	}
	defer syscall.Close(fd)
	var st syscall.Stat_t
	if err := syscall.Fstat(fd, &st); err != nil {
		return nil, err
	}
	if size := int(st.Size); cap(dst) < size {
		dst = make([]byte, 0, size+64)
	}
	dst = dst[:0]
	for {
		if len(dst) == cap(dst) {
			// The file grew past its stat size (concurrent rewrite);
			// extend and keep reading.
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := syscall.Read(fd, dst[len(dst):cap(dst)])
		if n > 0 {
			dst = dst[:len(dst)+n]
		}
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return dst, nil
		}
	}
}
