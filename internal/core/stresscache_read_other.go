//go:build !unix

package core

import "os"

// readEntryFile reads one cache entry into dst. The portable fallback pays
// os.ReadFile's extra allocations; the unix build reads via raw syscalls.
func readEntryFile(path string, dst []byte) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return append(dst[:0], b...), nil
}
