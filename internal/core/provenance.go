package core

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"emvia/internal/emdist"
	"emvia/internal/mat"
)

// MaterialHash fingerprints the physical constants the whole pipeline rests
// on: the Table-1 elastic property set, the copper EM transport constants,
// and the default nucleation-model parameters. Two runs with equal hashes
// used the same physics; the hash goes into every run-provenance manifest so
// results produced by different builds stay comparable.
func MaterialHash() string {
	type entry struct {
		ID string
		mat.Elastic
	}
	payload := struct {
		Table []entry
		RhoCu float64
		ZStar float64
		Omega float64
		EM    emdist.Params
	}{
		RhoCu: mat.RhoCu,
		ZStar: mat.ZStarEff,
		Omega: mat.OmegaCu,
		EM:    emdist.Default(),
	}
	for _, id := range mat.All() {
		payload.Table = append(payload.Table, entry{ID: id.String(), Elastic: mat.Table1[id]})
	}
	buf, err := json.Marshal(payload)
	if err != nil {
		// The payload is plain structs of floats; failure is impossible
		// short of memory corruption.
		panic(fmt.Sprintf("core: material hash: %v", err))
	}
	sum := sha256.Sum256(buf)
	return fmt.Sprintf("%x", sum[:8])
}

// StressCacheKeyVersion exposes the persistent stress cache's key schema
// version for run-provenance manifests.
func StressCacheKeyVersion() int { return stressCacheVersion }
