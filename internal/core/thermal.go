package core

import (
	"fmt"

	"emvia/internal/cudd"
	"emvia/internal/thermal"
)

// ThermalReport augments a grid analysis with the die temperature field it
// was derated by.
type ThermalReport struct {
	// Grid is the underlying grid analysis report.
	Grid *GridReport
	// Map is the solved die temperature field.
	Map *thermal.Map
	// ViaTempsC holds the local temperature of each via array, °C.
	ViaTempsC []float64
	// Scale holds the applied per-array TTF derating factors.
	Scale []float64
}

// AnalyzeGridThermal runs the thermally-aware variant of the flow: the grid
// is solved for its power map, the compact thermal network yields per-array
// local temperatures, every array's characterized TTF is rescaled from the
// EM model's reference temperature (Arrhenius diffusivity + σ_T relaxation
// toward the stress-free point), and the grid Monte Carlo runs with those
// local deratings. Pass a zero thermal.Config to use defaults matched to
// the grid lattice.
func (a *Analyzer) AnalyzeGridThermal(g GridAnalysis, tcfg thermal.Config) (*ThermalReport, error) {
	if g.Grid == nil {
		return nil, fmt.Errorf("core: GridAnalysis needs a grid")
	}
	tm, temps, err := g.Grid.ThermalProfile(tcfg)
	if err != nil {
		return nil, err
	}
	// Reference σ_T per pattern: the mean of the FEA stress map the models
	// were characterized with.
	width := g.Grid.Spec.WireWidth
	if width == 0 {
		width = a.Base.WireWidth
	}
	meanSigma := map[cudd.Pattern]float64{}
	for _, v := range g.Grid.Vias {
		if _, ok := meanSigma[v.Pattern]; ok {
			continue
		}
		s, err := a.StressFor(v.Pattern, a.Base.LayerPair, g.ArrayN, width)
		if err != nil {
			return nil, err
		}
		sum, n := 0.0, 0
		for _, row := range s {
			for _, x := range row {
				sum += x
				n++
			}
		}
		meanSigma[v.Pattern] = sum / float64(n)
	}
	scale := make([]float64, len(g.Grid.Vias))
	for k, v := range g.Grid.Vias {
		scale[k] = a.EM.TTFTempScale(
			meanSigma[v.Pattern],
			a.EM.TempC,
			temps[k],
			a.Base.AnnealT,
			a.referenceCurrentDensity(),
		)
		if scale[k] <= 0 {
			return nil, fmt.Errorf("core: array %d at %.1f °C has zero TTF scale (immediate failure regime)", k, temps[k])
		}
	}
	g.TTFScale = scale
	rep, err := a.AnalyzeGrid(g)
	if err != nil {
		return nil, err
	}
	return &ThermalReport{Grid: rep, Map: tm, ViaTempsC: temps, Scale: scale}, nil
}
