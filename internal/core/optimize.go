package core

import (
	"fmt"

	"emvia/internal/cudd"
	"emvia/internal/phys"
	"emvia/internal/stat"
)

// ArrayChoice is one evaluated via-array option.
type ArrayChoice struct {
	// ArrayN is the configuration (n×n).
	ArrayN int
	// ExtentM is the lateral array span under the spacing rule, m.
	ExtentM float64
	// WorstCaseYears and MedianYears are the TTF percentiles under the
	// requested criterion.
	WorstCaseYears, MedianYears float64
	// Feasible is false when the configuration violates the wire width or
	// spacing rule (ExtentM and the TTF fields are then zero).
	Feasible bool
	// Reason explains infeasibility.
	Reason string
}

// OptimizeArraySpec frames the designer question the paper's Fig 9
// motivates: given a wire, a via budget and design rules, which array
// configuration maximizes the worst-case lifetime?
type OptimizeArraySpec struct {
	// Pattern is the mesh position of the intersection.
	Pattern cudd.Pattern
	// WireWidth is the wire width, m.
	WireWidth float64
	// ViaSpacing is the minimum via spacing design rule, m (0 = none).
	ViaSpacing float64
	// Candidates lists the n values to evaluate (default 1, 2, 4, 8).
	Candidates []int
	// Criterion is the array failure criterion (default R = 2×).
	Criterion ArrayCriterion
	// J is the total current density over the array, A/m² (default 1e10).
	J float64
	// Trials sizes the Monte Carlo (default 500).
	Trials int
	// Seed drives it.
	Seed int64
}

// OptimizeArray evaluates every candidate configuration with the full
// stress + redundancy pipeline and returns the choices (in candidate order)
// plus the index of the best feasible one by worst-case TTF. Infeasible
// candidates (array no longer fits the wire under the spacing rule) are
// reported, not skipped silently.
func (a *Analyzer) OptimizeArray(spec OptimizeArraySpec) (choices []ArrayChoice, best int, err error) {
	if spec.WireWidth == 0 {
		spec.WireWidth = a.Base.WireWidth
	}
	if len(spec.Candidates) == 0 {
		spec.Candidates = []int{1, 2, 4, 8}
	}
	if spec.Criterion == (ArrayCriterion{}) {
		spec.Criterion = ArrayResistance2x()
	}
	if spec.J == 0 {
		spec.J = a.referenceCurrentDensity()
	}
	if spec.Trials == 0 {
		spec.Trials = 500
	}

	base := a.Base
	base.WireWidth = spec.WireWidth
	base.ViaSpacing = spec.ViaSpacing

	best = -1
	for i, n := range spec.Candidates {
		p := base
		p.Pattern = spec.Pattern
		p.ArrayN = n
		v, verr := p.Validate()
		if verr != nil {
			choices = append(choices, ArrayChoice{ArrayN: n, Reason: verr.Error()})
			continue
		}
		// Use a spacing-aware analyzer clone so the stress cache keys do not
		// collide with the default-geometry entries.
		sub := &Analyzer{Base: base, EM: a.EM, FEA: a.FEA, PackageStress: a.PackageStress}
		c, cerr := sub.CharacterizeViaArray(spec.Pattern, n, spec.WireWidth, spec.J, spec.Criterion, spec.Trials, spec.Seed+int64(i))
		if cerr != nil {
			return nil, -1, fmt.Errorf("core: optimizing n=%d: %w", n, cerr)
		}
		e, eerr := stat.NewECDF(c.Result.Samples)
		if eerr != nil {
			return nil, -1, eerr
		}
		ch := ArrayChoice{
			ArrayN:         n,
			ExtentM:        v.ArrayExtent(),
			WorstCaseYears: phys.SecondsToYears(e.Percentile(0.003)),
			MedianYears:    phys.SecondsToYears(e.Percentile(0.5)),
			Feasible:       true,
		}
		choices = append(choices, ch)
		if best < 0 || ch.WorstCaseYears > choices[best].WorstCaseYears {
			best = i
		}
	}
	if best < 0 {
		return choices, -1, fmt.Errorf("core: no feasible array configuration for width %.2g m under a %.2g m spacing rule",
			spec.WireWidth, spec.ViaSpacing)
	}
	return choices, best, nil
}
