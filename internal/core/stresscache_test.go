package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"emvia/internal/cudd"
	"emvia/internal/fem"
	"emvia/internal/phys"
)

func testCache(t *testing.T) *StressCache {
	t.Helper()
	c, err := OpenStressCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testSigma() [][]float64 {
	return [][]float64{{4.1e8, 4.2e8}, {4.3e8, 4.4e8}}
}

func TestStressCacheHitMiss(t *testing.T) {
	c := testCache(t)
	p := cudd.DefaultParams()
	key := c.Key(p, fem.SolveOptions{})
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put(key, testSigma()); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("cache missed a stored entry")
	}
	if got[1][0] != 4.3e8 {
		t.Errorf("got[1][0] = %g, want 4.3e8", got[1][0])
	}
	// A different geometry must produce a different key (and thus miss).
	p2 := p
	p2.ArrayN++
	if k2 := c.Key(p2, fem.SolveOptions{}); k2 == key {
		t.Error("distinct params hashed to the same key")
	} else if _, ok := c.Get(k2); ok {
		t.Error("unrelated key hit")
	}
}

// TestStressCacheKeySolverSettings checks that solver settings that change
// the converged result participate in the key, with zero values resolved to
// fem.Solve's defaults so "default by omission" and "default explicitly"
// share entries.
func TestStressCacheKeySolverSettings(t *testing.T) {
	c := testCache(t)
	p := cudd.DefaultParams()
	base := c.Key(p, fem.SolveOptions{})
	if got := c.Key(p, fem.SolveOptions{Tol: 1e-8, Precond: "auto"}); got != base {
		t.Error("explicit defaults keyed differently from zero options")
	}
	if got := c.Key(p, fem.SolveOptions{Tol: 1e-4}); got == base {
		t.Error("looser tolerance did not change the key")
	}
	if got := c.Key(p, fem.SolveOptions{Precond: "jacobi"}); got == base {
		t.Error("preconditioner choice did not change the key")
	}
	// Worker count must NOT change the key: parallel kernels are
	// bit-identical to serial.
	if got := c.Key(p, fem.SolveOptions{Workers: 7}); got != base {
		t.Error("worker count changed the key")
	}
}

func TestStressCacheCorruptEntryIsMiss(t *testing.T) {
	c := testCache(t)
	p := cudd.DefaultParams()
	key := c.Key(p, fem.SolveOptions{})
	if err := c.Put(key, testSigma()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(c.Dir(), key+".json")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated write (e.g. torn copy from another filesystem).
	if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("truncated entry reported a hit")
	}
	// Recompute-and-rewrite restores the entry.
	if err := c.Put(key, testSigma()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("rewritten entry missed")
	}
	// Non-square sigma is also rejected.
	e := stressCacheEntry{Version: stressCacheVersion, Key: key, PeakSigmaT: [][]float64{{1, 2}, {3}}}
	raw, _ := json.Marshal(e)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("ragged sigma reported a hit")
	}
}

func TestStressCacheVersionBumpInvalidates(t *testing.T) {
	c := testCache(t)
	p := cudd.DefaultParams()
	key := c.Key(p, fem.SolveOptions{})
	if err := c.Put(key, testSigma()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(c.Dir(), key+".json")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e stressCacheEntry
	if err := json.Unmarshal(buf, &e); err != nil {
		t.Fatal(err)
	}
	e.Version = stressCacheVersion + 1 // entry written by a future format
	raw, _ := json.Marshal(e)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("version-mismatched entry reported a hit")
	}
}

func TestStressCacheConcurrentWriters(t *testing.T) {
	c := testCache(t)
	p := cudd.DefaultParams()
	key := c.Key(p, fem.SolveOptions{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := c.Put(key, testSigma()); err != nil {
					t.Error(err)
					return
				}
				if s, ok := c.Get(key); ok && s[0][0] != 4.1e8 {
					t.Errorf("torn read: %v", s[0])
					return
				}
			}
		}()
	}
	wg.Wait()
	got, ok := c.Get(key)
	if !ok || got[1][1] != 4.4e8 {
		t.Fatalf("final entry bad: ok=%v got=%v", ok, got)
	}
	// The atomic renames must not leave temp litter behind.
	ents, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.HasPrefix(de.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", de.Name())
		}
	}
}

func TestResolveStressCacheDir(t *testing.T) {
	if got := ResolveStressCacheDir("/x/y"); got != "/x/y" {
		t.Errorf("explicit dir: got %q", got)
	}
	t.Setenv("EMVIA_STRESS_CACHE", "/env/cache")
	if got := ResolveStressCacheDir(""); got != "/env/cache" {
		t.Errorf("env dir: got %q", got)
	}
	t.Setenv("EMVIA_STRESS_CACHE", "")
	if got := ResolveStressCacheDir(""); got == "" {
		t.Error("fallback dir empty")
	}
}

// TestAnalyzerPersistentCache proves StressFor consults the disk cache: a
// pre-seeded entry under the exact key the analyzer derives is returned
// without running any FEA (the seeded values are physically impossible, so a
// real solve could not produce them).
func TestAnalyzerPersistentCache(t *testing.T) {
	dir := t.TempDir()
	a := fastAnalyzer()
	if err := a.EnableStressCache(dir); err != nil {
		t.Fatal(err)
	}

	// First run: cold cache, real FEA, entry written to disk.
	s1, err := a.StressFor(cudd.Plus, a.Base.LayerPair, 2, 2*phys.Micron)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("cache dir has %d entries after first solve, want 1", len(ents))
	}

	// Second analyzer, same cache dir: must read the stored matrix back.
	b := fastAnalyzer()
	if err := b.EnableStressCache(dir); err != nil {
		t.Fatal(err)
	}
	s2, err := b.StressFor(cudd.Plus, b.Base.LayerPair, 2, 2*phys.Micron)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		for j := range s1[i] {
			if s1[i][j] != s2[i][j] {
				t.Fatalf("disk round-trip changed sigma[%d][%d]: %g != %g", i, j, s1[i][j], s2[i][j])
			}
		}
	}

	// Third analyzer with a poisoned entry: StressFor must return the
	// poisoned values, proving the FEA was skipped on a warm cache.
	p := b.Base
	p.Pattern = cudd.Plus
	p.ArrayN = 2
	p.WireWidth = 2 * phys.Micron
	key := b.Disk.Key(p, b.FEA)
	want := [][]float64{{-1, -2}, {-3, -4}}
	if err := b.Disk.Put(key, want); err != nil {
		t.Fatal(err)
	}
	cDir := fastAnalyzer()
	if err := cDir.EnableStressCache(dir); err != nil {
		t.Fatal(err)
	}
	got, err := cDir.StressFor(cudd.Plus, cDir.Base.LayerPair, 2, 2*phys.Micron)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != -1 || got[1][1] != -4 {
		t.Errorf("warm-cache StressFor ran FEA instead of reading disk: %v", got)
	}
}
