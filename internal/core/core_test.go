package core

import (
	"math"
	"testing"

	"emvia/internal/chartable"
	"emvia/internal/cudd"
	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/thermal"
)

// fastAnalyzer returns an analyzer with coarse FEA resolution for tests.
func fastAnalyzer() *Analyzer {
	a := NewAnalyzer()
	a.Base.Margin = 1.0 * phys.Micron
	a.Base.SubstrateThickness = 0.8 * phys.Micron
	a.Base.StepOutside = 0.5 * phys.Micron
	a.Base.StepZBulk = 1.0 * phys.Micron
	return a
}

func TestArrayCriterionMapping(t *testing.T) {
	if got := ArrayWeakestLink().failK(4); got != 1 {
		t.Errorf("weakest-link failK = %d", got)
	}
	if got := ArrayOpenCircuit().failK(4); got != 16 {
		t.Errorf("open-circuit failK = %d", got)
	}
	if got := ArrayResistance2x().failK(4); got != 8 {
		t.Errorf("R=2x failK = %d", got)
	}
	if got := ArrayResistance2x().failK(8); got != 32 {
		t.Errorf("R=2x failK(8) = %d", got)
	}
	if s := ArrayWeakestLink().String(); s != "Weakest-link" {
		t.Errorf("String = %q", s)
	}
	if s := ArrayOpenCircuit().String(); s != "R=inf" {
		t.Errorf("String = %q", s)
	}
	if s := ArrayResistance2x().String(); s != "R=2x" {
		t.Errorf("String = %q", s)
	}
}

func TestStressForMemoizes(t *testing.T) {
	a := fastAnalyzer()
	s1, err := a.StressFor(cudd.Plus, a.Base.LayerPair, 2, 2*phys.Micron)
	if err != nil {
		t.Fatal(err)
	}
	// Second call must hit the cache (same backing array).
	s2, err := a.StressFor(cudd.Plus, a.Base.LayerPair, 2, 2*phys.Micron)
	if err != nil {
		t.Fatal(err)
	}
	if &s1[0][0] != &s2[0][0] {
		t.Error("StressFor did not memoize")
	}
	if len(s1) != 2 || s1[0][0] <= 0 {
		t.Errorf("stress matrix malformed: %v", s1)
	}
}

func TestCharacterizeViaArray(t *testing.T) {
	a := fastAnalyzer()
	c, err := a.CharacterizeViaArray(cudd.Plus, 2, 2*phys.Micron, 1e10, ArrayOpenCircuit(), 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Model.FailK != 4 {
		t.Errorf("model FailK = %d, want 4", c.Model.FailK)
	}
	med := phys.SecondsToYears(c.Model.Dist.Median())
	if med < 0.5 || med > 50 {
		t.Errorf("array TTF median = %g years, implausible", med)
	}
}

func TestViaArrayModelsPatternOrdering(t *testing.T) {
	// L-pattern arrays see less stress than Plus → longer TTF (Fig 8b).
	a := fastAnalyzer()
	models, err := a.ViaArrayModels(2, 2*phys.Micron, 1e10, ArrayOpenCircuit(), 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 {
		t.Fatalf("models = %d patterns", len(models))
	}
	plus := models[cudd.Plus].Dist.Median()
	l := models[cudd.LShape].Dist.Median()
	if !(l > plus) {
		t.Errorf("L median %g not above Plus median %g", l, plus)
	}
}

func TestAnalyzeGridEndToEnd(t *testing.T) {
	a := fastAnalyzer()
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 8, 8
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Tune(0.05, 0.01); err != nil {
		t.Fatal(err)
	}
	report, err := a.AnalyzeGrid(GridAnalysis{
		Grid:            g,
		ArrayN:          2,
		ArrayCriterion:  ArrayOpenCircuit(),
		SystemCriterion: pdn.IRDrop,
		IRDropFrac:      0.10,
		CharTrials:      100,
		GridTrials:      60,
		Seed:            11,
	})
	if err != nil {
		t.Fatal(err)
	}
	worst := report.WorstCaseYears()
	med := report.MedianYears()
	t.Logf("grid TTF: worst-case %.2f y, median %.2f y", worst, med)
	if !(worst > 0 && worst <= med) {
		t.Errorf("percentiles inconsistent: worst %g, median %g", worst, med)
	}
	if med < 0.2 || med > 100 {
		t.Errorf("median %g years implausible", med)
	}
	if p := report.PercentileYears(0.9); p < med {
		t.Errorf("90th percentile %g below median %g", p, med)
	}
}

func TestAnalyzeGridCriteriaOrdering(t *testing.T) {
	// Table 2's structure: weakest-link system < IR-drop system for the
	// same array criterion; weakest-link array < open-circuit array for the
	// same system criterion.
	a := fastAnalyzer()
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 8, 8
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Tune(0.05, 0.01); err != nil {
		t.Fatal(err)
	}
	run := func(sys pdn.Criterion, arr ArrayCriterion) float64 {
		t.Helper()
		rep, err := a.AnalyzeGrid(GridAnalysis{
			Grid:            g,
			ArrayN:          2,
			ArrayCriterion:  arr,
			SystemCriterion: sys,
			IRDropFrac:      0.10,
			CharTrials:      150,
			GridTrials:      80,
			Seed:            13,
		})
		if err != nil {
			t.Fatalf("AnalyzeGrid(%v, %v): %v", sys, arr, err)
		}
		return rep.MedianYears()
	}
	wlWL := run(pdn.WeakestLink, ArrayWeakestLink())
	wlInf := run(pdn.WeakestLink, ArrayOpenCircuit())
	irWL := run(pdn.IRDrop, ArrayWeakestLink())
	irInf := run(pdn.IRDrop, ArrayOpenCircuit())
	t.Logf("median years: WL/WL=%.2f WL/Inf=%.2f IR/WL=%.2f IR/Inf=%.2f", wlWL, wlInf, irWL, irInf)
	if !(wlWL < wlInf && irWL < irInf) {
		t.Error("array criterion ordering violated")
	}
	if !(wlWL < irWL && wlInf < irInf) {
		t.Error("system criterion ordering violated")
	}
}

func TestAnalyzeGridValidation(t *testing.T) {
	a := fastAnalyzer()
	if _, err := a.AnalyzeGrid(GridAnalysis{}); err == nil {
		t.Error("accepted nil grid")
	}
}

func TestBuildStressTableSmall(t *testing.T) {
	a := fastAnalyzer()
	count := 0
	tab, err := a.BuildStressTable([]int{1}, []float64{2 * phys.Micron}, func(k chartable.Key, w float64) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if count != 9 {
		t.Errorf("progress calls = %d, want 9", count)
	}
	// 3 layer pairs × 3 patterns × 1 config × 1 width = 9 entries.
	if tab.Len() != 9 {
		t.Errorf("table Len = %d, want 9", tab.Len())
	}
}

func TestWorstCaseBelowMedianProperty(t *testing.T) {
	if ArrayOpenCircuit().ResistanceFactor != math.Inf(1) {
		t.Error("open circuit factor not +Inf")
	}
}

func TestPackageStressShiftsSigma(t *testing.T) {
	a := fastAnalyzer()
	base, err := a.StressFor(cudd.Plus, a.Base.LayerPair, 2, 2*phys.Micron)
	if err != nil {
		t.Fatal(err)
	}
	a.PackageStress = 30e6
	shifted, err := a.StressFor(cudd.Plus, a.Base.LayerPair, 2, 2*phys.Micron)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		for j := range base[i] {
			if math.Abs(shifted[i][j]-base[i][j]-30e6) > 1 {
				t.Errorf("via (%d,%d): shift = %g, want 30e6", i, j, shifted[i][j]-base[i][j])
			}
		}
	}
	// Package stress raises σ_T and must shorten the array TTF.
	a.PackageStress = 0
	c0, err := a.CharacterizeViaArray(cudd.Plus, 2, 2*phys.Micron, 1e10, ArrayOpenCircuit(), 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	a.PackageStress = 40e6
	c1, err := a.CharacterizeViaArray(cudd.Plus, 2, 2*phys.Micron, 1e10, ArrayOpenCircuit(), 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Model.Dist.Median() >= c0.Model.Dist.Median() {
		t.Errorf("package stress did not shorten TTF: %g vs %g",
			c1.Model.Dist.Median(), c0.Model.Dist.Median())
	}
}

func TestAnalyzeGridThermal(t *testing.T) {
	a := fastAnalyzer()
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 8, 8
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Tune(0.065, 0.01); err != nil {
		t.Fatal(err)
	}
	analysis := GridAnalysis{
		Grid:            g,
		ArrayN:          2,
		ArrayCriterion:  ArrayOpenCircuit(),
		SystemCriterion: pdn.IRDrop,
		IRDropFrac:      0.10,
		CharTrials:      100,
		GridTrials:      50,
		Seed:            31,
	}
	rep, err := a.AnalyzeGridThermal(analysis, thermal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ViaTempsC) != len(g.Vias) || len(rep.Scale) != len(g.Vias) {
		t.Fatalf("report lengths: temps %d scale %d", len(rep.ViaTempsC), len(rep.Scale))
	}
	for k, s := range rep.Scale {
		if s <= 0 {
			t.Fatalf("scale[%d] = %g", k, s)
		}
	}
	// The EM model is characterized at 105 °C; the compact package here
	// runs cooler, so thermal awareness should not shorten life below the
	// uniform-worst-case analysis by much — and it must stay same order.
	uniform, err := a.AnalyzeGrid(analysis)
	if err != nil {
		t.Fatal(err)
	}
	rU, rT := uniform.MedianYears(), rep.Grid.MedianYears()
	t.Logf("uniform 105C median %.2f y, thermal-aware median %.2f y (die max %.1f C)",
		rU, rT, rep.Map.MaxTemp())
	if rT < rU/20 || rT > rU*50 {
		t.Errorf("thermal-aware TTF %g wildly off uniform %g", rT, rU)
	}
	// Hotter arrays must get smaller scales: correlation check.
	var hotScale, coolScale float64
	hotT, coolT := -1e9, 1e9
	for k := range rep.Scale {
		if rep.ViaTempsC[k] > hotT {
			hotT, hotScale = rep.ViaTempsC[k], rep.Scale[k]
		}
		if rep.ViaTempsC[k] < coolT {
			coolT, coolScale = rep.ViaTempsC[k], rep.Scale[k]
		}
	}
	if hotT > coolT && hotScale >= coolScale {
		t.Errorf("hottest array (%.1f °C, scale %.3g) not aging faster than coolest (%.1f °C, scale %.3g)",
			hotT, hotScale, coolT, coolScale)
	}
}

func TestAnalyzeMultiLayerGrid(t *testing.T) {
	a := fastAnalyzer()
	spec := pdn.MultiLayerSpec{
		Name: "ML", Layers: 3, NX: 6, NY: 6,
		Pitch: 100e-6, WireWidth: 2e-6, WireThickness: 0.45e-6,
		RhoCu: 2.75e-8, Vdd: 1.8, PadPeriod: 3, TotalLoad: 0.1,
		ViaArrayR: 0.05, Seed: 4,
	}
	ml, err := pdn.GenerateMultiLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ml.Grid.Tune(0.065, 0.01); err != nil {
		t.Fatal(err)
	}
	rep, err := a.AnalyzeMultiLayerGrid(MultiLayerAnalysis{
		Grid:            ml,
		ArrayN:          2,
		ArrayCriterion:  ArrayOpenCircuit(),
		SystemCriterion: pdn.IRDrop,
		IRDropFrac:      0.10,
		CharTrials:      100,
		GridTrials:      40,
		Seed:            41,
	})
	if err != nil {
		t.Fatal(err)
	}
	med := rep.MedianYears()
	t.Logf("multi-layer grid median TTF %.2f years", med)
	if med < 0.2 || med > 100 {
		t.Errorf("median %g years implausible", med)
	}
	if rep.WorstCaseYears() > med {
		t.Error("percentiles inverted")
	}
	if _, err := a.AnalyzeMultiLayerGrid(MultiLayerAnalysis{}); err == nil {
		t.Error("accepted nil grid")
	}
}

func TestPercentileCIYears(t *testing.T) {
	a := fastAnalyzer()
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 8, 8
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Tune(0.065, 0.01); err != nil {
		t.Fatal(err)
	}
	rep, err := a.AnalyzeGrid(GridAnalysis{
		Grid: g, ArrayN: 2, ArrayCriterion: ArrayOpenCircuit(),
		SystemCriterion: pdn.IRDrop, IRDropFrac: 0.10,
		CharTrials: 100, GridTrials: 120, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := rep.PercentileCIYears(0.003, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	point := rep.WorstCaseYears()
	if !(lo <= point && point <= hi) {
		t.Errorf("CI [%g, %g] excludes point estimate %g", lo, hi, point)
	}
	if hi <= lo {
		t.Errorf("degenerate CI [%g, %g]", lo, hi)
	}
}

func TestOptimizeArray(t *testing.T) {
	a := fastAnalyzer()
	choices, best, err := a.OptimizeArray(OptimizeArraySpec{
		Pattern:    cudd.Plus,
		Candidates: []int{1, 2, 4},
		Trials:     150,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 3 || best < 0 || best >= 3 {
		t.Fatalf("choices=%d best=%d", len(choices), best)
	}
	for _, c := range choices {
		if !c.Feasible {
			t.Fatalf("n=%d unexpectedly infeasible: %s", c.ArrayN, c.Reason)
		}
		if c.WorstCaseYears <= 0 || c.MedianYears < c.WorstCaseYears {
			t.Errorf("n=%d: worst %g median %g", c.ArrayN, c.WorstCaseYears, c.MedianYears)
		}
	}
	// Redundancy + stress: the best choice is not the single via.
	if choices[best].ArrayN == 1 {
		t.Errorf("optimizer picked the 1x1 via (worst=%.2f)", choices[best].WorstCaseYears)
	}
	// A brutal spacing rule makes large arrays infeasible and is reported.
	ruled, best2, err := a.OptimizeArray(OptimizeArraySpec{
		Pattern:    cudd.Plus,
		ViaSpacing: 0.35 * phys.Micron,
		Candidates: []int{2, 8},
		Trials:     100,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ruled[1].Feasible {
		t.Error("8x8 under a 0.35 um rule should not fit a 2 um wire")
	}
	if ruled[1].Reason == "" {
		t.Error("infeasible choice lacks a reason")
	}
	if best2 != 0 {
		t.Errorf("best = %d, want the only feasible candidate", best2)
	}
	// All candidates infeasible is an error.
	if _, _, err := a.OptimizeArray(OptimizeArraySpec{
		Pattern:    cudd.Plus,
		ViaSpacing: 2 * phys.Micron,
		Candidates: []int{4, 8},
		Trials:     50,
	}); err == nil {
		t.Error("accepted all-infeasible spec")
	}
}
