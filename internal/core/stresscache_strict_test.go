package core

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"

	"emvia/internal/cudd"
	"emvia/internal/fem"
)

// TestStressCacheKeyCoversAllParams walks every leaf field of cudd.Params by
// reflection, perturbs it, and requires the cache key to change: a field the
// binary encoder misses would alias physically different structures onto one
// cache entry. The field-count pin makes adding a Params field a compile-time
// reminder to extend appendParams and bump stressCacheVersion.
func TestStressCacheKeyCoversAllParams(t *testing.T) {
	rt := reflect.TypeOf(cudd.Params{})
	if rt.NumField() != stressKeyParamFields {
		t.Fatalf("cudd.Params has %d fields but the cache key encodes %d: "+
			"extend appendParams, bump stressCacheVersion and update stressKeyParamFields together",
			rt.NumField(), stressKeyParamFields)
	}

	// Collect the index path of every leaf (int or float64) field,
	// descending into embedded structs like LayerPair.
	type leaf struct {
		path []int
		name string
	}
	var leaves []leaf
	var walk func(t reflect.Type, path []int, name string)
	walk = func(t reflect.Type, path []int, name string) {
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			p := append(append([]int(nil), path...), i)
			n := name + f.Name
			if f.Type.Kind() == reflect.Struct {
				walk(f.Type, p, n+".")
				continue
			}
			leaves = append(leaves, leaf{path: p, name: n})
		}
	}
	walk(rt, nil, "")

	c := testCache(t)
	base := cudd.DefaultParams()
	baseKey := c.Key(base, fem.SolveOptions{})
	for _, lf := range leaves {
		q := base
		v := reflect.ValueOf(&q).Elem().FieldByIndex(lf.path)
		switch v.Kind() {
		case reflect.Int:
			v.SetInt(v.Int() + 1)
		case reflect.Float64:
			v.SetFloat(v.Float() + 1)
		default:
			t.Fatalf("cudd.Params.%s has kind %s: extend the key encoder and this test", lf.name, v.Kind())
		}
		if c.Key(q, fem.SolveOptions{}) == baseKey {
			t.Errorf("perturbing cudd.Params.%s did not change the cache key", lf.name)
		}
	}
}

// TestStressCacheStrictDecoder pins the hand-rolled entry decoder against
// encoding/json on both sides: inputs looser than the JSON grammar (which
// strconv.ParseFloat alone would happily take) must be rejected, and every
// input it accepts must decode to the identical matrix under json.Unmarshal.
func TestStressCacheStrictDecoder(t *testing.T) {
	const key = "k"
	entry := func(matrix string) []byte {
		return []byte(fmt.Sprintf(`{"version":%d,"key":%q,"peak_sigma_t_pa":%s}`, stressCacheVersion, key, matrix))
	}

	accept := [][]byte{
		entry(`[[1]]`),
		entry(`[[1,2],[3,4]]`),
		entry(`[[4.1e+08,-2.5e-3],[0.0,410000000]]`),
		entry(`[[-0,1],[1e2,0.5]]`),
		[]byte(fmt.Sprintf(" {\n\t\"version\": %d ,\n \"key\": %q ,\n \"peak_sigma_t_pa\": [ [ 1 , 2 ] , [ 3 , 4 ] ]\n} \n", stressCacheVersion, key)),
	}
	for _, in := range accept {
		got, ok := decodeStressEntry(in, key)
		if !ok {
			t.Errorf("rejected valid entry %s", in)
			continue
		}
		var e stressCacheEntry
		if err := json.Unmarshal(in, &e); err != nil {
			t.Fatalf("decoder accepted input encoding/json rejects: %s (%v)", in, err)
		}
		if !reflect.DeepEqual(got, e.PeakSigmaT) {
			t.Errorf("decoder disagrees with encoding/json on %s:\n got %v\nwant %v", in, got, e.PeakSigmaT)
		}
	}

	reject := map[string][]byte{
		"NaN value":            entry(`[[NaN]]`),
		"Infinity value":       entry(`[[Infinity]]`),
		"negative Infinity":    entry(`[[-Infinity]]`),
		"hex float":            entry(`[[0x1p4]]`),
		"leading plus":         entry(`[[+1]]`),
		"leading zeros":        entry(`[[01.5]]`),
		"bare dot":             entry(`[[.5]]`),
		"trailing dot":         entry(`[[1.]]`),
		"dangling exponent":    entry(`[[1e]]`),
		"signed empty exp":     entry(`[[1e+]]`),
		"underscore digits":    entry(`[[1_000]]`),
		"out of range":         entry(`[[1e999]]`),
		"trailing comma":       entry(`[[1,2],[3,4],]`),
		"row trailing comma":   entry(`[[1,2,],[3,4]]`),
		"ragged matrix":        entry(`[[1,2],[3]]`),
		"non-square matrix":    entry(`[[1,2]]`),
		"empty matrix":         entry(`[]`),
		"empty row":            entry(`[[],[]]`),
		"null matrix":          entry(`null`),
		"string in matrix":     entry(`[["1"]]`),
		"trailing garbage":     append(entry(`[[1]]`), 'x'),
		"second document":      append(entry(`[[1]]`), entry(`[[1]]`)...),
		"truncated":            entry(`[[1]]`)[:20],
		"version float":        []byte(fmt.Sprintf(`{"version":%d.0,"key":"k","peak_sigma_t_pa":[[1]]}`, stressCacheVersion)),
		"version skew":         []byte(`{"version":1,"key":"k","peak_sigma_t_pa":[[1]]}`),
		"key mismatch":         []byte(fmt.Sprintf(`{"version":%d,"key":"other","peak_sigma_t_pa":[[1]]}`, stressCacheVersion)),
		"single-quoted string": []byte(fmt.Sprintf(`{'version':%d,'key':'k','peak_sigma_t_pa':[[1]]}`, stressCacheVersion)),
	}
	for name, in := range reject {
		if _, ok := decodeStressEntry(in, key); ok {
			t.Errorf("%s accepted: %s", name, in)
		}
	}
}

// TestStressCacheRoundTripMatchesJSON stores an entry through Put and checks
// the strict decoder reproduces json.Unmarshal bit for bit on the canonical
// on-disk form, including exponent-formatted and negative values.
func TestStressCacheRoundTripMatchesJSON(t *testing.T) {
	c := testCache(t)
	key := c.Key(cudd.DefaultParams(), fem.SolveOptions{})
	want := [][]float64{
		{4.1e8, -2.75e-19, 0},
		{1.0 / 3.0, 6.02214076e23, -7},
		{9.999999999999999e-5, 2, 123456789.25},
	}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		t.Fatal(err)
	}
	var e stressCacheEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	got, ok := decodeStressEntry(raw, key)
	if !ok {
		t.Fatalf("strict decoder rejected Put's own output: %s", raw)
	}
	if !reflect.DeepEqual(got, e.PeakSigmaT) || !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drifted:\n got  %v\n json %v\n want %v", got, e.PeakSigmaT, want)
	}
}

// TestStressCacheWarmPathAllocs pins the per-lookup allocation budget of the
// warm disk path (Key derivation + Get): the key hex string, the path string,
// its NUL-terminated syscall copy, and the two matrix slices. Regressing this
// shows up directly in BenchmarkStressCacheWarm.
func TestStressCacheWarmPathAllocs(t *testing.T) {
	c := testCache(t)
	p := cudd.DefaultParams()
	key := c.Key(p, fem.SolveOptions{})
	sigma := make([][]float64, 4)
	for i := range sigma {
		sigma[i] = []float64{4.1e8, 4.2e8, 4.3e8, 4.4e8}
	}
	if err := c.Put(key, sigma); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		k := c.Key(p, fem.SolveOptions{})
		s, ok := c.Get(k)
		if !ok || s[2][2] != 4.3e8 {
			t.Fatalf("warm lookup failed: ok=%v", ok)
		}
	})
	if allocs > 6 {
		t.Errorf("warm Key+Get costs %.0f allocs, want ≤ 6", allocs)
	}
}
