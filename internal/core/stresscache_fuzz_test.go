package core

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// FuzzStressCacheGet throws arbitrary bytes at the on-disk entry decoder:
// whatever a crashed writer, a manual edit or a skewed build leaves in the
// cache directory, Get must never panic and must only report a hit for an
// entry that is well-formed in every respect (version, key echo, square
// stress matrix). A hit on anything else would silently feed garbage stress
// values into the TTF model.
func FuzzStressCacheGet(f *testing.F) {
	const key = "fuzzkey"

	// Seeds: a valid entry plus the corruption classes Get must reject.
	valid, err := json.Marshal(stressCacheEntry{
		Version:    stressCacheVersion,
		Key:        key,
		PeakSigmaT: [][]float64{{1e8, 2e8}, {3e8, 4e8}},
	})
	if err != nil {
		f.Fatal(err)
	}
	seed := func(body string) []byte {
		return []byte(fmt.Sprintf(`{"version":%d,%s}`, stressCacheVersion, body))
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                             // truncated mid-write
	f.Add([]byte{})                                                         // empty file
	f.Add([]byte("not json at all"))                                        // garbage
	f.Add([]byte(`{"version":99,"key":"fuzzkey","peak_sigma_t_pa":[[1]]}`)) // version skew
	f.Add(seed(`"key":"other","peak_sigma_t_pa":[[1]]`))                    // key mismatch
	f.Add(seed(`"key":"fuzzkey","peak_sigma_t_pa":[]`))                     // empty matrix
	f.Add(seed(`"key":"fuzzkey","peak_sigma_t_pa":[[1],[2,3]]`))            // ragged matrix
	f.Add(seed(`"key":"fuzzkey","peak_sigma_t_pa":[[1,2]]`))                // non-square matrix
	f.Add(seed(`"key":"fuzzkey","peak_sigma_t_pa":null`))                   // null matrix
	f.Add(seed(`"key":"fuzzkey","peak_sigma_t_pa":[[NaN]]`))                // non-JSON number
	f.Add(seed(`"key":"fuzzkey","peak_sigma_t_pa":[[0x1p4]]`))              // hex float

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		c, err := OpenStressCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(c.path(key), data, 0o644); err != nil {
			t.Fatal(err)
		}
		sigma, ok := c.Get(key)
		if !ok {
			if sigma != nil {
				t.Fatalf("miss returned a non-nil matrix (%d rows)", len(sigma))
			}
			return
		}
		// A hit must have decoded a structurally valid entry: re-verify the
		// invariants Get promises its caller independently of its own checks.
		var e stressCacheEntry
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatalf("hit on undecodable data: %v", err)
		}
		if e.Version != stressCacheVersion {
			t.Fatalf("hit on version %d, want %d", e.Version, stressCacheVersion)
		}
		if e.Key != key {
			t.Fatalf("hit on key %q, want %q", e.Key, key)
		}
		if len(sigma) == 0 {
			t.Fatal("hit returned an empty matrix")
		}
		for i, row := range sigma {
			if len(row) != len(sigma) {
				t.Fatalf("hit returned non-square matrix: row %d has %d entries, want %d", i, len(row), len(sigma))
			}
		}
	})
}

// TestStressCacheGetMissVsCorrupt pins the miss/corrupt split the telemetry
// layer reports: a nonexistent entry is a plain miss, while present-but-bad
// entries are classified corrupt — and both present as misses to the caller.
func TestStressCacheGetMissVsCorrupt(t *testing.T) {
	c, err := OpenStressCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, outcome := c.get("absent"); outcome != cacheMiss {
		t.Errorf("nonexistent entry classified %d, want miss", outcome)
	}
	if err := os.WriteFile(c.path("bad"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, outcome := c.get("bad"); outcome != cacheCorrupt {
		t.Errorf("truncated entry classified %d, want corrupt", outcome)
	}
	if sigma, ok := c.Get("bad"); ok || sigma != nil {
		t.Error("corrupt entry surfaced as a hit to the caller")
	}
}
