package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"emvia/internal/cudd"
	"emvia/internal/fem"
	"emvia/internal/mat"
	"emvia/internal/telemetry"
)

// StressCache is the persistent on-disk layer under the Analyzer's in-memory
// stress map: one JSON file per FEA characterization, addressed by a content
// hash of everything the result depends on — the full structure parameters
// (geometry, temperatures, mesh steps), the material table and the solver
// settings that affect the converged solution. Repeated CLI invocations with
// the same technology therefore skip the FEA entirely.
//
// Writes go through a temp file in the cache directory followed by an atomic
// rename, so concurrent writers (or a crash mid-write) can never leave a
// partially written entry: readers see either the old file, the new file or
// no file. Unreadable, truncated or version-mismatched entries are treated
// as misses and rewritten after recompute.
type StressCache struct {
	dir string
}

// stressCacheVersion is bumped whenever the FEA discretization or the entry
// format changes meaning; old entries then miss and are recomputed.
const stressCacheVersion = 1

// stressCacheEntry is the on-disk format (cf. viaarray/serialize.go).
type stressCacheEntry struct {
	Version    int         `json:"version"`
	Key        string      `json:"key"`
	PeakSigmaT [][]float64 `json:"peak_sigma_t_pa"`
}

// stressCacheKeyPayload is the canonical content hashed into a cache key.
// Field order is fixed and maps marshal with sorted keys, so the encoding is
// deterministic. Workers is deliberately absent: worker count never changes
// the result (bit-identical parallel kernels).
type stressCacheKeyPayload struct {
	Version   int                    `json:"version"`
	Params    cudd.Params            `json:"params"`
	Tol       float64                `json:"tol"`
	MaxIter   int                    `json:"max_iter"`
	Precond   string                 `json:"precond"`
	Materials map[mat.ID]mat.Elastic `json:"materials"`
}

// ResolveStressCacheDir picks the cache directory: an explicit dir wins,
// then the EMVIA_STRESS_CACHE environment variable, then
// os.UserCacheDir()/emvia/stress.
func ResolveStressCacheDir(dir string) string {
	if dir != "" {
		return dir
	}
	if env := os.Getenv("EMVIA_STRESS_CACHE"); env != "" {
		return env
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return ".emvia-stress-cache"
	}
	return filepath.Join(base, "emvia", "stress")
}

// OpenStressCache creates (if needed) and opens a cache rooted at dir; empty
// dir resolves via ResolveStressCacheDir.
func OpenStressCache(dir string) (*StressCache, error) {
	dir = ResolveStressCacheDir(dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: stress cache dir: %w", err)
	}
	return &StressCache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *StressCache) Dir() string { return c.dir }

// Key derives the content-addressed cache key for one characterization.
func (c *StressCache) Key(p cudd.Params, opt fem.SolveOptions) string {
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-8 // fem.Solve's default
	}
	precond := opt.Precond
	if precond == "" {
		precond = "auto"
	}
	payload := stressCacheKeyPayload{
		Version:   stressCacheVersion,
		Params:    p,
		Tol:       tol,
		MaxIter:   opt.MaxIter,
		Precond:   precond,
		Materials: mat.Table1,
	}
	buf, err := json.Marshal(payload)
	if err != nil {
		// Params and the material table are plain value structs; this
		// cannot fail for well-formed inputs.
		panic(fmt.Sprintf("core: stress cache key encoding: %v", err))
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

func (c *StressCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads the entry for key. Any read, decode, version or key mismatch is
// reported as a miss — the caller recomputes and rewrites.
func (c *StressCache) Get(key string) ([][]float64, bool) {
	sigma, outcome := c.get(key)
	if r := telemetry.Default(); r != nil {
		switch outcome {
		case cacheHit:
			r.Counter(telemetry.StressDiskHits).Inc()
		case cacheMiss:
			r.Counter(telemetry.StressDiskMisses).Inc()
		case cacheCorrupt:
			r.Counter(telemetry.StressDiskBad).Inc()
		}
	}
	return sigma, outcome == cacheHit
}

// cacheOutcome distinguishes a plain miss (the entry does not exist) from a
// corrupt entry (present but unreadable, truncated, version-skewed or
// shape-invalid). Both behave as misses toward the caller; telemetry counts
// them separately because corruption indicates a real problem — a crashed
// writer bypassing the atomic rename, manual edits, a skewed build — while
// misses are just cold caches.
type cacheOutcome int

const (
	cacheHit cacheOutcome = iota
	cacheMiss
	cacheCorrupt
)

func (c *StressCache) get(key string) ([][]float64, cacheOutcome) {
	buf, err := os.ReadFile(c.path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, cacheMiss
		}
		return nil, cacheCorrupt
	}
	var e stressCacheEntry
	if err := json.Unmarshal(buf, &e); err != nil {
		return nil, cacheCorrupt
	}
	if e.Version != stressCacheVersion || e.Key != key || len(e.PeakSigmaT) == 0 {
		return nil, cacheCorrupt
	}
	for _, row := range e.PeakSigmaT {
		if len(row) != len(e.PeakSigmaT) {
			return nil, cacheCorrupt
		}
	}
	return e.PeakSigmaT, cacheHit
}

// Put stores sigma under key via write-to-temp + atomic rename.
func (c *StressCache) Put(key string, sigma [][]float64) error {
	buf, err := json.Marshal(stressCacheEntry{
		Version:    stressCacheVersion,
		Key:        key,
		PeakSigmaT: sigma,
	})
	if err != nil {
		return fmt.Errorf("core: stress cache encode: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-"+key+"-*")
	if err != nil {
		return fmt.Errorf("core: stress cache write: %w", err)
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("core: stress cache write: %w", werr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: stress cache rename: %w", err)
	}
	return nil
}
