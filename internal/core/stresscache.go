package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"unsafe"

	"emvia/internal/cudd"
	"emvia/internal/fem"
	"emvia/internal/mat"
	"emvia/internal/telemetry"
)

// StressCache is the persistent on-disk layer under the Analyzer's in-memory
// stress map: one JSON file per FEA characterization, addressed by a content
// hash of everything the result depends on — the full structure parameters
// (geometry, temperatures, mesh steps), the material table and the solver
// settings that affect the converged solution. Repeated CLI invocations with
// the same technology therefore skip the FEA entirely.
//
// Writes go through a temp file in the cache directory followed by an atomic
// rename, so concurrent writers (or a crash mid-write) can never leave a
// partially written entry: readers see either the old file, the new file or
// no file. Unreadable, truncated or version-mismatched entries are treated
// as misses and rewritten after recompute.
type StressCache struct {
	dir string
}

// stressCacheVersion is bumped whenever the FEA discretization, the key
// schema or the entry format changes meaning; old entries then miss and are
// recomputed. Version 2 switched the key payload from JSON to the fixed
// binary layout below.
const stressCacheVersion = 2

// stressKeyParamFields pins the number of cudd.Params fields the binary key
// encoding covers. appendParams must encode every field, so adding a field
// to cudd.Params requires extending appendParams, bumping stressCacheVersion
// and updating this count — a reflection test enforces all three.
const stressKeyParamFields = 21

// stressCacheEntry is the on-disk format (cf. viaarray/serialize.go). Put
// writes it with encoding/json; Get decodes it with a strict hand-rolled
// scanner (see decodeStressEntry) that accepts a subset of what
// encoding/json would.
type stressCacheEntry struct {
	Version    int         `json:"version"`
	Key        string      `json:"key"`
	PeakSigmaT [][]float64 `json:"peak_sigma_t_pa"`
}

// ResolveStressCacheDir picks the cache directory: an explicit dir wins,
// then the EMVIA_STRESS_CACHE environment variable, then
// os.UserCacheDir()/emvia/stress.
func ResolveStressCacheDir(dir string) string {
	if dir != "" {
		return dir
	}
	if env := os.Getenv("EMVIA_STRESS_CACHE"); env != "" {
		return env
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return ".emvia-stress-cache"
	}
	return filepath.Join(base, "emvia", "stress")
}

// OpenStressCache opens a cache rooted at dir; empty dir resolves via
// ResolveStressCacheDir. The directory itself is created lazily on first
// Put, so opening (which happens on every CLI start, and once per iteration
// in the warm-cache benchmark) touches the filesystem not at all.
func OpenStressCache(dir string) (*StressCache, error) {
	return &StressCache{dir: ResolveStressCacheDir(dir)}, nil
}

// Dir returns the cache directory.
func (c *StressCache) Dir() string { return c.dir }

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// appendParams lays out every cudd.Params field in declaration order. The
// layout is fixed-width, so no separators are needed for injectivity (the
// one variable-length key component, the preconditioner name, is
// length-prefixed by the caller).
func appendParams(b []byte, p *cudd.Params) []byte {
	b = appendU64(b, uint64(p.Pattern))
	b = appendU64(b, uint64(p.LayerPair.Lower))
	b = appendU64(b, uint64(p.LayerPair.Upper))
	b = appendU64(b, uint64(p.ArrayN))
	b = appendF64(b, p.WireWidth)
	b = appendF64(b, p.ViaArea)
	b = appendF64(b, p.ViaSpacing)
	b = appendF64(b, p.AnnealT)
	b = appendF64(b, p.OperatingT)
	b = appendF64(b, p.MetalThicknessIntermediate)
	b = appendF64(b, p.MetalThicknessTop)
	b = appendF64(b, p.ViaHeight)
	b = appendF64(b, p.CapThickness)
	b = appendF64(b, p.LinerThickness)
	b = appendF64(b, p.Margin)
	b = appendF64(b, p.SubstrateThickness)
	b = appendF64(b, p.UnderILD)
	b = appendF64(b, p.OverILD)
	b = appendF64(b, p.StepArray)
	b = appendF64(b, p.StepOutside)
	b = appendF64(b, p.StepZMetal)
	b = appendF64(b, p.StepZBulk)
	return b
}

// Key derives the content-addressed cache key for one characterization: a
// SHA-256 over a fixed binary payload covering the schema version, every
// structure parameter, the solver settings that change the converged result
// (worker count deliberately excluded — parallel kernels are bit-identical)
// and the material table. The payload fits a stack buffer, so deriving a key
// costs a single allocation (the hex string).
func (c *StressCache) Key(p cudd.Params, opt fem.SolveOptions) string {
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-8 // fem.Solve's default
	}
	precond := opt.Precond
	if precond == "" {
		precond = "auto"
	}
	var arr [512]byte
	b := append(arr[:0], "emvia-stress"...)
	b = appendU64(b, stressCacheVersion)
	b = appendParams(b, &p)
	b = appendF64(b, tol)
	b = appendU64(b, uint64(opt.MaxIter))
	b = appendU64(b, uint64(len(precond)))
	b = append(b, precond...)
	// The material table is a map; scanning the full (one-byte) ID space in
	// order makes the encoding deterministic without sorting allocations.
	for id := 0; id < 256; id++ {
		e, ok := mat.Table1[mat.ID(id)]
		if !ok {
			continue
		}
		b = append(b, byte(id))
		b = appendF64(b, e.E)
		b = appendF64(b, e.Nu)
		b = appendF64(b, e.CTE)
	}
	sum := sha256.Sum256(b)
	var dst [2 * sha256.Size]byte
	hex.Encode(dst[:], sum[:])
	return string(dst[:])
}

func (c *StressCache) path(key string) string {
	return c.dir + string(os.PathSeparator) + key + ".json"
}

// Get loads the entry for key. Any read, decode, version or key mismatch is
// reported as a miss — the caller recomputes and rewrites.
func (c *StressCache) Get(key string) ([][]float64, bool) {
	sigma, outcome := c.get(key)
	if r := telemetry.Default(); r != nil {
		switch outcome {
		case cacheHit:
			r.Counter(telemetry.StressDiskHits).Inc()
		case cacheMiss:
			r.Counter(telemetry.StressDiskMisses).Inc()
		case cacheCorrupt:
			r.Counter(telemetry.StressDiskBad).Inc()
		}
	}
	return sigma, outcome == cacheHit
}

// cacheOutcome distinguishes a plain miss (the entry does not exist) from a
// corrupt entry (present but unreadable, truncated, version-skewed or
// shape-invalid). Both behave as misses toward the caller; telemetry counts
// them separately because corruption indicates a real problem — a crashed
// writer bypassing the atomic rename, manual edits, a skewed build — while
// misses are just cold caches.
type cacheOutcome int

const (
	cacheHit cacheOutcome = iota
	cacheMiss
	cacheCorrupt
)

// stressReadBuf recycles the file-content scratch across Gets (and across
// StressCache instances — the bytes never outlive one get call, which copies
// the decoded floats out before returning).
var stressReadBuf = sync.Pool{New: func() any { b := make([]byte, 0, 16<<10); return &b }}

func (c *StressCache) get(key string) ([][]float64, cacheOutcome) {
	bp := stressReadBuf.Get().(*[]byte)
	defer func() { stressReadBuf.Put(bp) }()
	buf, err := readEntryFile(c.path(key), *bp)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, cacheMiss
		}
		return nil, cacheCorrupt
	}
	*bp = buf
	sigma, ok := decodeStressEntry(buf, key)
	if !ok {
		return nil, cacheCorrupt
	}
	return sigma, cacheHit
}

// Put stores sigma under key via write-to-temp + atomic rename, creating the
// cache directory on first use (deferred out of OpenStressCache so opening a
// cache stays read-only).
func (c *StressCache) Put(key string, sigma [][]float64) error {
	buf, err := json.Marshal(stressCacheEntry{
		Version:    stressCacheVersion,
		Key:        key,
		PeakSigmaT: sigma,
	})
	if err != nil {
		return fmt.Errorf("core: stress cache encode: %w", err)
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("core: stress cache dir: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-"+key+"-*")
	if err != nil {
		return fmt.Errorf("core: stress cache write: %w", err)
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("core: stress cache write: %w", werr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: stress cache rename: %w", err)
	}
	return nil
}

// decodeStressEntry is a strict, allocation-light decoder for the on-disk
// entry format. It accepts exactly the shape Put writes — the three fields
// in order, arbitrary JSON whitespace between tokens — and is deliberately
// no more permissive than encoding/json: numbers must match the JSON
// grammar (no NaN/Infinity, no hex, no leading '+' or superfluous leading
// zeros, no out-of-range magnitudes), strings may not contain raw control
// bytes, and trailing garbage is rejected. Inputs json.Unmarshal would
// accept but Put never writes (reordered, duplicated or unknown fields,
// escaped key strings) are rejected too; a stricter reject only turns a
// hand-edited entry into a recompute. On success the matrix values are
// bit-identical to what json.Unmarshal would produce, since both feed the
// same literals to strconv.ParseFloat.
//
// The matrix comes back as one backing slice plus a row-header slice, so a
// warm Get performs two matrix allocations regardless of size.
func decodeStressEntry(buf []byte, key string) ([][]float64, bool) {
	d := stressScanner{b: buf}
	if !d.expect('{') || !d.field("version") {
		return nil, false
	}
	if v, ok := d.intLit(); !ok || v != stressCacheVersion {
		return nil, false
	}
	if !d.expect(',') || !d.field("key") || !d.stringEquals(key) {
		return nil, false
	}
	if !d.expect(',') || !d.field("peak_sigma_t_pa") {
		return nil, false
	}
	sigma, ok := d.matrix()
	if !ok || !d.expect('}') {
		return nil, false
	}
	d.ws()
	if d.i != len(d.b) {
		return nil, false
	}
	return sigma, true
}

// stressScanner walks the entry bytes. All methods return false on any
// grammar violation, leaving the caller to classify the entry corrupt.
type stressScanner struct {
	b []byte
	i int
}

func (d *stressScanner) ws() {
	for d.i < len(d.b) {
		switch d.b[d.i] {
		case ' ', '\t', '\n', '\r':
			d.i++
		default:
			return
		}
	}
}

// expect consumes optional whitespace followed by exactly c.
func (d *stressScanner) expect(c byte) bool {
	d.ws()
	if d.i < len(d.b) && d.b[d.i] == c {
		d.i++
		return true
	}
	return false
}

// field consumes `"name":` (with optional surrounding whitespace).
func (d *stressScanner) field(name string) bool {
	if !d.expect('"') {
		return false
	}
	if len(d.b)-d.i < len(name)+1 || string(d.b[d.i:d.i+len(name)]) != name || d.b[d.i+len(name)] != '"' {
		return false
	}
	d.i += len(name) + 1
	return d.expect(':')
}

// stringEquals consumes a JSON string and reports whether it equals want.
// Escape sequences are rejected: cache keys are plain hex, and Put never
// escapes them.
func (d *stressScanner) stringEquals(want string) bool {
	if !d.expect('"') {
		return false
	}
	start := d.i
	for d.i < len(d.b) {
		c := d.b[d.i]
		if c == '"' {
			eq := string(d.b[start:d.i]) == want
			d.i++
			return eq
		}
		if c == '\\' || c < 0x20 {
			return false
		}
		d.i++
	}
	return false
}

// intLit consumes a JSON integer (no fraction or exponent, matching what
// json.Unmarshal accepts for an int field).
func (d *stressScanner) intLit() (int, bool) {
	d.ws()
	b, i := d.b, d.i
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	if i >= len(b) || b[i] < '0' || b[i] > '9' {
		return 0, false
	}
	v := 0
	if b[i] == '0' {
		i++
	} else {
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			if v > (1<<31)/10 {
				return 0, false
			}
			v = v*10 + int(b[i]-'0')
			i++
		}
	}
	if i < len(b) && (b[i] == '.' || b[i] == 'e' || b[i] == 'E') {
		return 0, false
	}
	d.i = i
	if neg {
		v = -v
	}
	return v, true
}

// float consumes one JSON number. The grammar is validated byte-by-byte
// first — strconv.ParseFloat alone would also take Go-isms like "0x1p4",
// "+1" or "inf" that JSON forbids — and ParseFloat then only converts.
// A range error (|x| overflowing float64) is rejected like encoding/json
// rejects it.
func (d *stressScanner) float() (float64, bool) {
	d.ws()
	b, i := d.b, d.i
	start := i
	if i < len(b) && b[i] == '-' {
		i++
	}
	if i >= len(b) || b[i] < '0' || b[i] > '9' {
		return 0, false
	}
	if b[i] == '0' {
		i++
	} else {
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	d.i = i
	// The literal was just grammar-checked and ParseFloat does not retain
	// its argument, so an unsafe view of the bytes avoids a per-number
	// string copy.
	v, err := strconv.ParseFloat(unsafe.String(&b[start], i-start), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// row consumes `[x, y, ...]`, appending onto dst.
func (d *stressScanner) row(dst []float64) ([]float64, bool) {
	if !d.expect('[') {
		return nil, false
	}
	d.ws()
	if d.i < len(d.b) && d.b[d.i] == ']' {
		d.i++
		return dst, true
	}
	for {
		v, ok := d.float()
		if !ok {
			return nil, false
		}
		dst = append(dst, v)
		d.ws()
		if d.i >= len(d.b) {
			return nil, false
		}
		switch d.b[d.i] {
		case ',':
			d.i++
		case ']':
			d.i++
			return dst, true
		default:
			return nil, false
		}
	}
}

// matrix consumes the stress matrix, enforcing the square-shape invariant
// while parsing: the first row fixes n, every later row must supply exactly
// n values into a preallocated n×n backing, and exactly n rows must follow.
func (d *stressScanner) matrix() ([][]float64, bool) {
	if !d.expect('[') {
		return nil, false
	}
	var first [32]float64
	row0, ok := d.row(first[:0])
	if !ok || len(row0) == 0 {
		return nil, false
	}
	n := len(row0)
	backing := make([]float64, n*n)
	rows := make([][]float64, n)
	copy(backing, row0)
	rows[0] = backing[:n:n]
	for r := 1; ; r++ {
		d.ws()
		if d.i < len(d.b) && d.b[d.i] == ']' {
			d.i++
			return rows, r == n
		}
		if !d.expect(',') || r >= n {
			return nil, false
		}
		dst := backing[r*n : r*n : (r+1)*n]
		got, ok := d.row(dst)
		if !ok || len(got) != n {
			return nil, false
		}
		rows[r] = got
	}
}
