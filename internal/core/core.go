// Package core is the public face of the library: it wires the full
// methodology of the DAC'17 paper into one pipeline.
//
//	FEA stress precharacterization (cudd + fem)     — paper §3
//	    ↓ per-via σ_T                                (chartable)
//	via-array reliability Monte Carlo (viaarray+mc) — paper §4, Alg. 1 step 1
//	    ↓ lognormal TTF models per pattern
//	power-grid reliability Monte Carlo (pdn+mc)     — paper §5, Alg. 1 step 2
//	    ↓ grid TTF CDF and worst-case percentiles
//
// An Analyzer owns the technology description (geometry, temperatures, EM
// constants, FEA resolution) and memoizes the expensive FEA step, mirroring
// the paper's observation that characterization is a one-time-per-technology
// cost.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"emvia/internal/chartable"
	"emvia/internal/cudd"
	"emvia/internal/emdist"
	"emvia/internal/fem"
	"emvia/internal/mc"
	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/stat"
	"emvia/internal/telemetry"
	"emvia/internal/trace"
	"emvia/internal/viaarray"
)

// Analyzer bundles the technology parameters of an analysis flow.
type Analyzer struct {
	// Base is the Cu DD structure template (geometry, temperatures,
	// mesh resolution); Pattern/ArrayN/WireWidth are overridden per query.
	Base cudd.Params
	// EM is the nucleation-model parameter set.
	EM emdist.Params
	// FEA tunes the finite-element solves.
	FEA fem.SolveOptions
	// PackageStress is the uniform hydrostatic stress contribution of the
	// package (underfill / bump / die CTE mismatch), Pa, added to every
	// per-via σ_T. The paper treats it as an input to the method (§2.3);
	// it depends on die position, not interconnect geometry.
	PackageStress float64
	// Disk, when non-nil, persists FEA characterizations across processes
	// underneath the in-memory cache (see StressCache and
	// EnableStressCache). Like PackageStress, it stores the geometry-only
	// stress. Disk writes are best-effort: a failed write never fails the
	// analysis.
	Disk *StressCache

	mu    sync.Mutex
	cache map[stressKey][][]float64

	// charCache memoizes whole via-array characterizations the same way the
	// FEA cache memoizes stress solves: for a fixed seed the step-1 Monte
	// Carlo is a pure function of its inputs, and grid experiments routinely
	// re-request the same pattern/criterion/trials combination.
	charMu    sync.Mutex
	charCache map[charKey]*ViaArrayCharacterization
}

type stressKey struct {
	pattern cudd.Pattern
	pair    cudd.LayerPair
	n       int
	width   float64
}

type charKey struct {
	pattern cudd.Pattern
	pair    cudd.LayerPair
	n       int
	width   float64
	j       float64
	pkg     float64 // PackageStress feeds the sampled σ_T, so it keys too
	crit    ArrayCriterion
	trials  int
	seed    int64
}

// NewAnalyzer returns an analyzer with the paper's nominal technology:
// 32 nm-class Cu DD geometry, 105 °C operation, calibrated EM constants.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		Base:  cudd.DefaultParams(),
		EM:    emdist.Default(),
		cache: make(map[stressKey][][]float64),
	}
}

// StressFor returns the per-via peak thermomechanical stress matrix for a
// via-array family, running (and memoizing) the FEA characterization. The
// analyzer's PackageStress is added on top of the layout-dependent FEA
// result (the cache stores the geometry-only part, so PackageStress may be
// changed between calls without refactoring).
func (a *Analyzer) StressFor(pattern cudd.Pattern, pair cudd.LayerPair, arrayN int, width float64) ([][]float64, error) {
	key := stressKey{pattern, pair, arrayN, width}
	a.mu.Lock()
	if a.cache == nil {
		a.cache = make(map[stressKey][][]float64)
	}
	s, ok := a.cache[key]
	a.mu.Unlock()
	if r := telemetry.Default(); r != nil {
		if ok {
			r.Counter(telemetry.StressMemHits).Inc()
		} else {
			r.Counter(telemetry.StressMemMisses).Inc()
		}
	}
	if !ok {
		p := a.Base
		p.Pattern = pattern
		p.LayerPair = pair
		p.ArrayN = arrayN
		p.WireWidth = width
		var err error
		s, err = a.characterizeSigma(p)
		if err != nil {
			return nil, err
		}
		a.mu.Lock()
		a.cache[key] = s
		a.mu.Unlock()
	}
	if a.PackageStress == 0 {
		return s, nil
	}
	out := make([][]float64, len(s))
	for i, row := range s {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			out[i][j] = v + a.PackageStress
		}
	}
	return out, nil
}

// EnableStressCache attaches a persistent stress cache rooted at dir (empty
// selects EMVIA_STRESS_CACHE or the user cache directory) so later runs with
// the same technology skip the FEA solves entirely.
func (a *Analyzer) EnableStressCache(dir string) error {
	c, err := OpenStressCache(dir)
	if err != nil {
		return err
	}
	a.Disk = c
	return nil
}

// characterizeSigma produces the geometry-only per-via stress matrix for
// fully overridden params, consulting the persistent cache when enabled.
func (a *Analyzer) characterizeSigma(p cudd.Params) ([][]float64, error) {
	var diskKey string
	if a.Disk != nil {
		diskKey = a.Disk.Key(p, a.FEA)
		if s, ok := a.Disk.Get(diskKey); ok {
			return s, nil
		}
	}
	span := trace.Default().Span(fmt.Sprintf("core.fea %s %dx%d", p.Pattern, p.ArrayN, p.ArrayN))
	res, err := cudd.Characterize(p, a.FEA)
	span()
	if err != nil {
		return nil, err
	}
	if a.Disk != nil {
		// Best-effort: an unwritable cache directory must not fail the
		// analysis, only forfeit reuse.
		_ = a.Disk.Put(diskKey, res.PeakSigmaT)
	}
	return res.PeakSigmaT, nil
}

// BuildStressTable runs the full §3.2 characterization campaign
// (9 × patterns × widths × configurations) into a persistent table, routing
// every solve through the persistent stress cache when one is enabled.
func (a *Analyzer) BuildStressTable(arrayNs []int, widths []float64, progress func(chartable.Key, float64)) (*chartable.Table, error) {
	return chartable.Build(chartable.BuildSpec{
		LayerPairs: cudd.LayerPairs(),
		Patterns:   cudd.Patterns(),
		ArrayNs:    arrayNs,
		WireWidths: widths,
		Base:       a.Base,
		Solve:      a.FEA,
		Progress:   progress,
		Characterize: func(p cudd.Params, _ fem.SolveOptions) ([][]float64, error) {
			return a.characterizeSigma(p)
		},
	})
}

// ArrayCriterion expresses the via-array failure criterion of §4.
type ArrayCriterion struct {
	// WeakestLink fails the array at the first via failure.
	WeakestLink bool
	// ResistanceFactor fails the array when its equation-(5) resistance
	// reaches this multiple of nominal; +Inf means open circuit. Ignored
	// when WeakestLink is set.
	ResistanceFactor float64
}

// ArrayWeakestLink is the traditional first-via criterion.
func ArrayWeakestLink() ArrayCriterion { return ArrayCriterion{WeakestLink: true} }

// ArrayOpenCircuit is the R = ∞ criterion (all vias fail).
func ArrayOpenCircuit() ArrayCriterion {
	return ArrayCriterion{ResistanceFactor: math.Inf(1)}
}

// ArrayResistance2x is the R = 2× criterion (half the vias fail).
func ArrayResistance2x() ArrayCriterion { return ArrayCriterion{ResistanceFactor: 2} }

// String names the criterion as in the paper.
func (c ArrayCriterion) String() string {
	switch {
	case c.WeakestLink:
		return "Weakest-link"
	case math.IsInf(c.ResistanceFactor, 1):
		return "R=inf"
	default:
		return fmt.Sprintf("R=%gx", c.ResistanceFactor)
	}
}

// failK resolves the criterion to a via count for an n×n array.
func (c ArrayCriterion) failK(n int) int {
	if c.WeakestLink {
		return 1
	}
	return viaarray.FailKForResistanceFactor(n, c.ResistanceFactor)
}

// ViaArrayCharacterization is the §5.1 output for one pattern.
type ViaArrayCharacterization struct {
	Pattern cudd.Pattern
	Result  *viaarray.CharResult
	Model   viaarray.TTFModel
}

// CharacterizeViaArray runs the step-1 Monte Carlo for one pattern at the
// paper's reference conditions (current density j over the array area),
// using the analyzer's base layer pair.
func (a *Analyzer) CharacterizeViaArray(pattern cudd.Pattern, arrayN int, width, j float64, crit ArrayCriterion, trials int, seed int64) (*ViaArrayCharacterization, error) {
	return a.CharacterizeViaArrayPair(pattern, a.Base.LayerPair, arrayN, width, j, crit, trials, seed)
}

// CharacterizeViaArrayPair is CharacterizeViaArray for an explicit metal
// layer pair (multi-layer grids characterize all three pair classes).
// Results are memoized per analyzer: like the FEA cache, this assumes the
// technology parameters (Base, EM, FEA) are fixed once characterization
// starts. Callers must treat the returned characterization as read-only.
func (a *Analyzer) CharacterizeViaArrayPair(pattern cudd.Pattern, pair cudd.LayerPair, arrayN int, width, j float64, crit ArrayCriterion, trials int, seed int64) (*ViaArrayCharacterization, error) {
	ck := charKey{pattern, pair, arrayN, width, j, a.PackageStress, crit, trials, seed}
	a.charMu.Lock()
	cached, ok := a.charCache[ck]
	a.charMu.Unlock()
	if r := telemetry.Default(); r != nil {
		if ok {
			r.Counter(telemetry.CharHits).Inc()
		} else {
			r.Counter(telemetry.CharMisses).Inc()
		}
	}
	if ok {
		return cached, nil
	}
	sigma, err := a.StressFor(pattern, pair, arrayN, width)
	if err != nil {
		return nil, err
	}
	p := a.Base
	p.Pattern = pattern
	p.LayerPair = pair
	p.ArrayN = arrayN
	p.WireWidth = width
	cfg, err := viaarray.FromStructure(p, sigma, a.EM, j, crit.failK(arrayN), 0)
	if err != nil {
		return nil, err
	}
	res, err := viaarray.CharacterizeNamed(cfg, trials, seed,
		fmt.Sprintf("array:%s:%dx%d", pattern, arrayN, arrayN))
	if err != nil {
		return nil, err
	}
	out := &ViaArrayCharacterization{Pattern: pattern, Result: res, Model: res.Model}
	a.charMu.Lock()
	if a.charCache == nil {
		a.charCache = make(map[charKey]*ViaArrayCharacterization)
	}
	a.charCache[ck] = out
	a.charMu.Unlock()
	return out, nil
}

// ViaArrayModels characterizes all three intersection patterns and returns
// the per-pattern TTF models the grid analysis consumes.
func (a *Analyzer) ViaArrayModels(arrayN int, width, j float64, crit ArrayCriterion, trials int, seed int64) (map[cudd.Pattern]viaarray.TTFModel, error) {
	models := make(map[cudd.Pattern]viaarray.TTFModel, 3)
	for i, pat := range cudd.Patterns() {
		c, err := a.CharacterizeViaArray(pat, arrayN, width, j, crit, trials, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("core: characterizing %v arrays: %w", pat, err)
		}
		models[pat] = c.Model
	}
	return models, nil
}

// GridAnalysis describes one §5.2 experiment.
type GridAnalysis struct {
	// Grid is the power grid (synthetic or imported).
	Grid *pdn.Grid
	// ArrayN selects the via configuration used grid-wide (paper: one
	// configuration per experiment, 4×4 or 8×8).
	ArrayN int
	// ArrayCriterion is the via-array failure criterion.
	ArrayCriterion ArrayCriterion
	// SystemCriterion is the grid failure criterion.
	SystemCriterion pdn.Criterion
	// IRDropFrac is the IR threshold for pdn.IRDrop (paper: 0.10).
	IRDropFrac float64
	// CharTrials and GridTrials are the Monte-Carlo sizes of the two
	// hierarchy levels (paper: 500).
	CharTrials, GridTrials int
	// Seed drives both levels reproducibly.
	Seed int64
	// TTFScale optionally derates each via array's TTF (g.Grid.Vias
	// order), e.g. from AnalyzeGridThermal's local-temperature factors.
	TTFScale []float64
	// Engine selects the analysis engine (mc.EngineMC/EngineBoth; empty =
	// mc). EngineBoth runs the linear-time steady-state screen first and
	// prunes the Monte Carlo to its mortal subset; the legacy mc engine is
	// byte-identical to runs that predate the screen.
	Engine string
}

// GridReport is the outcome of a grid analysis.
type GridReport struct {
	Analysis GridAnalysis
	// Models are the per-pattern array TTF models used.
	Models map[cudd.Pattern]viaarray.TTFModel
	// MC is the raw grid-level Monte-Carlo result.
	MC *mc.Result
	// TTF is the ECDF of the finite grid TTFs (seconds).
	TTF *stat.ECDF
	// Screen is the steady-state classification a "both"-engine run pruned
	// against; nil for the legacy mc engine.
	Screen *pdn.GridScreen
}

// WorstCaseYears returns the paper's headline metric: the 0.3-percentile
// grid TTF in years.
func (r *GridReport) WorstCaseYears() float64 {
	return phys.SecondsToYears(r.TTF.Percentile(0.003))
}

// MedianYears returns the median grid TTF in years.
func (r *GridReport) MedianYears() float64 {
	return phys.SecondsToYears(r.TTF.Percentile(0.5))
}

// PercentileYears returns an arbitrary TTF percentile in years.
func (r *GridReport) PercentileYears(p float64) float64 {
	return phys.SecondsToYears(r.TTF.Percentile(p))
}

// PercentileCIYears returns a bootstrap confidence interval (years) for a
// TTF percentile — the honest error bar on tail metrics like the paper's
// 0.3-percentile worst case, which rests on very few order statistics at
// N_trials = 500.
func (r *GridReport) PercentileCIYears(p, conf float64, seed int64) (lo, hi float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	lo, hi, err = stat.BootstrapPercentileCI(r.TTF.Values(), p, conf, 400, rng)
	if err != nil {
		return 0, 0, err
	}
	return phys.SecondsToYears(lo), phys.SecondsToYears(hi), nil
}

// AnalyzeGrid runs the full two-level pipeline for one experiment.
func (a *Analyzer) AnalyzeGrid(g GridAnalysis) (*GridReport, error) {
	if g.Grid == nil {
		return nil, fmt.Errorf("core: GridAnalysis needs a grid")
	}
	if g.CharTrials == 0 {
		g.CharTrials = 500
	}
	width := g.Grid.Spec.WireWidth
	if width == 0 {
		width = a.Base.WireWidth
	}
	j := a.referenceCurrentDensity()
	models, err := a.ViaArrayModels(g.ArrayN, width, j, g.ArrayCriterion, g.CharTrials, g.Seed)
	if err != nil {
		return nil, err
	}
	return a.AnalyzeGridWithModels(g, models)
}

// AnalyzeGridWithModels runs the grid-level Monte Carlo with precomputed
// per-pattern via-array TTF models (e.g. loaded from a viaarray.ModelSet, or
// a mixed set where each pattern uses a different array configuration — the
// paper notes "a combination of the via array configuration can be used").
func (a *Analyzer) AnalyzeGridWithModels(g GridAnalysis, models map[cudd.Pattern]viaarray.TTFModel) (*GridReport, error) {
	if g.Grid == nil {
		return nil, fmt.Errorf("core: GridAnalysis needs a grid")
	}
	if g.GridTrials == 0 {
		g.GridTrials = 500
	}
	engine, err := mc.ParseEngine(g.Engine)
	if err != nil {
		return nil, err
	}
	cfg := pdn.TTFConfig{
		Grid:       g.Grid,
		Models:     models,
		Criterion:  g.SystemCriterion,
		IRDropFrac: g.IRDropFrac,
		TTFScale:   g.TTFScale,
	}
	var res *mc.Result
	var screen *pdn.GridScreen
	if engine == mc.EngineBoth {
		res, screen, err = pdn.AnalyzeTTFScreened(cfg, g.GridTrials, g.Seed+1000, pdn.ScreenConfig{EM: a.EM})
	} else {
		res, err = pdn.AnalyzeTTF(cfg, g.GridTrials, g.Seed+1000)
	}
	if err != nil {
		return nil, err
	}
	finite := res.FiniteTTF()
	if len(finite) == 0 {
		return nil, fmt.Errorf("core: no trial reached the system failure criterion")
	}
	ecdf, err := stat.NewECDF(finite)
	if err != nil {
		return nil, err
	}
	return &GridReport{Analysis: g, Models: models, MC: res, TTF: ecdf, Screen: screen}, nil
}

// ScreenGrid runs the standalone -engine=steady backend: the linear-time
// steady-state classification of a grid, with no characterization and no
// Monte Carlo.
func (a *Analyzer) ScreenGrid(g *pdn.Grid) (*pdn.GridScreen, error) {
	return pdn.ScreenGrid(g, pdn.ScreenConfig{EM: a.EM})
}

// ArraySteadyScreen is the -engine=steady analog of CharacterizeViaArray:
// it builds the via-array configuration for the pattern at the reference
// conditions (FEA thermal pre-stress included) and runs the linear-time
// steady-state screen — no Monte Carlo, just the immortal/mortal
// classification with per-via stress margins.
func (a *Analyzer) ArraySteadyScreen(pattern cudd.Pattern, arrayN int, width, j float64) (*viaarray.ArrayScreen, error) {
	sigma, err := a.StressFor(pattern, a.Base.LayerPair, arrayN, width)
	if err != nil {
		return nil, err
	}
	p := a.Base
	p.Pattern = pattern
	p.ArrayN = arrayN
	p.WireWidth = width
	cfg, err := viaarray.FromStructure(p, sigma, a.EM, j, 1, 0)
	if err != nil {
		return nil, err
	}
	return cfg.SteadyScreen(0)
}

// referenceCurrentDensity is the characterization current density of the
// paper's experiments (1e10 A/m² over the 1 µm² array).
func (a *Analyzer) referenceCurrentDensity() float64 { return 1e10 }
