package mat

import (
	"math"
	"testing"

	"emvia/internal/phys"
)

func TestTable1MatchesPaper(t *testing.T) {
	// Paper Table 1, exactly.
	cases := []struct {
		id  ID
		e   float64 // GPa
		nu  float64
		cte float64 // ppm/°C
	}{
		{Silicon, 162.0, 0.28, 3.05},
		{Copper, 111.6, 0.34, 17.7},
		{SiCOH, 16.2, 0.27, 12},
		{Tantalum, 185.7, 0.342, 6.5},
		{SiN, 222.8, 0.27, 3.2},
	}
	for _, c := range cases {
		p, err := Properties(c.id)
		if err != nil {
			t.Fatalf("%v: %v", c.id, err)
		}
		if math.Abs(p.E-c.e*phys.GPa) > 1e6 {
			t.Errorf("%v: E = %g", c.id, p.E)
		}
		if p.Nu != c.nu {
			t.Errorf("%v: Nu = %g", c.id, p.Nu)
		}
		if math.Abs(p.CTE-c.cte*phys.PPM) > 1e-12 {
			t.Errorf("%v: CTE = %g", c.id, p.CTE)
		}
	}
}

func TestPropertiesRejectsUnknown(t *testing.T) {
	if _, err := Properties(None); err == nil {
		t.Error("Properties(None) succeeded")
	}
	if _, err := Properties(ID(200)); err == nil {
		t.Error("Properties(bogus) succeeded")
	}
}

func TestLameRelations(t *testing.T) {
	for _, id := range All() {
		p := Table1[id]
		lambda, mu := p.Lame()
		// Reconstruct E and ν from (λ, µ).
		e := mu * (3*lambda + 2*mu) / (lambda + mu)
		nu := lambda / (2 * (lambda + mu))
		if math.Abs(e-p.E)/p.E > 1e-12 {
			t.Errorf("%v: E round trip %g vs %g", id, e, p.E)
		}
		if math.Abs(nu-p.Nu)/p.Nu > 1e-12 {
			t.Errorf("%v: Nu round trip %g vs %g", id, nu, p.Nu)
		}
		// K = λ + 2µ/3.
		if k := p.BulkModulus(); math.Abs(k-(lambda+2*mu/3))/k > 1e-12 {
			t.Errorf("%v: K inconsistency", id)
		}
	}
}

func TestStringNames(t *testing.T) {
	want := map[ID]string{
		None: "none", Silicon: "Si", Copper: "Cu",
		SiCOH: "SiCOH", Tantalum: "Ta", SiN: "Si3N4",
	}
	for id, name := range want {
		if got := id.String(); got != name {
			t.Errorf("String(%d) = %q, want %q", id, got, name)
		}
	}
	if got := ID(99).String(); got == "" {
		t.Error("unknown ID has empty name")
	}
}

func TestAllListsFiveStructuralMaterials(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() = %d materials", len(all))
	}
	for _, id := range all {
		if _, err := Properties(id); err != nil {
			t.Errorf("All() contains %v without properties", id)
		}
	}
}
