// Package mat holds the material database for Cu dual-damascene (Cu DD)
// interconnect structures: the mechanical properties of Table 1 of the DAC'17
// paper plus the EM transport properties of copper needed by the nucleation
// model.
package mat

import (
	"fmt"

	"emvia/internal/phys"
)

// ID names a material in the Cu DD stack.
type ID uint8

// The materials appearing in the simulated Cu DD structure (paper Fig. 2).
const (
	// None marks void/unused mesh cells (removed from the FE model).
	None ID = iota
	// Silicon is the substrate.
	Silicon
	// Copper is the bulk interconnect metal.
	Copper
	// SiCOH is the low-k inter-layer dielectric (ILD).
	SiCOH
	// Tantalum is the diffusion-barrier liner on via/trench walls.
	Tantalum
	// SiN is the Si3N4 capping layer bounding the top copper surface.
	SiN

	numMaterials
)

// String returns the conventional name of the material.
func (id ID) String() string {
	switch id {
	case None:
		return "none"
	case Silicon:
		return "Si"
	case Copper:
		return "Cu"
	case SiCOH:
		return "SiCOH"
	case Tantalum:
		return "Ta"
	case SiN:
		return "Si3N4"
	}
	return fmt.Sprintf("mat.ID(%d)", uint8(id))
}

// Elastic describes an isotropic linear-elastic material with thermal
// expansion: Young's modulus E (Pa), Poisson ratio Nu, and the coefficient of
// thermal expansion CTE (1/K).
type Elastic struct {
	E   float64 // Young's modulus, Pa
	Nu  float64 // Poisson's ratio
	CTE float64 // coefficient of thermal expansion, 1/K
}

// Lame returns the Lamé parameters (λ, µ) of the material.
func (m Elastic) Lame() (lambda, mu float64) {
	lambda = m.E * m.Nu / ((1 + m.Nu) * (1 - 2*m.Nu))
	mu = m.E / (2 * (1 + m.Nu))
	return lambda, mu
}

// BulkModulus returns K = E / (3(1−2ν)) in Pa.
func (m Elastic) BulkModulus() float64 {
	return m.E / (3 * (1 - 2*m.Nu))
}

// Table1 is the mechanical property set of Table 1 in the paper:
// Young's modulus, Poisson's ratio and CTE for the five structural materials
// of the Cu DD stack.
var Table1 = map[ID]Elastic{
	Silicon:  {E: 162.0 * phys.GPa, Nu: 0.28, CTE: 3.05 * phys.PPM},
	Copper:   {E: 111.6 * phys.GPa, Nu: 0.34, CTE: 17.7 * phys.PPM},
	SiCOH:    {E: 16.2 * phys.GPa, Nu: 0.27, CTE: 12.0 * phys.PPM},
	Tantalum: {E: 185.7 * phys.GPa, Nu: 0.342, CTE: 6.5 * phys.PPM},
	SiN:      {E: 222.8 * phys.GPa, Nu: 0.27, CTE: 3.2 * phys.PPM},
}

// Properties returns the elastic property set for a material, or an error if
// the material is unknown or non-structural (None).
func Properties(id ID) (Elastic, error) {
	m, ok := Table1[id]
	if !ok {
		return Elastic{}, fmt.Errorf("mat: no properties for material %v", id)
	}
	return m, nil
}

// All lists the structural materials in a stable order.
func All() []ID {
	return []ID{Silicon, Copper, SiCOH, Tantalum, SiN}
}

// Copper EM transport properties used by the nucleation model. ρCu is taken
// at the worst-case operating temperature of ~105 °C; Z* and Ea are standard
// literature values for Cu grain-boundary/interface diffusion.
const (
	// RhoCu is the electrical resistivity of copper at ~105 °C, Ω·m.
	RhoCu = 2.75e-8
	// ZStarEff is the effective charge number |Z*| for Cu EM.
	ZStarEff = 1.0
	// OmegaCu is the atomic volume of copper, m³.
	OmegaCu = 1.182e-29
	// EaCu is the effective EM activation energy for Cu DD, J.
	EaCu = 0.85 * phys.ElectronVolt
	// BulkModulusEff is the effective bulk modulus B of the confined
	// Cu/dielectric system entering the Korhonen model, Pa.
	BulkModulusEff = 28.0 * phys.GPa
	// GammaSurfCu is the copper surface free energy γs, J/m².
	GammaSurfCu = 1.725
)
