// Package stat provides the probability machinery used by the EM reliability
// models: lognormal and normal distributions with seeded sampling, maximum-
// likelihood lognormal fitting, empirical CDFs with percentile queries, and
// Wilkinson's moment-matching approximation for combining lognormals.
//
// All sampling goes through a caller-owned *rand.Rand so every experiment in
// the repository is reproducible from its seed.
package stat

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Normal is a Gaussian distribution with mean Mu and standard deviation
// Sigma.
type Normal struct {
	Mu, Sigma float64
}

// Sample draws one variate.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// CDF evaluates P(X ≤ x).
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the p-quantile, p ∈ (0, 1).
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*math.Sqrt2*erfcInv(2*(1-p))
}

// LogNormal is the distribution of exp(N(Mu, Sigma²)): the paper's model for
// flaw radii, critical stress and (via Wilkinson) TTF.
type LogNormal struct {
	Mu    float64 // mean of ln X
	Sigma float64 // std dev of ln X, > 0
}

// LogNormalFromMoments builds the lognormal with the given arithmetic mean m
// and standard deviation s (both > 0). This is how the paper specifies the
// flaw-radius distribution: mean 10 nm, σ = 5 % of mean.
func LogNormalFromMoments(m, s float64) (LogNormal, error) {
	if m <= 0 || s <= 0 {
		return LogNormal{}, fmt.Errorf("stat: lognormal moments must be positive, got mean %g std %g", m, s)
	}
	v := math.Log(1 + (s*s)/(m*m))
	return LogNormal{Mu: math.Log(m) - v/2, Sigma: math.Sqrt(v)}, nil
}

// Mean returns the arithmetic mean exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Median returns exp(Mu).
func (l LogNormal) Median() float64 { return math.Exp(l.Mu) }

// StdDev returns the arithmetic standard deviation.
func (l LogNormal) StdDev() float64 {
	s2 := l.Sigma * l.Sigma
	return l.Mean() * math.Sqrt(math.Expm1(s2))
}

// Sample draws one variate.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// CDF evaluates P(X ≤ x); zero for x ≤ 0.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{Mu: l.Mu, Sigma: l.Sigma}.CDF(math.Log(x))
}

// Quantile returns the p-quantile, p ∈ (0, 1).
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(Normal{Mu: l.Mu, Sigma: l.Sigma}.Quantile(p))
}

// FitLogNormal computes the maximum-likelihood lognormal fit of positive
// samples: Mu and Sigma are the sample mean and (population) standard
// deviation of the logs. It needs at least two samples and all positive.
func FitLogNormal(samples []float64) (LogNormal, error) {
	if len(samples) < 2 {
		return LogNormal{}, fmt.Errorf("stat: need ≥ 2 samples to fit a lognormal, got %d", len(samples))
	}
	var sum, sum2 float64
	for _, x := range samples {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return LogNormal{}, fmt.Errorf("stat: lognormal fit requires positive finite samples, got %g", x)
		}
		lx := math.Log(x)
		sum += lx
		sum2 += lx * lx
	}
	n := float64(len(samples))
	mu := sum / n
	v := sum2/n - mu*mu
	if v < 0 {
		v = 0
	}
	return LogNormal{Mu: mu, Sigma: math.Sqrt(v)}, nil
}

// WilkinsonSum approximates the distribution of the sum of independent
// lognormals as a lognormal by matching the first two moments (Wilkinson's
// approximation, the closure the paper invokes to argue TTF remains
// lognormal). It requires at least one term.
func WilkinsonSum(terms []LogNormal) (LogNormal, error) {
	if len(terms) == 0 {
		return LogNormal{}, fmt.Errorf("stat: WilkinsonSum of no terms")
	}
	var m1, m2 float64
	for _, t := range terms {
		mean := t.Mean()
		m1 += mean
		// E[X²] = exp(2Mu + 2Sigma²)
		m2 += math.Exp(2*t.Mu + 2*t.Sigma*t.Sigma)
		// Independence: cross terms E[Xi]E[Xj] added below.
	}
	// E[(ΣX)²] = Σ E[X²] + Σ_{i≠j} E[Xi]E[Xj]
	var cross float64
	for i := range terms {
		for j := range terms {
			if i != j {
				cross += terms[i].Mean() * terms[j].Mean()
			}
		}
	}
	m2 += cross
	sigma2 := math.Log(m2 / (m1 * m1))
	if sigma2 < 0 {
		sigma2 = 0
	}
	return LogNormal{Mu: math.Log(m1) - sigma2/2, Sigma: math.Sqrt(sigma2)}, nil
}

// ECDF is an empirical cumulative distribution function over a fixed sample
// set.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the samples. It needs at least one sample.
func NewECDF(samples []float64) (*ECDF, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("stat: ECDF of no samples")
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.sorted) }

// At evaluates the empirical CDF at x: the fraction of samples ≤ x.
func (e *ECDF) At(x float64) float64 {
	return float64(sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))) / float64(len(e.sorted))
}

// Percentile returns the p-quantile, p ∈ [0, 1], with linear interpolation
// between order statistics. The paper's "worst-case TTF" is the 0.003
// percentile (0.3 %ile point).
func (e *ECDF) Percentile(p float64) float64 {
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	pos := p * float64(len(e.sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(e.sorted) {
		return e.sorted[len(e.sorted)-1]
	}
	return e.sorted[lo]*(1-frac) + e.sorted[lo+1]*frac
}

// Min and Max return the extreme samples.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Values returns a copy of the sorted samples.
func (e *ECDF) Values() []float64 {
	out := make([]float64, len(e.sorted))
	copy(out, e.sorted)
	return out
}

// KSDistance returns the Kolmogorov–Smirnov statistic between the empirical
// CDF and a reference CDF function: sup_x |F_emp(x) − F(x)| evaluated at the
// sample points (both one-sided gaps are considered).
func (e *ECDF) KSDistance(cdf func(float64) float64) float64 {
	n := float64(len(e.sorted))
	d := 0.0
	for i, x := range e.sorted {
		f := cdf(x)
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// BootstrapPercentileCI estimates a confidence interval for the p-quantile
// of the distribution behind the samples by nonparametric bootstrap:
// resamples the data B times with replacement and takes the (1−conf)/2 and
// (1+conf)/2 quantiles of the resampled percentile estimates. With the
// paper's N_trials = 500, the 0.3-percentile "worst-case TTF" rests on the
// 1–2 smallest order statistics, so its CI is the honest way to report it.
func BootstrapPercentileCI(samples []float64, p, conf float64, b int, rng *rand.Rand) (lo, hi float64, err error) {
	if len(samples) < 2 {
		return 0, 0, fmt.Errorf("stat: bootstrap needs ≥ 2 samples, got %d", len(samples))
	}
	if p < 0 || p > 1 || conf <= 0 || conf >= 1 {
		return 0, 0, fmt.Errorf("stat: bootstrap p=%g conf=%g out of range", p, conf)
	}
	if b < 10 {
		b = 200
	}
	ests := make([]float64, b)
	resample := make([]float64, len(samples))
	for k := 0; k < b; k++ {
		for i := range resample {
			resample[i] = samples[rng.Intn(len(samples))]
		}
		e, err := NewECDF(resample)
		if err != nil {
			return 0, 0, err
		}
		ests[k] = e.Percentile(p)
	}
	e, err := NewECDF(ests)
	if err != nil {
		return 0, 0, err
	}
	alpha := (1 - conf) / 2
	return e.Percentile(alpha), e.Percentile(1 - alpha), nil
}

// Mean returns the sample mean.
func Mean(samples []float64) float64 {
	s := 0.0
	for _, x := range samples {
		s += x
	}
	return s / float64(len(samples))
}

// StdDev returns the population standard deviation of the samples.
func StdDev(samples []float64) float64 {
	m := Mean(samples)
	s := 0.0
	for _, x := range samples {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(samples)))
}

// erfcInv computes the inverse complementary error function by Newton
// iteration on math.Erfc with a rational initial guess; accurate to ~1e-12
// over the useful range.
func erfcInv(x float64) float64 {
	if x <= 0 || x >= 2 {
		switch {
		case x == 0:
			return math.Inf(1)
		case x == 2:
			return math.Inf(-1)
		default:
			return math.NaN()
		}
	}
	// Initial guess via the probit approximation of Acklam.
	z := probit(1 - x/2) // erfcInv(x) = −probit(x/2)/√2 = probit(1−x/2)/√2
	y := z / math.Sqrt2
	// Newton refinement on f(y) = erfc(y) − x; f'(y) = −2/√π·exp(−y²).
	for i := 0; i < 4; i++ {
		f := math.Erfc(y) - x
		df := -2 / math.SqrtPi * math.Exp(-y*y)
		step := f / df
		y -= step
		if math.Abs(step) < 1e-15*(1+math.Abs(y)) {
			break
		}
	}
	return y
}

// probit is the standard normal quantile function (Acklam's rational
// approximation, relative error ~1e-9 before refinement).
func probit(p float64) float64 {
	const (
		a1 = -39.69683028665376
		a2 = 220.9460984245205
		a3 = -275.9285104469687
		a4 = 138.3577518672690
		a5 = -30.66479806614716
		a6 = 2.506628277459239
		b1 = -54.47609879822406
		b2 = 161.5858368580409
		b3 = -155.6989798598866
		b4 = 66.80131188771972
		b5 = -13.28068155288572
		c1 = -0.007784894002430293
		c2 = -0.3223964580411365
		c3 = -2.400758277161838
		c4 = -2.549732539343734
		c5 = 4.374664141464968
		c6 = 2.938163982698783
		d1 = 0.007784695709041462
		d2 = 0.3224671290700398
		d3 = 2.445134137142996
		d4 = 3.754408661907416
	)
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
}
