package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{2, 0.9772498680518208},
	}
	for _, c := range cases {
		if got := n.CDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%g) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	n := Normal{Mu: 2, Sigma: 3}
	for _, p := range []float64{0.003, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.997} {
		x := n.Quantile(p)
		if got := n.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	ln, err := LogNormalFromMoments(10e-9, 0.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	if got := ln.Mean(); math.Abs(got-10e-9) > 1e-15 {
		t.Errorf("Mean = %g, want 10e-9", got)
	}
	if got := ln.StdDev(); math.Abs(got-0.5e-9) > 1e-14 {
		t.Errorf("StdDev = %g, want 0.5e-9", got)
	}
	if _, err := LogNormalFromMoments(-1, 1); err == nil {
		t.Error("accepted negative mean")
	}
	if _, err := LogNormalFromMoments(1, 0); err == nil {
		t.Error("accepted zero std")
	}
}

func TestLogNormalSampleStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ln := LogNormal{Mu: 1.0, Sigma: 0.4}
	n := 200000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = ln.Sample(rng)
	}
	if got, want := Mean(samples), ln.Mean(); math.Abs(got-want)/want > 0.01 {
		t.Errorf("sample mean = %g, want ≈ %g", got, want)
	}
	if got, want := StdDev(samples), ln.StdDev(); math.Abs(got-want)/want > 0.02 {
		t.Errorf("sample std = %g, want ≈ %g", got, want)
	}
}

func TestFitLogNormalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := LogNormal{Mu: rng.Float64()*4 - 2, Sigma: 0.05 + rng.Float64()}
		samples := make([]float64, 20000)
		for i := range samples {
			samples[i] = truth.Sample(rng)
		}
		fit, err := FitLogNormal(samples)
		if err != nil {
			return false
		}
		return math.Abs(fit.Mu-truth.Mu) < 0.05 && math.Abs(fit.Sigma-truth.Sigma) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestFitLogNormalErrors(t *testing.T) {
	if _, err := FitLogNormal([]float64{1}); err == nil {
		t.Error("accepted one sample")
	}
	if _, err := FitLogNormal([]float64{1, -2}); err == nil {
		t.Error("accepted negative sample")
	}
	if _, err := FitLogNormal([]float64{1, math.NaN()}); err == nil {
		t.Error("accepted NaN sample")
	}
}

func TestLogNormalQuantileInvertsCDF(t *testing.T) {
	ln := LogNormal{Mu: 0.5, Sigma: 0.7}
	for _, p := range []float64{0.003, 0.1, 0.5, 0.9, 0.997} {
		x := ln.Quantile(p)
		if got := ln.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
	if got := ln.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %g, want 0", got)
	}
	if got := ln.Median(); math.Abs(got-math.Exp(0.5)) > 1e-12 {
		t.Errorf("Median = %g", got)
	}
}

func TestWilkinsonSumMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	terms := []LogNormal{
		{Mu: 0.1, Sigma: 0.3},
		{Mu: -0.5, Sigma: 0.5},
		{Mu: 0.4, Sigma: 0.2},
	}
	approx, err := WilkinsonSum(terms)
	if err != nil {
		t.Fatal(err)
	}
	n := 100000
	sums := make([]float64, n)
	for i := range sums {
		s := 0.0
		for _, tm := range terms {
			s += tm.Sample(rng)
		}
		sums[i] = s
	}
	if got, want := approx.Mean(), Mean(sums); math.Abs(got-want)/want > 0.02 {
		t.Errorf("Wilkinson mean = %g, MC mean = %g", got, want)
	}
	if got, want := approx.StdDev(), StdDev(sums); math.Abs(got-want)/want > 0.05 {
		t.Errorf("Wilkinson std = %g, MC std = %g", got, want)
	}
	ecdf, err := NewECDF(sums)
	if err != nil {
		t.Fatal(err)
	}
	if d := ecdf.KSDistance(approx.CDF); d > 0.03 {
		t.Errorf("KS distance between Wilkinson approx and MC sum = %g, want < 0.03", d)
	}
}

func TestWilkinsonSumSingleTermIsIdentity(t *testing.T) {
	ln := LogNormal{Mu: 1.2, Sigma: 0.6}
	got, err := WilkinsonSum([]LogNormal{ln})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu-ln.Mu) > 1e-9 || math.Abs(got.Sigma-ln.Sigma) > 1e-9 {
		t.Errorf("WilkinsonSum of one term = %+v, want %+v", got, ln)
	}
	if _, err := WilkinsonSum(nil); err == nil {
		t.Error("accepted empty sum")
	}
}

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
	if got := e.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %g, want 0", got)
	}
	if got := e.At(2); got != 0.5 {
		t.Errorf("At(2) = %g, want 0.5", got)
	}
	if got := e.At(4); got != 1 {
		t.Errorf("At(4) = %g, want 1", got)
	}
	if e.Min() != 1 || e.Max() != 4 {
		t.Errorf("Min/Max = %g/%g", e.Min(), e.Max())
	}
	if _, err := NewECDF(nil); err == nil {
		t.Error("accepted empty sample set")
	}
}

func TestECDFPercentile(t *testing.T) {
	samples := make([]float64, 101)
	for i := range samples {
		samples[i] = float64(i)
	}
	e, err := NewECDF(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got, want := e.Percentile(p), 100*p; math.Abs(got-want) > 1e-9 {
			t.Errorf("Percentile(%g) = %g, want %g", p, got, want)
		}
	}
	if got := e.Percentile(-1); got != 0 {
		t.Errorf("Percentile(-1) = %g", got)
	}
	if got := e.Percentile(2); got != 100 {
		t.Errorf("Percentile(2) = %g", got)
	}
}

func TestECDFPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 10
		}
		e, err := NewECDF(samples)
		if err != nil {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0001; p += 0.01 {
			v := e.Percentile(p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKSDistanceOfMatchingDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ln := LogNormal{Mu: 0, Sigma: 0.5}
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = ln.Sample(rng)
	}
	e, err := NewECDF(samples)
	if err != nil {
		t.Fatal(err)
	}
	if d := e.KSDistance(ln.CDF); d > 0.02 {
		t.Errorf("KS distance to own distribution = %g, want small", d)
	}
	other := LogNormal{Mu: 1, Sigma: 0.5}
	if d := e.KSDistance(other.CDF); d < 0.3 {
		t.Errorf("KS distance to shifted distribution = %g, want large", d)
	}
}

func TestErfcInvEdges(t *testing.T) {
	if !math.IsInf(erfcInv(0), 1) {
		t.Error("erfcInv(0) not +Inf")
	}
	if !math.IsInf(erfcInv(2), -1) {
		t.Error("erfcInv(2) not -Inf")
	}
	if !math.IsNaN(erfcInv(-0.1)) || !math.IsNaN(erfcInv(2.1)) {
		t.Error("erfcInv outside [0,2] not NaN")
	}
	for _, x := range []float64{1e-6, 0.01, 0.3, 1, 1.7, 1.99} {
		if got := math.Erfc(erfcInv(x)); math.Abs(got-x) > 1e-10 {
			t.Errorf("Erfc(erfcInv(%g)) = %g", x, got)
		}
	}
}

func TestBootstrapPercentileCI(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ln := LogNormal{Mu: 0, Sigma: 0.3}
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = ln.Sample(rng)
	}
	lo, hi, err := BootstrapPercentileCI(samples, 0.5, 0.95, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	truth := ln.Median()
	if !(lo < truth && truth < hi) {
		t.Errorf("95%% CI [%g, %g] misses true median %g", lo, hi, truth)
	}
	if hi <= lo {
		t.Errorf("degenerate CI [%g, %g]", lo, hi)
	}
	// The tail percentile CI must be wider (relative) than the median CI.
	loT, hiT, err := BootstrapPercentileCI(samples, 0.003, 0.95, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	relTail := (hiT - loT) / loT
	relMed := (hi - lo) / lo
	if relTail <= relMed {
		t.Errorf("tail CI (%.3f rel) not wider than median CI (%.3f rel)", relTail, relMed)
	}
}

func TestBootstrapValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := BootstrapPercentileCI([]float64{1}, 0.5, 0.95, 100, rng); err == nil {
		t.Error("accepted one sample")
	}
	if _, _, err := BootstrapPercentileCI([]float64{1, 2}, -0.1, 0.95, 100, rng); err == nil {
		t.Error("accepted negative percentile")
	}
	if _, _, err := BootstrapPercentileCI([]float64{1, 2}, 0.5, 1.5, 100, rng); err == nil {
		t.Error("accepted conf > 1")
	}
	// Tiny b is bumped to a sane default rather than failing.
	if _, _, err := BootstrapPercentileCI([]float64{1, 2, 3}, 0.5, 0.9, 1, rng); err != nil {
		t.Errorf("small b: %v", err)
	}
}
