package stat_test

import (
	"fmt"
	"math/rand"

	"emvia/internal/stat"
)

// The paper's flaw-radius distribution: lognormal with mean 10 nm and a
// standard deviation of 5 % of the mean, which makes the critical stress
// σ_C = 2γs/R_f lognormal as well.
func ExampleLogNormalFromMoments() {
	rf, err := stat.LogNormalFromMoments(10e-9, 0.5e-9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean %.3g m, median %.3g m, sigma_ln %.4f\n", rf.Mean(), rf.Median(), rf.Sigma)
	// Output:
	// mean 1e-08 m, median 9.99e-09 m, sigma_ln 0.0500
}

// Fitting a lognormal to Monte-Carlo TTF samples is the paper's §5.1
// handoff from via-array characterization to grid analysis.
func ExampleFitLogNormal() {
	rng := rand.New(rand.NewSource(1))
	truth := stat.LogNormal{Mu: 19.0, Sigma: 0.25} // ≈ 5.6-year median TTF
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = truth.Sample(rng)
	}
	fit, err := stat.FitLogNormal(samples)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mu %.1f sigma %.2f\n", fit.Mu, fit.Sigma)
	// Output:
	// mu 19.0 sigma 0.25
}

// The worst-case TTF the paper reports is the 0.3-percentile point of the
// empirical CDF.
func ExampleECDF_Percentile() {
	e, err := stat.NewECDF([]float64{4, 1, 3, 2, 5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("median %.1f, max %.1f\n", e.Percentile(0.5), e.Percentile(1))
	// Output:
	// median 3.0, max 5.0
}
