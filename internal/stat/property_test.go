package stat

import (
	"math"
	"math/rand"
	"testing"
)

// qrand is a deterministic quasi-random parameter sweep: additive recurrence
// on the golden ratio (Kronecker low-discrepancy sequence), offset per
// dimension so the sweep covers the parameter box far more evenly than the
// same number of pseudo-random draws would.
type qrand struct{ i int }

const goldenFrac = 0.6180339887498949 // frac(φ)

// next returns a low-discrepancy point in [lo, hi) for dimension dim.
func (q *qrand) next(dim int, lo, hi float64) float64 {
	x := float64(q.i+1)*goldenFrac + float64(dim)*0.7548776662466927 // frac(plastic number) offsets dims
	x -= math.Floor(x)
	return lo + x*(hi-lo)
}

func (q *qrand) advance() { q.i++ }

func relDiff(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}

// TestPropertyMomentsRoundTrip sweeps (mean, std) pairs across six orders of
// magnitude: LogNormalFromMoments followed by Mean/StdDev must reproduce the
// requested arithmetic moments.
func TestPropertyMomentsRoundTrip(t *testing.T) {
	var q qrand
	for i := 0; i < 200; i++ {
		m := math.Exp(q.next(0, -7, 7))       // mean spans e^-7 … e^7
		s := m * math.Exp(q.next(1, -4, 1.5)) // std from tiny to ~4.5× mean
		q.advance()
		l, err := LogNormalFromMoments(m, s)
		if err != nil {
			t.Fatalf("case %d (m=%g s=%g): %v", i, m, s, err)
		}
		if d := relDiff(l.Mean(), m); d > 1e-12 {
			t.Errorf("case %d: Mean round-trip m=%g got %g (rel %g)", i, m, l.Mean(), d)
		}
		if d := relDiff(l.StdDev(), s); d > 1e-9 {
			t.Errorf("case %d: StdDev round-trip s=%g got %g (rel %g)", i, s, l.StdDev(), d)
		}
	}
}

// TestPropertyQuantileCDFInverse sweeps distributions and probabilities:
// CDF(Quantile(p)) must return p.
func TestPropertyQuantileCDFInverse(t *testing.T) {
	var q qrand
	for i := 0; i < 200; i++ {
		l := LogNormal{Mu: q.next(0, -5, 25), Sigma: math.Exp(q.next(1, -3, 1))}
		p := q.next(2, 1e-4, 1-1e-4)
		q.advance()
		got := l.CDF(l.Quantile(p))
		if math.Abs(got-p) > 1e-9 {
			t.Errorf("case %d (Mu=%g Sigma=%g): CDF(Quantile(%g)) = %g", i, l.Mu, l.Sigma, p, got)
		}
	}
}

// TestPropertyFitScaleEquivariance pins the MLE fit's exact algebraic
// structure: scaling every sample by c shifts the fitted Mu by ln c and
// leaves Sigma unchanged, for any positive sample set.
func TestPropertyFitScaleEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var q qrand
	for i := 0; i < 100; i++ {
		n := 2 + rng.Intn(40)
		gen := LogNormal{Mu: q.next(0, -3, 8), Sigma: math.Exp(q.next(1, -3, 0.7))}
		c := math.Exp(q.next(2, -6, 6))
		q.advance()
		samples := make([]float64, n)
		scaled := make([]float64, n)
		for k := range samples {
			samples[k] = gen.Sample(rng)
			scaled[k] = c * samples[k]
		}
		f1, err := FitLogNormal(samples)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		f2, err := FitLogNormal(scaled)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if d := math.Abs((f2.Mu - f1.Mu) - math.Log(c)); d > 1e-9 {
			t.Errorf("case %d: scaling by %g shifted Mu by %g, want %g", i, c, f2.Mu-f1.Mu, math.Log(c))
		}
		if d := math.Abs(f2.Sigma - f1.Sigma); d > 1e-9*(1+f1.Sigma) {
			t.Errorf("case %d: scaling changed Sigma %g → %g", i, f1.Sigma, f2.Sigma)
		}
	}
}

// TestPropertyFitRecoversGenerator fits large seeded samples and requires the
// estimate to land within the standard-error band of the generator — the
// statistical round-trip behind the paper's lognormal TTF fits.
func TestPropertyFitRecoversGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q qrand
	const n = 4000
	for i := 0; i < 25; i++ {
		gen := LogNormal{Mu: q.next(0, -2, 22), Sigma: math.Exp(q.next(1, -2.5, 0.7))}
		q.advance()
		samples := make([]float64, n)
		for k := range samples {
			samples[k] = gen.Sample(rng)
		}
		fit, err := FitLogNormal(samples)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		// Mu estimator has std error Sigma/√n; Sigma estimator Sigma/√(2n).
		// 5 standard errors keeps the seeded test deterministic yet tight.
		if d := math.Abs(fit.Mu - gen.Mu); d > 5*gen.Sigma/math.Sqrt(n) {
			t.Errorf("case %d: fitted Mu %g, generator %g (err %g)", i, fit.Mu, gen.Mu, d)
		}
		if d := math.Abs(fit.Sigma - gen.Sigma); d > 5*gen.Sigma/math.Sqrt(2*n) {
			t.Errorf("case %d: fitted Sigma %g, generator %g (err %g)", i, fit.Sigma, gen.Sigma, d)
		}
	}
}

// TestPropertyWilkinsonMomentMatch sweeps random term sets: the Wilkinson
// lognormal must match the exact first two moments of the sum — mean equal to
// the sum of means, variance (by independence) to the sum of variances.
func TestPropertyWilkinsonMomentMatch(t *testing.T) {
	var q qrand
	for i := 0; i < 120; i++ {
		nTerms := 1 + (q.i % 9)
		terms := make([]LogNormal, nTerms)
		var wantMean, wantVar float64
		for k := range terms {
			terms[k] = LogNormal{Mu: q.next(2*k, -1, 4), Sigma: math.Exp(q.next(2*k+1, -3, 0))}
			wantMean += terms[k].Mean()
			sd := terms[k].StdDev()
			wantVar += sd * sd
		}
		q.advance()
		sum, err := WilkinsonSum(terms)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if d := relDiff(sum.Mean(), wantMean); d > 1e-9 {
			t.Errorf("case %d (%d terms): Wilkinson mean %g, exact %g (rel %g)", i, nTerms, sum.Mean(), wantMean, d)
		}
		gotVar := sum.StdDev() * sum.StdDev()
		if d := relDiff(gotVar, wantVar); d > 1e-6 {
			t.Errorf("case %d (%d terms): Wilkinson variance %g, exact %g (rel %g)", i, nTerms, gotVar, wantVar, d)
		}
	}
}

// TestPropertyECDFInvariants sweeps seeded sample sets and checks the order
// and range invariants every empirical CDF must satisfy: At is a CDF
// (monotone, 0→1), Percentile is monotone and bracketed by Min/Max, and the
// two are mutually consistent at the sample points.
func TestPropertyECDFInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var q qrand
	for i := 0; i < 60; i++ {
		n := 1 + rng.Intn(60)
		gen := LogNormal{Mu: q.next(0, -2, 6), Sigma: math.Exp(q.next(1, -3, 0.5))}
		q.advance()
		samples := make([]float64, n)
		for k := range samples {
			samples[k] = gen.Sample(rng)
		}
		e, err := NewECDF(samples)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if e.At(e.Max()) != 1 {
			t.Errorf("case %d: At(Max) = %g, want 1", i, e.At(e.Max()))
		}
		if got := e.At(e.Min() / 2); got != 0 {
			t.Errorf("case %d: At below Min = %g, want 0", i, got)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			v := e.Percentile(p)
			if v < prev {
				t.Fatalf("case %d: Percentile not monotone at p=%g: %g < %g", i, p, v, prev)
			}
			if v < e.Min() || v > e.Max() {
				t.Fatalf("case %d: Percentile(%g) = %g outside [%g, %g]", i, p, v, e.Min(), e.Max())
			}
			prev = v
		}
	}
}
