package serve

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"emvia/internal/trace"
)

// screenInfoFixture is a plausible steady-screen digest for merge tests.
func screenInfoFixture() trace.ScreenInfo {
	return trace.ScreenInfo{
		Vias:           40,
		MortalVias:     12,
		Segments:       60,
		MortalSegments: 9,
		SigmaCritViaPa: 4.1e8,
		SigmaTViaPa:    2.2e8,
	}
}

// mergeSpec returns a resolved spec with the given trial count, the fixed
// question every merge test answers.
func mergeSpec(t testing.TB, trials int) *JobSpec {
	t.Helper()
	spec, err := DecodeJobSpec(strings.NewReader(tinySpec))
	if err != nil {
		t.Fatalf("decoding tinySpec: %v", err)
	}
	r := spec.Resolved()
	r.Trials = trials
	return r
}

// partialFor fabricates a valid partial covering [start, start+count) of a
// synthetic 10-trial outcome vector: trial t's TTF is float64(t+1)*1e7,
// except trial 3 which is +Inf (the censored-trial spelling).
func partialFor(hash string, spec *JobSpec, start, count int) *PartialManifest {
	ttf := make([]any, count)
	for i := 0; i < count; i++ {
		t := start + i
		if t == 3 {
			ttf[i] = "+Inf"
		} else {
			ttf[i] = float64(t+1) * 1e7
		}
	}
	return &PartialManifest{
		SchemaVersion: PartialManifestSchemaVersion,
		ContentHash:   hash,
		MaterialHash:  "mat",
		Engine:        spec.Engine,
		Solver:        "direct",
		TrialStart:    start,
		TrialCount:    count,
		TTFSeconds:    ttf,
	}
}

// TestMergePartialsRoundTrip: any tiling of [0, N) reassembles the same
// trial vector, regardless of the order the partials arrive in.
func TestMergePartialsRoundTrip(t *testing.T) {
	const hash = "abc123"
	spec := mergeSpec(t, 10)
	for _, bounds := range [][]int{
		{0, 10},
		{0, 5, 10},
		{0, 1, 4, 9, 10},
	} {
		var parts []*PartialManifest
		for i := 0; i+1 < len(bounds); i++ {
			parts = append(parts, partialFor(hash, spec, bounds[i], bounds[i+1]-bounds[i]))
		}
		// Reverse arrival order: merge must sort, not trust the caller.
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		out, err := mergePartials(hash, spec, parts)
		if err != nil {
			t.Fatalf("bounds %v: %v", bounds, err)
		}
		if len(out.mcResult.TTF) != 10 {
			t.Fatalf("bounds %v: merged %d trials, want 10", bounds, len(out.mcResult.TTF))
		}
		for i, v := range out.mcResult.TTF {
			if i == 3 {
				if !math.IsInf(v, 1) {
					t.Errorf("bounds %v: trial 3 = %g, want +Inf", bounds, v)
				}
				continue
			}
			if v != float64(i+1)*1e7 {
				t.Errorf("bounds %v: trial %d = %g, want %g", bounds, i, v, float64(i+1)*1e7)
			}
		}
		if out.materialHash != "mat" || out.solver != "direct" {
			t.Errorf("bounds %v: provenance %q/%q not carried through", bounds, out.materialHash, out.solver)
		}
	}
}

// TestMergePartialsRejects: every malformed fleet answer is an error —
// never a panic, never a silently merged manifest.
func TestMergePartialsRejects(t *testing.T) {
	const hash = "abc123"
	spec := mergeSpec(t, 10)
	good := func() []*PartialManifest {
		return []*PartialManifest{
			partialFor(hash, spec, 0, 5),
			partialFor(hash, spec, 5, 5),
		}
	}
	cases := []struct {
		name string
		mut  func([]*PartialManifest) []*PartialManifest
		want string
	}{
		{"zero partials", func(p []*PartialManifest) []*PartialManifest { return nil }, "zero partial"},
		{"nil partial", func(p []*PartialManifest) []*PartialManifest { p[1] = nil; return p }, "nil partial"},
		{"overlap", func(p []*PartialManifest) []*PartialManifest {
			p[1] = partialFor(hash, spec, 4, 6)
			return p
		}, "overlap"},
		{"duplicate range", func(p []*PartialManifest) []*PartialManifest {
			return append(p, partialFor(hash, spec, 0, 5))
		}, "overlap"},
		{"gap", func(p []*PartialManifest) []*PartialManifest {
			p[1] = partialFor(hash, spec, 6, 4)
			return p
		}, "uncovered"},
		{"missing tail", func(p []*PartialManifest) []*PartialManifest {
			p[1] = partialFor(hash, spec, 5, 4)
			return p
		}, "cover"},
		{"wrong spec hash", func(p []*PartialManifest) []*PartialManifest {
			p[1].ContentHash = "other"
			return p
		}, "answers spec"},
		{"schema skew", func(p []*PartialManifest) []*PartialManifest {
			p[1].SchemaVersion = 99
			return p
		}, "schema"},
		{"engine mismatch", func(p []*PartialManifest) []*PartialManifest {
			p[1].Engine = "both"
			return p
		}, "engine"},
		{"material skew", func(p []*PartialManifest) []*PartialManifest {
			p[1].MaterialHash = "other"
			return p
		}, "material hash"},
		{"solver skew", func(p []*PartialManifest) []*PartialManifest {
			p[1].Solver = "cg"
			return p
		}, "solver"},
		{"negative start", func(p []*PartialManifest) []*PartialManifest {
			p[1].TrialStart = -1
			return p
		}, "negative"},
		{"range past end", func(p []*PartialManifest) []*PartialManifest {
			p[1] = partialFor(hash, spec, 5, 6)
			return p
		}, "exceeds"},
		{"ttf length mismatch", func(p []*PartialManifest) []*PartialManifest {
			p[1].TTFSeconds = p[1].TTFSeconds[:3]
			return p
		}, "ttf entries"},
		{"corrupt ttf entry", func(p []*PartialManifest) []*PartialManifest {
			p[1].TTFSeconds[2] = "bogus"
			return p
		}, "invalid ttf_seconds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := mergePartials(hash, spec, tc.mut(good()))
			if err == nil {
				t.Fatalf("merge accepted a %s fleet answer", tc.name)
			}
			if out != nil {
				t.Fatalf("merge returned output alongside error %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestMergePartialsScreenDisagreement: -engine=both shards must agree on
// the deterministic steady screen.
func TestMergePartialsScreenDisagreement(t *testing.T) {
	const hash = "abc123"
	spec := mergeSpec(t, 10)
	spec.Engine = "both"
	a := partialFor(hash, spec, 0, 5)
	b := partialFor(hash, spec, 5, 5)
	a.Engine, b.Engine = "both", "both"
	sa := screenInfoFixture()
	sb := screenInfoFixture()
	sb.MortalVias++
	a.Screen, b.Screen = &sa, &sb
	if _, err := mergePartials(hash, spec, []*PartialManifest{a, b}); err == nil || !strings.Contains(err.Error(), "screen") {
		t.Fatalf("disagreeing screens merged: err=%v", err)
	}
	// One shard missing its screen entirely is the same disagreement.
	b.Screen = nil
	if _, err := mergePartials(hash, spec, []*PartialManifest{a, b}); err == nil || !strings.Contains(err.Error(), "screen") {
		t.Fatalf("nil-vs-set screens merged: err=%v", err)
	}
	// Agreement merges and carries the screen through.
	sc := sa
	b.Screen = &sc
	out, err := mergePartials(hash, spec, []*PartialManifest{a, b})
	if err != nil {
		t.Fatalf("agreeing screens: %v", err)
	}
	if out.screen == nil || *out.screen != sa {
		t.Fatalf("merged screen %+v, want %+v", out.screen, sa)
	}
}

// TestPartialEncodeDecodeRoundTrip pins the canonical wire format: encode →
// decode is the identity, including non-finite spellings, and the decoder
// rejects unknown fields and trailing garbage.
func TestPartialEncodeDecodeRoundTrip(t *testing.T) {
	spec := mergeSpec(t, 10)
	p := partialFor("abc123", spec, 0, 10)
	p.TTFSeconds[7] = "NaN"
	buf, err := p.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	q, err := DecodePartialManifest(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	buf2, err := q.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Errorf("encode → decode → encode is not the identity:\n%s\nvs\n%s", buf, buf2)
	}
	if _, err := DecodePartialManifest(strings.NewReader(`{"schema_version":1,"bogus":1}`)); err == nil {
		t.Error("decoder accepted an unknown field")
	}
	if _, err := DecodePartialManifest(bytes.NewReader(append(append([]byte{}, buf...), []byte("{}")...))); err == nil {
		t.Error("decoder accepted trailing data")
	}
}

// FuzzMergePartials throws arbitrary byte blobs at the decode-then-merge
// path: whatever a worker or cache returns, the coordinator must either
// merge a complete, exact tiling or error out — never panic, never accept
// a partial answer.
func FuzzMergePartials(f *testing.F) {
	spec := mergeSpec(f, 6)
	const hash = "abc123"
	seed := func(parts ...*PartialManifest) [][]byte {
		out := make([][]byte, len(parts))
		for i, p := range parts {
			buf, err := p.Encode()
			if err != nil {
				f.Fatalf("seed encode: %v", err)
			}
			out[i] = buf
		}
		return out
	}
	whole := seed(partialFor(hash, spec, 0, 6))
	split := seed(partialFor(hash, spec, 0, 3), partialFor(hash, spec, 3, 3))
	f.Add(whole[0], []byte("{}"))
	f.Add(split[0], split[1])
	f.Add(split[0], split[0])                        // duplicate range
	f.Add(split[0], []byte(`{"schema_version":1}`))  // empty shard
	f.Add([]byte(`not json at all`), split[1])       // corrupt
	f.Add(bytes.Replace(split[0], []byte(hash), []byte("deadbeef"), 1), split[1]) // wrong hash
	f.Fuzz(func(t *testing.T, a, b []byte) {
		var parts []*PartialManifest
		for _, raw := range [][]byte{a, b} {
			p, err := DecodePartialManifest(bytes.NewReader(raw))
			if err != nil {
				continue
			}
			parts = append(parts, p)
		}
		out, err := mergePartials(hash, spec, parts)
		if err != nil {
			if out != nil {
				t.Fatalf("merge returned output alongside error %v", err)
			}
			return
		}
		if out == nil || out.mcResult == nil {
			t.Fatal("merge succeeded without a result")
		}
		if len(out.mcResult.TTF) != spec.Trials {
			t.Fatalf("merge accepted %d trials, spec wants %d", len(out.mcResult.TTF), spec.Trials)
		}
		covered := 0
		for _, p := range parts {
			covered += p.TrialCount
		}
		if covered != spec.Trials {
			t.Fatalf("merge accepted partials covering %d of %d trials", covered, spec.Trials)
		}
	})
}
