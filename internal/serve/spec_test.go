package serve

import (
	"bytes"
	"strings"
	"testing"
)

// TestDecodeRejects pins the admission failures the fuzzer explores: each
// of these bodies must be refused before any job could be enqueued.
func TestDecodeRejects(t *testing.T) {
	cases := map[string]string{
		"empty":          ``,
		"not json":       `]]]`,
		"trailing":       `{"grid":{}} garbage`,
		"unknown field":  `{"grid":{},"frobnicate":1}`,
		"wrong type":     `{"trials":"many","grid":{}}`,
		"huge exponent":  `{"vdd":1e999,"grid":{}}`,
		"nan literal":    `{"vdd":NaN,"grid":{}}`,
		"string number":  `{"seed":"42","grid":{}}`,
		"array payload":  `[1,2,3]`,
		"double payload": `{"grid":{}}{"grid":{}}`,
	}
	for name, body := range cases {
		if _, err := DecodeJobSpec(strings.NewReader(body)); err == nil {
			t.Errorf("%s: decode accepted %q", name, body)
		}
	}
}

// TestValidateRejects pins the post-decode admission failures.
func TestValidateRejects(t *testing.T) {
	cases := map[string]JobSpec{
		"no source":      {},
		"both sources":   {Deck: "* deck", Grid: &GridSource{}},
		"schema skew":    {SchemaVersion: SpecSchemaVersion + 1, Grid: &GridSource{}},
		"bad engine":     {Engine: "warp", Grid: &GridSource{}},
		"bad criterion":  {Criterion: "vibes", Grid: &GridSource{}},
		"trials cap":     {Trials: MaxTrials + 1, Grid: &GridSource{}},
		"neg trials":     {Trials: -1, Grid: &GridSource{}},
		"grid cap":       {Grid: &GridSource{NX: MaxGridStripes + 1}},
		"neg nx":         {Grid: &GridSource{NX: -4}},
		"bad model key":  {Grid: &GridSource{}, Models: map[string]ModelSpec{"star": {MedianYears: 5, Sigma: 0.3}}},
		"neg median":     {Grid: &GridSource{}, Models: map[string]ModelSpec{"plus": {MedianYears: -5, Sigma: 0.3}}},
		"neg timeout":    {Grid: &GridSource{}, TimeoutSeconds: -1},
		"neg irfrac":     {IRFrac: -0.1, Grid: &GridSource{}},
		"irfrac above 1": {IRFrac: 1.5, Grid: &GridSource{}},
		"neg vdd":        {Vdd: -1.8, Grid: &GridSource{}},
	}
	for name, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, spec)
		}
	}
}

// TestContentHashCanonicalization pins the dedup identity: defaults
// spelled out and defaults omitted are the same job; execution knobs
// (timeout) are not part of the identity; a result-shaping knob (seed) is.
func TestContentHashCanonicalization(t *testing.T) {
	base := JobSpec{Grid: &GridSource{}}
	explicit := JobSpec{
		Engine: "mc", Vdd: 1.8, Criterion: "ir", IRFrac: 0.10,
		Trials: 100, Seed: 2017,
		Grid: &GridSource{Name: "PG1", Seed: 1, CalibrateIR: 0.065},
	}
	h1 := mustHash(t, &base)
	if h2 := mustHash(t, &explicit); h2 != h1 {
		t.Errorf("explicit defaults changed the hash: %s vs %s", h2, h1)
	}
	timeouted := base
	timeouted.TimeoutSeconds = 30
	if h3 := mustHash(t, &timeouted); h3 != h1 {
		t.Errorf("timeout (an execution knob) changed the hash")
	}
	seeded := base
	seeded.Seed = 999
	if h4 := mustHash(t, &seeded); h4 == h1 {
		t.Errorf("seed change did not change the hash")
	}
	steady := base
	steady.Engine = "steady"
	steadyTrials := steady
	steadyTrials.Trials = 5000
	if mustHash(t, &steady) != mustHash(t, &steadyTrials) {
		t.Errorf("steady engine did not canonicalize the inert trial knob away")
	}
}

func mustHash(t *testing.T, s *JobSpec) string {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	h, err := s.ContentHash()
	if err != nil {
		t.Fatalf("ContentHash: %v", err)
	}
	return h
}

// FuzzJobSpecDecode drives arbitrary bytes through the full admission path
// — decode, validate, resolve, hash. The invariants: no panic anywhere,
// and every spec that passes validation must resolve and hash cleanly
// (anything else would let a hostile payload reach the queue in a state
// the executor cannot content-address).
func FuzzJobSpecDecode(f *testing.F) {
	f.Add([]byte(`{"grid":{"name":"PG1","nx":6,"ny":6},"trials":10}`))
	f.Add([]byte(`{"deck":"* title\nR1 n1_0_0 n1_0_1 1.0\n.end"}`))
	f.Add([]byte(`{"engine":"steady","grid":{}}`))
	f.Add([]byte(`{"engine":"both","grid":{},"models":{"plus":{"median_years":5,"sigma":0.3}}}`))
	f.Add([]byte(`{"schema_version":99,"grid":{}}`))
	f.Add([]byte(`{"vdd":1e999,"grid":{}}`))
	f.Add([]byte(`{"trials":-1,"grid":{}}`))
	f.Add([]byte(`{"grid":{},"timeout_seconds":1e308}`))
	f.Add([]byte(`{"grid":{}} trailing`))
	f.Add([]byte(`{"grid":{},"unknown_field":true}`))
	f.Add([]byte(`{"criterion":"wl","ir_frac":0.5,"grid":{"calibrate_ir":-1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected at decode: never enqueued
		}
		if err := spec.Validate(); err != nil {
			return // rejected at validation: never enqueued
		}
		resolved := spec.Resolved()
		if resolved.Engine == "" || resolved.Vdd == 0 || resolved.Criterion == "" {
			t.Fatalf("validated spec resolved with missing defaults: %+v", resolved)
		}
		h1, err := spec.ContentHash()
		if err != nil {
			t.Fatalf("validated spec failed to hash: %v", err)
		}
		h2, err := resolved.ContentHash()
		if err != nil || h2 != h1 {
			t.Fatalf("hash not idempotent under resolution: %q vs %q (err %v)", h1, h2, err)
		}
	})
}
