package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"emvia/internal/telemetry"
	"emvia/internal/trace"
)

// shardSpec is tinySpec with enough trials for a meaningful partition.
var shardSpec = strings.Replace(tinySpec, `"trials":6`, `"trials":12`, 1)

// fleet is a coordinator plus worker emserve processes sharing one httptest
// host each. All servers share the process's telemetry registry and trace
// ring, so counter assertions see fleet-wide traffic.
type fleet struct {
	coord   *Server
	coordTS *httptest.Server
	workers []*httptest.Server
}

// newFleet resets the process globals, boots nWorkers worker servers, wires
// their URLs into cfg.ShardWorkers (appending to any pre-seeded entries,
// e.g. a dead or hanging decoy) and boots the coordinator on top.
func newFleet(t *testing.T, nWorkers int, cfg Config) *fleet {
	t.Helper()
	telemetry.SetDefault(telemetry.New())
	trace.SetDefault(trace.New(trace.Options{Ring: trace.NewRing(1024), DisableSamples: true}))
	t.Cleanup(func() {
		telemetry.SetDefault(nil)
		trace.SetDefault(nil)
	})
	f := &fleet{}
	drain := func(s *Server, ts *httptest.Server) {
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				t.Errorf("cleanup drain: %v", err)
			}
			ts.Close()
		})
	}
	for i := 0; i < nWorkers; i++ {
		w := NewServer(Config{ShardSlots: 2})
		wts := httptest.NewServer(w.Handler())
		drain(w, wts)
		f.workers = append(f.workers, wts)
		cfg.ShardWorkers = append(cfg.ShardWorkers, wts.URL)
	}
	f.coord = NewServer(cfg)
	f.coordTS = httptest.NewServer(f.coord.Handler())
	drain(f.coord, f.coordTS)
	return f
}

// referenceManifest computes the single-process manifest of a spec through
// the same engine path the server uses — the byte-identity baseline every
// sharded run must reproduce.
func referenceManifest(t *testing.T, body string) []byte {
	t.Helper()
	spec, err := DecodeJobSpec(strings.NewReader(body))
	if err != nil {
		t.Fatalf("decoding spec: %v", err)
	}
	resolved := spec.Resolved()
	hash, err := spec.ContentHash()
	if err != nil {
		t.Fatalf("hashing spec: %v", err)
	}
	out, err := runSpec(context.Background(), resolved, RunOptions{Workers: 1, Label: "reference"})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	m, err := buildManifest(hash, resolved, out)
	if err != nil {
		t.Fatalf("reference manifest: %v", err)
	}
	buf, err := m.Encode()
	if err != nil {
		t.Fatalf("encoding reference manifest: %v", err)
	}
	return buf
}

// runSharded submits a spec to the fleet's coordinator and returns the
// manifest bytes after asserting the job completed.
func (f *fleet) run(t *testing.T, ts *httptest.Server, body string) []byte {
	t.Helper()
	code, sub, _ := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	st := waitTerminal(t, ts, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job finished %q (error %q), want done", st.State, st.Error)
	}
	rcode, manifest := getResult(t, ts, sub.ID)
	if rcode != http.StatusOK {
		t.Fatalf("result: code %d, body %s", rcode, manifest)
	}
	return manifest
}

// TestShardedLocalPoolByteIdentity: with no workers configured, sharding
// self-dispatches to a local executor pool and still reproduces the
// single-process manifest bit for bit.
func TestShardedLocalPoolByteIdentity(t *testing.T) {
	f := newFleet(t, 0, Config{Shards: 3})
	want := referenceManifest(t, shardSpec)
	got := f.run(t, f.coordTS, shardSpec)
	if !bytes.Equal(want, got) {
		t.Errorf("local-pool sharded manifest differs from single-process:\n--- single\n%s\n--- sharded\n%s", want, got)
	}
	if n := counter(telemetry.ServeShardLocalRuns); n != 3 {
		t.Errorf("local shard runs %d, want 3", n)
	}
	if n := counter(telemetry.ServeShardRemoteRuns); n != 0 {
		t.Errorf("remote shard runs %d, want 0", n)
	}
}

// TestShardedRemoteWorkersByteIdentity: a coordinator dispatching to two
// worker processes merges their partial manifests into the byte-identical
// single-process manifest, for both the mc and the screened both engines.
func TestShardedRemoteWorkersByteIdentity(t *testing.T) {
	f := newFleet(t, 2, Config{Shards: 3})
	for _, tc := range []struct {
		name string
		body string
	}{
		{"mc", shardSpec},
		{"both", strings.Replace(shardSpec, `"engine":"mc"`, `"engine":"both"`, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := referenceManifest(t, tc.body)
			got := f.run(t, f.coordTS, tc.body)
			if !bytes.Equal(want, got) {
				t.Errorf("sharded manifest differs from single-process:\n--- single\n%s\n--- sharded\n%s", want, got)
			}
		})
	}
	if n := counter(telemetry.ServeShardRemoteRuns); n != 6 {
		t.Errorf("remote shard runs %d, want 6 (3 per job)", n)
	}
	if n := counter(telemetry.ServeShardLocalRuns); n != 0 {
		t.Errorf("local shard runs %d, want 0", n)
	}
}

// TestShardWorkerStragglerReassignment: a worker that hangs mid-shard (a
// kill without a TCP reset) trips ShardTimeout and the shard is re-issued
// to the next worker; the merged manifest is still byte-identical and the
// job reports the re-issue.
func TestShardWorkerStragglerReassignment(t *testing.T) {
	stop := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Hold the shard request open past ShardTimeout — a worker killed
		// mid-job without a TCP reset. stop releases the handler at test end
		// so the httptest server can close.
		select {
		case <-r.Context().Done():
		case <-stop:
		}
	}))
	defer hang.Close()
	defer close(stop)
	f := newFleet(t, 1, Config{
		Shards:        2,
		ShardWorkers:  []string{hang.URL}, // newFleet appends the live worker after the decoy
		ShardTimeout:  200 * time.Millisecond,
		ShardAttempts: 3,
	})
	want := referenceManifest(t, shardSpec)
	code, sub, _ := submit(t, f.coordTS, shardSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	st := waitTerminal(t, f.coordTS, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job finished %q (error %q), want done", st.State, st.Error)
	}
	_, got := getResult(t, f.coordTS, sub.ID)
	if !bytes.Equal(want, got) {
		t.Errorf("manifest after straggler reassignment differs from single-process run")
	}
	if n := counter(telemetry.ServeShardReissues); n < 1 {
		t.Errorf("shard reissues %d, want ≥ 1", n)
	}
	job, ok := f.coord.store.get(sub.ID)
	if !ok {
		t.Fatal("job vanished from the store")
	}
	if js := job.Status(); js.Shards != 2 || js.ShardReissues < 1 {
		t.Errorf("job status shards=%d reissues=%d, want 2/≥1", js.Shards, js.ShardReissues)
	}
}

// TestShardAllWorkersDownLocalFallback: with every worker unreachable the
// final always-local attempt still completes the job — slow success, never
// failure — and the manifest stays byte-identical.
func TestShardAllWorkersDownLocalFallback(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on
	f := newFleet(t, 0, Config{
		Shards:        2,
		ShardWorkers:  []string{dead.URL},
		ShardAttempts: 2,
	})
	want := referenceManifest(t, shardSpec)
	got := f.run(t, f.coordTS, shardSpec)
	if !bytes.Equal(want, got) {
		t.Errorf("manifest after local fallback differs from single-process run")
	}
	if n := counter(telemetry.ServeShardLocalRuns); n != 2 {
		t.Errorf("local shard runs %d, want 2", n)
	}
	if n := counter(telemetry.ServeShardErrors); n < 2 {
		t.Errorf("shard dispatch errors %d, want ≥ 2", n)
	}
}

// postShard sends a raw shard request to a server and returns the status
// code and body.
func postShard(t *testing.T, ts *httptest.Server, req shardRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("encoding shard request: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/shards", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/shards: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading shard response: %v", err)
	}
	return resp.StatusCode, out
}

// TestShardCacheReplication: a worker handed the coordinator's URL pushes
// its partial into the coordinator's cache, and a second worker asked the
// same question answers from that cache without executing anything.
func TestShardCacheReplication(t *testing.T) {
	f := newFleet(t, 2, Config{})
	spec, err := DecodeJobSpec(strings.NewReader(shardSpec))
	if err != nil {
		t.Fatalf("decoding spec: %v", err)
	}
	resolved := spec.Resolved()
	hash, err := spec.ContentHash()
	if err != nil {
		t.Fatalf("hashing spec: %v", err)
	}
	req := shardRequest{
		SchemaVersion: SpecSchemaVersion,
		ContentHash:   hash,
		Spec:          resolved,
		TrialStart:    0,
		TrialCount:    5,
		CacheURL:      f.coordTS.URL,
	}

	code, first := postShard(t, f.workers[0], req)
	if code != http.StatusOK {
		t.Fatalf("worker 0 shard: code %d, body %s", code, first)
	}
	if n := counter(telemetry.ServeShardServed); n != 1 {
		t.Fatalf("shards executed after first dispatch: %d, want 1", n)
	}

	// The worker pushed the partial to the coordinator before responding.
	addr := f.coordTS.URL + "/v1/partials/" + hash + "/0/5"
	resp, err := http.Get(addr)
	if err != nil {
		t.Fatalf("GET coordinator partial: %v", err)
	}
	replicated, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator partial cache: code %d", resp.StatusCode)
	}
	if !bytes.Equal(replicated, first) {
		t.Errorf("replicated partial differs from the worker's response")
	}

	// A different worker, same question: answered from the coordinator's
	// cache — no second execution.
	code, second := postShard(t, f.workers[1], req)
	if code != http.StatusOK {
		t.Fatalf("worker 1 shard: code %d, body %s", code, second)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("second worker's partial differs from the first's")
	}
	if n := counter(telemetry.ServeShardServed); n != 1 {
		t.Errorf("shards executed after cached dispatch: %d, want still 1", n)
	}
	if n := counter(telemetry.ServeShardCacheHits); n < 1 {
		t.Errorf("shard cache hits %d, want ≥ 1", n)
	}
}

// TestShardContentHashSkew: a worker that disagrees with the coordinator
// about what the spec hashes to refuses the shard with 409 — fleet-version
// skew must never reach a merge.
func TestShardContentHashSkew(t *testing.T) {
	f := newFleet(t, 1, Config{})
	spec, err := DecodeJobSpec(strings.NewReader(shardSpec))
	if err != nil {
		t.Fatalf("decoding spec: %v", err)
	}
	code, body := postShard(t, f.workers[0], shardRequest{
		SchemaVersion: SpecSchemaVersion,
		ContentHash:   "not-the-real-hash",
		Spec:          spec.Resolved(),
		TrialStart:    0,
		TrialCount:    3,
	})
	if code != http.StatusConflict {
		t.Fatalf("hash-skewed shard: code %d (body %s), want 409", code, body)
	}
}

// TestShardRequestValidation: malformed shard requests are rejected before
// any engine work.
func TestShardRequestValidation(t *testing.T) {
	f := newFleet(t, 1, Config{})
	spec, err := DecodeJobSpec(strings.NewReader(shardSpec))
	if err != nil {
		t.Fatalf("decoding spec: %v", err)
	}
	resolved := spec.Resolved()
	for _, tc := range []struct {
		name string
		req  shardRequest
	}{
		{"no spec", shardRequest{SchemaVersion: SpecSchemaVersion}},
		{"range past end", shardRequest{SchemaVersion: SpecSchemaVersion, Spec: resolved, TrialStart: 8, TrialCount: 8}},
		{"empty range", shardRequest{SchemaVersion: SpecSchemaVersion, Spec: resolved, TrialStart: 0, TrialCount: 0}},
		{"future schema", shardRequest{SchemaVersion: SpecSchemaVersion + 1, Spec: resolved, TrialStart: 0, TrialCount: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postShard(t, f.workers[0], tc.req)
			if code != http.StatusBadRequest {
				t.Errorf("code %d (body %s), want 400", code, body)
			}
		})
	}
}

// TestShardRanges pins the partition arithmetic: contiguous, balanced,
// exact tiling for every (trials, shards) shape.
func TestShardRanges(t *testing.T) {
	for _, tc := range []struct {
		trials, shards int
		want           []trialRange
	}{
		{12, 3, []trialRange{{0, 4}, {4, 4}, {8, 4}}},
		{13, 3, []trialRange{{0, 5}, {5, 4}, {9, 4}}},
		{2, 4, []trialRange{{0, 1}, {1, 1}}},
		{5, 1, []trialRange{{0, 5}}},
	} {
		got := shardRanges(tc.trials, tc.shards)
		if len(got) != len(tc.want) {
			t.Errorf("shardRanges(%d, %d) = %v, want %v", tc.trials, tc.shards, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("shardRanges(%d, %d)[%d] = %v, want %v", tc.trials, tc.shards, i, got[i], tc.want[i])
			}
		}
	}
}

// TestRetryAfterHint pins the queue-aware Retry-After derivation: before
// any job completes the hint is the 1s floor; once the per-job wall-time
// histogram has data the hint scales with the backlog and clamps at the
// 10-minute ceiling.
func TestRetryAfterHint(t *testing.T) {
	telemetry.SetDefault(telemetry.New())
	trace.SetDefault(trace.New(trace.Options{Ring: trace.NewRing(64), DisableSamples: true}))
	t.Cleanup(func() {
		telemetry.SetDefault(nil)
		trace.SetDefault(nil)
	})
	s := NewServer(Config{Runner: func(ctx context.Context, spec *JobSpec, opts RunOptions) (*runOutput, error) {
		return &runOutput{materialHash: "test"}, nil
	}})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck
	})
	if got := s.retryAfterHint(1); got != "1" {
		t.Errorf("hint before any job = %s, want the 1s floor", got)
	}
	// Five identical 3-second jobs: the P50 clamp makes the estimate exact.
	for i := 0; i < 5; i++ {
		s.reg.Histogram(telemetry.ServeJobSeconds).Observe(3.0)
	}
	if got := s.retryAfterHint(1); got != "3" {
		t.Errorf("hint at backlog 1 = %s, want 3", got)
	}
	if got := s.retryAfterHint(4); got != "12" {
		t.Errorf("hint at backlog 4 = %s, want 12", got)
	}
	if got := s.retryAfterHint(1000); got != "600" {
		t.Errorf("hint at backlog 1000 = %s, want the 600s ceiling", got)
	}
}
