package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"emvia/internal/mc"
	"emvia/internal/telemetry"
)

// trialRange is one contiguous shard of a job's trial range.
type trialRange struct {
	start, count int
}

// shardRanges splits [0, trials) into at most shards contiguous balanced
// ranges (the first trials%shards ranges get one extra trial). Fewer trials
// than shards yields one single-trial range per trial.
func shardRanges(trials, shards int) []trialRange {
	if shards > trials {
		shards = trials
	}
	if shards < 1 {
		shards = 1
	}
	q, r := trials/shards, trials%shards
	out := make([]trialRange, 0, shards)
	start := 0
	for i := 0; i < shards; i++ {
		count := q
		if i < r {
			count++
		}
		out = append(out, trialRange{start: start, count: count})
		start += count
	}
	return out
}

// shardCount resolves how many shards a job splits into: the configured
// count, capped by the trial count, and 1 (no sharding) for the steady
// engine, which runs no trials to split.
func (s *Server) shardCount(spec *JobSpec) int {
	k := s.cfg.Shards
	if k <= 1 || spec.Engine == mc.EngineSteady || spec.Trials < 2 {
		return 1
	}
	if k > spec.Trials {
		k = spec.Trials
	}
	return k
}

// execute runs one job's engine work: sharded across the worker fleet (or
// the local executor pool) when sharding is configured, single-process
// otherwise.
func (s *Server) execute(ctx context.Context, job *Job) (*runOutput, error) {
	if k := s.shardCount(job.Spec); k > 1 {
		return s.runSharded(ctx, job, k)
	}
	return s.runner(ctx, job.Spec, RunOptions{Workers: s.cfg.JobWorkers, Label: job.TraceLabel()})
}

// shardRequest is the POST /v1/shards body: one trial-range sub-job of a
// resolved spec. ContentHash is the coordinator's address for the resolved
// spec — the worker recomputes it and refuses on mismatch, which catches
// schema or material-constant skew across the fleet before it can corrupt
// a merge. CacheURL, when set, is the coordinator's base URL; the worker
// consults and populates the coordinator's partial cache through it, so
// the whole fleet shares one dedup domain.
type shardRequest struct {
	SchemaVersion int      `json:"schema_version"`
	ContentHash   string   `json:"content_hash"`
	Spec          *JobSpec `json:"spec"`
	TrialStart    int      `json:"trial_start"`
	TrialCount    int      `json:"trial_count"`
	CacheURL      string   `json:"cache_url,omitempty"`
}

// runSharded executes one job as K contiguous trial-range shards and merges
// the partial manifests into the single-process-identical run output. Each
// shard is dispatched to the worker fleet (round-robin from a per-shard
// offset, re-issued to the next worker on failure or timeout) or, when no
// workers are configured, to a local executor pool. The final attempt of
// every shard runs locally, so a job only fails when the engine itself
// fails. Completed partials are content-addressed in the coordinator's
// cache, making re-issues and retried jobs idempotent.
func (s *Server) runSharded(ctx context.Context, job *Job, k int) (*runOutput, error) {
	ranges := shardRanges(job.Spec.Trials, k)
	job.noteShards(len(ranges))

	endDispatch := job.Timeline.Stage("dispatch")
	parts := make([]*PartialManifest, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r trialRange) {
			defer wg.Done()
			parts[i], errs[i] = s.runShard(ctx, job, i, r)
		}(i, r)
	}
	endDispatch()

	endWait := job.Timeline.Stage("shard-wait")
	wg.Wait()
	endWait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d [%d,%d): %w", i, ranges[i].start, ranges[i].start+ranges[i].count, err)
		}
	}

	endMerge := job.Timeline.Stage("merge")
	t0 := s.reg.Histogram(telemetry.ServeShardMergeSeconds).Start()
	out, err := mergePartials(job.Hash, job.Spec, parts)
	s.reg.Histogram(telemetry.ServeShardMergeSeconds).ObserveSince(t0)
	endMerge()
	if err != nil {
		s.reg.Counter(telemetry.ServeShardMergeErrors).Inc()
		return nil, err
	}
	return out, nil
}

// runShard produces the partial manifest of one shard: coordinator cache
// first, then up to ShardAttempts-1 remote dispatches (each bounded by
// ShardTimeout and re-issued to the next worker on failure — the straggler
// path), then a local run as the final attempt.
func (s *Server) runShard(ctx context.Context, job *Job, idx int, r trialRange) (*PartialManifest, error) {
	if p := s.cachedPartial(job.Hash, job.Spec, r); p != nil {
		s.reg.Counter(telemetry.ServeShardCacheHits).Inc()
		job.addShardTrials(int64(r.count))
		return p, nil
	}
	workers := s.cfg.ShardWorkers
	attempts := s.cfg.ShardAttempts
	var lastErr error
	for attempt := 0; attempt < attempts-1 && len(workers) > 0; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			s.reg.Counter(telemetry.ServeShardReissues).Inc()
			job.noteShardReissue()
		}
		worker := workers[(idx+attempt)%len(workers)]
		s.reg.Counter(telemetry.ServeShardDispatched).Inc()
		p, err := s.dispatchShard(ctx, worker, job, r)
		if err == nil {
			s.reg.Counter(telemetry.ServeShardRemoteRuns).Inc()
			s.storePartial(job.Hash, r, p)
			job.addShardTrials(int64(r.count))
			return p, nil
		}
		s.reg.Counter(telemetry.ServeShardErrors).Inc()
		lastErr = err
	}
	// Final attempt: run the shard on the coordinator's own engine. This is
	// what makes a fleet with every worker down degrade to a slow success
	// instead of a failure, and it is the whole dispatch path of the local
	// executor pool (no workers configured).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if lastErr != nil {
		s.reg.Counter(telemetry.ServeShardReissues).Inc()
		job.noteShardReissue()
	}
	s.reg.Counter(telemetry.ServeShardLocalRuns).Inc()
	out, err := s.runner(ctx, job.Spec, RunOptions{
		Workers:    s.cfg.JobWorkers,
		Label:      job.TraceLabel(),
		TrialStart: r.start,
		TrialCount: r.count,
	})
	if err != nil {
		if lastErr != nil {
			return nil, fmt.Errorf("%w (after remote dispatch failed: %v)", err, lastErr)
		}
		return nil, err
	}
	p := buildPartial(job.Hash, job.Spec, r.start, out)
	s.storePartial(job.Hash, r, p)
	job.addShardTrials(int64(r.count))
	return p, nil
}

// dispatchShard POSTs one shard to a worker and decodes the returned
// partial manifest. The attempt is bounded by ShardTimeout; a timeout is
// reported as a plain error (not context.DeadlineExceeded) unless the
// job's own deadline expired, so a straggling worker triggers re-issue
// rather than job-level deadline handling.
func (s *Server) dispatchShard(ctx context.Context, worker string, job *Job, r trialRange) (*PartialManifest, error) {
	attemptCtx, cancel := context.WithTimeout(ctx, s.cfg.ShardTimeout)
	defer cancel()
	body, err := json.Marshal(shardRequest{
		SchemaVersion: SpecSchemaVersion,
		ContentHash:   job.Hash,
		Spec:          job.Spec,
		TrialStart:    r.start,
		TrialCount:    r.count,
		CacheURL:      s.cfg.AdvertiseURL,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: encoding shard request: %w", err)
	}
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, workerURL(worker)+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve: shard request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.shardClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("serve: worker %s: %v", worker, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("serve: worker %s: status %d: %s", worker, resp.StatusCode, strings.TrimSpace(string(snippet)))
	}
	p, err := DecodePartialManifest(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve: worker %s: %w", worker, err)
	}
	if err := checkPartial(p, job.Hash, job.Spec); err != nil {
		return nil, fmt.Errorf("serve: worker %s: %w", worker, err)
	}
	if p.TrialStart != r.start || p.TrialCount != r.count {
		return nil, fmt.Errorf("serve: worker %s answered range [%d,%d), want [%d,%d)",
			worker, p.TrialStart, p.TrialStart+p.TrialCount, r.start, r.start+r.count)
	}
	return p, nil
}

// workerURL normalizes a -workers entry ("host:port" or a full URL) to a
// base URL without a trailing slash.
func workerURL(w string) string {
	if !strings.HasPrefix(w, "http://") && !strings.HasPrefix(w, "https://") {
		w = "http://" + w
	}
	return strings.TrimRight(w, "/")
}

// cachedPartial consults the content-addressed partial cache; a corrupt or
// mismatching entry is a miss (never an error), mirroring the result
// cache's corruption policy.
func (s *Server) cachedPartial(hash string, resolved *JobSpec, r trialRange) *PartialManifest {
	buf, ok := s.store.lookupPartial(hash, r.start, r.count)
	if !ok {
		return nil
	}
	p, err := DecodePartialManifest(bytes.NewReader(buf))
	if err != nil || checkPartial(p, hash, resolved) != nil {
		return nil
	}
	if p.TrialStart != r.start || p.TrialCount != r.count {
		return nil
	}
	return p
}

// storePartial records a completed partial in the coordinator cache
// (best-effort: an encoding or disk failure costs dedup, never the job).
func (s *Server) storePartial(hash string, r trialRange, p *PartialManifest) {
	buf, err := p.Encode()
	if err != nil {
		return
	}
	s.store.savePartial(hash, r.start, r.count, buf) //nolint:errcheck // best-effort cache population
}

// handleShard is POST /v1/shards — the worker side of shard dispatch. It
// validates the sub-job, refuses on content-hash disagreement (fleet skew),
// answers from the local or coordinator partial cache when possible, and
// otherwise executes the trial range under a concurrency bound and returns
// the canonical partial manifest.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, MaxSpecBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req shardRequest
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("serve: decoding shard request: %v", err))
		return
	}
	if req.SchemaVersion > SpecSchemaVersion {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("serve: shard request schema %d is newer than this worker's %d", req.SchemaVersion, SpecSchemaVersion))
		return
	}
	if req.Spec == nil {
		s.writeError(w, http.StatusBadRequest, "serve: shard request carries no spec")
		return
	}
	if err := req.Spec.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resolved := req.Spec.Resolved()
	if resolved.Engine == mc.EngineSteady {
		s.writeError(w, http.StatusBadRequest, "serve: the steady engine has no trials to shard")
		return
	}
	if req.TrialStart < 0 || req.TrialCount < 1 || req.TrialStart+req.TrialCount > resolved.Trials {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("serve: shard range [%d,%d) outside the spec's [0,%d)",
			req.TrialStart, req.TrialStart+req.TrialCount, resolved.Trials))
		return
	}
	hash, err := req.Spec.ContentHash()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if req.ContentHash != "" && req.ContentHash != hash {
		// The coordinator and this worker disagree on what the spec means —
		// schema or material-constant skew. Refusing here is what keeps a
		// mixed-version fleet from merging incompatible partials.
		s.writeError(w, http.StatusConflict, fmt.Sprintf("serve: content hash mismatch: coordinator %.12s, worker %.12s", req.ContentHash, hash))
		return
	}
	rng := trialRange{start: req.TrialStart, count: req.TrialCount}
	if p := s.cachedPartial(hash, resolved, rng); p != nil {
		s.reg.Counter(telemetry.ServeShardCacheHits).Inc()
		s.writePartial(w, p)
		return
	}
	if p := s.coordinatorPartial(r.Context(), req.CacheURL, hash, resolved, rng); p != nil {
		s.storePartial(hash, rng, p)
		s.writePartial(w, p)
		return
	}

	// Bound concurrent shard executions; the coordinator's shard-wait span
	// absorbs the queueing and its straggler re-issue path covers a worker
	// that stays saturated.
	select {
	case s.shardSlots <- struct{}{}:
		defer func() { <-s.shardSlots }()
	case <-r.Context().Done():
		s.writeError(w, http.StatusServiceUnavailable, "serve: shard canceled while waiting for an executor slot")
		return
	}
	s.reg.Counter(telemetry.ServeShardServed).Inc()
	t0 := s.reg.Histogram(telemetry.ServeShardServeSeconds).Start()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()
	label := fmt.Sprintf("shard:%.8s:%d+%d", hash, rng.start, rng.count)
	out, err := s.runner(ctx, resolved, RunOptions{
		Workers:    s.cfg.JobWorkers,
		Label:      label,
		TrialStart: rng.start,
		TrialCount: rng.count,
	})
	s.reg.Histogram(telemetry.ServeShardServeSeconds).ObserveSince(t0)
	if err != nil {
		s.reg.Counter(telemetry.ServeShardErrors).Inc()
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	p := buildPartial(hash, resolved, rng.start, out)
	s.storePartial(hash, rng, p)
	s.pushPartial(req.CacheURL, hash, rng, p)
	s.writePartial(w, p)
}

// writePartial responds with a partial manifest's canonical bytes.
func (s *Server) writePartial(w http.ResponseWriter, p *PartialManifest) {
	buf, err := p.Encode()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf) //nolint:errcheck // client gone = nothing to do
}

// coordinatorPartial consults the coordinator's partial cache over HTTP
// (GET /v1/partials/...). Any failure — network, decode, validation — is a
// miss; cache replication is an optimization, never a dependency.
func (s *Server) coordinatorPartial(ctx context.Context, cacheURL, hash string, resolved *JobSpec, r trialRange) *PartialManifest {
	if cacheURL == "" {
		return nil
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, partialURL(cacheURL, hash, r), nil)
	if err != nil {
		return nil
	}
	resp, err := s.shardClient.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	p, err := DecodePartialManifest(resp.Body)
	if err != nil || checkPartial(p, hash, resolved) != nil || p.TrialStart != r.start || p.TrialCount != r.count {
		return nil
	}
	s.reg.Counter(telemetry.ServeShardCacheHits).Inc()
	return p
}

// pushPartial replicates a freshly computed partial into the coordinator's
// cache (PUT /v1/partials/...), best-effort.
func (s *Server) pushPartial(cacheURL, hash string, r trialRange, p *PartialManifest) {
	if cacheURL == "" {
		return
	}
	buf, err := p.Encode()
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, partialURL(cacheURL, hash, r), bytes.NewReader(buf))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.shardClient.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}

// partialURL is the cache address of one partial on a base URL.
func partialURL(base, hash string, r trialRange) string {
	return fmt.Sprintf("%s/v1/partials/%s/%d/%d", workerURL(base), hash, r.start, r.count)
}

// handlePartialGet is GET /v1/partials/{hash}/{start}/{count}: the fleet's
// shared partial-cache read path.
func (s *Server) handlePartialGet(w http.ResponseWriter, r *http.Request) {
	hash, rng, ok := partialPath(r)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "serve: malformed partial address")
		return
	}
	buf, found := s.store.lookupPartial(hash, rng.start, rng.count)
	if !found {
		s.writeError(w, http.StatusNotFound, "serve: no cached partial for this range")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf) //nolint:errcheck
}

// handlePartialPut is PUT /v1/partials/{hash}/{start}/{count}: workers
// populate the coordinator's cache here. The body must be a valid partial
// manifest whose identity fields match its address — internal consistency
// is all that can be verified without the resolved spec, and the merge
// re-validates everything against the job before any partial is trusted.
func (s *Server) handlePartialPut(w http.ResponseWriter, r *http.Request) {
	hash, rng, ok := partialPath(r)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "serve: malformed partial address")
		return
	}
	body := http.MaxBytesReader(w, r.Body, MaxPartialBytes)
	p, err := DecodePartialManifest(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if p.SchemaVersion != PartialManifestSchemaVersion || p.ContentHash != hash ||
		p.TrialStart != rng.start || p.TrialCount != rng.count ||
		p.TrialCount < 1 || len(p.TTFSeconds) != p.TrialCount || p.MaterialHash == "" {
		s.writeError(w, http.StatusBadRequest, "serve: partial manifest does not match its address")
		return
	}
	s.storePartial(hash, rng, p)
	w.WriteHeader(http.StatusNoContent)
}

// partialPath parses the {hash}/{start}/{count} path values.
func partialPath(r *http.Request) (string, trialRange, bool) {
	hash := r.PathValue("hash")
	start, err1 := strconv.Atoi(r.PathValue("start"))
	count, err2 := strconv.Atoi(r.PathValue("count"))
	if hash == "" || err1 != nil || err2 != nil || start < 0 || count < 1 {
		return "", trialRange{}, false
	}
	return hash, trialRange{start: start, count: count}, true
}
