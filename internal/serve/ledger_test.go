package serve

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLedgerAppendAndRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "ledger.jsonl")
	l := NewLedger(path)
	for i, outcome := range []string{"done", "failed"} {
		if err := l.Append(&LedgerRecord{Schema: LedgerSchemaVersion, ID: "j", Outcome: outcome, Attempts: i + 1}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	recs, skipped, err := ReadLedger(path)
	if err != nil || skipped != 0 {
		t.Fatalf("read: %v (skipped %d)", err, skipped)
	}
	if len(recs) != 2 || recs[0].Outcome != "done" || recs[1].Outcome != "failed" {
		t.Fatalf("records = %+v", recs)
	}
}

// TestLedgerRotationSafe: deleting the file between appends (log rotation)
// loses nothing from subsequent records — the next append recreates it.
func TestLedgerRotationSafe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l := NewLedger(path)
	if err := l.Append(&LedgerRecord{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&LedgerRecord{ID: "b"}); err != nil {
		t.Fatalf("append after rotation: %v", err)
	}
	recs, _, err := ReadLedger(path)
	if err != nil || len(recs) != 1 || recs[0].ID != "b" {
		t.Fatalf("post-rotation records = %+v (err %v)", recs, err)
	}
}

// TestLedgerCorruptLineSkipped: a torn trailing line is skipped, not fatal.
func TestLedgerCorruptLineSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l := NewLedger(path)
	if err := l.Append(&LedgerRecord{ID: "good"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"torn`) //nolint:errcheck
	f.Close()
	recs, skipped, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "good" || skipped != 1 {
		t.Fatalf("records = %+v, skipped %d", recs, skipped)
	}
}

func TestLedgerNilNoop(t *testing.T) {
	var l *Ledger
	if l.Path() != "" {
		t.Error("nil ledger path not empty")
	}
	if err := l.Append(&LedgerRecord{}); err != nil {
		t.Errorf("nil ledger append: %v", err)
	}
	if NewLedger("") != nil {
		t.Error(`NewLedger("") must return nil`)
	}
}
