package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"emvia/internal/trace"
)

// sseTrial is the wire form of one ring TrialSummary on the job event
// stream. TTF and the times pass through jsonNumber so +Inf trials (the
// criterion never fired) survive JSON encoding.
type sseTrial struct {
	Trial      int    `json:"trial"`
	Failures   int    `json:"failures"`
	TTFSeconds any    `json:"ttf_seconds"`
	FirstLabel string `json:"first_label,omitempty"`
	FirstTime  any    `json:"first_time,omitempty"`
	SpecTime   any    `json:"spec_time,omitempty"`
	MaxRate    any    `json:"max_rate"`
}

func sseTrialOf(ts trace.TrialSummary) sseTrial {
	out := sseTrial{
		Trial:      ts.Trial,
		Failures:   ts.Failures,
		TTFSeconds: jsonNumber(ts.TTF),
		MaxRate:    jsonNumber(ts.MaxRate),
	}
	if ts.FirstComp >= 0 {
		out.FirstLabel = ts.FirstLabel
		out.FirstTime = jsonNumber(ts.FirstTime)
	}
	if ts.SpecTime >= 0 {
		out.SpecTime = jsonNumber(ts.SpecTime)
	}
	return out
}

// writeEvent emits one SSE frame.
func writeEvent(w http.ResponseWriter, fl http.Flusher, event string, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, buf); err != nil {
		return err
	}
	fl.Flush()
	return nil
}

// handleEvents is GET /v1/jobs/{id}/events: a Server-Sent-Events stream of
// the job's cascade summaries (filtered from the trace ring by the job's
// run label) interleaved with periodic status frames, closed by a final
// "end" frame when the job reaches a terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "serve: streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	label := job.TraceLabel()
	// seen dedups ring entries across polls by (seq, trial): the ring is
	// shared across runs, and a retried job runs under a fresh seq.
	seen := make(map[[2]int64]bool)
	emitTrials := func() bool {
		for _, ts := range s.ring.Snapshot() {
			if ts.Run != label {
				continue
			}
			key := [2]int64{ts.Seq, int64(ts.Trial)}
			if seen[key] {
				continue
			}
			seen[key] = true
			if writeEvent(w, fl, "trial", sseTrialOf(ts)) != nil {
				return false
			}
		}
		return true
	}

	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			emitTrials()
			writeEvent(w, fl, "status", statusJSON(job.Status())) //nolint:errcheck
			writeEvent(w, fl, "end", statusJSON(job.Status()))    //nolint:errcheck
			return
		case <-tick.C:
			if !emitTrials() {
				return
			}
			if writeEvent(w, fl, "status", statusJSON(job.Status())) != nil {
				return
			}
		}
	}
}
