// Package serve is the EM-analysis-as-a-service layer: an HTTP/JSON job
// API in front of the pdn/mc analysis engines.
//
// The design is a bounded admission queue feeding a single sequential
// executor. Jobs are content-addressed — sha256 over the canonicalized
// spec plus core.MaterialHash() — which buys two dedup layers for free: a
// result cache (an identical question is answered from the stored
// manifest, zero solves) and a singleflight map (a submission identical to
// a queued or running job attaches to that job instead of enqueueing a
// second execution). Because worker budgets and timeouts are excluded from
// the hash and mc splits seeds per trial, a cached manifest is
// byte-identical to the manifest a fresh solve at any worker count would
// have produced.
//
// Everything is observable through the shared telemetry registry
// (serve.jobs.*, serve.queue.*) and the structured trace ring: each job's
// Monte-Carlo run is labeled "job:<id>", which keys both the live progress
// counter and the per-job SSE cascade stream.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"emvia/internal/telemetry"
	"emvia/internal/trace"
)

// Runner executes one resolved spec under a context bound. It exists as a
// seam for tests (fault injection, latency shaping); the zero value of
// Config selects the real engine path (runSpec). A Runner must honor
// RunOptions' trial range — a sharded dispatch hands every Runner a slice
// of the job's [0, N) trial sequence and merges on the bit-identity of the
// per-trial seeding.
type Runner func(ctx context.Context, spec *JobSpec, opts RunOptions) (*runOutput, error)

// Config parameterizes a Server. The zero value is usable: every field
// has a working default.
type Config struct {
	// QueueCap bounds the admission queue; submissions beyond it get 429.
	// 0 selects 8.
	QueueCap int
	// JobWorkers is the per-job Monte-Carlo worker budget. It shapes
	// wall-clock only, never results (mc splits seeds per trial), which is
	// why it is absent from the content hash. 0 selects 1.
	JobWorkers int
	// DefaultTimeout bounds jobs that do not carry their own
	// timeout_seconds. 0 selects 5 minutes.
	DefaultTimeout time.Duration
	// MaxAttempts bounds execution attempts per job; only errors wrapped
	// in Transient are retried. 0 selects 3.
	MaxAttempts int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt. 0 selects 50ms.
	RetryBackoff time.Duration
	// ResultDir, when set, persists result manifests as
	// <dir>/<contenthash>.json so dedup survives restarts.
	ResultDir string
	// LedgerPath, when set, appends one JSONL record per terminal job to
	// that file. Empty selects <ResultDir>/ledger.jsonl when ResultDir is
	// set, otherwise no ledger. "-" disables the ledger explicitly.
	LedgerPath string
	// Shards splits every Monte-Carlo job's trial range into this many
	// contiguous shards, dispatched to ShardWorkers (or a local executor
	// pool when none are configured) and merged into the byte-identical
	// single-process manifest. 0 or 1 disables sharding.
	Shards int
	// ShardWorkers lists worker emserve base URLs ("host:port" or full
	// URLs) serving POST /v1/shards. Empty with Shards > 1 self-dispatches
	// to a local executor pool of Shards concurrent shard runs.
	ShardWorkers []string
	// ShardSlots bounds concurrently executing /v1/shards requests on this
	// process (the worker side of dispatch). 0 selects 2.
	ShardSlots int
	// ShardTimeout bounds one remote shard dispatch attempt; on expiry the
	// shard is re-issued to the next worker (the straggler path). 0 selects
	// 60s.
	ShardTimeout time.Duration
	// ShardAttempts bounds dispatch attempts per shard including the final
	// always-local one, so attempts-1 workers are tried before the
	// coordinator runs the shard itself. 0 selects 3.
	ShardAttempts int
	// AdvertiseURL is this coordinator's externally reachable base URL.
	// When set it rides along on every shard dispatch so workers consult
	// and populate the coordinator's partial cache over HTTP — the fleet's
	// shared dedup domain. Empty disables worker-side cache replication.
	AdvertiseURL string
	// Runner overrides the engine execution path (tests only).
	Runner Runner
}

// Server is the job service: HTTP handlers, admission queue, store and the
// sequential executor. Create with NewServer, mount Handler, and Drain on
// shutdown.
type Server struct {
	cfg    Config
	store  *store
	queue  chan *Job
	reg    *telemetry.Registry
	ring   *trace.Ring
	mux    *http.ServeMux
	runner Runner
	ledger *Ledger
	// shardSlots bounds concurrently served /v1/shards executions;
	// shardClient carries every fleet-internal HTTP call (dispatch and
	// partial-cache replication), per-request deadlines via context.
	shardSlots  chan struct{}
	shardClient *http.Client

	mu       sync.Mutex
	draining bool
	// drained closes when the executor has finished every admitted job.
	drained chan struct{}
}

// NewServer builds a server and starts its executor. It enables the
// process-wide telemetry registry and, if no tracer is installed yet,
// installs one with a live ring — the ring is what turns Monte-Carlo
// trials into job progress and SSE events.
func NewServer(cfg Config) *Server {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 8
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.ShardSlots <= 0 {
		cfg.ShardSlots = 2
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 60 * time.Second
	}
	if cfg.ShardAttempts <= 0 {
		cfg.ShardAttempts = 3
	}
	s := &Server{
		cfg:         cfg,
		store:       newStore(cfg.ResultDir),
		queue:       make(chan *Job, cfg.QueueCap),
		reg:         telemetry.Enable(),
		runner:      cfg.Runner,
		drained:     make(chan struct{}),
		shardSlots:  make(chan struct{}, cfg.ShardSlots),
		shardClient: &http.Client{},
	}
	if s.runner == nil {
		s.runner = runSpec
	}
	switch {
	case cfg.LedgerPath == "-":
		// explicitly disabled
	case cfg.LedgerPath != "":
		s.ledger = NewLedger(cfg.LedgerPath)
	case cfg.ResultDir != "":
		s.ledger = NewLedger(filepath.Join(cfg.ResultDir, "ledger.jsonl"))
	}
	if t := trace.Default(); t != nil && t.Ring() != nil {
		s.ring = t.Ring()
	} else {
		s.ring = trace.NewRing(1024)
		trace.SetDefault(trace.New(trace.Options{Ring: s.ring, DisableSamples: true}))
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleTimeline)
	s.mux.HandleFunc("POST /v1/shards", s.handleShard)
	s.mux.HandleFunc("GET /v1/partials/{hash}/{start}/{count}", s.handlePartialGet)
	s.mux.HandleFunc("PUT /v1/partials/{hash}/{start}/{count}", s.handlePartialPut)
	go s.executor()
	return s
}

// Handler returns the API mux (mountable under a parent mux alongside the
// monitor endpoints).
func (s *Server) Handler() http.Handler { return s.mux }

// Ring returns the trace ring the server observes progress through.
func (s *Server) Ring() *trace.Ring { return s.ring }

// Drain stops admission (new submissions get 503), lets every admitted job
// finish, and returns when the executor is idle or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// submitResponse is the POST /v1/jobs body.
type submitResponse struct {
	ID    string `json:"id"`
	Hash  string `json:"content_hash"`
	State State  `json:"state"`
	// Dedup reports how a duplicate was coalesced: "result-cache" or
	// "in-flight". Empty for a fresh enqueue.
	Dedup string `json:"dedup,omitempty"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone = nothing to do
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, errorResponse{Error: msg})
}

// newTimeline builds a job timeline anchored at the submission instant,
// with an observer that mirrors every stage span into the per-stage latency
// histograms (serve.stage_seconds{stage=…}).
func (s *Server) newTimeline(epoch time.Time) *trace.Timeline {
	return trace.NewTimeline(epoch, func(stage string, seconds float64) {
		s.reg.Histogram(telemetry.ServeStageSeconds(stage)).Observe(seconds)
	})
}

// handleSubmit is POST /v1/jobs: decode → validate → content-address →
// dedup (result cache, then singleflight) → bounded enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	admitStart := time.Now()
	body := http.MaxBytesReader(w, r.Body, MaxSpecBytes)
	spec, err := DecodeJobSpec(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := spec.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutSeconds > 0 {
		timeout = time.Duration(spec.TimeoutSeconds * float64(time.Second))
	}
	resolved := spec.Resolved()
	hash, err := spec.ContentHash()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.reg.Counter(telemetry.ServeSubmitted).Inc()

	// Dedup layer 1: the content-addressed result cache. The job completes
	// instantly from the stored manifest — zero engine work.
	if manifest, ok := s.store.lookupResult(hash); ok {
		tl := s.newTimeline(admitStart)
		tl.Add("admit", admitStart, time.Since(admitStart))
		job := s.store.create(hash, resolved, timeout, tl)
		job.completeFromCache(manifest)
		s.reg.Counter(telemetry.ServeDedupCacheHits).Inc()
		s.ledgerAppend(job, "result-cache")
		s.writeJSON(w, http.StatusOK, submitResponse{ID: job.ID, Hash: hash, State: StateDone, Dedup: "result-cache"})
		return
	}

	// The admit span closes here — before the enqueue — so it is always
	// the timeline's first entry: once the job is in the queue, the
	// executor can record queue-wait at any moment.
	tl := s.newTimeline(admitStart)
	tl.Add("admit", admitStart, time.Since(admitStart))

	// Dedup layer 2 + admission, atomically with respect to Drain: the
	// singleflight claim and the queue send sit under one lock so a
	// duplicate never enqueues and a submission never races queue close.
	s.mu.Lock()
	if s.draining {
		// A draining server never accepts again: the useful hint is how long
		// its remaining backlog will take to finish, after which the client's
		// load balancer should have stopped routing here.
		backlog := len(s.queue) + 1
		s.mu.Unlock()
		s.reg.Counter(telemetry.ServeRejectedDraining).Inc()
		w.Header().Set("Retry-After", s.retryAfterHint(backlog))
		s.writeError(w, http.StatusServiceUnavailable, "serve: draining, not accepting jobs")
		return
	}
	job := s.store.create(hash, resolved, timeout, tl)
	incumbent, fresh := s.store.claimInflight(job)
	if !fresh {
		s.store.remove(job.ID)
		s.mu.Unlock()
		s.reg.Counter(telemetry.ServeDedupInflightHits).Inc()
		st := incumbent.Status()
		s.writeJSON(w, http.StatusOK, submitResponse{ID: incumbent.ID, Hash: hash, State: st.State, Dedup: "in-flight"})
		return
	}
	select {
	case s.queue <- job:
		s.reg.Gauge(telemetry.ServeQueueDepth).Add(1)
		s.mu.Unlock()
		s.writeJSON(w, http.StatusAccepted, submitResponse{ID: job.ID, Hash: hash, State: StateQueued})
	default:
		s.store.releaseInflight(job)
		s.store.remove(job.ID)
		s.mu.Unlock()
		s.reg.Counter(telemetry.ServeRejectedFull).Inc()
		// A queue slot frees when the sequential executor finishes the job
		// it is running — about one recent per-job wall time from now.
		w.Header().Set("Retry-After", s.retryAfterHint(1))
		s.writeError(w, http.StatusTooManyRequests, "serve: job queue full")
	}
}

// retryAfterBounds clamp the Retry-After hint: at least 1s (the header is
// integer seconds and 0 would invite a busy-loop), at most 10 minutes (past
// that the estimate says more about one pathological job than the queue).
const (
	retryAfterMin = 1
	retryAfterMax = 600
)

// retryAfterHint derives a Retry-After value from the observed service
// rate: the recent per-job wall time (median of the serve.job_seconds stage
// histogram; 1s before any job has completed) times the number of jobs that
// must finish before the client's next attempt can be admitted.
func (s *Server) retryAfterHint(backlog int) string {
	perJob := s.reg.Histogram(telemetry.ServeJobSeconds).Snapshot().P50
	if perJob <= 0 {
		perJob = 1
	}
	if backlog < 1 {
		backlog = 1
	}
	secs := int(math.Ceil(perJob * float64(backlog)))
	if secs < retryAfterMin {
		secs = retryAfterMin
	}
	if secs > retryAfterMax {
		secs = retryAfterMax
	}
	return strconv.Itoa(secs)
}

// statusResponse is the GET /v1/jobs/{id} body.
type statusResponse struct {
	ID          string `json:"id"`
	Hash        string `json:"content_hash"`
	State       State  `json:"state"`
	Error       string `json:"error,omitempty"`
	Attempts    int    `json:"attempts"`
	TrialsDone  int64  `json:"trials_done"`
	TrialsTotal int64  `json:"trials_total"`
	CreatedAt   string `json:"created_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

func statusJSON(st Status) statusResponse {
	out := statusResponse{
		ID:          st.ID,
		Hash:        st.Hash,
		State:       st.State,
		Error:       st.Err,
		Attempts:    st.Attempts,
		TrialsDone:  st.TrialsDone,
		TrialsTotal: st.TrialsTotal,
	}
	if !st.Created.IsZero() {
		out.CreatedAt = st.Created.UTC().Format(time.RFC3339Nano)
	}
	if !st.Started.IsZero() {
		out.StartedAt = st.Started.UTC().Format(time.RFC3339Nano)
	}
	if !st.Finished.IsZero() {
		out.FinishedAt = st.Finished.UTC().Format(time.RFC3339Nano)
	}
	return out
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, ok := s.store.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "serve: unknown job id")
		return nil, false
	}
	return job, true
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, statusJSON(job.Status()))
}

// handleResult is GET /v1/jobs/{id}/result: the canonical manifest on
// success, 504 with partial progress after a deadline, 500 on failure, 409
// while the job is still pending.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	st := job.Status()
	switch st.State {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Content-Hash", st.Hash)
		w.WriteHeader(http.StatusOK)
		w.Write(job.Manifest()) //nolint:errcheck
	case StateDeadline:
		s.writeJSON(w, http.StatusGatewayTimeout, statusJSON(st))
	case StateFailed:
		s.writeJSON(w, http.StatusInternalServerError, statusJSON(st))
	default:
		s.writeJSON(w, http.StatusConflict, statusJSON(st))
	}
}

// executor runs admitted jobs one at a time, in admission order. The
// sequential discipline is what makes ring-delta progress exact: every
// trial completing while a job runs belongs to that job.
func (s *Server) executor() {
	defer close(s.drained)
	for job := range s.queue {
		s.reg.Gauge(telemetry.ServeQueueDepth).Add(-1)
		s.runJob(job)
	}
}

// runJob executes one job: deadline context, live progress from the trace
// ring, bounded retry on Transient errors, terminal bookkeeping.
func (s *Server) runJob(job *Job) {
	st := job.Status()
	queueWait := time.Since(st.Created)
	s.reg.Histogram(telemetry.ServeQueueWaitSeconds).Observe(queueWait.Seconds())
	job.Timeline.Add("queue-wait", st.Created, queueWait)
	s.reg.Gauge(telemetry.ServeJobsActive).Add(1)
	t0 := s.reg.Histogram(telemetry.ServeJobSeconds).Start()
	// Ledger last (defers run LIFO): the job is terminal and every stage
	// span — including "manifest" — is recorded by the time it fires.
	defer s.ledgerAppend(job, "")
	defer s.reg.Gauge(telemetry.ServeJobsActive).Add(-1)
	defer s.reg.Histogram(telemetry.ServeJobSeconds).ObserveSince(t0)
	defer s.store.releaseInflight(job)

	ctx, cancel := context.WithTimeout(trace.WithTimeline(context.Background(), job.Timeline), job.Timeout)
	defer cancel()

	ringStart := s.ring.Total()
	progressDone := make(chan struct{})
	go s.trackProgress(job, ringStart, progressDone)
	defer close(progressDone)

	var out *runOutput
	var err error
	for attempt := 1; ; attempt++ {
		job.setRunning()
		s.reg.Counter(telemetry.ServeSolves).Inc()
		out, err = s.execute(ctx, job)
		if err == nil {
			break
		}
		if errors.Is(err, context.DeadlineExceeded) {
			job.setProgress(s.ring.Total() - ringStart)
			job.finish(StateDeadline, nil, err.Error())
			s.reg.Counter(telemetry.ServeDeadlineExceeded).Inc()
			return
		}
		var tr *Transient
		if errors.As(err, &tr) && attempt < s.cfg.MaxAttempts {
			s.reg.Counter(telemetry.ServeRetries).Inc()
			backoff := s.cfg.RetryBackoff << (attempt - 1)
			select {
			case <-time.After(backoff):
				continue
			case <-ctx.Done():
				job.finish(StateDeadline, nil, ctx.Err().Error())
				s.reg.Counter(telemetry.ServeDeadlineExceeded).Inc()
				return
			}
		}
		job.finish(StateFailed, nil, err.Error())
		s.reg.Counter(telemetry.ServeFailed).Inc()
		return
	}

	endManifest := job.Timeline.Stage("manifest")
	manifest, err := buildManifest(job.Hash, job.Spec, out)
	if err == nil {
		var buf []byte
		if buf, err = manifest.Encode(); err == nil {
			if serr := s.store.saveResult(job.Hash, buf); serr != nil {
				// Persisting is best-effort: the job still completes from
				// memory, only cross-restart dedup is lost.
				s.reg.Counter(telemetry.ServeFailed).Inc()
			}
			endManifest()
			job.finish(StateDone, buf, "")
			s.reg.Counter(telemetry.ServeCompleted).Inc()
			return
		}
	}
	endManifest()
	job.finish(StateFailed, nil, err.Error())
	s.reg.Counter(telemetry.ServeFailed).Inc()
}

// timelineResponse is the GET /v1/jobs/{id}/timeline body.
type timelineResponse struct {
	ID     string            `json:"id"`
	Hash   string            `json:"content_hash"`
	State  State             `json:"state"`
	Stages []trace.StageSpan `json:"stages"`
}

// handleTimeline is GET /v1/jobs/{id}/timeline: the job's stage spans in
// recording order. Available at any lifecycle point — a running job shows
// the stages completed so far.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	st := job.Status()
	stages := job.Timeline.Spans()
	if stages == nil {
		stages = []trace.StageSpan{}
	}
	s.writeJSON(w, http.StatusOK, timelineResponse{ID: st.ID, Hash: st.Hash, State: st.State, Stages: stages})
}

// ledgerAppend records a terminal job in the run ledger (no-op without a
// ledger). dedup marks jobs answered without execution ("result-cache").
func (s *Server) ledgerAppend(job *Job, dedup string) {
	if s.ledger == nil {
		return
	}
	st := job.Status()
	rec := &LedgerRecord{
		Schema:      LedgerSchemaVersion,
		Time:        st.Finished.UTC().Format(time.RFC3339Nano),
		ID:          st.ID,
		ContentHash: st.Hash,
		Engine:      job.Spec.Engine,
		Outcome:     string(st.State),
		Error:       st.Err,
		Dedup:       dedup,
		Attempts:    st.Attempts,
		TrialsDone:  st.TrialsDone,
		TrialsTotal: st.TrialsTotal,
	}
	if st.Attempts > 1 {
		rec.Retries = st.Attempts - 1
	}
	rec.Shards = st.Shards
	rec.ShardsReissued = st.ShardReissues
	if !st.Finished.IsZero() {
		rec.WallSeconds = st.Finished.Sub(st.Created).Seconds()
	}
	if spans := job.Timeline.Spans(); len(spans) > 0 {
		rec.StageSeconds = make(map[string]float64, len(spans))
		for _, sp := range spans {
			rec.StageSeconds[sp.Stage] += sp.DurationSeconds
			switch sp.Stage {
			case "queue-wait":
				rec.QueueWaitSeconds += sp.DurationSeconds
			case "merge":
				rec.MergeSeconds += sp.DurationSeconds
			}
		}
	}
	if err := s.ledger.Append(rec); err != nil {
		s.reg.Counter(telemetry.ServeLedgerErrors).Inc()
		return
	}
	s.reg.Counter(telemetry.ServeLedgerRecords).Inc()
}

// trackProgress mirrors the trace ring's trial counter into the job while
// it runs. Progress is the ring delta since the job started — exact under
// the sequential executor.
func (s *Server) trackProgress(job *Job, ringStart int64, done <-chan struct{}) {
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			// Remote shards complete trials off this process's ring; take
			// whichever counter has seen more (never both — max, not sum).
			p := s.ring.Total() - ringStart
			if sp := job.shardTrialsDone(); sp > p {
				p = sp
			}
			job.setProgress(p)
		}
	}
}
